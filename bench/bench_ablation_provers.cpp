// Ablation: why ZKDET chose Plonk over Groth16 (paper II/VII, DESIGN.md).
//
// ZKCP's original improvements adopted Groth16 for generic predicates,
// but "the trusted setup of Groth16 limits its application in trustless
// scenarios" (paper VII-B) — every circuit change forces a new ceremony,
// while Plonk's SRS is universal and updatable. This bench quantifies
// the rest of the trade, on identical circuits through the same front
// end:
//   - per-circuit setup cost (Groth16) vs reusable preprocessing (Plonk)
//   - prover time (Groth16's 3 MSMs vs Plonk's ~11 commitments + FFTs)
//   - proof size (256 B vs 768 B)
//   - verification (grows with ell vs constant)
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/rng.hpp"
#include "gadgets/builder.hpp"
#include "gadgets/hash_gadgets.hpp"
#include "plonk/groth16.hpp"
#include "plonk/plonk.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;
using ff::Fr;

namespace {

// Poseidon preimage circuit of scalable size: chain of `reps` hashes.
gadgets::CircuitBuilder hash_chain(std::size_t reps, crypto::Drbg& rng) {
  gadgets::CircuitBuilder bld;
  gadgets::Wire cur = bld.add_witness(rng.random_fr());
  for (std::size_t i = 0; i < reps; ++i) {
    cur = gadgets::poseidon_hash2_gadget(bld, cur, cur);
  }
  (void)bld.add_public_input(bld.value(cur));
  bld.assert_equal(gadgets::Wire{bld.cs().public_vars().back()}, cur);
  return bld;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — Plonk (ZKDET's choice) vs Groth16 (ZKCP backend)\n");
  std::printf("on identical Poseidon hash-chain circuits\n");
  std::printf("==============================================================\n");
  std::printf("%-8s | %-12s %-12s %-9s | %-12s %-12s %-9s\n", "gates",
              "plonk setup", "prove", "proof", "g16 setup", "prove", "proof");

  crypto::Drbg rng(1);
  Stopwatch srs_sw;
  const plonk::Srs srs = plonk::Srs::setup((1 << 14) + 16, rng);
  const double srs_t = srs_sw.seconds();
  std::printf("universal SRS (shared by every Plonk row below): %s\n",
              fmt_seconds(srs_t).c_str());

  for (const std::size_t reps : {1u, 4u, 8u}) {
    gadgets::CircuitBuilder bld = hash_chain(reps, rng);
    const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());

    Stopwatch ppre_sw;
    const auto pkeys = plonk::preprocess(bld.cs(), srs);
    const double ppre_t = ppre_sw.seconds();
    if (!pkeys) {
      std::printf("SRS too small at reps=%zu\n", reps);
      return 1;
    }
    Stopwatch pprove_sw;
    const auto pproof =
        plonk::prove(pkeys->pk, bld.cs(), srs, bld.witness(), rng);
    const double pprove_t = pprove_sw.seconds();

    Stopwatch gsetup_sw;
    const auto gkeys = plonk::groth16::setup(bld.cs(), rng);
    const double gsetup_t = gsetup_sw.seconds();
    Stopwatch gprove_sw;
    const auto gproof =
        plonk::groth16::prove(gkeys->pk, bld.cs(), bld.witness(), rng);
    const double gprove_t = gprove_sw.seconds();
    if (!pproof || !gproof || !plonk::verify(pkeys->vk, pubs, *pproof) ||
        !plonk::groth16::verify(gkeys->vk, pubs, *gproof)) {
      std::printf("prove/verify failed at reps=%zu\n", reps);
      return 1;
    }

    std::printf("%-8zu | %-12s %-12s %-9s | %-12s %-12s %-9s\n",
                bld.cs().num_rows(), fmt_seconds(ppre_t).c_str(),
                fmt_seconds(pprove_t).c_str(), "768 B",
                fmt_seconds(gsetup_t).c_str(), fmt_seconds(gprove_t).c_str(),
                "256 B");
  }

  std::printf("\ntrade-off (paper VII-B): Groth16 has smaller proofs and a\n");
  std::printf("faster prover, but its setup column must be re-run for every\n");
  std::printf("circuit by a trusted party, while Plonk's one universal SRS\n");
  std::printf("serves all circuits — the property ZKDET needs for an open\n");
  std::printf("marketplace of user-defined transformation predicates.\n");
  return 0;
}
