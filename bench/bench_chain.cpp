// Closed-loop chain load harness for the transaction pipeline
// (src/txpool): mempool admission -> conflict-aware scheduling ->
// parallel batch execution -> one sealed block per batch. Emits
// BENCH_chain.json so the chain trajectory is tracked like MSM and the
// ledger already are.
//
// Three phases:
//   1. pipeline sweep — a conflict-free, exchange-shaped workload
//      (declared contract writes + declared value transfers) pushed
//      through the pool closed-loop: every round submits one signed
//      intent per sender, then pumps until the pool drains before the
//      next round starts. Runs a serial baseline (Config::parallel =
//      false) and parallel runs at >= 3 worker counts via
//      runtime::ThreadPool::configure. Reports tx/s, p50/p99 submit->
//      seal latency, and batch occupancy per run, and enforces that
//      every run's tip hash and WAL bytes are byte-identical.
//   2. conflict phase — the same loop with a shared hotspot key and a
//      probability schedule on txpool.exec.conflict-abort, reporting
//      the conflict/abort rate (kept out of the determinism check:
//      injected aborts are part of the sealed blocks by design).
//   3. exchange phase — full key-secure exchanges (publish -> offer ->
//      lock -> settle -> recover) through the pool across sharded
//      arbiters, reporting the end-to-end exchange round-trip.
//
// The >= 2x parallel-over-serial acceptance target applies on >= 4
// cores; on smaller hosts the harness still sweeps the worker counts
// (the determinism contract is checked regardless) and reports the
// core count so the JSON is honest about what was measured.
//
// Usage: bench_chain [--quick]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chain/chain.hpp"
#include "core/exchange.hpp"
#include "core/system.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/ledger.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "txpool/txpool.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("zkdet-bench-chain-" + tag);
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

// SHA-256 over every WAL segment's bytes, in segment order. Two runs
// that journal the same blocks must produce the same digest.
std::string wal_digest(const fs::path& dir) {
  std::vector<fs::path> segments;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("wal-", 0) == 0) segments.push_back(e.path());
  }
  std::sort(segments.begin(), segments.end());
  crypto::Sha256 h;
  for (const auto& seg : segments) {
    std::ifstream in(seg, std::ios::binary);
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    h.update(bytes);
  }
  const auto digest = h.finalize();
  return crypto::hex_encode(digest);
}

class Counter : public chain::Contract {
 public:
  Counter() : Contract("BenchCounter", 64) {}
  void add(chain::CallContext& ctx, const std::string& key, std::uint64_t v) {
    const auto cur = store().get_u64(ctx, key);
    store().set_u64(ctx, key, cur.value_or(0) + v);
  }
};

struct RunMetrics {
  std::string label;
  std::size_t workers = 0;
  bool parallel = false;
  double tx_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double occupancy = 0;  // txs per sealed block
  std::uint64_t txs = 0;
  std::uint64_t batches = 0;
  std::uint64_t failed = 0;
  std::string tip;
  std::string wal_sha256;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

// One closed-loop run: fresh chain + ledger, `senders` funded actors
// plus per-sender sink accounts, a Counter contract, and `rounds`
// rounds of one pre-signed intent per sender (even rounds bump a
// per-sender counter partition, odd rounds make a declared value
// transfer to the sender's sink — both exchange-shaped, all
// conflict-free so scheduling is the only serialization). `hotspot`
// redirects every 4th bump to one shared key, forcing batch splits.
RunMetrics run_load(const std::string& label, std::size_t workers,
                    bool parallel, std::size_t senders, std::size_t rounds,
                    bool hotspot) {
  runtime::ThreadPool::instance().configure(workers);
  TempDir dir(label);

  chain::Chain chain;
  ledger::Options opts;
  opts.fsync_each_append = false;  // measure the pipeline, not fsync
  ledger::Ledger ledger(chain, dir.str(), opts);

  crypto::Drbg rng("bench-chain", 2026);
  std::vector<crypto::KeyPair> keys;
  std::vector<chain::Address> sinks;
  keys.reserve(senders);
  sinks.reserve(senders);
  for (std::size_t i = 0; i < senders; ++i) {
    keys.push_back(crypto::KeyPair::generate(rng));
    chain.create_account(keys.back(), 1'000'000);
  }
  for (std::size_t i = 0; i < senders; ++i) {
    const auto sink = crypto::KeyPair::generate(rng);
    sinks.push_back(chain.create_account(sink, 0));
  }
  Counter& counter = chain.deploy<Counter>(keys[0], nullptr);

  txpool::Config cfg;
  cfg.parallel = parallel;
  txpool::TxPool pool(chain, cfg);

  // Pre-sign every intent so the timed loop measures the pipeline, not
  // Schnorr signing.
  std::vector<std::vector<txpool::TxIntent>> intents(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    intents[r].reserve(senders);
    for (std::size_t s = 0; s < senders; ++s) {
      const std::uint64_t nonce = r;
      if (r % 2 == 0) {
        const bool shared = hotspot && (r + s) % 4 == 0;
        // Fixed-width keys: prefix-based conflict detection must not
        // see "k1" as overlapping "k12".
        char buf[16];
        std::snprintf(buf, sizeof(buf), "k%04zu", s);
        const std::string key = shared ? "hot" : buf;
        txpool::AccessSet access;
        access.write_contract(counter.address(), key);
        Counter* c = &counter;
        intents[r].push_back(txpool::make_intent(
            keys[s], nonce, "bump s" + std::to_string(s),
            [c, key](chain::CallContext& ctx) { c->add(ctx, key, 1); },
            std::move(access)));
      } else {
        txpool::AccessSet access;
        access.touch_account(crypto::address_of(keys[s].pk))
            .touch_account(sinks[s]);
        intents[r].push_back(txpool::make_intent(
            keys[s], nonce, "pay s" + std::to_string(s),
            [](chain::CallContext&) {}, std::move(access), /*value=*/1 + r % 7,
            sinks[s]));
      }
    }
  }

  const auto before = runtime::stats();
  std::vector<double> latencies;
  latencies.reserve(rounds * senders);
  std::uint64_t failed = 0;

  Stopwatch sw;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<txpool::TicketPtr> tickets;
    std::vector<Clock::time_point> submitted;
    tickets.reserve(senders);
    submitted.reserve(senders);
    for (std::size_t s = 0; s < senders; ++s) {
      auto res = pool.submit(std::move(intents[r][s]));
      if (!res.accepted) {
        ++failed;
        continue;
      }
      tickets.push_back(std::move(res.ticket));
      submitted.push_back(Clock::now());
    }
    std::vector<bool> seen(tickets.size(), false);
    // Closed loop: pump until this round's txs all sealed, recording
    // submit->seal latency per ticket as it resolves.
    while (pool.pending() > 0) {
      pool.seal_next_batch();
      const auto now = Clock::now();
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        if (!seen[i] && tickets[i]->done()) {
          seen[i] = true;
          latencies.push_back(
              std::chrono::duration<double, std::milli>(now - submitted[i])
                  .count());
          if (!tickets[i]->receipt.success) ++failed;
        }
      }
    }
  }
  const double secs = sw.seconds();
  ledger.sync();
  const auto after = runtime::stats();

  RunMetrics m;
  m.label = label;
  m.workers = workers;
  m.parallel = parallel;
  m.txs = after.txpool_txs_executed - before.txpool_txs_executed;
  m.batches = after.txpool_batches_sealed - before.txpool_batches_sealed;
  m.failed = failed;
  m.tx_per_sec = static_cast<double>(m.txs) / secs;
  m.p50_ms = percentile(latencies, 0.50);
  m.p99_ms = percentile(latencies, 0.99);
  m.occupancy = m.batches > 0
                    ? static_cast<double>(m.txs) / static_cast<double>(m.batches)
                    : 0.0;
  m.tip = crypto::hex_encode(chain.blocks().back().hash);
  m.wal_sha256 = wal_digest(dir.path);
  return m;
}

void print_run(const RunMetrics& m) {
  std::printf(
      "%-22s workers=%zu %-8s : %9.0f tx/s  p50 %7.2f ms  p99 %7.2f ms  "
      "%5.1f tx/block  (%llu txs, %llu blocks, %llu failed)\n",
      m.label.c_str(), m.workers, m.parallel ? "parallel" : "serial",
      m.tx_per_sec, m.p50_ms, m.p99_ms, m.occupancy,
      static_cast<unsigned long long>(m.txs),
      static_cast<unsigned long long>(m.batches),
      static_cast<unsigned long long>(m.failed));
}

void json_run(std::ofstream& json, const RunMetrics& m, const char* indent) {
  json << indent << "{\"label\": \"" << m.label << "\", \"workers\": "
       << m.workers << ", \"parallel\": " << (m.parallel ? "true" : "false")
       << ", \"tx_per_sec\": " << m.tx_per_sec << ", \"p50_ms\": " << m.p50_ms
       << ", \"p99_ms\": " << m.p99_ms << ", \"batch_occupancy\": "
       << m.occupancy << ", \"txs\": " << m.txs << ", \"batches\": "
       << m.batches << ", \"failed\": " << m.failed << ", \"tip\": \""
       << m.tip << "\", \"wal_sha256\": \"" << m.wal_sha256 << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kSenders = quick ? 96 : 192;
  const std::size_t kRounds = quick ? 10 : 60;
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));

  std::printf("==============================================================\n");
  std::printf("Transaction pipeline — closed-loop chain load harness\n");
  std::printf("%zu senders x %zu rounds, %zu hardware threads%s\n", kSenders,
              kRounds, hw, quick ? " (--quick)" : "");
  std::printf("==============================================================\n");

  // --- phase 1: pipeline sweep, serial baseline + parallel levels ---------
  std::vector<std::size_t> levels = {1, 2, 4};
  if (hw > 4) levels.push_back(hw);
  const RunMetrics serial =
      run_load("serial-baseline", 1, /*parallel=*/false, kSenders, kRounds,
               /*hotspot=*/false);
  print_run(serial);
  std::vector<RunMetrics> parallel_runs;
  for (const std::size_t w : levels) {
    parallel_runs.push_back(run_load("parallel-w" + std::to_string(w), w,
                                     /*parallel=*/true, kSenders, kRounds,
                                     /*hotspot=*/false));
    print_run(parallel_runs.back());
  }

  // Determinism contract: every run sealed the same blocks — same tip
  // hash, same WAL bytes — regardless of worker count or serial mode.
  bool byte_identical = true;
  for (const auto& m : parallel_runs) {
    if (m.tip != serial.tip || m.wal_sha256 != serial.wal_sha256) {
      byte_identical = false;
      std::printf("DETERMINISM VIOLATION: %s diverged from serial baseline\n",
                  m.label.c_str());
    }
  }
  std::printf("serial vs parallel blocks + WAL byte-identical : %s\n",
              byte_identical ? "yes" : "NO");

  double best_parallel = 0;
  for (const auto& m : parallel_runs) {
    best_parallel = std::max(best_parallel, m.tx_per_sec);
  }
  const double speedup = best_parallel / serial.tx_per_sec;
  const bool speedup_applies = hw >= 4;
  std::printf("best parallel over serial baseline             : %.2fx %s\n",
              speedup,
              speedup_applies
                  ? (speedup >= 2.0 ? "(target >=2x on >=4 cores: OK)"
                                    : "(below 2x target on >=4 cores)")
                  : "(<4 cores: target not applicable here)");

  // --- phase 2: contention + injected conflict aborts ---------------------
  std::uint64_t conflict_aborts = 0, conflict_txs = 0, admit_rejected = 0;
  RunMetrics contended;
  {
    fault::ScopedFaults faults;
    fault::inject(fault::points::kTxpoolExecConflictAbort,
                  fault::Schedule::probability(0.10, 42));
    const auto before = runtime::stats();
    contended = run_load("contended", hw, /*parallel=*/true, kSenders,
                         kRounds, /*hotspot=*/true);
    const auto after = runtime::stats();
    conflict_aborts = after.txpool_conflict_aborts - before.txpool_conflict_aborts;
    conflict_txs = after.txpool_txs_executed - before.txpool_txs_executed;
    admit_rejected = after.txpool_rejected - before.txpool_rejected;
  }
  const double abort_rate =
      conflict_txs > 0
          ? static_cast<double>(conflict_aborts) / static_cast<double>(conflict_txs)
          : 0.0;
  print_run(contended);
  std::printf("conflict/abort rate under hotspot + injection  : %.3f "
              "(%llu aborts / %llu txs, %llu admission rejects)\n",
              abort_rate, static_cast<unsigned long long>(conflict_aborts),
              static_cast<unsigned long long>(conflict_txs),
              static_cast<unsigned long long>(admit_rejected));

  // --- phase 3: full key-secure exchanges through the pool ----------------
  runtime::ThreadPool::instance().configure(hw);
  const std::size_t kExchanges = quick ? 1 : 4;
  double exchange_secs = 0;
  std::size_t exchange_shards = 2;
  std::size_t exchanges_ok = 0;
  {
    core::ZkdetSystem sys(1 << 14, 77, /*data_dir=*/"", {},
                          /*arbiter_shards=*/exchange_shards);
    core::TransformationProtocol tp(sys);
    core::KeySecureExchange ex(sys, tp);
    crypto::Drbg rng("bench-chain-exchange", 7);
    const auto seller = crypto::KeyPair::generate(rng);
    const auto buyer = crypto::KeyPair::generate(rng);
    sys.chain().create_account(seller, 10'000'000);
    sys.chain().create_account(buyer, 10'000'000);
    Stopwatch sw;
    for (std::size_t i = 0; i < kExchanges; ++i) {
      auto asset = tp.publish(seller, {ff::Fr::from_u64(100 + i),
                                       ff::Fr::from_u64(200 + i)});
      if (!asset) break;
      auto offer = ex.make_offer(*asset, nullptr, "any");
      if (!offer || !ex.verify_offer(*offer)) break;
      auto session = ex.lock_payment(buyer, *offer, /*amount=*/500,
                                     /*timeout_blocks=*/10);
      if (!session) break;
      if (!ex.settle(seller, *asset, session->exchange_id, session->k_v)) break;
      const auto data = ex.recover_data(*session);
      if (!data || *data != asset->plain) break;
      ++exchanges_ok;
    }
    exchange_secs = sw.seconds();
  }
  std::printf("pooled key-secure exchanges (%zu shards)        : %zu/%zu in "
              "%s (%s per exchange)\n",
              exchange_shards, exchanges_ok, kExchanges,
              fmt_seconds(exchange_secs).c_str(),
              fmt_seconds(exchanges_ok > 0
                              ? exchange_secs / static_cast<double>(exchanges_ok)
                              : 0)
                  .c_str());

  // --- emit -----------------------------------------------------------------
  std::ofstream json("BENCH_chain.json");
  json << "{\n  \"bench\": \"chain_txpool\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"senders\": " << kSenders << ",\n"
       << "  \"rounds\": " << kRounds << ",\n"
       << "  \"serial_baseline\":\n";
  json_run(json, serial, "    ");
  json << ",\n  \"parallel_runs\": [\n";
  for (std::size_t i = 0; i < parallel_runs.size(); ++i) {
    json_run(json, parallel_runs[i], "    ");
    if (i + 1 < parallel_runs.size()) json << ",";
    json << "\n";
  }
  json << "  ],\n"
       << "  \"byte_identical\": " << (byte_identical ? "true" : "false")
       << ",\n"
       << "  \"speedup_best_parallel_over_serial\": " << speedup << ",\n"
       << "  \"speedup_target_applies\": "
       << (speedup_applies ? "true" : "false") << ",\n"
       << "  \"conflict_phase\": {\"txs\": " << conflict_txs
       << ", \"conflict_aborts\": " << conflict_aborts
       << ", \"abort_rate\": " << abort_rate
       << ", \"admission_rejects\": " << admit_rejected << "},\n"
       << "  \"exchange_phase\": {\"exchanges\": " << exchanges_ok
       << ", \"shards\": " << exchange_shards
       << ", \"seconds_total\": " << exchange_secs << ", \"seconds_each\": "
       << (exchanges_ok > 0 ? exchange_secs / static_cast<double>(exchanges_ok)
                            : 0)
       << "}\n}\n";
  std::printf("wrote BENCH_chain.json\n");

  if (!byte_identical) return 1;
  if (speedup_applies && speedup < 2.0) return 1;
  if (exchanges_ok != kExchanges) return 1;
  return 0;
}
