// Figure 5 reproduction: time consumed for circuit setup vs #constraints.
//
// The paper measures Snarkjs universal setup (Powers-of-Tau derived SRS
// plus per-circuit preprocessing) on an i9-11900K, showing setup time
// growing roughly linearly with the constraint count and "< 2 minutes
// for 2^20 constraints". We measure the same two components of our
// stack — SRS generation and Plonk preprocessing (selector/sigma
// interpolation + commitments) — over a sweep of circuit sizes. The
// expected shape: near-linear growth in n.
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/rng.hpp"
#include "gadgets/builder.hpp"
#include "plonk/plonk.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;
using ff::Fr;

namespace {

// A generic arithmetic circuit with the requested number of gates
// (multiplication chain, exercising all selector columns).
gadgets::CircuitBuilder make_circuit(std::size_t gates) {
  gadgets::CircuitBuilder bld;
  gadgets::Wire x = bld.add_witness(Fr::from_u64(3));
  gadgets::Wire acc = bld.add_witness(Fr::from_u64(1));
  while (bld.num_gates() + 2 < gates) {
    acc = bld.mul(acc, x);
    acc = bld.add_constant(acc, Fr::from_u64(7));
  }
  (void)bld.add_public_input(bld.value(acc));
  return bld;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig. 5 — Time consumed for circuit setup\n");
  std::printf("(paper: Snarkjs universal setup, linear in #constraints,\n");
  std::printf(" <2 min for ~2^20; ours: SRS + Plonk preprocessing)\n");
  std::printf("==============================================================\n");
  std::printf("%-14s %-14s %-14s %-14s %-12s\n", "constraints", "srs",
              "preprocess", "total", "per-constr");

  for (const std::size_t log_n : {10u, 11u, 12u, 13u, 14u, 15u}) {
    const std::size_t n = 1ull << log_n;
    crypto::Drbg rng(log_n);
    gadgets::CircuitBuilder bld = make_circuit(n - 4);

    Stopwatch srs_sw;
    const plonk::Srs srs = plonk::Srs::setup(n + 16, rng);
    const double srs_t = srs_sw.seconds();

    Stopwatch pre_sw;
    const auto keys = plonk::preprocess(bld.cs(), srs);
    const double pre_t = pre_sw.seconds();
    if (!keys) {
      std::printf("preprocess failed at 2^%zu\n", log_n);
      return 1;
    }

    char label[32];
    std::snprintf(label, sizeof(label), "2^%zu", log_n);
    char per[32];
    std::snprintf(per, sizeof(per), "%.2f us",
                  (srs_t + pre_t) / static_cast<double>(n) * 1e6);
    std::printf("%-14s %-14s %-14s %-14s %-12s\n", label,
                fmt_seconds(srs_t).c_str(), fmt_seconds(pre_t).c_str(),
                fmt_seconds(srs_t + pre_t).c_str(), per);
  }
  std::printf("\nshape check: setup time grows ~linearly with constraints, as\n");
  std::printf("in the paper's Fig. 5 (universal SRS is reusable thereafter).\n");
  return 0;
}
