// Figure 6 reproduction: time consumed for proof generation.
//
// The paper plots, against dataset size:
//   - pi_e / pi_p (proofs of encryption — the dominant cost, ~3 min for
//     a 5 MB dataset on their machine),
//   - pi_t for aggregation / partition / duplication ("essentially data
//     comparisons", ~10 s for 5 MB),
//   - pi_k, which is independent of data size (~120 ms).
// We sweep dataset entry counts with the same three circuit families and
// report generation times. Expected shape: pi_e grows ~linearly and
// dominates; pi_t is far cheaper at equal size; pi_k is flat.
// Additionally sweeps the runtime worker count over a batch of pi_e
// proof jobs (1/2/4/8 workers) and emits BENCH_runtime.json with
// proofs/sec and speedup vs the serial baseline.
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>

#include "bench_util.hpp"
#include "core/circuits.hpp"
#include "crypto/rng.hpp"
#include "plonk/plonk.hpp"
#include "runtime/prover_service.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;
using ff::Fr;

namespace {

struct Timing {
  double prove = 0;
  std::size_t gates = 0;
};

Timing time_circuit(const gadgets::CircuitBuilder& bld, const plonk::Srs& srs,
                    crypto::Drbg& rng) {
  const auto keys = plonk::preprocess(bld.cs(), srs);
  if (!keys) return {};
  Stopwatch sw;
  const auto proof = plonk::prove(keys->pk, bld.cs(), srs, bld.witness(), rng);
  Timing t;
  t.prove = sw.seconds();
  t.gates = bld.cs().num_rows();
  if (!proof) t.prove = -1;
  return t;
}

std::vector<Fr> make_data(std::size_t n, crypto::Drbg& rng) {
  std::vector<Fr> d;
  for (std::size_t i = 0; i < n; ++i) d.push_back(rng.random_fr());
  return d;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig. 6 — Time consumed for proof generation\n");
  std::printf("(paper: pi_e/pi_p dominate and grow with data size; pi_t for\n");
  std::printf(" agg/part/dup is cheap; pi_k is constant ~0.1s)\n");
  std::printf("==============================================================\n");

  crypto::Drbg rng(1);
  const plonk::Srs srs = plonk::Srs::setup((1 << 16) + 16, rng);

  std::printf("%-10s %-12s %-14s %-12s %-14s %-14s\n", "entries", "pi_e gates",
              "pi_e prove", "pi_t dup", "pi_t agg(2)", "pi_t part(2)");
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const std::vector<Fr> data = make_data(n, rng);
    const Fr key = rng.random_fr(), nonce = rng.random_fr();
    const Fr o1 = rng.random_fr(), o2 = rng.random_fr();

    const Timing enc = time_circuit(
        core::build_encryption_circuit(data, key, nonce, o1), srs, rng);

    const Timing dup = time_circuit(
        core::build_duplication_circuit(data, o1, o2), srs, rng);

    const std::vector<std::vector<Fr>> halves{
        std::vector<Fr>(data.begin(), data.begin() + static_cast<long>(n / 2)),
        std::vector<Fr>(data.begin() + static_cast<long>(n / 2), data.end())};
    const Timing agg = time_circuit(
        core::build_aggregation_circuit(halves, {o1, o2}, rng.random_fr()),
        srs, rng);

    const Timing part = time_circuit(
        core::build_partition_circuit(data, {n / 2, n - n / 2}, o1,
                                      {rng.random_fr(), rng.random_fr()}),
        srs, rng);

    std::printf("%-10zu %-12zu %-14s %-12s %-14s %-14s\n", n, enc.gates,
                fmt_seconds(enc.prove).c_str(), fmt_seconds(dup.prove).c_str(),
                fmt_seconds(agg.prove).c_str(),
                fmt_seconds(part.prove).c_str());
  }

  // pi_k: size-independent (measure thrice to show flatness)
  std::printf("\npi_k (key proof, independent of data size):\n");
  for (int i = 0; i < 3; ++i) {
    const Timing k = time_circuit(
        core::build_key_circuit(rng.random_fr(), rng.random_fr(),
                                rng.random_fr()),
        srs, rng);
    std::printf("  run %d: %s  (%zu gates)\n", i + 1,
                fmt_seconds(k.prove).c_str(), k.gates);
  }
  // --- runtime sweep: concurrent proof jobs vs worker count ---
  // Throughput comes from two levels: whole jobs run concurrently on the
  // pool, and each proof's MSM/NTT/quotient stages split across idle
  // workers. Speedup tracks the machine's real core count (on a 1-core
  // host all counts time-share and the curve is flat).
  {
    constexpr std::size_t kSweepEntries = 8;
    constexpr std::size_t kSweepJobs = 8;
    std::printf("\nruntime sweep: %zu concurrent pi_e jobs (%zu entries each), "
                "hardware threads: %u\n",
                kSweepJobs, kSweepEntries, std::thread::hardware_concurrency());
    std::printf("%-10s %-14s %-14s %-10s\n", "workers", "batch time",
                "proofs/sec", "speedup");

    const std::vector<Fr> sdata = make_data(kSweepEntries, rng);
    gadgets::CircuitBuilder sbld = core::build_encryption_circuit(
        sdata, rng.random_fr(), rng.random_fr(), rng.random_fr());
    const auto scs =
        std::make_shared<const plonk::ConstraintSystem>(sbld.cs());
    const std::vector<Fr> switness = sbld.witness();

    struct Row {
      std::size_t workers;
      double secs, pps, speedup;
    };
    std::vector<Row> rows;
    double serial_pps = 0;
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      runtime::ThreadPool::instance().configure(workers);
      runtime::ProverService svc(srs);
      svc.keys_for("pi_e/sweep", *scs);  // preprocessing paid once, up front
      Stopwatch sw;
      std::vector<std::future<std::optional<plonk::Proof>>> futures;
      futures.reserve(kSweepJobs);
      for (std::size_t j = 0; j < kSweepJobs; ++j) {
        runtime::ProofJob job;
        job.circuit_id = "pi_e/sweep";
        job.cs = scs;
        job.witness = switness;
        job.rng = crypto::Drbg("sweep-job", 1000 + j);
        futures.push_back(svc.submit(std::move(job)));
      }
      std::size_t ok = 0;
      for (auto& f : futures) {
        if (f.get()) ++ok;
      }
      const double secs = sw.seconds();
      const double pps = static_cast<double>(ok) / secs;
      if (workers == 1) serial_pps = pps;
      const double speedup = serial_pps > 0 ? pps / serial_pps : 0;
      rows.push_back({workers, secs, pps, speedup});
      std::printf("%-10zu %-14s %-14.2f %-10.2f\n", workers,
                  fmt_seconds(secs).c_str(), pps, speedup);
      if (ok != kSweepJobs) std::printf("  WARNING: %zu jobs failed\n",
                                        kSweepJobs - ok);
    }
    runtime::ThreadPool::instance().configure(
        std::max(1u, std::thread::hardware_concurrency()));

    std::ofstream json("BENCH_runtime.json");
    json << "{\n  \"bench\": \"runtime_proofgen_sweep\",\n"
         << "  \"circuit\": \"pi_e/" << kSweepEntries << "\",\n"
         << "  \"jobs\": " << kSweepJobs << ",\n"
         << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
         << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"workers\": " << rows[i].workers
           << ", \"batch_seconds\": " << rows[i].secs
           << ", \"proofs_per_sec\": " << rows[i].pps
           << ", \"speedup_vs_serial\": " << rows[i].speedup << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote BENCH_runtime.json\n");
  }

  std::printf("\nshape check: pi_e and pi_t grow ~linearly in entries; pi_k is\n");
  std::printf("flat, matching Fig. 6. Note: the paper's pi_t << pi_e gap comes\n");
  std::printf("from CP-NIZK commitment sharing (LegoSNARK-style linked\n");
  std::printf("commitments); we recompute Poseidon commitments in-circuit, so\n");
  std::printf("our pi_t costs about one pi_e at equal size (see EXPERIMENTS.md).\n");
  return 0;
}
