// Figure 6 reproduction: time consumed for proof generation.
//
// The paper plots, against dataset size:
//   - pi_e / pi_p (proofs of encryption — the dominant cost, ~3 min for
//     a 5 MB dataset on their machine),
//   - pi_t for aggregation / partition / duplication ("essentially data
//     comparisons", ~10 s for 5 MB),
//   - pi_k, which is independent of data size (~120 ms).
// We sweep dataset entry counts with the same three circuit families and
// report generation times. Expected shape: pi_e grows ~linearly and
// dominates; pi_t is far cheaper at equal size; pi_k is flat.
#include <cstdio>

#include "bench_util.hpp"
#include "core/circuits.hpp"
#include "crypto/rng.hpp"
#include "plonk/plonk.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;
using ff::Fr;

namespace {

struct Timing {
  double prove = 0;
  std::size_t gates = 0;
};

Timing time_circuit(const gadgets::CircuitBuilder& bld, const plonk::Srs& srs,
                    crypto::Drbg& rng) {
  const auto keys = plonk::preprocess(bld.cs(), srs);
  if (!keys) return {};
  Stopwatch sw;
  const auto proof = plonk::prove(keys->pk, bld.cs(), srs, bld.witness(), rng);
  Timing t;
  t.prove = sw.seconds();
  t.gates = bld.cs().num_rows();
  if (!proof) t.prove = -1;
  return t;
}

std::vector<Fr> make_data(std::size_t n, crypto::Drbg& rng) {
  std::vector<Fr> d;
  for (std::size_t i = 0; i < n; ++i) d.push_back(rng.random_fr());
  return d;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig. 6 — Time consumed for proof generation\n");
  std::printf("(paper: pi_e/pi_p dominate and grow with data size; pi_t for\n");
  std::printf(" agg/part/dup is cheap; pi_k is constant ~0.1s)\n");
  std::printf("==============================================================\n");

  crypto::Drbg rng(1);
  const plonk::Srs srs = plonk::Srs::setup((1 << 16) + 16, rng);

  std::printf("%-10s %-12s %-14s %-12s %-14s %-14s\n", "entries", "pi_e gates",
              "pi_e prove", "pi_t dup", "pi_t agg(2)", "pi_t part(2)");
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const std::vector<Fr> data = make_data(n, rng);
    const Fr key = rng.random_fr(), nonce = rng.random_fr();
    const Fr o1 = rng.random_fr(), o2 = rng.random_fr();

    const Timing enc = time_circuit(
        core::build_encryption_circuit(data, key, nonce, o1), srs, rng);

    const Timing dup = time_circuit(
        core::build_duplication_circuit(data, o1, o2), srs, rng);

    const std::vector<std::vector<Fr>> halves{
        std::vector<Fr>(data.begin(), data.begin() + static_cast<long>(n / 2)),
        std::vector<Fr>(data.begin() + static_cast<long>(n / 2), data.end())};
    const Timing agg = time_circuit(
        core::build_aggregation_circuit(halves, {o1, o2}, rng.random_fr()),
        srs, rng);

    const Timing part = time_circuit(
        core::build_partition_circuit(data, {n / 2, n - n / 2}, o1,
                                      {rng.random_fr(), rng.random_fr()}),
        srs, rng);

    std::printf("%-10zu %-12zu %-14s %-12s %-14s %-14s\n", n, enc.gates,
                fmt_seconds(enc.prove).c_str(), fmt_seconds(dup.prove).c_str(),
                fmt_seconds(agg.prove).c_str(),
                fmt_seconds(part.prove).c_str());
  }

  // pi_k: size-independent (measure thrice to show flatness)
  std::printf("\npi_k (key proof, independent of data size):\n");
  for (int i = 0; i < 3; ++i) {
    const Timing k = time_circuit(
        core::build_key_circuit(rng.random_fr(), rng.random_fr(),
                                rng.random_fr()),
        srs, rng);
    std::printf("  run %d: %s  (%zu gates)\n", i + 1,
                fmt_seconds(k.prove).c_str(), k.gates);
  }
  std::printf("\nshape check: pi_e and pi_t grow ~linearly in entries; pi_k is\n");
  std::printf("flat, matching Fig. 6. Note: the paper's pi_t << pi_e gap comes\n");
  std::printf("from CP-NIZK commitment sharing (LegoSNARK-style linked\n");
  std::printf("commitments); we recompute Poseidon commitments in-circuit, so\n");
  std::printf("our pi_t costs about one pi_e at equal size (see EXPERIMENTS.md).\n");
  return 0;
}
