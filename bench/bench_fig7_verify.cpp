// Figure 7 reproduction: running time of ZKDET vs ZKCP verification as
// the input size grows.
//
// Paper claim: ZKDET (Plonk) verification needs 2 pairings + 18 G1
// exponentiations regardless of input size, staying below 0.1 s; ZKCP
// (Groth16-based, the paper's reference [10]) needs 3 pairings + ell G1
// exponentiations, where ell is the number of public inputs, so its
// verification grows with the statement size.
//
// Both columns are REAL verifiers over the same circuit: our complete
// Plonk (src/plonk) and our complete Groth16 (src/plonk/groth16.hpp),
// proving the same statement "sum(x_1..x_ell) = total" with ell+1 public
// inputs. Verification times are measured on honestly generated,
// accepted proofs.
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/rng.hpp"
#include "gadgets/builder.hpp"
#include "plonk/groth16.hpp"
#include "plonk/plonk.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;
using ff::Fr;

namespace {

// sum(x_i) == total, all ell+1 values public. Gate count is O(ell) but
// tiny, so verification cost differences come from ell alone.
gadgets::CircuitBuilder sum_circuit(std::size_t ell, crypto::Drbg& rng) {
  gadgets::CircuitBuilder bld;
  std::vector<gadgets::Wire> xs;
  Fr total = Fr::zero();
  for (std::size_t i = 0; i < ell; ++i) {
    const Fr v = rng.random_fr();
    xs.push_back(bld.add_public_input(v));
    total += v;
  }
  const gadgets::Wire sum = bld.sum(xs);
  const gadgets::Wire total_w = bld.add_public_input(total);
  bld.assert_equal(sum, total_w);
  return bld;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig. 7 — Verification time, ZKDET (Plonk) vs ZKCP (Groth16)\n");
  std::printf("(paper: ZKDET flat <0.1s — 2 pairings + 18 exps; ZKCP grows\n");
  std::printf(" with ell — 3 pairings + ell exps; both columns below are\n");
  std::printf(" real verifiers on accepted proofs of the same statement)\n");
  std::printf("==============================================================\n");

  crypto::Drbg rng(1);
  const plonk::Srs srs = plonk::Srs::setup((1 << 13) + 16, rng);

  std::printf("%-16s %-16s %-16s %-10s\n", "public inputs", "ZKDET verify",
              "ZKCP verify", "winner");

  for (const std::size_t ell : {4u, 16u, 64u, 256u, 1024u, 2048u}) {
    gadgets::CircuitBuilder bld = sum_circuit(ell, rng);
    const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());

    const auto pkeys = plonk::preprocess(bld.cs(), srs);
    if (!pkeys) {
      std::printf("(skipping ell=%zu: SRS too small)\n", ell);
      continue;
    }
    const auto pproof =
        plonk::prove(pkeys->pk, bld.cs(), srs, bld.witness(), rng);
    const auto gkeys = plonk::groth16::setup(bld.cs(), rng);
    const auto gproof =
        plonk::groth16::prove(gkeys->pk, bld.cs(), bld.witness(), rng);
    if (!pproof || !gproof) {
      std::printf("proving failed at ell=%zu\n", ell);
      return 1;
    }

    constexpr int kRuns = 5;
    (void)plonk::verify(pkeys->vk, pubs, *pproof);  // warm-up
    Stopwatch plonk_sw;
    for (int r = 0; r < kRuns; ++r) {
      if (!plonk::verify(pkeys->vk, pubs, *pproof)) {
        std::printf("plonk verification failed\n");
        return 1;
      }
    }
    const double plonk_t = plonk_sw.seconds() / kRuns;

    (void)plonk::groth16::verify(gkeys->vk, pubs, *gproof);
    Stopwatch g16_sw;
    for (int r = 0; r < kRuns; ++r) {
      if (!plonk::groth16::verify(gkeys->vk, pubs, *gproof)) {
        std::printf("groth16 verification failed\n");
        return 1;
      }
    }
    const double g16_t = g16_sw.seconds() / kRuns;

    std::printf("%-16zu %-16s %-16s %-10s\n", pubs.size(),
                fmt_seconds(plonk_t).c_str(), fmt_seconds(g16_t).c_str(),
                plonk_t <= g16_t ? "ZKDET" : "ZKCP");
  }

  std::printf("\nshape check: the ZKDET column stays flat (and <0.1 s) while\n");
  std::printf("the ZKCP (Groth16) column grows with the public input count,\n");
  std::printf("matching Fig. 7.\n");

  // --- batched verification: the settlement-path amortization ---
  // N independent accepted proofs of the same shape fold into ONE
  // 2-pairing product (Fiat-Shamir weights, plonk::batch_verify); the
  // per-proof wall cost drops toward the MSM-only floor as N grows.
  // This is the wall-clock face of the gas sweep in bench_table2_gas
  // (BENCH_aggregate.json). Groth16/ZKCP has no analogous fold here.
  std::printf("\n==============================================================\n");
  std::printf("Batched ZKDET verification — per-proof time vs batch size N\n");
  std::printf("==============================================================\n");
  std::printf("%-8s %-16s %-12s\n", "N", "per-proof", "speedup");

  gadgets::CircuitBuilder bb = sum_circuit(16, rng);
  const std::vector<Fr> bpubs = bb.cs().extract_public_inputs(bb.witness());
  const auto bkeys = plonk::preprocess(bb.cs(), srs);
  const auto bproof = plonk::prove(bkeys->pk, bb.cs(), srs, bb.witness(), rng);
  if (!bkeys || !bproof) {
    std::printf("batched-sweep proving failed\n");
    return 1;
  }
  double base_us = 0.0;
  for (const std::size_t n : {1u, 4u, 16u, 64u}) {
    const std::vector<plonk::BatchEntry> entries(
        n, plonk::BatchEntry{&bkeys->vk, &bpubs, &bproof.value()});
    (void)plonk::batch_verify(entries);  // warm-up
    Stopwatch sw;
    if (!plonk::batch_verify(entries)) {
      std::printf("batched verification rejected a valid batch at N=%zu\n", n);
      return 1;
    }
    const double us = sw.seconds() / static_cast<double>(n) * 1e6;
    if (n == 1) base_us = us;
    std::printf("%-8zu %-16s %11.2fx\n", n,
                fmt_seconds(us * 1e-6).c_str(), base_us / us);
  }
  std::printf("\nshape check: per-proof cost falls with N — one pairing\n");
  std::printf("product serves the whole batch, only the per-entry MSMs\n");
  std::printf("remain.\n");
  return 0;
}
