// Durable-ledger benchmark: append throughput, cold-reopen latency and
// the snapshot-vs-genesis-replay speedup. Emits BENCH_ledger.json.
//
// Reopen cost is dominated by WAL-suffix work (decode + delta apply +
// batched signature re-verification); the snapshot prefix is trusted,
// so checkpointing turns reopen from O(history) into O(suffix). The
// headline number is the speedup of snapshot-reopen over full
// genesis-replay at the same 100k-block history — the durable ledger's
// reason to exist (target >= 5x).
//
// Usage: bench_ledger [--quick]   (--quick scales history 10x down)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "chain/chain.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "ledger/ledger.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;

namespace {

namespace fs = std::filesystem;

struct Actors {
  crypto::KeyPair alice, bob;
  chain::Address a, b;
};

// Registers the bench accounts (idempotent across reopens).
Actors setup_actors(chain::Chain& chain) {
  Actors x;
  crypto::Drbg rng("bench-ledger", 5);
  x.alice = crypto::KeyPair::generate(rng);
  x.bob = crypto::KeyPair::generate(rng);
  x.a = chain.create_account(x.alice, 1'000'000'000);
  x.b = chain.create_account(x.bob, 1'000'000'000);
  return x;
}

// One signed single-tx block. Signed blocks make reopen honest: the
// genesis-replay path must re-verify every one of these signatures.
void tick(chain::Chain& chain, const Actors& x, std::uint64_t i) {
  chain.call(
      x.alice, "bench tick " + std::to_string(i), [](chain::CallContext&) {},
      /*value=*/1 + (i & 7), x.b);
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

double append_throughput(const std::string& dir, bool fsync_each,
                         std::uint64_t blocks) {
  fs::remove_all(dir);
  ledger::Options opts;
  opts.snapshot_interval = 0;
  opts.fsync_each_append = fsync_each;
  auto pc = ledger::open(dir, opts);
  const Actors x = setup_actors(pc->chain());
  Stopwatch sw;
  for (std::uint64_t i = 0; i < blocks; ++i) tick(pc->chain(), x, i);
  if (!fsync_each) pc->ledger().sync();
  const double secs = sw.seconds();
  fs::remove_all(dir);
  return static_cast<double>(blocks) / secs;
}

// Cold reopen: construct a fresh PersistentChain over `dir` and time it
// (snapshot load, WAL replay, signature re-verification, validation).
double timed_reopen(const std::string& dir, ledger::Stats* stats_out) {
  ledger::Options opts;
  opts.snapshot_interval = 0;  // measure, never write, snapshots
  Stopwatch sw;
  auto pc = ledger::open(dir, opts);
  const double secs = sw.seconds();
  if (stats_out != nullptr) *stats_out = pc->ledger().stats();
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t scale = quick ? 10 : 1;
  const std::uint64_t kSmall = 10'000 / scale;
  const std::uint64_t kLarge = 100'000 / scale;
  const std::uint64_t kAppendBlocks = 2'000 / scale;

  const std::string root =
      (fs::temp_directory_path() / "zkdet-bench-ledger").string();

  std::printf("==============================================================\n");
  std::printf("Durable ledger — append / cold reopen / snapshot speedup\n");
  std::printf("history: %llu and %llu single-tx signed blocks%s\n",
              static_cast<unsigned long long>(kSmall),
              static_cast<unsigned long long>(kLarge),
              quick ? " (--quick)" : "");
  std::printf("==============================================================\n");

  // --- append throughput --------------------------------------------------
  const double bps_fsync = append_throughput(root, true, kAppendBlocks);
  const double bps_batched = append_throughput(root, false, kAppendBlocks);
  std::printf("append, fsync every record : %10.0f blocks/s\n", bps_fsync);
  std::printf("append, batched durability : %10.0f blocks/s\n", bps_batched);

  // --- build one history, measure reopen at both sizes --------------------
  fs::remove_all(root);
  ledger::Options build_opts;
  build_opts.snapshot_interval = 0;  // pure WAL: genesis replay on reopen
  build_opts.fsync_each_append = false;
  double reopen_small = 0, reopen_large_replay = 0, reopen_large_snap = 0;
  std::uint64_t wal_bytes = 0, snap_bytes = 0;
  {
    auto pc = ledger::open(root, build_opts);
    const Actors x = setup_actors(pc->chain());
    Stopwatch build_sw;
    for (std::uint64_t i = 0; pc->chain().height() < 1 + kSmall; ++i) {
      tick(pc->chain(), x, i);
    }
    pc->ledger().sync();
    std::printf("built %llu-block history in %s\n",
                static_cast<unsigned long long>(kSmall),
                fmt_seconds(build_sw.seconds()).c_str());
  }
  ledger::Stats st_small;
  reopen_small = timed_reopen(root, &st_small);
  std::printf("cold reopen @ %6llu blocks (genesis replay)  : %s\n",
              static_cast<unsigned long long>(kSmall),
              fmt_seconds(reopen_small).c_str());

  {
    // Continue the same history out to the large size.
    auto pc = ledger::open(root, build_opts);
    const Actors x = setup_actors(pc->chain());
    Stopwatch build_sw;
    for (std::uint64_t i = kSmall; pc->chain().height() < 1 + kLarge; ++i) {
      tick(pc->chain(), x, i);
    }
    pc->ledger().sync();
    std::printf("extended to %llu blocks in %s\n",
                static_cast<unsigned long long>(kLarge),
                fmt_seconds(build_sw.seconds()).c_str());
  }
  wal_bytes = dir_bytes(root);
  ledger::Stats st_replay;
  reopen_large_replay = timed_reopen(root, &st_replay);
  std::printf("cold reopen @ %6llu blocks (genesis replay)  : %s  "
              "(%llu blocks replayed)\n",
              static_cast<unsigned long long>(kLarge),
              fmt_seconds(reopen_large_replay).c_str(),
              static_cast<unsigned long long>(st_replay.replayed_blocks));

  // --- checkpoint the same history, reopen through the snapshot ----------
  {
    auto pc = ledger::open(root, build_opts);
    Stopwatch snap_sw;
    pc->ledger().snapshot_now();
    std::printf("snapshot_now() on the %llu-block chain        : %s\n",
                static_cast<unsigned long long>(kLarge),
                fmt_seconds(snap_sw.seconds()).c_str());
  }
  snap_bytes = dir_bytes(root);
  ledger::Stats st_snap;
  reopen_large_snap = timed_reopen(root, &st_snap);
  const double speedup = reopen_large_replay / reopen_large_snap;
  std::printf("cold reopen @ %6llu blocks (snapshot)        : %s  "
              "(%llu from snapshot, %llu replayed)\n",
              static_cast<unsigned long long>(kLarge),
              fmt_seconds(reopen_large_snap).c_str(),
              static_cast<unsigned long long>(st_snap.snapshot_blocks),
              static_cast<unsigned long long>(st_snap.replayed_blocks));
  std::printf("snapshot reopen speedup over genesis replay   : %.1fx %s\n",
              speedup, speedup >= 5.0 ? "(target >=5x: OK)"
                                      : "(below 5x target)");
  fs::remove_all(root);

  std::ofstream json("BENCH_ledger.json");
  json << "{\n  \"bench\": \"ledger_persistence\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"append_blocks_per_sec_fsync\": " << bps_fsync << ",\n"
       << "  \"append_blocks_per_sec_batched\": " << bps_batched << ",\n"
       << "  \"history_small_blocks\": " << kSmall << ",\n"
       << "  \"history_large_blocks\": " << kLarge << ",\n"
       << "  \"reopen_small_replay_seconds\": " << reopen_small << ",\n"
       << "  \"reopen_large_replay_seconds\": " << reopen_large_replay
       << ",\n"
       << "  \"reopen_large_snapshot_seconds\": " << reopen_large_snap
       << ",\n"
       << "  \"snapshot_speedup\": " << speedup << ",\n"
       << "  \"wal_bytes_at_large\": " << wal_bytes << ",\n"
       << "  \"dir_bytes_after_snapshot\": " << snap_bytes << "\n}\n";
  std::printf("wrote BENCH_ledger.json\n");
  return speedup >= 5.0 ? 0 : 1;
}
