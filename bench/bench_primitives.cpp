// Microbenchmarks of the cryptographic substrates (google-benchmark).
//
// Not a paper table by itself, but the ingredients the paper's numbers
// decompose into: field/curve arithmetic, pairing, the circuit-friendly
// primitives (MiMC, Poseidon) vs the traditional hash (SHA-256), MSM and
// NTT scaling.
#include <benchmark/benchmark.h>

#include "crypto/mimc.hpp"
#include "crypto/poseidon.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "ec/msm.hpp"
#include "ec/pairing.hpp"
#include "ff/ntt.hpp"

using namespace zkdet;
using ff::Fr;

namespace {

crypto::Drbg& rng() {
  static crypto::Drbg r(1);
  return r;
}

void BM_FrMul(benchmark::State& state) {
  Fr a = rng().random_fr();
  const Fr b = rng().random_fr();
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FrMul);

void BM_FrInverse(benchmark::State& state) {
  Fr a = rng().random_fr();
  for (auto _ : state) {
    a = a.inverse() + Fr::one();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FrInverse);

void BM_Fp12Mul(benchmark::State& state) {
  ff::Fp12 a;
  for (auto& c : a.c) c = ff::Fp2{ff::random_field<ff::Fp>(rng()),
                                  ff::random_field<ff::Fp>(rng())};
  ff::Fp12 b = a;
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Fp12Mul);

void BM_G1Add(benchmark::State& state) {
  ec::G1 p = ec::G1::generator().mul(rng().random_fr());
  const ec::G1 q = ec::G1::generator().mul(rng().random_fr());
  for (auto _ : state) {
    p += q;
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_G1Add);

void BM_G1ScalarMul(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator();
  const Fr k = rng().random_fr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_Pairing(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator().mul(rng().random_fr());
  const ec::G2 q = ec::G2::generator().mul(rng().random_fr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::pairing(p, q));
  }
}
BENCHMARK(BM_Pairing);

void BM_MillerLoop(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator().mul(rng().random_fr());
  const ec::G2 q = ec::G2::generator().mul(rng().random_fr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::miller_loop(p, q));
  }
}
BENCHMARK(BM_MillerLoop);

void BM_Msm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Fr> scalars(n);
  std::vector<ec::G1> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalars[i] = rng().random_fr();
    points[i] = ec::G1::generator().mul(rng().random_fr());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::msm(scalars, points));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Msm)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_Ntt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ff::EvaluationDomain domain(n);
  std::vector<Fr> v(n);
  for (auto& x : v) x = rng().random_fr();
  for (auto _ : state) {
    domain.fft(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Ntt)->Arg(1024)->Arg(4096)->Arg(16384)->Complexity();

void BM_MimcBlock(benchmark::State& state) {
  const Fr k = rng().random_fr();
  Fr m = rng().random_fr();
  for (auto _ : state) {
    m = crypto::mimc_encrypt_block(k, m);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MimcBlock);

void BM_PoseidonHash2(benchmark::State& state) {
  Fr l = rng().random_fr();
  const Fr r = rng().random_fr();
  for (auto _ : state) {
    l = crypto::poseidon_hash2(l, r);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_PoseidonHash2);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

}  // namespace

BENCHMARK_MAIN();
