// Microbenchmarks of the cryptographic substrates (google-benchmark).
//
// Not a paper table by itself, but the ingredients the paper's numbers
// decompose into: field/curve arithmetic, pairing, the circuit-friendly
// primitives (MiMC, Poseidon) vs the traditional hash (SHA-256), MSM and
// NTT scaling.
//
// Extra mode: `--msm-sweep[=quick]` skips google-benchmark and runs the
// old-vs-new MSM comparison (Jacobian-bucket baseline vs signed-digit
// affine buckets) for G1 and G2 across n = 2^8..2^15 (quick: 2^8..2^10),
// emitting BENCH_msm.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/mimc.hpp"
#include "crypto/poseidon.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "ec/msm.hpp"
#include "ec/pairing.hpp"
#include "ff/ntt.hpp"

using namespace zkdet;
using ff::Fr;

namespace {

crypto::Drbg& rng() {
  static crypto::Drbg r(1);
  return r;
}

void BM_FrMul(benchmark::State& state) {
  Fr a = rng().random_fr();
  const Fr b = rng().random_fr();
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FrMul);

void BM_FrInverse(benchmark::State& state) {
  Fr a = rng().random_fr();
  for (auto _ : state) {
    a = a.inverse() + Fr::one();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FrInverse);

void BM_Fp12Mul(benchmark::State& state) {
  ff::Fp12 a;
  for (auto& c : a.c) c = ff::Fp2{ff::random_field<ff::Fp>(rng()),
                                  ff::random_field<ff::Fp>(rng())};
  ff::Fp12 b = a;
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Fp12Mul);

void BM_G1Add(benchmark::State& state) {
  ec::G1 p = ec::G1::generator().mul(rng().random_fr());
  const ec::G1 q = ec::G1::generator().mul(rng().random_fr());
  for (auto _ : state) {
    p += q;
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_G1Add);

void BM_G1ScalarMul(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator();
  const Fr k = rng().random_fr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_Pairing(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator().mul(rng().random_fr());
  const ec::G2 q = ec::G2::generator().mul(rng().random_fr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::pairing(p, q));
  }
}
BENCHMARK(BM_Pairing);

void BM_MillerLoop(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator().mul(rng().random_fr());
  const ec::G2 q = ec::G2::generator().mul(rng().random_fr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::miller_loop(p, q));
  }
}
BENCHMARK(BM_MillerLoop);

void BM_Msm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Fr> scalars(n);
  std::vector<ec::G1> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalars[i] = rng().random_fr();
    points[i] = ec::G1::generator().mul(rng().random_fr());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::msm(scalars, points));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Msm)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_Ntt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ff::EvaluationDomain domain(n);
  std::vector<Fr> v(n);
  for (auto& x : v) x = rng().random_fr();
  for (auto _ : state) {
    domain.fft(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Ntt)->Arg(1024)->Arg(4096)->Arg(16384)->Complexity();

void BM_MimcBlock(benchmark::State& state) {
  const Fr k = rng().random_fr();
  Fr m = rng().random_fr();
  for (auto _ : state) {
    m = crypto::mimc_encrypt_block(k, m);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MimcBlock);

void BM_PoseidonHash2(benchmark::State& state) {
  Fr l = rng().random_fr();
  const Fr r = rng().random_fr();
  for (auto _ : state) {
    l = crypto::poseidon_hash2(l, r);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_PoseidonHash2);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

// --- MSM sweep: Jacobian-bucket baseline vs affine signed-digit path ---

struct MsmRow {
  std::string group;
  std::size_t n = 0;
  double jacobian_seconds = 0;
  double affine_seconds = 0;
  double speedup = 0;
};

// Times `fn()` with enough repetitions to dominate clock noise on small
// inputs, returning seconds per call (best of reps).
template <typename Fn>
double time_best(Fn&& fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    bench::Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

template <typename Jac, typename Aff, typename JacMsm, typename AffMsm>
MsmRow sweep_one(const char* group, std::size_t n,
                 const std::vector<Fr>& scalars, const std::vector<Jac>& points,
                 const std::vector<Aff>& affine, JacMsm&& jac_msm,
                 AffMsm&& aff_msm) {
  const int reps = n <= (1u << 10) ? 5 : (n <= (1u << 12) ? 3 : 2);
  MsmRow row;
  row.group = group;
  row.n = n;
  // Baseline: the pre-overhaul path, Jacobian buckets over Jacobian
  // bases. New path: signed-digit windows over a pre-normalized affine
  // table, matching how Srs::commit() consumes g1_powers_affine().
  row.jacobian_seconds = time_best(
      [&] {
        benchmark::DoNotOptimize(jac_msm(
            std::span<const Fr>(scalars.data(), n),
            std::span<const Jac>(points.data(), n)));
      },
      reps);
  row.affine_seconds = time_best(
      [&] {
        benchmark::DoNotOptimize(aff_msm(
            std::span<const Fr>(scalars.data(), n),
            std::span<const Aff>(affine.data(), n)));
      },
      reps);
  row.speedup =
      row.affine_seconds > 0 ? row.jacobian_seconds / row.affine_seconds : 0;
  std::printf("  %-4s n=%-6zu jacobian %-12s affine %-12s speedup %.2fx\n",
              group, n, bench::fmt_seconds(row.jacobian_seconds).c_str(),
              bench::fmt_seconds(row.affine_seconds).c_str(), row.speedup);
  return row;
}

int run_msm_sweep(bool quick) {
  const std::size_t max_log2 = quick ? 10 : 15;
  const std::size_t max_n = std::size_t{1} << max_log2;
  std::printf("MSM sweep (%s): n = 2^8..2^%zu, Jacobian buckets vs "
              "signed-digit affine buckets\n",
              quick ? "quick" : "full", max_log2);

  crypto::Drbg r(42);
  std::vector<Fr> scalars(max_n);
  std::vector<ec::G1> g1(max_n);
  std::vector<ec::G2> g2(max_n);
  for (std::size_t i = 0; i < max_n; ++i) {
    scalars[i] = r.random_fr();
    g1[i] = ec::g1_mul_generator(r.random_fr());
    g2[i] = ec::g2_mul_generator(r.random_fr());
  }
  const std::vector<ec::G1Affine> g1a = ec::batch_normalize(
      std::span<const ec::G1>(g1));
  const std::vector<ec::G2Affine> g2a = ec::batch_normalize(
      std::span<const ec::G2>(g2));

  std::vector<MsmRow> rows;
  for (std::size_t lg = 8; lg <= max_log2; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    rows.push_back(sweep_one(
        "G1", n, scalars, g1, g1a,
        [](std::span<const Fr> s, std::span<const ec::G1> p) {
          return ec::msm_jacobian(s, p);
        },
        [](std::span<const Fr> s, std::span<const ec::G1Affine> p) {
          return ec::msm(s, p);
        }));
  }
  for (std::size_t lg = 8; lg <= max_log2; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    rows.push_back(sweep_one(
        "G2", n, scalars, g2, g2a,
        [](std::span<const Fr> s, std::span<const ec::G2> p) {
          return ec::msm_jacobian_g2(s, p);
        },
        [](std::span<const Fr> s, std::span<const ec::G2Affine> p) {
          return ec::msm_g2(s, p);
        }));
  }

  std::ofstream json("BENCH_msm.json");
  json << "{\n  \"bench\": \"msm_sweep\",\n"
       << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
       << "  \"baseline\": \"jacobian_buckets\",\n"
       << "  \"candidate\": \"affine_signed_digit_buckets\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"group\": \"" << rows[i].group << "\", \"n\": " << rows[i].n
         << ", \"jacobian_seconds\": " << rows[i].jacobian_seconds
         << ", \"affine_seconds\": " << rows[i].affine_seconds
         << ", \"speedup\": " << rows[i].speedup << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_msm.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--msm-sweep") == 0) return run_msm_sweep(false);
    if (std::strcmp(argv[i], "--msm-sweep=quick") == 0) {
      return run_msm_sweep(true);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
