// Replication benchmark: WAL ship throughput, cold-follower catch-up
// lag (WAL replay vs snapshot bootstrap) and failover promotion time at
// 10k and 100k-block histories. Emits BENCH_repl.json.
//
// The numbers frame the failover story: steady-state shipping must keep
// up with sealing, a fresh follower must catch up in bounded time (the
// snapshot path turns O(history) into O(suffix), same as cold reopen),
// and promotion — truncate the unacked tail + reopen as primary — must
// be fast because it sits on the availability-restoration path.
//
// Usage: bench_repl [--quick]   (--quick scales history 10x down)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "chain/chain.hpp"
#include "crypto/rng.hpp"
#include "ledger/ledger.hpp"
#include "replication/replica_set.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;

namespace {

namespace fs = std::filesystem;

struct Actors {
  crypto::KeyPair alice, bob;
  chain::Address a, b;
};

Actors setup_actors(chain::Chain& chain) {
  Actors x;
  crypto::Drbg rng("bench-repl", 9);
  x.alice = crypto::KeyPair::generate(rng);
  x.bob = crypto::KeyPair::generate(rng);
  x.a = chain.create_account(x.alice, 1'000'000'000);
  x.b = chain.create_account(x.bob, 1'000'000'000);
  return x;
}

// One signed single-tx block; followers re-verify the signature and the
// hash links when they apply it, so shipped blocks are honest work.
void tick(chain::Chain& chain, const Actors& x, std::uint64_t i) {
  chain.call(
      x.alice, "repl tick " + std::to_string(i), [](chain::CallContext&) {},
      /*value=*/1 + (i & 7), x.b);
}

ledger::Options build_opts() {
  ledger::Options opts;
  opts.snapshot_interval = 0;
  opts.fsync_each_append = false;  // batched durability while building
  return opts;
}

// Builds (or extends) a signed history of `blocks` blocks under `dir`.
void build_history(const std::string& dir, std::uint64_t blocks) {
  auto pc = ledger::open(dir, build_opts());
  const Actors x = setup_actors(pc->chain());
  for (std::uint64_t i = 0; pc->chain().height() < 1 + blocks; ++i) {
    tick(pc->chain(), x, i);
  }
  pc->ledger().sync();
}

struct CatchUp {
  double seconds = 0;
  std::uint64_t records = 0;
};

// Cold follower attach: fresh ReplicaSet over the existing history,
// pump until the follower acks the durable watermark.
CatchUp timed_catch_up(const std::string& dir) {
  const std::string repl_dir = dir + "/standby";
  fs::remove_all(repl_dir);
  auto pc = ledger::open(dir, build_opts());
  CatchUp out;
  out.records = pc->ledger().durable_watermark();
  Stopwatch sw;
  replication::ReplicaSet reps(pc->ledger(), pc->chain(), repl_dir, 1);
  if (!reps.sync(/*max_rounds=*/1'000'000)) {
    std::fprintf(stderr, "catch-up never converged: %s\n",
                 reps.shipper().status(0).diagnostic.c_str());
    std::exit(1);
  }
  out.seconds = sw.seconds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t scale = quick ? 10 : 1;
  const std::uint64_t kSmall = 10'000 / scale;
  const std::uint64_t kLarge = 100'000 / scale;
  const std::uint64_t kShipBlocks = 2'000 / scale;

  const std::string root =
      (fs::temp_directory_path() / "zkdet-bench-repl").string();
  fs::remove_all(root);

  std::printf("==============================================================\n");
  std::printf("Replication — ship throughput / catch-up lag / promotion\n");
  std::printf("histories: %llu and %llu single-tx signed blocks%s\n",
              static_cast<unsigned long long>(kSmall),
              static_cast<unsigned long long>(kLarge),
              quick ? " (--quick)" : "");
  std::printf("==============================================================\n");

  // --- steady-state ship throughput ---------------------------------------
  // Seal and pump in lockstep: every block is shipped, applied, fsynced
  // on the follower and acked before the next seal — the tightest
  // (worst-case) pipelining the pump model allows.
  double ship_bps = 0;
  {
    const std::string dir = root + "/ship";
    auto pc = ledger::open(dir, build_opts());
    const Actors x = setup_actors(pc->chain());
    replication::ReplicaSet reps(pc->ledger(), pc->chain(), dir + "/standby",
                                 1);
    if (!reps.sync()) std::exit(1);
    Stopwatch sw;
    for (std::uint64_t i = 0; i < kShipBlocks; ++i) {
      tick(pc->chain(), x, i);
      pc->ledger().sync();  // publish the record to the durable watermark
      reps.pump();
    }
    if (!reps.sync()) std::exit(1);
    ship_bps = static_cast<double>(kShipBlocks) / sw.seconds();
    std::printf("ship throughput (seal+ship+ack lockstep)      : %10.0f blocks/s\n",
                ship_bps);
  }

  // --- catch-up lag: WAL replay at 10k and 100k ---------------------------
  const std::string hist = root + "/hist";
  build_history(hist, kSmall);
  const CatchUp cu_small = timed_catch_up(hist);
  std::printf("cold follower catch-up @ %6llu blocks (WAL)  : %s  (%.0f rec/s)\n",
              static_cast<unsigned long long>(kSmall),
              fmt_seconds(cu_small.seconds).c_str(),
              static_cast<double>(cu_small.records) / cu_small.seconds);

  build_history(hist, kLarge);
  const CatchUp cu_large = timed_catch_up(hist);
  std::printf("cold follower catch-up @ %6llu blocks (WAL)  : %s  (%.0f rec/s)\n",
              static_cast<unsigned long long>(kLarge),
              fmt_seconds(cu_large.seconds).c_str(),
              static_cast<double>(cu_large.records) / cu_large.seconds);

  // --- catch-up lag: snapshot bootstrap at 100k ---------------------------
  double cu_snap_seconds = 0;
  {
    auto pc = ledger::open(hist, build_opts());
    pc->ledger().snapshot_now();  // rotates the WAL: cold attach must
  }                               // bootstrap from the snapshot
  {
    const CatchUp cu = timed_catch_up(hist);
    cu_snap_seconds = cu.seconds;
    std::printf("cold follower catch-up @ %6llu blocks (snap) : %s\n",
                static_cast<unsigned long long>(kLarge),
                fmt_seconds(cu_snap_seconds).c_str());
  }

  // --- promotion time at 100k ---------------------------------------------
  // Kill the primary (scope exit), promote the caught-up follower and
  // reopen its directory as the new primary.
  double promote_seconds = 0, takeover_seconds = 0;
  std::uint64_t primary_height = 0;
  std::array<std::uint8_t, 32> primary_tip{};
  std::string promoted_dir;
  {
    auto pc = ledger::open(hist, build_opts());
    replication::ReplicaSet reps(pc->ledger(), pc->chain(),
                                 hist + "/standby", 1);
    if (!reps.sync(/*max_rounds=*/1'000'000)) std::exit(1);
    primary_height = pc->chain().height();
    primary_tip = pc->chain().blocks().back().hash;
    Stopwatch sw;
    promoted_dir = reps.promote(0);
    promote_seconds = sw.seconds();
  }
  {
    Stopwatch sw;
    auto pc = ledger::open(promoted_dir, build_opts());
    takeover_seconds = sw.seconds();
    if (pc->chain().height() != primary_height ||
        pc->chain().blocks().back().hash != primary_tip) {
      std::fprintf(stderr, "promoted chain diverged from the dead primary\n");
      return 1;
    }
  }
  std::printf("promotion (truncate unacked tail) @ %6llu    : %s\n",
              static_cast<unsigned long long>(kLarge),
              fmt_seconds(promote_seconds).c_str());
  std::printf("promoted-primary takeover reopen @ %6llu     : %s\n",
              static_cast<unsigned long long>(kLarge),
              fmt_seconds(takeover_seconds).c_str());
  fs::remove_all(root);

  std::ofstream json("BENCH_repl.json");
  json << "{\n  \"bench\": \"replication\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"ship_blocks_per_sec_lockstep\": " << ship_bps << ",\n"
       << "  \"history_small_blocks\": " << kSmall << ",\n"
       << "  \"history_large_blocks\": " << kLarge << ",\n"
       << "  \"catch_up_small_seconds\": " << cu_small.seconds << ",\n"
       << "  \"catch_up_large_seconds\": " << cu_large.seconds << ",\n"
       << "  \"catch_up_large_snapshot_seconds\": " << cu_snap_seconds
       << ",\n"
       << "  \"promotion_seconds\": " << promote_seconds << ",\n"
       << "  \"takeover_reopen_seconds\": " << takeover_seconds << "\n}\n";
  std::printf("wrote BENCH_repl.json\n");
  return 0;
}
