// RPC serving-layer benchmark: sustained request throughput and latency
// through the socket front end, plus deterministic load shedding under
// 2x overload. Emits BENCH_rpc.json.
//
// Three phases over a real AF_UNIX socket (the same byte path an
// out-of-process client uses):
//
//   1. register:  one principal per client, through the server.
//   2. sustained: closed-loop transfers, one outstanding request per
//      client — every admitted request rides the txpool's scheduler and
//      parallel executor. Per-request latency is sampled from send to
//      response arrival; p50/p99 come from the full sample set.
//   3. overload:  2x the admission queue capacity blasted before the
//      server pumps once. Every request must get exactly one typed
//      response (kOk or kOverloaded — never silence), and the queue
//      depth observed across pumps must never exceed the bound.
//
// The bench FAILS (exit 1) if any request lacks exactly one response,
// if the queue bound is ever exceeded, or if sustained p99 exceeds a
// generous absolute budget — so CI catches a serving-layer regression,
// not just a slowdown.
//
// Usage: bench_rpc [--quick]   (--quick scales request counts 10x down)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/system.hpp"
#include "core/transformation.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "runtime/stats.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;

namespace {

namespace fs = std::filesystem;

rpc::Request make_rq(rpc::Op op, std::uint64_t id, std::uint64_t client = 0,
                     std::uint64_t a = 0, std::uint64_t b = 0) {
  rpc::Request rq;
  rq.op = op;
  rq.id = id;
  rq.client = client;
  rq.a = a;
  rq.b = b;
  return rq;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) / 100.0 + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kClients = 4;
  const std::size_t kRequests = (quick ? 400 : 4'000);  // sustained total
  // Enforced bound on sustained p99: generous in absolute terms (the
  // point is catching a serving-layer regression — a stuck pump, an
  // unbounded queue — not micro-benchmarking the executor).
  const double kP99BudgetSeconds = 5.0;

  std::printf("==============================================================\n");
  std::printf("RPC front end — sustained req/s, latency, shed under overload\n");
  std::printf("clients: %zu, sustained requests: %zu%s\n", kClients, kRequests,
              quick ? " (--quick)" : "");
  std::printf("==============================================================\n");

  core::ZkdetSystem sys(1 << 12, 77);
  core::TransformationProtocol tp(sys);
  rpc::Dispatcher disp(sys, tp, /*seed=*/13);

  const fs::path sock_path =
      fs::temp_directory_path() / "zkdet-bench-rpc.sock";
  auto listener = rpc::sockio::listen_unix(sock_path.string());
  if (!listener) {
    std::fprintf(stderr, "cannot listen on %s\n", sock_path.c_str());
    return 1;
  }
  rpc::AdmissionConfig cfg;
  cfg.queue_capacity = 64;
  cfg.max_inflight = 16;
  rpc::Server server(disp, std::move(*listener), cfg);

  // --- phase 1: register one principal per client -------------------------
  std::vector<rpc::Client> clients;
  std::vector<std::uint64_t> handles;
  std::uint64_t next_id = 1;
  for (std::size_t c = 0; c < kClients; ++c) {
    auto client = rpc::Client::connect_unix(sock_path.string());
    if (!client) {
      std::fprintf(stderr, "client %zu failed to connect\n", c);
      return 1;
    }
    clients.push_back(std::move(*client));
    const auto rs = clients.back().call(
        server, make_rq(rpc::Op::kRegister, next_id++, 0, 1'000'000'000));
    if (!rs || rs->status != rpc::Status::kOk) {
      std::fprintf(stderr, "register failed for client %zu\n", c);
      return 1;
    }
    handles.push_back(rs->value);
  }

  // --- phase 2: sustained closed-loop transfers ---------------------------
  // One outstanding request per client; a response immediately triggers
  // the next send. Transfers alternate directions between neighbouring
  // principals so the scheduler sees real account conflicts.
  struct Outstanding {
    std::uint64_t id = 0;
    Stopwatch sent;
  };
  std::vector<Outstanding> pending(kClients);
  std::vector<double> latencies;
  latencies.reserve(kRequests);
  std::size_t sent = 0;
  auto send_next = [&](std::size_t c) {
    const std::uint64_t dest = handles[(c + 1) % kClients];
    pending[c].id = next_id++;
    pending[c].sent = Stopwatch();
    clients[c].send(make_rq(rpc::Op::kTransfer, pending[c].id, handles[c],
                            dest, 1 + (sent & 7)));
    ++sent;
  };
  Stopwatch sustained;
  for (std::size_t c = 0; c < kClients; ++c) send_next(c);
  std::size_t guard = 0;
  while (latencies.size() < kRequests) {
    server.pump();
    bool progressed = false;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients[c].flush();
      clients[c].poll();
      if (pending[c].id == 0) continue;
      if (auto rs = clients[c].take(pending[c].id)) {
        if (rs->status != rpc::Status::kOk) {
          std::fprintf(stderr, "sustained transfer failed: %s\n",
                       rs->text.c_str());
          return 1;
        }
        latencies.push_back(pending[c].sent.seconds());
        pending[c].id = 0;
        progressed = true;
        if (sent < kRequests) send_next(c);
      }
    }
    guard = progressed ? 0 : guard + 1;
    if (guard > 100'000) {
      std::fprintf(stderr, "sustained phase stalled at %zu/%zu responses\n",
                   latencies.size(), kRequests);
      return 1;
    }
  }
  const double sustained_seconds = sustained.seconds();
  const double req_per_sec =
      static_cast<double>(kRequests) / sustained_seconds;
  const double p50 = percentile(latencies, 50);
  const double p99 = percentile(latencies, 99);
  std::printf("sustained throughput (closed loop, %zu clients) : %10.0f req/s\n",
              kClients, req_per_sec);
  std::printf("latency p50 / p99                              : %s / %s\n",
              fmt_seconds(p50).c_str(), fmt_seconds(p99).c_str());
  if (p99 > kP99BudgetSeconds) {
    std::fprintf(stderr, "FAIL: p99 %.3fs exceeds the %.1fs budget\n", p99,
                 kP99BudgetSeconds);
    return 1;
  }

  // --- phase 3: 2x overload ------------------------------------------------
  // Blast 2x the queue capacity in pings from one client before the
  // server pumps at all, then pump to quiescence. Deterministic
  // contract: queue depth never exceeds its bound, every request is
  // answered exactly once, sheds are typed kOverloaded.
  const std::size_t kBurst = 2 * cfg.queue_capacity;
  const std::uint64_t burst_base = next_id;
  for (std::size_t i = 0; i < kBurst; ++i) {
    clients[0].send(make_rq(rpc::Op::kPing, next_id++, 0, i));
  }
  std::size_t max_depth = 0;
  for (int round = 0; round < 10'000 && clients[0].stashed() < kBurst;
       ++round) {
    server.pump();
    max_depth = std::max(max_depth, server.admission().depth());
    clients[0].flush();
    clients[0].poll();
  }
  std::size_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    auto rs = clients[0].take(burst_base + i);
    if (!rs) {
      std::fprintf(stderr, "FAIL: overload request %zu got no response\n", i);
      return 1;
    }
    if (rs->status == rpc::Status::kOk) {
      ++ok;
    } else if (rs->status == rpc::Status::kOverloaded) {
      ++shed;
    } else {
      std::fprintf(stderr, "FAIL: unexpected status %u under overload\n",
                   static_cast<unsigned>(rs->status));
      return 1;
    }
  }
  if (max_depth > cfg.queue_capacity) {
    std::fprintf(stderr, "FAIL: queue depth %zu exceeded bound %zu\n",
                 max_depth, cfg.queue_capacity);
    return 1;
  }
  if (shed == 0) {
    std::fprintf(stderr, "FAIL: 2x overload shed nothing — bound not real\n");
    return 1;
  }
  const double shed_rate =
      static_cast<double>(shed) / static_cast<double>(kBurst);
  std::printf("overload (2x queue): ok %zu, shed %zu (%.0f%%), max depth %zu/%zu\n",
              ok, shed, 100.0 * shed_rate, max_depth, cfg.queue_capacity);

  const auto& st = runtime::stats();
  std::printf("counters: admitted %llu, shed %llu, batched proves %llu\n",
              static_cast<unsigned long long>(st.rpc_admitted),
              static_cast<unsigned long long>(st.rpc_shed),
              static_cast<unsigned long long>(st.rpc_batched_proves));
  fs::remove(sock_path);

  std::ofstream json("BENCH_rpc.json");
  json << "{\n  \"bench\": \"rpc\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"clients\": " << kClients << ",\n"
       << "  \"sustained_requests\": " << kRequests << ",\n"
       << "  \"sustained_req_per_sec\": " << req_per_sec << ",\n"
       << "  \"latency_p50_us\": " << p50 * 1e6 << ",\n"
       << "  \"latency_p99_us\": " << p99 * 1e6 << ",\n"
       << "  \"overload_burst\": " << kBurst << ",\n"
       << "  \"overload_ok\": " << ok << ",\n"
       << "  \"overload_shed\": " << shed << ",\n"
       << "  \"overload_shed_rate\": " << shed_rate << ",\n"
       << "  \"overload_max_queue_depth\": " << max_depth << ",\n"
       << "  \"queue_capacity\": " << cfg.queue_capacity << ",\n"
       << "  \"max_inflight\": " << cfg.max_inflight << "\n}\n";
  std::printf("wrote BENCH_rpc.json\n");
  return 0;
}
