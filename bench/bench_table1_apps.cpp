// Table I reproduction: proof of transformation for data processing
// applications (logistic regression and transformer).
//
// Paper (i9-11900K, Snarkjs):
//   Logistic regression:   495 entries -> 3.11 s,  1,963 -> 21.73 s,
//                           10,210 -> 131.44 s  (proof ~2.4 KB)
//   Transformer:            201,163 params -> 1min29s,
//                           1,016,783 params -> 8min12s
//
// We run the same two predicate families at scaled-down sizes
// (single-core container; DESIGN.md substitution #7) and report proof
// generation time and proof size. The shape to reproduce: LR proof time
// grows ~linearly in the entry count; transformer cost grows with the
// parameter count; proof size stays constant (ours 768 B raw vs the
// paper's ~2.4 KB JSON encoding of the same 9 G1 + 6 field elements).
#include <cstdio>

#include "bench_util.hpp"
#include "core/apps.hpp"
#include "core/circuits.hpp"
#include "plonk/plonk.hpp"

using namespace zkdet;
using bench::Stopwatch;
using bench::fmt_seconds;
using ff::Fr;
using gadgets::FixParams;

namespace {

struct Row {
  std::string task;
  std::size_t size_metric;
  double prove_s;
  std::size_t gates;
};

Row run_processing(const std::string& task, std::size_t size_metric,
                   const std::vector<Fr>& source,
                   const core::TransformGadget& gadget, const plonk::Srs& srs,
                   crypto::Drbg& rng) {
  const Fr o_s = rng.random_fr();
  const Fr o_d = rng.random_fr();
  gadgets::CircuitBuilder bld =
      core::build_processing_circuit(source, o_s, o_d, gadget);
  const auto keys = plonk::preprocess(bld.cs(), srs);
  if (!keys) return {task, size_metric, -1, bld.cs().num_rows()};
  Stopwatch sw;
  const auto proof = plonk::prove(keys->pk, bld.cs(), srs, bld.witness(), rng);
  return {task, size_metric, proof ? sw.seconds() : -1, bld.cs().num_rows()};
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Table I — Proof of transformation for data processing\n");
  std::printf("(scaled-down sweep; paper numbers quoted in the header above\n");
  std::printf(" each block; shape: ~linear growth, constant proof size)\n");
  std::printf("==============================================================\n");

  crypto::Drbg rng(1);
  const plonk::Srs srs = plonk::Srs::setup((1 << 16) + 16, rng);
  const FixParams fp;

  std::printf("%-22s %-14s %-12s %-14s %-10s\n", "task", "entries/params",
              "gates", "proof gen", "proof size");

  // --- logistic regression (paper: 495 / 1,963 / 10,210 entries) ---
  for (const std::size_t n : {4u, 8u, 16u}) {
    const std::size_t k = 2;
    const core::LrDataset data = core::LrDataset::synthesize(n, k, rng);
    const core::LrModel model = core::LrModel::train(data, 0.25, 100);
    const Row row = run_processing(
        "logistic regression", n, data.encode(fp),
        core::lr_step_gadget(n, k, 0.25, model, 1.0, fp), srs, rng);
    std::printf("%-22s %-14zu %-12zu %-14s %-10s\n", row.task.c_str(),
                row.size_metric, row.gates,
                row.prove_s < 0 ? "FAILED" : fmt_seconds(row.prove_s).c_str(),
                "768 B");
  }

  // --- transformer encoder block (paper: 201k / 1M parameters) ---
  struct Cfg {
    std::size_t L, d, h;
  };
  for (const Cfg cfg : {Cfg{2, 2, 4}, Cfg{2, 4, 8}, Cfg{3, 4, 8}}) {
    const core::TransformerWeights w =
        core::TransformerWeights::random(cfg.d, cfg.h, rng);
    std::vector<Fr> source;
    for (std::size_t i = 0; i < cfg.L * cfg.d; ++i) {
      source.push_back(gadgets::fix_encode(
          (static_cast<double>(rng() % 2001) - 1000.0) / 1000.0, fp));
    }
    const Row row = run_processing(
        "transformer", w.parameter_count(), source,
        core::transformer_gadget(cfg.L, w, fp), srs, rng);
    std::printf("%-22s %-14zu %-12zu %-14s %-10s\n", row.task.c_str(),
                row.size_metric, row.gates,
                row.prove_s < 0 ? "FAILED" : fmt_seconds(row.prove_s).c_str(),
                "768 B");
  }

  std::printf("\nshape check: proof time grows with entries/parameters while\n");
  std::printf("the proof stays constant-size, as in Table I.\n");
  return 0;
}
