// Table II reproduction: gas consumption of the ZKDET smart contracts.
//
// Paper (Rinkeby):
//   ZKDET contract deployment      1,020,954
//   Verifier contract deployment   1,644,969
//   Token minting                    106,048
//   Token transferring                36,574
//   Token burning                     50,084
//   Aggregation                       96,780
//   Partition                         83,124
//   Duplication                       94,012
//
// We run the same operations through the chain substrate's EVM-style gas
// meter (DESIGN.md substitution #4) and print measured vs paper values.
#include <cstdio>

#include "core/circuits.hpp"
#include "core/system.hpp"

using namespace zkdet;
using chain::CallContext;
using chain::Formula;
using chain::Receipt;
using ff::Fr;

namespace {

void row(const char* op, std::uint64_t ours, std::uint64_t paper) {
  const double ratio =
      paper == 0 ? 0.0 : static_cast<double>(ours) / static_cast<double>(paper);
  std::printf("%-34s %12llu %12llu %8.2fx\n", op,
              static_cast<unsigned long long>(ours),
              static_cast<unsigned long long>(paper), ratio);
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Table II — Gas consumption of smart contracts in ZKDET\n");
  std::printf("==============================================================\n");
  std::printf("%-34s %12s %12s %8s\n", "operation", "measured", "paper",
              "ratio");

  crypto::Drbg rng(1);
  chain::Chain chain;
  const crypto::KeyPair operator_keys = crypto::KeyPair::generate(rng);
  const crypto::KeyPair alice = crypto::KeyPair::generate(rng);
  const crypto::KeyPair bob = crypto::KeyPair::generate(rng);
  chain.create_account(operator_keys, 1'000'000);
  chain.create_account(alice, 1'000'000);
  chain.create_account(bob, 1'000'000);

  // --- deployments ---
  Receipt deploy_nft;
  chain::DataNft& nft = chain.deploy<chain::DataNft>(operator_keys, &deploy_nft);
  row("ZKDET contract deployment", deploy_nft.gas_used, 1'020'954);

  // verifier with the pi_k verifying key baked in
  const plonk::Srs srs = plonk::Srs::setup((1 << 12) + 16, rng);
  gadgets::CircuitBuilder kb =
      core::build_key_circuit(Fr::one(), Fr::from_u64(2), Fr::from_u64(3));
  const auto keys = plonk::preprocess(kb.cs(), srs);
  Receipt deploy_verifier;
  chain.deploy<chain::PlonkVerifierContract>(operator_keys, &deploy_verifier,
                                             keys->vk);
  row("Verifier contract deployment", deploy_verifier.gas_used, 1'644'969);

  // --- token operations (steady state: warm the per-account balance and
  //     counter slots first, as on a live chain) ---
  std::uint64_t warm_a = 0, warm_b = 0;
  chain.call(alice, "warmup-mint-a", [&](CallContext& ctx) {
    warm_a = nft.mint(ctx, Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3));
  });
  chain.call(bob, "warmup-mint-b", [&](CallContext& ctx) {
    warm_b = nft.mint(ctx, Fr::from_u64(4), Fr::from_u64(5), Fr::from_u64(6));
  });
  (void)warm_b;

  std::uint64_t token_a = 0, token_b = 0;
  const Receipt mint = chain.call(alice, "mint", [&](CallContext& ctx) {
    token_a = nft.mint(ctx, Fr::from_u64(11), Fr::from_u64(12),
                       Fr::from_u64(13));
  });
  row("Token minting", mint.gas_used, 106'048);
  chain.call(alice, "mint2", [&](CallContext& ctx) {
    token_b = nft.mint(ctx, Fr::from_u64(21), Fr::from_u64(22),
                       Fr::from_u64(23));
  });

  const Receipt xfer = chain.call(alice, "transfer", [&](CallContext& ctx) {
    nft.transfer_from(ctx, crypto::address_of(alice.pk),
                      crypto::address_of(bob.pk), warm_a);
  });
  row("Token transferring", xfer.gas_used, 36'574);

  // --- transformations: Table II meters the provenance registration of
  //     a derived token (prevIds[] + formula), not the mint it follows.
  std::uint64_t derived1 = 0, derived2 = 0, derived3 = 0;
  chain.call(alice, "mint-derived-1", [&](CallContext& ctx) {
    derived1 = nft.mint(ctx, Fr::from_u64(41), Fr::from_u64(42),
                        Fr::from_u64(43));
  });
  chain.call(alice, "mint-derived-2", [&](CallContext& ctx) {
    derived2 = nft.mint(ctx, Fr::from_u64(51), Fr::from_u64(52),
                        Fr::from_u64(53));
  });
  chain.call(alice, "mint-derived-3", [&](CallContext& ctx) {
    derived3 = nft.mint(ctx, Fr::from_u64(61), Fr::from_u64(62),
                        Fr::from_u64(63));
  });

  const Receipt r_agg = chain.call(alice, "aggregate", [&](CallContext& ctx) {
    nft.record_transformation(ctx, derived1, Formula::kAggregation,
                              {token_a, token_b});
  });
  row("Aggregation", r_agg.gas_used, 96'780);

  const Receipt r_part = chain.call(alice, "partition", [&](CallContext& ctx) {
    nft.record_transformation(ctx, derived2, Formula::kPartition, {derived1});
  });
  row("Partition", r_part.gas_used, 83'124);

  const Receipt r_dup = chain.call(alice, "duplicate", [&](CallContext& ctx) {
    nft.record_transformation(ctx, derived3, Formula::kDuplication,
                              {derived1});
  });
  row("Duplication", r_dup.gas_used, 94'012);

  const Receipt burn = chain.call(alice, "burn", [&](CallContext& ctx) {
    nft.burn(ctx, token_a);
  });
  row("Token burning", burn.gas_used, 50'084);

  std::printf("\nshape check: one-time deployments cost ~1-1.6M gas; metadata\n");
  std::printf("operations stay around 40-110k gas — the economics argument of\n");
  std::printf("paper VI-C (NFTs store only metadata, so invocation is cheap).\n");
  return 0;
}
