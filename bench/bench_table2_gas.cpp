// Table II reproduction: gas consumption of the ZKDET smart contracts.
//
// Paper (Rinkeby):
//   ZKDET contract deployment      1,020,954
//   Verifier contract deployment   1,644,969
//   Token minting                    106,048
//   Token transferring                36,574
//   Token burning                     50,084
//   Aggregation                       96,780
//   Partition                         83,124
//   Duplication                       94,012
//
// We run the same operations through the chain substrate's EVM-style gas
// meter (DESIGN.md substitution #4) and print measured vs paper values.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/claim.hpp"
#include "core/circuits.hpp"
#include "core/system.hpp"

using namespace zkdet;
using chain::CallContext;
using chain::Formula;
using chain::Receipt;
using ff::Fr;

namespace {

void row(const char* op, std::uint64_t ours, std::uint64_t paper) {
  const double ratio =
      paper == 0 ? 0.0 : static_cast<double>(ours) / static_cast<double>(paper);
  std::printf("%-34s %12llu %12llu %8.2fx\n", op,
              static_cast<unsigned long long>(ours),
              static_cast<unsigned long long>(paper), ratio);
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Table II — Gas consumption of smart contracts in ZKDET\n");
  std::printf("==============================================================\n");
  std::printf("%-34s %12s %12s %8s\n", "operation", "measured", "paper",
              "ratio");

  crypto::Drbg rng(1);
  chain::Chain chain;
  const crypto::KeyPair operator_keys = crypto::KeyPair::generate(rng);
  const crypto::KeyPair alice = crypto::KeyPair::generate(rng);
  const crypto::KeyPair bob = crypto::KeyPair::generate(rng);
  chain.create_account(operator_keys, 1'000'000);
  chain.create_account(alice, 1'000'000);
  chain.create_account(bob, 1'000'000);

  // --- deployments ---
  Receipt deploy_nft;
  chain::DataNft& nft = chain.deploy<chain::DataNft>(operator_keys, &deploy_nft);
  row("ZKDET contract deployment", deploy_nft.gas_used, 1'020'954);

  // verifier with the pi_k verifying key baked in
  const plonk::Srs srs = plonk::Srs::setup((1 << 12) + 16, rng);
  gadgets::CircuitBuilder kb =
      core::build_key_circuit(Fr::one(), Fr::from_u64(2), Fr::from_u64(3));
  const auto keys = plonk::preprocess(kb.cs(), srs);
  Receipt deploy_verifier;
  chain::PlonkVerifierContract& verifier =
      chain.deploy<chain::PlonkVerifierContract>(operator_keys,
                                                 &deploy_verifier, keys->vk);
  row("Verifier contract deployment", deploy_verifier.gas_used, 1'644'969);

  // --- token operations (steady state: warm the per-account balance and
  //     counter slots first, as on a live chain) ---
  std::uint64_t warm_a = 0, warm_b = 0;
  chain.call(alice, "warmup-mint-a", [&](CallContext& ctx) {
    warm_a = nft.mint(ctx, Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3));
  });
  chain.call(bob, "warmup-mint-b", [&](CallContext& ctx) {
    warm_b = nft.mint(ctx, Fr::from_u64(4), Fr::from_u64(5), Fr::from_u64(6));
  });
  (void)warm_b;

  std::uint64_t token_a = 0, token_b = 0;
  const Receipt mint = chain.call(alice, "mint", [&](CallContext& ctx) {
    token_a = nft.mint(ctx, Fr::from_u64(11), Fr::from_u64(12),
                       Fr::from_u64(13));
  });
  row("Token minting", mint.gas_used, 106'048);
  chain.call(alice, "mint2", [&](CallContext& ctx) {
    token_b = nft.mint(ctx, Fr::from_u64(21), Fr::from_u64(22),
                       Fr::from_u64(23));
  });

  const Receipt xfer = chain.call(alice, "transfer", [&](CallContext& ctx) {
    nft.transfer_from(ctx, crypto::address_of(alice.pk),
                      crypto::address_of(bob.pk), warm_a);
  });
  row("Token transferring", xfer.gas_used, 36'574);

  // --- transformations: Table II meters the provenance registration of
  //     a derived token (prevIds[] + formula), not the mint it follows.
  std::uint64_t derived1 = 0, derived2 = 0, derived3 = 0;
  chain.call(alice, "mint-derived-1", [&](CallContext& ctx) {
    derived1 = nft.mint(ctx, Fr::from_u64(41), Fr::from_u64(42),
                        Fr::from_u64(43));
  });
  chain.call(alice, "mint-derived-2", [&](CallContext& ctx) {
    derived2 = nft.mint(ctx, Fr::from_u64(51), Fr::from_u64(52),
                        Fr::from_u64(53));
  });
  chain.call(alice, "mint-derived-3", [&](CallContext& ctx) {
    derived3 = nft.mint(ctx, Fr::from_u64(61), Fr::from_u64(62),
                        Fr::from_u64(63));
  });

  const Receipt r_agg = chain.call(alice, "aggregate", [&](CallContext& ctx) {
    nft.record_transformation(ctx, derived1, Formula::kAggregation,
                              {token_a, token_b});
  });
  row("Aggregation", r_agg.gas_used, 96'780);

  const Receipt r_part = chain.call(alice, "partition", [&](CallContext& ctx) {
    nft.record_transformation(ctx, derived2, Formula::kPartition, {derived1});
  });
  row("Partition", r_part.gas_used, 83'124);

  const Receipt r_dup = chain.call(alice, "duplicate", [&](CallContext& ctx) {
    nft.record_transformation(ctx, derived3, Formula::kDuplication,
                              {derived1});
  });
  row("Duplication", r_dup.gas_used, 94'012);

  const Receipt burn = chain.call(alice, "burn", [&](CallContext& ctx) {
    nft.burn(ctx, token_a);
  });
  row("Token burning", burn.gas_used, 50'084);

  std::printf("\nshape check: one-time deployments cost ~1-1.6M gas; metadata\n");
  std::printf("operations stay around 40-110k gas — the economics argument of\n");
  std::printf("paper VI-C (NFTs store only metadata, so invocation is cheap).\n");

  // --- batched settlement: per-proof verification cost vs batch size ---
  //
  // Settle txs carry ProofClaims; every claim sealed in one block shares
  // ONE folded pairing check and each valid claim is charged an equal
  // share of the pairing cost (plus two fold multiplications). We meter
  // the verifier contract under a synthetic N-claim verdict — exactly
  // what chain stage 2.5 installs — and cross-check the gas curve with
  // the real wall-clock cost of the folded check itself.
  std::printf("\n==============================================================\n");
  std::printf("Batched settlement — per-proof verify cost vs batch size N\n");
  std::printf("==============================================================\n");
  std::printf("%-8s %16s %16s %14s %14s\n", "N", "gas/proof", "gas ratio",
              "time/proof", "time speedup");

  const auto proof_k =
      plonk::prove(keys->pk, kb.cs(), srs, kb.witness(), rng);
  if (!proof_k) {
    std::printf("pi_k proving failed\n");
    return 1;
  }
  const std::vector<Fr> pubs_k =
      kb.cs().extract_public_inputs(kb.witness());

  struct SweepPoint {
    std::size_t n = 0;
    std::uint64_t gas_per_proof = 0;
    double us_per_proof = 0.0;
  };
  std::vector<SweepPoint> sweep;
  for (const std::size_t n : {1u, 4u, 16u, 64u}) {
    // Gas leg: the verdict chain stage 2.5 would install for a valid
    // claim folded with n-1 others.
    chain::ProofClaim claim;
    claim.vk = &verifier.vk();
    claim.public_inputs = pubs_k;
    claim.proof = *proof_k;
    const chain::ClaimVerdict verdict{&claim, /*valid=*/true,
                                      /*batch_claims=*/n};
    std::uint64_t gas = 0;
    bool ok = false;
    chain.call(alice, "batched-verify-" + std::to_string(n),
               [&](CallContext& ctx) {
                 ctx.set_claim_verdict(&verdict);
                 const std::uint64_t g0 = ctx.gas().used();
                 ok = verifier.verify(ctx, pubs_k, *proof_k);
                 gas = ctx.gas().used() - g0;
               });
    if (!ok) {
      std::printf("batched verify rejected a valid proof at N=%zu\n", n);
      return 1;
    }

    // Time leg: the folded pairing check itself (what the batch stage
    // actually executes), per proof, vs n individual verifies.
    std::vector<plonk::BatchEntry> entries(
        n, plonk::BatchEntry{&keys->vk, &pubs_k, &proof_k.value()});
    zkdet::bench::Stopwatch fold_sw;
    const auto res = plonk::batch_verify_attributed(entries);
    const double fold_s = fold_sw.seconds();
    if (!res.all_ok()) {
      std::printf("fold rejected a valid batch at N=%zu\n", n);
      return 1;
    }
    sweep.push_back({n, gas, fold_s / static_cast<double>(n) * 1e6});
  }

  // Baseline (N=1) is the inline pairing at full price.
  const double gas_base = static_cast<double>(sweep[0].gas_per_proof);
  const double us_base = sweep[0].us_per_proof;
  double ratio_n16 = 0.0;
  for (const SweepPoint& p : sweep) {
    const double gr = gas_base / static_cast<double>(p.gas_per_proof);
    const double ts = us_base / p.us_per_proof;
    if (p.n == 16) ratio_n16 = gr;
    char tbuf[32];
    std::snprintf(tbuf, sizeof(tbuf), "%.1f us", p.us_per_proof);
    std::printf("%-8zu %16llu %15.2fx %14s %13.2fx\n", p.n,
                static_cast<unsigned long long>(p.gas_per_proof), gr, tbuf,
                ts);
  }

  std::ofstream json("BENCH_aggregate.json");
  json << "{\n  \"bench\": \"aggregate_settlement\",\n"
       << "  \"gas_split_rule\": \"valid claim in an N>1 batch pays "
          "2 fold muls + pairing/N; N=1 or invalid pays the full "
          "pairing\",\n"
       << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json << "    {\"n\": " << sweep[i].n
         << ", \"verify_gas_per_proof\": " << sweep[i].gas_per_proof
         << ", \"gas_amortization\": "
         << gas_base / static_cast<double>(sweep[i].gas_per_proof)
         << ", \"fold_us_per_proof\": " << sweep[i].us_per_proof << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"gas_amortization_n16\": " << ratio_n16
       << ",\n  \"required_n16\": 1.5\n}\n";
  std::printf("\nwrote BENCH_aggregate.json\n");

  if (ratio_n16 < 1.5) {
    std::printf("FAIL: per-proof gas amortization at N=16 is %.2fx "
                "(need >= 1.5x)\n",
                ratio_n16);
    return 1;
  }
  std::printf("per-proof verification gas amortization at N=16: %.2fx "
              "(>= 1.5x required)\n",
              ratio_n16);
  return 0;
}
