// Shared helpers for the paper-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace zkdet::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%dmin%02ds", static_cast<int>(s) / 60,
                  static_cast<int>(s) % 60);
  }
  return buf;
}

}  // namespace zkdet::bench
