file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_provers.dir/bench_ablation_provers.cpp.o"
  "CMakeFiles/bench_ablation_provers.dir/bench_ablation_provers.cpp.o.d"
  "bench_ablation_provers"
  "bench_ablation_provers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_provers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
