# Empty dependencies file for bench_ablation_provers.
# This may be replaced when dependencies are built.
