file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_setup.dir/bench_fig5_setup.cpp.o"
  "CMakeFiles/bench_fig5_setup.dir/bench_fig5_setup.cpp.o.d"
  "bench_fig5_setup"
  "bench_fig5_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
