# Empty dependencies file for bench_fig5_setup.
# This may be replaced when dependencies are built.
