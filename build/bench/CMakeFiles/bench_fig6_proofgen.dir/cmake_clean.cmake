file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_proofgen.dir/bench_fig6_proofgen.cpp.o"
  "CMakeFiles/bench_fig6_proofgen.dir/bench_fig6_proofgen.cpp.o.d"
  "bench_fig6_proofgen"
  "bench_fig6_proofgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_proofgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
