file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_verify.dir/bench_fig7_verify.cpp.o"
  "CMakeFiles/bench_fig7_verify.dir/bench_fig7_verify.cpp.o.d"
  "bench_fig7_verify"
  "bench_fig7_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
