file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gas.dir/bench_table2_gas.cpp.o"
  "CMakeFiles/bench_table2_gas.dir/bench_table2_gas.cpp.o.d"
  "bench_table2_gas"
  "bench_table2_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
