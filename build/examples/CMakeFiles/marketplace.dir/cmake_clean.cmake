file(REMOVE_RECURSE
  "CMakeFiles/marketplace.dir/marketplace.cpp.o"
  "CMakeFiles/marketplace.dir/marketplace.cpp.o.d"
  "marketplace"
  "marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
