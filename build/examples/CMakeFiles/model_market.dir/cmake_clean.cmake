file(REMOVE_RECURSE
  "CMakeFiles/model_market.dir/model_market.cpp.o"
  "CMakeFiles/model_market.dir/model_market.cpp.o.d"
  "model_market"
  "model_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
