# Empty compiler generated dependencies file for model_market.
# This may be replaced when dependencies are built.
