# Empty dependencies file for model_market.
# This may be replaced when dependencies are built.
