file(REMOVE_RECURSE
  "CMakeFiles/provenance_audit.dir/provenance_audit.cpp.o"
  "CMakeFiles/provenance_audit.dir/provenance_audit.cpp.o.d"
  "provenance_audit"
  "provenance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
