# Empty dependencies file for provenance_audit.
# This may be replaced when dependencies are built.
