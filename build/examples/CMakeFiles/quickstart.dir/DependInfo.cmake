
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zkdet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gadgets/CMakeFiles/zkdet_gadgets.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/zkdet_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/plonk/CMakeFiles/zkdet_plonk.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/zkdet_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zkdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zkdet_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
