
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/arbiter.cpp" "src/chain/CMakeFiles/zkdet_chain.dir/arbiter.cpp.o" "gcc" "src/chain/CMakeFiles/zkdet_chain.dir/arbiter.cpp.o.d"
  "/root/repo/src/chain/auction.cpp" "src/chain/CMakeFiles/zkdet_chain.dir/auction.cpp.o" "gcc" "src/chain/CMakeFiles/zkdet_chain.dir/auction.cpp.o.d"
  "/root/repo/src/chain/chain.cpp" "src/chain/CMakeFiles/zkdet_chain.dir/chain.cpp.o" "gcc" "src/chain/CMakeFiles/zkdet_chain.dir/chain.cpp.o.d"
  "/root/repo/src/chain/nft.cpp" "src/chain/CMakeFiles/zkdet_chain.dir/nft.cpp.o" "gcc" "src/chain/CMakeFiles/zkdet_chain.dir/nft.cpp.o.d"
  "/root/repo/src/chain/verifier_contract.cpp" "src/chain/CMakeFiles/zkdet_chain.dir/verifier_contract.cpp.o" "gcc" "src/chain/CMakeFiles/zkdet_chain.dir/verifier_contract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/zkdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/plonk/CMakeFiles/zkdet_plonk.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zkdet_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
