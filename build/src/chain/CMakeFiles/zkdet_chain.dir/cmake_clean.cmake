file(REMOVE_RECURSE
  "CMakeFiles/zkdet_chain.dir/arbiter.cpp.o"
  "CMakeFiles/zkdet_chain.dir/arbiter.cpp.o.d"
  "CMakeFiles/zkdet_chain.dir/auction.cpp.o"
  "CMakeFiles/zkdet_chain.dir/auction.cpp.o.d"
  "CMakeFiles/zkdet_chain.dir/chain.cpp.o"
  "CMakeFiles/zkdet_chain.dir/chain.cpp.o.d"
  "CMakeFiles/zkdet_chain.dir/nft.cpp.o"
  "CMakeFiles/zkdet_chain.dir/nft.cpp.o.d"
  "CMakeFiles/zkdet_chain.dir/verifier_contract.cpp.o"
  "CMakeFiles/zkdet_chain.dir/verifier_contract.cpp.o.d"
  "libzkdet_chain.a"
  "libzkdet_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
