file(REMOVE_RECURSE
  "libzkdet_chain.a"
)
