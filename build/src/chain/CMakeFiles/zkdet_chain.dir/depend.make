# Empty dependencies file for zkdet_chain.
# This may be replaced when dependencies are built.
