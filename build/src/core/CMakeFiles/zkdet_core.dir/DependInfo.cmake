
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apps.cpp" "src/core/CMakeFiles/zkdet_core.dir/apps.cpp.o" "gcc" "src/core/CMakeFiles/zkdet_core.dir/apps.cpp.o.d"
  "/root/repo/src/core/circuits.cpp" "src/core/CMakeFiles/zkdet_core.dir/circuits.cpp.o" "gcc" "src/core/CMakeFiles/zkdet_core.dir/circuits.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "src/core/CMakeFiles/zkdet_core.dir/exchange.cpp.o" "gcc" "src/core/CMakeFiles/zkdet_core.dir/exchange.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/zkdet_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/zkdet_core.dir/system.cpp.o.d"
  "/root/repo/src/core/transformation.cpp" "src/core/CMakeFiles/zkdet_core.dir/transformation.cpp.o" "gcc" "src/core/CMakeFiles/zkdet_core.dir/transformation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gadgets/CMakeFiles/zkdet_gadgets.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/zkdet_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/zkdet_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plonk/CMakeFiles/zkdet_plonk.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zkdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zkdet_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
