file(REMOVE_RECURSE
  "CMakeFiles/zkdet_core.dir/apps.cpp.o"
  "CMakeFiles/zkdet_core.dir/apps.cpp.o.d"
  "CMakeFiles/zkdet_core.dir/circuits.cpp.o"
  "CMakeFiles/zkdet_core.dir/circuits.cpp.o.d"
  "CMakeFiles/zkdet_core.dir/exchange.cpp.o"
  "CMakeFiles/zkdet_core.dir/exchange.cpp.o.d"
  "CMakeFiles/zkdet_core.dir/system.cpp.o"
  "CMakeFiles/zkdet_core.dir/system.cpp.o.d"
  "CMakeFiles/zkdet_core.dir/transformation.cpp.o"
  "CMakeFiles/zkdet_core.dir/transformation.cpp.o.d"
  "libzkdet_core.a"
  "libzkdet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
