file(REMOVE_RECURSE
  "libzkdet_core.a"
)
