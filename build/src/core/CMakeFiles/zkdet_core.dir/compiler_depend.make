# Empty compiler generated dependencies file for zkdet_core.
# This may be replaced when dependencies are built.
