
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/mimc.cpp" "src/crypto/CMakeFiles/zkdet_crypto.dir/mimc.cpp.o" "gcc" "src/crypto/CMakeFiles/zkdet_crypto.dir/mimc.cpp.o.d"
  "/root/repo/src/crypto/poseidon.cpp" "src/crypto/CMakeFiles/zkdet_crypto.dir/poseidon.cpp.o" "gcc" "src/crypto/CMakeFiles/zkdet_crypto.dir/poseidon.cpp.o.d"
  "/root/repo/src/crypto/rng.cpp" "src/crypto/CMakeFiles/zkdet_crypto.dir/rng.cpp.o" "gcc" "src/crypto/CMakeFiles/zkdet_crypto.dir/rng.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/crypto/CMakeFiles/zkdet_crypto.dir/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/zkdet_crypto.dir/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/zkdet_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/zkdet_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zkdet_ec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
