file(REMOVE_RECURSE
  "CMakeFiles/zkdet_crypto.dir/mimc.cpp.o"
  "CMakeFiles/zkdet_crypto.dir/mimc.cpp.o.d"
  "CMakeFiles/zkdet_crypto.dir/poseidon.cpp.o"
  "CMakeFiles/zkdet_crypto.dir/poseidon.cpp.o.d"
  "CMakeFiles/zkdet_crypto.dir/rng.cpp.o"
  "CMakeFiles/zkdet_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/zkdet_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/zkdet_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/zkdet_crypto.dir/sha256.cpp.o"
  "CMakeFiles/zkdet_crypto.dir/sha256.cpp.o.d"
  "libzkdet_crypto.a"
  "libzkdet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
