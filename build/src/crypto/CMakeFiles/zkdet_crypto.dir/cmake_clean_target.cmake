file(REMOVE_RECURSE
  "libzkdet_crypto.a"
)
