# Empty compiler generated dependencies file for zkdet_crypto.
# This may be replaced when dependencies are built.
