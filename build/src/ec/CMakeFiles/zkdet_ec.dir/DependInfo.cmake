
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/curve.cpp" "src/ec/CMakeFiles/zkdet_ec.dir/curve.cpp.o" "gcc" "src/ec/CMakeFiles/zkdet_ec.dir/curve.cpp.o.d"
  "/root/repo/src/ec/msm.cpp" "src/ec/CMakeFiles/zkdet_ec.dir/msm.cpp.o" "gcc" "src/ec/CMakeFiles/zkdet_ec.dir/msm.cpp.o.d"
  "/root/repo/src/ec/pairing.cpp" "src/ec/CMakeFiles/zkdet_ec.dir/pairing.cpp.o" "gcc" "src/ec/CMakeFiles/zkdet_ec.dir/pairing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
