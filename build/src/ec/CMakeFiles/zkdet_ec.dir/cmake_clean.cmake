file(REMOVE_RECURSE
  "CMakeFiles/zkdet_ec.dir/curve.cpp.o"
  "CMakeFiles/zkdet_ec.dir/curve.cpp.o.d"
  "CMakeFiles/zkdet_ec.dir/msm.cpp.o"
  "CMakeFiles/zkdet_ec.dir/msm.cpp.o.d"
  "CMakeFiles/zkdet_ec.dir/pairing.cpp.o"
  "CMakeFiles/zkdet_ec.dir/pairing.cpp.o.d"
  "libzkdet_ec.a"
  "libzkdet_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
