file(REMOVE_RECURSE
  "libzkdet_ec.a"
)
