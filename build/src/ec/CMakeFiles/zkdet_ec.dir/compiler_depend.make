# Empty compiler generated dependencies file for zkdet_ec.
# This may be replaced when dependencies are built.
