
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ff/bigint.cpp" "src/ff/CMakeFiles/zkdet_ff.dir/bigint.cpp.o" "gcc" "src/ff/CMakeFiles/zkdet_ff.dir/bigint.cpp.o.d"
  "/root/repo/src/ff/fp12.cpp" "src/ff/CMakeFiles/zkdet_ff.dir/fp12.cpp.o" "gcc" "src/ff/CMakeFiles/zkdet_ff.dir/fp12.cpp.o.d"
  "/root/repo/src/ff/ntt.cpp" "src/ff/CMakeFiles/zkdet_ff.dir/ntt.cpp.o" "gcc" "src/ff/CMakeFiles/zkdet_ff.dir/ntt.cpp.o.d"
  "/root/repo/src/ff/polynomial.cpp" "src/ff/CMakeFiles/zkdet_ff.dir/polynomial.cpp.o" "gcc" "src/ff/CMakeFiles/zkdet_ff.dir/polynomial.cpp.o.d"
  "/root/repo/src/ff/u256.cpp" "src/ff/CMakeFiles/zkdet_ff.dir/u256.cpp.o" "gcc" "src/ff/CMakeFiles/zkdet_ff.dir/u256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
