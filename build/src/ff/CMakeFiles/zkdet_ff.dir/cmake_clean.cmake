file(REMOVE_RECURSE
  "CMakeFiles/zkdet_ff.dir/bigint.cpp.o"
  "CMakeFiles/zkdet_ff.dir/bigint.cpp.o.d"
  "CMakeFiles/zkdet_ff.dir/fp12.cpp.o"
  "CMakeFiles/zkdet_ff.dir/fp12.cpp.o.d"
  "CMakeFiles/zkdet_ff.dir/ntt.cpp.o"
  "CMakeFiles/zkdet_ff.dir/ntt.cpp.o.d"
  "CMakeFiles/zkdet_ff.dir/polynomial.cpp.o"
  "CMakeFiles/zkdet_ff.dir/polynomial.cpp.o.d"
  "CMakeFiles/zkdet_ff.dir/u256.cpp.o"
  "CMakeFiles/zkdet_ff.dir/u256.cpp.o.d"
  "libzkdet_ff.a"
  "libzkdet_ff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_ff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
