file(REMOVE_RECURSE
  "libzkdet_ff.a"
)
