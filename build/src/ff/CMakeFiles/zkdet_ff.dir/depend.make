# Empty dependencies file for zkdet_ff.
# This may be replaced when dependencies are built.
