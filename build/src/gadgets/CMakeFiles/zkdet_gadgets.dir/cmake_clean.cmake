file(REMOVE_RECURSE
  "CMakeFiles/zkdet_gadgets.dir/builder.cpp.o"
  "CMakeFiles/zkdet_gadgets.dir/builder.cpp.o.d"
  "CMakeFiles/zkdet_gadgets.dir/fixed_point.cpp.o"
  "CMakeFiles/zkdet_gadgets.dir/fixed_point.cpp.o.d"
  "CMakeFiles/zkdet_gadgets.dir/hash_gadgets.cpp.o"
  "CMakeFiles/zkdet_gadgets.dir/hash_gadgets.cpp.o.d"
  "libzkdet_gadgets.a"
  "libzkdet_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
