file(REMOVE_RECURSE
  "libzkdet_gadgets.a"
)
