# Empty dependencies file for zkdet_gadgets.
# This may be replaced when dependencies are built.
