
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plonk/constraint_system.cpp" "src/plonk/CMakeFiles/zkdet_plonk.dir/constraint_system.cpp.o" "gcc" "src/plonk/CMakeFiles/zkdet_plonk.dir/constraint_system.cpp.o.d"
  "/root/repo/src/plonk/groth16.cpp" "src/plonk/CMakeFiles/zkdet_plonk.dir/groth16.cpp.o" "gcc" "src/plonk/CMakeFiles/zkdet_plonk.dir/groth16.cpp.o.d"
  "/root/repo/src/plonk/plonk.cpp" "src/plonk/CMakeFiles/zkdet_plonk.dir/plonk.cpp.o" "gcc" "src/plonk/CMakeFiles/zkdet_plonk.dir/plonk.cpp.o.d"
  "/root/repo/src/plonk/srs.cpp" "src/plonk/CMakeFiles/zkdet_plonk.dir/srs.cpp.o" "gcc" "src/plonk/CMakeFiles/zkdet_plonk.dir/srs.cpp.o.d"
  "/root/repo/src/plonk/transcript.cpp" "src/plonk/CMakeFiles/zkdet_plonk.dir/transcript.cpp.o" "gcc" "src/plonk/CMakeFiles/zkdet_plonk.dir/transcript.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zkdet_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zkdet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
