file(REMOVE_RECURSE
  "CMakeFiles/zkdet_plonk.dir/constraint_system.cpp.o"
  "CMakeFiles/zkdet_plonk.dir/constraint_system.cpp.o.d"
  "CMakeFiles/zkdet_plonk.dir/groth16.cpp.o"
  "CMakeFiles/zkdet_plonk.dir/groth16.cpp.o.d"
  "CMakeFiles/zkdet_plonk.dir/plonk.cpp.o"
  "CMakeFiles/zkdet_plonk.dir/plonk.cpp.o.d"
  "CMakeFiles/zkdet_plonk.dir/srs.cpp.o"
  "CMakeFiles/zkdet_plonk.dir/srs.cpp.o.d"
  "CMakeFiles/zkdet_plonk.dir/transcript.cpp.o"
  "CMakeFiles/zkdet_plonk.dir/transcript.cpp.o.d"
  "libzkdet_plonk.a"
  "libzkdet_plonk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_plonk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
