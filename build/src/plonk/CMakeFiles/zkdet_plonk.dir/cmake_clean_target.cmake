file(REMOVE_RECURSE
  "libzkdet_plonk.a"
)
