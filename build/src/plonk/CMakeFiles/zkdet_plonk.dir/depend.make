# Empty dependencies file for zkdet_plonk.
# This may be replaced when dependencies are built.
