file(REMOVE_RECURSE
  "CMakeFiles/zkdet_storage.dir/storage.cpp.o"
  "CMakeFiles/zkdet_storage.dir/storage.cpp.o.d"
  "libzkdet_storage.a"
  "libzkdet_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
