file(REMOVE_RECURSE
  "libzkdet_storage.a"
)
