# Empty compiler generated dependencies file for zkdet_storage.
# This may be replaced when dependencies are built.
