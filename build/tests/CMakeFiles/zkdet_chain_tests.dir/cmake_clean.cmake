file(REMOVE_RECURSE
  "CMakeFiles/zkdet_chain_tests.dir/test_arbiter.cpp.o"
  "CMakeFiles/zkdet_chain_tests.dir/test_arbiter.cpp.o.d"
  "CMakeFiles/zkdet_chain_tests.dir/test_chain.cpp.o"
  "CMakeFiles/zkdet_chain_tests.dir/test_chain.cpp.o.d"
  "CMakeFiles/zkdet_chain_tests.dir/test_gas_table.cpp.o"
  "CMakeFiles/zkdet_chain_tests.dir/test_gas_table.cpp.o.d"
  "CMakeFiles/zkdet_chain_tests.dir/test_storage.cpp.o"
  "CMakeFiles/zkdet_chain_tests.dir/test_storage.cpp.o.d"
  "zkdet_chain_tests"
  "zkdet_chain_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_chain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
