# Empty dependencies file for zkdet_chain_tests.
# This may be replaced when dependencies are built.
