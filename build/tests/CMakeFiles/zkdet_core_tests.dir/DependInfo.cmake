
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/zkdet_core_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/zkdet_core_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_circuits.cpp" "tests/CMakeFiles/zkdet_core_tests.dir/test_circuits.cpp.o" "gcc" "tests/CMakeFiles/zkdet_core_tests.dir/test_circuits.cpp.o.d"
  "/root/repo/tests/test_protocols.cpp" "tests/CMakeFiles/zkdet_core_tests.dir/test_protocols.cpp.o" "gcc" "tests/CMakeFiles/zkdet_core_tests.dir/test_protocols.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/zkdet_core_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/zkdet_core_tests.dir/test_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zkdet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gadgets/CMakeFiles/zkdet_gadgets.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/zkdet_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/plonk/CMakeFiles/zkdet_plonk.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/zkdet_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zkdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/zkdet_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/zkdet_ff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
