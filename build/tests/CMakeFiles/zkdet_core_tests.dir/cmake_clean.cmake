file(REMOVE_RECURSE
  "CMakeFiles/zkdet_core_tests.dir/test_apps.cpp.o"
  "CMakeFiles/zkdet_core_tests.dir/test_apps.cpp.o.d"
  "CMakeFiles/zkdet_core_tests.dir/test_circuits.cpp.o"
  "CMakeFiles/zkdet_core_tests.dir/test_circuits.cpp.o.d"
  "CMakeFiles/zkdet_core_tests.dir/test_protocols.cpp.o"
  "CMakeFiles/zkdet_core_tests.dir/test_protocols.cpp.o.d"
  "CMakeFiles/zkdet_core_tests.dir/test_system.cpp.o"
  "CMakeFiles/zkdet_core_tests.dir/test_system.cpp.o.d"
  "zkdet_core_tests"
  "zkdet_core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
