# Empty compiler generated dependencies file for zkdet_core_tests.
# This may be replaced when dependencies are built.
