file(REMOVE_RECURSE
  "CMakeFiles/zkdet_crypto_tests.dir/test_crypto.cpp.o"
  "CMakeFiles/zkdet_crypto_tests.dir/test_crypto.cpp.o.d"
  "zkdet_crypto_tests"
  "zkdet_crypto_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_crypto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
