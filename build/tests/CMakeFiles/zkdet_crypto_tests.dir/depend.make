# Empty dependencies file for zkdet_crypto_tests.
# This may be replaced when dependencies are built.
