file(REMOVE_RECURSE
  "CMakeFiles/zkdet_gadget_tests.dir/test_fixed_point.cpp.o"
  "CMakeFiles/zkdet_gadget_tests.dir/test_fixed_point.cpp.o.d"
  "CMakeFiles/zkdet_gadget_tests.dir/test_gadgets.cpp.o"
  "CMakeFiles/zkdet_gadget_tests.dir/test_gadgets.cpp.o.d"
  "zkdet_gadget_tests"
  "zkdet_gadget_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_gadget_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
