# Empty compiler generated dependencies file for zkdet_gadget_tests.
# This may be replaced when dependencies are built.
