file(REMOVE_RECURSE
  "CMakeFiles/zkdet_math_tests.dir/test_curve.cpp.o"
  "CMakeFiles/zkdet_math_tests.dir/test_curve.cpp.o.d"
  "CMakeFiles/zkdet_math_tests.dir/test_ec_extra.cpp.o"
  "CMakeFiles/zkdet_math_tests.dir/test_ec_extra.cpp.o.d"
  "CMakeFiles/zkdet_math_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/zkdet_math_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/zkdet_math_tests.dir/test_field.cpp.o"
  "CMakeFiles/zkdet_math_tests.dir/test_field.cpp.o.d"
  "CMakeFiles/zkdet_math_tests.dir/test_ntt_poly.cpp.o"
  "CMakeFiles/zkdet_math_tests.dir/test_ntt_poly.cpp.o.d"
  "CMakeFiles/zkdet_math_tests.dir/test_u256.cpp.o"
  "CMakeFiles/zkdet_math_tests.dir/test_u256.cpp.o.d"
  "zkdet_math_tests"
  "zkdet_math_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
