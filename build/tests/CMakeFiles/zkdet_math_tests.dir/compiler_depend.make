# Empty compiler generated dependencies file for zkdet_math_tests.
# This may be replaced when dependencies are built.
