file(REMOVE_RECURSE
  "CMakeFiles/zkdet_plonk_tests.dir/test_groth16.cpp.o"
  "CMakeFiles/zkdet_plonk_tests.dir/test_groth16.cpp.o.d"
  "CMakeFiles/zkdet_plonk_tests.dir/test_plonk.cpp.o"
  "CMakeFiles/zkdet_plonk_tests.dir/test_plonk.cpp.o.d"
  "CMakeFiles/zkdet_plonk_tests.dir/test_plonk_random.cpp.o"
  "CMakeFiles/zkdet_plonk_tests.dir/test_plonk_random.cpp.o.d"
  "zkdet_plonk_tests"
  "zkdet_plonk_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkdet_plonk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
