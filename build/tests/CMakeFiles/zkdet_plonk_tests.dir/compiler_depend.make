# Empty compiler generated dependencies file for zkdet_plonk_tests.
# This may be replaced when dependencies are built.
