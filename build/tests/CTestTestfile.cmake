# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(zkdet_math_tests "/root/repo/build/tests/zkdet_math_tests")
set_tests_properties(zkdet_math_tests PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;zkdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(zkdet_crypto_tests "/root/repo/build/tests/zkdet_crypto_tests")
set_tests_properties(zkdet_crypto_tests PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;zkdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(zkdet_plonk_tests "/root/repo/build/tests/zkdet_plonk_tests")
set_tests_properties(zkdet_plonk_tests PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;zkdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(zkdet_gadget_tests "/root/repo/build/tests/zkdet_gadget_tests")
set_tests_properties(zkdet_gadget_tests PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;zkdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(zkdet_chain_tests "/root/repo/build/tests/zkdet_chain_tests")
set_tests_properties(zkdet_chain_tests PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;zkdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(zkdet_core_tests "/root/repo/build/tests/zkdet_core_tests")
set_tests_properties(zkdet_core_tests PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;zkdet_test;/root/repo/tests/CMakeLists.txt;0;")
