// Marketplace scenario: transformations, a clock auction and both
// exchange protocols — including what goes wrong with plain ZKCP.
//
// Cast: Alice curates sensor data, Bob buys, Eve eavesdrops on the chain.
//
//   1. Alice publishes two raw datasets and aggregates them into a
//      curated collection (with transformation proofs).
//   2. Alice lists the collection's token in a descending clock auction;
//      Bob wins the token at the decayed price.
//   3. Owning the token is not enough — the data is encrypted. Bob buys
//      the key via the key-secure protocol; Eve learns nothing.
//   4. For contrast, Alice sells another asset over classic ZKCP; Eve
//      reads the revealed key off the chain and steals the data.
#include <cstdio>

#include "core/exchange.hpp"

using namespace zkdet;
using core::KeySecureExchange;
using core::OwnedAsset;
using core::TransformationProtocol;
using core::ZkcpExchange;
using core::ZkdetSystem;
using ff::Fr;

namespace {

std::vector<Fr> sensor_readings(std::uint64_t base, std::size_t n) {
  std::vector<Fr> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Fr::from_u64(base + i * 7));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== ZKDET marketplace ===\n\n");
  ZkdetSystem sys(1 << 14, 3);
  TransformationProtocol transform(sys);
  KeySecureExchange exchange(sys, transform);
  ZkcpExchange zkcp(sys, transform);

  crypto::Drbg rng(7);
  const crypto::KeyPair alice = crypto::KeyPair::generate(rng);
  const crypto::KeyPair bob = crypto::KeyPair::generate(rng);
  sys.chain().create_account(alice, 10'000);
  sys.chain().create_account(bob, 10'000);
  const chain::Address alice_addr = crypto::address_of(alice.pk);
  const chain::Address bob_addr = crypto::address_of(bob.pk);

  // --- 1. publish + aggregate ---
  auto site_a = transform.publish(alice, sensor_readings(1000, 3));
  auto site_b = transform.publish(alice, sensor_readings(2000, 5));
  if (!site_a || !site_b) return 1;
  std::printf("published site A (token %llu) and site B (token %llu)\n",
              static_cast<unsigned long long>(site_a->token_id),
              static_cast<unsigned long long>(site_b->token_id));

  const std::vector<OwnedAsset> sources{*site_a, *site_b};
  auto collection = transform.aggregate(alice, sources);
  if (!collection) return 1;
  std::printf("aggregated into collection token %llu (%zu entries)\n",
              static_cast<unsigned long long>(collection->token_id),
              collection->plain.size());
  std::printf("provenance chain verifies: %s\n",
              transform.verify_provenance_chain(collection->token_id)
                  ? "yes"
                  : "no");

  // --- 2. clock auction for the token ---
  std::uint64_t auction_id = 0;
  sys.chain().call(alice, "approve-auction", [&](chain::CallContext& ctx) {
    sys.nft().approve(ctx, sys.auction().address(), collection->token_id);
  });
  sys.chain().call(alice, "create-auction", [&](chain::CallContext& ctx) {
    auction_id = sys.auction().create(ctx, collection->token_id,
                                      /*start=*/900, /*floor=*/300,
                                      /*decay=*/50);
  });
  std::printf("\nauction %llu opened: start 900, floor 300, decay 50/block\n",
              static_cast<unsigned long long>(auction_id));
  sys.chain().advance_blocks(6);
  const std::uint64_t price =
      sys.auction().current_price(auction_id, sys.chain().height());
  std::printf("clock price after 6 blocks: %llu\n",
              static_cast<unsigned long long>(price));
  const auto bid = sys.chain().call(
      bob, "bid",
      [&](chain::CallContext& ctx) { sys.auction().bid(ctx, auction_id); },
      price, sys.auction().address());
  std::printf("bob bid %llu: %s; token owner is now %s\n",
              static_cast<unsigned long long>(price),
              bid.success ? "won" : bid.error.c_str(),
              sys.nft().token(collection->token_id)->owner == bob_addr
                  ? "bob"
                  : "alice");

  // --- 3. key-secure key purchase ---
  // Bob owns the *token* now, but the decryption key is still Alice's;
  // the escrow therefore names Alice as the seller explicitly.
  auto offer = exchange.make_offer(*collection, nullptr, "any");
  if (!offer || !exchange.verify_offer(*offer)) return 1;
  auto session = exchange.lock_payment(bob, *offer, 200, 100, alice_addr);
  if (!session) return 1;
  if (!exchange.settle(alice, *collection, session->exchange_id,
                       session->k_v)) {
    return 1;
  }
  auto data = exchange.recover_data(*session);
  std::printf("\nkey-secure exchange: bob decrypted %zu entries; "
              "entry[0]=%s\n",
              data ? data->size() : 0,
              data ? (*data)[0].to_dec().c_str() : "-");

  // Eve inspects all public state: chain + storage. The only key-related
  // value on-chain is k_c = k + k_v, useless without k_v.
  {
    const auto x = sys.arbiter().exchange(session->exchange_id);
    const auto* rec = transform.encryption_record(collection->token_id);
    const auto blob = sys.storage().get(rec->data_cid);
    const auto ct = storage::blob_to_dataset(*blob);
    const auto eve = crypto::mimc_ctr_decrypt(x->k_c, rec->nonce, *ct);
    std::printf("eve decrypts with on-chain k_c: %s\n",
                eve == collection->plain ? "SUCCEEDS (bug!)"
                                         : "garbage (privacy preserved)");
  }

  // --- 4. the ZKCP contrast ---
  auto legacy = transform.publish(alice, sensor_readings(5000, 4));
  if (!legacy) return 1;
  auto legacy_offer = zkcp.make_offer(*legacy, nullptr, "any");
  auto xid = zkcp.lock_payment(bob, *legacy_offer, 150);
  if (!xid || !zkcp.open(alice, *legacy, *xid)) return 1;
  const auto stolen = zkcp.eavesdrop(*xid, legacy->token_id);
  std::printf("\nZKCP baseline: key revealed on-chain during Open; "
              "eve steals the data: %s\n",
              (stolen && *stolen == legacy->plain) ? "yes — the flaw ZKDET fixes"
                                                   : "no");

  std::printf("\nbalances: alice=%llu bob=%llu; chain valid: %s\n",
              static_cast<unsigned long long>(sys.chain().balance(alice_addr)),
              static_cast<unsigned long long>(sys.chain().balance(bob_addr)),
              sys.chain().validate_chain() ? "yes" : "no");
  std::printf("=== done ===\n");
  return 0;
}
