// Computational delegation: selling a trained model as a data asset
// (paper IV-E). A data owner trains logistic regression on their
// dataset and mints the parameters as a *processing*-derived token whose
// proof shows the model really came from that dataset via a verified
// gradient-descent step — the "pay for the efforts embedded" scenario.
#include <cstdio>

#include "core/apps.hpp"
#include "core/exchange.hpp"

using namespace zkdet;
using core::LrDataset;
using core::LrModel;
using core::TransformationProtocol;
using core::ZkdetSystem;
using gadgets::FixParams;

int main() {
  std::printf("=== ZKDET model market (logistic regression) ===\n\n");
  ZkdetSystem sys(1 << 15, 9);
  TransformationProtocol transform(sys);
  core::KeySecureExchange exchange(sys, transform);

  crypto::Drbg rng(11);
  const crypto::KeyPair owner = crypto::KeyPair::generate(rng);
  const crypto::KeyPair analyst = crypto::KeyPair::generate(rng);
  sys.chain().create_account(owner, 10'000);
  sys.chain().create_account(analyst, 10'000);

  // Train on a synthetic tabular dataset (8 points, 2 features keeps the
  // demo circuit small; the Table I bench scales this up).
  const std::size_t n = 8, k = 2;
  const LrDataset data = LrDataset::synthesize(n, k, rng);
  const LrModel model = LrModel::train(data, /*alpha=*/0.25, /*iters=*/150);
  std::printf("trained LR model: loss=%.4f accuracy=%.2f\n",
              model.loss(data), model.accuracy(data));

  // Publish the raw dataset as a genesis asset.
  const FixParams fp;
  auto dataset_asset = transform.publish(owner, data.encode(fp));
  if (!dataset_asset) return 1;
  std::printf("dataset token: %llu (%zu encoded entries)\n",
              static_cast<unsigned long long>(dataset_asset->token_id),
              dataset_asset->plain.size());

  // Mint the model as a processing-derived asset. The proof pi_t shows:
  // beta' is one verified GD step from beta on the committed dataset AND
  // ||beta' - beta||^2 <= epsilon (the paper's convergence criterion).
  auto model_asset = transform.process(
      owner, *dataset_asset,
      core::lr_step_gadget(n, k, 0.25, model, /*epsilon=*/1.0, fp),
      "lr-demo");
  if (!model_asset) {
    std::printf("model mint failed\n");
    return 1;
  }
  std::printf("model token: %llu carrying %zu parameters\n",
              static_cast<unsigned long long>(model_asset->token_id),
              model_asset->plain.size());
  for (std::size_t j = 0; j < model_asset->plain.size(); ++j) {
    std::printf("  beta[%zu] = %+.4f\n", j,
                gadgets::fix_decode(model_asset->plain[j], fp));
  }

  // Any marketplace participant validates the claim chain.
  std::printf("\npi_t (training step) verifies : %s\n",
              transform.verify_transformation(model_asset->token_id) ? "yes"
                                                                     : "no");
  std::printf("full provenance chain verifies: %s\n",
              transform.verify_provenance_chain(model_asset->token_id)
                  ? "yes"
                  : "no");
  const auto prov = sys.nft().provenance(model_asset->token_id);
  std::printf("provenance of model token: %zu ancestor(s), rooted at token "
              "%llu\n",
              prov.size(),
              static_cast<unsigned long long>(prov.empty() ? 0 : prov[0]));

  // The analyst buys the model parameters through the key-secure
  // exchange, never learning the underlying training data.
  auto offer = exchange.make_offer(*model_asset, nullptr, "any");
  if (!offer || !exchange.verify_offer(*offer)) return 1;
  auto session = exchange.lock_payment(analyst, *offer, 800, 100);
  if (!session) return 1;
  if (!exchange.settle(owner, *model_asset, session->exchange_id,
                       session->k_v)) {
    return 1;
  }
  auto params = exchange.recover_data(*session);
  std::printf("\nanalyst bought the model for 800 wei and decrypted %zu "
              "parameters; beta[0]=%+.4f\n",
              params ? params->size() : 0,
              params ? gadgets::fix_decode((*params)[0], fp) : 0.0);
  std::printf("=== done ===\n");
  return 0;
}
