// Provenance audit: the traceability walk of paper Fig. 2.
//
// Builds a transformation DAG (publish -> duplicate -> partition ->
// aggregate -> process), prints it as the on-chain auditor would see it,
// validates every proof edge back to the sources, and then demonstrates
// that tampering with stored data is caught by the audit.
#include <cstdio>

#include "core/transformation.hpp"

using namespace zkdet;
using core::OwnedAsset;
using core::TransformationProtocol;
using core::ZkdetSystem;
using ff::Fr;

namespace {

void print_token(const ZkdetSystem& sys_const, ZkdetSystem& sys,
                 const TransformationProtocol& transform, std::uint64_t id) {
  (void)sys_const;
  const auto info = sys.nft().token(id);
  if (!info) return;
  std::printf("  token %2llu  %-12s owner=%.10s...  parents=[",
              static_cast<unsigned long long>(id),
              chain::formula_name(info->formula), info->owner.c_str());
  for (std::size_t i = 0; i < info->prev_ids.size(); ++i) {
    std::printf("%s%llu", i > 0 ? "," : "",
                static_cast<unsigned long long>(info->prev_ids[i]));
  }
  std::printf("]  pi_e=%s pi_t=%s\n",
              transform.verify_encryption(id) ? "ok" : "BAD",
              transform.verify_transformation(id) ? "ok" : "BAD");
}

}  // namespace

int main() {
  std::printf("=== ZKDET provenance audit ===\n\n");
  ZkdetSystem sys(1 << 14, 5);
  TransformationProtocol transform(sys);

  crypto::Drbg rng(23);
  const crypto::KeyPair curator = crypto::KeyPair::generate(rng);
  sys.chain().create_account(curator, 10'000);

  // Build the DAG of paper Fig. 2: two sources, transformations on top.
  std::vector<Fr> raw1, raw2;
  for (std::uint64_t i = 0; i < 4; ++i) raw1.push_back(Fr::from_u64(10 + i));
  for (std::uint64_t i = 0; i < 2; ++i) raw2.push_back(Fr::from_u64(90 + i));

  auto d1 = transform.publish(curator, raw1);
  auto d2 = transform.publish(curator, raw2);
  auto dup = transform.duplicate(curator, *d1);
  auto parts = transform.partition(curator, *dup, {2, 2});
  const std::vector<OwnedAsset> to_merge{(*parts)[1], *d2};
  auto agg = transform.aggregate(curator, to_merge);
  const core::TransformGadget square_all =
      [](gadgets::CircuitBuilder& bld, std::span<const gadgets::Wire> s) {
        std::vector<gadgets::Wire> out;
        for (const auto w : s) out.push_back(bld.mul(w, w));
        return out;
      };
  auto proc = transform.process(curator, *agg, square_all, "square");
  if (!d1 || !d2 || !dup || !parts || !agg || !proc) {
    std::printf("DAG construction failed\n");
    return 1;
  }

  std::printf("token graph (as read from the chain):\n");
  for (std::uint64_t id = 1; id <= sys.nft().total_minted(); ++id) {
    print_token(sys, sys, transform, id);
  }

  std::printf("\nfull audit of token %llu (the processed asset):\n",
              static_cast<unsigned long long>(proc->token_id));
  const auto ancestors = sys.nft().provenance(proc->token_id);
  std::printf("  ancestor set:");
  for (const auto a : ancestors) {
    std::printf(" %llu", static_cast<unsigned long long>(a));
  }
  std::printf("\n  chain-of-proofs valid: %s\n",
              transform.verify_provenance_chain(proc->token_id) ? "yes" : "no");

  // sanity: processing output really is the squares of the aggregate
  std::printf("  spot check: agg[0]^2 = %s, proc[0] = %s\n",
              (agg->plain[0] * agg->plain[0]).to_dec().c_str(),
              proc->plain[0].to_dec().c_str());

  // Tamper with the aggregate's stored ciphertext on every node: the
  // audit of the descendant now fails at that edge.
  const auto* rec = transform.encryption_record(agg->token_id);
  for (std::size_t i = 0; i < sys.storage().num_nodes(); ++i) {
    sys.storage().node(i).corrupt(rec->data_cid);
  }
  std::printf("\nafter corrupting the aggregate's ciphertext in storage:\n");
  const bool still_valid = transform.verify_provenance_chain(proc->token_id);
  std::printf("  audit of processed token now: %s (tamper detected %zu "
              "times)\n",
              still_valid ? "valid (BUG)" : "INVALID — corruption caught",
              sys.storage().tamper_detections());
  std::printf("=== done ===\n");
  return 0;
}
