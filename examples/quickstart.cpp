// Quickstart: the smallest end-to-end ZKDET run.
//
//   1. Deploy a ZKDET system (chain + contracts + storage + SRS).
//   2. A data owner publishes an encrypted dataset: the ciphertext goes
//      to the storage network, an encryption proof pi_e is generated,
//      and a DataNFT is minted as the on-chain credential.
//   3. Anyone verifies the asset without seeing the plaintext.
//   4. A buyer purchases the decryption key through the key-secure
//      two-phase exchange protocol and decrypts the data.
#include <cstdio>

#include "core/exchange.hpp"

using namespace zkdet;
using core::KeySecureExchange;
using core::TransformationProtocol;
using core::ZkdetSystem;
using ff::Fr;

int main() {
  std::printf("=== ZKDET quickstart ===\n\n");

  // 1. Deploy. The SRS bound (2^14 constraints) fits datasets of a few
  //    dozen field elements; scale it up for bigger data.
  ZkdetSystem sys(1 << 14, /*seed=*/1);
  TransformationProtocol transform(sys);
  KeySecureExchange exchange(sys, transform);
  std::printf("deployed: %zu blocks, storage nodes=%zu\n",
              sys.chain().blocks().size(), sys.storage().num_nodes());

  crypto::Drbg rng(42);
  const crypto::KeyPair seller = crypto::KeyPair::generate(rng);
  const crypto::KeyPair buyer = crypto::KeyPair::generate(rng);
  sys.chain().create_account(seller, 10'000);
  sys.chain().create_account(buyer, 10'000);

  // 2. Publish a dataset.
  std::vector<Fr> dataset;
  for (std::uint64_t i = 0; i < 8; ++i) dataset.push_back(Fr::from_u64(100 + i));
  auto asset = transform.publish(seller, dataset);
  if (!asset) {
    std::printf("publish failed\n");
    return 1;
  }
  const auto info = sys.nft().token(asset->token_id);
  std::printf("\npublished dataset of %zu entries\n", dataset.size());
  std::printf("  token id        : %llu\n",
              static_cast<unsigned long long>(asset->token_id));
  std::printf("  owner           : %s\n", info->owner.c_str());
  std::printf("  uri (CID field) : 0x%s...\n",
              info->uri.to_hex().substr(0, 16).c_str());
  std::printf("  data commitment : 0x%s...\n",
              info->data_commitment.to_hex().substr(0, 16).c_str());

  // 3. Public verification: pi_e proves the stored ciphertext encrypts
  //    the committed dataset — no plaintext or key revealed.
  std::printf("\nencryption proof valid: %s\n",
              transform.verify_encryption(asset->token_id) ? "yes" : "no");

  // 4. Key-secure exchange.
  auto offer = exchange.make_offer(*asset, nullptr, "any");
  if (!offer || !exchange.verify_offer(*offer)) {
    std::printf("offer failed\n");
    return 1;
  }
  std::printf("buyer verified the offer (pi_p)\n");

  auto session = exchange.lock_payment(buyer, *offer, /*amount=*/500,
                                       /*timeout_blocks=*/100);
  if (!session) {
    std::printf("lock failed\n");
    return 1;
  }
  std::printf("buyer locked 500 wei against h_v\n");

  // buyer sends k_v to the seller off-chain; seller settles with pi_k
  if (!exchange.settle(seller, *asset, session->exchange_id, session->k_v)) {
    std::printf("settle failed\n");
    return 1;
  }
  std::printf("seller settled: payment released, k_c on-chain (k concealed)\n");

  auto recovered = exchange.recover_data(*session);
  if (!recovered || *recovered != dataset) {
    std::printf("recovery failed\n");
    return 1;
  }
  std::printf("buyer decrypted the dataset: entry[0] = %s\n\n",
              (*recovered)[0].to_dec().c_str());

  std::printf("chain valid: %s, seller balance: %llu, buyer balance: %llu\n",
              sys.chain().validate_chain() ? "yes" : "no",
              static_cast<unsigned long long>(
                  sys.chain().balance(crypto::address_of(seller.pk))),
              static_cast<unsigned long long>(
                  sys.chain().balance(crypto::address_of(buyer.pk))));
  std::printf("=== done ===\n");
  return 0;
}
