// Fuzz target: transcript byte-decoding and proof/point deserialization.
//
// Drives the Fiat-Shamir transcript with an arbitrary op-stream
// (absorb/challenge interleavings must stay deterministic and never
// crash) and throws arbitrary bytes at the proof and curve-point
// decoders (must reject or round-trip, never accept an invalid point).
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "ec/curve.hpp"
#include "plonk/plonk.hpp"
#include "plonk/transcript.hpp"

using namespace zkdet;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0];
  ++data;
  --size;

  switch (selector % 3) {
    case 0: {
      // Transcript op-stream: byte-sized ops, deterministic replay.
      plonk::Transcript t1("fuzz");
      plonk::Transcript t2("fuzz");
      std::size_t off = 0;
      ff::Fr last1 = ff::Fr::zero();
      ff::Fr last2 = ff::Fr::zero();
      for (int ops = 0; ops < 64 && off < size; ++ops) {
        const std::uint8_t op = data[off++];
        const std::size_t take = std::min<std::size_t>(op & 0x1F, size - off);
        const std::span<const std::uint8_t> chunk(data + off, take);
        off += take;
        switch (op % 4) {
          case 0:
            t1.absorb_bytes(chunk);
            t2.absorb_bytes(chunk);
            break;
          case 1:
            t1.absorb_u64(op);
            t2.absorb_u64(op);
            break;
          case 2:
            t1.absorb_fr(ff::Fr::from_u64(op));
            t2.absorb_fr(ff::Fr::from_u64(op));
            break;
          default:
            last1 = t1.challenge("c");
            last2 = t2.challenge("c");
            break;
        }
      }
      // Identical op-streams must yield identical challenges, and every
      // challenge must be canonical.
      if (last1 != last2) __builtin_trap();
      if (!ff::u256_less(last1.to_canonical(), ff::Fr::MOD)) __builtin_trap();
      break;
    }
    case 1: {
      // Proof decoding: reject or round-trip byte-identically.
      std::vector<std::uint8_t> buf(data, data + size);
      buf.resize(plonk::Proof::size_bytes(), 0);
      const auto proof = plonk::Proof::from_bytes(buf);
      if (proof.has_value()) {
        if (proof->to_bytes() != buf) __builtin_trap();
      }
      break;
    }
    default: {
      // Curve point decoding: anything accepted must re-encode to the
      // same bytes and actually lie in the right group.
      if (size >= 64) {
        const auto p = ec::g1_from_bytes({data, 64});
        if (p.has_value()) {
          if (!p->on_curve()) __builtin_trap();
          if (ec::g1_to_bytes(*p) != std::vector<std::uint8_t>(data, data + 64))
            __builtin_trap();
        }
      }
      if (size >= 128) {
        const auto q = ec::g2_from_bytes({data, 128});
        if (q.has_value()) {
          if (!q->on_curve()) __builtin_trap();
          if (!q->mul(ff::Fr::MOD).is_identity()) __builtin_trap();
        }
      }
      break;
    }
  }
  return 0;
}
