// Fuzz target: u256 / bigint parsing and arithmetic round-trips.
//
// The parsers are the first line of defense for every externally
// supplied scalar (proof bytes, decimal constants); this harness feeds
// them arbitrary bytes and checks the algebraic round-trip invariants
// on whatever survives.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "ff/bigint.hpp"
#include "ff/bn254.hpp"
#include "ff/u256.hpp"

using namespace zkdet::ff;

namespace {

U256 u256_from_raw(const std::uint8_t* data) {
  std::array<std::uint8_t, 32> buf{};
  std::memcpy(buf.data(), data, 32);
  return u256_from_bytes(buf);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0];
  ++data;
  --size;

  switch (selector % 4) {
    case 0: {
      // Decimal parser: must either parse or throw, never corrupt.
      const std::string s(reinterpret_cast<const char*>(data),
                          std::min<std::size_t>(size, 100));
      try {
        const U256 v = u256_from_dec(s);
        // Round-trip: to_dec(from_dec(s)) re-parses to the same value.
        if (u256_from_dec(u256_to_dec(v)) != v) __builtin_trap();
      } catch (const std::invalid_argument&) {
      } catch (const std::overflow_error&) {
      }
      break;
    }
    case 1: {
      // Byte round-trip.
      if (size < 32) break;
      const U256 v = u256_from_raw(data);
      if (u256_from_bytes(u256_to_bytes(v)) != v) __builtin_trap();
      if (u256_from_dec(u256_to_dec(v)) != v) __builtin_trap();
      break;
    }
    case 2: {
      // Field reduction: reduce_from lands in canonical range; add/sub
      // round-trips.
      if (size < 64) break;
      const U256 a = u256_from_raw(data);
      const U256 b = u256_from_raw(data + 32);
      const Fr fa = Fr::reduce_from(a);
      const Fr fb = Fr::reduce_from(b);
      if (!u256_less(fa.to_canonical(), Fr::MOD)) __builtin_trap();
      if ((fa + fb - fb) != fa) __builtin_trap();
      if (!fb.is_zero() && (fa * fb * fb.inverse()) != fa) __builtin_trap();
      break;
    }
    default: {
      // BigUInt: mul/div exactness. q = (x * d) / d must return x with
      // zero remainder for any odd divisor.
      if (size < 64) break;
      const U256 x = u256_from_raw(data);
      U256 d = u256_from_raw(data + 32);
      d.limb[0] |= 1;  // bigint_div_u256 requires an odd divisor
      BigUInt n = BigUInt::from_u256(x);
      n.mul_u256(d);
      U256 rem{};
      const BigUInt q = bigint_div_u256(n, d, &rem);
      if (!rem.is_zero()) __builtin_trap();
      BigUInt back = q;
      back.mul_u256(d);
      for (std::size_t i = 0; i < back.limbs.size(); ++i) {
        const std::uint64_t expect =
            i < n.limbs.size() ? n.limbs[i] : 0;
        if (back.limbs[i] != expect) __builtin_trap();
      }
      break;
    }
  }
  return 0;
}
