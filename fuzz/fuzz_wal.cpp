// Fuzz target: WAL frame parsing and the canonical chain codec.
//
// Throws arbitrary bytes at parse_record/scan_wal (must never overread,
// crash, or accept a frame whose CRC does not match) and at the strict
// entity decoders (must either throw CodecError or yield a value whose
// re-encoding is byte-identical to the accepted input — the canonical
// round-trip that Chain::block_hash and snapshot equality depend on).
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "ledger/codec.hpp"
#include "ledger/crc32c.hpp"
#include "ledger/wal.hpp"

using namespace zkdet;

namespace {

// Accepted bytes must re-encode identically; rejected bytes must reject
// via CodecError only (anything else — a crash, a std::bad_alloc from an
// unchecked length claim — is a finding).
template <typename Decode, typename Encode>
void check_strict_roundtrip(std::span<const std::uint8_t> bytes,
                            Decode decode, Encode encode) {
  try {
    const auto value = decode(bytes);
    const auto re = encode(value);
    if (re.size() != bytes.size() ||
        std::memcmp(re.data(), bytes.data(), re.size()) != 0) {
      __builtin_trap();  // non-canonical acceptance
    }
  } catch (const ledger::CodecError&) {
    // strict rejection is the expected path for random bytes
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0];
  ++data;
  --size;
  const std::span<const std::uint8_t> input(data, size);

  switch (selector % 5) {
    case 0: {
      // Raw frame parse at every offset of the input: no overreads
      // (ASan-visible), and any accepted frame really has a valid CRC
      // and lies entirely inside the buffer.
      for (std::size_t off = 0; off <= size; ++off) {
        const auto rec = ledger::parse_record(input, off);
        if (rec.has_value()) {
          if (rec->next_offset > size) __builtin_trap();
          if (rec->payload.size() + ledger::kFrameHeaderSize !=
              rec->next_offset - off) {
            __builtin_trap();
          }
          const std::uint32_t claimed =
              static_cast<std::uint32_t>(data[off + 4]) |
              static_cast<std::uint32_t>(data[off + 5]) << 8 |
              static_cast<std::uint32_t>(data[off + 6]) << 16 |
              static_cast<std::uint32_t>(data[off + 7]) << 24;
          if (ledger::crc32c(rec->payload) != claimed) __builtin_trap();
        }
      }
      break;
    }
    case 1: {
      // Segment scan: the valid prefix must re-parse frame by frame to
      // exactly the payloads scan_wal reported, and framing those
      // payloads again must reproduce the valid prefix byte for byte.
      const auto scan = ledger::scan_wal(input);
      if (scan.valid_bytes > size) __builtin_trap();
      if (scan.has_torn_tail != (scan.valid_bytes != size)) __builtin_trap();
      std::vector<std::uint8_t> rebuilt;
      for (const auto& payload : scan.payloads) {
        const auto frame = ledger::frame_record(payload);
        rebuilt.insert(rebuilt.end(), frame.begin(), frame.end());
      }
      if (rebuilt.size() != scan.valid_bytes) __builtin_trap();
      if (!rebuilt.empty() &&
          std::memcmp(rebuilt.data(), data, rebuilt.size()) != 0) {
        __builtin_trap();
      }
      break;
    }
    case 2: {
      // Frame + parse round-trip of the input as a payload.
      const auto frame = ledger::frame_record(input);
      const auto rec = ledger::parse_record(frame, 0);
      if (!rec.has_value()) __builtin_trap();
      if (rec->payload.size() != size) __builtin_trap();
      if (size > 0 &&
          std::memcmp(rec->payload.data(), data, size) != 0) {
        __builtin_trap();
      }
      if (rec->next_offset != frame.size()) __builtin_trap();
      break;
    }
    case 3: {
      // Strict entity decoders on raw bytes.
      check_strict_roundtrip(
          input, [](auto b) { return ledger::decode_tx_record(b); },
          [](const auto& v) { return ledger::encode_tx_record(v); });
      check_strict_roundtrip(
          input, [](auto b) { return ledger::decode_event(b); },
          [](const auto& v) { return ledger::encode_event(v); });
      check_strict_roundtrip(
          input, [](auto b) { return ledger::decode_delta(b); },
          [](const auto& v) { return ledger::encode_delta(v); });
      break;
    }
    default: {
      // The expensive ones (nested vectors, maps, curve points).
      check_strict_roundtrip(
          input, [](auto b) { return ledger::decode_block(b); },
          [](const auto& v) { return ledger::encode_block(v); });
      check_strict_roundtrip(
          input, [](auto b) { return ledger::decode_snapshot(b); },
          [](const auto& v) { return ledger::encode_snapshot(v); });
      break;
    }
  }
  return 0;
}
