// Standalone driver for the fuzz harnesses when the toolchain has no
// libFuzzer (-fsanitize=fuzzer is Clang-only; this tree also builds
// with GCC). Behavior:
//
//   fuzz_target file1 [file2 ...]   replay corpus files once each
//   fuzz_target                     timed random smoke run; duration
//                                   from ZKDET_FUZZ_SECONDS (default 10)
//
// The random mode uses a fixed-seed xorshift generator: deterministic
// across runs, so a CI failure is reproducible by rerunning the binary.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  // Dash-arguments are libFuzzer flags (e.g. -max_total_time=10); ignore
  // them so scripts/ci.sh can invoke Clang and GCC builds identically.
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') files.push_back(argv[i]);
  }
  if (!files.empty()) {
    for (const char* name : files) {
      std::ifstream in(name, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", name);
        return 1;
      }
      std::vector<char> buf((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
      LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(buf.data()),
                             buf.size());
    }
    std::printf("replayed %zu file(s)\n", files.size());
    return 0;
  }

  double seconds = 10.0;
  if (const char* env = std::getenv("ZKDET_FUZZ_SECONDS")) {
    seconds = std::atof(env);
  }
  // ZKDET_FUZZ_DUMP=path: persist each input before running it, so the
  // input that crashed the process is on disk for replay.
  const char* dump = std::getenv("ZKDET_FUZZ_DUMP");
  std::uint64_t rng = 0x5eed5eed5eed5eedull;
  std::vector<std::uint8_t> buf;
  std::uint64_t iterations = 0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t size = xorshift(rng) % 512;
    buf.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
      buf[i] = static_cast<std::uint8_t>(xorshift(rng));
    }
    if (dump != nullptr) {
      std::ofstream out(dump, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
    }
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
    ++iterations;
    if ((iterations & 0xFF) == 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= seconds) break;
    }
  }
  std::printf("smoke: %llu iterations, no crashes\n",
              static_cast<unsigned long long>(iterations));
  return 0;
}
