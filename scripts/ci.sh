#!/usr/bin/env bash
# CI entry point. Stages, in order:
#
#   lint      scripts/lint_zkdet.py (tree + self-test, including the
#             raw-mutex rule corpus); clang-tidy when the binary exists
#             (config in .clang-tidy), skipped otherwise
#   analysis  clang++ -Wthread-safety -Werror=thread-safety compile of
#             the whole tree (-DZKDET_THREAD_SAFETY=ON, build-analysis/):
#             proves lock discipline over every zkdet::Mutex annotation
#             at compile time. Skipped with a notice when clang++ is
#             absent (the annotations are no-ops on GCC; the raw-mutex
#             lint rule still holds the annotation surface closed).
#   tier-1    default build + full ctest            (build/)
#   checked   -DZKDET_CHECKED=ON full ctest         (build-checked/)
#   chaos     extended seeded fault schedules, invariant checks armed
#             (reuses build-checked/; seeds disjoint from the in-suite
#             1..30 set, override with ZKDET_CHAOS_SEEDS)
#   asan      -DZKDET_SANITIZE=address,undefined    (build-asan/)
#   persistence  ledger crash-recovery matrix under the ASan build:
#             kill-at-every-fail-point, reopen, replay, state equality
#   replication  failover chaos matrix under the ASan build: every
#             repl.* fail-point x kill position, kill the primary,
#             promote the follower, resume byte-identically. The
#             in-suite ctest runs cover kill positions 1..10; this
#             stage replays a disjoint 11..15 slice (override with
#             ZKDET_REPL_MATRIX_HITS)
#   tsan      -DZKDET_SANITIZE=thread, FULL suite   (build-tsan/)
#   fuzz      -DZKDET_FUZZ=ON, 10s smoke per target (build-fuzz/)
#
# Usage: scripts/ci.sh [--quick] [--skip-tsan]
#   --quick      lint + analysis + tier-1 + bench smokes (MSM sweep,
#                chain pipeline, replication, RPC) + a disjoint failover
#                matrix slice (pre-push sanity; minutes, not hours;
#                analysis is compile-only so it stays in quick)
#   --skip-tsan  everything except the TSan stage (it is the slowest)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "=== lint: zkdet rules ==="
python3 scripts/lint_zkdet.py
python3 scripts/lint_zkdet.py --self-test
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== lint: clang-tidy ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Narrowing/init checks on the arithmetic substrate; full-tree tidy is
  # too slow for every CI run.
  clang-tidy -p build --quiet src/ff/*.cpp src/ec/*.cpp
else
  echo "=== lint: clang-tidy not installed, skipping ==="
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "=== analysis: clang -Wthread-safety build (compile-time lock proof) ==="
  # ZKDET_CHECKED=ON so the lockdep code paths are type-checked too.
  cmake -B build-analysis -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DZKDET_THREAD_SAFETY=ON -DZKDET_CHECKED=ON
  cmake --build build-analysis -j
else
  echo "=== analysis: clang++ not installed, skipping thread-safety build ==="
  echo "    (annotations are no-ops on GCC; raw-mutex lint still enforced)"
fi

echo "=== tier-1: build + full test suite ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$QUICK" == "1" ]]; then
  echo "=== bench: MSM sweep smoke (quick, writes BENCH_msm.json) ==="
  cmake --build build -j --target bench_primitives
  ./build/bench/bench_primitives --msm-sweep=quick
  echo "=== bench: chain pipeline smoke (quick, writes BENCH_chain.json) ==="
  # Exercises the full txpool pipeline (serial baseline + parallel worker
  # sweep + conflict injection + a pooled exchange) and fails on any
  # serial-vs-parallel block/WAL divergence.
  cmake --build build -j --target bench_chain
  ./build/bench/bench_chain --quick
  echo "=== bench: batched-settlement sweep (quick, writes BENCH_aggregate.json) ==="
  # Per-proof verification gas vs batch size N in {1,4,16,64} under the
  # claim-verdict gas split; exits nonzero unless amortization at N=16
  # is >= 1.5x.
  cmake --build build -j --target bench_table2_gas
  ./build/bench/bench_table2_gas
  echo "=== replication: disjoint failover-matrix slice (quick) ==="
  # The tier-1 ctest above already swept kill positions 1..10; replay a
  # disjoint slice so quick runs still probe kill positions the suite
  # default never visits.
  ZKDET_REPL_MATRIX_HITS="${ZKDET_REPL_MATRIX_HITS:-11-13}" \
    ./build/tests/replication_failover_matrix
  echo "=== bench: replication smoke (quick, writes BENCH_repl.json) ==="
  # Ship throughput, cold-follower catch-up lag (WAL vs snapshot) and
  # promotion time; fails on promoted-chain divergence.
  cmake --build build -j --target bench_repl
  ./build/bench/bench_repl --quick
  echo "=== bench: RPC serving-layer smoke (quick, writes BENCH_rpc.json) ==="
  # Sustained req/s + p50/p99 through the socket front end and a 2x
  # overload burst; fails if any request lacks exactly one typed
  # response, the queue depth bound is exceeded, or p99 blows its budget.
  cmake --build build -j --target bench_rpc
  ./build/bench/bench_rpc --quick
  echo "=== quick mode: remaining stages skipped ==="
  echo "=== CI OK (quick) ==="
  exit 0
fi

echo "=== checked: full suite under -DZKDET_CHECKED=ON ==="
cmake -B build-checked -S . -DZKDET_CHECKED=ON
cmake --build build-checked -j
ctest --test-dir build-checked --output-on-failure -j

echo "=== checked: MSM differential suite (affine vs Jacobian vs naive) ==="
./build-checked/tests/zkdet_math_tests \
  --gtest_filter='MsmDifferential*:BatchNormalize*:MulCt*:MixedAdd*'

echo "=== chaos: extended seeded fault schedules under -DZKDET_CHECKED=ON ==="
# Every ctest run above already covers chaos seeds 1..30; this stage
# replays a second, fixed, disjoint seed set with ZKDET_CHECK armed. A
# failing schedule prints its seed; replay it alone with
#   ZKDET_CHAOS_SEEDS=<seed> ./build-checked/tests/zkdet_chaos_tests
ZKDET_CHAOS_SEEDS="${ZKDET_CHAOS_SEEDS:-101,102,103,104,105,106,107,108,109,110,111,112,113,114,115}" \
  ./build-checked/tests/zkdet_chaos_tests

echo "=== asan+ubsan: full suite under -DZKDET_SANITIZE=address,undefined ==="
cmake -B build-asan -S . -DZKDET_SANITIZE=address,undefined -DZKDET_CHECKED=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "=== persistence: crash-recovery matrix under ASan ==="
# Every ledger fail-point x hit position: kill mid-write, reopen, replay,
# require byte-identical convergence with the uninterrupted run — with
# ASan watching the truncation/replay paths for memory errors.
./build-asan/tests/ledger_crash_matrix
./build-asan/tests/zkdet_ledger_tests

echo "=== replication: failover chaos matrix under ASan ==="
# Every repl.* fail-point x kill position: stream, kill the primary,
# promote the follower, resume — the promoted chain must be
# byte-identical to the uninterrupted control (funds conserved, every
# exchange settled xor refunded). The in-suite runs cover kill
# positions 1..10; this replays a disjoint 11..15 slice with ASan
# watching the shipping/truncation/promotion paths.
./build-asan/tests/zkdet_replication_tests
ZKDET_REPL_MATRIX_HITS="${ZKDET_REPL_MATRIX_HITS:-11-15}" \
  ./build-asan/tests/replication_failover_matrix

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== TSan stage skipped (--skip-tsan) ==="
else
  echo "=== tsan: full suite under -DZKDET_SANITIZE=thread ==="
  cmake -B build-tsan -S . -DZKDET_SANITIZE=thread
  cmake --build build-tsan -j
  ctest --test-dir build-tsan --output-on-failure -j
  echo "=== tsan: parallel batch executor focus ==="
  # The txpool determinism suite is the densest producer of cross-thread
  # batch execution (worker sweeps x randomized submission orders); run
  # it again on its own so a race here fails loudly and attributably.
  ./build-tsan/tests/zkdet_txpool_tests \
    --gtest_filter='TxpoolDeterminism*:TxpoolScheduler*:TxpoolCall*'
fi

echo "=== fuzz: 10s smoke per target ==="
cmake -B build-fuzz -S . -DZKDET_FUZZ=ON
cmake --build build-fuzz -j --target zkdet_fuzz_u256 --target zkdet_fuzz_transcript \
  --target zkdet_fuzz_wal
# ZKDET_FUZZ_SECONDS drives the GCC standalone driver; -max_total_time
# drives Clang/libFuzzer builds (the standalone driver ignores dash-args).
FUZZ_SECS="${ZKDET_FUZZ_SECONDS:-10}"
ZKDET_FUZZ_SECONDS="$FUZZ_SECS" ./build-fuzz/fuzz/zkdet_fuzz_u256 "-max_total_time=$FUZZ_SECS"
ZKDET_FUZZ_SECONDS="$FUZZ_SECS" ./build-fuzz/fuzz/zkdet_fuzz_transcript "-max_total_time=$FUZZ_SECS"
ZKDET_FUZZ_SECONDS="$FUZZ_SECS" ./build-fuzz/fuzz/zkdet_fuzz_wal "-max_total_time=$FUZZ_SECS"

echo "=== CI OK ==="
