#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + full ctest), then a
# ThreadSanitizer pass over the concurrent-runtime tests.
#
# Usage: scripts/ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "=== tier-1: build + full test suite ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== TSan pass skipped (--skip-tsan) ==="
  exit 0
fi

echo "=== TSan: runtime tests under -DZKDET_SANITIZE=thread ==="
cmake -B build-tsan -S . -DZKDET_SANITIZE=thread
cmake --build build-tsan -j --target zkdet_runtime_tests
ctest --test-dir build-tsan -R zkdet_runtime_tests --output-on-failure

echo "=== CI OK ==="
