#!/usr/bin/env python3
"""zkdet-specific static lint.

Mechanical rules that the generic toolchain cannot express, enforcing
the repo's correctness architecture (see DESIGN.md, "Correctness &
analysis tooling"):

  thread-outside-runtime   std::thread / std::jthread / pthread_create
                           only inside src/runtime (everything else goes
                           through the shared ThreadPool).
  raw-assert               no raw assert()/abort() outside tests/ — all
                           invariants ride the ZKDET_CHECK/ASSERT/DCHECK
                           tiers so the pluggable failure handler sees
                           them (static_assert is fine).
  nondeterminism           no rand()/srand()/random_device/clock reads in
                           prover or transcript paths (src/ff, src/ec,
                           src/plonk, src/gadgets): proofs must be
                           byte-identical across runs and worker counts.
  narrowing-cast           no casts to sub-64-bit integer types in the
                           arithmetic substrate (src/ff, src/ec) without
                           an explicit reviewed annotation; silent limb
                           truncation is how canonical-form bugs start.
  unbounded-retry          no while(true)/for(;;) loops in src/ — retry
                           and polling loops must carry an explicit
                           attempt cap (fault tolerance means giving up
                           cleanly, not spinning forever); reviewed
                           scheduler/sampling loops are annotated.
  fail-point-name          fault::fire() in src/ takes a named constant
                           from src/fault/points.hpp, never a raw string
                           literal — the catalog is the single source of
                           truth for the fault surface.
  vartime-scalar-mul       no variable-time Point::mul() in src/crypto —
                           secret-scalar paths (keygen, signing nonces,
                           exchange blinds) must use the constant-time
                           Point::mul_ct ladder; reviewed public-data
                           call sites (verification) are annotated.
  direct-chain-call        no direct Chain::call() in src/core — protocol
                           transactions route through txpool::TxPool::call
                           (declared access sets, nonce assignment, pooled
                           batching); reviewed direct sends (ZKCP baseline,
                           mint) are annotated.
  unbatched-verify         no inline plonk::verify() on settlement
                           paths (src/chain, src/core) — on-chain proof
                           checks ride the batched claim pipeline
                           (ProverService::batch_verify folding one
                           pairing product per sealed block); reviewed
                           off-chain/fallback sites are annotated.
  unchecked-io             two-sided durability hygiene: outside
                           src/ledger/ no raw file IO (fstream, fopen,
                           fwrite, ::open/::write/fsync...) — durable
                           state goes through the ledger's checked
                           wrappers so every write sits behind the CRC
                           framing and fsync fail-point; inside
                           src/ledger/ no statement-position IO syscall
                           whose return value is silently discarded
                           (bench/fuzz/tests and their JSON emitters are
                           exempt).
  untracked-watermark      replication code (src/replication) must not
                           construct WAL writers or append records
                           outside the tracked apply path — a follower's
                           acked watermark is only honest if every byte
                           in its WAL went through verify -> append ->
                           sync -> durable_seq advance -> ack; the
                           reviewed apply-path sites are annotated.
  raw-socket-io            raw socket syscalls (::socket, ::connect,
                           ::recv, socketpair, <sys/socket.h>...) only
                           inside src/rpc (the sockio layer) and
                           src/replication (SocketLink) — everything
                           else speaks framed requests through
                           rpc::Client / replication::Link, so the CRC
                           framing, non-blocking discipline and rpc.*
                           fail-points can't be bypassed.

Suppression: append  // zkdet-lint: allow(<rule>)  to the offending
line (or the line above) after review.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

--self-test runs the built-in corpus of seeded violations and verifies
every rule both fires and respects suppressions.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

REPO_SCOPES = ("src", "bench", "examples", "fuzz")
CPP_EXTENSIONS = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

ALLOW_RE = re.compile(r"//\s*zkdet-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Strip string literals and comments before matching so rule regexes do
# not fire on prose. Order matters: raw strings, strings, chars, then
# comments.
STRIP_RES = [
    re.compile(r'R"\w*\(.*?\)\w*"', re.DOTALL),
    re.compile(r'"(?:[^"\\\n]|\\.)*"'),
    re.compile(r"'(?:[^'\\\n]|\\.)*'"),
    re.compile(r"//[^\n]*"),
    re.compile(r"/\*.*?\*/", re.DOTALL),
]


class Rule:
    def __init__(self, name, pattern, applies, why):
        self.name = name
        self.pattern = re.compile(pattern)
        self.applies = applies  # path predicate (repo-relative, POSIX)
        self.why = why


def _in(prefixes):
    return lambda p: any(p.startswith(pre) for pre in prefixes)


def _in_src_except_runtime(p):
    return p.startswith("src/") and not p.startswith("src/runtime/")


def _outside_tests(p):
    return not p.startswith("tests/")


RULES = [
    Rule(
        "thread-outside-runtime",
        r"\bstd::(thread|jthread)\b|\bpthread_create\b",
        _in_src_except_runtime,
        "spawn work through runtime::ThreadPool, not ad-hoc threads",
    ),
    Rule(
        "raw-assert",
        r"(?<!static_)(?<!\w)assert\s*\(|(?<!\w)abort\s*\(",
        _outside_tests,
        "use ZKDET_CHECK / ZKDET_ASSERT / ZKDET_DCHECK (src/check/check.hpp)",
    ),
    Rule(
        "nondeterminism",
        r"(?<!\w)s?rand\s*\(|\brandom_device\b|\brand_r\b"
        r"|\bstd::chrono::(system|steady|high_resolution)_clock\b"
        r"|(?<!\w)time\s*\(",
        _in(("src/ff/", "src/ec/", "src/plonk/", "src/gadgets/")),
        "prover/transcript paths must be deterministic; take randomness "
        "from crypto::Drbg passed in by the caller",
    ),
    Rule(
        "narrowing-cast",
        r"static_cast<\s*(?:std::)?(?:u?int(?:8|16|32)_t|char|short|unsigned"
        r"(?:\s+(?:char|short|int))?|int)\s*>"
        r"|\(\s*(?:std::)?(?:u?int(?:8|16|32)_t|unsigned\s+char|unsigned\s+short"
        r"|char|short)\s*\)\s*[\w(]",
        _in(("src/ff/", "src/ec/")),
        "review sub-64-bit truncation in the arithmetic substrate and "
        "annotate it with // zkdet-lint: allow(narrowing-cast)",
    ),
    Rule(
        "unbounded-retry",
        r"\bwhile\s*\(\s*(?:true|1)\s*\)|\bfor\s*\(\s*;\s*;\s*\)",
        _in(("src/",)),
        "bound retry/polling loops with an explicit attempt cap (e.g. "
        "runtime::RetryPolicy, ExchangeDriver::Config::max_attempts); "
        "annotate reviewed scheduler/sampling loops",
    ),
    Rule(
        # Matched against stripped code: a string-literal argument blanks
        # to spaces, so anything but a points:: constant fails the
        # lookahead and fires.
        "fail-point-name",
        r"\bfault::fire\s*\(\s*(?!(?:fault::)?points::k\w+\s*\))",
        lambda p: p.startswith("src/") and not p.startswith("src/fault/"),
        "pass a named constant from src/fault/points.hpp to fault::fire() "
        "so the fail-point catalog stays the single source of truth",
    ),
    Rule(
        # `.mul(` never matches `.mul_ct(` (the paren is required right
        # after `mul`, modulo whitespace).
        "vartime-scalar-mul",
        r"\.mul\s*\(",
        _in(("src/crypto/",)),
        "secret scalars in src/crypto must use the constant-time "
        "Point::mul_ct ladder; annotate reviewed public-data call sites "
        "with // zkdet-lint: allow(vartime-scalar-mul)",
    ),
    Rule(
        # The protocol layer sends txs through the pool so every tx gets
        # a nonce, a declared access set, and a shot at batching; a
        # direct Chain::call bypasses all three.
        "direct-chain-call",
        r"\bchain\s*\(\s*\)\s*\.\s*call\s*\(|\bchain_\s*\.\s*call\s*\(",
        _in(("src/core/",)),
        "route protocol transactions through txpool::TxPool::call "
        "(nonce assignment, declared access sets, pooled batching); "
        "annotate reviewed direct sends with "
        "// zkdet-lint: allow(direct-chain-call)",
    ),
    Rule(
        # Settlement-path proof checks must ride the batched claim
        # pipeline: a tx carries its ProofClaim, chain stage 2.5 folds
        # every claim in the sealed block into ONE pairing product, and
        # the verifier contract consumes the verdict. An inline
        # plonk::verify on these paths silently forfeits the
        # amortization (and the per-entry attribution semantics).
        "unbatched-verify",
        r"\bplonk::verify\s*\(",
        _in(("src/chain/", "src/core/")),
        "settlement-path proofs verify through the batched claim "
        "pipeline (chain/claim.hpp + ProverService::batch_verify); "
        "annotate reviewed off-chain or fallback sites with "
        "// zkdet-lint: allow(unbatched-verify)",
    ),
    Rule(
        # Raw file IO outside the ledger. The `(?<![\w)])::` lookbehind
        # keeps method definitions/calls like PoseidonCommitment::open()
        # from matching — only the global-namespace POSIX calls do.
        "unchecked-io",
        r"\bstd::(?:basic_)?[io]?fstream\b"
        r"|(?<!\w)f(?:open|write|read|sync|datasync)\s*\("
        r"|(?<![\w)])::(?:open|creat|read|pread|write|pwrite|ftruncate"
        r"|unlink|rename)\s*\(",
        lambda p: p.startswith("src/") and not p.startswith("src/ledger/"),
        "durable state is written only through src/ledger's checked IO "
        "wrappers (CRC framing, typed IoError, the ledger.fsync "
        "fail-point); raw file IO elsewhere bypasses crash-recovery",
    ),
    Rule(
        # Inside the ledger: an IO syscall in statement position has its
        # return value silently discarded — every write/fsync/close must
        # be checked (or the discard reviewed and annotated, e.g. the
        # destructor-path close which must not throw).
        "unchecked-io",
        r"^\s*(?:\(void\)\s*)?(?:::)?"
        r"(?:open|creat|read|pread|write|pwrite|fsync|fdatasync"
        r"|ftruncate|close|rename|unlink|fflush|fwrite|fread)\s*\(",
        _in(("src/ledger/",)),
        "check the return value of every IO syscall in src/ledger (throw "
        "IoError on failure); annotate reviewed discards with "
        "// zkdet-lint: allow(unchecked-io)",
    ),
    Rule(
        # A follower acks what it has durably applied; that claim is
        # only honest if every byte in its WAL arrived through the
        # tracked apply path (verify -> append -> sync -> advance
        # durable_seq_ -> ack). Any other WalWriter construction or
        # wal append inside the replication subsystem can desync the
        # on-disk WAL from the acked watermark — a silent-fork seed.
        "untracked-watermark",
        r"\bwal_?\w*\s*(?:->|\.)\s*(?:emplace|append)\s*\("
        r"|\bWalWriter\s*\(|\bopen_append\s*\(",
        _in(("src/replication/",)),
        "replication persists shipped records only through the tracked "
        "apply path (verify -> append -> sync -> durable_seq_ -> ack); "
        "annotate reviewed apply-path sites with "
        "// zkdet-lint: allow(untracked-watermark)",
    ),
    Rule(
        # Raw socket syscalls outside the two reviewed homes. Mirrors
        # unchecked-io's shape: the `(?<![\w)])::` lookbehind keeps
        # namespace-qualified calls (sockio::connect_tcp, this->send())
        # from matching — only global-namespace POSIX calls do — and a
        # short list of unmistakable bare names (socketpair, accept4,
        # setsockopt, ...) catches unqualified use. Including a socket
        # header anywhere else is itself a finding: there is no
        # legitimate reason to see sockaddr outside the sockio layer.
        "raw-socket-io",
        r"(?<![\w)])::(?:socket|socketpair|bind|listen|accept4?|connect"
        r"|send|sendto|sendmsg|recv|recvfrom|recvmsg|setsockopt|getsockopt"
        r"|shutdown|getsockname|getpeername)\s*\("
        r"|(?<![\w.:>])(?:socketpair|accept4|recvfrom|sendto|recvmsg"
        r"|sendmsg|setsockopt|getsockopt)\s*\("
        r"|#\s*include\s*<(?:sys/socket\.h|sys/un\.h|netinet/[\w./]+)>",
        lambda p: not p.startswith("src/rpc/")
        and not p.startswith("src/replication/"),
        "raw socket IO lives only in src/rpc (sockio) and "
        "src/replication (SocketLink); speak framed requests through "
        "rpc::Client / replication::Link instead, or annotate a "
        "reviewed site with // zkdet-lint: allow(raw-socket-io)",
    ),
    Rule(
        # Keep the concurrency annotation surface closed: every lock in
        # the tree must be a zkdet::Mutex so clang -Wthread-safety can
        # prove discipline and lockdep (-DZKDET_CHECKED) can rank-check
        # acquisition order. std primitives carry neither.
        "raw-mutex",
        r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
        r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock"
        r"|scoped_lock|shared_lock|condition_variable(?:_any)?"
        r"|call_once|once_flag)\b",
        lambda p: p.startswith("src/") and not p.startswith("src/check/"),
        "use zkdet::Mutex/MutexLock/UniqueLock/CondVar from check/mutex.hpp "
        "(Clang thread-safety capability + lockdep level from "
        "check/lock_order.hpp); annotate reviewed exceptions with "
        "// zkdet-lint: allow(raw-mutex)",
    ),
]


def strip_noncode(text: str) -> str:
    """Blank out strings and comments, preserving line structure."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    for pattern in STRIP_RES:
        text = pattern.sub(blank, text)
    return text


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def lint_file(root: pathlib.Path, path: pathlib.Path) -> list[tuple]:
    rel = path.relative_to(root).as_posix()
    rules = [r for r in RULES if r.applies(rel)]
    if not rules:
        return []
    raw_lines = path.read_text(errors="replace").splitlines()
    code_lines = strip_noncode("\n".join(raw_lines)).splitlines()
    findings = []
    for lineno, code in enumerate(code_lines, start=1):
        for rule in rules:
            if not rule.pattern.search(code):
                continue
            allows = allowed_rules(raw_lines[lineno - 1])
            if lineno >= 2:
                allows |= allowed_rules(raw_lines[lineno - 2])
            if rule.name in allows:
                continue
            findings.append((rel, lineno, rule, raw_lines[lineno - 1].strip()))
    return findings


def lint_tree(root: pathlib.Path) -> list[tuple]:
    findings = []
    for scope in REPO_SCOPES:
        base = root / scope
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CPP_EXTENSIONS and path.is_file():
                findings.extend(lint_file(root, path))
    return findings


def report(findings: list[tuple]) -> None:
    for rel, lineno, rule, line in findings:
        print(f"{rel}:{lineno}: [{rule.name}] {line}")
        print(f"    {rule.why}")


# --- self-test ----------------------------------------------------------

SELF_TEST_CASES = [
    # (path, contents, rule expected to fire — or None for a clean file)
    ("src/core/foo.cpp", "#include <thread>\nstd::thread t(f);\n",
     "thread-outside-runtime"),
    ("src/runtime/pool.cpp", "std::thread worker(loop);\n", None),
    ("src/ff/bar.cpp", "void f() { assert(x > 0); }\n", "raw-assert"),
    ("src/ff/ok.cpp", "static_assert(sizeof(int) == 4);\n", None),
    ("src/chain/die.cpp", "void f() { abort(); }\n", "raw-assert"),
    ("tests/test_x.cpp", "void f() { assert(true); }\n", None),
    ("src/plonk/bad_rng.cpp", "int r = rand();\n", "nondeterminism"),
    ("src/plonk/clock.cpp",
     "auto t = std::chrono::steady_clock::now();\n", "nondeterminism"),
    ("src/core/clock_ok.cpp",
     "auto t = std::chrono::steady_clock::now();\n", None),  # out of scope
    ("src/ec/narrow.cpp", "auto x = static_cast<std::uint8_t>(v);\n",
     "narrowing-cast"),
    ("src/ec/narrow_ok.cpp",
     "auto x = static_cast<std::uint8_t>(v);"
     "  // zkdet-lint: allow(narrowing-cast)\n", None),
    ("src/ff/wide_ok.cpp", "auto x = static_cast<std::uint64_t>(v);\n", None),
    ("src/gadgets/comment_ok.cpp", "// assert(false) in prose is fine\n",
     None),
    ("src/ff/string_ok.cpp", 'const char* s = "assert(x)";\n', None),
    ("src/crypto/prev_line.cpp",
     "// zkdet-lint: allow(raw-assert)\nabort();\n", None),
    ("src/chain/spin.cpp", "void f() { while (true) { poll(); } }\n",
     "unbounded-retry"),
    ("src/storage/spin1.cpp", "void f() { while(1) retry(); }\n",
     "unbounded-retry"),
    ("src/core/forever.cpp", "void f() { for (;;) step(); }\n",
     "unbounded-retry"),
    ("src/runtime/loop_reviewed.cpp",
     "for (;;) {  // zkdet-lint: allow(unbounded-retry)\n", None),
    ("src/core/bounded_ok.cpp",
     "for (int i = 0; i < cfg.max_attempts; ++i) { attempt(); }\n", None),
    ("src/core/while_cond_ok.cpp", "while (pending > 0) { drain(); }\n",
     None),
    ("src/storage/fp_raw.cpp",
     '#include "fault/fault.hpp"\n'
     'if (fault::fire("storage.put.node")) return;\n',
     "fail-point-name"),
    ("src/storage/fp_var.cpp", "if (fault::fire(point_name)) return;\n",
     "fail-point-name"),
    ("src/storage/fp_ok.cpp",
     "if (fault::fire(fault::points::kStoragePutNode)) return;\n", None),
    ("src/chain/fp_using_ok.cpp",
     "if (fault::fire(points::kChainSubmit)) return;\n", None),
    ("src/fault/fp_impl_ok.cpp",
     'bool fire_slow(const char* p); auto x = fault::fire("self");\n', None),
    ("src/crypto/sig_vartime.cpp", "kp.pk = G1::generator().mul(kp.sk);\n",
     "vartime-scalar-mul"),
    ("src/crypto/sig_ct_ok.cpp", "kp.pk = G1::generator().mul_ct(kp.sk);\n",
     None),
    ("src/crypto/sig_allow_ok.cpp",
     "return pk.mul(e);  // zkdet-lint: allow(vartime-scalar-mul)\n", None),
    ("src/chain/mul_scope_ok.cpp", "auto p = base.mul(k);\n", None),
    ("src/core/direct_call.cpp",
     "auto r = sys_.chain().call(buyer, desc, fn);\n", "direct-chain-call"),
    ("src/core/direct_call_member.cpp", "auto r = chain_.call(from, d, fn);\n",
     "direct-chain-call"),
    ("src/core/direct_call_allow_ok.cpp",
     "// zkdet-lint: allow(direct-chain-call)\n"
     "auto r = sys_.chain().call(buyer, desc, fn);\n", None),
    ("src/core/pool_call_ok.cpp",
     "auto r = sys_.pool().call(buyer, desc, fn, access);\n", None),
    ("src/chain/chain_scope_ok.cpp", "auto r = chain_.call(from, d, fn);\n",
     None),  # the chain layer itself is out of scope
    ("src/chain/inline_verify.cpp",
     "bool ok = plonk::verify(vk_, publics, proof);\n", "unbatched-verify"),
    ("src/core/inline_verify.cpp",
     "return plonk::verify(keys->vk, publics, offer.proof_p);\n",
     "unbatched-verify"),
    ("src/core/inline_verify_allow_ok.cpp",
     "// zkdet-lint: allow(unbatched-verify) reviewed: off-chain check\n"
     "return plonk::verify(keys->vk, publics, proof);\n", None),
    ("src/chain/prepare_ok.cpp",
     "auto pc = plonk::verify_prepare(vk_, publics, proof);\n", None),
    ("src/plonk/verify_impl_ok.cpp",
     "bool v = plonk::verify(vk, publics, proof);\n", None),  # out of scope
    ("src/chain/raw_stream.cpp",
     '#include <fstream>\nstd::ofstream out("state.bin");\n', "unchecked-io"),
    ("src/storage/raw_write.cpp",
     "const ssize_t n = ::write(fd, buf, len);\n", "unchecked-io"),
    ("src/core/raw_fopen.cpp", 'FILE* f = fopen(path, "wb");\n',
     "unchecked-io"),
    ("src/crypto/method_open_ok.cpp",
     "bool PoseidonCommitment::open(const Fr& c) { return check(c); }\n",
     None),
    ("bench/json_out_ok.cpp",
     '#include <fstream>\nstd::ofstream json("BENCH_x.json");\n',
     None),  # bench/fuzz/tests are exempt from unchecked-io
    ("src/ledger/io_checked_ok.cpp",
     "const ssize_t n = ::write(fd, buf, len);\nif (n < 0) fail();\n", None),
    ("src/ledger/io_discard.cpp", "void f() {\n  ::fsync(fd);\n}\n",
     "unchecked-io"),
    ("src/ledger/io_void_discard.cpp", "(void)::close(fd);\n",
     "unchecked-io"),
    ("src/ledger/io_allow_ok.cpp",
     "::close(fd);  // zkdet-lint: allow(unchecked-io) dtor close\n", None),
    # untracked-watermark: WAL writes in src/replication must ride the
    # tracked apply path (or carry a reviewed annotation).
    ("src/replication/rogue_append.cpp", "void f() { wal_->append(rec); }\n",
     "untracked-watermark"),
    ("src/replication/rogue_writer.cpp",
     "ledger::WalWriter w(ledger::File::open_append(p), false);\n",
     "untracked-watermark"),
    ("src/replication/rogue_emplace.cpp",
     "wal_.emplace(ledger::File::open_append(p), false);\n",
     "untracked-watermark"),
    ("src/replication/apply_path_ok.cpp",
     "wal_->append(rec);  // zkdet-lint: allow(untracked-watermark)\n",
     None),
    ("src/replication/string_append_ok.cpp",
     "void f() { diagnostic.append(why); }\n", None),  # not a WAL handle
    ("src/ledger/wal_home_ok.cpp",
     "WalWriter w(File::open_append(p), true);\n",
     None),  # the WAL's own home is out of scope
    # raw-socket-io: socket syscalls live only in src/rpc (sockio) and
    # src/replication (SocketLink).
    ("src/core/raw_socket.cpp",
     "int s = ::socket(AF_INET, SOCK_STREAM, 0);\n", "raw-socket-io"),
    ("src/storage/sock_hdr.cpp", "#include <sys/socket.h>\n",
     "raw-socket-io"),
    ("src/chain/bare_pair.cpp",
     "int rc = socketpair(AF_UNIX, SOCK_STREAM, 0, sv);\n", "raw-socket-io"),
    ("src/runtime/bare_sockopt.cpp",
     "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);\n",
     "raw-socket-io"),
    ("src/rpc/sock_home_ok.cpp",
     "int s = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
     "#include <sys/socket.h>\n", None),  # the sockio home is legal
    ("src/replication/sock_link_ok.cpp", "#include <sys/un.h>\n", None),
    ("src/core/member_send_ok.cpp",
     "link.send_to_follower(bytes);\nauto d = link.recv_at_primary();\n"
     "auto fd = sockio::connect_tcp(port);\n", None),  # members/namespaced
    ("src/core/sock_allow_ok.cpp",
     "int s = ::socket(AF_UNIX, SOCK_STREAM, 0);"
     "  // zkdet-lint: allow(raw-socket-io)\n", None),
    # raw-mutex: std locking primitives are banned in src/ outside
    # src/check/ (the annotated-wrapper home).
    ("src/chain/raw_mutex.cpp", "static std::mutex mu;\n", "raw-mutex"),
    ("src/storage/raw_guard.cpp",
     "const std::lock_guard<std::mutex> lk(m_);\n", "raw-mutex"),
    ("src/runtime/raw_ulock.cpp", "std::unique_lock<std::mutex> lk(m);\n",
     "raw-mutex"),
    ("src/ledger/raw_scoped.cpp", "std::scoped_lock lk(a, b);\n",
     "raw-mutex"),
    ("src/runtime/raw_cv.cpp", "std::condition_variable cv;\n", "raw-mutex"),
    ("src/plonk/raw_once.cpp",
     "std::once_flag once;\nstd::call_once(once, init);\n", "raw-mutex"),
    ("src/check/wrapper_home_ok.cpp",
     "std::mutex m_;\nstd::condition_variable cv_;\n",
     None),  # the wrapper implementation itself is the one legal home
    ("src/core/wrapped_ok.cpp",
     "zkdet::Mutex mu{check::LockLevel::kChain};\nconst MutexLock lk(mu);\n",
     None),
    ("src/crypto/mutex_prose_ok.cpp",
     "// std::mutex is banned here; use zkdet::Mutex\n", None),
    ("src/storage/mutex_allow_ok.cpp",
     "std::mutex special_;  // zkdet-lint: allow(raw-mutex) FFI handoff\n",
     None),
    ("src/runtime/mutex_allow_prev_ok.cpp",
     "// zkdet-lint: allow(raw-mutex)\nstd::mutex legacy_;\n", None),
    ("tests/test_threads_ok.cpp", "std::mutex m;\n", None),  # out of scope
]


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="zkdet-lint-") as tmp:
        root = pathlib.Path(tmp)
        for rel, contents, _ in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents)
        findings = lint_tree(root)
        fired = {(f[0], f[2].name) for f in findings}
        for rel, _, expected in SELF_TEST_CASES:
            if expected is None:
                hits = [name for (path, name) in fired if path == rel]
                if hits:
                    print(f"self-test FAIL: {rel} unexpectedly flagged {hits}")
                    failures += 1
            elif (rel, expected) not in fired:
                print(f"self-test FAIL: {rel} did not trigger {expected}")
                failures += 1
    if failures == 0:
        print(f"self-test OK: {len(SELF_TEST_CASES)} cases")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: whole tree)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation corpus and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root).resolve() if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if args.paths:
        findings = []
        for p in args.paths:
            path = pathlib.Path(p).resolve()
            if not path.is_file():
                print(f"not a file: {p}", file=sys.stderr)
                return 2
            findings.extend(lint_file(root, path))
    else:
        findings = lint_tree(root)

    if findings:
        report(findings)
        print(f"\n{len(findings)} finding(s)")
        return 1
    print("lint OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
