#include "chain/arbiter.hpp"

#include "crypto/poseidon.hpp"

namespace zkdet::chain {

namespace {
constexpr std::size_t kKeySecureCodeSize = 2600;
constexpr std::size_t kZkcpCodeSize = 1400;
}  // namespace

KeySecureArbiter::KeySecureArbiter(const PlonkVerifierContract& verifier,
                                   std::uint64_t first_id,
                                   std::uint64_t stride)
    : Contract("KeySecureArbiter", kKeySecureCodeSize),
      verifier_(verifier),
      first_id_(first_id),
      stride_(stride == 0 ? 1 : stride),
      next_id_(first_id) {}

std::uint64_t KeySecureArbiter::lock(CallContext& ctx, const Address& seller,
                                     const Fr& h_v, const Fr& key_commitment,
                                     std::uint64_t timeout_blocks) {
  ctx.require(ctx.value() > 0, "payment required");
  const std::uint64_t id = next_id_;
  next_id_ += stride_;
  ExchangeInfo info;
  info.id = id;
  info.buyer = ctx.sender();
  info.seller = seller;
  info.amount = ctx.value();
  info.h_v = h_v;
  info.key_commitment = key_commitment;
  info.deadline = ctx.block_height() + timeout_blocks;
  info.state = ExchangeState::kLocked;
  exchanges_[id] = info;
  store().set(ctx, "xc/" + std::to_string(id) + "/hv", h_v);
  store().set(ctx, "xc/" + std::to_string(id) + "/c", key_commitment);
  store().set_u64(ctx, "xc/" + std::to_string(id) + "/amount", info.amount);
  // The event carries every field the contract mirror needs that the
  // KV slots don't (addresses, deadline) so a ledger reopen can rebuild
  // the exchange table from public chain state.
  ctx.emit(Event{"PaymentLocked",
                 {{"exchangeId", std::to_string(id)},
                  {"buyer", ctx.sender()},
                  {"seller", seller},
                  {"amount", std::to_string(info.amount)},
                  {"deadline", std::to_string(info.deadline)}}});
  return id;
}

void KeySecureArbiter::settle(CallContext& ctx, std::uint64_t exchange_id,
                              const Fr& k_c, const plonk::Proof& proof_k) {
  auto it = exchanges_.find(exchange_id);
  ctx.require(it != exchanges_.end(), "no such exchange");
  ExchangeInfo& x = it->second;
  ctx.require(x.state == ExchangeState::kLocked, "exchange not open");
  ctx.require(ctx.sender() == x.seller, "only the seller settles");

  // Public inputs of the pi_k relation: (k_c, c, h_v).
  const bool ok =
      verifier_.verify(ctx, {k_c, x.key_commitment, x.h_v}, proof_k);
  ctx.require(ok, "invalid key proof");

  x.k_c = k_c;
  x.state = ExchangeState::kSettled;
  store().set(ctx, "xc/" + std::to_string(exchange_id) + "/kc", k_c);
  ctx.chain().transfer(address(), x.seller, x.amount);
  ctx.emit(Event{"ExchangeSettled",
                 {{"exchangeId", std::to_string(exchange_id)},
                  {"seller", x.seller}}});
}

void KeySecureArbiter::refund(CallContext& ctx, std::uint64_t exchange_id) {
  auto it = exchanges_.find(exchange_id);
  ctx.require(it != exchanges_.end(), "no such exchange");
  ExchangeInfo& x = it->second;
  ctx.require(x.state == ExchangeState::kLocked, "exchange not open");
  ctx.require(ctx.sender() == x.buyer, "only the buyer refunds");
  ctx.require(ctx.block_height() > x.deadline, "deadline not reached");
  x.state = ExchangeState::kRefunded;
  ctx.chain().transfer(address(), x.buyer, x.amount);
  ctx.emit(Event{"ExchangeRefunded",
                 {{"exchangeId", std::to_string(exchange_id)}}});
}

void KeySecureArbiter::on_adopted(const Chain& chain) {
  next_id_ = first_id_;
  exchanges_.clear();
  for (const auto& block : chain.blocks()) {
    for (const auto& tx : block.txs) {
      for (const auto& ev : tx.events) {
        const auto field = [&](const char* name) -> const std::string* {
          for (const auto& [k, v] : ev.fields) {
            if (k == name) return &v;
          }
          return nullptr;
        };
        const std::string* xid = field("exchangeId");
        if (xid == nullptr) continue;
        const std::uint64_t id = std::stoull(*xid);
        // Sharded deploys see every shard's events in the shared block
        // history; each rebuilds only its own id progression.
        if (!owns_id(id)) continue;
        const std::string prefix = "xc/" + std::to_string(id) + "/";
        if (ev.name == "PaymentLocked") {
          const std::string* buyer = field("buyer");
          const std::string* seller = field("seller");
          const std::string* deadline = field("deadline");
          if (buyer == nullptr || seller == nullptr || deadline == nullptr) {
            throw Revert("arbiter adoption: incomplete PaymentLocked event");
          }
          ExchangeInfo info;
          info.id = id;
          info.buyer = *buyer;
          info.seller = *seller;
          info.deadline = std::stoull(*deadline);
          if (const auto v = store().peek(prefix + "hv")) info.h_v = *v;
          if (const auto v = store().peek(prefix + "c")) {
            info.key_commitment = *v;
          }
          if (const auto v = store().peek(prefix + "amount")) {
            info.amount = v->to_canonical().limb[0];
          }
          info.state = ExchangeState::kLocked;
          exchanges_[id] = std::move(info);
          if (id >= next_id_) next_id_ = id + stride_;
        } else if (ev.name == "ExchangeSettled") {
          const auto it = exchanges_.find(id);
          if (it == exchanges_.end()) continue;
          it->second.state = ExchangeState::kSettled;
          if (const auto v = store().peek(prefix + "kc")) it->second.k_c = *v;
        } else if (ev.name == "ExchangeRefunded") {
          const auto it = exchanges_.find(id);
          if (it != exchanges_.end()) {
            it->second.state = ExchangeState::kRefunded;
          }
        }
      }
    }
  }
}

std::optional<ExchangeInfo> KeySecureArbiter::exchange(
    std::uint64_t id) const {
  const auto it = exchanges_.find(id);
  if (it == exchanges_.end()) return std::nullopt;
  return it->second;
}

std::optional<ExchangeInfo> KeySecureArbiter::find_by_hv(const Fr& h_v) const {
  for (const auto& [id, info] : exchanges_) {
    if (info.h_v == h_v) return info;
  }
  return std::nullopt;
}

// --- ZKCP baseline ---

ZkcpArbiter::ZkcpArbiter() : Contract("ZkcpArbiter", kZkcpCodeSize) {}

std::uint64_t ZkcpArbiter::lock(CallContext& ctx, const Address& seller,
                                const Fr& key_hash) {
  ctx.require(ctx.value() > 0, "payment required");
  const std::uint64_t id = next_id_++;
  ZkcpExchangeInfo info;
  info.id = id;
  info.buyer = ctx.sender();
  info.seller = seller;
  info.amount = ctx.value();
  info.key_hash = key_hash;
  info.state = ExchangeState::kLocked;
  exchanges_[id] = info;
  store().set(ctx, "zkcp/" + std::to_string(id) + "/h", key_hash);
  // Addresses and amount live only in the event; the KV slot carries
  // the field element. Together they are enough for on_adopted to
  // rebuild the exchange after a ledger reopen.
  ctx.emit(Event{"ZkcpPaymentLocked",
                 {{"exchangeId", std::to_string(id)},
                  {"buyer", ctx.sender()},
                  {"seller", seller},
                  {"amount", std::to_string(info.amount)}}});
  return id;
}

void ZkcpArbiter::open(CallContext& ctx, std::uint64_t exchange_id,
                       const Fr& key) {
  auto it = exchanges_.find(exchange_id);
  ctx.require(it != exchanges_.end(), "no such exchange");
  ZkcpExchangeInfo& x = it->second;
  ctx.require(x.state == ExchangeState::kLocked, "exchange not open");
  ctx.require(ctx.sender() == x.seller, "only the seller opens");
  const Fr h = crypto::poseidon_hash({key}, /*domain_tag=*/0x6b6579);  // "key"
  ctx.require(h == x.key_hash, "key does not match hash");
  // The key is now part of public chain state — anyone can decrypt the
  // publicly stored ciphertext. This is exactly the flaw the key-secure
  // protocol removes.
  x.revealed_key = key;
  x.key_revealed = true;
  x.state = ExchangeState::kSettled;
  store().set(ctx, "zkcp/" + std::to_string(exchange_id) + "/key", key);
  ctx.chain().transfer(address(), x.seller, x.amount);
  ctx.emit(Event{"ZkcpKeyRevealed",
                 {{"exchangeId", std::to_string(exchange_id)},
                  {"seller", x.seller}}});
}

void ZkcpArbiter::on_adopted(const Chain& chain) {
  next_id_ = 1;
  exchanges_.clear();
  for (const auto& block : chain.blocks()) {
    for (const auto& tx : block.txs) {
      for (const auto& ev : tx.events) {
        if (ev.name != "ZkcpPaymentLocked" && ev.name != "ZkcpKeyRevealed") {
          continue;
        }
        const auto field = [&](const char* name) -> const std::string* {
          for (const auto& [k, v] : ev.fields) {
            if (k == name) return &v;
          }
          return nullptr;
        };
        const std::string* xid = field("exchangeId");
        if (xid == nullptr) continue;
        const std::uint64_t id = std::stoull(*xid);
        const std::string prefix = "zkcp/" + std::to_string(id) + "/";
        if (ev.name == "ZkcpPaymentLocked") {
          const std::string* buyer = field("buyer");
          const std::string* seller = field("seller");
          const std::string* amount = field("amount");
          if (buyer == nullptr || seller == nullptr || amount == nullptr) {
            throw Revert("zkcp adoption: incomplete ZkcpPaymentLocked event");
          }
          ZkcpExchangeInfo info;
          info.id = id;
          info.buyer = *buyer;
          info.seller = *seller;
          info.amount = std::stoull(*amount);
          if (const auto v = store().peek(prefix + "h")) info.key_hash = *v;
          info.state = ExchangeState::kLocked;
          exchanges_[id] = std::move(info);
          if (id >= next_id_) next_id_ = id + 1;
        } else {
          const auto it = exchanges_.find(id);
          if (it == exchanges_.end()) continue;
          if (const auto v = store().peek(prefix + "key")) {
            it->second.revealed_key = *v;
            it->second.key_revealed = true;
          }
          it->second.state = ExchangeState::kSettled;
        }
      }
    }
  }
}

std::optional<ZkcpExchangeInfo> ZkcpArbiter::exchange(std::uint64_t id) const {
  const auto it = exchanges_.find(id);
  if (it == exchanges_.end()) return std::nullopt;
  return it->second;
}

std::optional<Fr> ZkcpArbiter::leaked_key(std::uint64_t id) const {
  const auto it = exchanges_.find(id);
  if (it == exchanges_.end() || !it->second.key_revealed) return std::nullopt;
  return it->second.revealed_key;
}

}  // namespace zkdet::chain
