// Exchange arbiter contracts.
//
// KeySecureArbiter — the paper's key-secure two-phase protocol (IV-F):
// the buyer locks payment together with h_v = H(k_v); the seller settles
// by publishing k_c = k + k_v and a Plonk proof pi_k that
//   Open(k, c, o) = 1  AND  h_v = H(k_v)  AND  k_c = k + k_v
// against the key commitment c recorded in the token. The contract
// verifies pi_k on-chain and forwards the payment; k itself never
// touches the chain — only the blinded k_c does.
//
// ZkcpArbiter — the classic ZKCP Open phase (paper III-C), kept as the
// baseline: the seller must reveal k on-chain to redeem the payment,
// which leaks k to everyone (the vulnerability IV-F fixes). Tests and
// examples use it to demonstrate the paper's critique.
#pragma once

#include "chain/chain.hpp"
#include "chain/verifier_contract.hpp"

namespace zkdet::chain {

enum class ExchangeState : std::uint8_t {
  kNone = 0,
  kLocked = 1,
  kSettled = 2,
  kRefunded = 3,
};

struct ExchangeInfo {
  std::uint64_t id = 0;
  Address buyer;
  Address seller;
  std::uint64_t amount = 0;
  Fr h_v;             // H(k_v) chosen by the buyer
  Fr key_commitment;  // c from the token being bought
  Fr k_c;             // published by the seller at settlement
  std::uint64_t deadline = 0;
  ExchangeState state = ExchangeState::kNone;
};

class KeySecureArbiter : public Contract {
 public:
  // `verifier` must hold the verifying key of the pi_k circuit, whose
  // public inputs are ordered (k_c, c, h_v).
  //
  // Sharding (ZkdetSystem deploys S instances to parallelize escrow
  // flows across token ids): shard s of S uses (first_id = s + 1,
  // stride = S), so ids stay globally unique across shards and
  // shard-of-exchange is recoverable as (id - 1) % S. The default
  // (1, 1) is a single unsharded arbiter — the pre-sharding behavior.
  explicit KeySecureArbiter(const PlonkVerifierContract& verifier,
                            std::uint64_t first_id = 1,
                            std::uint64_t stride = 1);

  // Buyer escrows `ctx.value()` against seller; the exchange can be
  // refunded after `timeout_blocks` if the seller never settles.
  std::uint64_t lock(CallContext& ctx, const Address& seller, const Fr& h_v,
                     const Fr& key_commitment, std::uint64_t timeout_blocks);

  // Seller publishes (k_c, pi_k); on valid proof the payment transfers.
  void settle(CallContext& ctx, std::uint64_t exchange_id, const Fr& k_c,
              const plonk::Proof& proof_k);

  // Buyer reclaims funds after the deadline.
  void refund(CallContext& ctx, std::uint64_t exchange_id);

  [[nodiscard]] std::optional<ExchangeInfo> exchange(std::uint64_t id) const;

  // Off-chain lookup by the buyer's h_v (unique per session because k_v
  // is drawn fresh). This is how a crashed buyer client that persisted
  // only its session secrets re-discovers its exchange id from public
  // chain state (ExchangeDriver recovery).
  [[nodiscard]] std::optional<ExchangeInfo> find_by_hv(const Fr& h_v) const;

 protected:
  // Rebuilds exchanges_/next_id_ from the event log + restored KV slots
  // after a ledger reopen.
  void on_adopted(const Chain& chain) override;

 private:
  // True when `id` belongs to this shard's arithmetic progression.
  [[nodiscard]] bool owns_id(std::uint64_t id) const {
    return id >= first_id_ && (id - first_id_) % stride_ == 0;
  }

  const PlonkVerifierContract& verifier_;
  std::uint64_t first_id_;
  std::uint64_t stride_;
  std::uint64_t next_id_;
  std::map<std::uint64_t, ExchangeInfo> exchanges_;
};

struct ZkcpExchangeInfo {
  std::uint64_t id = 0;
  Address buyer;
  Address seller;
  std::uint64_t amount = 0;
  Fr key_hash;       // H(k)
  Fr revealed_key;   // k, publicly readable after Open (the leak)
  bool key_revealed = false;
  ExchangeState state = ExchangeState::kNone;
};

class ZkcpArbiter : public Contract {
 public:
  ZkcpArbiter();

  std::uint64_t lock(CallContext& ctx, const Address& seller,
                     const Fr& key_hash);
  // The seller reveals k; the contract checks H(k) == key_hash (Poseidon)
  // and pays out. k becomes part of public contract state.
  void open(CallContext& ctx, std::uint64_t exchange_id, const Fr& key);

  [[nodiscard]] std::optional<ZkcpExchangeInfo> exchange(
      std::uint64_t id) const;

  // What any third party can read off the chain after settlement.
  [[nodiscard]] std::optional<Fr> leaked_key(std::uint64_t id) const;

 protected:
  // Rebuilds exchanges_/next_id_ from the event log + restored KV slots
  // after a ledger reopen (same discipline as KeySecureArbiter: without
  // this, a failed-over primary could not resume an in-flight ZKCP
  // exchange).
  void on_adopted(const Chain& chain) override;

 private:
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, ZkcpExchangeInfo> exchanges_;
};

}  // namespace zkdet::chain
