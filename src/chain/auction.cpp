#include "chain/auction.hpp"

namespace zkdet::chain {

namespace {
constexpr std::size_t kAuctionCodeSize = 2100;
}

ClockAuction::ClockAuction(DataNft& nft)
    : Contract("ClockAuction", kAuctionCodeSize), nft_(nft) {}

std::uint64_t ClockAuction::create(CallContext& ctx, std::uint64_t token_id,
                                   std::uint64_t start_price,
                                   std::uint64_t floor_price,
                                   std::uint64_t decay_per_block) {
  ctx.require(start_price >= floor_price, "start below floor");
  const Address seller = ctx.sender();
  ctx.require(nft_.owner_of(ctx, token_id) == seller, "not the token owner");
  // Escrow the token (requires prior approval of this contract).
  nft_.transfer_from(ctx, seller, address(), token_id);

  const std::uint64_t id = next_id_++;
  AuctionInfo info;
  info.id = id;
  info.token_id = token_id;
  info.seller = seller;
  info.start_price = start_price;
  info.floor_price = floor_price;
  info.decay_per_block = decay_per_block;
  info.start_block = ctx.block_height();
  info.open = true;
  auctions_[id] = info;

  store().set_u64(ctx, "auction/" + std::to_string(id) + "/token", token_id);
  store().set_u64(ctx, "auction/" + std::to_string(id) + "/start", start_price);
  // Carries every AuctionInfo field the KV slots don't, so a ledger
  // reopen can rebuild the auction table from the event log alone.
  ctx.emit(Event{"AuctionCreated",
                 {{"auctionId", std::to_string(id)},
                  {"tokenId", std::to_string(token_id)},
                  {"seller", seller},
                  {"startPrice", std::to_string(start_price)},
                  {"floorPrice", std::to_string(floor_price)},
                  {"decayPerBlock", std::to_string(decay_per_block)}}});
  return id;
}

std::uint64_t ClockAuction::current_price(std::uint64_t auction_id,
                                          std::uint64_t height) const {
  const auto it = auctions_.find(auction_id);
  if (it == auctions_.end()) return 0;
  const AuctionInfo& a = it->second;
  const std::uint64_t elapsed =
      height > a.start_block ? height - a.start_block : 0;
  const std::uint64_t decayed = a.decay_per_block * elapsed;
  if (a.start_price < a.floor_price + decayed) return a.floor_price;
  return a.start_price - decayed;
}

void ClockAuction::bid(CallContext& ctx, std::uint64_t auction_id) {
  auto it = auctions_.find(auction_id);
  ctx.require(it != auctions_.end(), "no such auction");
  AuctionInfo& a = it->second;
  ctx.require(a.open, "auction closed");
  const std::uint64_t price = current_price(auction_id, ctx.block_height());
  ctx.require(ctx.value() >= price, "bid below current clock price");

  // Hand over the token first (checks may still revert), then move money.
  const Address bidder = ctx.sender();
  {
    CallContext::SenderScope as_contract(ctx, address());
    nft_.transfer_from(ctx, address(), bidder, a.token_id);
  }
  // Forward the escrowed payment to the seller; refund any overshoot.
  ctx.chain().transfer(address(), a.seller, price);
  if (ctx.value() > price) {
    ctx.chain().transfer(address(), bidder, ctx.value() - price);
  }

  a.open = false;
  a.winner = ctx.sender();
  a.settle_price = price;
  store().set_u64(ctx, "auction/" + std::to_string(auction_id) + "/settled",
                  price);
  ctx.emit(Event{"AuctionSettled",
                 {{"auctionId", std::to_string(auction_id)},
                  {"winner", ctx.sender()},
                  {"price", std::to_string(price)}}});
}

void ClockAuction::cancel(CallContext& ctx, std::uint64_t auction_id) {
  auto it = auctions_.find(auction_id);
  ctx.require(it != auctions_.end(), "no such auction");
  AuctionInfo& a = it->second;
  ctx.require(a.open, "auction closed");
  ctx.require(a.seller == ctx.sender(), "only seller may cancel");
  {
    CallContext::SenderScope as_contract(ctx, address());
    nft_.transfer_from(ctx, address(), a.seller, a.token_id);
  }
  a.open = false;
  ctx.emit(Event{"AuctionCancelled",
                 {{"auctionId", std::to_string(auction_id)}}});
}

void ClockAuction::on_adopted(const Chain& chain) {
  next_id_ = 1;
  auctions_.clear();
  for (const auto& block : chain.blocks()) {
    for (const auto& tx : block.txs) {
      for (const auto& ev : tx.events) {
        const auto field = [&](const char* name) -> const std::string* {
          for (const auto& [k, v] : ev.fields) {
            if (k == name) return &v;
          }
          return nullptr;
        };
        const std::string* aid = field("auctionId");
        if (aid == nullptr) continue;
        const std::uint64_t id = std::stoull(*aid);
        if (ev.name == "AuctionCreated") {
          const std::string* token = field("tokenId");
          const std::string* seller = field("seller");
          const std::string* start = field("startPrice");
          const std::string* floor = field("floorPrice");
          const std::string* decay = field("decayPerBlock");
          if (token == nullptr || seller == nullptr || start == nullptr ||
              floor == nullptr || decay == nullptr) {
            throw Revert("auction adoption: incomplete AuctionCreated event");
          }
          AuctionInfo info;
          info.id = id;
          info.token_id = std::stoull(*token);
          info.seller = *seller;
          info.start_price = std::stoull(*start);
          info.floor_price = std::stoull(*floor);
          info.decay_per_block = std::stoull(*decay);
          // create() reads block_height() inside the tx that seals this
          // block, so the event's containing block IS the start block.
          info.start_block = tx.block;
          info.open = true;
          auctions_[id] = std::move(info);
          if (id >= next_id_) next_id_ = id + 1;
        } else if (ev.name == "AuctionSettled") {
          const auto it = auctions_.find(id);
          if (it == auctions_.end()) continue;
          it->second.open = false;
          if (const std::string* w = field("winner")) it->second.winner = *w;
          if (const std::string* p = field("price")) {
            it->second.settle_price = std::stoull(*p);
          }
        } else if (ev.name == "AuctionCancelled") {
          const auto it = auctions_.find(id);
          if (it != auctions_.end()) it->second.open = false;
        }
      }
    }
  }
}

std::optional<AuctionInfo> ClockAuction::auction(std::uint64_t id) const {
  const auto it = auctions_.find(id);
  if (it == auctions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace zkdet::chain
