// Clock (descending-price / Dutch) auction for data tokens (paper III-C:
// "S launches a clock auction which locks its token for sale").
//
// The seller escrows the token in the auction contract; the ask price
// decays per block from start_price to floor_price. The first bid at or
// above the current price wins: the token moves to the bidder and the
// payment to the seller. The seller can cancel an unsold auction and
// reclaim the token.
#pragma once

#include "chain/chain.hpp"
#include "chain/nft.hpp"

namespace zkdet::chain {

struct AuctionInfo {
  std::uint64_t id = 0;
  std::uint64_t token_id = 0;
  Address seller;
  std::uint64_t start_price = 0;
  std::uint64_t floor_price = 0;
  std::uint64_t decay_per_block = 0;
  std::uint64_t start_block = 0;
  bool open = false;
  Address winner;
  std::uint64_t settle_price = 0;
};

class ClockAuction : public Contract {
 public:
  explicit ClockAuction(DataNft& nft);

  // Seller must have approved the auction contract for `token_id`.
  std::uint64_t create(CallContext& ctx, std::uint64_t token_id,
                       std::uint64_t start_price, std::uint64_t floor_price,
                       std::uint64_t decay_per_block);

  [[nodiscard]] std::uint64_t current_price(std::uint64_t auction_id,
                                            std::uint64_t height) const;

  // Buyer calls with value >= current price (value escrowed to this
  // contract by the chain runtime; forwarded to the seller here).
  void bid(CallContext& ctx, std::uint64_t auction_id);

  void cancel(CallContext& ctx, std::uint64_t auction_id);

  [[nodiscard]] std::optional<AuctionInfo> auction(std::uint64_t id) const;

 protected:
  // Rebuilds auctions_/next_id_ from the event log after a ledger reopen.
  void on_adopted(const Chain& chain) override;

 private:
  DataNft& nft_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, AuctionInfo> auctions_;
};

}  // namespace zkdet::chain
