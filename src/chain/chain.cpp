#include "chain/chain.hpp"

#include "chain/claim.hpp"
#include "crypto/sha256.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"
#include "ledger/io.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::chain {

thread_local TxExecCapture* Chain::tls_capture_ = nullptr;

TxExecCapture* Chain::capture() { return tls_capture_; }

// --- TxExecCapture ---

void TxExecCapture::check_read(const Address& contract,
                               const std::string& key) const {
  if (policy != nullptr && !policy->allow_slot_read(contract, key)) {
    throw Revert("undeclared slot read: " + contract + "/" + key);
  }
}

void TxExecCapture::check_write(const Address& contract,
                                const std::string& key) const {
  if (policy != nullptr && !policy->allow_slot_write(contract, key)) {
    throw Revert("undeclared slot write: " + contract + "/" + key);
  }
}

void TxExecCapture::check_balance(const Address& account) const {
  if (policy != nullptr && !policy->allow_balance(account)) {
    throw Revert("undeclared balance access: " + account);
  }
}

void TxExecCapture::discard() {
  slots.clear();
  delta.clear();
  balances.clear();
  transfers.clear();
}

// --- CallContext ---

CallContext::CallContext(Chain& chain, Address sender, std::uint64_t value,
                         GasMeter& gas)
    : chain_(chain), sender_(std::move(sender)), value_(value), gas_(gas) {}

std::uint64_t CallContext::block_height() const { return chain_.height(); }
std::uint64_t CallContext::timestamp() const { return chain_.timestamp(); }

void CallContext::emit(Event ev) {
  const auto& g = chain_.gas_schedule();
  std::size_t data_bytes = 0;
  for (const auto& [k, v] : ev.fields) data_bytes += k.size() + v.size();
  gas_.charge(g.log_base + g.log_topic + g.log_data_byte * data_bytes);
  events_.push_back(std::move(ev));
}

// --- MeteredStore ---

void MeteredStore::set(CallContext& ctx, const std::string& key,
                       const Fr& value) {
  const auto& g = ctx.chain().gas_schedule();
  if (TxExecCapture* cap = Chain::capture()) {
    cap->check_write(owner_, key);
    const auto ov = cap->slots.find({owner_, key});
    const bool exists = ov != cap->slots.end() ? ov->second.has_value()
                                               : slots_.count(key) > 0;
    ctx.gas().charge(exists ? g.sstore_update : g.sstore_set);
    cap->slots[{owner_, key}] = value;
    cap->delta.slot_sets.emplace_back(owner_, key, value);
    return;
  }
  const auto it = slots_.find(key);
  if (it == slots_.end()) {
    ctx.gas().charge(g.sstore_set);
    slots_.emplace(key, value);
  } else {
    ctx.gas().charge(g.sstore_update);
    it->second = value;
  }
  ctx.chain().record_slot_set(owner_, key, value);
}

void MeteredStore::set_u64(CallContext& ctx, const std::string& key,
                           std::uint64_t value) {
  set(ctx, key, Fr::from_u64(value));
}

std::optional<Fr> MeteredStore::get(CallContext& ctx,
                                    const std::string& key) const {
  ctx.gas().charge(ctx.chain().gas_schedule().sload);
  if (const TxExecCapture* cap = Chain::capture()) {
    cap->check_read(owner_, key);
    const auto ov = cap->slots.find({owner_, key});
    if (ov != cap->slots.end()) return ov->second;
  }
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> MeteredStore::get_u64(
    CallContext& ctx, const std::string& key) const {
  const auto v = get(ctx, key);
  if (!v) return std::nullopt;
  return v->to_canonical().limb[0];
}

void MeteredStore::erase(CallContext& ctx, const std::string& key) {
  ctx.gas().charge(ctx.chain().gas_schedule().sstore_update);
  if (TxExecCapture* cap = Chain::capture()) {
    cap->check_write(owner_, key);
    cap->slots[{owner_, key}] = std::nullopt;
    cap->delta.slot_erases.emplace_back(owner_, key);
    return;
  }
  slots_.erase(key);
  ctx.chain().record_slot_erase(owner_, key);
}

std::optional<Fr> MeteredStore::peek(const std::string& key) const {
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

// --- Chain ---

Chain::Chain() {
  Block genesis;
  genesis.height = 0;
  genesis.timestamp = timestamp_;
  genesis.hash = block_hash(genesis);
  blocks_.push_back(genesis);
}

Address Chain::create_account(const crypto::KeyPair& keys,
                              std::uint64_t initial_balance) {
  if (tls_capture_ != nullptr) {
    throw Revert("create_account inside a batch transaction");
  }
  const Address addr = crypto::address_of(keys.pk);
  // Re-registering an already-known account is a no-op: recovery replays
  // application startup against restored state (ledger reopen), and the
  // restored balance must not be credited a second time.
  if (const auto it = account_keys_.find(addr); it != account_keys_.end()) {
    if (!(it->second == keys.pk)) throw Revert("address collision");
    return addr;
  }
  balances_[addr] += initial_balance;
  account_keys_[addr] = keys.pk;
  if (observer_ != nullptr) {
    observer_->on_account_created(addr, keys.pk, balances_[addr]);
  }
  return addr;
}

std::uint64_t Chain::balance(const Address& a) const {
  // Inside a batch tx the thread sees its own buffered moves (and only
  // those — batch-mates' effects land at commit, after this tx).
  if (const TxExecCapture* cap = tls_capture_) {
    const auto ov = cap->balances.find(a);
    if (ov != cap->balances.end()) return ov->second;
  }
  const auto it = balances_.find(a);
  return it == balances_.end() ? 0 : it->second;
}

void Chain::transfer(const Address& from, const Address& to,
                     std::uint64_t amount) {
  if (TxExecCapture* cap = tls_capture_) {
    cap->check_balance(from);
    cap->check_balance(to);
    const std::uint64_t from_bal = balance(from);  // overlay-aware
    if (from_bal < amount) throw Revert("insufficient balance");
    cap->balances[from] = from_bal - amount;
    cap->balances[to] = balance(to) + amount;
    cap->transfers.emplace_back(from, to, amount);
    return;
  }
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    throw Revert("insufficient balance");
  }
  it->second -= amount;
  balances_[to] += amount;
  if (observer_ != nullptr) {
    delta_.balance_sets.emplace_back(from, it->second);
    delta_.balance_sets.emplace_back(to, balances_[to]);
  }
}

void Chain::record_slot_set(const Address& contract, const std::string& key,
                            const Fr& value) {
  if (observer_ != nullptr) {
    delta_.slot_sets.emplace_back(contract, key, value);
  }
}

void Chain::record_slot_erase(const Address& contract, const std::string& key) {
  if (observer_ != nullptr) {
    delta_.slot_erases.emplace_back(contract, key);
  }
}

void Chain::finish_deploy(const crypto::KeyPair& deployer,
                          std::unique_ptr<Contract> contract,
                          Receipt* receipt) {
  if (tls_capture_ != nullptr) {
    throw Revert("deploy inside a batch transaction");
  }
  const Address addr =
      "ct:" + contract->name_ + "#" + std::to_string(next_contract_id_);
  GasMeter meter(100'000'000);
  meter.charge(gas_.tx_base);
  meter.charge(gas_.create_base);
  meter.charge(gas_.create_per_byte * contract->code_size());

  // Adoption path (ledger reopen): the deploy tx is already in the
  // restored history, so re-bind the fresh contract object to its
  // persisted address + storage instead of sealing a duplicate block.
  if (const auto pending = pending_adoptions_.find(addr);
      pending != pending_adoptions_.end()) {
    if (pending->second.name != contract->name_) {
      throw Revert("ledger: deploy order diverges from persisted history (" +
                   addr + " was " + pending->second.name + ")");
    }
    ++next_contract_id_;
    contract->address_ = addr;
    contract->store_.owner_ = addr;
    contract->store_.slots_ = std::move(pending->second.slots);
    pending_adoptions_.erase(pending);
    Contract& adopted = *contract;
    contracts_.push_back(std::move(contract));
    adopted.on_adopted(*this);
    if (receipt != nullptr) {
      receipt->success = true;
      receipt->gas_used = meter.used();
      receipt->block = height();
    }
    return;
  }
  if (!pending_adoptions_.empty()) {
    throw Revert("ledger: deploy order diverges from persisted history (" +
                 addr + " not in the restored contract set)");
  }

  ++next_contract_id_;
  contract->address_ = addr;
  contract->store_.owner_ = addr;
  TxRecord tx;
  tx.sender = crypto::address_of(deployer.pk);
  tx.description = "deploy " + contract->name_;
  tx.gas_used = meter.used();
  balances_[contract->address_];  // ensure the escrow account exists
  if (observer_ != nullptr) {
    delta_.contracts_created.push_back(
        {contract->address_, contract->name_, contract->code_size()});
    delta_.balance_sets.emplace_back(contract->address_,
                                     balances_[contract->address_]);
  }
  contracts_.push_back(std::move(contract));
  if (receipt != nullptr) {
    receipt->success = true;
    receipt->gas_used = tx.gas_used;
    receipt->block = height();
  }
  seal_block(std::move(tx));
}

Receipt Chain::call(const crypto::KeyPair& sender,
                    const std::string& description,
                    const std::function<void(CallContext&)>& fn,
                    std::uint64_t value, const Address& pay_to,
                    std::uint64_t gas_limit) {
  Receipt receipt;
  const Address from = crypto::address_of(sender.pk);

  // Fail-point: the transaction is dropped before it reaches the
  // sequencer — no block is sealed and no state (funds included) moves.
  // Callers observe a failed receipt and must retry (ExchangeDriver) or
  // surface the error.
  if (fault::fire(fault::points::kChainSubmit)) {
    receipt.error = "injected: tx dropped before submission";
    return receipt;
  }

  // Authenticate: a signature over (description, nonce) stands in for a
  // full RLP transaction; the chain rejects unknown or forged senders,
  // and the signed nonce makes an identical resubmission a rejected
  // replay rather than a fresh execution.
  const std::uint64_t nonce = account_nonce(from);
  crypto::Drbg rng("tx-auth:" + from, nonce * 1000003 + description.size());
  const auto msg = tx_auth_message(description, nonce);
  const auto sig = crypto::schnorr_sign(sender, msg, rng);
  const auto keyit = account_keys_.find(from);
  if (keyit == account_keys_.end() ||
      !crypto::schnorr_verify(keyit->second, msg, sig)) {
    receipt.error = "unknown sender or bad signature";
    return receipt;
  }

  GasMeter meter(gas_limit);
  TxRecord tx;
  tx.sender = from;
  tx.description = description;
  tx.nonce = nonce;
  tx.sig = sig;
  tx.has_sig = true;
  try {
    meter.charge(gas_.tx_base);
    if (value > 0) {
      if (pay_to.empty()) throw Revert("value transfer without target");
      transfer(from, pay_to, value);
    }
    CallContext ctx(*this, from, value, meter);
    fn(ctx);
    receipt.success = true;
    tx.events = ctx.events();  // receipt events are part of the block
    receipt.events = std::move(ctx.events());
  } catch (const Revert& r) {
    receipt.error = r.what();
    tx.success = false;
  } catch (const OutOfGas&) {
    receipt.error = "out of gas";
    tx.success = false;
  }
  if (!tx.success && value > 0) {
    // Undo the escrow payment (best effort: a contract that spent the
    // escrow before reverting is a contract bug surfaced in the error).
    try {
      transfer(pay_to, from, value);
    } catch (const Revert&) {
      receipt.error += " (escrow refund failed)";
    }
  }
  receipt.gas_used = meter.used();
  receipt.block = height();
  tx.gas_used = meter.used();
  {
    // Consumed by inclusion, success or revert.
    const MutexLock lk(nonce_mu_);
    nonces_[from] = nonce + 1;
  }
  seal_block(std::move(tx));
  return receipt;
}

std::uint64_t Chain::account_nonce(const Address& a) const {
  const MutexLock lk(nonce_mu_);
  const auto it = nonces_.find(a);
  return it == nonces_.end() ? 0 : it->second;
}

std::vector<std::uint8_t> Chain::tx_auth_message(const std::string& description,
                                                 std::uint64_t nonce) {
  std::vector<std::uint8_t> msg(description.begin(), description.end());
  for (int i = 0; i < 8; ++i) {
    msg.push_back(static_cast<std::uint8_t>(nonce >> (8 * i)));
  }
  return msg;
}

void Chain::advance_blocks(std::uint64_t k) {
  for (std::uint64_t i = 0; i < k; ++i) {
    TxRecord empty;
    empty.description = "(empty)";
    seal_block(std::move(empty));
  }
}

Contract* Chain::find_contract(const Address& addr) {
  for (const auto& c : contracts_) {
    if (c->address() == addr) return c.get();
  }
  return nullptr;
}

bool Chain::apply_capture(const TxExecCapture& cap) {
  // Pass 1: recheck every buffered transfer against committed state (an
  // earlier batch-mate may have drained an account this tx also touched
  // — only reachable without declared access sets).
  std::map<Address, std::uint64_t> eff;
  const auto committed = [&](const Address& a) {
    const auto it = eff.find(a);
    if (it != eff.end()) return it->second;
    const auto b = balances_.find(a);
    return b == balances_.end() ? std::uint64_t{0} : b->second;
  };
  for (const auto& [from, to, amount] : cap.transfers) {
    const std::uint64_t from_bal = committed(from);
    if (from_bal < amount) return false;
    eff[from] = from_bal - amount;
    eff[to] = committed(to) + amount;
  }
  // Pass 2: apply. Balance deltas record absolute post-values in
  // address order (map iteration) — canonical regardless of op order.
  for (const auto& [addr, bal] : eff) {
    balances_[addr] = bal;
    if (observer_ != nullptr) delta_.balance_sets.emplace_back(addr, bal);
  }
  for (const auto& [addr, key, value] : cap.delta.slot_sets) {
    Contract* c = find_contract(addr);
    if (c == nullptr) throw Revert("captured write to unknown contract " + addr);
    c->store_.slots_[key] = value;
    record_slot_set(addr, key, value);
  }
  for (const auto& [addr, key] : cap.delta.slot_erases) {
    Contract* c = find_contract(addr);
    if (c == nullptr) throw Revert("captured erase on unknown contract " + addr);
    c->store_.slots_.erase(key);
    record_slot_erase(addr, key);
  }
  return true;
}

std::vector<Receipt> Chain::execute_batch(const std::vector<BatchTx>& txs,
                                          bool parallel) {
  std::vector<Receipt> receipts(txs.size());
  if (txs.empty()) return receipts;
  if (tls_capture_ != nullptr) throw Revert("nested batch execution");

  // Stage 1 — signature verification, the dominant per-tx CPU cost
  // outside the closures. Pure reads of account_keys_: safe to fan out.
  std::vector<std::uint8_t> sig_ok(txs.size(), 0);
  const auto verify_one = [&](std::size_t i) {
    const BatchTx& t = txs[i];
    const auto keyit = account_keys_.find(t.sender);
    if (keyit == account_keys_.end()) return;
    sig_ok[i] = crypto::schnorr_verify(
                    keyit->second, tx_auth_message(t.description, t.nonce),
                    t.sig)
                    ? 1
                    : 0;
  };
  if (parallel) {
    runtime::ThreadPool::instance().parallel_for(
        txs.size(), 1, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) verify_one(i);
        });
  } else {
    for (std::size_t i = 0; i < txs.size(); ++i) verify_one(i);
  }

  // Stage 2 — nonce admission, serial in canonical order. Excluded txs
  // never reach the block and consume no nonce.
  std::vector<std::uint8_t> included(txs.size(), 0);
  std::map<Address, std::uint64_t> expected;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (!sig_ok[i]) {
      receipts[i].error = "unknown sender or bad signature";
      continue;
    }
    const BatchTx& t = txs[i];
    const auto [it, fresh] =
        expected.try_emplace(t.sender, account_nonce(t.sender));
    (void)fresh;
    if (t.nonce != it->second) {
      receipts[i].error = "bad nonce (replay rejected)";
      continue;
    }
    ++it->second;
    included[i] = 1;
  }

  // Stage 2½ — batched proof-claim verification. Every included tx's
  // ProofClaim is folded, in canonical order, into one attributed
  // pairing check (per SRS group; plonk bisects on fold failure), so N
  // settle txs in a batch pay one shared pairing product instead of N.
  // Runs before stage 3 and identically in serial and parallel mode —
  // the verdicts (and hence gas and receipts) are a pure function of
  // the admitted tx vector, preserving serial/parallel byte-identity.
  std::vector<ClaimVerdict> verdicts(txs.size());
  {
    std::vector<std::size_t> claim_idx;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (included[i] && txs[i].claim) claim_idx.push_back(i);
    }
    if (!claim_idx.empty()) {
      std::vector<plonk::BatchEntry> entries;
      entries.reserve(claim_idx.size());
      for (const std::size_t i : claim_idx) {
        const ProofClaim& c = *txs[i].claim;
        entries.push_back({c.vk, &c.public_inputs, &c.proof});
      }
      const plonk::BatchResult folded =
          plonk::batch_verify_attributed(entries);
      for (std::size_t k = 0; k < claim_idx.size(); ++k) {
        ClaimVerdict& v = verdicts[claim_idx[k]];
        v.claim = txs[claim_idx[k]].claim.get();
        v.valid = folded.ok[k] != 0;
        v.batch_claims = claim_idx.size();
      }
      runtime::counters::settle_batches.fetch_add(1,
                                                  std::memory_order_relaxed);
      runtime::counters::settle_claims.fetch_add(claim_idx.size(),
                                                 std::memory_order_relaxed);
      // Gauge: remember the largest fold (relaxed racy max is fine).
      std::uint64_t cur = runtime::counters::settle_max_fold.load(
          std::memory_order_relaxed);
      while (cur < claim_idx.size() &&
             !runtime::counters::settle_max_fold.compare_exchange_weak(
                 cur, claim_idx.size(), std::memory_order_relaxed)) {
      }
    }
  }

  // Stage 3 — captured execution. Each tx buffers every effect in its
  // own TxExecCapture; chain state is not mutated here, so the
  // scheduler's conflict-free batches run concurrently. Failed txs are
  // rolled back whole (capture discarded) — stricter than the legacy
  // single-tx path, where pre-revert slot writes persist.
  std::vector<TxExecCapture> caps(txs.size());
  std::vector<TxRecord> recs(txs.size());
  struct CaptureScope {  // exception-safe thread-local (un)install
    explicit CaptureScope(TxExecCapture* cap) { tls_capture_ = cap; }
    ~CaptureScope() { tls_capture_ = nullptr; }
  };
  const auto run_one = [&](std::size_t i) {
    if (!included[i]) return;
    const BatchTx& t = txs[i];
    TxExecCapture& cap = caps[i];
    cap.policy = t.policy;
    const CaptureScope scope(&cap);
    GasMeter meter(t.gas_limit);
    TxRecord& rec = recs[i];
    rec.sender = t.sender;
    rec.description = t.description;
    rec.nonce = t.nonce;
    rec.sig = t.sig;
    rec.has_sig = true;
    Receipt& rc = receipts[i];
    try {
      meter.charge(gas_.tx_base);
      if (t.value > 0) {
        if (t.pay_to.empty()) throw Revert("value transfer without target");
        transfer(t.sender, t.pay_to, t.value);
      }
      CallContext ctx(*this, t.sender, t.value, meter);
      if (verdicts[i].claim != nullptr) ctx.set_claim_verdict(&verdicts[i]);
      if (t.fn) t.fn(ctx);
      rc.success = true;
      rec.events = ctx.events();
      rc.events = std::move(ctx.events());
    } catch (const Revert& r) {
      rc.error = r.what();
      rec.success = false;
      cap.discard();
    } catch (const OutOfGas&) {
      rc.error = "out of gas";
      rec.success = false;
      cap.discard();
    }
    rc.gas_used = meter.used();
    rec.gas_used = meter.used();
  };
  if (parallel) {
    runtime::ThreadPool::instance().parallel_for(
        txs.size(), 1, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) run_one(i);
        });
  } else {
    for (std::size_t i = 0; i < txs.size(); ++i) run_one(i);
  }

  // Simulated process kill at the seal boundary: nothing from this
  // batch has reached chain state or the WAL, so a reopen lands on the
  // pre-batch tip.
  if (fault::fire(fault::points::kTxpoolSealCrash)) {
    throw ledger::CrashInjected(fault::points::kTxpoolSealCrash);
  }

  // Stage 4 — serial commit in canonical order: merge per-tx captures
  // into chain state + the block delta, consume nonces, seal one block.
  // Fail-points are consulted here (not in stage 3) so their hit
  // ordering is canonical-order-deterministic under any worker count.
  const std::uint64_t new_height = blocks_.size();
  // A commit-time abort (injected or overdraw) happens AFTER the
  // closure ran to completion: the store capture discards cleanly, but
  // any off-store C++ mirror the contract maintains (arbiter exchange
  // map, NFT owner view, auction book) already reflects a tx that
  // never committed. Rebuild the touched contracts' mirrors from
  // committed state via the adoption hook (reset + replay of sealed
  // blocks and slots). Sound here because mirror-bearing contracts
  // declare whole-contract writes, so no earlier tx of this batch — not
  // yet sealed, hence invisible to the replay — touched the same
  // contract. This stage is serial, so the rebuild cannot race stage 3.
  const auto abort_at_commit = [&](TxExecCapture& cap) {
    std::vector<Address> touched;
    for (const auto& [slot, value] : cap.slots) {
      (void)value;
      // cap.slots is ordered by (address, key): addresses arrive grouped.
      if (touched.empty() || touched.back() != slot.first) {
        touched.push_back(slot.first);
      }
    }
    cap.discard();
    for (const Address& addr : touched) {
      if (Contract* c = find_contract(addr)) c->on_adopted(*this);
    }
  };
  std::vector<TxRecord> final_txs;
  std::vector<std::size_t> final_idx;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (!included[i]) continue;
    Receipt& rc = receipts[i];
    if (rc.success && fault::fire(fault::points::kTxpoolExecConflictAbort)) {
      // Injected optimistic-concurrency abort: the tx is included as
      // failed (nonce consumed) with its effects discarded.
      abort_at_commit(caps[i]);
      recs[i].events.clear();
      rc.success = false;
      rc.events.clear();
      rc.error = "injected: conflict abort";
      recs[i].success = false;
      runtime::counters::txpool_conflict_aborts.fetch_add(
          1, std::memory_order_relaxed);
    }
    if (rc.success && !apply_capture(caps[i])) {
      abort_at_commit(caps[i]);
      recs[i].events.clear();
      rc.success = false;
      rc.events.clear();
      rc.error = "conflict: balance overdrawn at commit";
      recs[i].success = false;
      runtime::counters::txpool_conflict_aborts.fetch_add(
          1, std::memory_order_relaxed);
    }
    {
      const MutexLock lk(nonce_mu_);
      nonces_[txs[i].sender] = txs[i].nonce + 1;
    }
    rc.block = new_height;
    recs[i].block = new_height;
    final_idx.push_back(i);
  }
  if (final_idx.empty()) return receipts;  // nothing admitted: no block
  final_txs.reserve(final_idx.size());
  for (const std::size_t i : final_idx) final_txs.push_back(std::move(recs[i]));
  seal_batch(std::move(final_txs));
  return receipts;
}

void Chain::seal_block(TxRecord tx) {
  std::vector<TxRecord> txs;
  txs.push_back(std::move(tx));
  seal_batch(std::move(txs));
}

void Chain::seal_batch(std::vector<TxRecord> txs) {
  Block b;
  b.height = blocks_.size();
  timestamp_ += 13;  // ~Ethereum block time
  b.timestamp = timestamp_;
  b.prev_hash = blocks_.back().hash;
  for (auto& tx : txs) {
    tx.block = b.height;
    b.txs.push_back(std::move(tx));
  }
  b.hash = block_hash(b);
  blocks_.push_back(std::move(b));
  if (observer_ != nullptr) {
    // Durability before visibility: the callback (WAL append) returns —
    // or throws, killing the call — before the receipt reaches the
    // caller. delta_ survives a throw so nothing is silently dropped.
    observer_->on_block_sealed(blocks_.back(), delta_);
    delta_.clear();
  }
}

std::array<std::uint8_t, 32> Chain::block_hash(const Block& b) {
  crypto::Sha256 h;
  h.update("zkdet-block");
  std::array<std::uint8_t, 16> hdr{};
  for (int i = 0; i < 8; ++i) {
    hdr[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(b.height >> (i * 8));
    hdr[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(b.timestamp >> (i * 8));
  }
  h.update(hdr);
  h.update(b.prev_hash);
  for (const auto& tx : b.txs) {
    // The canonical encoding covers every receipt-affecting field (gas,
    // success, events, signature) — mutating any of them breaks the
    // hash link that validate_chain() walks.
    h.update(ledger::encode_tx_record(tx));
  }
  return h.finalize();
}

void Chain::restore_state(std::vector<Block> blocks,
                          std::map<Address, std::uint64_t> balances,
                          std::map<Address, crypto::G1> account_keys,
                          std::map<Address, RestoredContract> contracts) {
  if (blocks_.size() != 1 || !balances_.empty() || !contracts_.empty() ||
      !account_keys_.empty()) {
    throw Revert("restore_state requires a chain at genesis");
  }
  if (blocks.empty()) {
    throw Revert("restore_state needs at least the genesis block");
  }
  blocks_ = std::move(blocks);
  balances_ = std::move(balances);
  account_keys_ = std::move(account_keys);
  pending_adoptions_ = std::move(contracts);
  timestamp_ = blocks_.back().timestamp;
  // Per-sender nonces are derivable from the restored history: the next
  // expected nonce is one past the highest included signed tx.
  {
    const MutexLock lk(nonce_mu_);
    for (const auto& b : blocks_) {
      for (const auto& tx : b.txs) {
        if (!tx.has_sig) continue;
        auto& n = nonces_[tx.sender];
        if (tx.nonce + 1 > n) n = tx.nonce + 1;
      }
    }
  }
  // The application re-deploys its contracts in the original order, so
  // id assignment restarts from 1: each adoption consumes the id its
  // contract had before the restart, and a genuinely new deploy (only
  // legal once every pending adoption is consumed) continues the
  // sequence exactly where the persisted history left off.
  next_contract_id_ = 1;
}

bool Chain::validate_chain() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (block_hash(blocks_[i]) != blocks_[i].hash) return false;
    if (i > 0 && blocks_[i].prev_hash != blocks_[i - 1].hash) return false;
  }
  return true;
}

}  // namespace zkdet::chain
