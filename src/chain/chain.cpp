#include "chain/chain.hpp"

#include "crypto/sha256.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"

namespace zkdet::chain {

// --- CallContext ---

CallContext::CallContext(Chain& chain, Address sender, std::uint64_t value,
                         GasMeter& gas)
    : chain_(chain), sender_(std::move(sender)), value_(value), gas_(gas) {}

std::uint64_t CallContext::block_height() const { return chain_.height(); }
std::uint64_t CallContext::timestamp() const { return chain_.timestamp(); }

void CallContext::emit(Event ev) {
  const auto& g = chain_.gas_schedule();
  std::size_t data_bytes = 0;
  for (const auto& [k, v] : ev.fields) data_bytes += k.size() + v.size();
  gas_.charge(g.log_base + g.log_topic + g.log_data_byte * data_bytes);
  events_.push_back(std::move(ev));
}

// --- MeteredStore ---

void MeteredStore::set(CallContext& ctx, const std::string& key,
                       const Fr& value) {
  const auto& g = ctx.chain().gas_schedule();
  const auto it = slots_.find(key);
  if (it == slots_.end()) {
    ctx.gas().charge(g.sstore_set);
    slots_.emplace(key, value);
  } else {
    ctx.gas().charge(g.sstore_update);
    it->second = value;
  }
  ctx.chain().record_slot_set(owner_, key, value);
}

void MeteredStore::set_u64(CallContext& ctx, const std::string& key,
                           std::uint64_t value) {
  set(ctx, key, Fr::from_u64(value));
}

std::optional<Fr> MeteredStore::get(CallContext& ctx,
                                    const std::string& key) const {
  ctx.gas().charge(ctx.chain().gas_schedule().sload);
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> MeteredStore::get_u64(
    CallContext& ctx, const std::string& key) const {
  const auto v = get(ctx, key);
  if (!v) return std::nullopt;
  return v->to_canonical().limb[0];
}

void MeteredStore::erase(CallContext& ctx, const std::string& key) {
  ctx.gas().charge(ctx.chain().gas_schedule().sstore_update);
  slots_.erase(key);
  ctx.chain().record_slot_erase(owner_, key);
}

std::optional<Fr> MeteredStore::peek(const std::string& key) const {
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

// --- Chain ---

Chain::Chain() {
  Block genesis;
  genesis.height = 0;
  genesis.timestamp = timestamp_;
  genesis.hash = block_hash(genesis);
  blocks_.push_back(genesis);
}

Address Chain::create_account(const crypto::KeyPair& keys,
                              std::uint64_t initial_balance) {
  const Address addr = crypto::address_of(keys.pk);
  // Re-registering an already-known account is a no-op: recovery replays
  // application startup against restored state (ledger reopen), and the
  // restored balance must not be credited a second time.
  if (const auto it = account_keys_.find(addr); it != account_keys_.end()) {
    if (!(it->second == keys.pk)) throw Revert("address collision");
    return addr;
  }
  balances_[addr] += initial_balance;
  account_keys_[addr] = keys.pk;
  if (observer_ != nullptr) {
    observer_->on_account_created(addr, keys.pk, balances_[addr]);
  }
  return addr;
}

std::uint64_t Chain::balance(const Address& a) const {
  const auto it = balances_.find(a);
  return it == balances_.end() ? 0 : it->second;
}

void Chain::transfer(const Address& from, const Address& to,
                     std::uint64_t amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    throw Revert("insufficient balance");
  }
  it->second -= amount;
  balances_[to] += amount;
  if (observer_ != nullptr) {
    delta_.balance_sets.emplace_back(from, it->second);
    delta_.balance_sets.emplace_back(to, balances_[to]);
  }
}

void Chain::record_slot_set(const Address& contract, const std::string& key,
                            const Fr& value) {
  if (observer_ != nullptr) {
    delta_.slot_sets.emplace_back(contract, key, value);
  }
}

void Chain::record_slot_erase(const Address& contract, const std::string& key) {
  if (observer_ != nullptr) {
    delta_.slot_erases.emplace_back(contract, key);
  }
}

void Chain::finish_deploy(const crypto::KeyPair& deployer,
                          std::unique_ptr<Contract> contract,
                          Receipt* receipt) {
  const Address addr =
      "ct:" + contract->name_ + "#" + std::to_string(next_contract_id_);
  GasMeter meter(100'000'000);
  meter.charge(gas_.tx_base);
  meter.charge(gas_.create_base);
  meter.charge(gas_.create_per_byte * contract->code_size());

  // Adoption path (ledger reopen): the deploy tx is already in the
  // restored history, so re-bind the fresh contract object to its
  // persisted address + storage instead of sealing a duplicate block.
  if (const auto pending = pending_adoptions_.find(addr);
      pending != pending_adoptions_.end()) {
    if (pending->second.name != contract->name_) {
      throw Revert("ledger: deploy order diverges from persisted history (" +
                   addr + " was " + pending->second.name + ")");
    }
    ++next_contract_id_;
    contract->address_ = addr;
    contract->store_.owner_ = addr;
    contract->store_.slots_ = std::move(pending->second.slots);
    pending_adoptions_.erase(pending);
    Contract& adopted = *contract;
    contracts_.push_back(std::move(contract));
    adopted.on_adopted(*this);
    if (receipt != nullptr) {
      receipt->success = true;
      receipt->gas_used = meter.used();
      receipt->block = height();
    }
    return;
  }
  if (!pending_adoptions_.empty()) {
    throw Revert("ledger: deploy order diverges from persisted history (" +
                 addr + " not in the restored contract set)");
  }

  ++next_contract_id_;
  contract->address_ = addr;
  contract->store_.owner_ = addr;
  TxRecord tx;
  tx.sender = crypto::address_of(deployer.pk);
  tx.description = "deploy " + contract->name_;
  tx.gas_used = meter.used();
  balances_[contract->address_];  // ensure the escrow account exists
  if (observer_ != nullptr) {
    delta_.contracts_created.push_back(
        {contract->address_, contract->name_, contract->code_size()});
    delta_.balance_sets.emplace_back(contract->address_,
                                     balances_[contract->address_]);
  }
  contracts_.push_back(std::move(contract));
  if (receipt != nullptr) {
    receipt->success = true;
    receipt->gas_used = tx.gas_used;
    receipt->block = height();
  }
  seal_block(std::move(tx));
}

Receipt Chain::call(const crypto::KeyPair& sender,
                    const std::string& description,
                    const std::function<void(CallContext&)>& fn,
                    std::uint64_t value, const Address& pay_to,
                    std::uint64_t gas_limit) {
  Receipt receipt;
  const Address from = crypto::address_of(sender.pk);

  // Fail-point: the transaction is dropped before it reaches the
  // sequencer — no block is sealed and no state (funds included) moves.
  // Callers observe a failed receipt and must retry (ExchangeDriver) or
  // surface the error.
  if (fault::fire(fault::points::kChainSubmit)) {
    receipt.error = "injected: tx dropped before submission";
    return receipt;
  }

  // Authenticate: a signature over (height, description) stands in for a
  // full RLP transaction; the chain rejects unknown or forged senders.
  crypto::Drbg rng("tx-nonce", height() * 1000003 + description.size());
  std::vector<std::uint8_t> msg(description.begin(), description.end());
  msg.push_back(static_cast<std::uint8_t>(height() & 0xFF));
  const auto sig = crypto::schnorr_sign(sender, msg, rng);
  const auto keyit = account_keys_.find(from);
  if (keyit == account_keys_.end() ||
      !crypto::schnorr_verify(keyit->second, msg, sig)) {
    receipt.error = "unknown sender or bad signature";
    return receipt;
  }

  GasMeter meter(gas_limit);
  TxRecord tx;
  tx.sender = from;
  tx.description = description;
  tx.sig = sig;
  tx.has_sig = true;
  try {
    meter.charge(gas_.tx_base);
    if (value > 0) {
      if (pay_to.empty()) throw Revert("value transfer without target");
      transfer(from, pay_to, value);
    }
    CallContext ctx(*this, from, value, meter);
    fn(ctx);
    receipt.success = true;
    tx.events = ctx.events();  // receipt events are part of the block
    receipt.events = std::move(ctx.events());
  } catch (const Revert& r) {
    receipt.error = r.what();
    tx.success = false;
  } catch (const OutOfGas&) {
    receipt.error = "out of gas";
    tx.success = false;
  }
  if (!tx.success && value > 0) {
    // Undo the escrow payment (best effort: a contract that spent the
    // escrow before reverting is a contract bug surfaced in the error).
    try {
      transfer(pay_to, from, value);
    } catch (const Revert&) {
      receipt.error += " (escrow refund failed)";
    }
  }
  receipt.gas_used = meter.used();
  receipt.block = height();
  tx.gas_used = meter.used();
  seal_block(std::move(tx));
  return receipt;
}

void Chain::advance_blocks(std::uint64_t k) {
  for (std::uint64_t i = 0; i < k; ++i) {
    TxRecord empty;
    empty.description = "(empty)";
    seal_block(std::move(empty));
  }
}

void Chain::seal_block(TxRecord tx) {
  Block b;
  b.height = blocks_.size();
  timestamp_ += 13;  // ~Ethereum block time
  b.timestamp = timestamp_;
  b.prev_hash = blocks_.back().hash;
  tx.block = b.height;
  b.txs.push_back(std::move(tx));
  b.hash = block_hash(b);
  blocks_.push_back(std::move(b));
  if (observer_ != nullptr) {
    // Durability before visibility: the callback (WAL append) returns —
    // or throws, killing the call — before the receipt reaches the
    // caller. delta_ survives a throw so nothing is silently dropped.
    observer_->on_block_sealed(blocks_.back(), delta_);
    delta_.clear();
  }
}

std::array<std::uint8_t, 32> Chain::block_hash(const Block& b) {
  crypto::Sha256 h;
  h.update("zkdet-block");
  std::array<std::uint8_t, 16> hdr{};
  for (int i = 0; i < 8; ++i) {
    hdr[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(b.height >> (i * 8));
    hdr[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(b.timestamp >> (i * 8));
  }
  h.update(hdr);
  h.update(b.prev_hash);
  for (const auto& tx : b.txs) {
    // The canonical encoding covers every receipt-affecting field (gas,
    // success, events, signature) — mutating any of them breaks the
    // hash link that validate_chain() walks.
    h.update(ledger::encode_tx_record(tx));
  }
  return h.finalize();
}

void Chain::restore_state(std::vector<Block> blocks,
                          std::map<Address, std::uint64_t> balances,
                          std::map<Address, crypto::G1> account_keys,
                          std::map<Address, RestoredContract> contracts) {
  if (blocks_.size() != 1 || !balances_.empty() || !contracts_.empty() ||
      !account_keys_.empty()) {
    throw Revert("restore_state requires a chain at genesis");
  }
  if (blocks.empty()) {
    throw Revert("restore_state needs at least the genesis block");
  }
  blocks_ = std::move(blocks);
  balances_ = std::move(balances);
  account_keys_ = std::move(account_keys);
  pending_adoptions_ = std::move(contracts);
  timestamp_ = blocks_.back().timestamp;
  // The application re-deploys its contracts in the original order, so
  // id assignment restarts from 1: each adoption consumes the id its
  // contract had before the restart, and a genuinely new deploy (only
  // legal once every pending adoption is consumed) continues the
  // sequence exactly where the persisted history left off.
  next_contract_id_ = 1;
}

bool Chain::validate_chain() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (block_hash(blocks_[i]) != blocks_[i].hash) return false;
    if (i > 0 && blocks_[i].prev_hash != blocks_[i - 1].hash) return false;
  }
  return true;
}

}  // namespace zkdet::chain
