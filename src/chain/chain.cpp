#include "chain/chain.hpp"

#include "crypto/sha256.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"

namespace zkdet::chain {

// --- CallContext ---

CallContext::CallContext(Chain& chain, Address sender, std::uint64_t value,
                         GasMeter& gas)
    : chain_(chain), sender_(std::move(sender)), value_(value), gas_(gas) {}

std::uint64_t CallContext::block_height() const { return chain_.height(); }
std::uint64_t CallContext::timestamp() const { return chain_.timestamp(); }

void CallContext::emit(Event ev) {
  const auto& g = chain_.gas_schedule();
  std::size_t data_bytes = 0;
  for (const auto& [k, v] : ev.fields) data_bytes += k.size() + v.size();
  gas_.charge(g.log_base + g.log_topic + g.log_data_byte * data_bytes);
  events_.push_back(std::move(ev));
}

// --- MeteredStore ---

void MeteredStore::set(CallContext& ctx, const std::string& key,
                       const Fr& value) {
  const auto& g = ctx.chain().gas_schedule();
  const auto it = slots_.find(key);
  if (it == slots_.end()) {
    ctx.gas().charge(g.sstore_set);
    slots_.emplace(key, value);
  } else {
    ctx.gas().charge(g.sstore_update);
    it->second = value;
  }
}

void MeteredStore::set_u64(CallContext& ctx, const std::string& key,
                           std::uint64_t value) {
  set(ctx, key, Fr::from_u64(value));
}

std::optional<Fr> MeteredStore::get(CallContext& ctx,
                                    const std::string& key) const {
  ctx.gas().charge(ctx.chain().gas_schedule().sload);
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> MeteredStore::get_u64(
    CallContext& ctx, const std::string& key) const {
  const auto v = get(ctx, key);
  if (!v) return std::nullopt;
  return v->to_canonical().limb[0];
}

void MeteredStore::erase(CallContext& ctx, const std::string& key) {
  ctx.gas().charge(ctx.chain().gas_schedule().sstore_update);
  slots_.erase(key);
}

std::optional<Fr> MeteredStore::peek(const std::string& key) const {
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second;
}

// --- Chain ---

Chain::Chain() {
  Block genesis;
  genesis.height = 0;
  genesis.timestamp = timestamp_;
  genesis.hash = block_hash(genesis);
  blocks_.push_back(genesis);
}

Address Chain::create_account(const crypto::KeyPair& keys,
                              std::uint64_t initial_balance) {
  const Address addr = crypto::address_of(keys.pk);
  balances_[addr] += initial_balance;
  account_keys_[addr] = keys.pk;
  return addr;
}

std::uint64_t Chain::balance(const Address& a) const {
  const auto it = balances_.find(a);
  return it == balances_.end() ? 0 : it->second;
}

void Chain::transfer(const Address& from, const Address& to,
                     std::uint64_t amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    throw Revert("insufficient balance");
  }
  it->second -= amount;
  balances_[to] += amount;
}

void Chain::finish_deploy(const crypto::KeyPair& deployer,
                          std::unique_ptr<Contract> contract,
                          Receipt* receipt) {
  contract->address_ =
      "ct:" + contract->name_ + "#" + std::to_string(next_contract_id_++);
  GasMeter meter(100'000'000);
  meter.charge(gas_.tx_base);
  meter.charge(gas_.create_base);
  meter.charge(gas_.create_per_byte * contract->code_size());
  TxRecord tx;
  tx.sender = crypto::address_of(deployer.pk);
  tx.description = "deploy " + contract->name_;
  tx.gas_used = meter.used();
  balances_[contract->address_];  // ensure the escrow account exists
  contracts_.push_back(std::move(contract));
  if (receipt != nullptr) {
    receipt->success = true;
    receipt->gas_used = tx.gas_used;
    receipt->block = height();
  }
  seal_block(std::move(tx));
}

Receipt Chain::call(const crypto::KeyPair& sender,
                    const std::string& description,
                    const std::function<void(CallContext&)>& fn,
                    std::uint64_t value, const Address& pay_to,
                    std::uint64_t gas_limit) {
  Receipt receipt;
  const Address from = crypto::address_of(sender.pk);

  // Fail-point: the transaction is dropped before it reaches the
  // sequencer — no block is sealed and no state (funds included) moves.
  // Callers observe a failed receipt and must retry (ExchangeDriver) or
  // surface the error.
  if (fault::fire(fault::points::kChainSubmit)) {
    receipt.error = "injected: tx dropped before submission";
    return receipt;
  }

  // Authenticate: a signature over (height, description) stands in for a
  // full RLP transaction; the chain rejects unknown or forged senders.
  crypto::Drbg rng("tx-nonce", height() * 1000003 + description.size());
  std::vector<std::uint8_t> msg(description.begin(), description.end());
  msg.push_back(static_cast<std::uint8_t>(height() & 0xFF));
  const auto sig = crypto::schnorr_sign(sender, msg, rng);
  const auto keyit = account_keys_.find(from);
  if (keyit == account_keys_.end() ||
      !crypto::schnorr_verify(keyit->second, msg, sig)) {
    receipt.error = "unknown sender or bad signature";
    return receipt;
  }

  GasMeter meter(gas_limit);
  TxRecord tx;
  tx.sender = from;
  tx.description = description;
  try {
    meter.charge(gas_.tx_base);
    if (value > 0) {
      if (pay_to.empty()) throw Revert("value transfer without target");
      transfer(from, pay_to, value);
    }
    CallContext ctx(*this, from, value, meter);
    fn(ctx);
    receipt.success = true;
    receipt.events = std::move(ctx.events());
  } catch (const Revert& r) {
    receipt.error = r.what();
    tx.success = false;
  } catch (const OutOfGas&) {
    receipt.error = "out of gas";
    tx.success = false;
  }
  if (!tx.success && value > 0) {
    // Undo the escrow payment (best effort: a contract that spent the
    // escrow before reverting is a contract bug surfaced in the error).
    try {
      transfer(pay_to, from, value);
    } catch (const Revert&) {
      receipt.error += " (escrow refund failed)";
    }
  }
  receipt.gas_used = meter.used();
  receipt.block = height();
  tx.gas_used = meter.used();
  seal_block(std::move(tx));
  return receipt;
}

void Chain::advance_blocks(std::uint64_t k) {
  for (std::uint64_t i = 0; i < k; ++i) {
    TxRecord empty;
    empty.description = "(empty)";
    seal_block(std::move(empty));
  }
}

void Chain::seal_block(TxRecord tx) {
  Block b;
  b.height = blocks_.size();
  timestamp_ += 13;  // ~Ethereum block time
  b.timestamp = timestamp_;
  b.prev_hash = blocks_.back().hash;
  tx.block = b.height;
  b.txs.push_back(std::move(tx));
  b.hash = block_hash(b);
  blocks_.push_back(std::move(b));
}

std::array<std::uint8_t, 32> Chain::block_hash(const Block& b) {
  crypto::Sha256 h;
  h.update("zkdet-block");
  std::array<std::uint8_t, 16> hdr{};
  for (int i = 0; i < 8; ++i) {
    hdr[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(b.height >> (i * 8));
    hdr[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(b.timestamp >> (i * 8));
  }
  h.update(hdr);
  h.update(b.prev_hash);
  for (const auto& tx : b.txs) {
    h.update(tx.sender);
    h.update(tx.description);
  }
  return h.finalize();
}

bool Chain::validate_chain() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (block_hash(blocks_[i]) != blocks_[i].hash) return false;
    if (i > 0 && blocks_[i].prev_hash != blocks_[i - 1].hash) return false;
  }
  return true;
}

}  // namespace zkdet::chain
