// In-process blockchain substrate — the Rinkeby substitute.
//
// A deterministic single-sequencer chain: every metered call becomes a
// signed transaction in a SHA-256-linked block. Contracts are C++
// objects that read/write a gas-metered key-value store and emit gas-
// metered events; account balances move through the same runtime. This
// preserves what the paper relies on from Ethereum — tamper-evident
// ordered history, gas accounting, contract-held escrow, public
// verifiability of records — without a networked consensus stack
// (substitution documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/gas.hpp"
#include "check/mutex.hpp"
#include "crypto/schnorr.hpp"
#include "ff/bn254.hpp"

namespace zkdet::chain {

using Address = std::string;
using ff::Fr;

class Revert : public std::runtime_error {
 public:
  explicit Revert(const std::string& reason)
      : std::runtime_error("revert: " + reason) {}
};

struct Event {
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;
};

struct TxRecord {
  std::uint64_t block = 0;
  Address sender;
  std::string description;
  // Per-sender sequence number, consumed on inclusion (success or
  // revert). Signed into the auth message, so resubmitting an already
  // included tx is rejected as a replay instead of re-executing.
  std::uint64_t nonce = 0;
  std::uint64_t gas_used = 0;
  bool success = true;
  // Events emitted by a successful call (part of the receipt trie in
  // Ethereum terms); hashed into the block via the canonical codec so a
  // mutated outcome breaks validate_chain().
  std::vector<Event> events;
  // Sender authentication, kept so a replaying node (ledger reopen) can
  // re-verify the history it was handed. Deploy and empty-block records
  // are sequencer-internal and carry no signature.
  crypto::Signature sig{};
  bool has_sig = false;
};

// Everything a transaction (or the runtime around it) changed in chain
// state, with balances recorded as absolute post-values so replaying a
// delta is idempotent. Captured by Chain while an observer is attached
// and journaled next to each sealed block by src/ledger — replay applies
// deltas instead of re-running C++ call closures.
struct StateDelta {
  struct NewContract {
    Address address;
    std::string name;
    std::uint64_t code_size = 0;
  };
  std::vector<std::pair<Address, std::uint64_t>> balance_sets;  // absolute
  std::vector<NewContract> contracts_created;
  std::vector<std::tuple<Address, std::string, Fr>> slot_sets;
  std::vector<std::pair<Address, std::string>> slot_erases;

  [[nodiscard]] bool empty() const {
    return balance_sets.empty() && contracts_created.empty() &&
           slot_sets.empty() && slot_erases.empty();
  }
  void clear() {
    balance_sets.clear();
    contracts_created.clear();
    slot_sets.clear();
    slot_erases.clear();
  }
};

// Persisted image of one contract's on-chain state (name + code size
// identify the deploy, slots are the MeteredStore contents). Produced by
// ledger replay and consumed by Chain's deploy-adoption path.
struct RestoredContract {
  std::string name;
  std::uint64_t code_size = 0;
  std::map<std::string, Fr> slots;
};

struct Block;

// Durability hook: src/ledger attaches one of these to journal every
// state mutation. Callbacks run synchronously inside the mutating call —
// on_block_sealed fires before Chain::call returns its receipt, so a
// crash after the callback returned implies the block is durable.
class ChainObserver {
 public:
  virtual ~ChainObserver() = default;
  // create_account happens outside any block; journaled immediately.
  virtual void on_account_created(const Address& addr, const crypto::G1& pk,
                                  std::uint64_t balance) = 0;
  virtual void on_block_sealed(const Block& block, const StateDelta& delta) = 0;
};

struct Block {
  std::uint64_t height = 0;
  std::uint64_t timestamp = 0;
  std::array<std::uint8_t, 32> prev_hash{};
  std::array<std::uint8_t, 32> hash{};
  std::vector<TxRecord> txs;
};

struct Receipt {
  bool success = false;
  std::uint64_t gas_used = 0;
  std::uint64_t block = 0;
  std::string error;
  std::vector<Event> events;
};

class Chain;
class CallContext;
struct ProofClaim;    // chain/claim.hpp
struct ClaimVerdict;  // chain/claim.hpp

// Declared-access authorization for batched execution (implemented by
// src/txpool over a tx intent's declared read/write sets). While a
// batch tx runs under a policy, every contract-slot access and balance
// move is checked; an undeclared access reverts the tx — in serial and
// parallel execution alike, which is what keeps the two byte-identical
// (an undeclared read could otherwise observe an earlier batch-mate's
// write in one mode but not the other).
class TxAccessPolicy {
 public:
  virtual ~TxAccessPolicy() = default;
  [[nodiscard]] virtual bool allow_slot_read(const Address& contract,
                                             const std::string& key) const = 0;
  [[nodiscard]] virtual bool allow_slot_write(const Address& contract,
                                              const std::string& key) const = 0;
  [[nodiscard]] virtual bool allow_balance(const Address& account) const = 0;
};

// One pre-signed transaction of a batch (produced by the txpool
// scheduler). The vector order handed to Chain::execute_batch IS the
// canonical in-block order.
struct BatchTx {
  Address sender;
  std::string description;
  std::uint64_t nonce = 0;
  crypto::Signature sig{};
  std::function<void(CallContext&)> fn;
  std::uint64_t value = 0;
  Address pay_to;
  std::uint64_t gas_limit = 30'000'000;
  const TxAccessPolicy* policy = nullptr;  // nullptr = unrestricted
  // Optional pre-execution proof claim (chain/claim.hpp): folded with
  // the batch's other claims into one attributed pairing check before
  // stage 3, with the verdict served to the closure's verifier call.
  std::shared_ptr<const ProofClaim> claim;
};

// Per-transaction execution capture: while one is installed (thread-
// local), slot writes and balance moves buffer here instead of mutating
// chain state, so non-conflicting batch txs can execute concurrently.
// Effects are applied serially, in canonical order, at batch commit; a
// reverted tx's capture is discarded whole (full rollback).
struct TxExecCapture {
  const TxAccessPolicy* policy = nullptr;
  // Slot overlay (reads see the tx's own writes; nullopt = erased) plus
  // the ordered journal replayed into the block delta at commit.
  std::map<std::pair<Address, std::string>, std::optional<Fr>> slots;
  StateDelta delta;
  // Balance overlay (absolute effective values) + ordered transfer ops.
  std::map<Address, std::uint64_t> balances;
  std::vector<std::tuple<Address, Address, std::uint64_t>> transfers;

  void check_read(const Address& contract, const std::string& key) const;
  void check_write(const Address& contract, const std::string& key) const;
  void check_balance(const Address& account) const;
  void discard();
};

// Execution context handed to contract methods.
class CallContext {
 public:
  CallContext(Chain& chain, Address sender, std::uint64_t value,
              GasMeter& gas);

  [[nodiscard]] Chain& chain() { return chain_; }
  [[nodiscard]] const Address& sender() const { return sender_; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] GasMeter& gas() { return gas_; }
  [[nodiscard]] std::uint64_t block_height() const;
  [[nodiscard]] std::uint64_t timestamp() const;

  void require(bool cond, const std::string& reason) {
    if (!cond) throw Revert(reason);
  }
  void emit(Event ev);

  [[nodiscard]] std::vector<Event>& events() { return events_; }

  // Batched-settlement verdict for this tx's proof claim (nullptr when
  // the tx carried none, or outside batch execution). Installed by
  // Chain::execute_batch; consumed by PlonkVerifierContract::verify.
  [[nodiscard]] const ClaimVerdict* claim_verdict() const {
    return claim_verdict_;
  }
  void set_claim_verdict(const ClaimVerdict* v) { claim_verdict_ = v; }

  // EVM msg.sender semantics for contract-to-contract calls: while a
  // SenderScope is alive, ctx.sender() reports the calling contract's
  // address instead of the originating account.
  class SenderScope {
   public:
    SenderScope(CallContext& ctx, Address contract_address)
        : ctx_(ctx), saved_(std::move(ctx.sender_)) {
      ctx_.sender_ = std::move(contract_address);
    }
    ~SenderScope() { ctx_.sender_ = std::move(saved_); }
    SenderScope(const SenderScope&) = delete;
    SenderScope& operator=(const SenderScope&) = delete;

   private:
    CallContext& ctx_;
    Address saved_;
  };

 private:
  Chain& chain_;
  Address sender_;
  std::uint64_t value_;
  GasMeter& gas_;
  std::vector<Event> events_;
  const ClaimVerdict* claim_verdict_ = nullptr;
};

// Gas-metered contract storage: a flat key -> field-element map with
// EVM new-slot / update pricing.
class MeteredStore {
 public:
  void set(CallContext& ctx, const std::string& key, const Fr& value);
  void set_u64(CallContext& ctx, const std::string& key, std::uint64_t value);
  [[nodiscard]] std::optional<Fr> get(CallContext& ctx,
                                      const std::string& key) const;
  [[nodiscard]] std::optional<std::uint64_t> get_u64(
      CallContext& ctx, const std::string& key) const;
  void erase(CallContext& ctx, const std::string& key);
  // Unmetered read for off-chain inspection (a full node's RPC view).
  [[nodiscard]] std::optional<Fr> peek(const std::string& key) const;
  // Full-state view for off-chain audits (e.g. asserting a secret never
  // appears in any contract slot — the chaos harness does exactly this).
  [[nodiscard]] const std::map<std::string, Fr>& peek_all() const {
    return slots_;
  }

 private:
  friend class Chain;  // sets owner_, restores slots_ on ledger adoption
  std::map<std::string, Fr> slots_;
  // The owning contract's address, for delta journaling (set at deploy).
  Address owner_;
};

// Base class for contracts.
class Contract {
 public:
  Contract(std::string name, std::size_t code_size)
      : name_(std::move(name)), code_size_(code_size) {}
  virtual ~Contract() = default;
  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t code_size() const { return code_size_; }
  [[nodiscard]] const Address& address() const { return address_; }
  // Read-only storage view for off-chain audits.
  [[nodiscard]] const MeteredStore& audit_store() const { return store_; }

 protected:
  [[nodiscard]] MeteredStore& store() { return store_; }
  [[nodiscard]] const MeteredStore& store() const { return store_; }

  // Called after a ledger reopen re-bound this contract to its persisted
  // storage (Chain deploy-adoption). The KV store and full block/event
  // history are restored at this point; contracts that keep an off-store
  // RPC mirror (index maps) rebuild it here from slots + the event log.
  friend class Chain;  // invokes on_adopted during deploy adoption
  virtual void on_adopted(const Chain& chain) { (void)chain; }

 private:
  friend class Chain;
  std::string name_;
  std::size_t code_size_;
  Address address_;
  MeteredStore store_;
};

class Chain {
 public:
  Chain();

  // --- accounts ---
  Address create_account(const crypto::KeyPair& keys,
                         std::uint64_t initial_balance);
  [[nodiscard]] std::uint64_t balance(const Address& a) const;
  // Raw transfer used by the runtime and contracts (escrow flows).
  void transfer(const Address& from, const Address& to, std::uint64_t amount);

  // --- contract deployment ---
  // Constructs a contract in place, charges creation gas to the deployer
  // and returns a reference with chain lifetime.
  template <typename C, typename... Args>
  C& deploy(const crypto::KeyPair& deployer, Receipt* receipt, Args&&... args) {
    auto contract = std::make_unique<C>(std::forward<Args>(args)...);
    C& ref = *contract;
    finish_deploy(deployer, std::move(contract), receipt);
    return ref;
  }

  // --- transactions ---
  // Runs `fn` as a signed, gas-metered transaction from `sender`.
  Receipt call(const crypto::KeyPair& sender, const std::string& description,
               const std::function<void(CallContext&)>& fn,
               std::uint64_t value = 0, const Address& pay_to = {},
               std::uint64_t gas_limit = 30'000'000);

  // Next expected nonce for `a` (0 for a fresh account). A tx is only
  // admitted with exactly this nonce; inclusion consumes it.
  [[nodiscard]] std::uint64_t account_nonce(const Address& a) const;

  // Canonical signed message for a tx: description bytes || LE64(nonce).
  // Shared by Chain::call, txpool intent signing and ledger replay
  // re-verification.
  [[nodiscard]] static std::vector<std::uint8_t> tx_auth_message(
      const std::string& description, std::uint64_t nonce);

  // Executes a batch of pre-signed transactions and seals the included
  // ones into ONE block, in the given (canonical) order. Stages:
  // signature verification and closure execution run concurrently on
  // the runtime pool when `parallel` (each tx buffering its effects in
  // a thread-local TxExecCapture); nonce admission and effect commit
  // are serial in canonical order either way, so blocks, deltas and
  // WAL bytes are byte-identical for parallel and serial execution of
  // the same tx vector. A tx failing auth or nonce admission is
  // excluded from the block (nonce not consumed); a reverted tx is
  // included as failed with its effects fully rolled back. Seals no
  // block when nothing is admitted.
  std::vector<Receipt> execute_batch(const std::vector<BatchTx>& txs,
                                     bool parallel);

  // The calling thread's installed batch capture (nullptr outside
  // execute_batch). Used by MeteredStore/transfer to buffer effects.
  [[nodiscard]] static TxExecCapture* capture();

  // --- chain state ---
  [[nodiscard]] std::uint64_t height() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t timestamp() const { return timestamp_; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  void advance_blocks(std::uint64_t k);  // empty blocks (time passing)

  // Verifies hash-linking of the whole chain (tamper evidence).
  [[nodiscard]] bool validate_chain() const;

  [[nodiscard]] const GasSchedule& gas_schedule() const { return gas_; }

  // Canonical hash of a block: header fields + the codec-serialized
  // transactions (gas, success flag, events and signatures included, so
  // a mutated receipt outcome breaks the hash link). Public so replay
  // verification and tamper tests can recompute it.
  [[nodiscard]] static std::array<std::uint8_t, 32> block_hash(const Block& b);

  // --- durability hooks (src/ledger) ---
  // At most one observer; pass nullptr to detach. Attaching requires no
  // unjournaled history (the ledger attaches at genesis or right after
  // restore_state).
  void set_observer(ChainObserver* observer) { observer_ = observer; }
  [[nodiscard]] bool recording() const { return observer_ != nullptr; }
  // Delta capture for contract storage writes (called by MeteredStore).
  void record_slot_set(const Address& contract, const std::string& key,
                       const Fr& value);
  void record_slot_erase(const Address& contract, const std::string& key);

  // Replaces this chain's state with a persisted image (ledger reopen).
  // Only legal on a chain that has seen no activity beyond genesis.
  // `contracts` become pending adoptions: the application re-deploys its
  // contract objects in the original order and deploy() re-binds each to
  // its persisted address + storage instead of sealing a new block.
  void restore_state(std::vector<Block> blocks,
                     std::map<Address, std::uint64_t> balances,
                     std::map<Address, crypto::G1> account_keys,
                     std::map<Address, RestoredContract> contracts);

  // --- snapshot views (ledger state capture; unmetered) ---
  [[nodiscard]] const std::map<Address, std::uint64_t>& balances_map() const {
    return balances_;
  }
  [[nodiscard]] const std::map<Address, crypto::G1>& account_keys() const {
    return account_keys_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Contract>>& contracts()
      const {
    return contracts_;
  }
  // Persisted contract states not yet re-bound to a contract object.
  [[nodiscard]] const std::map<Address, RestoredContract>& pending_adoptions()
      const {
    return pending_adoptions_;
  }

 private:
  void finish_deploy(const crypto::KeyPair& deployer,
                     std::unique_ptr<Contract> contract, Receipt* receipt);
  void seal_block(TxRecord tx);
  void seal_batch(std::vector<TxRecord> txs);
  // Applies a successful tx's buffered effects to chain state; returns
  // false (applying nothing) when a buffered transfer no longer clears
  // against committed state — a conflict only possible for undeclared
  // (policy-free) txs, surfaced as a commit-time abort.
  [[nodiscard]] bool apply_capture(const TxExecCapture& cap);
  [[nodiscard]] Contract* find_contract(const Address& addr);

  GasSchedule gas_;
  std::map<Address, std::uint64_t> balances_;
  std::map<Address, crypto::G1> account_keys_;
  // Next expected nonce per sender. The only chain state readable from
  // outside the sequencer thread (TxPool::submit admission-checks it
  // from any producer thread while a batch commits), so it has its own
  // mutex; everything else on Chain is single-sequencer by contract.
  // Locks are tightly scoped and never held across contract execution,
  // sealing, or observer callbacks.
  mutable Mutex nonce_mu_{check::LockLevel::kChain, "chain.nonces_"};
  std::map<Address, std::uint64_t> nonces_ ZKDET_GUARDED_BY(nonce_mu_);
  std::vector<std::unique_ptr<Contract>> contracts_;
  std::vector<Block> blocks_;
  std::uint64_t timestamp_ = 1'650'000'000;
  std::uint64_t next_contract_id_ = 1;
  ChainObserver* observer_ = nullptr;
  StateDelta delta_;  // mutations since the last sealed block
  std::map<Address, RestoredContract> pending_adoptions_;
  static thread_local TxExecCapture* tls_capture_;
};

}  // namespace zkdet::chain
