// Pre-execution proof claims for batched settlement.
//
// A settlement tx that will verify a Plonk proof on-chain attaches a
// ProofClaim — the exact (vk, statement, proof) triple its closure will
// hand to PlonkVerifierContract::verify. Chain::execute_batch folds
// every included claim of a batch into ONE attributed pairing check
// before execution (stage 2½), and the verifier contract consumes the
// per-tx verdict instead of re-running the pairing, charging each valid
// claim an equal share of the shared pairing cost. A claim that does
// not byte-match what the closure actually verifies is simply ignored
// (the contract falls back to full inline verification at full price),
// so a lying claim buys nothing.
#pragma once

#include <cstddef>
#include <vector>

#include "ff/bn254.hpp"
#include "plonk/plonk.hpp"

namespace zkdet::chain {

struct ProofClaim {
  // Must point at the verifying key held by the verifier contract the
  // closure calls (identity comparison, no copy), alive for the tx.
  const plonk::VerifyingKey* vk = nullptr;
  std::vector<ff::Fr> public_inputs;
  plonk::Proof proof;
};

// Outcome of the batch claim-verification stage for one tx.
struct ClaimVerdict {
  const ProofClaim* claim = nullptr;  // nullptr = tx carried no claim
  bool valid = false;                 // attributed per-entry verdict
  std::size_t batch_claims = 0;       // claims folded in this tx's batch
};

}  // namespace zkdet::chain
