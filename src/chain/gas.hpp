// EVM-style gas schedule and meter.
//
// Table II of the paper reports gas consumed by the ZKDET contracts on
// the Rinkeby testnet. Our contract runtime meters the same logical
// operations (storage writes/reads, event logs, contract creation,
// precompile-priced curve operations) under the familiar
// Istanbul/EIP-1108 cost constants, so the bench numbers land in the
// same regime as the paper's measurements.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace zkdet::chain {

struct GasSchedule {
  std::uint64_t tx_base = 21000;
  std::uint64_t sstore_set = 20000;     // zero -> nonzero
  std::uint64_t sstore_update = 5000;   // nonzero -> nonzero (or clear)
  std::uint64_t sload = 800;
  std::uint64_t log_base = 375;
  std::uint64_t log_topic = 375;
  std::uint64_t log_data_byte = 8;
  std::uint64_t create_base = 32000;
  std::uint64_t create_per_byte = 200;
  std::uint64_t ecadd = 150;            // EIP-1108
  std::uint64_t ecmul = 6000;
  std::uint64_t pairing_base = 45000;
  std::uint64_t pairing_per_pair = 34000;
  std::uint64_t calldata_byte = 16;
  std::uint64_t compute_word = 3;       // memory/arithmetic noise floor

  [[nodiscard]] static const GasSchedule& standard() {
    static const GasSchedule g{};
    return g;
  }
};

class OutOfGas : public std::runtime_error {
 public:
  OutOfGas() : std::runtime_error("out of gas") {}
};

class GasMeter {
 public:
  explicit GasMeter(std::uint64_t limit) : limit_(limit) {}

  void charge(std::uint64_t amount) {
    used_ += amount;
    if (used_ > limit_) throw OutOfGas();
  }

  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }

 private:
  std::uint64_t limit_;
  std::uint64_t used_ = 0;
};

}  // namespace zkdet::chain
