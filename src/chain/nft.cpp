#include "chain/nft.hpp"

#include <algorithm>
#include <set>

namespace zkdet::chain {

namespace {
// Equivalent flattened-bytecode size of the Solidity DataNFT (ERC-721 +
// provenance extensions); calibrated so deployment gas matches the
// paper's Table II (see DESIGN.md substitution #4).
constexpr std::size_t kNftCodeSize = 4839;
}  // namespace

const char* formula_name(Formula f) {
  switch (f) {
    case Formula::kGenesis: return "genesis";
    case Formula::kAggregation: return "aggregation";
    case Formula::kPartition: return "partition";
    case Formula::kDuplication: return "duplication";
    case Formula::kProcessing: return "processing";
  }
  return "?";
}

DataNft::DataNft() : Contract("DataNFT", kNftCodeSize) {}

std::string DataNft::key(const char* field, std::uint64_t id) const {
  return std::string(field) + "/" + std::to_string(id);
}

std::uint64_t DataNft::mint(CallContext& ctx, const Fr& uri, const Fr& data_cm,
                            const Fr& key_cm) {
  const std::uint64_t id = next_id_++;
  store().set(ctx, key("owner", id),
              Fr::reduce_from(
                  ff::u256_from_bytes(crypto::Sha256::digest(ctx.sender()))));
  store().set(ctx, key("uri", id), uri);
  store().set(ctx, key("datacm", id), data_cm);
  store().set(ctx, key("keycm", id), key_cm);
  const auto bal = store().get_u64(ctx, "balance/" + ctx.sender());
  store().set_u64(ctx, "balance/" + ctx.sender(), bal.value_or(0) + 1);
  store().set_u64(ctx, "count", next_id_ - 1);
  ctx.emit(Event{"Mint",
                 {{"tokenId", std::to_string(id)}, {"owner", ctx.sender()}}});

  TokenInfo info;
  info.id = id;
  info.owner = ctx.sender();
  info.uri = uri;
  info.data_commitment = data_cm;
  info.key_commitment = key_cm;
  index_[id] = std::move(info);
  return id;
}

std::uint64_t DataNft::mint_derived(
    CallContext& ctx, const Fr& uri, const Fr& data_cm, const Fr& key_cm,
    Formula formula, const std::vector<std::uint64_t>& prev_ids) {
  // Validate parents before mutating anything (check-then-act; there is
  // no state rollback on revert).
  ctx.require(!prev_ids.empty(), "derived token needs parents");
  for (const std::uint64_t p : prev_ids) {
    ctx.require(exists(p), "parent does not exist");
    ctx.require(index_.at(p).owner == ctx.sender(),
                "caller does not own parent token");
  }
  const std::uint64_t id = mint(ctx, uri, data_cm, key_cm);
  record_transformation(ctx, id, formula, prev_ids);
  return id;
}

void DataNft::record_transformation(
    CallContext& ctx, std::uint64_t token_id, Formula formula,
    const std::vector<std::uint64_t>& prev_ids) {
  ctx.require(exists(token_id), "no such token");
  ctx.require(!prev_ids.empty(), "derived token needs parents");
  ctx.gas().charge(ctx.chain().gas_schedule().sload);  // owner check
  TokenInfo& info = index_.at(token_id);
  ctx.require(info.owner == ctx.sender(), "only the owner records");
  ctx.require(info.prev_ids.empty() && info.formula == Formula::kGenesis,
              "provenance already recorded");
  for (const std::uint64_t p : prev_ids) {
    ctx.require(exists(p), "parent does not exist");
    ctx.gas().charge(ctx.chain().gas_schedule().sload);  // owner check
    ctx.require(index_.at(p).owner == ctx.sender(),
                "caller does not own parent token");
    ctx.require(p != token_id, "token cannot be its own parent");
  }
  store().set_u64(ctx, key("prevn", token_id), prev_ids.size());
  for (std::size_t i = 0; i < prev_ids.size(); ++i) {
    store().set_u64(ctx, key("prev", token_id) + "/" + std::to_string(i),
                    prev_ids[i]);
  }
  store().set_u64(ctx, key("formula", token_id),
                  static_cast<std::uint64_t>(formula));
  ctx.emit(Event{"Transformation",
                 {{"tokenId", std::to_string(token_id)},
                  {"formula", formula_name(formula)}}});
  info.formula = formula;
  info.prev_ids = prev_ids;
}

void DataNft::transfer_from(CallContext& ctx, const Address& from,
                            const Address& to, std::uint64_t token_id) {
  ctx.require(exists(token_id), "no such token");
  ctx.gas().charge(ctx.chain().gas_schedule().sload);  // owner
  TokenInfo& info = index_.at(token_id);
  ctx.require(info.owner == from, "from is not the owner");
  const auto appr = approvals_.find(token_id);
  const bool authorized =
      ctx.sender() == from ||
      (appr != approvals_.end() && appr->second == ctx.sender());
  ctx.require(authorized, "caller not authorized");

  store().set(ctx, key("owner", token_id),
              Fr::reduce_from(ff::u256_from_bytes(crypto::Sha256::digest(to))));
  const auto bf = store().get_u64(ctx, "balance/" + from);
  store().set_u64(ctx, "balance/" + from, bf.value_or(1) - 1);
  const auto bt = store().get_u64(ctx, "balance/" + to);
  store().set_u64(ctx, "balance/" + to, bt.value_or(0) + 1);
  ctx.emit(Event{"Transfer",
                 {{"tokenId", std::to_string(token_id)},
                  {"from", from},
                  {"to", to}}});
  info.owner = to;
  approvals_.erase(token_id);
}

void DataNft::approve(CallContext& ctx, const Address& to,
                      std::uint64_t token_id) {
  ctx.require(exists(token_id), "no such token");
  ctx.gas().charge(ctx.chain().gas_schedule().sload);
  ctx.require(index_.at(token_id).owner == ctx.sender(),
              "only owner can approve");
  store().set(ctx, key("approved", token_id),
              Fr::reduce_from(ff::u256_from_bytes(crypto::Sha256::digest(to))));
  // The slot holds only H(to); the event carries the address itself so
  // the approval survives a ledger reopen (mirror rebuild).
  ctx.emit(Event{"Approval",
                 {{"tokenId", std::to_string(token_id)}, {"approved", to}}});
  approvals_[token_id] = to;
}

void DataNft::burn(CallContext& ctx, std::uint64_t token_id) {
  ctx.require(exists(token_id), "no such token");
  ctx.gas().charge(ctx.chain().gas_schedule().sload);
  ctx.require(index_.at(token_id).owner == ctx.sender(),
              "only owner can burn");
  store().erase(ctx, key("owner", token_id));
  store().erase(ctx, key("uri", token_id));
  store().erase(ctx, key("datacm", token_id));
  store().erase(ctx, key("keycm", token_id));
  const auto bal = store().get_u64(ctx, "balance/" + ctx.sender());
  store().set_u64(ctx, "balance/" + ctx.sender(), bal.value_or(1) - 1);
  ctx.emit(Event{"Burn", {{"tokenId", std::to_string(token_id)}}});
  index_.erase(token_id);
  approvals_.erase(token_id);
}

void DataNft::on_adopted(const Chain& chain) {
  next_id_ = 1;
  index_.clear();
  approvals_.clear();
  if (const auto count = store().peek("count")) {
    next_id_ = count->to_canonical().limb[0] + 1;
  }

  // owner/<id> slots hold H(addr) reduced into Fr — not invertible, but
  // the address space is enumerable: every possible owner is a known
  // account or contract, so match by hashing the candidates.
  std::vector<std::pair<Fr, Address>> candidates;
  const auto add_candidate = [&](const Address& a) {
    candidates.emplace_back(
        Fr::reduce_from(ff::u256_from_bytes(crypto::Sha256::digest(a))), a);
  };
  for (const auto& [addr, pk] : chain.account_keys()) add_candidate(addr);
  for (const auto& c : chain.contracts()) add_candidate(c->address());
  for (const auto& [addr, rc] : chain.pending_adoptions()) add_candidate(addr);

  // Live tokens are exactly the ids with an owner slot (burn erases it).
  for (const auto& [slot_key, value] : store().peek_all()) {
    if (slot_key.rfind("owner/", 0) != 0) continue;
    TokenInfo info;
    info.id = std::stoull(slot_key.substr(6));
    const auto owner = std::find_if(
        candidates.begin(), candidates.end(),
        [&](const auto& cand) { return cand.first == value; });
    if (owner == candidates.end()) {
      throw Revert("DataNFT adoption: unresolvable owner of token " +
                   std::to_string(info.id));
    }
    info.owner = owner->second;
    if (const auto v = store().peek(key("uri", info.id))) info.uri = *v;
    if (const auto v = store().peek(key("datacm", info.id))) {
      info.data_commitment = *v;
    }
    if (const auto v = store().peek(key("keycm", info.id))) {
      info.key_commitment = *v;
    }
    if (const auto v = store().peek(key("formula", info.id))) {
      info.formula = static_cast<Formula>(v->to_canonical().limb[0]);
    }
    if (const auto n = store().peek(key("prevn", info.id))) {
      const std::uint64_t count = n->to_canonical().limb[0];
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto p =
            store().peek(key("prev", info.id) + "/" + std::to_string(i));
        if (p) info.prev_ids.push_back(p->to_canonical().limb[0]);
      }
    }
    index_[info.id] = std::move(info);
  }

  // Approvals carry a plain address only in the event log; replay it in
  // order (Transfer and Burn clear the approval, as the live code does).
  for (const auto& block : chain.blocks()) {
    for (const auto& tx : block.txs) {
      for (const auto& ev : tx.events) {
        const auto field = [&](const char* name) -> const std::string* {
          for (const auto& [k, v] : ev.fields) {
            if (k == name) return &v;
          }
          return nullptr;
        };
        const std::string* tid = field("tokenId");
        if (tid == nullptr) continue;
        if (ev.name == "Approval") {
          if (const std::string* to = field("approved")) {
            approvals_[std::stoull(*tid)] = *to;
          }
        } else if (ev.name == "Transfer" || ev.name == "Burn") {
          approvals_.erase(std::stoull(*tid));
        }
      }
    }
  }
  std::erase_if(approvals_,
                [&](const auto& kv) { return !index_.contains(kv.first); });
}

Address DataNft::owner_of(CallContext& ctx, std::uint64_t token_id) const {
  ctx.gas().charge(ctx.chain().gas_schedule().sload);
  const auto it = index_.find(token_id);
  if (it == index_.end()) throw Revert("no such token");
  return it->second.owner;
}

std::optional<TokenInfo> DataNft::token(std::uint64_t token_id) const {
  const auto it = index_.find(token_id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool DataNft::exists(std::uint64_t token_id) const {
  return index_.contains(token_id);
}

std::vector<std::uint64_t> DataNft::provenance(std::uint64_t token_id) const {
  std::vector<std::uint64_t> order;
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> stack{token_id};
  while (!stack.empty()) {
    const std::uint64_t cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    const auto it = index_.find(cur);
    if (it == index_.end()) continue;
    if (cur != token_id) order.push_back(cur);
    for (const std::uint64_t p : it->second.prev_ids) stack.push_back(p);
  }
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace zkdet::chain
