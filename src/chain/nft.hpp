// DataNFT: the ERC-721-style data-asset token contract (paper III-A/B).
//
// Every data asset is represented by a token carrying:
//   uri        — CID of the encrypted dataset in the storage network
//   dataCm     — Poseidon commitment c_d to the plaintext dataset
//   keyCm      — Poseidon commitment c to the encryption key
//   prevIds[]  — parent tokens (provenance DAG, paper Fig. 2)
//   formula    — which transformation produced it (mint/agg/part/dup/proc)
//
// mint/transfer/burn follow ERC-721 semantics (ownership, approvals,
// balances); mint_derived implements the four transformation formulae,
// requiring the caller to own every parent. Proof verification is done
// by the protocol layer against the verifier contract before the mint
// is submitted — the token records the provenance claim, the proof
// chain makes it checkable by anyone (paper IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/chain.hpp"

namespace zkdet::chain {

enum class Formula : std::uint8_t {
  kGenesis = 0,
  kAggregation = 1,
  kPartition = 2,
  kDuplication = 3,
  kProcessing = 4,
};

const char* formula_name(Formula f);

struct TokenInfo {
  std::uint64_t id = 0;
  Address owner;
  Fr uri;
  Fr data_commitment;
  Fr key_commitment;
  Formula formula = Formula::kGenesis;
  std::vector<std::uint64_t> prev_ids;
};

class DataNft : public Contract {
 public:
  DataNft();

  // Mints a genesis token for a fresh data asset; returns the token id.
  std::uint64_t mint(CallContext& ctx, const Fr& uri, const Fr& data_cm,
                     const Fr& key_cm);

  // Mints a token derived from `prev_ids` under `formula`; the sender
  // must own all parents. Equivalent to mint() followed by
  // record_transformation() in a single transaction.
  std::uint64_t mint_derived(CallContext& ctx, const Fr& uri,
                             const Fr& data_cm, const Fr& key_cm,
                             Formula formula,
                             const std::vector<std::uint64_t>& prev_ids);

  // Records the provenance of an already-minted token (prevIds[] and the
  // transformation formula). Callable once per token by its owner; this
  // is the "Data Transformation" operation Table II meters separately
  // from minting.
  void record_transformation(CallContext& ctx, std::uint64_t token_id,
                             Formula formula,
                             const std::vector<std::uint64_t>& prev_ids);

  void transfer_from(CallContext& ctx, const Address& from, const Address& to,
                     std::uint64_t token_id);
  void approve(CallContext& ctx, const Address& to, std::uint64_t token_id);
  void burn(CallContext& ctx, std::uint64_t token_id);

  // Metered views (on-chain reads).
  [[nodiscard]] Address owner_of(CallContext& ctx, std::uint64_t token_id) const;

  // Unmetered node-RPC views for off-chain users.
  [[nodiscard]] std::optional<TokenInfo> token(std::uint64_t token_id) const;
  [[nodiscard]] std::uint64_t total_minted() const { return next_id_ - 1; }
  [[nodiscard]] bool exists(std::uint64_t token_id) const;

  // Walks prevIds[] transitively: the full provenance (ancestor) set of
  // a token in topological order (paper Fig. 2 traceability).
  [[nodiscard]] std::vector<std::uint64_t> provenance(
      std::uint64_t token_id) const;

 protected:
  // Rebuilds the RPC mirror (index_, approvals_, next_id_) from restored
  // contract storage + the chain's event log after a ledger reopen.
  void on_adopted(const Chain& chain) override;

 private:
  [[nodiscard]] std::string key(const char* field, std::uint64_t id) const;

  std::uint64_t next_id_ = 1;
  // Owner/approval/prev bookkeeping mirrored off the metered store for
  // unmetered RPC reads (the store remains the source of truth).
  std::map<std::uint64_t, TokenInfo> index_;
  std::map<std::uint64_t, Address> approvals_;
};

}  // namespace zkdet::chain
