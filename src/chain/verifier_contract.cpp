#include "chain/verifier_contract.hpp"

namespace zkdet::chain {

namespace {
// Equivalent bytecode size of a Solidity Plonk verifier with the vk
// hard-coded (paper: ~1.64M gas to deploy; see Table II bench).
constexpr std::size_t kVerifierCodeSize = 7960;
}  // namespace

PlonkVerifierContract::PlonkVerifierContract(plonk::VerifyingKey vk,
                                             std::string label)
    : Contract(std::move(label), kVerifierCodeSize), vk_(std::move(vk)) {}

bool PlonkVerifierContract::verify(CallContext& ctx,
                                   const std::vector<Fr>& public_inputs,
                                   const plonk::Proof& proof) const {
  const auto& g = ctx.chain().gas_schedule();
  // calldata: proof + public inputs
  ctx.gas().charge(g.calldata_byte *
                   (plonk::Proof::size_bytes() + 32 * public_inputs.size()));
  // pairing product over 2 pairs
  ctx.gas().charge(g.pairing_base + 2 * g.pairing_per_pair);
  // 18 scalar multiplications + 12 additions in G1 (paper VI-B.3)
  ctx.gas().charge(18 * g.ecmul + 12 * g.ecadd);
  // PI(zeta) evaluation: field work only, noise-floor pricing
  ctx.gas().charge(g.compute_word * 64 * (public_inputs.size() + 1));
  return plonk::verify(vk_, public_inputs, proof);
}

}  // namespace zkdet::chain
