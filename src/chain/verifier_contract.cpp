#include "chain/verifier_contract.hpp"

#include "chain/claim.hpp"

namespace zkdet::chain {

namespace {
// Equivalent bytecode size of a Solidity Plonk verifier with the vk
// hard-coded (paper: ~1.64M gas to deploy; see Table II bench).
constexpr std::size_t kVerifierCodeSize = 7960;
}  // namespace

PlonkVerifierContract::PlonkVerifierContract(plonk::VerifyingKey vk,
                                             std::string label)
    : Contract(std::move(label), kVerifierCodeSize), vk_(std::move(vk)) {}

bool PlonkVerifierContract::verify(CallContext& ctx,
                                   const std::vector<Fr>& public_inputs,
                                   const plonk::Proof& proof) const {
  const auto& g = ctx.chain().gas_schedule();
  // calldata: proof + public inputs
  ctx.gas().charge(g.calldata_byte *
                   (plonk::Proof::size_bytes() + 32 * public_inputs.size()));
  // 18 scalar multiplications + 12 additions in G1 (paper VI-B.3) —
  // per-proof transcript/scalar work, paid whether batched or not
  ctx.gas().charge(18 * g.ecmul + 12 * g.ecadd);
  // PI(zeta) evaluation: field work only, noise-floor pricing
  ctx.gas().charge(g.compute_word * 64 * (public_inputs.size() + 1));

  const std::uint64_t pairing_gas = g.pairing_base + 2 * g.pairing_per_pair;

  // Batched settlement: if this tx carried a ProofClaim and it byte-
  // matches what we were just asked to verify, the batch stage already
  // folded this entry's pairing check — consume its attributed verdict
  // instead of re-running the pairing. The match is exact (vk identity,
  // statement equality, proof bytes), so a claim that diverges from the
  // closure's actual call falls through to full inline verification.
  const ClaimVerdict* v = ctx.claim_verdict();
  if (v != nullptr && v->claim != nullptr && v->claim->vk == &vk_ &&
      v->claim->public_inputs == public_inputs &&
      v->claim->proof.to_bytes() == proof.to_bytes()) {
    if (v->valid && v->batch_claims > 1) {
      // Gas-split rule: each valid claim pays 2 G1 muls (weighting its
      // check into the fold) plus an equal (ceil) share of the single
      // shared pairing product — the amortization the gas table shows.
      ctx.gas().charge(2 * g.ecmul);
      ctx.gas().charge((pairing_gas + v->batch_claims - 1) / v->batch_claims);
    } else {
      // A batch of one folded nothing, and an attributed-invalid entry
      // forced its own bisection pairings: full pairing price, making a
      // batch of one gas- and outcome-identical to the inline path.
      ctx.gas().charge(pairing_gas);
    }
    return v->valid;
  }

  // Unbatched fallback (direct Chain::call, or no/mismatched claim):
  // the full pairing product, verified inline.
  ctx.gas().charge(pairing_gas);
  // zkdet-lint: allow(unbatched-verify) reviewed: claim-less fallback
  return plonk::verify(vk_, public_inputs, proof);
}

}  // namespace zkdet::chain
