// On-chain Plonk verifier contract (paper VI-C.2).
//
// Holds a hard-coded verifying key (hence the large "bytecode") and
// performs real Plonk verification, gas-priced like an EVM verifier
// would be under EIP-1108: one 2-pair pairing check, 18 G1 scalar
// multiplications and a handful of additions, plus calldata for the
// 768-byte proof. Deployment is a one-time cost; verifications are
// unlimited thereafter.
#pragma once

#include "chain/chain.hpp"
#include "plonk/plonk.hpp"

namespace zkdet::chain {

class PlonkVerifierContract : public Contract {
 public:
  explicit PlonkVerifierContract(plonk::VerifyingKey vk,
                                 std::string label = "PlonkVerifier");

  // Gas-metered verification; returns the verdict (does not revert on an
  // invalid proof so callers can branch). When the enclosing batch tx
  // carried a matching ProofClaim (chain/claim.hpp), the pre-folded
  // attributed verdict is consumed instead of re-running the pairing,
  // and each valid claim is charged an equal share of the shared
  // pairing cost — the batched-settlement fast path.
  bool verify(CallContext& ctx, const std::vector<Fr>& public_inputs,
              const plonk::Proof& proof) const;

  [[nodiscard]] const plonk::VerifyingKey& vk() const { return vk_; }

 private:
  plonk::VerifyingKey vk_;
};

}  // namespace zkdet::chain
