#include "check/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace zkdet::check {

namespace {

void abort_handler(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();  // zkdet-lint: allow(raw-assert) -- the handler of last resort
}

std::atomic<FailureHandler> g_handler{&abort_handler};

}  // namespace

FailureHandler set_failure_handler(FailureHandler h) {
  return g_handler.exchange(h != nullptr ? h : &abort_handler);
}

void throw_handler(const std::string& report) { throw CheckFailure(report); }

ScopedThrowHandler::ScopedThrowHandler()
    : prev_(set_failure_handler(&throw_handler)) {}

ScopedThrowHandler::~ScopedThrowHandler() { set_failure_handler(prev_); }

void fail(const char* expr, const char* file, int line,
          const std::string& message) {
  std::string report = "ZKDET check failed: ";
  report += expr;
  report += "\n  at ";
  report += file;
  report += ':';
  report += std::to_string(line);
  if (!message.empty()) {
    report += "\n  ";
    report += message;
  }
  g_handler.load()(report);
  // A handler that returns leaves nothing sound to resume; stop here.
  std::abort();  // zkdet-lint: allow(raw-assert)
}

}  // namespace zkdet::check
