// Invariant-checking macros with a pluggable failure handler.
//
// Three tiers, by cost and build mode:
//
//   ZKDET_CHECK(cond, msg...)   always compiled; API-boundary and
//                               soundness-critical validation (cheap
//                               relative to the operation it guards).
//   ZKDET_ASSERT(cond, msg...)  compiled only under -DZKDET_CHECKED=ON;
//                               expensive internal invariants (subgroup
//                               membership sweeps, permutation audits,
//                               per-element canonicality scans).
//   ZKDET_DCHECK(cond, msg...)  compiled in debug builds (!NDEBUG) and
//                               under ZKDET_CHECKED; replacement for the
//                               old raw assert() sites.
//
// On failure every tier routes through the installed FailureHandler.
// The default handler prints the failure and aborts (release posture:
// a broken arithmetic invariant must not produce an unsound proof).
// Tests install a throwing handler (ScopedThrowHandler) so negative
// paths are observable as exceptions instead of process death.
//
// Message arguments are streamed: ZKDET_CHECK(a == b, "got ", a.to_hex()).
// They are only evaluated on failure.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace zkdet::check {

// Thrown by the throwing handler (and by ScopedThrowHandler scopes).
struct CheckFailure : std::logic_error {
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

// A handler receives the formatted failure report. It must not return;
// if it does, the process is aborted anyway (fail() is [[noreturn]]).
using FailureHandler = void (*)(const std::string& report);

// Installs `h` (nullptr restores the default abort handler); returns
// the previously installed handler. Thread-safe (atomic swap).
FailureHandler set_failure_handler(FailureHandler h);

// Handler that throws CheckFailure{report}.
void throw_handler(const std::string& report);

// RAII: route check failures into CheckFailure exceptions for a scope.
// Used by tests that exercise negative paths.
class ScopedThrowHandler {
 public:
  ScopedThrowHandler();
  ~ScopedThrowHandler();
  ScopedThrowHandler(const ScopedThrowHandler&) = delete;
  ScopedThrowHandler& operator=(const ScopedThrowHandler&) = delete;

 private:
  FailureHandler prev_;
};

// Formats the report and invokes the installed handler; aborts if the
// handler returns.
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       const std::string& message);

namespace detail {

inline std::string format_message() { return {}; }

template <typename... Args>
std::string format_message(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail
}  // namespace zkdet::check

#define ZKDET_CHECK(cond, ...)                                         \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::zkdet::check::fail(#cond, __FILE__, __LINE__,                  \
                           ::zkdet::check::detail::format_message(     \
                               __VA_ARGS__));                          \
    }                                                                  \
  } while (0)

// Disabled tiers must not evaluate their arguments but must still keep
// them ODR-used and warning-free.
#define ZKDET_CHECK_DISABLED_(cond, ...)                               \
  do {                                                                 \
    (void)sizeof(static_cast<bool>(cond));                             \
  } while (0)

#ifdef ZKDET_CHECKED
#define ZKDET_ASSERT(cond, ...) ZKDET_CHECK(cond, __VA_ARGS__)
#else
#define ZKDET_ASSERT(cond, ...) ZKDET_CHECK_DISABLED_(cond, __VA_ARGS__)
#endif

#if defined(ZKDET_CHECKED) || !defined(NDEBUG)
#define ZKDET_DCHECK(cond, ...) ZKDET_CHECK(cond, __VA_ARGS__)
#else
#define ZKDET_DCHECK(cond, ...) ZKDET_CHECK_DISABLED_(cond, __VA_ARGS__)
#endif
