// Domain invariant checkers for the arithmetic substrate.
//
// Predicates here answer "is this value structurally sound?" — callers
// wire them into ZKDET_CHECK / ZKDET_ASSERT at the tier matching their
// cost. Everything is header-only (templates over the field/curve
// types); the checkers themselves never fail a check, they only report.
//
// Cost guide:
//   canonical / tower checks    O(1) limb compares      -> any tier
//   on-curve                    a handful of field muls -> any tier
//   G2 subgroup (mul by r)      ~1 scalar mul           -> guards pairings
//   permutation audit           O(n) with a seen-bitmap -> ZKDET_ASSERT
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "ec/curve.hpp"
#include "ff/bn254.hpp"
#include "ff/fp12.hpp"
#include "ff/fp2.hpp"

namespace zkdet::check {

// --- Field canonicality -------------------------------------------------
// Montgomery representations are only meaningful when the raw value is
// fully reduced; a non-canonical limb vector silently corrupts every
// subsequent product.

template <typename Params>
[[nodiscard]] bool is_canonical(const ff::Fp_<Params>& x) {
  return ff::u256_less(x.raw(), ff::Fp_<Params>::MOD);
}

[[nodiscard]] inline bool is_canonical(const ff::Fp2& x) {
  return is_canonical(x.a) && is_canonical(x.b);
}

// Tower consistency: an Fp12 is sound iff all six Fp2 coefficients are,
// i.e. all twelve underlying Fp limbs sit in canonical range.
[[nodiscard]] inline bool is_canonical(const ff::Fp12& x) {
  for (const ff::Fp2& ci : x.c) {
    if (!is_canonical(ci)) return false;
  }
  return true;
}

template <typename F>
[[nodiscard]] bool all_canonical(std::span<const F> xs) {
  for (const F& x : xs) {
    if (!is_canonical(x)) return false;
  }
  return true;
}

// --- Curve membership ---------------------------------------------------

// BN-254 G1 has cofactor 1: every point on E(Fp) is in the r-torsion,
// so on-curve is the whole subgroup check.
[[nodiscard]] inline bool in_g1(const ec::G1& p) { return p.on_curve(); }

// E'(Fp2) has a large cofactor; a point can sit on the twist yet outside
// the order-r subgroup, which breaks pairing bilinearity. Full check:
// on-curve plus annihilation by r.
[[nodiscard]] inline bool on_g2_curve(const ec::G2& p) { return p.on_curve(); }
[[nodiscard]] inline bool in_g2_subgroup(const ec::G2& p) {
  return p.mul(ff::Fr::MOD).is_identity();
}
[[nodiscard]] inline bool in_g2(const ec::G2& p) {
  return p.on_curve() && in_g2_subgroup(p);
}

// --- NTT domains --------------------------------------------------------

// A radix-2 evaluation domain exists iff the size is a power of two no
// larger than the field's 2-adic subgroup.
[[nodiscard]] inline bool valid_ntt_domain(std::size_t size) {
  if (size == 0 || (size & (size - 1)) != 0) return false;
  std::size_t log = 0;
  while ((std::size_t{1} << log) < size) ++log;
  return log <= ff::Fr::TWO_ADICITY;
}

// --- Plonk permutation --------------------------------------------------

// The copy-constraint argument is only sound when sigma is a genuine
// permutation of the 3n wire slots: every slot hit exactly once.
template <typename Int>
[[nodiscard]] bool is_permutation(std::span<const Int> sigma,
                                  std::size_t slots) {
  if (sigma.size() != slots) return false;
  std::vector<bool> seen(slots, false);
  for (const Int s : sigma) {
    if (static_cast<std::size_t>(s) >= slots ||
        seen[static_cast<std::size_t>(s)]) {
      return false;
    }
    seen[static_cast<std::size_t>(s)] = true;
  }
  return true;
}

// Grand-product postcondition: the permutation accumulator must close to
// one after the full cycle, else the copy constraints do not hold.
[[nodiscard]] inline bool grand_product_closes(const ff::Fr& closing) {
  return closing == ff::Fr::one();
}

}  // namespace zkdet::check
