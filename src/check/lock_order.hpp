// Canonical lock-order table.
//
// Every zkdet::Mutex registers one of these levels at construction.
// Under -DZKDET_CHECKED=ON, lockdep (check/mutex.cpp) keeps a
// thread-local stack of held locks and requires each acquisition to
// carry a level STRICTLY GREATER than the innermost held lock — i.e. a
// thread may acquire a higher level while holding a lower one, never
// the reverse, and never two locks of the same level. Any global
// acquisition order that respects a single total rank is deadlock-free,
// so an inversion here is reported as a deterministic ZKDET_CHECK
// failure without needing the deadly interleaving to actually occur.
//
// The table mirrors the subsystem call graph, outermost first:
//
//   RPC admission queue (kRpc)               outermost: the server's
//     -> TxPool (kTxPool), fault (kFault)    pump admits under it, but
//                                            dispatch runs lock-free
//   TxPool::submit/seal (kTxPool)
//     -> Chain nonce map (kChain)            admission reads nonces
//   Mempool (kMempool)                       reserved: mempool is
//                                            currently guarded by the
//                                            pool mutex itself
//   Arbiter shards (kArbiter)                reserved: shards are
//                                            serialized by declared
//                                            access sets, no mutex
//   Replication shipper (kReplShip)
//     -> Ledger io (kLedger)                 reading durable records /
//                                            snapshot bytes to ship
//     -> Link queues (kReplLink)             enqueue/dequeue datagrams
//   Replication follower (kReplFollower)
//     -> Link queues (kReplLink)             drain + ack
//   Ledger WAL/snapshot (kLedger)            observer callbacks, sync
//   Replication link queues (kReplLink)      transport seam; above
//                                            kLedger so a shipper
//                                            mid-read can enqueue, and
//                                            its fail-points can fire
//                                            (-> kFault) under it
//   StorageNetwork (kStorage)                repair/quarantine paths
//   SRS affine cache (kSrsCache)             lazy batch normalization
//   ProverService cache (kProverCache)       LRU + in-flight dedup
//   Thread pool queues (kPoolQueue)
//     -> sleep/wake latch (kPoolSleep)       pop() notifies under queue
//   parallel_for region (kPoolRegion)
//   Crypto parameter caches (kCryptoParams)
//   Fault registry (kFault)                  leaf: fault::fire() runs
//                                            under txpool/ledger/storage
//                                            locks
//
// Rule for adding a mutex: pick the level matching where it sits in the
// call graph (what can be held when it is taken; what it may take while
// held), add an enumerator + name here, and document the nesting in
// DESIGN.md "Compile-time concurrency analysis". Gaps between values
// are deliberate room for insertion.
#pragma once

#include <cstdint>

namespace zkdet::check {

enum class LockLevel : std::uint16_t {
  kRpc = 5,            // rpc::AdmissionQueue mu_ (bounded request queue)
  kTxPool = 10,        // txpool::TxPool mu_ (mempool + tickets)
  kMempool = 12,       // reserved for a split-out mempool lock
  kChain = 20,         // chain::Chain nonce_mu_ (account nonce map)
  kArbiter = 25,       // reserved: KeySecureArbiter shards use access sets
  kReplShip = 26,      // replication::Shipper mu_ (per-follower watermarks)
  kReplFollower = 27,  // replication::Follower mu_ (image + WAL head)
  kLedger = 30,        // ledger::Ledger io_mu_ (WAL writer + snapshot)
  kReplLink = 35,      // replication::InMemoryLink mu_ (datagram queues)
  kStorage = 40,       // storage::StorageNetwork m_
  kSrsCache = 45,      // plonk::Srs affine-table publication
  kProverCache = 50,   // runtime::ProverService m_ (LRU + in-flight)
  kPoolQueue = 60,     // runtime thread-pool per-worker deques
  kPoolSleep = 62,     // runtime thread-pool sleep/wake latch
  kPoolRegion = 64,    // runtime parallel_for completion latch
  kCryptoParams = 70,  // crypto parameter caches (Poseidon round keys)
  kFault = 80,         // fault-point registry (innermost leaf)
};

constexpr const char* lock_level_name(LockLevel level) {
  switch (level) {
    case LockLevel::kRpc: return "Rpc";
    case LockLevel::kTxPool: return "TxPool";
    case LockLevel::kMempool: return "Mempool";
    case LockLevel::kChain: return "Chain";
    case LockLevel::kArbiter: return "Arbiter";
    case LockLevel::kReplShip: return "ReplShip";
    case LockLevel::kReplFollower: return "ReplFollower";
    case LockLevel::kLedger: return "Ledger";
    case LockLevel::kReplLink: return "ReplLink";
    case LockLevel::kStorage: return "Storage";
    case LockLevel::kSrsCache: return "SrsCache";
    case LockLevel::kProverCache: return "ProverCache";
    case LockLevel::kPoolQueue: return "PoolQueue";
    case LockLevel::kPoolSleep: return "PoolSleep";
    case LockLevel::kPoolRegion: return "PoolRegion";
    case LockLevel::kCryptoParams: return "CryptoParams";
    case LockLevel::kFault: return "Fault";
  }
  return "?";
}

}  // namespace zkdet::check
