// Lockdep: rank-ordered deadlock detection for zkdet::Mutex.
//
// Compiled to nothing unless -DZKDET_CHECKED=ON (the hooks are only
// declared — and called — in that configuration). Each thread keeps a
// fixed-size stack of the locks it currently holds; acquisition
// validates against the top of the stack BEFORE the underlying
// std::mutex is touched, so a throwing failure handler unwinds with
// the mutex still unlocked.
#include "check/mutex.hpp"

#ifdef ZKDET_CHECKED

#include <string>

#include "check/check.hpp"

namespace zkdet {
namespace {

struct HeldLock {
  const Mutex* mu;
  check::LockLevel level;
  const char* name;
};

// Deep enough for any sane nesting (the full table is 13 levels); a
// real workload holds 2-3 locks at once.
constexpr int kMaxHeld = 32;

thread_local HeldLock tl_held[kMaxHeld];
thread_local int tl_depth = 0;

std::string describe(check::LockLevel level, const char* name) {
  std::string out = lock_level_name(level);
  out += "(";
  out += std::to_string(
      static_cast<std::uint16_t>(level));
  out += ")";
  if (name != nullptr && name[0] != '\0') {
    out += " '";
    out += name;
    out += "'";
  }
  return out;
}

}  // namespace

void Mutex::pre_lock() {
  for (int i = 0; i < tl_depth; ++i) {
    if (tl_held[i].mu == this) {
      check::fail("lockdep: no reentrant acquisition", __FILE__, __LINE__,
                  "mutex " + describe(level_, name_) +
                      " is already held by this thread");
    }
  }
  if (tl_depth > 0) {
    const HeldLock& top = tl_held[tl_depth - 1];
    if (static_cast<std::uint16_t>(level_) <=
        static_cast<std::uint16_t>(top.level)) {
      check::fail(
          "lockdep: lock-order inversion", __FILE__, __LINE__,
          "acquiring " + describe(level_, name_) + " while holding " +
              describe(top.level, top.name) +
              "; levels must strictly increase (see check/lock_order.hpp)");
    }
  }
  if (tl_depth >= kMaxHeld) {
    check::fail("lockdep: held-lock stack overflow", __FILE__, __LINE__,
                "more than " + std::to_string(kMaxHeld) +
                    " locks held by one thread");
  }
}

void Mutex::post_lock() { tl_held[tl_depth++] = HeldLock{this, level_, name_}; }

void Mutex::pre_unlock() {
  // Out-of-order release is legal (only acquisition order can
  // deadlock); search from the innermost entry.
  for (int i = tl_depth - 1; i >= 0; --i) {
    if (tl_held[i].mu == this) {
      for (int j = i; j < tl_depth - 1; ++j) tl_held[j] = tl_held[j + 1];
      --tl_depth;
      return;
    }
  }
  check::fail("lockdep: unlock of unheld mutex", __FILE__, __LINE__,
              "mutex " + describe(level_, name_) +
                  " is not held by this thread");
}

}  // namespace zkdet

#endif  // ZKDET_CHECKED
