// Annotated mutex wrappers: the only locking primitives allowed in
// src/ outside src/check/ (enforced by the raw-mutex lint rule).
//
// Two layers of checking ride on the same API:
//
//   compile time  zkdet::Mutex is a Clang TSA capability and
//                 MutexLock/UniqueLock are scoped capabilities, so a
//                 clang++ -Wthread-safety build proves that every
//                 ZKDET_GUARDED_BY field is only touched under its
//                 lock (scripts/ci.sh `analysis` stage).
//
//   run time      under -DZKDET_CHECKED=ON every Mutex carries a
//                 LockLevel from check/lock_order.hpp and lockdep
//                 keeps a thread-local held-lock stack: acquiring a
//                 level <= the innermost held level (an order
//                 inversion), re-acquiring a held mutex, or unlocking
//                 a mutex the thread does not hold all route through
//                 the ZKDET_CHECK failure handler — deterministic
//                 failures instead of timing-dependent deadlocks.
//
// Release builds compile lockdep out entirely: Mutex is layout- and
// cost-identical to std::mutex (static_asserted in test_lockdep.cpp).
//
// Lockdep validates BEFORE touching the underlying mutex, so a
// throwing failure handler (ScopedThrowHandler) leaves the mutex
// unlocked and the test process consistent.
#pragma once

#include <condition_variable>
#include <mutex>

#include "check/lock_order.hpp"
#include "check/thread_annotations.hpp"

namespace zkdet {

class ZKDET_CAPABILITY("mutex") Mutex {
 public:
  // `name` is kept for lockdep diagnostics in checked builds and
  // ignored otherwise; pass the guarded field, e.g. {"txpool.mu_"}.
  explicit Mutex(check::LockLevel level, const char* name = "") noexcept
#ifdef ZKDET_CHECKED
      : level_(level), name_(name)
#endif
  {
    (void)level;
    (void)name;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ZKDET_ACQUIRE() {
#ifdef ZKDET_CHECKED
    pre_lock();
#endif
    m_.lock();
#ifdef ZKDET_CHECKED
    post_lock();
#endif
  }

  void unlock() ZKDET_RELEASE() {
#ifdef ZKDET_CHECKED
    pre_unlock();
#endif
    m_.unlock();
  }

 private:
  friend class UniqueLock;
  friend class CondVar;

#ifdef ZKDET_CHECKED
  // Defined in mutex.cpp; maintain the thread-local held-lock stack.
  void pre_lock();
  void post_lock();
  void pre_unlock();
#endif

  std::mutex m_;
#ifdef ZKDET_CHECKED
  check::LockLevel level_;
  const char* name_;
#endif
};

// lock_guard analogue. Scoped capability so TSA treats the guarded
// region as holding the mutex.
class ZKDET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ZKDET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ZKDET_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// unique_lock analogue for condition-variable waits. Always owns the
// lock between construction and destruction except while blocked
// inside CondVar::wait (which atomically releases and re-acquires the
// underlying mutex; the lockdep held-stack is thread-local, so a
// blocked thread keeping its entry is sound — it cannot acquire
// anything while suspended).
class ZKDET_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ZKDET_ACQUIRE(mu) : mu_(mu) {
#ifdef ZKDET_CHECKED
    mu_.pre_lock();
#endif
    lk_ = std::unique_lock<std::mutex>(mu_.m_);
#ifdef ZKDET_CHECKED
    mu_.post_lock();
#endif
  }
  ~UniqueLock() ZKDET_RELEASE() {
#ifdef ZKDET_CHECKED
    mu_.pre_unlock();
#endif
    // lk_ releases the underlying mutex in its own destructor.
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

// condition_variable analogue. No predicate overload on purpose:
// callers write `while (!cond) cv.wait(lk);` so the guarded reads in
// the condition are syntactically inside the locked scope and TSA can
// see them.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Caller must hold `lk` (enforced by TSA and by
  // std::condition_variable's own precondition).
  void wait(UniqueLock& lk) ZKDET_REQUIRES(lk.mu_) { cv_.wait(lk.lk_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

#ifndef ZKDET_CHECKED
// Zero-cost fast path: without lockdep the wrapper is exactly a
// std::mutex (also checked from outside the class in test_lockdep.cpp).
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release zkdet::Mutex must stay layout-compatible");
#endif

}  // namespace zkdet
