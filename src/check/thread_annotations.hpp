// Clang Thread Safety Analysis attribute macros.
//
// These wrap the `capability`-family attributes so annotated code
// compiles everywhere: under clang the attributes feed -Wthread-safety
// (compile-time proof of lock discipline); under GCC and MSVC every
// macro expands to nothing. The annotation surface is the zkdet::Mutex
// family in check/mutex.hpp — do not annotate raw std primitives (the
// raw-mutex lint rule bans them outside src/check anyway).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define ZKDET_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ZKDET_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// On a class: instances are capabilities (lockable objects).
#define ZKDET_CAPABILITY(x) ZKDET_THREAD_ANNOTATION_(capability(x))

// On a class: RAII object that acquires a capability for its lifetime.
#define ZKDET_SCOPED_CAPABILITY ZKDET_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: reads/writes require holding the named capability.
#define ZKDET_GUARDED_BY(x) ZKDET_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer member: the pointed-to data is guarded (the pointer
// itself is not).
#define ZKDET_PT_GUARDED_BY(x) ZKDET_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: caller must hold the capability (and keeps holding it).
#define ZKDET_REQUIRES(...) \
  ZKDET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the capability.
#define ZKDET_ACQUIRE(...) \
  ZKDET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ZKDET_RELEASE(...) \
  ZKDET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// On a function: acquires the capability iff it returns `b`.
#define ZKDET_TRY_ACQUIRE(b, ...) \
  ZKDET_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

// On a function: caller must NOT hold the capability (deadlock guard
// for functions that acquire it themselves).
#define ZKDET_EXCLUDES(...) ZKDET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: asserts the capability is held without acquiring it
// (runtime-checked entry points).
#define ZKDET_ASSERT_CAPABILITY(x) \
  ZKDET_THREAD_ANNOTATION_(assert_capability(x))

// On a mutex member: declared acquisition order relative to another
// mutex (coarse-grained ordering is enforced at runtime by lockdep;
// these document intra-class order where it matters).
#define ZKDET_ACQUIRED_BEFORE(...) \
  ZKDET_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ZKDET_ACQUIRED_AFTER(...) \
  ZKDET_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// On a function: opt out of analysis. Reserved for the wrapper
// internals and reviewed exceptions; pair with a justification comment.
#define ZKDET_NO_THREAD_SAFETY_ANALYSIS \
  ZKDET_THREAD_ANNOTATION_(no_thread_safety_analysis)

// On a function: returns a reference to the named capability.
#define ZKDET_RETURN_CAPABILITY(x) ZKDET_THREAD_ANNOTATION_(lock_returned(x))
