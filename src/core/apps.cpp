#include "core/apps.hpp"

#include "check/check.hpp"
#include <cmath>

namespace zkdet::core {

using gadgets::FixOps;
using gadgets::fix_encode;

// --- Logistic regression ---

LrDataset LrDataset::synthesize(std::size_t n, std::size_t k,
                                crypto::Drbg& rng) {
  LrDataset d;
  d.n = n;
  d.k = k;
  d.x.reserve(n * k);
  d.y.reserve(n);
  // Ground-truth separator with small noise.
  std::vector<double> w_true(k);
  const auto unit = [&rng] {
    return (static_cast<double>(rng() % 20001) - 10000.0) / 10000.0;
  };
  for (auto& w : w_true) w = unit();
  for (std::size_t i = 0; i < n; ++i) {
    double dot = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const double xi = unit();
      d.x.push_back(xi);
      dot += w_true[j] * xi;
    }
    const double noise = unit() * 0.1;
    d.y.push_back(dot + noise > 0 ? 1.0 : 0.0);
  }
  return d;
}

std::vector<Fr> LrDataset::encode(const FixParams& p) const {
  std::vector<Fr> out;
  out.reserve(n * (k + 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) out.push_back(fix_encode(x[i * k + j], p));
    out.push_back(fix_encode(y[i], p));
  }
  return out;
}

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

std::vector<double> lr_gradient(const LrDataset& data,
                                const std::vector<double>& beta) {
  std::vector<double> grad(data.k + 1, 0.0);
  for (std::size_t i = 0; i < data.n; ++i) {
    double z = beta[0];
    for (std::size_t j = 0; j < data.k; ++j) z += beta[j + 1] * data.x[i * data.k + j];
    const double r = sigmoid(z) - data.y[i];
    grad[0] += r;
    for (std::size_t j = 0; j < data.k; ++j) grad[j + 1] += r * data.x[i * data.k + j];
  }
  for (auto& g : grad) g /= static_cast<double>(data.n);
  return grad;
}

}  // namespace

LrModel LrModel::train(const LrDataset& data, double alpha,
                       std::size_t iterations) {
  LrModel m;
  m.beta.assign(data.k + 1, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    const std::vector<double> grad = lr_gradient(data, m.beta);
    for (std::size_t j = 0; j <= data.k; ++j) m.beta[j] -= alpha * grad[j];
  }
  return m;
}

double LrModel::loss(const LrDataset& data) const {
  double total = 0;
  for (std::size_t i = 0; i < data.n; ++i) {
    double z = beta[0];
    for (std::size_t j = 0; j < data.k; ++j) z += beta[j + 1] * data.x[i * data.k + j];
    const double h = std::min(std::max(sigmoid(z), 1e-9), 1.0 - 1e-9);
    total += data.y[i] > 0.5 ? -std::log(h) : -std::log(1.0 - h);
  }
  return total / static_cast<double>(data.n);
}

double LrModel::accuracy(const LrDataset& data) const {
  std::size_t hit = 0;
  for (std::size_t i = 0; i < data.n; ++i) {
    double z = beta[0];
    for (std::size_t j = 0; j < data.k; ++j) z += beta[j + 1] * data.x[i * data.k + j];
    if ((z > 0) == (data.y[i] > 0.5)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(data.n);
}

TransformGadget lr_step_gadget(std::size_t n, std::size_t k, double alpha,
                               LrModel model, double epsilon,
                               FixParams params) {
  return [n, k, alpha, model = std::move(model), epsilon,
          params](CircuitBuilder& bld,
                  std::span<const Wire> source) -> std::vector<Wire> {
    ZKDET_CHECK(source.size() == n * (k + 1),
                "lr_step: source must be n rows of k features + label");
    FixOps fx(bld, params);

    // beta enters as auxiliary witness (the prover's current iterate).
    std::vector<Wire> beta(k + 1);
    for (std::size_t j = 0; j <= k; ++j) {
      beta[j] = bld.add_witness(fix_encode(model.beta[j], params));
    }

    // Residuals r_i = sigmoid(beta0 + sum_j beta_j x_ij) - y_i.
    std::vector<Wire> residuals(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const Wire> xi = source.subspan(i * (k + 1), k);
      const Wire yi = source[i * (k + 1) + k];
      std::vector<Wire> terms(xi.begin(), xi.end());
      std::vector<Wire> betas(beta.begin() + 1, beta.end());
      Wire z = fx.inner(betas, terms);
      z = fx.add(z, beta[0]);
      residuals[i] = fx.sub(fx.sigmoid(z), yi);
    }

    // Gradient-descent update: beta'_j = beta_j - (alpha/n) sum_i x_ij r_i
    // (the intercept column is implicitly all-ones).
    const double scale = alpha / static_cast<double>(n);
    std::vector<Wire> beta_next(k + 1);
    beta_next[0] = fx.sub(beta[0], fx.mul_const(bld.sum(residuals), scale));
    for (std::size_t j = 1; j <= k; ++j) {
      std::vector<Wire> xcol(n);
      for (std::size_t i = 0; i < n; ++i) xcol[i] = source[i * (k + 1) + (j - 1)];
      beta_next[j] = fx.sub(beta[j], fx.mul_const(fx.inner(xcol, residuals), scale));
    }

    // Convergence: ||beta' - beta||^2 <= epsilon.
    Wire dist2 = bld.zero();
    for (std::size_t j = 0; j <= k; ++j) {
      const Wire dj = fx.sub(beta_next[j], beta[j]);
      dist2 = fx.add(dist2, fx.square(dj));
    }
    const Wire eps = fx.constant(epsilon);
    const Wire diff = fx.sub(eps, dist2);
    fx.assert_nonneg(diff);

    return beta_next;
  };
}

// --- Transformer ---

TransformerWeights TransformerWeights::random(std::size_t d, std::size_t h,
                                              crypto::Drbg& rng) {
  TransformerWeights w;
  w.d = d;
  w.h = h;
  const auto unit = [&rng] {
    return (static_cast<double>(rng() % 2001) - 1000.0) / 2000.0;
  };
  const auto fill = [&](std::vector<double>& v, std::size_t len) {
    v.resize(len);
    for (auto& x : v) x = unit();
  };
  fill(w.wq, d * d);
  fill(w.wk, d * d);
  fill(w.wv, d * d);
  fill(w.w1, d * h);
  fill(w.b1, h);
  fill(w.w2, h * d);
  fill(w.b2, d);
  return w;
}

std::size_t TransformerWeights::parameter_count() const {
  return wq.size() + wk.size() + wv.size() + w1.size() + b1.size() +
         w2.size() + b2.size();
}

namespace {

// PL-exp used by the circuit; mirrored natively for expected outputs.
double pl_exp(double t) {
  // clamp to the gadget's domain
  const double x0 = -12.0, x1 = 4.0;
  const double step = (x1 - x0) / 64.0;
  double x = std::min(std::max(t, x0), x1 - 1e-12);
  const double seg = std::floor((x - x0) / step);
  const double kx = x0 + seg * step;
  const double y0 = std::exp(kx);
  const double slope = (std::exp(kx + step) - y0) / step;
  return y0 + slope * (x - kx);
}

}  // namespace

std::vector<double> transformer_forward(const TransformerWeights& w,
                                        const std::vector<double>& input,
                                        std::size_t seq_len) {
  const std::size_t d = w.d;
  ZKDET_CHECK(input.size() == seq_len * d,
              "transformer_forward: input is seq_len x d");
  const auto matvec = [&](const std::vector<double>& m,
                          const double* v, std::size_t rows,
                          std::size_t cols, const double* bias) {
    std::vector<double> out(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c) {
      double acc = bias != nullptr ? bias[c] : 0.0;
      for (std::size_t r = 0; r < rows; ++r) acc += v[r] * m[r * cols + c];
      out[c] = acc;
    }
    return out;
  };
  std::vector<std::vector<double>> q(seq_len), kk(seq_len), v(seq_len);
  for (std::size_t i = 0; i < seq_len; ++i) {
    q[i] = matvec(w.wq, &input[i * d], d, d, nullptr);
    kk[i] = matvec(w.wk, &input[i * d], d, d, nullptr);
    v[i] = matvec(w.wv, &input[i * d], d, d, nullptr);
  }
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
  std::vector<double> out(seq_len * d, 0.0);
  for (std::size_t i = 0; i < seq_len; ++i) {
    std::vector<double> e(seq_len);
    double denom = 0;
    for (std::size_t j = 0; j < seq_len; ++j) {
      double dot = 0;
      for (std::size_t c = 0; c < d; ++c) dot += q[i][c] * kk[j][c];
      e[j] = pl_exp(dot * inv_sqrt_d);
      denom += e[j];
    }
    std::vector<double> z(d, 0.0);
    for (std::size_t j = 0; j < seq_len; ++j) {
      const double a = e[j] / denom;
      for (std::size_t c = 0; c < d; ++c) z[c] += a * v[j][c];
    }
    // FFN
    std::vector<double> u = matvec(w.w1, z.data(), d, w.h, w.b1.data());
    for (auto& x : u) x = std::max(0.0, x);
    const std::vector<double> o = matvec(w.w2, u.data(), w.h, d, w.b2.data());
    for (std::size_t c = 0; c < d; ++c) out[i * d + c] = o[c];
  }
  return out;
}

TransformGadget transformer_gadget(std::size_t seq_len, TransformerWeights w,
                                   FixParams params) {
  return [seq_len, w = std::move(w),
          params](CircuitBuilder& bld,
                  std::span<const Wire> source) -> std::vector<Wire> {
    const std::size_t d = w.d;
    ZKDET_CHECK(source.size() == seq_len * d,
                "transformer gadget: source is seq_len x d");
    FixOps fx(bld, params);

    // Column c of a d x cols matrix as a double span.
    const auto col = [](const std::vector<double>& m, std::size_t rows,
                        std::size_t cols, std::size_t c) {
      std::vector<double> out(rows);
      for (std::size_t r = 0; r < rows; ++r) out[r] = m[r * cols + c];
      return out;
    };

    std::vector<std::vector<Wire>> q(seq_len), kk(seq_len), v(seq_len);
    for (std::size_t i = 0; i < seq_len; ++i) {
      const std::span<const Wire> s_i = source.subspan(i * d, d);
      q[i].resize(d);
      kk[i].resize(d);
      v[i].resize(d);
      for (std::size_t c = 0; c < d; ++c) {
        q[i][c] = fx.affine_const(s_i, col(w.wq, d, d, c), 0.0);
        kk[i][c] = fx.affine_const(s_i, col(w.wk, d, d, c), 0.0);
        v[i][c] = fx.affine_const(s_i, col(w.wv, d, d, c), 0.0);
      }
    }

    const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
    std::vector<Wire> out;
    out.reserve(seq_len * d);
    for (std::size_t i = 0; i < seq_len; ++i) {
      // attention scores -> PL exp -> normalized weights
      std::vector<Wire> e(seq_len);
      for (std::size_t j = 0; j < seq_len; ++j) {
        const Wire dot = fx.inner(q[i], kk[j]);
        e[j] = fx.exp(fx.mul_const(dot, inv_sqrt_d));
      }
      Wire denom = e[0];
      for (std::size_t j = 1; j < seq_len; ++j) denom = fx.add(denom, e[j]);
      std::vector<Wire> a(seq_len);
      for (std::size_t j = 0; j < seq_len; ++j) {
        a[j] = fx.div_nonneg(e[j], denom);
      }
      // z = sum_j a_j * v_j
      std::vector<Wire> z(d);
      for (std::size_t c = 0; c < d; ++c) {
        std::vector<Wire> vcol(seq_len);
        for (std::size_t j = 0; j < seq_len; ++j) vcol[j] = v[j][c];
        z[c] = fx.inner(a, vcol);
      }
      // FFN: relu(z W1 + b1) W2 + b2
      std::vector<Wire> u(w.h);
      for (std::size_t c = 0; c < w.h; ++c) {
        u[c] = fx.relu(fx.affine_const(z, col(w.w1, d, w.h, c), w.b1[c]));
      }
      for (std::size_t c = 0; c < d; ++c) {
        out.push_back(fx.affine_const(u, col(w.w2, w.h, d, c), w.b2[c]));
      }
    }
    return out;
  };
}

}  // namespace zkdet::core
