// Data-processing applications (paper IV-E): proofs for model training.
//
// Both applications plug into TransformationProtocol::process() as
// TransformGadgets over fixed-point-encoded source datasets, turning a
// trained model into a sellable derived data asset whose provenance
// proof shows it was really produced from the source dataset.
//
// Logistic regression (IV-E.1): the source encodes n points
// [x_{i,1..k}, y_i]; the derived asset is the parameter vector
// beta' = (beta_0..beta_k) after one verified gradient-descent step from
// the prover's beta, together with the convergence check
// ||beta' - beta||^2 <= epsilon — the paper's criterion that only the
// last two iterates need to be proved. The in-circuit sigmoid is the
// clamped piecewise-linear gadget (documented substitution).
//
// Transformer (IV-E.2): the source encodes L token embeddings of width
// d; the derived asset is the output of one encoder block — scaled
// dot-product attention (softmax via the PL exp gadget and a range-
// checked division) followed by a two-layer ReLU feed-forward network —
// under the prover's (constant) weight matrices.
#pragma once

#include "core/circuits.hpp"
#include "crypto/rng.hpp"
#include "gadgets/fixed_point.hpp"

namespace zkdet::core {

using gadgets::FixParams;

// --- Logistic regression ---

struct LrDataset {
  std::size_t n = 0;  // points
  std::size_t k = 0;  // features
  std::vector<double> x;  // n*k row-major
  std::vector<double> y;  // n labels in {0,1}

  // Synthesizes a linearly-separable-ish dataset (the paper uses a
  // proprietary tabular set; substitution documented in DESIGN.md).
  static LrDataset synthesize(std::size_t n, std::size_t k,
                              crypto::Drbg& rng);

  // Fixed-point field encoding [x_i1..x_ik, y_i] per point.
  [[nodiscard]] std::vector<Fr> encode(const FixParams& p) const;
};

struct LrModel {
  std::vector<double> beta;  // k+1 params, beta[0] = intercept

  // Plain gradient-descent training (native side).
  static LrModel train(const LrDataset& data, double alpha,
                       std::size_t iterations);
  [[nodiscard]] double loss(const LrDataset& data) const;
  [[nodiscard]] double accuracy(const LrDataset& data) const;
};

// Transform gadget proving one GD step from `model` over the encoded
// dataset, with ||step||^2 <= epsilon. Output wires: beta' (k+1 values).
TransformGadget lr_step_gadget(std::size_t n, std::size_t k, double alpha,
                               LrModel model, double epsilon,
                               FixParams params);

// --- Transformer encoder block ---

struct TransformerWeights {
  std::size_t d = 0;  // model dim
  std::size_t h = 0;  // FFN hidden dim
  std::vector<double> wq, wk, wv;  // d*d row-major
  std::vector<double> w1, b1;      // d*h, h
  std::vector<double> w2, b2;      // h*d, d

  static TransformerWeights random(std::size_t d, std::size_t h,
                                   crypto::Drbg& rng);
  [[nodiscard]] std::size_t parameter_count() const;
};

// Native forward pass mirroring the circuit semantics (PL exp, clamped).
std::vector<double> transformer_forward(const TransformerWeights& w,
                                        const std::vector<double>& input,
                                        std::size_t seq_len);

// Transform gadget for one encoder block over L embeddings of width d
// (source length L*d). Output wires: L*d derived values.
TransformGadget transformer_gadget(std::size_t seq_len, TransformerWeights w,
                                   FixParams params);

}  // namespace zkdet::core
