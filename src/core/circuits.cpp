#include "core/circuits.hpp"

#include "check/check.hpp"

#include "crypto/poseidon.hpp"

namespace zkdet::core {

using gadgets::mimc_ctr_encrypt_gadget;
using gadgets::poseidon_commit_gadget;
using gadgets::poseidon_hash_gadget;

Fr commit_dataset(const std::vector<Fr>& data, const Fr& blinder) {
  return crypto::PoseidonCommitment::commit_with(data, blinder);
}

Fr commit_key(const Fr& key, const Fr& blinder) {
  return crypto::PoseidonCommitment::commit_with({key}, blinder);
}

Fr hash_key(const Fr& k_v) {
  return crypto::poseidon_hash({k_v}, kKeyHashTag);
}

namespace {

// Allocates witness wires for a dataset.
std::vector<Wire> witness_wires(CircuitBuilder& bld,
                                const std::vector<Fr>& data) {
  std::vector<Wire> out;
  out.reserve(data.size());
  for (const Fr& d : data) out.push_back(bld.add_witness(d));
  return out;
}

// Binds `computed` to a fresh public input carrying the same value.
void expose(CircuitBuilder& bld, Wire computed) {
  const Wire pub = bld.add_public_input(bld.value(computed));
  bld.assert_equal(pub, computed);
}

}  // namespace

CircuitBuilder build_encryption_circuit(const std::vector<Fr>& plain,
                                        const Fr& key, const Fr& nonce,
                                        const Fr& blinder) {
  CircuitBuilder bld;
  const Wire nonce_w = bld.add_public_input(nonce);
  const std::vector<Wire> plain_w = witness_wires(bld, plain);
  const Wire key_w = bld.add_witness(key);
  const Wire blinder_w = bld.add_witness(blinder);

  const Wire commitment = poseidon_commit_gadget(bld, plain_w, blinder_w);
  expose(bld, commitment);

  const std::vector<Wire> ct =
      mimc_ctr_encrypt_gadget(bld, key_w, nonce_w, plain_w);
  for (const Wire c : ct) expose(bld, c);
  return bld;
}

CircuitBuilder build_duplication_circuit(const std::vector<Fr>& source,
                                         const Fr& o_s, const Fr& o_d) {
  CircuitBuilder bld;
  const std::vector<Wire> s_w = witness_wires(bld, source);
  const Wire os_w = bld.add_witness(o_s);
  const Wire od_w = bld.add_witness(o_d);
  // d_i = s_i is enforced by using the same wires in both commitments
  // (n = m structurally).
  expose(bld, poseidon_commit_gadget(bld, s_w, os_w));
  expose(bld, poseidon_commit_gadget(bld, s_w, od_w));
  return bld;
}

CircuitBuilder build_aggregation_circuit(
    const std::vector<std::vector<Fr>>& sources, const std::vector<Fr>& o_s,
    const Fr& o_d) {
  ZKDET_CHECK(sources.size() == o_s.size() && !sources.empty(),
              "aggregation: one blinder per non-empty source list");
  CircuitBuilder bld;
  std::vector<Wire> all;
  for (std::size_t k = 0; k < sources.size(); ++k) {
    const std::vector<Wire> s_w = witness_wires(bld, sources[k]);
    const Wire ok_w = bld.add_witness(o_s[k]);
    expose(bld, poseidon_commit_gadget(bld, s_w, ok_w));
    all.insert(all.end(), s_w.begin(), s_w.end());
  }
  // m = sum n_k and d_{offset+j} = s_kj hold structurally: the derived
  // commitment closes over exactly the concatenated source wires.
  const Wire od_w = bld.add_witness(o_d);
  expose(bld, poseidon_commit_gadget(bld, all, od_w));
  return bld;
}

CircuitBuilder build_partition_circuit(const std::vector<Fr>& source,
                                       const std::vector<std::size_t>& sizes,
                                       const Fr& o_s,
                                       const std::vector<Fr>& o_d) {
  ZKDET_CHECK(sizes.size() == o_d.size(),
              "partition: one blinder per part");
  std::size_t total = 0;
  for (const std::size_t s : sizes) {
    ZKDET_CHECK(s > 0, "empty parts are not a valid partition");
    total += s;
  }
  ZKDET_CHECK(total == source.size(), "partition must be exhaustive");

  CircuitBuilder bld;
  const std::vector<Wire> s_w = witness_wires(bld, source);
  const Wire os_w = bld.add_witness(o_s);
  expose(bld, poseidon_commit_gadget(bld, s_w, os_w));
  // Contiguous split: exhaustive and mutually exclusive by construction.
  std::size_t off = 0;
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    const std::span<const Wire> part(s_w.data() + off, sizes[k]);
    const Wire ok_w = bld.add_witness(o_d[k]);
    expose(bld, poseidon_commit_gadget(bld, part, ok_w));
    off += sizes[k];
  }
  return bld;
}

CircuitBuilder build_processing_circuit(const std::vector<Fr>& source,
                                        const Fr& o_s, const Fr& o_d,
                                        const TransformGadget& transform) {
  CircuitBuilder bld;
  const std::vector<Wire> s_w = witness_wires(bld, source);
  const Wire os_w = bld.add_witness(o_s);
  expose(bld, poseidon_commit_gadget(bld, s_w, os_w));
  const std::vector<Wire> d_w = transform(bld, s_w);
  const Wire od_w = bld.add_witness(o_d);
  expose(bld, poseidon_commit_gadget(bld, d_w, od_w));
  return bld;
}

CircuitBuilder build_exchange_data_circuit(const std::vector<Fr>& plain,
                                           const Fr& key, const Fr& nonce,
                                           const Fr& blinder,
                                           const Predicate& phi) {
  CircuitBuilder bld;
  const Wire nonce_w = bld.add_public_input(nonce);
  const std::vector<Wire> plain_w = witness_wires(bld, plain);
  const Wire key_w = bld.add_witness(key);
  const Wire blinder_w = bld.add_witness(blinder);

  if (phi) phi(bld, plain_w);

  expose(bld, poseidon_commit_gadget(bld, plain_w, blinder_w));
  const std::vector<Wire> ct =
      mimc_ctr_encrypt_gadget(bld, key_w, nonce_w, plain_w);
  for (const Wire c : ct) expose(bld, c);
  return bld;
}

CircuitBuilder build_disclosure_circuit(const std::vector<Fr>& plain,
                                        const Fr& blinder, std::size_t index) {
  ZKDET_CHECK(index < plain.size(), "disclosure index out of range");
  CircuitBuilder bld;
  const std::vector<Wire> plain_w = witness_wires(bld, plain);
  const Wire blinder_w = bld.add_witness(blinder);
  expose(bld, poseidon_commit_gadget(bld, plain_w, blinder_w));
  expose(bld, plain_w[index]);
  return bld;
}

CircuitBuilder build_key_circuit(const Fr& key, const Fr& key_blinder,
                                 const Fr& k_v) {
  CircuitBuilder bld;
  const Wire k_w = bld.add_witness(key);
  const Wire o_w = bld.add_witness(key_blinder);
  const Wire kv_w = bld.add_witness(k_v);

  // k_c = k + k_v (public, first)
  const Wire kc = bld.add(k_w, kv_w);
  expose(bld, kc);
  // c = Commit(k, o)
  const Wire kw_arr[1] = {k_w};
  expose(bld, poseidon_commit_gadget(bld, kw_arr, o_w));
  // h_v = H(k_v)
  const Wire kv_arr[1] = {kv_w};
  expose(bld, poseidon_hash_gadget(bld, kv_arr, kKeyHashTag));
  return bld;
}

}  // namespace zkdet::core
