// The ZKDET relation circuits (paper IV-B, IV-D, IV-F).
//
// Each build_* function lays the relation into a CircuitBuilder with
// concrete values, producing both the constraint system (shape depends
// only on sizes) and the witness. Key generation uses an instance with
// placeholder values of the same sizes; proving uses the real ones.
//
// Public input orders are part of the protocol and are consumed by the
// on-chain verifier contracts:
//   pi_e  : nonce, c_s, ct[0..n)                      (encryption proof)
//   pi_t  : per formula, commitments in source->derived order
//   pi_p  : nonce, c_d, ct[0..n)                      (+ predicate consts)
//   pi_k  : k_c, c, h_v                               (key proof)
#pragma once

#include <functional>

#include "gadgets/builder.hpp"
#include "gadgets/hash_gadgets.hpp"

namespace zkdet::core {

using ff::Fr;
using gadgets::CircuitBuilder;
using gadgets::Wire;

// Domain tag for H(k_v) in the exchange protocol (must match the
// ZkcpArbiter / key-negotiation hashing).
inline constexpr std::uint64_t kKeyHashTag = 0x6b6579;  // "key"

// A predicate phi over the plaintext dataset: receives the dataset wires
// and must add constraints (paper III-C / IV-F). The trivial predicate
// adds none.
using Predicate = std::function<void(CircuitBuilder&, std::span<const Wire>)>;

// --- pi_e: proof of encryption ---
// statement: ct = MiMC-CTR_k(nonce, plain)  AND  c_s = Commit(plain, o)
// public:  nonce, c_s, ct[i]
// witness: plain[i], k, o
CircuitBuilder build_encryption_circuit(const std::vector<Fr>& plain,
                                        const Fr& key, const Fr& nonce,
                                        const Fr& blinder);

// --- pi_t: duplication (paper IV-D.1) ---
// public: c_s, c_d; witness: S (= D), o_s, o_d
CircuitBuilder build_duplication_circuit(const std::vector<Fr>& source,
                                         const Fr& o_s, const Fr& o_d);

// --- pi_t: aggregation (paper IV-D.2) ---
// public: c_s[k] for each source, then c_d
// witness: sources, blinders; D = concat(S_1..S_x) enforced by sharing
// wires between source commitments and the derived commitment.
CircuitBuilder build_aggregation_circuit(
    const std::vector<std::vector<Fr>>& sources, const std::vector<Fr>& o_s,
    const Fr& o_d);

// --- pi_t: partition (paper IV-D.3) ---
// public: c_s, then c_d[k] for each part
// witness: S, blinders. Parts are contiguous, exhaustive and mutually
// exclusive by construction (each part size must be nonzero).
CircuitBuilder build_partition_circuit(const std::vector<Fr>& source,
                                       const std::vector<std::size_t>& sizes,
                                       const Fr& o_s,
                                       const std::vector<Fr>& o_d);

// --- pi_t: processing (paper IV-D.4) ---
// public: c_s, c_d (plus whatever the transform adds)
// witness: S, D, blinders, transform-internal aux.
// `transform` receives the source wires and must return the derived
// wires, adding the constraints that tie them together.
using TransformGadget = std::function<std::vector<Wire>(
    CircuitBuilder&, std::span<const Wire> source)>;
CircuitBuilder build_processing_circuit(const std::vector<Fr>& source,
                                        const Fr& o_s, const Fr& o_d,
                                        const TransformGadget& transform);

// --- pi_p: exchange data-validation proof (paper IV-F phase 1) ---
// statement: phi(D)=1 AND ct = Enc(k, D) AND Open(D, c_d, o_d)=1
// public: nonce, c_d, ct[i]
CircuitBuilder build_exchange_data_circuit(const std::vector<Fr>& plain,
                                           const Fr& key, const Fr& nonce,
                                           const Fr& blinder,
                                           const Predicate& phi);

// --- pi_k: key-negotiation proof (paper IV-F phase 2) ---
// statement: Open(k, c, o)=1 AND h_v = H(k_v) AND k_c = k + k_v
// public: k_c, c, h_v; witness: k, o, k_v
CircuitBuilder build_key_circuit(const Fr& key, const Fr& key_blinder,
                                 const Fr& k_v);

// --- pi_s: sample-disclosure proof (marketplace extension) ---
// The seller reveals one plaintext entry and proves it belongs to the
// committed dataset: Open(D, c_d, o)=1 AND D[index] = value. The index
// is a circuit constant (part of the shape); public: c_d, value.
// Lets buyers inspect sample rows before paying without the seller
// being able to show rows from a different dataset.
CircuitBuilder build_disclosure_circuit(const std::vector<Fr>& plain,
                                        const Fr& blinder, std::size_t index);

// Native-side helpers shared with the circuits.
Fr commit_dataset(const std::vector<Fr>& data, const Fr& blinder);
Fr commit_key(const Fr& key, const Fr& blinder);
Fr hash_key(const Fr& k_v);

}  // namespace zkdet::core
