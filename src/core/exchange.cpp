#include "core/exchange.hpp"

#include "chain/claim.hpp"
#include "crypto/mimc.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"

namespace zkdet::core {

namespace {

std::string pi_p_shape(const std::string& predicate_tag, std::size_t n) {
  return "pi_p/" + predicate_tag + "/" + std::to_string(n);
}

}  // namespace

std::optional<Offer> KeySecureExchange::make_offer(
    const OwnedAsset& asset, const Predicate& phi,
    const std::string& predicate_tag) {
  gadgets::CircuitBuilder bld = build_exchange_data_circuit(
      asset.plain, asset.key, asset.nonce, asset.data_blinder, phi);
  const std::string shape_id = pi_p_shape(predicate_tag, asset.plain.size());
  auto proof = sys_.prove(shape_id, bld.cs(), bld.witness());
  if (!proof) return std::nullopt;
  Offer offer;
  offer.token_id = asset.token_id;
  offer.shape_id = shape_id;
  offer.predicate_tag = predicate_tag;
  offer.proof_p = *proof;
  return offer;
}

bool KeySecureExchange::verify_offer(const Offer& offer) const {
  // Fail-point: the buyer client aborts mid-verification (retryable;
  // nothing on chain has been touched).
  if (fault::fire(fault::points::kExchangeVerify)) return false;
  const auto info = sys_.nft().token(offer.token_id);
  const auto* enc = transform_.encryption_record(offer.token_id);
  if (!info || enc == nullptr) return false;
  if (enc->data_cid.as_field() != info->uri) return false;
  const auto blob = sys_.storage().get(enc->data_cid);
  if (!blob) return false;
  const auto ct = storage::blob_to_dataset(*blob);
  if (!ct) return false;

  const plonk::KeyPairResult* keys = sys_.find_keys(offer.shape_id);
  if (keys == nullptr) return false;
  std::vector<Fr> publics;
  publics.reserve(ct->size() + 2);
  publics.push_back(enc->nonce);
  publics.push_back(info->data_commitment);
  publics.insert(publics.end(), ct->begin(), ct->end());
  // zkdet-lint: allow(unbatched-verify) reviewed: off-chain buyer check
  return plonk::verify(keys->vk, publics, offer.proof_p);
}

std::optional<BuyerSession> KeySecureExchange::lock_payment(
    const crypto::KeyPair& buyer, const Offer& offer, std::uint64_t amount,
    std::uint64_t timeout_blocks, const chain::Address& seller) {
  return lock_payment_with(buyer, offer, amount, timeout_blocks,
                           sys_.rng().random_fr(), seller);
}

std::optional<BuyerSession> KeySecureExchange::lock_payment_with(
    const crypto::KeyPair& buyer, const Offer& offer, std::uint64_t amount,
    std::uint64_t timeout_blocks, const Fr& k_v,
    const chain::Address& seller) {
  // Fail-point: the buyer client dies before issuing the lock tx. No
  // funds have moved; the step is safely retryable.
  if (fault::fire(fault::points::kExchangeLock)) return std::nullopt;
  const auto info = sys_.nft().token(offer.token_id);
  if (!info) return std::nullopt;
  const chain::Address pay_seller = seller.empty() ? info->owner : seller;

  BuyerSession session;
  session.token_id = offer.token_id;
  session.k_v = k_v;
  const Fr h_v = hash_key(session.k_v);

  // Pool-routed, shard-routed: the lock lands on the arbiter shard that
  // owns this token id, and the declared access set lets non-conflicting
  // exchange txs (other shards, other buyers) batch in parallel.
  auto& arb = sys_.arbiter_for_token(offer.token_id);
  txpool::AccessSet access;
  access.write_contract(arb.address())
      .touch_account(crypto::address_of(buyer.pk))
      .touch_account(arb.address());
  const auto receipt = sys_.pool().call(
      buyer, "arbiter.lock",
      [&](chain::CallContext& ctx) {
        session.exchange_id = arb.lock(ctx, pay_seller, h_v,
                                       info->key_commitment, timeout_blocks);
      },
      std::move(access), /*value=*/amount, /*pay_to=*/arb.address());
  if (!receipt.success) return std::nullopt;
  return session;
}

std::optional<txpool::TxIntent> KeySecureExchange::make_settle_intent(
    const crypto::KeyPair& seller, const OwnedAsset& asset,
    std::uint64_t exchange_id, const Fr& k_v) {
  // Seller-side sanity: the buyer's k_v must hash to the on-chain h_v
  // (an honest seller aborts before proving otherwise — paper V-B).
  auto& arb = sys_.arbiter_for_exchange(exchange_id);
  const auto xinfo = arb.exchange(exchange_id);
  if (!xinfo || hash_key(k_v) != xinfo->h_v) return std::nullopt;
  if (xinfo->key_commitment != commit_key(asset.key, asset.key_blinder)) {
    return std::nullopt;  // exchange is not about this asset's key
  }

  const Fr k_c = asset.key + k_v;
  gadgets::CircuitBuilder bld =
      build_key_circuit(asset.key, asset.key_blinder, k_v);
  auto proof = sys_.prove("pi_k", bld.cs(), bld.witness());
  if (!proof) return std::nullopt;

  // The claim is the exact triple the closure hands to the verifier
  // contract, so the batch stage's folded verdict is consumed instead
  // of an inline pairing (the closure reads the proof back out of the
  // claim to keep the two byte-identical by construction).
  auto claim = std::make_shared<chain::ProofClaim>();
  claim->vk = &sys_.key_verifier().vk();
  claim->public_inputs = {k_c, xinfo->key_commitment, xinfo->h_v};
  claim->proof = *proof;

  // Settle pays the escrow out to the seller, so the access set covers
  // the shard's storage plus both balance legs of the transfer.
  txpool::AccessSet access;
  access.write_contract(arb.address())
      .touch_account(arb.address())
      .touch_account(xinfo->seller);
  auto& pool = sys_.pool();
  return txpool::make_intent(
      seller, pool.next_nonce(crypto::address_of(seller.pk)),
      "arbiter.settle",
      [arbp = &arb, exchange_id, k_c, claim](chain::CallContext& ctx) {
        arbp->settle(ctx, exchange_id, k_c, claim->proof);
      },
      std::move(access), /*value=*/0, /*pay_to=*/{},
      /*gas_limit=*/30'000'000, /*priority=*/0, claim);
}

bool KeySecureExchange::settle(const crypto::KeyPair& seller,
                               const OwnedAsset& asset,
                               std::uint64_t exchange_id, const Fr& k_v) {
  // Fail-point: the seller client dies before settling. The escrow is
  // untouched; the buyer's refund path guarantees liveness.
  if (fault::fire(fault::points::kExchangeSettle)) return false;
  auto intent = make_settle_intent(seller, asset, exchange_id, k_v);
  if (!intent) return false;
  auto res = sys_.pool().submit(std::move(*intent));
  if (!res.accepted) return false;
  auto& pool = sys_.pool();
  std::size_t rounds = pool.pending() + 2;
  while (!res.ticket->done() && rounds-- > 0) {
    if (pool.seal_next_batch() == 0 && !res.ticket->done()) break;
  }
  return res.ticket->done() && res.ticket->receipt.success;
}

std::vector<bool> KeySecureExchange::settle_batch(
    std::span<const SettleRequest> requests) {
  std::vector<bool> ok(requests.size(), false);
  std::vector<std::pair<std::size_t, txpool::TicketPtr>> tickets;
  auto& pool = sys_.pool();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SettleRequest& rq = requests[i];
    // Per-request fail-point: one dying seller client must not strand
    // the rest of the batch.
    if (fault::fire(fault::points::kExchangeSettle)) continue;
    if (rq.seller == nullptr || rq.asset == nullptr) continue;
    auto intent =
        make_settle_intent(*rq.seller, *rq.asset, rq.exchange_id, rq.k_v);
    if (!intent) continue;
    auto res = pool.submit(std::move(*intent));
    if (!res.accepted) continue;
    tickets.emplace_back(i, std::move(res.ticket));
  }
  // Pump to completion: conflict-free settles (distinct sellers on
  // distinct shards) seal together and share one folded pairing check;
  // conflicting ones spill into follow-up batches. Bounded like
  // TxPool::call — every productive pump shrinks the pool.
  std::size_t rounds = pool.pending() + 2;
  const auto all_done = [&] {
    for (const auto& [i, t] : tickets) {
      (void)i;
      if (!t->done()) return false;
    }
    return true;
  };
  while (!all_done() && rounds-- > 0) {
    if (pool.seal_next_batch() == 0 && !all_done()) break;
  }
  for (const auto& [i, t] : tickets) {
    ok[i] = t->done() && t->receipt.success;
  }
  return ok;
}

std::optional<std::vector<Fr>> KeySecureExchange::recover_data(
    const BuyerSession& session) const {
  // Fail-point: the buyer client dies while recovering. k_c stays
  // readable on-chain and k_v is persisted, so the step is idempotent.
  if (fault::fire(fault::points::kExchangeRecover)) return std::nullopt;
  const auto xinfo =
      sys_.arbiter_for_exchange(session.exchange_id).exchange(
          session.exchange_id);
  if (!xinfo || xinfo->state != chain::ExchangeState::kSettled) {
    return std::nullopt;
  }
  const Fr k = xinfo->k_c - session.k_v;

  const auto* enc = transform_.encryption_record(session.token_id);
  if (enc == nullptr) return std::nullopt;
  const auto blob = sys_.storage().get(enc->data_cid);
  if (!blob) return std::nullopt;
  const auto ct = storage::blob_to_dataset(*blob);
  if (!ct) return std::nullopt;
  return crypto::mimc_ctr_decrypt(k, enc->nonce, *ct);
}

bool KeySecureExchange::refund(const crypto::KeyPair& buyer,
                               std::uint64_t exchange_id) {
  // Fail-point: the buyer client dies before issuing refund.
  if (fault::fire(fault::points::kExchangeRefund)) return false;
  auto& arb = sys_.arbiter_for_exchange(exchange_id);
  const auto xinfo = arb.exchange(exchange_id);
  if (!xinfo) return false;
  txpool::AccessSet access;
  access.write_contract(arb.address())
      .touch_account(arb.address())
      .touch_account(xinfo->buyer);
  const auto receipt = sys_.pool().call(
      buyer, "arbiter.refund",
      [&](chain::CallContext& ctx) { arb.refund(ctx, exchange_id); },
      std::move(access));
  return receipt.success;
}

std::optional<KeySecureExchange::Sample> KeySecureExchange::disclose_sample(
    const OwnedAsset& asset, std::size_t index) {
  if (index >= asset.plain.size()) return std::nullopt;
  gadgets::CircuitBuilder bld =
      build_disclosure_circuit(asset.plain, asset.data_blinder, index);
  const std::string shape_id = "pi_s/" + std::to_string(asset.plain.size()) +
                               "/" + std::to_string(index);
  auto proof = sys_.prove(shape_id, bld.cs(), bld.witness());
  if (!proof) return std::nullopt;
  Sample s;
  s.token_id = asset.token_id;
  s.index = index;
  s.value = asset.plain[index];
  s.shape_id = shape_id;
  s.proof = *proof;
  return s;
}

bool KeySecureExchange::verify_sample(const Sample& sample) const {
  const auto info = sys_.nft().token(sample.token_id);
  if (!info) return false;
  const plonk::KeyPairResult* keys = sys_.find_keys(sample.shape_id);
  if (keys == nullptr) return false;
  // statement: (c_d from chain, revealed value)
  // zkdet-lint: allow(unbatched-verify) reviewed: off-chain sample check
  return plonk::verify(keys->vk, {info->data_commitment, sample.value},
                       sample.proof);
}

// --- ZKCP baseline ---

std::optional<Offer> ZkcpExchange::make_offer(const OwnedAsset& asset,
                                              const Predicate& phi,
                                              const std::string& predicate_tag) {
  // Identical phase-1 relation; reuse the key-secure implementation and
  // additionally publish h = H(k) as ZKCP's Deliver step requires.
  KeySecureExchange ks(sys_, transform_);
  auto offer = ks.make_offer(asset, phi, predicate_tag);
  if (offer) offer->key_hash = hash_key(asset.key);
  return offer;
}

bool ZkcpExchange::verify_offer(const Offer& offer) const {
  KeySecureExchange ks(sys_, const_cast<TransformationProtocol&>(transform_));
  return ks.verify_offer(offer);
}

std::optional<std::uint64_t> ZkcpExchange::lock_payment(
    const crypto::KeyPair& buyer, const Offer& offer, std::uint64_t amount) {
  const auto info = sys_.nft().token(offer.token_id);
  if (!info) return std::nullopt;
  // In ZKCP the buyer locks against h = H(k) received from the seller
  // with the offer.
  std::uint64_t id = 0;
  // ZKCP is the unsharded legacy baseline; it stays on the direct path
  // so the bench comparison is pool-free on both legs.
  // zkdet-lint: allow(direct-chain-call)
  const auto receipt = sys_.chain().call(
      buyer, "zkcp.lock",
      [&](chain::CallContext& ctx) {
        id = sys_.zkcp_arbiter().lock(ctx, info->owner, offer.key_hash);
      },
      /*value=*/amount, /*pay_to=*/sys_.zkcp_arbiter().address());
  if (!receipt.success) return std::nullopt;
  return id;
}

bool ZkcpExchange::open(const crypto::KeyPair& seller, const OwnedAsset& asset,
                        std::uint64_t exchange_id) {
  // zkdet-lint: allow(direct-chain-call) ZKCP baseline stays pool-free
  const auto receipt = sys_.chain().call(
      seller, "zkcp.open", [&](chain::CallContext& ctx) {
        sys_.zkcp_arbiter().open(ctx, exchange_id, asset.key);
      });
  return receipt.success;
}

std::vector<bool> ZkcpExchange::open_batch(
    std::span<const OpenRequest> requests) {
  std::vector<bool> ok(requests.size(), false);
  std::vector<std::pair<std::size_t, txpool::TicketPtr>> tickets;
  auto& pool = sys_.pool();
  auto& arb = sys_.zkcp_arbiter();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const OpenRequest& rq = requests[i];
    if (rq.seller == nullptr || rq.asset == nullptr) continue;
    // Opens pay the escrow out of the shared ZKCP arbiter account, so
    // they conflict pairwise on that balance and serialize across
    // blocks — accumulation still pays one pump loop for all of them.
    txpool::AccessSet access;
    access.write_contract(arb.address(),
                          "zkcp/" + std::to_string(rq.exchange_id) + "/")
        .touch_account(arb.address())
        .touch_account(crypto::address_of(rq.seller->pk));
    auto intent = txpool::make_intent(
        *rq.seller, pool.next_nonce(crypto::address_of(rq.seller->pk)),
        "zkcp.open",
        [arbp = &arb, id = rq.exchange_id,
         key = rq.asset->key](chain::CallContext& ctx) {
          arbp->open(ctx, id, key);
        },
        std::move(access));
    auto res = pool.submit(std::move(intent));
    if (!res.accepted) continue;
    tickets.emplace_back(i, std::move(res.ticket));
  }
  std::size_t rounds = pool.pending() + 2;
  const auto all_done = [&] {
    for (const auto& [i, t] : tickets) {
      (void)i;
      if (!t->done()) return false;
    }
    return true;
  };
  while (!all_done() && rounds-- > 0) {
    if (pool.seal_next_batch() == 0 && !all_done()) break;
  }
  for (const auto& [i, t] : tickets) {
    ok[i] = t->done() && t->receipt.success;
  }
  return ok;
}

std::optional<std::vector<Fr>> ZkcpExchange::eavesdrop(
    std::uint64_t exchange_id, std::uint64_t token_id) const {
  const auto leaked = sys_.zkcp_arbiter().leaked_key(exchange_id);
  if (!leaked) return std::nullopt;
  const auto* enc = transform_.encryption_record(token_id);
  if (enc == nullptr) return std::nullopt;
  const auto blob = sys_.storage().get(enc->data_cid);
  if (!blob) return std::nullopt;
  const auto ct = storage::blob_to_dataset(*blob);
  if (!ct) return std::nullopt;
  return crypto::mimc_ctr_decrypt(*leaked, enc->nonce, *ct);
}

}  // namespace zkdet::core
