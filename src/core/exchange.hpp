// Data exchange protocols.
//
// KeySecureExchange — the paper's two-phase key-secure protocol (IV-F):
//   Phase 1 (data validation): the seller proves pi_p — the publicly
//   stored ciphertext encrypts a committed dataset satisfying phi — and
//   the buyer verifies it off-chain, picks k_v, sends it to the seller
//   off-chain and locks payment on-chain with h_v = H(k_v).
//   Phase 2 (key negotiation): the seller publishes k_c = k + k_v with
//   pi_k; the arbiter contract verifies pi_k on-chain and releases the
//   payment; the buyer recovers k = k_c - k_v and decrypts. k never
//   appears on-chain, so the public ciphertext stays private.
//
// ZkcpExchange — the classic ZKCP baseline (III-C): same phase 1, but
// settlement reveals k on-chain; everyone can then decrypt the public
// ciphertext. Implemented to demonstrate the flaw and as the Fig. 7
// comparison baseline (its Groth16-style verification carries an
// ell-term G1 MSM + 3 pairings; see Groth16CostVerifier).
#pragma once

#include <span>

#include "core/system.hpp"
#include "core/transformation.hpp"

namespace zkdet::core {

// The seller's public offer: everything a buyer needs to validate the
// data before paying (paper IV-F data validation phase).
struct Offer {
  std::uint64_t token_id = 0;
  std::string shape_id;       // pi_p circuit shape
  std::string predicate_tag;  // human-readable phi description
  plonk::Proof proof_p;
  Fr key_hash;  // ZKCP baseline only: h = H(k) published by the seller
};

// The buyer's local session secrets.
struct BuyerSession {
  std::uint64_t exchange_id = 0;
  std::uint64_t token_id = 0;
  Fr k_v;  // secret; its hash h_v is on-chain
};

class KeySecureExchange {
 public:
  KeySecureExchange(ZkdetSystem& sys, TransformationProtocol& transform)
      : sys_(sys), transform_(transform) {}

  // Seller: phase-1 proof over the asset's ciphertext and predicate.
  std::optional<Offer> make_offer(const OwnedAsset& asset,
                                  const Predicate& phi,
                                  const std::string& predicate_tag);

  // Buyer: verify pi_p against on-chain commitment + stored ciphertext.
  [[nodiscard]] bool verify_offer(const Offer& offer) const;

  // Buyer: choose k_v, lock payment with h_v. Returns the session; k_v
  // must then be sent to the seller off-chain (the caller does this by
  // handing session.k_v to the seller's settle()). `seller` is the data
  // seller (key holder) the escrow pays out to; when empty it defaults
  // to the token's current owner — pass it explicitly when the token
  // itself already changed hands (e.g. bought at auction) but the key is
  // still being purchased from the original owner.
  std::optional<BuyerSession> lock_payment(const crypto::KeyPair& buyer,
                                           const Offer& offer,
                                           std::uint64_t amount,
                                           std::uint64_t timeout_blocks,
                                           const chain::Address& seller = {});

  // Like lock_payment, but with a caller-chosen k_v. A crash-safe buyer
  // client (ExchangeDriver) draws k_v itself and persists it durably
  // BEFORE the lock tx, so a crash in the window between the tx landing
  // and the local state update cannot strand escrowed funds without the
  // secret needed to use (or identify) the exchange.
  std::optional<BuyerSession> lock_payment_with(
      const crypto::KeyPair& buyer, const Offer& offer, std::uint64_t amount,
      std::uint64_t timeout_blocks, const Fr& k_v,
      const chain::Address& seller = {});

  // Seller: derive k_c = k + k_v, prove pi_k, settle on-chain. Returns
  // false if the chain rejects (e.g. forged k_v hash). The settle tx
  // carries a ProofClaim, so it rides the batched verification path:
  // every settle landing in the same sealed batch shares ONE folded
  // pairing check (a batch of one degenerates to the inline check).
  bool settle(const crypto::KeyPair& seller, const OwnedAsset& asset,
              std::uint64_t exchange_id, const Fr& k_v);

  // One pending settlement of a batched settle call.
  struct SettleRequest {
    const crypto::KeyPair* seller = nullptr;
    const OwnedAsset* asset = nullptr;
    std::uint64_t exchange_id = 0;
    Fr k_v;
  };
  // Batched settlement: proves every pi_k, submits all settle txs with
  // their proof claims, then pumps the pool to completion. Settles that
  // are conflict-free (distinct sellers on distinct arbiter shards)
  // seal into one batch and share a single folded pairing check; an
  // invalid entry is attributed by bisection and reverts alone while
  // the honest ones commit. Returns per-request success, index-aligned.
  std::vector<bool> settle_batch(std::span<const SettleRequest> requests);

  // Buyer: read k_c off-chain state, recover k, fetch and decrypt.
  [[nodiscard]] std::optional<std::vector<Fr>> recover_data(
      const BuyerSession& session) const;

  // Buyer: reclaim an expired escrow.
  bool refund(const crypto::KeyPair& buyer, std::uint64_t exchange_id);

  // Shared by settle()/settle_batch() and the RPC dispatcher's batching
  // path: sanity checks, proves pi_k and builds the signed settle
  // intent carrying its ProofClaim (so however the caller batches, the
  // settle rides the folded verification). nullopt on any seller-side
  // rejection (bad k_v, foreign asset, prover failure).
  std::optional<txpool::TxIntent> make_settle_intent(
      const crypto::KeyPair& seller, const OwnedAsset& asset,
      std::uint64_t exchange_id, const Fr& k_v);

  // --- sample disclosure (marketplace extension) ---
  // Seller: reveal entry `index` of the asset's plaintext with a proof
  // pi_s that it opens the token's on-chain commitment.
  struct Sample {
    std::uint64_t token_id = 0;
    std::size_t index = 0;
    Fr value;
    std::string shape_id;
    plonk::Proof proof;
  };
  std::optional<Sample> disclose_sample(const OwnedAsset& asset,
                                        std::size_t index);
  // Anyone: check the revealed entry against the chain.
  [[nodiscard]] bool verify_sample(const Sample& sample) const;

 private:
  ZkdetSystem& sys_;
  TransformationProtocol& transform_;
};

class ZkcpExchange {
 public:
  ZkcpExchange(ZkdetSystem& sys, TransformationProtocol& transform)
      : sys_(sys), transform_(transform) {}

  // Same data-validation phase as the key-secure protocol.
  std::optional<Offer> make_offer(const OwnedAsset& asset,
                                  const Predicate& phi,
                                  const std::string& predicate_tag) ;
  [[nodiscard]] bool verify_offer(const Offer& offer) const;

  // Buyer locks against h = H(k).
  std::optional<std::uint64_t> lock_payment(const crypto::KeyPair& buyer,
                                            const Offer& offer,
                                            std::uint64_t amount);
  // Seller reveals k on-chain to redeem (the leak).
  bool open(const crypto::KeyPair& seller, const OwnedAsset& asset,
            std::uint64_t exchange_id);

  // One pending open of a batched redeem call.
  struct OpenRequest {
    const crypto::KeyPair* seller = nullptr;
    const OwnedAsset* asset = nullptr;
    std::uint64_t exchange_id = 0;
  };
  // Batched redeem: accumulates all opens in the pool, then pumps to
  // completion. ZKCP settlement carries no pairing work (a Poseidon
  // preimage check), so there is nothing to fold — this batches for
  // block throughput, not gas amortization (DESIGN.md). Returns
  // per-request success, index-aligned.
  std::vector<bool> open_batch(std::span<const OpenRequest> requests);

  // ANY third party can now decrypt the public ciphertext — this is the
  // vulnerability the key-secure protocol eliminates.
  [[nodiscard]] std::optional<std::vector<Fr>> eavesdrop(
      std::uint64_t exchange_id, std::uint64_t token_id) const;

 private:
  ZkdetSystem& sys_;
  TransformationProtocol& transform_;
};

}  // namespace zkdet::core
