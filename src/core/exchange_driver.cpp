#include "core/exchange_driver.hpp"

#include "fault/fault.hpp"
#include "fault/points.hpp"

namespace zkdet::core {

namespace {

std::string hv_key(const Fr& h_v) {
  return crypto::hex_encode(ff::u256_to_bytes(h_v.to_canonical()));
}

}  // namespace

void SessionStore::save(const PersistedSession& s) {
  records_[hv_key(s.h_v)] = s;
}

std::optional<PersistedSession> SessionStore::load(const Fr& h_v) const {
  const auto it = records_.find(hv_key(h_v));
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<PersistedSession> SessionStore::pending() const {
  std::vector<PersistedSession> out;
  for (const auto& [key, s] : records_) {
    if (!s.completed) out.push_back(s);
  }
  return out;
}

void SessionStore::mark_completed(const Fr& h_v) {
  const auto it = records_.find(hv_key(h_v));
  if (it != records_.end()) it->second.completed = true;
}

const char* drive_status_name(DriveStatus s) {
  switch (s) {
    case DriveStatus::kSettled: return "settled";
    case DriveStatus::kRefunded: return "refunded";
    case DriveStatus::kCrashed: return "crashed";
    case DriveStatus::kStuck: return "stuck";
  }
  return "unknown";
}

DriveReport ExchangeDriver::drive(const crypto::KeyPair& buyer,
                                  const crypto::KeyPair& seller,
                                  const OwnedAsset& asset, const Offer& offer,
                                  const Config& cfg) {
  DriveReport report;

  // Data validation phase: verification touches only local + public
  // state, so transient faults are retried in place.
  bool offer_ok = false;
  for (int i = 0; i < cfg.max_attempts && !offer_ok; ++i) {
    offer_ok = ex_.verify_offer(offer);
  }
  if (!offer_ok) {
    report.status = DriveStatus::kRefunded;  // nothing ever escrowed
    return report;
  }

  // Durability before funds: k_v/h_v hit the store before any tx.
  PersistedSession session;
  session.k_v = sys_.rng().random_fr();
  session.h_v = hash_key(session.k_v);
  session.token_id = offer.token_id;
  store_.save(session);

  return resolve(buyer, seller, &asset, session, &offer, cfg,
                 /*recovered=*/false);
}

std::vector<DriveReport> ExchangeDriver::resume_all(
    const crypto::KeyPair& buyer, const crypto::KeyPair& seller,
    const OwnedAsset* asset, const Config& cfg) {
  std::vector<DriveReport> reports;
  for (const PersistedSession& session : store_.pending()) {
    reports.push_back(resolve(buyer, seller, asset, session, /*offer=*/nullptr,
                              cfg, /*recovered=*/true));
  }
  return reports;
}

DriveReport ExchangeDriver::resolve(const crypto::KeyPair& buyer,
                                    const crypto::KeyPair& seller,
                                    const OwnedAsset* asset,
                                    PersistedSession session,
                                    const Offer* offer, const Config& cfg,
                                    bool recovered) {
  DriveReport report;
  report.recovered_from_crash = recovered;

  // --- phase 1: make sure the session has an on-chain exchange ---
  if (session.exchange_id == 0) {
    // The lock tx may have landed before a crash: public state is the
    // source of truth, keyed by our persisted h_v.
    if (const auto onchain = sys_.find_exchange_by_hv(session.h_v)) {
      session.exchange_id = onchain->id;
      store_.save(session);
    } else if (offer != nullptr) {
      for (int i = 0; i < cfg.max_attempts && session.exchange_id == 0; ++i) {
        ++report.lock_attempts;
        if (const auto s = ex_.lock_payment_with(buyer, *offer, cfg.amount,
                                                 cfg.timeout_blocks,
                                                 session.k_v)) {
          // Crash window: the tx landed but the local record was never
          // updated. Recovery re-discovers the id via find_by_hv.
          if (fault::fire(fault::points::kExchangeCrashAfterLock)) {
            report.status = DriveStatus::kCrashed;
            report.exchange_id = s->exchange_id;
            return report;
          }
          session.exchange_id = s->exchange_id;
          store_.save(session);
        }
      }
      if (session.exchange_id == 0) {
        // Lock never landed: funds never left the buyer.
        store_.mark_completed(session.h_v);
        report.status = DriveStatus::kRefunded;
        return report;
      }
    } else {
      // Crashed before the lock landed and the offer is gone: nothing
      // is escrowed, so the session closes with the funds untouched.
      store_.mark_completed(session.h_v);
      report.status = DriveStatus::kRefunded;
      return report;
    }
  }
  report.exchange_id = session.exchange_id;

  // --- phase 2: drive the on-chain exchange to a terminal state ---
  auto state = [&]() -> std::optional<chain::ExchangeState> {
    const auto info =
        sys_.arbiter_for_exchange(session.exchange_id)
            .exchange(session.exchange_id);
    if (!info) return std::nullopt;
    return info->state;
  };

  auto current = state();
  if (!current) {
    report.status = DriveStatus::kStuck;  // unreachable: id came from chain
    return report;
  }

  if (*current == chain::ExchangeState::kLocked && asset != nullptr) {
    for (int i = 0; i < cfg.max_attempts; ++i) {
      // Idempotency: re-read before every attempt; a settle that
      // "failed" locally but landed on chain must not be re-sent.
      current = state();
      if (*current != chain::ExchangeState::kLocked) break;
      ++report.settle_attempts;
      if (ex_.settle(seller, *asset, session.exchange_id, session.k_v)) {
        current = state();
        break;
      }
    }
  }

  if (*current == chain::ExchangeState::kLocked) {
    // Seller side could not complete: wait out the deadline, refund.
    const auto info =
        sys_.arbiter_for_exchange(session.exchange_id)
            .exchange(session.exchange_id);
    if (sys_.chain().height() <= info->deadline) {
      sys_.chain().advance_blocks(info->deadline - sys_.chain().height() + 1);
    }
    for (int i = 0; i < cfg.max_attempts; ++i) {
      current = state();
      if (*current != chain::ExchangeState::kLocked) break;
      ++report.refund_attempts;
      if (ex_.refund(buyer, session.exchange_id)) {
        current = state();
        break;
      }
    }
  }

  switch (*current) {
    case chain::ExchangeState::kSettled: {
      report.status = DriveStatus::kSettled;
      BuyerSession bs;
      bs.exchange_id = session.exchange_id;
      bs.token_id = session.token_id;
      bs.k_v = session.k_v;
      for (int i = 0; i < cfg.max_attempts && !report.data_recovered; ++i) {
        ++report.recover_attempts;
        if (auto data = ex_.recover_data(bs)) {
          report.data_recovered = true;
          report.data = std::move(*data);
        } else {
          // Heal storage before the next try: a corrupted or
          // under-replicated ciphertext replica may be the blocker.
          sys_.storage().scrub();
        }
      }
      store_.mark_completed(session.h_v);
      return report;
    }
    case chain::ExchangeState::kRefunded:
      store_.mark_completed(session.h_v);
      report.status = DriveStatus::kRefunded;
      return report;
    default:
      report.status = DriveStatus::kStuck;  // retry budgets exhausted
      return report;
  }
}

}  // namespace zkdet::core
