// Crash-recoverable exchange driver (paper IV-F fairness, made robust).
//
// KeySecureExchange implements the protocol steps; ExchangeDriver makes
// them survive failure. It is the buyer/seller *client runtime*: every
// step runs under a bounded retry budget, buyer session secrets are
// persisted to a durable SessionStore BEFORE the lock tx is issued, and
// after a (simulated) crash the driver rebuilds its view purely from
// the persisted secrets plus public on-chain state — the arbiter's
// ExchangeInfo, looked up by h_v — and drives the exchange onward.
//
// The safety argument, under any fault schedule over the fail-points in
// src/fault/points.hpp:
//
//   * Funds enter escrow only via a lock tx whose (k_v, h_v) is already
//     durable; the buyer can never lose both the payment and the means
//     to settle/refund it.
//   * settle and refund are idempotent at the driver level: the driver
//     re-reads ExchangeInfo before each attempt and treats an already-
//     terminal exchange as success, so replays after crashes are safe
//     (the contract itself stays strict and rejects double-settlement).
//   * Every exchange reaches kSettled xor kRefunded: if the seller
//     cannot settle within the retry budget, the driver waits out the
//     deadline and refunds; tests/test_chaos.cpp asserts this across
//     many seeded schedules.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/exchange.hpp"

namespace zkdet::core {

// What a buyer client must persist to survive a crash at any point
// between choosing k_v and recovering the data. Keyed by h_v: the one
// value that also appears in public chain state, so the exchange id can
// be re-discovered after a crash that lost it.
struct PersistedSession {
  Fr h_v;
  Fr k_v;
  std::uint64_t token_id = 0;
  std::uint64_t exchange_id = 0;  // 0 until the lock receipt was observed
  bool completed = false;         // terminal; kept for audit
};

// Durable buyer-side session storage (stands in for a wallet file; maps
// are process-local but survive driver crashes, which in this in-process
// simulation means: the ExchangeDriver object is destroyed and a new
// one is handed the same store).
class SessionStore {
 public:
  void save(const PersistedSession& s);
  [[nodiscard]] std::optional<PersistedSession> load(const Fr& h_v) const;
  // Sessions not yet driven to a terminal state (crash-recovery input).
  [[nodiscard]] std::vector<PersistedSession> pending() const;
  void mark_completed(const Fr& h_v);
  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::map<std::string, PersistedSession> records_;  // key: hex(h_v)
};

enum class DriveStatus : std::uint8_t {
  kSettled = 0,   // seller paid, buyer holds the plaintext path
  kRefunded = 1,  // buyer reclaimed (or never escrowed) the funds
  kCrashed = 2,   // simulated client crash; resume_all() picks it up
  kStuck = 3,     // retry budgets exhausted with funds still locked
};

[[nodiscard]] const char* drive_status_name(DriveStatus s);

struct DriveReport {
  DriveStatus status = DriveStatus::kStuck;
  std::uint64_t exchange_id = 0;
  int lock_attempts = 0;
  int settle_attempts = 0;
  int refund_attempts = 0;
  int recover_attempts = 0;
  bool recovered_from_crash = false;
  bool data_recovered = false;      // plaintext decrypted (settled runs)
  std::vector<Fr> data;             // the recovered plaintext
};

class ExchangeDriver {
 public:
  struct Config {
    std::uint64_t amount = 100;
    std::uint64_t timeout_blocks = 8;
    int max_attempts = 6;  // per step (lock / settle / refund / recover)
  };

  ExchangeDriver(ZkdetSystem& sys, TransformationProtocol& transform,
                 SessionStore& store)
      : sys_(sys), ex_(sys, transform), store_(store) {}

  // Drives one fresh exchange end-to-end: verify offer, persist
  // session, lock, settle (seller side), recover data — each step with
  // bounded retries — falling back to refund past the deadline when the
  // seller side cannot complete. Returns kCrashed when the
  // exchange.crash_after_lock fail-point fires; the session is durable
  // and resume_all() finishes the job.
  DriveReport drive(const crypto::KeyPair& buyer,
                    const crypto::KeyPair& seller, const OwnedAsset& asset,
                    const Offer& offer, const Config& cfg);

  // Crash recovery: rebuilds every pending session from the store and
  // public chain state and drives each to a terminal state. `asset` is
  // the seller's asset when the seller is still alive, nullptr when the
  // seller is gone (every pending exchange then resolves to refund).
  std::vector<DriveReport> resume_all(const crypto::KeyPair& buyer,
                                      const crypto::KeyPair& seller,
                                      const OwnedAsset* asset,
                                      const Config& cfg);

 private:
  // Takes a persisted session (possibly with unknown exchange id) to a
  // terminal state. The only entry point that touches escrowed funds.
  DriveReport resolve(const crypto::KeyPair& buyer,
                      const crypto::KeyPair& seller, const OwnedAsset* asset,
                      PersistedSession session, const Offer* offer,
                      const Config& cfg, bool recovered);

  ZkdetSystem& sys_;
  KeySecureExchange ex_;
  SessionStore& store_;
};

}  // namespace zkdet::core
