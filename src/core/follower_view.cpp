#include "core/follower_view.hpp"

#include <string>

namespace zkdet::core {

namespace {

const std::string* field(const chain::Event& ev, const char* name) {
  for (const auto& [k, v] : ev.fields) {
    if (k == name) return &v;
  }
  return nullptr;
}

}  // namespace

void FollowerReadView::refresh() {
  const ledger::ReplayImage& image = follower_.image();
  if (next_block_ > image.blocks.size()) {
    // A snapshot bootstrap replaced the image wholesale; refold.
    next_block_ = 0;
    exchanges_.clear();
  }
  for (; next_block_ < image.blocks.size(); ++next_block_) {
    for (const auto& tx : image.blocks[next_block_].txs) {
      for (const auto& ev : tx.events) {
        const std::string* xid = field(ev, "exchangeId");
        if (xid == nullptr) continue;
        const std::uint64_t id = std::stoull(*xid);
        const std::string prefix = "xc/" + std::to_string(id) + "/";
        if (ev.name == "PaymentLocked") {
          const std::string* buyer = field(ev, "buyer");
          const std::string* seller = field(ev, "seller");
          const std::string* deadline = field(ev, "deadline");
          if (buyer == nullptr || seller == nullptr || deadline == nullptr) {
            continue;  // not a KeySecureArbiter lock event
          }
          chain::ExchangeInfo info;
          info.id = id;
          info.buyer = *buyer;
          info.seller = *seller;
          info.deadline = std::stoull(*deadline);
          if (const auto v = slot(prefix + "hv")) info.h_v = *v;
          if (const auto v = slot(prefix + "c")) info.key_commitment = *v;
          if (const auto v = slot(prefix + "amount")) {
            info.amount = v->to_canonical().limb[0];
          }
          info.state = chain::ExchangeState::kLocked;
          exchanges_[id] = std::move(info);
        } else if (ev.name == "ExchangeSettled") {
          const auto it = exchanges_.find(id);
          if (it == exchanges_.end()) continue;
          it->second.state = chain::ExchangeState::kSettled;
          if (const auto v = slot(prefix + "kc")) it->second.k_c = *v;
        } else if (ev.name == "ExchangeRefunded") {
          const auto it = exchanges_.find(id);
          if (it != exchanges_.end()) {
            it->second.state = chain::ExchangeState::kRefunded;
          }
        }
      }
    }
  }
}

std::optional<chain::ExchangeInfo> FollowerReadView::exchange(
    std::uint64_t id) const {
  const auto it = exchanges_.find(id);
  if (it == exchanges_.end()) return std::nullopt;
  return it->second;
}

std::optional<chain::ExchangeInfo> FollowerReadView::find_by_hv(
    const chain::Fr& h_v) const {
  for (const auto& [id, info] : exchanges_) {
    if (info.h_v == h_v) return info;
  }
  return std::nullopt;
}

std::uint64_t FollowerReadView::height() const {
  return follower_.image().height();
}

std::uint64_t FollowerReadView::balance(const chain::Address& addr) const {
  const auto& balances = follower_.image().balances;
  const auto it = balances.find(addr);
  return it == balances.end() ? 0 : it->second;
}

std::optional<chain::Fr> FollowerReadView::slot(const std::string& key) const {
  for (const auto& [addr, rc] : follower_.image().contracts) {
    const auto it = rc.slots.find(key);
    if (it != rc.slots.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace zkdet::core
