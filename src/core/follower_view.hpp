// Follower-served exchange status queries.
//
// A replication follower holds a ledger::ReplayImage — block history,
// balances and contract KV slots — but no live Contract objects: the
// follower never executes, it only folds verified records. This view
// answers the read-side queries exchange clients actually issue
// (exchange status by id, recovery lookup by h_v, balances) directly
// off the image, by folding the same PaymentLocked / ExchangeSettled /
// ExchangeRefunded events and xc/<id>/* slots KeySecureArbiter's
// on_adopted folds on the primary.
//
// Prefix-consistency guarantee: refresh() folds whole blocks of the
// follower's image, and the follower applies records atomically
// between pumps, so every answer this view returns is the primary's
// state as of some block the primary actually sealed — a stale prefix,
// never a mix of two states and never a state the primary's chain
// never had. The replication tests assert this invariant mid-catch-up.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "chain/arbiter.hpp"
#include "replication/follower.hpp"

namespace zkdet::core {

class FollowerReadView {
 public:
  explicit FollowerReadView(const replication::Follower& follower)
      : follower_(follower) {}

  // Folds blocks the follower applied since the last refresh (or all
  // of them after a snapshot bootstrap rewound the cursor).
  void refresh();

  // KeySecureArbiter-compatible reads (any shard; ids are global).
  [[nodiscard]] std::optional<chain::ExchangeInfo> exchange(
      std::uint64_t id) const;
  [[nodiscard]] std::optional<chain::ExchangeInfo> find_by_hv(
      const chain::Fr& h_v) const;

  [[nodiscard]] std::uint64_t height() const;
  [[nodiscard]] std::uint64_t balance(const chain::Address& addr) const;

 private:
  // First Fr stored under `key` across the image's contracts (slot
  // keys are prefixed with globally-unique exchange ids, so at most
  // one contract holds any xc/<id>/* key).
  [[nodiscard]] std::optional<chain::Fr> slot(const std::string& key) const;

  const replication::Follower& follower_;
  std::size_t next_block_ = 0;
  std::map<std::uint64_t, chain::ExchangeInfo> exchanges_;
};

}  // namespace zkdet::core
