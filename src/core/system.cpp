#include "core/system.hpp"

#include <cstdlib>
#include <stdexcept>

#include "core/circuits.hpp"

namespace zkdet::core {

namespace {

std::size_t shard_count(std::size_t requested) {
  if (requested > 0) return requested;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at system start-up
  if (const char* env = std::getenv("ZKDET_ARBITER_SHARDS")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return 1;
}

}  // namespace

ZkdetSystem::ZkdetSystem(std::size_t max_constraints, std::uint64_t seed,
                         const std::string& data_dir,
                         const ledger::Options& ledger_opts,
                         std::size_t arbiter_shards)
    : rng_("zkdet-system", seed),
      operator_keys_(crypto::KeyPair::generate(rng_)),
      srs_(plonk::Srs::setup(max_constraints + 16, rng_)),
      prover_(srs_),
      storage_(/*num_nodes=*/4, /*replication=*/2) {
  std::string dir = data_dir;
  if (dir.empty()) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at system start-up
    if (const char* env = std::getenv("ZKDET_DATA_DIR")) dir = env;
  }
  // Attach durability before any chain activity: the account credit and
  // the deploys below are journaled (fresh directory) or replayed
  // against restored state (reopen — create_account is idempotent for a
  // known key and each deploy adopts its persisted contract).
  if (!dir.empty()) {
    ledger_ = std::make_unique<ledger::Ledger>(chain_, dir, ledger_opts);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at system start-up
    const std::size_t n_replicas =
        replication::parse_replica_count(std::getenv("ZKDET_REPLICAS"));
    if (n_replicas > 0) {
      replicas_ = std::make_unique<replication::ReplicaSet>(
          *ledger_, chain_, dir + "/replicas", n_replicas);
    }
  }
  chain_.create_account(operator_keys_, 1'000'000'000);

  nft_ = &chain_.deploy<chain::DataNft>(operator_keys_, nullptr);
  auction_ = &chain_.deploy<chain::ClockAuction>(operator_keys_, nullptr, *nft_);

  // The pi_k circuit shape is fixed; preprocess it now and deploy the
  // on-chain verifier with its vk baked in.
  gadgets::CircuitBuilder kb = build_key_circuit(
      ff::Fr::from_u64(1), ff::Fr::from_u64(2), ff::Fr::from_u64(3));
  const auto& keys = keys_for("pi_k", kb.cs());
  key_verifier_ = &chain_.deploy<chain::PlonkVerifierContract>(
      operator_keys_, nullptr, keys.vk, "PlonkVerifier(pi_k)");
  const std::size_t n_shards = shard_count(arbiter_shards);
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards_.push_back(&chain_.deploy<chain::KeySecureArbiter>(
        operator_keys_, nullptr, *key_verifier_, /*first_id=*/s + 1,
        /*stride=*/n_shards));
  }
  zkcp_arbiter_ = &chain_.deploy<chain::ZkcpArbiter>(operator_keys_, nullptr);
  pool_ = std::make_unique<txpool::TxPool>(chain_);
}

ZkdetSystem::~ZkdetSystem() {
  if (!replicas_) return;
  try {
    ledger_->sync();
    // Deadline-bounded: final_sync's backoff budget burns only on
    // rounds that make no progress, so a healthy follower catches up
    // fully while a dead follower transport costs a bounded number of
    // pumps — shutdown never stalls on an unreachable peer.
    replicas_->final_sync();
  } catch (...) {
    // Shutdown is best-effort: a failed fsync or a fail-stopped
    // follower must not turn destruction into a crash. The follower
    // simply resumes from its last acked watermark next run.
  }
}

std::optional<chain::ExchangeInfo> ZkdetSystem::find_exchange_by_hv(
    const ff::Fr& h_v) const {
  for (const auto* shard : shards_) {
    if (auto info = shard->find_by_hv(h_v)) return info;
  }
  return std::nullopt;
}

const plonk::KeyPairResult& ZkdetSystem::keys_for(
    const std::string& shape_id, const plonk::ConstraintSystem& cs) {
  const auto it = key_pins_.find(shape_id);
  if (it != key_pins_.end()) return *it->second;
  auto keys = prover_.keys_for(shape_id, cs);
  if (!keys) {
    throw std::runtime_error("SRS too small for circuit shape " + shape_id +
                             " (domain " + std::to_string(cs.domain_size()) +
                             ")");
  }
  return *key_pins_.emplace(shape_id, std::move(keys)).first->second;
}

const plonk::KeyPairResult* ZkdetSystem::find_keys(
    const std::string& shape_id) const {
  const auto it = key_pins_.find(shape_id);
  if (it != key_pins_.end()) return it->second.get();
  // Preprocessed through the service but not yet pinned (e.g. by a
  // worker running a proof job): pin now so the pointer stays valid.
  auto keys = prover_.find_keys(shape_id);
  if (!keys) return nullptr;
  return key_pins_.emplace(shape_id, std::move(keys)).first->second.get();
}

std::optional<plonk::Proof> ZkdetSystem::prove(
    const std::string& shape_id, const plonk::ConstraintSystem& cs,
    std::vector<ff::Fr> witness) {
  keys_for(shape_id, cs);  // preprocess + pin on the caller's thread
  runtime::ProofJob job;
  job.circuit_id = shape_id;
  job.cs = std::make_shared<const plonk::ConstraintSystem>(cs);
  job.witness = std::move(witness);
  job.rng = crypto::Drbg("zkdet-proof-job", rng_());
  // Bounded retry: a worker crash (prover.job fail-point) is retried
  // with the same job — same blinder rng, so the recovered proof is
  // byte-identical to what the crashed attempt would have produced.
  return prover_.prove_with_retry(job).proof;
}

}  // namespace zkdet::core
