// ZkdetSystem: one fully-deployed ZKDET instance.
//
// Bundles the substrates (chain + contracts, storage network, SRS) and
// the proving-key cache. The universal SRS is set up once (paper VI-B.1)
// and reused by every circuit; per-shape preprocessing happens on first
// use and is cached, mirroring how the paper's deployment compiles each
// Circom circuit once.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "chain/arbiter.hpp"
#include "chain/auction.hpp"
#include "chain/chain.hpp"
#include "chain/nft.hpp"
#include "chain/verifier_contract.hpp"
#include "ledger/ledger.hpp"
#include "plonk/plonk.hpp"
#include "replication/replica_set.hpp"
#include "runtime/prover_service.hpp"
#include "storage/storage.hpp"
#include "txpool/txpool.hpp"

namespace zkdet::core {

class ZkdetSystem {
 public:
  // max_constraints bounds the largest circuit the SRS supports.
  //
  // `data_dir` roots a durable ledger under the chain: every sealed
  // block is WAL-journaled before the sealing call returns, and
  // constructing a system over an existing directory restores the chain
  // (blocks, balances, contract state) exactly as it was — the deploys
  // below then re-bind to their persisted contracts instead of minting
  // fresh ones. Empty string consults ZKDET_DATA_DIR; if that is unset
  // too, the chain stays memory-only (the pre-ledger behaviour).
  // `arbiter_shards`: number of KeySecureArbiter instances deployed;
  // token id t routes to shard t % S, and exchange ids stay globally
  // unique (shard s issues s+1, s+1+S, ...). 0 consults
  // ZKDET_ARBITER_SHARDS and falls back to 1 (single arbiter — the
  // pre-sharding behavior). The count is part of the deploy sequence,
  // so reopening a data_dir requires the same value.
  explicit ZkdetSystem(std::size_t max_constraints, std::uint64_t seed = 7,
                       const std::string& data_dir = {},
                       const ledger::Options& ledger_opts = {},
                       std::size_t arbiter_shards = 0);
  // Best-effort final replica sync so an env-only run (ZKDET_REPLICAS
  // with no explicit pumping) leaves its followers caught up on clean
  // shutdown. A failed/diverged follower just stays behind.
  ~ZkdetSystem();

  [[nodiscard]] chain::Chain& chain() { return chain_; }
  // nullptr when running memory-only.
  [[nodiscard]] ledger::Ledger* ledger() { return ledger_.get(); }
  // Warm standbys streaming this system's WAL (ZKDET_REPLICAS > 0 with
  // a durable ledger; nullptr otherwise). Follower i lives under
  // <data_dir>/replicas/r<i>; pump with replicas()->pump() or sync().
  [[nodiscard]] replication::ReplicaSet* replicas() { return replicas_.get(); }
  [[nodiscard]] storage::StorageNetwork& storage() { return storage_; }
  [[nodiscard]] chain::DataNft& nft() { return *nft_; }
  [[nodiscard]] chain::ClockAuction& auction() { return *auction_; }
  [[nodiscard]] chain::KeySecureArbiter& arbiter() { return *shards_[0]; }
  [[nodiscard]] chain::ZkcpArbiter& zkcp_arbiter() { return *zkcp_arbiter_; }
  // The transaction pipeline front door (mempool + batch executor).
  [[nodiscard]] txpool::TxPool& pool() { return *pool_; }

  // --- arbiter sharding ---
  [[nodiscard]] std::size_t arbiter_shards() const { return shards_.size(); }
  [[nodiscard]] chain::KeySecureArbiter& arbiter_shard(std::size_t s) {
    return *shards_[s];
  }
  // Shard routing: by token id at lock time, by exchange id afterwards.
  [[nodiscard]] chain::KeySecureArbiter& arbiter_for_token(
      std::uint64_t token_id) {
    return *shards_[token_id % shards_.size()];
  }
  [[nodiscard]] chain::KeySecureArbiter& arbiter_for_exchange(
      std::uint64_t exchange_id) {
    return *shards_[(exchange_id - 1) % shards_.size()];
  }
  // Cross-shard lookup by the buyer's session-unique h_v (crash
  // recovery: the exchange id is not known yet).
  [[nodiscard]] std::optional<chain::ExchangeInfo> find_exchange_by_hv(
      const ff::Fr& h_v) const;
  [[nodiscard]] chain::PlonkVerifierContract& key_verifier() {
    return *key_verifier_;
  }
  [[nodiscard]] const plonk::Srs& srs() const { return srs_; }
  [[nodiscard]] crypto::Drbg& rng() { return rng_; }
  [[nodiscard]] const crypto::KeyPair& operator_keys() const {
    return operator_keys_;
  }
  // The async proof-job service every protocol-layer proof runs through.
  [[nodiscard]] runtime::ProverService& prover() { return prover_; }

  // Returns cached keys for `shape_id`, preprocessing `cs` on first use.
  // Different instances of the same logical circuit must produce
  // identical constraint systems (shape ids encode all size parameters).
  // Keys returned here are pinned for the system's lifetime, so the
  // reference stays valid even if the service's LRU later evicts.
  const plonk::KeyPairResult& keys_for(const std::string& shape_id,
                                       const plonk::ConstraintSystem& cs);
  // Lookup-only variant for verifiers; nullptr if never preprocessed.
  [[nodiscard]] const plonk::KeyPairResult* find_keys(
      const std::string& shape_id) const;

  // Proves `cs` under `witness` as a queued job on the shared pool
  // (preprocessing + pinning the shape first). Each job gets its own
  // blinder rng derived from the system rng at submission, so results
  // are reproducible for a fixed system seed and call order.
  std::optional<plonk::Proof> prove(const std::string& shape_id,
                                    const plonk::ConstraintSystem& cs,
                                    std::vector<ff::Fr> witness);

 private:
  crypto::Drbg rng_;
  crypto::KeyPair operator_keys_;
  plonk::Srs srs_;
  runtime::ProverService prover_;
  chain::Chain chain_;
  // Declared after chain_ (observer detaches before the chain dies).
  std::unique_ptr<ledger::Ledger> ledger_;
  // Declared after ledger_ (the shipper reads the ledger's segments).
  std::unique_ptr<replication::ReplicaSet> replicas_;
  storage::StorageNetwork storage_;
  std::unique_ptr<txpool::TxPool> pool_;
  chain::DataNft* nft_ = nullptr;
  chain::ClockAuction* auction_ = nullptr;
  chain::PlonkVerifierContract* key_verifier_ = nullptr;
  std::vector<chain::KeySecureArbiter*> shards_;  // shards_[0] = arbiter()
  chain::ZkcpArbiter* zkcp_arbiter_ = nullptr;
  // Lifetime pins for keys handed out by reference/pointer.
  mutable std::map<std::string, std::shared_ptr<const plonk::KeyPairResult>>
      key_pins_;
};

}  // namespace zkdet::core
