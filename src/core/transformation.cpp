#include "core/transformation.hpp"


#include "crypto/mimc.hpp"

namespace zkdet::core {

using chain::Formula;
using gadgets::CircuitBuilder;
using storage::Cid;

std::optional<plonk::Proof> TransformationProtocol::prove_shape(
    const std::string& shape_id, const CircuitBuilder& bld) {
  // Routed through the runtime's proof-job service: queued on the shared
  // pool, keys cached per shape.
  return sys_.prove(shape_id, bld.cs(), bld.witness());
}

bool TransformationProtocol::verify_shape(const std::string& shape_id,
                                          const std::vector<Fr>& publics,
                                          const plonk::Proof& proof) const {
  const plonk::KeyPairResult* keys = sys_.find_keys(shape_id);
  if (keys == nullptr) return false;
  // zkdet-lint: allow(unbatched-verify) reviewed: off-chain client check
  return plonk::verify(keys->vk, publics, proof);
}

Cid TransformationProtocol::store_proof(const plonk::Proof& proof) {
  return sys_.storage().put(proof.to_bytes());
}

std::optional<std::uint64_t> TransformationProtocol::mint_with_encryption(
    const crypto::KeyPair& owner, OwnedAsset& asset, Formula formula,
    const std::vector<std::uint64_t>& parents) {
  auto& rng = sys_.rng();
  asset.key = rng.random_fr();
  asset.nonce = rng.random_fr();
  asset.key_blinder = rng.random_fr();
  if (asset.data_blinder.is_zero()) asset.data_blinder = rng.random_fr();

  // Encrypt and store; the CID is the on-chain URI.
  const std::vector<Fr> ct =
      crypto::mimc_ctr_encrypt(asset.key, asset.nonce, asset.plain);
  const Cid cid = sys_.storage().put(storage::dataset_to_blob(ct));

  // pi_e
  CircuitBuilder enc = build_encryption_circuit(asset.plain, asset.key,
                                                asset.nonce,
                                                asset.data_blinder);
  const std::string shape_id = "pi_e/" + std::to_string(asset.plain.size());
  auto proof = prove_shape(shape_id, enc);
  if (!proof) return std::nullopt;

  const Fr data_cm = commit_dataset(asset.plain, asset.data_blinder);
  const Fr key_cm = commit_key(asset.key, asset.key_blinder);

  std::uint64_t token_id = 0;
  // Minting allocates a fresh token id from shared NFT state, so it
  // serializes by nature; the direct path keeps the id visible to the
  // caller synchronously.
  // zkdet-lint: allow(direct-chain-call)
  const auto receipt = sys_.chain().call(
      owner, formula == Formula::kGenesis ? "mint" : "mint_derived",
      [&](chain::CallContext& ctx) {
        if (formula == Formula::kGenesis) {
          token_id = sys_.nft().mint(ctx, cid.as_field(), data_cm, key_cm);
        } else {
          token_id = sys_.nft().mint_derived(ctx, cid.as_field(), data_cm,
                                             key_cm, formula, parents);
        }
      });
  if (!receipt.success) return std::nullopt;

  EncryptionRecord rec;
  rec.shape_id = shape_id;
  rec.nonce = asset.nonce;
  rec.data_cid = cid;
  rec.proof = *proof;
  rec.proof_cid = store_proof(*proof);
  enc_records_[token_id] = std::move(rec);
  asset.token_id = token_id;
  return token_id;
}

std::optional<OwnedAsset> TransformationProtocol::publish(
    const crypto::KeyPair& owner, std::vector<Fr> plain) {
  if (plain.empty()) return std::nullopt;
  OwnedAsset asset;
  asset.plain = std::move(plain);
  if (!mint_with_encryption(owner, asset, Formula::kGenesis, {})) {
    return std::nullopt;
  }
  return asset;
}

std::optional<OwnedAsset> TransformationProtocol::duplicate(
    const crypto::KeyPair& owner, const OwnedAsset& src) {
  OwnedAsset derived;
  derived.plain = src.plain;
  derived.data_blinder = sys_.rng().random_fr();

  CircuitBuilder bld = build_duplication_circuit(src.plain, src.data_blinder,
                                                 derived.data_blinder);
  const std::string shape_id = "pi_t/dup/" + std::to_string(src.plain.size());
  auto proof = prove_shape(shape_id, bld);
  if (!proof) return std::nullopt;

  if (!mint_with_encryption(owner, derived, Formula::kDuplication,
                            {src.token_id})) {
    return std::nullopt;
  }
  TransformRecord rec;
  rec.formula = Formula::kDuplication;
  rec.shape_id = shape_id;
  rec.parents = {src.token_id};
  rec.proof = *proof;
  rec.proof_cid = store_proof(*proof);
  tf_records_[derived.token_id] = std::move(rec);
  return derived;
}

std::optional<OwnedAsset> TransformationProtocol::aggregate(
    const crypto::KeyPair& owner, std::span<const OwnedAsset> srcs) {
  if (srcs.empty()) return std::nullopt;
  OwnedAsset derived;
  std::vector<std::vector<Fr>> plains;
  std::vector<Fr> blinders;
  std::vector<std::uint64_t> parents;
  std::string shape_id = "pi_t/agg";
  for (const OwnedAsset& s : srcs) {
    plains.push_back(s.plain);
    blinders.push_back(s.data_blinder);
    parents.push_back(s.token_id);
    derived.plain.insert(derived.plain.end(), s.plain.begin(), s.plain.end());
    shape_id += "/" + std::to_string(s.plain.size());
  }
  derived.data_blinder = sys_.rng().random_fr();

  CircuitBuilder bld =
      build_aggregation_circuit(plains, blinders, derived.data_blinder);
  auto proof = prove_shape(shape_id, bld);
  if (!proof) return std::nullopt;

  if (!mint_with_encryption(owner, derived, Formula::kAggregation, parents)) {
    return std::nullopt;
  }
  TransformRecord rec;
  rec.formula = Formula::kAggregation;
  rec.shape_id = shape_id;
  rec.parents = parents;
  rec.proof = *proof;
  rec.proof_cid = store_proof(*proof);
  tf_records_[derived.token_id] = std::move(rec);
  return derived;
}

std::optional<std::vector<OwnedAsset>> TransformationProtocol::partition(
    const crypto::KeyPair& owner, const OwnedAsset& src,
    const std::vector<std::size_t>& sizes) {
  std::size_t total = 0;
  for (const std::size_t s : sizes) {
    if (s == 0) return std::nullopt;  // parts must be nonempty
    total += s;
  }
  if (total != src.plain.size()) return std::nullopt;  // must be exhaustive

  std::vector<OwnedAsset> parts(sizes.size());
  std::vector<Fr> part_blinders;
  std::size_t off = 0;
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    parts[k].plain.assign(
        src.plain.begin() + static_cast<std::ptrdiff_t>(off),
        src.plain.begin() + static_cast<std::ptrdiff_t>(off + sizes[k]));
    parts[k].data_blinder = sys_.rng().random_fr();
    part_blinders.push_back(parts[k].data_blinder);
    off += sizes[k];
  }

  std::string shape_id = "pi_t/part/" + std::to_string(src.plain.size());
  for (const std::size_t s : sizes) shape_id += "/" + std::to_string(s);
  CircuitBuilder bld = build_partition_circuit(src.plain, sizes,
                                               src.data_blinder, part_blinders);
  auto proof = prove_shape(shape_id, bld);
  if (!proof) return std::nullopt;
  const Cid proof_cid = store_proof(*proof);

  // Mint every part, then cross-link the sibling sets.
  for (auto& part : parts) {
    if (!mint_with_encryption(owner, part, Formula::kPartition,
                              {src.token_id})) {
      return std::nullopt;
    }
  }
  std::vector<std::uint64_t> sibling_ids;
  sibling_ids.reserve(parts.size());
  for (const auto& p : parts) sibling_ids.push_back(p.token_id);
  for (const auto& p : parts) {
    TransformRecord rec;
    rec.formula = Formula::kPartition;
    rec.shape_id = shape_id;
    rec.parents = {src.token_id};
    rec.siblings = sibling_ids;
    rec.proof = *proof;
    rec.proof_cid = proof_cid;
    tf_records_[p.token_id] = std::move(rec);
  }
  return parts;
}

std::optional<OwnedAsset> TransformationProtocol::process(
    const crypto::KeyPair& owner, const OwnedAsset& src,
    const TransformGadget& transform, const std::string& shape_tag) {
  OwnedAsset derived;
  derived.data_blinder = sys_.rng().random_fr();

  // Build once to learn the derived plaintext (the values on the
  // transform's output wires), then the commitment in the circuit
  // matches commit_dataset(derived.plain, blinder) by construction.
  std::vector<Fr> derived_plain;
  const TransformGadget capture =
      [&](CircuitBuilder& bld,
          std::span<const gadgets::Wire> s) -> std::vector<gadgets::Wire> {
    std::vector<gadgets::Wire> out = transform(bld, s);
    derived_plain.clear();
    derived_plain.reserve(out.size());
    for (const auto w : out) derived_plain.push_back(bld.value(w));
    return out;
  };
  CircuitBuilder bld = build_processing_circuit(
      src.plain, src.data_blinder, derived.data_blinder, capture);
  if (derived_plain.empty()) return std::nullopt;
  derived.plain = derived_plain;

  const std::string shape_id =
      "pi_t/proc/" + shape_tag + "/" + std::to_string(src.plain.size());
  auto proof = prove_shape(shape_id, bld);
  if (!proof) return std::nullopt;

  if (!mint_with_encryption(owner, derived, Formula::kProcessing,
                            {src.token_id})) {
    return std::nullopt;
  }
  TransformRecord rec;
  rec.formula = Formula::kProcessing;
  rec.shape_id = shape_id;
  rec.parents = {src.token_id};
  rec.proof = *proof;
  rec.proof_cid = store_proof(*proof);
  tf_records_[derived.token_id] = std::move(rec);
  return derived;
}

// --- verification ---

bool TransformationProtocol::verify_encryption(std::uint64_t token_id) const {
  const auto info = sys_.nft().token(token_id);
  const auto rec_it = enc_records_.find(token_id);
  if (!info || rec_it == enc_records_.end()) return false;
  const EncryptionRecord& rec = rec_it->second;

  // The record's full CID must match the on-chain URI (its field image),
  // which binds the registry entry to the token.
  if (rec.data_cid.as_field() != info->uri) return false;

  // Fetch the ciphertext (the storage layer re-checks the digest, so a
  // tampered copy cannot slip through).
  const auto blob = sys_.storage().get(rec.data_cid);
  if (!blob) return false;
  const auto ct = storage::blob_to_dataset(*blob);
  if (!ct) return false;

  // Statement: (nonce, c_s, ct...), with c_s taken from the chain.
  std::vector<Fr> publics;
  publics.reserve(ct->size() + 2);
  publics.push_back(rec.nonce);
  publics.push_back(info->data_commitment);
  publics.insert(publics.end(), ct->begin(), ct->end());
  return verify_shape(rec.shape_id, publics, rec.proof);
}

bool TransformationProtocol::verify_transformation(
    std::uint64_t token_id) const {
  const auto info = sys_.nft().token(token_id);
  if (!info) return false;
  if (info->formula == Formula::kGenesis) return true;  // nothing to check
  const auto rec_it = tf_records_.find(token_id);
  if (rec_it == tf_records_.end()) return false;
  const TransformRecord& rec = rec_it->second;
  if (rec.parents != info->prev_ids) return false;

  // Rebuild the public inputs from on-chain commitments only.
  std::vector<Fr> publics;
  const auto push_cm = [&](std::uint64_t id) {
    const auto t = sys_.nft().token(id);
    if (!t) return false;
    publics.push_back(t->data_commitment);
    return true;
  };
  switch (rec.formula) {
    case Formula::kDuplication:
    case Formula::kProcessing:
      if (!push_cm(rec.parents.at(0))) return false;
      publics.push_back(info->data_commitment);
      break;
    case Formula::kAggregation:
      for (const auto p : rec.parents) {
        if (!push_cm(p)) return false;
      }
      publics.push_back(info->data_commitment);
      break;
    case Formula::kPartition:
      if (!push_cm(rec.parents.at(0))) return false;
      for (const auto s : rec.siblings) {
        if (!push_cm(s)) return false;
      }
      break;
    case Formula::kGenesis:
      return true;
  }
  return verify_shape(rec.shape_id, publics, rec.proof);
}

bool TransformationProtocol::verify_provenance_chain(
    std::uint64_t token_id) const {
  if (!sys_.nft().exists(token_id)) return false;
  std::vector<std::uint64_t> all = sys_.nft().provenance(token_id);
  all.push_back(token_id);
  for (const std::uint64_t id : all) {
    if (!verify_encryption(id)) return false;
    if (!verify_transformation(id)) return false;
  }
  return true;
}

const EncryptionRecord* TransformationProtocol::encryption_record(
    std::uint64_t token_id) const {
  const auto it = enc_records_.find(token_id);
  return it == enc_records_.end() ? nullptr : &it->second;
}

const TransformRecord* TransformationProtocol::transform_record(
    std::uint64_t token_id) const {
  const auto it = tf_records_.find(token_id);
  return it == tf_records_.end() ? nullptr : &it->second;
}

}  // namespace zkdet::core
