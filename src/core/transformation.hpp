// Generic data transformation protocol (paper IV-B).
//
// publish() puts an encrypted dataset into the storage network, proves
// encryption correctness pi_e against a Poseidon commitment, and mints
// the genesis NFT. Each transformation (duplicate / aggregate /
// partition / process) produces a derived asset with:
//   - a transformation proof pi_t linking source commitment(s) to the
//     derived commitment, and
//   - a fresh encryption proof pi_e for the derived ciphertext,
// exactly the decoupling of Fig. 3 that lets pi_e be reused across
// subsequent transformations and lets pi_t form a provenance-validating
// proof chain. Proofs and statements are public: they are pushed into
// the storage network and indexed by the registry; verification rebuilds
// every statement from on-chain token state and storage contents, never
// trusting the registry blob.
#pragma once

#include <optional>

#include "core/circuits.hpp"
#include "core/system.hpp"

namespace zkdet::core {

// A party's view of an asset it owns (contains secrets; never shared).
struct OwnedAsset {
  std::uint64_t token_id = 0;
  std::vector<Fr> plain;
  Fr key;
  Fr nonce;
  Fr data_blinder;
  Fr key_blinder;
};

struct EncryptionRecord {
  std::string shape_id;
  Fr nonce;              // public CTR nonce
  storage::Cid data_cid; // full ciphertext CID (its field image is the URI)
  plonk::Proof proof;
  storage::Cid proof_cid;  // serialized proof in the storage network
};

struct TransformRecord {
  chain::Formula formula = chain::Formula::kGenesis;
  std::string shape_id;
  std::vector<std::uint64_t> parents;
  // For partitions: all sibling tokens of the same split, in order
  // (their commitments are public inputs of the shared pi_t).
  std::vector<std::uint64_t> siblings;
  plonk::Proof proof;
  storage::Cid proof_cid;
};

class TransformationProtocol {
 public:
  explicit TransformationProtocol(ZkdetSystem& sys) : sys_(sys) {}

  // --- owner-side operations ---
  std::optional<OwnedAsset> publish(const crypto::KeyPair& owner,
                                    std::vector<Fr> plain);
  std::optional<OwnedAsset> duplicate(const crypto::KeyPair& owner,
                                      const OwnedAsset& src);
  std::optional<OwnedAsset> aggregate(const crypto::KeyPair& owner,
                                      std::span<const OwnedAsset> srcs);
  std::optional<std::vector<OwnedAsset>> partition(
      const crypto::KeyPair& owner, const OwnedAsset& src,
      const std::vector<std::size_t>& sizes);
  // `shape_tag` must uniquely identify the transform's circuit shape
  // (used for key caching); the derived plaintext is read off the
  // transform gadget's output wires.
  std::optional<OwnedAsset> process(const crypto::KeyPair& owner,
                                    const OwnedAsset& src,
                                    const TransformGadget& transform,
                                    const std::string& shape_tag);

  // --- public verification (any third party) ---
  // pi_e: ciphertext at the token's URI encrypts the committed dataset.
  [[nodiscard]] bool verify_encryption(std::uint64_t token_id) const;
  // pi_t: the token's data derives from its parents as claimed.
  [[nodiscard]] bool verify_transformation(std::uint64_t token_id) const;
  // Full proof chain: pi_e of every ancestor and pi_t of every edge.
  [[nodiscard]] bool verify_provenance_chain(std::uint64_t token_id) const;

  [[nodiscard]] const EncryptionRecord* encryption_record(
      std::uint64_t token_id) const;
  [[nodiscard]] const TransformRecord* transform_record(
      std::uint64_t token_id) const;

 private:
  // Encrypts, stores, proves pi_e; returns the minted token id.
  std::optional<std::uint64_t> mint_with_encryption(
      const crypto::KeyPair& owner, OwnedAsset& asset, chain::Formula formula,
      const std::vector<std::uint64_t>& parents);
  std::optional<plonk::Proof> prove_shape(const std::string& shape_id,
                                          const gadgets::CircuitBuilder& bld);
  [[nodiscard]] bool verify_shape(const std::string& shape_id,
                                  const std::vector<Fr>& publics,
                                  const plonk::Proof& proof) const;
  storage::Cid store_proof(const plonk::Proof& proof);

  ZkdetSystem& sys_;
  std::map<std::uint64_t, EncryptionRecord> enc_records_;
  std::map<std::uint64_t, TransformRecord> tf_records_;
};

}  // namespace zkdet::core
