#include "crypto/mimc.hpp"

#include "crypto/sha256.hpp"

namespace zkdet::crypto {

namespace {

Fr field_from_hash(const std::array<std::uint8_t, 32>& h) {
  // Interpret as a 256-bit integer and reduce mod r; the tiny bias is
  // irrelevant for round constants.
  return Fr::reduce_from(ff::u256_from_bytes(h));
}

}  // namespace

const std::vector<Fr>& mimc_round_constants() {
  static const std::vector<Fr> table = [] {
    std::vector<Fr> t;
    t.reserve(kMimcRounds);
    t.push_back(Fr::zero());
    std::array<std::uint8_t, 32> cur = Sha256::digest(std::string("zkdet-mimc7-seed"));
    for (std::size_t i = 1; i < kMimcRounds; ++i) {
      cur = Sha256::digest(cur);
      t.push_back(field_from_hash(cur));
    }
    return t;
  }();
  return table;
}

Fr mimc_encrypt_block(const Fr& key, const Fr& msg) {
  const auto& c = mimc_round_constants();
  Fr t = msg;
  for (std::size_t i = 0; i < kMimcRounds; ++i) {
    const Fr base = t + key + c[i];
    const Fr b2 = base.square();
    const Fr b4 = b2.square();
    t = b4 * b2 * base;  // base^7
  }
  return t + key;
}

std::vector<Fr> mimc_ctr_encrypt(const Fr& key, const Fr& nonce,
                                 const std::vector<Fr>& plain) {
  std::vector<Fr> out;
  out.reserve(plain.size());
  Fr ctr = nonce;
  for (const Fr& d : plain) {
    out.push_back(d + mimc_encrypt_block(key, ctr));
    ctr += Fr::one();
  }
  return out;
}

std::vector<Fr> mimc_ctr_decrypt(const Fr& key, const Fr& nonce,
                                 const std::vector<Fr>& cipher) {
  std::vector<Fr> out;
  out.reserve(cipher.size());
  Fr ctr = nonce;
  for (const Fr& c : cipher) {
    out.push_back(c - mimc_encrypt_block(key, ctr));
    ctr += Fr::one();
  }
  return out;
}

Fr mimc_hash(const std::vector<Fr>& msg, const Fr& key) {
  // Miyaguchi-Preneel: h_{i+1} = E_{h_i}(m_i) + h_i + m_i
  Fr h = key;
  for (const Fr& m : msg) {
    h = mimc_encrypt_block(h, m) + h + m;
  }
  return h;
}

}  // namespace zkdet::crypto
