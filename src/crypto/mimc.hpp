// MiMC-p/p block cipher over the BN-254 scalar field (Albrecht et al.,
// ASIACRYPT'16), in the MiMC-7 instantiation the paper adopts from
// circomlib: 91 rounds, non-linear permutation x^7.
//
//   E_k(m):  t_0 = m;  t_{i+1} = (t_i + k + c_i)^7;  E_k(m) = t_91 + k
//
// with c_0 = 0 and round constants c_i derived deterministically from
// SHA-256 (documented substitution for circomlib's Keccak chain; the
// constraint structure and count are identical).
//
// MiMC-CTR is the dataset encryption mode of the paper (IV-C.1):
//   cipher_i = d_i + E_k(nonce + i)
#pragma once

#include <cstddef>
#include <vector>

#include "ff/bn254.hpp"

namespace zkdet::crypto {

using ff::Fr;

inline constexpr std::size_t kMimcRounds = 91;

// The 91 round constants (c_0 == 0).
const std::vector<Fr>& mimc_round_constants();

// One block: E_k(m).
Fr mimc_encrypt_block(const Fr& key, const Fr& msg);

// MiMC in CTR mode over a vector of field elements.
std::vector<Fr> mimc_ctr_encrypt(const Fr& key, const Fr& nonce,
                                 const std::vector<Fr>& plain);
std::vector<Fr> mimc_ctr_decrypt(const Fr& key, const Fr& nonce,
                                 const std::vector<Fr>& cipher);

// Keyed MiMC hash (Miyaguchi-Preneel style sponge over blocks) — used as
// a circuit-friendly PRF for key derivation in the exchange protocol.
Fr mimc_hash(const std::vector<Fr>& msg, const Fr& key = Fr::zero());

}  // namespace zkdet::crypto
