#include "crypto/poseidon.hpp"

#include "check/check.hpp"
#include <map>

#include "check/mutex.hpp"
#include "crypto/sha256.hpp"

namespace zkdet::crypto {

namespace {

// Deterministic field element stream: SHA-256("zkdet-poseidon", t, i).
Fr derive_constant(std::size_t t, std::uint64_t i) {
  Sha256 h;
  h.update(std::string("zkdet-poseidon"));
  std::array<std::uint8_t, 16> idx{};
  for (int k = 0; k < 8; ++k) {
    idx[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(t) >> (k * 8));
    idx[static_cast<std::size_t>(8 + k)] = static_cast<std::uint8_t>(i >> (k * 8));
  }
  h.update(idx);
  return Fr::reduce_from(ff::u256_from_bytes(h.finalize()));
}

PoseidonParams make_params(std::size_t t) {
  PoseidonParams p;
  p.t = t;
  p.rf = 8;
  p.rp = 60;
  const std::size_t rounds = p.rf + p.rp;
  p.ark.reserve(rounds * t);
  for (std::size_t i = 0; i < rounds * t; ++i) {
    p.ark.push_back(derive_constant(t, i));
  }
  // Cauchy MDS: M[i][j] = 1 / (x_i + y_j), x_i = i, y_j = t + j.
  // All x_i + y_j in [t, 3t-2] are distinct nonzero field elements, so the
  // matrix is invertible (Cauchy) and has no zero entries.
  p.mds.reserve(t * t);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      p.mds.push_back(Fr::from_u64(i + t + j).inverse());
    }
  }
  return p;
}

Fr sbox(const Fr& x) {
  const Fr x2 = x.square();
  return x2.square() * x;  // x^5
}

}  // namespace

const PoseidonParams& PoseidonParams::get(std::size_t t) {
  ZKDET_CHECK(t >= 2 && t <= 8, "Poseidon width t=", t, " unsupported");
  static std::map<std::size_t, PoseidonParams> cache;
  static Mutex mu{check::LockLevel::kCryptoParams, "poseidon.params"};
  const MutexLock lock(mu);
  auto it = cache.find(t);
  if (it == cache.end()) it = cache.emplace(t, make_params(t)).first;
  return it->second;
}

void poseidon_permute(const PoseidonParams& params, std::vector<Fr>& state) {
  const std::size_t t = params.t;
  ZKDET_CHECK(state.size() == t, "Poseidon state width mismatch");
  const std::size_t half_f = params.rf / 2;
  const std::size_t rounds = params.rf + params.rp;
  std::vector<Fr> next(t);
  for (std::size_t r = 0; r < rounds; ++r) {
    // AddRoundKey
    for (std::size_t i = 0; i < t; ++i) state[i] += params.ark[r * t + i];
    // S-box layer (full on outer rounds, first element only on partial)
    const bool full = r < half_f || r >= half_f + params.rp;
    if (full) {
      for (auto& x : state) x = sbox(x);
    } else {
      state[0] = sbox(state[0]);
    }
    // MDS mix
    for (std::size_t i = 0; i < t; ++i) {
      Fr acc = Fr::zero();
      for (std::size_t j = 0; j < t; ++j) {
        acc += params.mds[i * t + j] * state[j];
      }
      next[i] = acc;
    }
    state.swap(next);
  }
}

Fr poseidon_hash(const std::vector<Fr>& input, std::uint64_t domain_tag,
                 std::size_t t) {
  const auto& params = PoseidonParams::get(t);
  const std::size_t rate = t - 1;
  std::vector<Fr> state(t, Fr::zero());
  // capacity element carries the domain tag and the input length so that
  // different-length inputs can never collide by padding.
  state[t - 1] = Fr::from_u64(domain_tag) +
                 Fr::from_u64(input.size()) * Fr::from_u64(1ull << 32);
  std::size_t off = 0;
  do {
    for (std::size_t i = 0; i < rate && off < input.size(); ++i, ++off) {
      state[i] += input[off];
    }
    poseidon_permute(params, state);
  } while (off < input.size());
  return state[0];
}

Fr poseidon_hash2(const Fr& left, const Fr& right) {
  return poseidon_hash({left, right}, /*domain_tag=*/2, /*t=*/3);
}

Fr PoseidonCommitment::commit_with(const std::vector<Fr>& msg, const Fr& blinder) {
  std::vector<Fr> in = msg;
  in.push_back(blinder);
  return poseidon_hash(in, /*domain_tag=*/0x434f4d, /*t=*/3);  // "COM"
}

bool PoseidonCommitment::open(const std::vector<Fr>& msg, const Fr& commitment,
                              const Fr& blinder) {
  return commit_with(msg, blinder) == commitment;
}

}  // namespace zkdet::crypto
