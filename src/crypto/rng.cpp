#include "crypto/rng.hpp"

#include <cstring>
#include <random>

namespace zkdet::crypto {

Drbg::Drbg(std::uint64_t seed) : Drbg("zkdet-drbg", seed) {}

Drbg::Drbg(std::string_view label, std::uint64_t seed) {
  Sha256 h;
  h.update(std::string(label));
  std::array<std::uint8_t, 8> sb{};
  for (int i = 0; i < 8; ++i) sb[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (i * 8));
  h.update(sb);
  key_ = h.finalize();
}

Drbg Drbg::from_os_entropy() {
  std::random_device rd;
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(rd()) << 32) | rd();
  return Drbg("zkdet-drbg-os", seed);
}

void Drbg::refill() {
  Sha256 h;
  h.update(key_);
  std::array<std::uint8_t, 8> cb{};
  for (int i = 0; i < 8; ++i) cb[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(counter_ >> (i * 8));
  h.update(cb);
  block_ = h.finalize();
  ++counter_;
  offset_ = 0;
}

Drbg::result_type Drbg::operator()() {
  if (offset_ + 8 > 32) refill();
  std::uint64_t out = 0;
  std::memcpy(&out, block_.data() + offset_, 8);
  offset_ += 8;
  return out;
}

}  // namespace zkdet::crypto
