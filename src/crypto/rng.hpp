// Deterministic random bit generator (SHA-256 in counter mode).
//
// One seeded generator per protocol party keeps every test, example and
// bench reproducible; production use would seed from the OS entropy pool
// via Drbg::from_os_entropy().
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/sha256.hpp"
#include "ff/bn254.hpp"

namespace zkdet::crypto {

class Drbg {
 public:
  explicit Drbg(std::uint64_t seed);
  Drbg(std::string_view label, std::uint64_t seed);

  [[nodiscard]] static Drbg from_os_entropy();

  // UniformRandomBitGenerator interface.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()();

  [[nodiscard]] ff::Fr random_fr() { return ff::random_field<ff::Fr>(*this); }

 private:
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::uint64_t counter_ = 0;
  std::array<std::uint8_t, 32> block_{};
  std::size_t offset_ = 32;  // force refill on first use
};

}  // namespace zkdet::crypto
