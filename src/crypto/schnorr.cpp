#include "crypto/schnorr.hpp"

#include "crypto/sha256.hpp"

namespace zkdet::crypto {

namespace {

Fr challenge(const G1& r, const G1& pk, std::span<const std::uint8_t> msg) {
  Sha256 h;
  h.update(std::string("zkdet-schnorr"));
  const auto rb = ec::g1_to_bytes(r);
  const auto pb = ec::g1_to_bytes(pk);
  h.update(rb);
  h.update(pb);
  h.update(msg);
  return Fr::reduce_from(ff::u256_from_bytes(h.finalize()));
}

}  // namespace

KeyPair KeyPair::generate(Drbg& rng) {
  KeyPair kp;
  kp.sk = rng.random_fr();
  // Secret scalar: constant-time ladder (the variable-time double-and-
  // add leaks the key's bit pattern through timing).
  kp.pk = G1::generator().mul_ct(kp.sk);
  return kp;
}

Signature schnorr_sign(const KeyPair& keys, std::span<const std::uint8_t> msg,
                       Drbg& rng) {
  const Fr k = rng.random_fr();
  Signature sig;
  // The nonce is as secret as the key (a leaked nonce recovers sk from
  // s = k + e*sk); same constant-time ladder.
  sig.r = G1::generator().mul_ct(k);
  const Fr e = challenge(sig.r, keys.pk, msg);
  sig.s = k + e * keys.sk;
  return sig;
}

bool schnorr_verify(const G1& pk, std::span<const std::uint8_t> msg,
                    const Signature& sig) {
  if (pk.is_identity()) return false;
  const Fr e = challenge(sig.r, pk, msg);
  // Verification sees only public data; the fast variable-time path is
  // safe here.
  return G1::generator().mul(sig.s) ==  // zkdet-lint: allow(vartime-scalar-mul)
         sig.r + pk.mul(e);             // zkdet-lint: allow(vartime-scalar-mul)
}

std::string address_of(const G1& pk) {
  const auto digest = Sha256::digest(ec::g1_to_bytes(pk));
  return "0x" + hex_encode(std::span<const std::uint8_t>(digest.data(), 20));
}

}  // namespace zkdet::crypto
