// Schnorr signatures over BN-254 G1.
//
// Transaction authentication for the chain substrate (the substitution
// for Ethereum's secp256k1 ECDSA documented in DESIGN.md): sk in Fr,
// pk = sk*G; sign: R = k*G, e = H(R || pk || msg), s = k + e*sk;
// verify: s*G == R + e*pk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/rng.hpp"
#include "ec/curve.hpp"

namespace zkdet::crypto {

using ec::G1;
using ff::Fr;

struct Signature {
  G1 r;
  Fr s;
};

struct KeyPair {
  Fr sk;
  G1 pk;

  static KeyPair generate(Drbg& rng);
};

Signature schnorr_sign(const KeyPair& keys, std::span<const std::uint8_t> msg,
                       Drbg& rng);
bool schnorr_verify(const G1& pk, std::span<const std::uint8_t> msg,
                    const Signature& sig);

// Short printable account address derived from a public key (first 20
// bytes of SHA-256(pk), Ethereum-style).
std::string address_of(const G1& pk);

}  // namespace zkdet::crypto
