// SHA-256 (FIPS 180-4), from scratch.
//
// Used for: Fiat-Shamir transcript hashing, content addressing (CIDs) in
// the storage substrate, derivation of MiMC/Poseidon round constants,
// and as the "traditional hash" baseline in the circuit-cost benches.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace zkdet::crypto {

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  // Finalizes and returns the digest; the object must not be reused.
  [[nodiscard]] std::array<std::uint8_t, 32> finalize();

  [[nodiscard]] static std::array<std::uint8_t, 32> digest(
      std::span<const std::uint8_t> data);
  [[nodiscard]] static std::array<std::uint8_t, 32> digest(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

std::string hex_encode(std::span<const std::uint8_t> data);

}  // namespace zkdet::crypto
