#include "ec/curve.hpp"

#include <algorithm>

namespace zkdet::ec {

using ff::Fp;
using ff::Fp2;

const Fp& G1Traits::b() {
  static const Fp v = Fp::from_u64(3);
  return v;
}
const Fp& G1Traits::gen_x() {
  static const Fp v = Fp::from_u64(1);
  return v;
}
const Fp& G1Traits::gen_y() {
  static const Fp v = Fp::from_u64(2);
  return v;
}

const Fp2& G2Traits::b() {
  // b' = 3 / xi, the D-type sextic twist constant.
  static const Fp2 v = Fp2{Fp::from_u64(3), Fp::zero()} * ff::fp2_xi().inverse();
  return v;
}
const Fp2& G2Traits::gen_x() {
  static const Fp2 v{
      Fp::from_dec("1085704699902305713594457076223282948137075635957851808699"
                   "0519993285655852781"),
      Fp::from_dec("1155973203298638710799100402139228578392581286182119253091"
                   "7403151452391805634")};
  return v;
}
const Fp2& G2Traits::gen_y() {
  static const Fp2 v{
      Fp::from_dec("8495653923123431417604973247489272438418190587263600148770"
                   "280649306958101930"),
      Fp::from_dec("4082367875863433681332203403145435568316851327593401208105"
                   "741076214120093531")};
  return v;
}

std::vector<std::uint8_t> g1_to_bytes(const G1& p) {
  std::vector<std::uint8_t> out(64, 0);
  if (p.is_identity()) return out;
  Fp x, y;
  p.to_affine(x, y);
  const auto xb = ff::u256_to_bytes(x.to_canonical());
  const auto yb = ff::u256_to_bytes(y.to_canonical());
  std::copy(xb.begin(), xb.end(), out.begin());
  std::copy(yb.begin(), yb.end(), out.begin() + 32);
  return out;
}

namespace {

std::optional<Fp> fp_from_slice(std::span<const std::uint8_t> bytes,
                                std::size_t off) {
  std::array<std::uint8_t, 32> buf{};
  std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(off),
            bytes.begin() + static_cast<std::ptrdiff_t>(off + 32), buf.begin());
  const ff::U256 v = ff::u256_from_bytes(buf);
  if (ff::u256_geq(v, Fp::MOD)) return std::nullopt;  // non-canonical
  return Fp::from_canonical(v);
}

}  // namespace

std::optional<G1> g1_from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 64) return std::nullopt;
  if (std::all_of(bytes.begin(), bytes.end(),
                  [](std::uint8_t b) { return b == 0; })) {
    return G1::identity();
  }
  const auto x = fp_from_slice(bytes, 0);
  const auto y = fp_from_slice(bytes, 32);
  if (!x || !y) return std::nullopt;
  const G1 p = G1::from_affine(*x, *y);
  if (!p.on_curve()) return std::nullopt;
  return p;
}

std::optional<G2> g2_from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 128) return std::nullopt;
  if (std::all_of(bytes.begin(), bytes.end(),
                  [](std::uint8_t b) { return b == 0; })) {
    return G2::identity();
  }
  const auto xa = fp_from_slice(bytes, 0);
  const auto xb = fp_from_slice(bytes, 32);
  const auto ya = fp_from_slice(bytes, 64);
  const auto yb = fp_from_slice(bytes, 96);
  if (!xa || !xb || !ya || !yb) return std::nullopt;
  const G2 p = G2::from_affine(Fp2{*xa, *xb}, Fp2{*ya, *yb});
  if (!p.on_curve()) return std::nullopt;
  // The twist has a large cofactor: on-curve alone admits points outside
  // the order-r subgroup, which would break pairing soundness downstream.
  if (!p.mul(ff::Fr::MOD).is_identity()) return std::nullopt;
  return p;
}

std::vector<std::uint8_t> g2_to_bytes(const G2& p) {
  std::vector<std::uint8_t> out(128, 0);
  if (p.is_identity()) return out;
  Fp2 x, y;
  p.to_affine(x, y);
  const auto put = [&out](std::size_t off, const Fp& v) {
    const auto b = ff::u256_to_bytes(v.to_canonical());
    std::copy(b.begin(), b.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
  };
  put(0, x.a);
  put(32, x.b);
  put(64, y.a);
  put(96, y.b);
  return out;
}

}  // namespace zkdet::ec
