// Short-Weierstrass curve points (a = 0) in Jacobian coordinates,
// templated over the coordinate field so that BN-254 G1 (over Fp) and
// G2 (over Fp2, the sextic twist) share one implementation.
//
// Traits contract:
//   using Field = ...;
//   static const Field& b();            // curve constant
//   static const Field& gen_x();        // affine generator
//   static const Field& gen_y();
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "ff/bn254.hpp"
#include "ff/fp2.hpp"

namespace zkdet::ec {

using ff::Fr;
using ff::U256;

template <typename Traits>
struct Point {
  using F = typename Traits::Field;

  // Jacobian: affine (X/Z^2, Y/Z^3); Z == 0 encodes the identity.
  F X{};
  F Y{};
  F Z{};

  Point() : X(F::zero()), Y(F::one()), Z(F::zero()) {}
  Point(const F& x, const F& y, const F& z) : X(x), Y(y), Z(z) {}

  [[nodiscard]] static Point identity() { return Point{}; }
  [[nodiscard]] static Point generator() {
    return from_affine(Traits::gen_x(), Traits::gen_y());
  }
  [[nodiscard]] static Point from_affine(const F& x, const F& y) {
    return Point{x, y, F::one()};
  }

  [[nodiscard]] bool is_identity() const { return Z.is_zero(); }

  // Affine coordinates; must not be called on the identity.
  void to_affine(F& x, F& y) const {
    ZKDET_CHECK(!is_identity(), "to_affine called on the identity");
    const F zinv = Z.inverse();
    const F zinv2 = zinv.square();
    x = X * zinv2;
    y = Y * zinv2 * zinv;
  }

  [[nodiscard]] bool on_curve() const {
    if (is_identity()) return true;
    // Y^2 = X^3 + b Z^6
    const F z2 = Z.square();
    const F z6 = z2.square() * z2;
    return Y.square() == X.square() * X + Traits::b() * z6;
  }

  bool operator==(const Point& o) const {
    if (is_identity() || o.is_identity()) {
      return is_identity() && o.is_identity();
    }
    // cross-multiply to compare affine coordinates
    const F z1_2 = Z.square();
    const F z2_2 = o.Z.square();
    if (X * z2_2 != o.X * z1_2) return false;
    return Y * z2_2 * o.Z == o.Y * z1_2 * Z;
  }
  bool operator!=(const Point& o) const { return !(*this == o); }

  [[nodiscard]] Point dbl() const {
    if (is_identity()) return *this;
    // dbl-2009-l formulas for a = 0
    const F A = X.square();
    const F B = Y.square();
    const F C = B.square();
    F D = (X + B).square() - A - C;
    D = D + D;
    const F E = A + A + A;
    const F Fq = E.square();
    const F X3 = Fq - (D + D);
    F eight_c = C + C;
    eight_c = eight_c + eight_c;
    eight_c = eight_c + eight_c;
    const F Y3 = E * (D - X3) - eight_c;
    const F Z3 = (Y * Z) + (Y * Z);
    return Point{X3, Y3, Z3};
  }

  [[nodiscard]] Point operator+(const Point& o) const {
    if (is_identity()) return o;
    if (o.is_identity()) return *this;
    // add-2007-bl
    const F Z1Z1 = Z.square();
    const F Z2Z2 = o.Z.square();
    const F U1 = X * Z2Z2;
    const F U2 = o.X * Z1Z1;
    const F S1 = Y * o.Z * Z2Z2;
    const F S2 = o.Y * Z * Z1Z1;
    if (U1 == U2) {
      if (S1 == S2) return dbl();
      return identity();
    }
    const F H = U2 - U1;
    F I = H + H;
    I = I.square();
    const F J = H * I;
    F rr = S2 - S1;
    rr = rr + rr;
    const F V = U1 * I;
    const F X3 = rr.square() - J - V - V;
    F S1J = S1 * J;
    const F Y3 = rr * (V - X3) - (S1J + S1J);
    const F Z3 = ((Z + o.Z).square() - Z1Z1 - Z2Z2) * H;
    return Point{X3, Y3, Z3};
  }

  Point& operator+=(const Point& o) { return *this = *this + o; }

  [[nodiscard]] Point operator-() const {
    if (is_identity()) return *this;
    return Point{X, -Y, Z};
  }
  [[nodiscard]] Point operator-(const Point& o) const { return *this + (-o); }

  [[nodiscard]] Point mul(const U256& k) const {
    Point acc = identity();
    for (std::size_t i = k.bit_length(); i-- > 0;) {
      acc = acc.dbl();
      if (k.bit(i)) acc += *this;
    }
    return acc;
  }
  [[nodiscard]] Point mul(const Fr& k) const { return mul(k.to_canonical()); }
};

struct G1Traits {
  using Field = ff::Fp;
  static const Field& b();
  static const Field& gen_x();
  static const Field& gen_y();
};

struct G2Traits {
  using Field = ff::Fp2;
  static const Field& b();
  static const Field& gen_x();
  static const Field& gen_y();
};

using G1 = Point<G1Traits>;
using G2 = Point<G2Traits>;

// 64-byte uncompressed affine serialization of a G1 point (x||y big
// endian); the identity serializes as all zeros.
std::vector<std::uint8_t> g1_to_bytes(const G1& p);
std::vector<std::uint8_t> g2_to_bytes(const G2& p);

// Deserialization; rejects (nullopt) malformed encodings and points
// that are not on the curve.
std::optional<G1> g1_from_bytes(std::span<const std::uint8_t> bytes);
std::optional<G2> g2_from_bytes(std::span<const std::uint8_t> bytes);

}  // namespace zkdet::ec
