// Short-Weierstrass curve points (a = 0), templated over the
// coordinate field so that BN-254 G1 (over Fp) and G2 (over Fp2, the
// sextic twist) share one implementation.
//
// Two representations (see DESIGN.md, "Curve arithmetic & coordinate
// systems"):
//   Point<Traits>        Jacobian (X/Z^2, Y/Z^3) — the working form for
//                        chained group operations (no inversions).
//   AffinePoint<Traits>  (x, y) plus an infinity flag — the storage form
//                        for precomputed bases (SRS powers, fixed-base
//                        tables). Mixed addition Point += AffinePoint is
//                        ~11 field muls vs ~16 for Jacobian+Jacobian,
//                        and negation is free, which is what makes the
//                        signed-digit affine-base MSM in msm.cpp pay.
// batch_normalize converts a whole vector Jacobian -> affine with a
// single field inversion (Montgomery's prefix-product trick).
//
// Traits contract:
//   using Field = ...;
//   static const Field& b();            // curve constant
//   static const Field& gen_x();        // affine generator
//   static const Field& gen_y();
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "ff/bn254.hpp"
#include "ff/fp2.hpp"

namespace zkdet::ec {

using ff::Fr;
using ff::U256;

template <typename Traits>
struct AffinePoint;

namespace detail {

// Constant-shape conditional swap: mask must be 0 or ~0. Swaps raw
// Montgomery limbs with masked XOR so the memory-access pattern and
// instruction stream do not depend on the mask value.
inline void ct_swap(ff::Fp& a, ff::Fp& b, std::uint64_t mask) {
  U256 va = a.raw();
  U256 vb = b.raw();
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t t = mask & (va.limb[i] ^ vb.limb[i]);
    va.limb[i] ^= t;
    vb.limb[i] ^= t;
  }
  a = ff::Fp::from_raw(va);
  b = ff::Fp::from_raw(vb);
}

inline void ct_swap(ff::Fp2& a, ff::Fp2& b, std::uint64_t mask) {
  ct_swap(a.a, b.a, mask);
  ct_swap(a.b, b.b, mask);
}

}  // namespace detail

template <typename Traits>
struct Point {
  using F = typename Traits::Field;

  // Jacobian: affine (X/Z^2, Y/Z^3); Z == 0 encodes the identity.
  F X{};
  F Y{};
  F Z{};

  Point() : X(F::zero()), Y(F::one()), Z(F::zero()) {}
  Point(const F& x, const F& y, const F& z) : X(x), Y(y), Z(z) {}

  [[nodiscard]] static Point identity() { return Point{}; }
  [[nodiscard]] static Point generator() {
    return from_affine(Traits::gen_x(), Traits::gen_y());
  }
  [[nodiscard]] static Point from_affine(const F& x, const F& y) {
    return Point{x, y, F::one()};
  }

  [[nodiscard]] bool is_identity() const { return Z.is_zero(); }

  // Affine coordinates; must not be called on the identity.
  void to_affine(F& x, F& y) const {
    ZKDET_CHECK(!is_identity(), "to_affine called on the identity");
    const F zinv = Z.inverse();
    const F zinv2 = zinv.square();
    x = X * zinv2;
    y = Y * zinv2 * zinv;
  }

  [[nodiscard]] bool on_curve() const {
    if (is_identity()) return true;
    // Y^2 = X^3 + b Z^6
    const F z2 = Z.square();
    const F z6 = z2.square() * z2;
    return Y.square() == X.square() * X + Traits::b() * z6;
  }

  bool operator==(const Point& o) const {
    if (is_identity() || o.is_identity()) {
      return is_identity() && o.is_identity();
    }
    // cross-multiply to compare affine coordinates
    const F z1_2 = Z.square();
    const F z2_2 = o.Z.square();
    if (X * z2_2 != o.X * z1_2) return false;
    return Y * z2_2 * o.Z == o.Y * z1_2 * Z;
  }
  bool operator!=(const Point& o) const { return !(*this == o); }

  [[nodiscard]] Point dbl() const {
    if (is_identity()) return *this;
    // dbl-2009-l formulas for a = 0
    const F A = X.square();
    const F B = Y.square();
    const F C = B.square();
    F D = (X + B).square() - A - C;
    D = D + D;
    const F E = A + A + A;
    const F Fq = E.square();
    const F X3 = Fq - (D + D);
    F eight_c = C + C;
    eight_c = eight_c + eight_c;
    eight_c = eight_c + eight_c;
    const F Y3 = E * (D - X3) - eight_c;
    const F Z3 = (Y * Z) + (Y * Z);
    return Point{X3, Y3, Z3};
  }

  [[nodiscard]] Point operator+(const Point& o) const {
    if (is_identity()) return o;
    if (o.is_identity()) return *this;
    // add-2007-bl
    const F Z1Z1 = Z.square();
    const F Z2Z2 = o.Z.square();
    const F U1 = X * Z2Z2;
    const F U2 = o.X * Z1Z1;
    const F S1 = Y * o.Z * Z2Z2;
    const F S2 = o.Y * Z * Z1Z1;
    if (U1 == U2) {
      if (S1 == S2) return dbl();
      return identity();
    }
    const F H = U2 - U1;
    F I = H + H;
    I = I.square();
    const F J = H * I;
    F rr = S2 - S1;
    rr = rr + rr;
    const F V = U1 * I;
    const F X3 = rr.square() - J - V - V;
    F S1J = S1 * J;
    const F Y3 = rr * (V - X3) - (S1J + S1J);
    const F Z3 = ((Z + o.Z).square() - Z1Z1 - Z2Z2) * H;
    return Point{X3, Y3, Z3};
  }

  Point& operator+=(const Point& o) { return *this = *this + o; }

  // Mixed addition against an affine point (see madd below).
  Point& operator+=(const AffinePoint<Traits>& o) {
    if (o.is_identity()) return *this;
    return madd(o.x, o.y);
  }
  // Mixed subtraction: affine negation is free ((x, y) -> (x, -y)), so
  // subtracting a base costs one field negation and no point temporary.
  // This is the negative-digit half of the signed-window MSM.
  Point& operator-=(const AffinePoint<Traits>& o) {
    if (o.is_identity()) return *this;
    return madd(o.x, -o.y);
  }
  [[nodiscard]] Point operator+(const AffinePoint<Traits>& o) const {
    Point t = *this;
    t += o;
    return t;
  }
  [[nodiscard]] Point operator-(const AffinePoint<Traits>& o) const {
    Point t = *this;
    t -= o;
    return t;
  }

  [[nodiscard]] Point operator-() const {
    if (is_identity()) return *this;
    return Point{X, -Y, Z};
  }
  [[nodiscard]] Point operator-(const Point& o) const { return *this + (-o); }

  [[nodiscard]] Point mul(const U256& k) const {
    Point acc = identity();
    for (std::size_t i = k.bit_length(); i-- > 0;) {
      acc = acc.dbl();
      if (k.bit(i)) acc += *this;
    }
    return acc;
  }
  [[nodiscard]] Point mul(const Fr& k) const { return mul(k.to_canonical()); }

  // Constant-time scalar multiplication for secret scalars (signing
  // keys, nonces, key-secure-exchange blinds): a Montgomery ladder over
  // a fixed 256 iterations whose per-bit data flow is two constant-shape
  // conditional swaps plus one add and one double — the iteration count
  // and the sequence of group operations are independent of the scalar.
  // Remaining caveat (documented in DESIGN.md): the group law itself
  // short-circuits on the identity, so the ladder's leading-zero window
  // (R0 == identity until the top set bit) is distinguishable; for
  // uniformly random 254-bit scalars that leaks only the position of the
  // most significant bit, not its lower bits. Verification and all
  // public-scalar paths should keep using the faster variable-time mul.
  [[nodiscard]] Point mul_ct(const U256& k) const {
    Point r0 = identity();
    Point r1 = *this;
    for (std::size_t i = 256; i-- > 0;) {
      const std::uint64_t bit = (k.limb[i / 64] >> (i % 64)) & 1u;
      const std::uint64_t mask = ~(bit - 1);  // 0 -> 0, 1 -> ~0
      ct_swap_points(r0, r1, mask);
      r1 = r0 + r1;  // ladder invariant: r1 - r0 == *this
      r0 = r0.dbl();
      ct_swap_points(r0, r1, mask);
    }
    return r0;
  }
  [[nodiscard]] Point mul_ct(const Fr& k) const {
    return mul_ct(k.to_canonical());
  }

 private:
  static void ct_swap_points(Point& a, Point& b, std::uint64_t mask) {
    detail::ct_swap(a.X, b.X, mask);
    detail::ct_swap(a.Y, b.Y, mask);
    detail::ct_swap(a.Z, b.Z, mask);
  }

  // Mixed addition against the non-identity affine point (ox, oy)
  // (madd-2007-bl): ~11 field muls/squares instead of the ~16 of the
  // full Jacobian add. The inner loop of the affine-base MSM bucket
  // accumulation; +=/-= wrap it with the identity checks.
  Point& madd(const F& ox, const F& oy) {
    if (is_identity()) {
      X = ox;
      Y = oy;
      Z = F::one();
      return *this;
    }
    const F Z1Z1 = Z.square();
    const F U2 = ox * Z1Z1;
    const F S2 = oy * Z * Z1Z1;
    if (U2 == X) {
      if (S2 == Y) return *this = dbl();
      return *this = identity();
    }
    const F H = U2 - X;
    const F HH = H.square();
    F I = HH + HH;
    I = I + I;  // 4*HH
    const F J = H * I;
    F rr = S2 - Y;
    rr = rr + rr;
    const F V = X * I;
    const F X3 = rr.square() - J - V - V;
    const F YJ = Y * J;
    const F Y3 = rr * (V - X3) - (YJ + YJ);
    const F Z3 = (Z + H).square() - Z1Z1 - HH;
    X = X3;
    Y = Y3;
    Z = Z3;
    return *this;
  }
};

// Affine point: the storage representation for precomputed bases. Two
// coordinates instead of three (smaller tables, better cache behaviour)
// and free negation (x, -y) — which is what lets the MSM use signed
// digit windows with half the buckets.
template <typename Traits>
struct AffinePoint {
  using F = typename Traits::Field;

  F x{};
  F y{};
  bool infinity = true;

  AffinePoint() = default;
  AffinePoint(const F& x_, const F& y_) : x(x_), y(y_), infinity(false) {}

  [[nodiscard]] static AffinePoint identity() { return AffinePoint{}; }
  [[nodiscard]] static AffinePoint generator() {
    return AffinePoint{Traits::gen_x(), Traits::gen_y()};
  }

  [[nodiscard]] bool is_identity() const { return infinity; }

  [[nodiscard]] Point<Traits> to_jacobian() const {
    if (infinity) return Point<Traits>::identity();
    return Point<Traits>::from_affine(x, y);
  }

  [[nodiscard]] AffinePoint operator-() const {
    if (infinity) return *this;
    return AffinePoint{x, -y};
  }

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
  bool operator!=(const AffinePoint& o) const { return !(*this == o); }
};

// Batch Jacobian -> affine normalization: one field inversion for the
// whole vector via Montgomery's prefix-product trick (mirrors
// plonk.cpp's batch_inverse). Identity inputs map to affine identity.
template <typename Traits>
std::vector<AffinePoint<Traits>> batch_normalize_impl(
    std::span<const Point<Traits>> points) {
  using F = typename Traits::Field;
  const std::size_t n = points.size();
  std::vector<AffinePoint<Traits>> out(n);
  // prefix[k] = product of the first k non-identity Z coordinates.
  std::vector<F> prefix;
  prefix.reserve(n + 1);
  prefix.push_back(F::one());
  for (const auto& p : points) {
    if (!p.is_identity()) prefix.push_back(prefix.back() * p.Z);
  }
  F inv = prefix.back().inverse();
  std::size_t j = prefix.size() - 1;
  for (std::size_t i = n; i-- > 0;) {
    const auto& p = points[i];
    if (p.is_identity()) continue;
    const F zinv = prefix[--j] * inv;
    inv *= p.Z;
    const F zinv2 = zinv.square();
    out[i] = AffinePoint<Traits>{p.X * zinv2, p.Y * zinv2 * zinv};
  }
  return out;
}

struct G1Traits {
  using Field = ff::Fp;
  static const Field& b();
  static const Field& gen_x();
  static const Field& gen_y();
};

struct G2Traits {
  using Field = ff::Fp2;
  static const Field& b();
  static const Field& gen_x();
  static const Field& gen_y();
};

using G1 = Point<G1Traits>;
using G2 = Point<G2Traits>;
using G1Affine = AffinePoint<G1Traits>;
using G2Affine = AffinePoint<G2Traits>;

inline std::vector<G1Affine> batch_normalize(std::span<const G1> points) {
  return batch_normalize_impl<G1Traits>(points);
}
inline std::vector<G2Affine> batch_normalize(std::span<const G2> points) {
  return batch_normalize_impl<G2Traits>(points);
}

// 64-byte uncompressed affine serialization of a G1 point (x||y big
// endian); the identity serializes as all zeros.
std::vector<std::uint8_t> g1_to_bytes(const G1& p);
std::vector<std::uint8_t> g2_to_bytes(const G2& p);

// Deserialization; rejects (nullopt) malformed encodings and points
// that are not on the curve.
std::optional<G1> g1_from_bytes(std::span<const std::uint8_t> bytes);
std::optional<G2> g2_from_bytes(std::span<const std::uint8_t> bytes);

}  // namespace zkdet::ec
