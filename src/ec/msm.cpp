#include "ec/msm.hpp"

#include <algorithm>
#include "check/check.hpp"

#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::ec {

namespace {

// BN-254 scalars are < r < 2^254.
constexpr std::size_t kScalarBits = 254;

// Below this input size one bucket pass is cheaper than dispatching
// window tasks to the pool; run the windows serially.
constexpr std::size_t kMsmParallelThreshold = 256;

// Below this size the bucket machinery (digit decomposition, bucket
// array setup) costs more than naive double-and-add.
constexpr std::size_t kMsmNaiveThreshold = 8;

template <typename Point>
Point msm_naive_impl(std::span<const Fr> scalars, std::span<const Point> points) {
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  Point acc = Point::identity();
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    acc += points[i].mul(scalars[i]);
  }
  return acc;
}

// c bits of k starting at bit `off` (off < 256; bits past 255 read 0).
std::uint64_t window_bits(const U256& k, std::size_t off, std::size_t c) {
  const std::size_t limb = off / 64;
  const std::size_t lo = off % 64;
  std::uint64_t v = k.limb[limb] >> lo;
  if (lo + c > 64 && limb + 1 < 4) v |= k.limb[limb + 1] << (64 - lo);
  return v & ((1ull << c) - 1);
}

// Signed-digit decomposition: k = sum_w out[w] * 2^(c*w) with digits in
// [-2^(c-1), 2^(c-1)]. Digits for scalar i land at out[w * stride + i]
// (column-major: window tasks read their digit row contiguously). For
// k < 2^254 and num_windows = ceil(255 / c) the top window holds at
// most c-1 raw bits, so the final carry is always zero.
void signed_digits(const U256& k, std::size_t c, std::size_t num_windows,
                   std::size_t stride, std::size_t i, std::int32_t* out) {
  const std::int64_t full = std::int64_t{1} << c;
  const std::int64_t half = full >> 1;
  std::uint64_t carry = 0;
  for (std::size_t w = 0; w < num_windows; ++w) {
    const auto d = static_cast<std::int64_t>(window_bits(k, w * c, c) + carry);
    std::int64_t digit = d;
    carry = 0;
    if (d > half) {
      digit = d - full;
      carry = 1;
    }
    // digit in [-2^15, 2^15] (c <= 16), well inside int32 range.
    out[w * stride + i] =  // zkdet-lint: allow(narrowing-cast) digit fits c+1 bits
        static_cast<std::int32_t>(digit);
  }
}

// Signed-digit Pippenger over affine bases: bucket accumulation is a
// mixed add, negative digits use the free affine negation, and only
// 2^(c-1) buckets are needed per window.
template <typename Traits>
Point<Traits> msm_affine_impl(std::span<const Fr> scalars,
                              std::span<const AffinePoint<Traits>> points) {
  using P = Point<Traits>;
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  const std::size_t n = scalars.size();
  if (n == 0) return P::identity();
  if (n < kMsmNaiveThreshold) {
    P acc = P::identity();
    for (std::size_t i = 0; i < n; ++i) {
      acc += points[i].to_jacobian().mul(scalars[i]);
    }
    return acc;
  }
  runtime::ScopedTimer timer(runtime::counters::msm_ns);

  const std::size_t c = msm_window_size(n, sizeof(P));
  const std::size_t num_windows = (kScalarBits + c) / c;  // ceil(255 / c)
  std::vector<std::int32_t> digits(num_windows * n);
  for (std::size_t i = 0; i < n; ++i) {
    signed_digits(scalars[i].to_canonical(), c, num_windows, n, i,
                  digits.data());
  }

  const std::size_t num_buckets = 1ull << (c - 1);
  std::vector<P> window_sums(num_windows, P::identity());

  const auto process_window = [&](std::size_t w) {
    std::vector<P> buckets(num_buckets, P::identity());
    const std::int32_t* wd = digits.data() + w * n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t d = wd[i];
      if (d > 0) {
        buckets[static_cast<std::size_t>(d) - 1] += points[i];
      } else if (d < 0) {
        buckets[static_cast<std::size_t>(-d) - 1] -= points[i];
      }
    }
    // running-sum trick: sum_j (j+1) * bucket[j]
    P running = P::identity();
    P acc = P::identity();
    for (std::size_t j = buckets.size(); j-- > 0;) {
      running += buckets[j];
      acc += running;
    }
    window_sums[w] = acc;
  };

  // Windows are independent; large inputs share the process-wide pool
  // (one chunk per window) instead of spawning threads per call.
  auto& pool = runtime::ThreadPool::instance();
  if (n < kMsmParallelThreshold || pool.concurrency() <= 1) {
    for (std::size_t w = 0; w < num_windows; ++w) process_window(w);
  } else {
    pool.parallel_for(num_windows, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t w = lo; w < hi; ++w) process_window(w);
    });
  }

  P result = P::identity();
  for (std::size_t w = num_windows; w-- > 0;) {
    for (std::size_t b = 0; b < c; ++b) result = result.dbl();
    result += window_sums[w];
  }
  return result;
}

// Pre-overhaul window choice, preserved verbatim for the Jacobian
// baseline — including its unbounded bucket memory (c = 16 means ~19 MB
// of Jacobian G2 buckets per window), which is exactly the behaviour
// the production chooser msm_window_size() exists to fix. Changing the
// baseline would silently rescale every BENCH_msm.json comparison.
std::size_t pick_window_jacobian(std::size_t n) {
  if (n < 32) return 3;
  std::size_t c = 3;
  while ((1ull << (c + 1)) < n && c < 16) ++c;
  return c;
}

// Unsigned-window full-Jacobian Pippenger: the pre-affine implementation,
// kept as the benchmark baseline and differential-test reference.
template <typename Point>
Point msm_jacobian_impl(std::span<const Fr> scalars,
                        std::span<const Point> points) {
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  const std::size_t n = scalars.size();
  if (n == 0) return Point::identity();
  if (n < kMsmNaiveThreshold) return msm_naive_impl(scalars, points);
  runtime::ScopedTimer timer(runtime::counters::msm_ns);

  const std::size_t c = pick_window_jacobian(n);
  const std::size_t num_windows = (kScalarBits + c - 1) / c;
  std::vector<U256> ks(n);
  for (std::size_t i = 0; i < n; ++i) ks[i] = scalars[i].to_canonical();

  std::vector<Point> window_sums(num_windows, Point::identity());

  const auto process_window = [&](std::size_t w) {
    std::vector<Point> buckets((1ull << c) - 1, Point::identity());
    const std::size_t bit_off = w * c;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t digit = 0;
      for (std::size_t b = 0; b < c; ++b) {
        const std::size_t bit = bit_off + b;
        if (bit < 256 && ks[i].bit(bit)) digit |= (1ull << b);
      }
      if (digit != 0) buckets[digit - 1] += points[i];
    }
    Point running = Point::identity();
    Point acc = Point::identity();
    for (std::size_t j = buckets.size(); j-- > 0;) {
      running += buckets[j];
      acc += running;
    }
    window_sums[w] = acc;
  };

  auto& pool = runtime::ThreadPool::instance();
  if (n < kMsmParallelThreshold || pool.concurrency() <= 1) {
    for (std::size_t w = 0; w < num_windows; ++w) process_window(w);
  } else {
    pool.parallel_for(num_windows, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t w = lo; w < hi; ++w) process_window(w);
    });
  }

  Point result = Point::identity();
  for (std::size_t w = num_windows; w-- > 0;) {
    for (std::size_t b = 0; b < c; ++b) result = result.dbl();
    result += window_sums[w];
  }
  return result;
}

// Fixed-base table: table[w][b] = (b+1) * 2^(8w) * G for the generator,
// stored affine (smaller table, mixed adds in fixed_mul). Built in
// Jacobian form, then batch-normalized with a single inversion.
template <typename Traits>
const std::vector<std::array<AffinePoint<Traits>, 255>>& generator_table() {
  using P = Point<Traits>;
  static const std::vector<std::array<AffinePoint<Traits>, 255>> table = [] {
    std::vector<P> flat;
    flat.reserve(32 * 255);
    P base = P::generator();
    for (std::size_t w = 0; w < 32; ++w) {
      P acc = base;
      for (std::size_t b = 0; b < 255; ++b) {
        flat.push_back(acc);
        acc += base;
      }
      base = acc;  // 256 * old base
    }
    const auto affine = batch_normalize_impl<Traits>(std::span<const P>(flat));
    std::vector<std::array<AffinePoint<Traits>, 255>> t(32);
    for (std::size_t w = 0; w < 32; ++w) {
      for (std::size_t b = 0; b < 255; ++b) t[w][b] = affine[w * 255 + b];
    }
    return t;
  }();
  return table;
}

template <typename Traits>
Point<Traits> fixed_mul(const Fr& k) {
  const U256 v = k.to_canonical();
  const auto& table = generator_table<Traits>();
  Point<Traits> acc = Point<Traits>::identity();
  for (std::size_t w = 0; w < 32; ++w) {
    const std::uint8_t byte =  // zkdet-lint: allow(narrowing-cast) window extract
        static_cast<std::uint8_t>(v.limb[w / 8] >> ((w % 8) * 8));
    if (byte != 0) acc += table[w][byte - 1];  // mixed add
  }
  return acc;
}

}  // namespace

std::size_t msm_window_size(std::size_t n, std::size_t point_bytes) {
  if (n < 32) return 3;
  std::size_t best = 3;
  std::uint64_t best_cost = ~0ull;
  for (std::size_t c = 3; c <= 16; ++c) {
    if ((1ull << (c - 1)) * point_bytes > kMsmMaxBucketBytes) break;
    const std::uint64_t windows = (kScalarBits + c) / c;
    const std::uint64_t buckets = 1ull << (c - 1);
    // Field-mul cost model per window: the first hit on an empty bucket
    // is a coordinate copy (~1), later hits are mixed adds (~11 muls),
    // and the running sum costs two Jacobian adds (~16 muls) per
    // bucket. The first-touch term matters: wide windows see most
    // buckets only once or twice.
    const std::uint64_t touches = std::min<std::uint64_t>(n, buckets);
    const std::uint64_t cost =
        windows * (11ull * (n - touches) + touches + 32ull * buckets);
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

G1 msm_naive(std::span<const Fr> scalars, std::span<const G1> points) {
  return msm_naive_impl(scalars, points);
}

G2 msm_naive_g2(std::span<const Fr> scalars, std::span<const G2> points) {
  return msm_naive_impl(scalars, points);
}

G1 msm(std::span<const Fr> scalars, std::span<const G1> points) {
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  if (points.size() < kMsmNaiveThreshold) {
    return msm_naive_impl(scalars, points);
  }
  const auto affine = batch_normalize(points);
  return msm_affine_impl<G1Traits>(scalars,
                                   std::span<const G1Affine>(affine));
}

G1 msm(std::span<const Fr> scalars, std::span<const G1Affine> points) {
  return msm_affine_impl<G1Traits>(scalars, points);
}

G2 msm_g2(std::span<const Fr> scalars, std::span<const G2> points) {
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  if (points.size() < kMsmNaiveThreshold) {
    return msm_naive_impl(scalars, points);
  }
  const auto affine = batch_normalize(points);
  return msm_affine_impl<G2Traits>(scalars,
                                   std::span<const G2Affine>(affine));
}

G2 msm_g2(std::span<const Fr> scalars, std::span<const G2Affine> points) {
  return msm_affine_impl<G2Traits>(scalars, points);
}

G1 msm_jacobian(std::span<const Fr> scalars, std::span<const G1> points) {
  return msm_jacobian_impl(scalars, points);
}

G2 msm_jacobian_g2(std::span<const Fr> scalars, std::span<const G2> points) {
  return msm_jacobian_impl(scalars, points);
}

G1 g1_mul_generator(const Fr& k) { return fixed_mul<G1Traits>(k); }
G2 g2_mul_generator(const Fr& k) { return fixed_mul<G2Traits>(k); }

}  // namespace zkdet::ec
