#include "ec/msm.hpp"

#include <algorithm>
#include "check/check.hpp"

#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::ec {

namespace {

std::size_t pick_window(std::size_t n) {
  if (n < 32) return 3;
  std::size_t c = 3;
  while ((1ull << (c + 1)) < n && c < 16) ++c;
  return c;
}

template <typename Point>
Point msm_naive_impl(std::span<const Fr> scalars, std::span<const Point> points) {
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  Point acc = Point::identity();
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    acc += points[i].mul(scalars[i]);
  }
  return acc;
}

// Below this input size one bucket pass is cheaper than dispatching
// window tasks to the pool; run the windows serially.
constexpr std::size_t kMsmParallelThreshold = 256;

template <typename Point>
Point msm_impl(std::span<const Fr> scalars, std::span<const Point> points) {
  ZKDET_CHECK(scalars.size() == points.size(),
              "msm: scalar/point count mismatch");
  const std::size_t n = scalars.size();
  if (n == 0) return Point::identity();
  if (n < 8) return msm_naive_impl(scalars, points);
  runtime::ScopedTimer timer(runtime::counters::msm_ns);

  const std::size_t c = pick_window(n);
  const std::size_t num_windows = (254 + c - 1) / c;
  std::vector<U256> ks(n);
  for (std::size_t i = 0; i < n; ++i) ks[i] = scalars[i].to_canonical();

  std::vector<Point> window_sums(num_windows, Point::identity());

  const auto process_window = [&](std::size_t w) {
    std::vector<Point> buckets((1ull << c) - 1, Point::identity());
    const std::size_t bit_off = w * c;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t digit = 0;
      for (std::size_t b = 0; b < c; ++b) {
        const std::size_t bit = bit_off + b;
        if (bit < 256 && ks[i].bit(bit)) digit |= (1ull << b);
      }
      if (digit != 0) buckets[digit - 1] += points[i];
    }
    // running-sum trick: sum_j j * bucket[j]
    Point running = Point::identity();
    Point acc = Point::identity();
    for (std::size_t j = buckets.size(); j-- > 0;) {
      running += buckets[j];
      acc += running;
    }
    window_sums[w] = acc;
  };

  // Windows are independent; large inputs share the process-wide pool
  // (one chunk per window) instead of spawning threads per call.
  auto& pool = runtime::ThreadPool::instance();
  if (n < kMsmParallelThreshold || pool.concurrency() <= 1) {
    for (std::size_t w = 0; w < num_windows; ++w) process_window(w);
  } else {
    pool.parallel_for(num_windows, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t w = lo; w < hi; ++w) process_window(w);
    });
  }

  Point result = Point::identity();
  for (std::size_t w = num_windows; w-- > 0;) {
    for (std::size_t b = 0; b < c; ++b) result = result.dbl();
    result += window_sums[w];
  }
  return result;
}

// Fixed-base table: table[w][b] = (b+1) * 2^(8w) * G for the generator.
template <typename Point>
const std::vector<std::array<Point, 255>>& generator_table() {
  static const std::vector<std::array<Point, 255>> table = [] {
    std::vector<std::array<Point, 255>> t(32);
    Point base = Point::generator();
    for (std::size_t w = 0; w < 32; ++w) {
      Point acc = base;
      for (std::size_t b = 0; b < 255; ++b) {
        t[w][b] = acc;
        acc += base;
      }
      base = acc;  // 256 * old base
    }
    return t;
  }();
  return table;
}

template <typename Point>
Point fixed_mul(const Fr& k) {
  const U256 v = k.to_canonical();
  const auto& table = generator_table<Point>();
  Point acc = Point::identity();
  for (std::size_t w = 0; w < 32; ++w) {
    const std::uint8_t byte =  // zkdet-lint: allow(narrowing-cast) window extract
        static_cast<std::uint8_t>(v.limb[w / 8] >> ((w % 8) * 8));
    if (byte != 0) acc += table[w][byte - 1];
  }
  return acc;
}

}  // namespace

G1 msm_naive(std::span<const Fr> scalars, std::span<const G1> points) {
  return msm_naive_impl(scalars, points);
}

G1 msm(std::span<const Fr> scalars, std::span<const G1> points) {
  return msm_impl(scalars, points);
}

G2 msm_g2(std::span<const Fr> scalars, std::span<const G2> points) {
  return msm_impl(scalars, points);
}

G1 g1_mul_generator(const Fr& k) { return fixed_mul<G1>(k); }
G2 g2_mul_generator(const Fr& k) { return fixed_mul<G2>(k); }

}  // namespace zkdet::ec
