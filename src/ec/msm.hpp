// Multi-scalar multiplication (Pippenger's bucket method) over G1/G2.
//
// The Plonk prover's hot loop is committing polynomials: an n-term MSM
// against the SRS powers. The production path works on affine bases
// (precomputed tables: SRS powers, fixed-base generator windows) with
// signed-digit windows — digits in [-2^(c-1), 2^(c-1)], so negating an
// affine base (free: (x, -y)) halves the bucket count and memory, and
// every bucket accumulation is a mixed add (~11 field muls) instead of
// a full Jacobian add (~16). Buckets are processed per window, with
// windows distributed over the shared runtime::ThreadPool above a size
// threshold (each window is independent; only the final Horner-style
// combine is sequential). Small inputs run serially — task dispatch
// would dominate.
//
// The pre-affine full-Jacobian bucket path is kept as msm_jacobian /
// msm_jacobian_g2: it is the baseline for the BENCH_msm.json sweep in
// bench_primitives and the third leg of the differential tests.
#pragma once

#include <span>
#include <vector>

#include "ec/curve.hpp"

namespace zkdet::ec {

// Hard per-window bucket-memory bound: window width is chosen so one
// window's bucket array never exceeds this, regardless of n. (Before
// this cap a c = 16 window allocated (2^16 - 1) Jacobian G2 buckets,
// ~19 MB per window per pool worker.)
inline constexpr std::size_t kMsmMaxBucketBytes = 1u << 20;

// Signed-digit window width for an n-term MSM over points of
// `point_bytes` each; (1 << (c - 1)) * point_bytes <= kMsmMaxBucketBytes
// always holds. Exposed for tests.
std::size_t msm_window_size(std::size_t n, std::size_t point_bytes);

// sum_i scalars[i] * points[i]; sizes must match. The Jacobian-input
// overloads batch-normalize once and run the affine path; callers with
// long-lived bases should normalize once themselves (cf. plonk::Srs).
G1 msm(std::span<const Fr> scalars, std::span<const G1> points);
G1 msm(std::span<const Fr> scalars, std::span<const G1Affine> points);
G2 msm_g2(std::span<const Fr> scalars, std::span<const G2> points);
G2 msm_g2(std::span<const Fr> scalars, std::span<const G2Affine> points);

// Unsigned-window full-Jacobian Pippenger (pre-affine baseline; kept
// for benchmarking and differential testing).
G1 msm_jacobian(std::span<const Fr> scalars, std::span<const G1> points);
G2 msm_jacobian_g2(std::span<const Fr> scalars, std::span<const G2> points);

// Naive double-and-add references (used by tests to cross-check).
G1 msm_naive(std::span<const Fr> scalars, std::span<const G1> points);
G2 msm_naive_g2(std::span<const Fr> scalars, std::span<const G2> points);

// Windowed fixed-base multiplication of the group generator (affine
// tables are built once per process); used by SRS generation and
// Groth16 setup where thousands of generator multiples are needed.
G1 g1_mul_generator(const Fr& k);
G2 g2_mul_generator(const Fr& k);

}  // namespace zkdet::ec
