// Multi-scalar multiplication (Pippenger's bucket method) over G1.
//
// The Plonk prover's hot loop is committing polynomials: an n-term MSM
// against the SRS powers. Buckets are processed per window, with windows
// distributed over the shared runtime::ThreadPool above a size threshold
// (each window is independent; only the final Horner-style combine is
// sequential). Small inputs run serially — task dispatch would dominate.
#pragma once

#include <span>
#include <vector>

#include "ec/curve.hpp"

namespace zkdet::ec {

// sum_i scalars[i] * points[i]; sizes must match.
G1 msm(std::span<const Fr> scalars, std::span<const G1> points);
G2 msm_g2(std::span<const Fr> scalars, std::span<const G2> points);

// Naive double-and-add reference (used by tests to cross-check Pippenger).
G1 msm_naive(std::span<const Fr> scalars, std::span<const G1> points);

// Windowed fixed-base multiplication of the group generator (tables are
// built once per process); used by SRS generation and Groth16 setup
// where thousands of generator multiples are needed.
G1 g1_mul_generator(const Fr& k);
G2 g2_mul_generator(const Fr& k);

}  // namespace zkdet::ec
