#include "ec/pairing.hpp"

#include "check/check.hpp"
#include "check/invariants.hpp"
#include "ff/bigint.hpp"

namespace zkdet::ec {

using ff::BigUInt;
using ff::Fp;
using ff::Fp2;
using ff::U256;

namespace {

const BigUInt& final_exponent() {
  static const BigUInt e = [] {
    BigUInt acc = BigUInt::from_u64(1);
    for (int i = 0; i < 12; ++i) acc.mul_u256(Fp::MOD);
    acc.sub_u64(1);
    U256 rem{};
    BigUInt q = ff::bigint_div_u256(acc, Fr::MOD, &rem);
    ZKDET_CHECK(rem.is_zero(), "r must divide p^12 - 1");
    return q;
  }();
  return e;
}

struct AffineG1 {
  Fp x;
  Fp y;
};

// Line through T (doubling tangent) evaluated at untwisted Q=(xq w^2, yq w^3):
//   l = (lambda * x_t - y_t) + (-lambda * xq) w^2 + yq w^3
void eval_line(const Fp& lambda, const AffineG1& t, const Fp2& xq, const Fp2& yq,
               Fp2& l0, Fp2& l2, Fp2& l3) {
  l0 = Fp2{lambda * t.x - t.y, Fp::zero()};
  l2 = xq.scale(-lambda);
  l3 = yq;
}

}  // namespace

Fp12 miller_loop(const G1& p, const G2& q) {
  // Always-on input validation: an off-curve or wrong-subgroup point
  // yields a well-defined rejection instead of a silently wrong pairing
  // value (bilinearity only holds on the order-r subgroups).
  ZKDET_CHECK(check::in_g1(p), "miller_loop: G1 input not on the curve");
  ZKDET_CHECK(check::on_g2_curve(q), "miller_loop: G2 input not on the twist");
  ZKDET_CHECK(check::in_g2_subgroup(q),
              "miller_loop: G2 input outside the order-r subgroup");
  if (p.is_identity() || q.is_identity()) return Fp12::one();
  AffineG1 pa;
  p.to_affine(pa.x, pa.y);
  Fp2 xq, yq;
  q.to_affine(xq, yq);

  const U256 r = Fr::MOD;
  Fp12 f = Fp12::one();
  AffineG1 t = pa;
  bool t_is_identity = false;

  Fp2 l0, l2, l3;
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    if (!t_is_identity) {
      f = f.square();
      // doubling line at t: lambda = 3 x^2 / 2y
      const Fp lambda =
          (t.x.square() * Fp::from_u64(3)) * (t.y.dbl()).inverse();
      eval_line(lambda, t, xq, yq, l0, l2, l3);
      f = f.mul_line(l0, l2, l3);
      // t = 2t (affine)
      const Fp x3 = lambda.square() - t.x.dbl();
      const Fp y3 = lambda * (t.x - x3) - t.y;
      t = {x3, y3};
    } else {
      f = f.square();
    }
    if (r.bit(i) && !t_is_identity) {
      if (t.x == pa.x && t.y == -pa.y) {
        // vertical line (t = -P): value lies in Fp6, killed by the final
        // exponentiation; the sum is the identity.
        t_is_identity = true;
      } else if (t.x == pa.x && t.y == pa.y) {
        // would be a doubling; cannot occur for 1 < s < r-1
        ZKDET_CHECK(false, "unexpected doubling in Miller addition step");
      } else {
        const Fp lambda = (pa.y - t.y) * (pa.x - t.x).inverse();
        eval_line(lambda, t, xq, yq, l0, l2, l3);
        f = f.mul_line(l0, l2, l3);
        const Fp x3 = lambda.square() - t.x - pa.x;
        const Fp y3 = lambda * (t.x - x3) - t.y;
        t = {x3, y3};
      }
    }
  }
  ZKDET_CHECK(t_is_identity,
              "Miller loop must land on the identity (ord P = r)");
  return f;
}

Fp12 final_exponentiation(const Fp12& f) { return f.pow(final_exponent()); }

Fp12 pairing(const G1& p, const G2& q) {
  return final_exponentiation(miller_loop(p, q));
}

bool pairing_product_is_one(const G1& a1, const G2& a2, const G1& b1,
                            const G2& b2) {
  const Fp12 f = miller_loop(a1, a2) * miller_loop(b1, b2);
  return final_exponentiation(f).is_one();
}

bool pairing_product_is_one(std::span<const std::pair<G1, G2>> pairs) {
  Fp12 f = Fp12::one();
  for (const auto& [p, q] : pairs) f *= miller_loop(p, q);
  return final_exponentiation(f).is_one();
}

}  // namespace zkdet::ec
