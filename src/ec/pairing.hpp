// Reduced Tate pairing on BN-254.
//
//   e : G1 x G2 -> mu_r in Fp12,  e(P, Q) = f_{r,P}(psi(Q))^((p^12-1)/r)
//
// where psi is the untwist E'(Fp2) -> E(Fp12), (x, y) -> (x w^2, y w^3)
// with Fp12 = Fp2[w]/(w^6 - xi). The Miller loop runs over the 254-bit
// group order r; line functions are computed from affine G1 arithmetic
// (cheap Fp slopes) and evaluated at the untwisted Q as sparse Fp12
// elements. Vertical lines land in the subfield Fp6 = Fp2[w^2] and are
// annihilated by the final exponentiation (denominator elimination), so
// they are skipped. The final exponent (p^12-1)/r is computed once as a
// big integer and applied by plain square-and-multiply.
//
// This is the paper-substrate substitution documented in DESIGN.md:
// identical bilinear map to the optimal-ate pairing used by Snarkjs,
// with a simpler, slower Miller loop.
#pragma once

#include <span>
#include <utility>

#include "ec/curve.hpp"
#include "ff/fp12.hpp"

namespace zkdet::ec {

using ff::Fp12;

// Miller loop only (no final exponentiation); multiply several of these
// together before a single shared final exponentiation.
Fp12 miller_loop(const G1& p, const G2& q);

// Full reduced Tate pairing. Returns 1 for identity inputs.
Fp12 pairing(const G1& p, const G2& q);

// Checks e(a1, a2) * e(b1, b2) == 1 with one shared final exponentiation.
// The standard KZG verification shape: pass b1 = -C.
bool pairing_product_is_one(const G1& a1, const G2& a2, const G1& b1,
                            const G2& b2);

// General product check over any number of pairs (Groth16 uses four).
bool pairing_product_is_one(std::span<const std::pair<G1, G2>> pairs);

// f^((p^12-1)/r)
Fp12 final_exponentiation(const Fp12& f);

}  // namespace zkdet::ec
