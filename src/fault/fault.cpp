#include "fault/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "check/mutex.hpp"

namespace zkdet::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct PointState {
  Schedule schedule;
  std::uint64_t hits = 0;
  std::uint64_t failures = 0;
};

struct Registry {
  // Innermost leaf of the lock order: fire() runs under txpool, ledger
  // and storage locks.
  Mutex m{check::LockLevel::kFault, "fault.registry"};
  std::unordered_map<std::string, PointState> points ZKDET_GUARDED_BY(m);
};

Registry& registry() {
  static Registry r;
  return r;
}

// SplitMix64: the per-hit decision hash for probabilistic schedules.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool decide(const Schedule& s, std::uint64_t hit) {
  switch (s.mode) {
    case Mode::kAlways:
      return true;
    case Mode::kOnce:
      return hit == s.first_hit;
    case Mode::kTimes:
      return hit >= s.first_hit && hit < s.first_hit + s.count;
    case Mode::kProbability: {
      if (s.p <= 0.0) return false;
      if (s.p >= 1.0) return true;
      // Counter-mode: the decision for hit i is a pure function of
      // (seed, i), so the fault trace replays exactly from the spec.
      const auto threshold = static_cast<std::uint64_t>(
          s.p * 18446744073709551615.0);  // p * (2^64 - 1)
      return splitmix64(s.seed ^ (hit * 0xd1b54a32d192ed03ull)) <= threshold;
    }
  }
  return false;
}

// Parses one `spec` (the right-hand side of point=spec). Returns
// nullopt on malformed input.
std::optional<Schedule> parse_schedule(const std::string& spec) {
  auto parse_u64 = [](const std::string& s,
                      std::uint64_t& out) -> bool {
    if (s.empty()) return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out = v;
    return true;
  };

  if (spec == "always") return Schedule::always();

  if (spec.rfind("once", 0) == 0) {
    std::uint64_t at = 1;
    if (spec.size() > 4) {
      if (spec[4] != '@' || !parse_u64(spec.substr(5), at) || at == 0) {
        return std::nullopt;
      }
    }
    return Schedule::once(at);
  }

  if (spec.rfind("times:", 0) == 0) {
    std::string rest = spec.substr(6);
    std::uint64_t from = 1;
    const auto amp = rest.find('@');
    if (amp != std::string::npos) {
      if (!parse_u64(rest.substr(amp + 1), from) || from == 0) {
        return std::nullopt;
      }
      rest = rest.substr(0, amp);
    }
    std::uint64_t n = 0;
    if (!parse_u64(rest, n) || n == 0) return std::nullopt;
    return Schedule::times(n, from);
  }

  if (spec.rfind("prob:", 0) == 0) {
    const std::string rest = spec.substr(5);
    const auto colon = rest.find(':');
    if (colon == std::string::npos) return std::nullopt;
    char* end = nullptr;
    const double p = std::strtod(rest.substr(0, colon).c_str(), &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return std::nullopt;
    }
    std::uint64_t seed = 0;
    if (!parse_u64(rest.substr(colon + 1), seed)) return std::nullopt;
    return Schedule::probability(p, seed);
  }

  return std::nullopt;
}

// Installs ZKDET_FAULTS before main() so instrumented code needs no
// explicit opt-in call.
const std::size_t g_env_installed = install_from_env();

}  // namespace

namespace detail {

bool fire_slow(const char* point) {
  Registry& r = registry();
  const MutexLock lk(r.m);
  const auto it = r.points.find(point);
  if (it == r.points.end()) return false;
  PointState& st = it->second;
  ++st.hits;
  const bool fail = decide(st.schedule, st.hits);
  if (fail) ++st.failures;
  return fail;
}

}  // namespace detail

void inject(const std::string& point, const Schedule& schedule) {
  Registry& r = registry();
  const MutexLock lk(r.m);
  r.points[point] = PointState{schedule, 0, 0};
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void clear(const std::string& point) {
  Registry& r = registry();
  const MutexLock lk(r.m);
  r.points.erase(point);
  if (r.points.empty()) {
    detail::g_armed.store(false, std::memory_order_relaxed);
  }
}

void clear_all() {
  Registry& r = registry();
  const MutexLock lk(r.m);
  r.points.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& point) {
  Registry& r = registry();
  const MutexLock lk(r.m);
  const auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.hits;
}

std::uint64_t failures(const std::string& point) {
  Registry& r = registry();
  const MutexLock lk(r.m);
  const auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.failures;
}

std::size_t install_spec(const std::string& spec) {
  std::size_t installed = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto semi = spec.find(';', pos);
    const std::string entry = spec.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "zkdet-fault: ignoring malformed entry '%s'\n",
                   entry.c_str());
      continue;
    }
    const auto schedule = parse_schedule(entry.substr(eq + 1));
    if (!schedule) {
      std::fprintf(stderr, "zkdet-fault: ignoring malformed schedule '%s'\n",
                   entry.c_str());
      continue;
    }
    inject(entry.substr(0, eq), *schedule);
    ++installed;
  }
  return installed;
}

std::size_t install_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before main()
  const char* env = std::getenv("ZKDET_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  return install_spec(env);
}

}  // namespace zkdet::fault
