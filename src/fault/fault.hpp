// Deterministic, seeded fault injection.
//
// A fail-point is a named site in real-I/O-shaped code (storage node
// access, tx submission, proof-job execution, exchange client steps)
// that asks "should I fail here?" via fault::fire(point). Schedules are
// installed per point, programmatically (tests, chaos harness) or via
// the ZKDET_FAULTS environment variable:
//
//   ZKDET_FAULTS="storage.fetch.node=once;chain.submit=times:3;
//                 prover.job=prob:0.2:42"
//
// Spec grammar (';'-separated `point=spec` entries):
//   always        every hit fails
//   once[@k]      exactly the k-th hit fails (1-based; default 1)
//   times:N[@k]   hits k..k+N-1 fail (default k=1: the first N hits)
//   prob:P:SEED   each hit fails with probability P, decided by a
//                 counter-mode hash of (SEED, hit index) — the decision
//                 sequence is a pure function of the spec, so any run
//                 is reproducible from its seed
//
// Determinism: a schedule's decisions depend only on its spec and the
// per-point hit counter — never on wall-clock, addresses, or global
// RNG state. Two runs with the same schedules and the same call order
// observe identical faults.
//
// Overhead: when no schedule has ever been installed, fire() is a
// single relaxed atomic load and branch (no lock, no map lookup), so
// instrumented hot paths cost nothing in production builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace zkdet::fault {

enum class Mode : std::uint8_t {
  kAlways = 0,
  kOnce = 1,       // fail hit #first_hit only
  kTimes = 2,      // fail hits [first_hit, first_hit + count)
  kProbability = 3,  // fail each hit with probability `p`, seeded
};

struct Schedule {
  Mode mode = Mode::kOnce;
  std::uint64_t first_hit = 1;  // 1-based hit index (kOnce / kTimes)
  std::uint64_t count = 1;      // kTimes: how many consecutive hits fail
  double p = 0.0;               // kProbability
  std::uint64_t seed = 0;       // kProbability

  static Schedule always() { return {Mode::kAlways, 1, 0, 0.0, 0}; }
  static Schedule once(std::uint64_t at_hit = 1) {
    return {Mode::kOnce, at_hit, 1, 0.0, 0};
  }
  static Schedule times(std::uint64_t n, std::uint64_t from_hit = 1) {
    return {Mode::kTimes, from_hit, n, 0.0, 0};
  }
  static Schedule probability(double p, std::uint64_t seed) {
    return {Mode::kProbability, 1, 0, p, seed};
  }
};

namespace detail {
extern std::atomic<bool> g_armed;
bool fire_slow(const char* point);
}  // namespace detail

// The fail-point predicate. Returns true when the installed schedule
// for `point` says this hit fails. Zero overhead while disarmed.
inline bool fire(const char* point) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) [[likely]] {
    return false;
  }
  return detail::fire_slow(point);
}

// Installs (replaces) the schedule for a point and resets its counters.
void inject(const std::string& point, const Schedule& schedule);

// Removes one point's schedule / all schedules. Counters reset too.
// The framework disarms when the last schedule is removed.
void clear(const std::string& point);
void clear_all();

// Observability: how often a point was consulted / actually failed
// since its schedule was installed. Zero for unknown points.
[[nodiscard]] std::uint64_t hits(const std::string& point);
[[nodiscard]] std::uint64_t failures(const std::string& point);

// Parses a ZKDET_FAULTS-style spec string and installs every entry.
// Returns the number of entries installed; malformed entries are
// reported on stderr and skipped (a bad env var must not abort).
std::size_t install_spec(const std::string& spec);

// Reads ZKDET_FAULTS (once per call) and installs it via install_spec.
std::size_t install_from_env();

// RAII for tests: clears all schedules on scope exit.
class ScopedFaults {
 public:
  ScopedFaults() = default;
  explicit ScopedFaults(const std::string& spec) { install_spec(spec); }
  ~ScopedFaults() { clear_all(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace zkdet::fault
