// Canonical fail-point catalog.
//
// Every fail-point name in the codebase lives here, as a named constant:
// instrumentation sites pass these symbols to fault::fire(), never raw
// string literals (enforced by scripts/lint_zkdet.py, rule
// fail-point-name). Keeping the catalog in one header makes the fault
// surface greppable and lets tests/docs enumerate it without scanning
// call sites.
//
// Naming: <subsystem>.<operation>[.<detail>], matching the seam the
// point guards. Semantics of a firing point, per site:
//
//   storage.put.node     a node rejects/misses a replica write (node down)
//   storage.fetch.node   a node fails a read (transient unreachability)
//   chain.submit         a transaction is dropped before reaching the
//                        sequencer (no block sealed, no state touched)
//   prover.job           a proof job dies on its worker (simulated crash);
//                        retried by ProverService::prove_with_retry
//   exchange.verify      buyer-side offer verification aborts
//   exchange.lock        buyer client fails before issuing the lock tx
//   exchange.crash_after_lock
//                        buyer process crashes after the lock tx landed
//                        but before key negotiation (ExchangeDriver
//                        resumes from the persisted session + chain)
//   exchange.settle      seller client fails before issuing settle
//   exchange.recover     buyer client fails while recovering data
//   exchange.refund      buyer client fails before issuing refund
//   ledger.wal.append.torn
//                        process dies mid-append: only a prefix of the
//                        WAL record frame reaches the file (torn tail;
//                        recovery truncates it on reopen)
//   ledger.wal.append.corrupt
//                        a fully-written record frame has a flipped bit
//                        (media corruption; recovery treats the record
//                        as the torn tail and truncates)
//   ledger.fsync         fsync/fdatasync reports EIO; the write's
//                        durability is unknown and the ledger poisons
//                        itself (fail-stop) rather than continue
//   ledger.snapshot.write
//                        process dies while writing snapshot.tmp (the
//                        incomplete temp file is discarded on reopen;
//                        the previous snapshot + WAL stay authoritative)
//   txpool.admit.full    mempool admission rejects a tx as if capacity
//                        were exhausted (caller must resubmit)
//   txpool.exec.conflict-abort
//                        the batch executor aborts a tx at commit as an
//                        optimistic-concurrency conflict: included as
//                        failed, effects discarded, nonce consumed
//   txpool.seal.crash    process dies at the batch seal boundary,
//                        before any batch effect or WAL record lands;
//                        reopen converges to the pre-batch tip
//   repl.ship.drop       a shipped replication frame is lost in transit;
//                        the follower never sees it, the shipper times
//                        out on the missing ack and re-ships the batch
//                        after backoff
//   repl.ship.corrupt    a shipped frame arrives bit-flipped; the
//                        follower rejects it at the CRC check, never
//                        acks, and the shipper re-ships
//   repl.ship.diverge    the primary ships a self-consistent but
//                        DIFFERENT block (simulated fork: tampered
//                        content with a recomputed hash). The block-hash
//                        cross-check at the next acked watermark — or
//                        the follower's prev-hash link check — must
//                        fail-stop the pair; never a silent fork
//   repl.ack.lost        a follower ack is lost in transit; the shipper
//                        watermark goes stale and the re-shipped records
//                        are applied idempotently (seq <= applied)
//   repl.follower.crash  the follower process dies mid-apply; a fresh
//                        follower over the same directory resumes from
//                        its own durable watermark
//   rpc.accept           the server drops a freshly-accepted connection
//                        before any byte is exchanged (listen backlog
//                        overflow / transient accept failure); the
//                        client observes EOF and reconnects
//   rpc.session.disconnect
//                        a client vanishes right after its request was
//                        admitted (killed mid-settle): the work still
//                        runs to completion on-chain, the response is
//                        dropped on the closed session — the client must
//                        re-query state, never resubmit blindly
//   rpc.queue.full       admission sheds a request as if the bounded
//                        queue were full; the client receives a typed
//                        Overloaded response (retryable)
//   rpc.write.torn       the response write tears mid-frame and the
//                        connection dies: the client sees a CRC-invalid
//                        partial frame + EOF and treats the response as
//                        lost (state already committed server-side)
#pragma once

namespace zkdet::fault::points {

inline constexpr const char kStoragePutNode[] = "storage.put.node";
inline constexpr const char kStorageFetchNode[] = "storage.fetch.node";
inline constexpr const char kChainSubmit[] = "chain.submit";
inline constexpr const char kProverJob[] = "prover.job";
inline constexpr const char kExchangeVerify[] = "exchange.verify";
inline constexpr const char kExchangeLock[] = "exchange.lock";
inline constexpr const char kExchangeCrashAfterLock[] =
    "exchange.crash_after_lock";
inline constexpr const char kExchangeSettle[] = "exchange.settle";
inline constexpr const char kExchangeRecover[] = "exchange.recover";
inline constexpr const char kExchangeRefund[] = "exchange.refund";
inline constexpr const char kLedgerWalAppendTorn[] = "ledger.wal.append.torn";
inline constexpr const char kLedgerWalAppendCorrupt[] =
    "ledger.wal.append.corrupt";
inline constexpr const char kLedgerFsync[] = "ledger.fsync";
inline constexpr const char kLedgerSnapshotWrite[] = "ledger.snapshot.write";
inline constexpr const char kTxpoolAdmitFull[] = "txpool.admit.full";
inline constexpr const char kTxpoolExecConflictAbort[] =
    "txpool.exec.conflict-abort";
inline constexpr const char kTxpoolSealCrash[] = "txpool.seal.crash";
inline constexpr const char kReplShipDrop[] = "repl.ship.drop";
inline constexpr const char kReplShipCorrupt[] = "repl.ship.corrupt";
inline constexpr const char kReplShipDiverge[] = "repl.ship.diverge";
inline constexpr const char kReplAckLost[] = "repl.ack.lost";
inline constexpr const char kReplFollowerCrash[] = "repl.follower.crash";
inline constexpr const char kRpcAccept[] = "rpc.accept";
inline constexpr const char kRpcSessionDisconnect[] = "rpc.session.disconnect";
inline constexpr const char kRpcQueueFull[] = "rpc.queue.full";
inline constexpr const char kRpcWriteTorn[] = "rpc.write.torn";

// All registered points, for enumeration (tests, docs, tooling).
inline constexpr const char* kAll[] = {
    kStoragePutNode,    kStorageFetchNode,       kChainSubmit,
    kProverJob,         kExchangeVerify,         kExchangeLock,
    kExchangeCrashAfterLock, kExchangeSettle,    kExchangeRecover,
    kExchangeRefund,    kLedgerWalAppendTorn,    kLedgerWalAppendCorrupt,
    kLedgerFsync,       kLedgerSnapshotWrite,    kTxpoolAdmitFull,
    kTxpoolExecConflictAbort, kTxpoolSealCrash,  kReplShipDrop,
    kReplShipCorrupt,   kReplShipDiverge,        kReplAckLost,
    kReplFollowerCrash, kRpcAccept,              kRpcSessionDisconnect,
    kRpcQueueFull,      kRpcWriteTorn,
};

// The subset whose firing simulates a process kill or IO fault inside
// the durable-ledger write path (the crash-recovery matrix iterates
// exactly these).
inline constexpr const char* kLedgerAll[] = {
    kLedgerWalAppendTorn,
    kLedgerWalAppendCorrupt,
    kLedgerFsync,
    kLedgerSnapshotWrite,
};

// The replication fail-point family (the failover chaos matrix iterates
// exactly these: each one x every hit position, then kill the primary,
// promote a follower and require byte-identical convergence).
inline constexpr const char* kReplAll[] = {
    kReplShipDrop,
    kReplShipCorrupt,
    kReplShipDiverge,
    kReplAckLost,
    kReplFollowerCrash,
};

// The RPC serving-layer fail-point family (the rpc chaos schedules in
// tests/test_chaos.cpp iterate these: each one must leave funds
// conserved and every exchange settled xor refunded).
inline constexpr const char* kRpcAll[] = {
    kRpcAccept,
    kRpcSessionDisconnect,
    kRpcQueueFull,
    kRpcWriteTorn,
};

}  // namespace zkdet::fault::points
