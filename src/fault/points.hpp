// Canonical fail-point catalog.
//
// Every fail-point name in the codebase lives here, as a named constant:
// instrumentation sites pass these symbols to fault::fire(), never raw
// string literals (enforced by scripts/lint_zkdet.py, rule
// fail-point-name). Keeping the catalog in one header makes the fault
// surface greppable and lets tests/docs enumerate it without scanning
// call sites.
//
// Naming: <subsystem>.<operation>[.<detail>], matching the seam the
// point guards. Semantics of a firing point, per site:
//
//   storage.put.node     a node rejects/misses a replica write (node down)
//   storage.fetch.node   a node fails a read (transient unreachability)
//   chain.submit         a transaction is dropped before reaching the
//                        sequencer (no block sealed, no state touched)
//   prover.job           a proof job dies on its worker (simulated crash);
//                        retried by ProverService::prove_with_retry
//   exchange.verify      buyer-side offer verification aborts
//   exchange.lock        buyer client fails before issuing the lock tx
//   exchange.crash_after_lock
//                        buyer process crashes after the lock tx landed
//                        but before key negotiation (ExchangeDriver
//                        resumes from the persisted session + chain)
//   exchange.settle      seller client fails before issuing settle
//   exchange.recover     buyer client fails while recovering data
//   exchange.refund      buyer client fails before issuing refund
//   ledger.wal.append.torn
//                        process dies mid-append: only a prefix of the
//                        WAL record frame reaches the file (torn tail;
//                        recovery truncates it on reopen)
//   ledger.wal.append.corrupt
//                        a fully-written record frame has a flipped bit
//                        (media corruption; recovery treats the record
//                        as the torn tail and truncates)
//   ledger.fsync         fsync/fdatasync reports EIO; the write's
//                        durability is unknown and the ledger poisons
//                        itself (fail-stop) rather than continue
//   ledger.snapshot.write
//                        process dies while writing snapshot.tmp (the
//                        incomplete temp file is discarded on reopen;
//                        the previous snapshot + WAL stay authoritative)
//   txpool.admit.full    mempool admission rejects a tx as if capacity
//                        were exhausted (caller must resubmit)
//   txpool.exec.conflict-abort
//                        the batch executor aborts a tx at commit as an
//                        optimistic-concurrency conflict: included as
//                        failed, effects discarded, nonce consumed
//   txpool.seal.crash    process dies at the batch seal boundary,
//                        before any batch effect or WAL record lands;
//                        reopen converges to the pre-batch tip
#pragma once

namespace zkdet::fault::points {

inline constexpr const char kStoragePutNode[] = "storage.put.node";
inline constexpr const char kStorageFetchNode[] = "storage.fetch.node";
inline constexpr const char kChainSubmit[] = "chain.submit";
inline constexpr const char kProverJob[] = "prover.job";
inline constexpr const char kExchangeVerify[] = "exchange.verify";
inline constexpr const char kExchangeLock[] = "exchange.lock";
inline constexpr const char kExchangeCrashAfterLock[] =
    "exchange.crash_after_lock";
inline constexpr const char kExchangeSettle[] = "exchange.settle";
inline constexpr const char kExchangeRecover[] = "exchange.recover";
inline constexpr const char kExchangeRefund[] = "exchange.refund";
inline constexpr const char kLedgerWalAppendTorn[] = "ledger.wal.append.torn";
inline constexpr const char kLedgerWalAppendCorrupt[] =
    "ledger.wal.append.corrupt";
inline constexpr const char kLedgerFsync[] = "ledger.fsync";
inline constexpr const char kLedgerSnapshotWrite[] = "ledger.snapshot.write";
inline constexpr const char kTxpoolAdmitFull[] = "txpool.admit.full";
inline constexpr const char kTxpoolExecConflictAbort[] =
    "txpool.exec.conflict-abort";
inline constexpr const char kTxpoolSealCrash[] = "txpool.seal.crash";

// All registered points, for enumeration (tests, docs, tooling).
inline constexpr const char* kAll[] = {
    kStoragePutNode,    kStorageFetchNode,       kChainSubmit,
    kProverJob,         kExchangeVerify,         kExchangeLock,
    kExchangeCrashAfterLock, kExchangeSettle,    kExchangeRecover,
    kExchangeRefund,    kLedgerWalAppendTorn,    kLedgerWalAppendCorrupt,
    kLedgerFsync,       kLedgerSnapshotWrite,    kTxpoolAdmitFull,
    kTxpoolExecConflictAbort, kTxpoolSealCrash,
};

// The subset whose firing simulates a process kill or IO fault inside
// the durable-ledger write path (the crash-recovery matrix iterates
// exactly these).
inline constexpr const char* kLedgerAll[] = {
    kLedgerWalAppendTorn,
    kLedgerWalAppendCorrupt,
    kLedgerFsync,
    kLedgerSnapshotWrite,
};

}  // namespace zkdet::fault::points
