// Canonical fail-point catalog.
//
// Every fail-point name in the codebase lives here, as a named constant:
// instrumentation sites pass these symbols to fault::fire(), never raw
// string literals (enforced by scripts/lint_zkdet.py, rule
// fail-point-name). Keeping the catalog in one header makes the fault
// surface greppable and lets tests/docs enumerate it without scanning
// call sites.
//
// Naming: <subsystem>.<operation>[.<detail>], matching the seam the
// point guards. Semantics of a firing point, per site:
//
//   storage.put.node     a node rejects/misses a replica write (node down)
//   storage.fetch.node   a node fails a read (transient unreachability)
//   chain.submit         a transaction is dropped before reaching the
//                        sequencer (no block sealed, no state touched)
//   prover.job           a proof job dies on its worker (simulated crash);
//                        retried by ProverService::prove_with_retry
//   exchange.verify      buyer-side offer verification aborts
//   exchange.lock        buyer client fails before issuing the lock tx
//   exchange.crash_after_lock
//                        buyer process crashes after the lock tx landed
//                        but before key negotiation (ExchangeDriver
//                        resumes from the persisted session + chain)
//   exchange.settle      seller client fails before issuing settle
//   exchange.recover     buyer client fails while recovering data
//   exchange.refund      buyer client fails before issuing refund
#pragma once

namespace zkdet::fault::points {

inline constexpr const char kStoragePutNode[] = "storage.put.node";
inline constexpr const char kStorageFetchNode[] = "storage.fetch.node";
inline constexpr const char kChainSubmit[] = "chain.submit";
inline constexpr const char kProverJob[] = "prover.job";
inline constexpr const char kExchangeVerify[] = "exchange.verify";
inline constexpr const char kExchangeLock[] = "exchange.lock";
inline constexpr const char kExchangeCrashAfterLock[] =
    "exchange.crash_after_lock";
inline constexpr const char kExchangeSettle[] = "exchange.settle";
inline constexpr const char kExchangeRecover[] = "exchange.recover";
inline constexpr const char kExchangeRefund[] = "exchange.refund";

// All registered points, for enumeration (tests, docs, tooling).
inline constexpr const char* kAll[] = {
    kStoragePutNode,    kStorageFetchNode,       kChainSubmit,
    kProverJob,         kExchangeVerify,         kExchangeLock,
    kExchangeCrashAfterLock, kExchangeSettle,    kExchangeRecover,
    kExchangeRefund,
};

}  // namespace zkdet::fault::points
