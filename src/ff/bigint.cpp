#include "ff/bigint.hpp"

#include "check/check.hpp"

namespace zkdet::ff {

BigUInt BigUInt::from_u256(const U256& v) {
  return BigUInt{{v.limb[0], v.limb[1], v.limb[2], v.limb[3]}};
}

bool BigUInt::is_zero() const {
  for (const auto l : limbs)
    if (l != 0) return false;
  return true;
}

std::size_t BigUInt::bit_length() const {
  for (std::size_t i = limbs.size(); i-- > 0;) {
    if (limbs[i] != 0) {
      std::uint64_t v = limbs[i];
      std::size_t n = 0;
      while (v != 0) {
        v >>= 1;
        ++n;
      }
      return i * 64 + n;
    }
  }
  return 0;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs.size()) return false;
  return (limbs[limb] >> (i % 64)) & 1u;
}

void BigUInt::mul_u256(const U256& m) {
  std::vector<std::uint64_t> out(limbs.size() + 4, 0);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(limbs[i]) * m.limb[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    std::size_t k = i + 4;
    while (carry != 0) {
      const unsigned __int128 cur = static_cast<unsigned __int128>(out[k]) + carry;
      out[k] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
      ++k;
    }
  }
  limbs = std::move(out);
}

void BigUInt::sub_u64(std::uint64_t v) {
  std::uint64_t borrow = v;
  for (std::size_t i = 0; i < limbs.size() && borrow != 0; ++i) {
    const unsigned __int128 d =
        static_cast<unsigned __int128>(limbs[i]) - borrow;
    limbs[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) != 0 ? 1 : 0;
  }
  ZKDET_CHECK(borrow == 0, "BigUInt::sub_u64 underflow");
}

BigUInt bigint_div_u256(const BigUInt& n, const U256& d, U256* remainder_out) {
  ZKDET_CHECK(!d.is_zero(), "bigint_div_u256: division by zero");
  const std::size_t nbits = n.bit_length();
  BigUInt q;
  q.limbs.assign((nbits + 63) / 64 + 1, 0);
  U256 rem{};
  for (std::size_t i = nbits; i-- > 0;) {
    // rem = (rem << 1) | n.bit(i). rem < d can reach 257 bits here when
    // d >= 2^255; the doubling carry stands in for bit 256, and since
    // 2*rem + 1 < 2*d a single subtraction restores rem < d (the borrow
    // cancels the carry).
    U256 shifted{};
    std::uint64_t carry = u256_add(shifted, rem, rem);
    if (n.bit(i)) {
      U256 tmp{};
      carry += u256_add(tmp, shifted, U256{1});
      shifted = tmp;
    }
    rem = shifted;
    if (carry != 0 || u256_geq(rem, d)) {
      u256_sub(rem, rem, d);
      q.limbs[i / 64] |= (1ull << (i % 64));
    }
  }
  if (remainder_out != nullptr) *remainder_out = rem;
  return q;
}

}  // namespace zkdet::ff
