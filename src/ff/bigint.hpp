// Minimal arbitrary-precision unsigned integer, used only for one-time
// derivations such as the pairing final exponent (p^12 - 1) / r.
#pragma once

#include <cstdint>
#include <vector>

#include "ff/u256.hpp"

namespace zkdet::ff {

struct BigUInt {
  // little-endian limbs; no trailing-zero guarantees required by users.
  std::vector<std::uint64_t> limbs{0};

  [[nodiscard]] static BigUInt from_u64(std::uint64_t v) { return BigUInt{{v}}; }
  [[nodiscard]] static BigUInt from_u256(const U256& v);

  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;

  void mul_u256(const U256& m);  // *this *= m
  void sub_u64(std::uint64_t v); // *this -= v (must not underflow)
};

// Exact division q = n / d for d | n, d odd 256-bit. Also returns the
// remainder so callers can assert exactness.
BigUInt bigint_div_u256(const BigUInt& n, const U256& d, U256* remainder_out);

}  // namespace zkdet::ff
