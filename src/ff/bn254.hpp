// BN-254 (alt_bn128) field parameters — the curve used by the paper's
// Circom/Snarkjs toolchain ("BN-128", 254-bit, ~110-bit security).
//
//   Fp: base field of E: y^2 = x^3 + 3
//   Fr: scalar field (order of G1/G2), 2-adicity 28 -> radix-2 NTT friendly
#pragma once

#include "ff/prime_field.hpp"

namespace zkdet::ff {

struct BnBaseParams {
  // 21888242871839275222246405745257275088696311157297823662689037894645226208583
  static constexpr U256 MODULUS{0x3c208c16d87cfd47ull, 0x97816a916871ca8dull,
                                0xb85045b68181585dull, 0x30644e72e131a029ull};
  static constexpr std::uint64_t GENERATOR = 3;  // p == 3 mod 4, adicity 1
  static constexpr std::size_t TWO_ADICITY = 1;
};

struct BnScalarParams {
  // 21888242871839275222246405745257275088548364400416034343698204186575808495617
  static constexpr U256 MODULUS{0x43e1f593f0000001ull, 0x2833e84879b97091ull,
                                0xb85045b68181585dull, 0x30644e72e131a029ull};
  static constexpr std::uint64_t GENERATOR = 5;
  static constexpr std::size_t TWO_ADICITY = 28;
};

using Fp = Fp_<BnBaseParams>;
using Fr = Fp_<BnScalarParams>;

// Samples a uniform field element by rejection from 256-bit draws.
template <typename F, typename Rng>
F random_field(Rng& rng) {
  // Rejection sampling; terminates w.p. 1 (acceptance > 1/2 per draw).
  for (;;) {  // zkdet-lint: allow(unbounded-retry)
    U256 v{static_cast<std::uint64_t>(rng()), static_cast<std::uint64_t>(rng()),
           static_cast<std::uint64_t>(rng()), static_cast<std::uint64_t>(rng())};
    if (u256_less(v, F::MOD)) return F::from_canonical(v);
  }
}

}  // namespace zkdet::ff
