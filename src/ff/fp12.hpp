// Dodecic extension Fp12 = Fp2[w] / (w^6 - xi), xi = 9 + u.
//
// We use the direct sextic representation (six Fp2 coefficients of powers
// of w) instead of the usual 2-3-2 tower: multiplication is schoolbook
// with a single reduction w^6 -> xi, and the Frobenius map has the clean
// closed form (a_i w^i)^p = conj(a_i) * gamma^i * w^i with
// gamma = xi^((p-1)/6). All Frobenius coefficients are computed at
// startup from the modulus rather than hand-transcribed.
//
// Fp6 = Fp2[w^2] is the subfield spanned by even powers of w; pairing
// denominator elimination relies on vertical lines landing there.
#pragma once

#include <array>

#include "ff/bigint.hpp"
#include "ff/fp2.hpp"

namespace zkdet::ff {

struct Fp12 {
  std::array<Fp2, 6> c{};  // c[i] is the coefficient of w^i

  [[nodiscard]] static Fp12 zero() { return {}; }
  [[nodiscard]] static Fp12 one() {
    Fp12 r;
    r.c[0] = Fp2::one();
    return r;
  }

  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] bool is_one() const;
  bool operator==(const Fp12& o) const { return c == o.c; }
  bool operator!=(const Fp12& o) const { return !(*this == o); }

  Fp12 operator+(const Fp12& o) const;
  Fp12 operator-(const Fp12& o) const;
  Fp12 operator*(const Fp12& o) const;
  Fp12& operator*=(const Fp12& o) { return *this = *this * o; }

  [[nodiscard]] Fp12 square() const { return *this * *this; }

  // x -> x^(p^power) for power in [0, 12).
  [[nodiscard]] Fp12 frobenius(unsigned power = 1) const;

  // Multiplicative inverse via the Fp12/Fp2 Galois norm; zero maps to zero.
  [[nodiscard]] Fp12 inverse() const;

  [[nodiscard]] Fp12 pow(const U256& e) const;
  [[nodiscard]] Fp12 pow(const BigUInt& e) const;

  // Sparse multiply by (l0 + l2 w^2 + l3 w^3): the shape of a pairing
  // doubling/addition line evaluated at an untwisted G2 point.
  [[nodiscard]] Fp12 mul_line(const Fp2& l0, const Fp2& l2, const Fp2& l3) const;
};

}  // namespace zkdet::ff
