// Quadratic extension Fp2 = Fp[u] / (u^2 + 1) for BN-254 (p == 3 mod 4,
// so -1 is a non-residue). Elements are a + b*u.
#pragma once

#include "ff/bn254.hpp"

namespace zkdet::ff {

struct Fp2 {
  Fp a{};  // coefficient of 1
  Fp b{};  // coefficient of u

  constexpr Fp2() = default;
  Fp2(const Fp& a_, const Fp& b_) : a(a_), b(b_) {}

  [[nodiscard]] static Fp2 zero() { return {}; }
  [[nodiscard]] static Fp2 one() { return {Fp::one(), Fp::zero()}; }
  [[nodiscard]] static Fp2 from_u64(std::uint64_t x, std::uint64_t y) {
    return {Fp::from_u64(x), Fp::from_u64(y)};
  }

  [[nodiscard]] bool is_zero() const { return a.is_zero() && b.is_zero(); }
  bool operator==(const Fp2& o) const { return a == o.a && b == o.b; }
  bool operator!=(const Fp2& o) const { return !(*this == o); }

  Fp2 operator+(const Fp2& o) const { return {a + o.a, b + o.b}; }
  Fp2 operator-(const Fp2& o) const { return {a - o.a, b - o.b}; }
  Fp2 operator-() const { return {-a, -b}; }

  // Karatsuba: (a+bu)(c+du) = (ac - bd) + ((a+b)(c+d) - ac - bd)u
  Fp2 operator*(const Fp2& o) const {
    const Fp ac = a * o.a;
    const Fp bd = b * o.b;
    const Fp cross = (a + b) * (o.a + o.b);
    return {ac - bd, cross - ac - bd};
  }

  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  [[nodiscard]] Fp2 square() const {
    // (a+bu)^2 = (a+b)(a-b) + 2ab u
    const Fp t = a * b;
    return {(a + b) * (a - b), t + t};
  }

  [[nodiscard]] Fp2 scale(const Fp& s) const { return {a * s, b * s}; }

  [[nodiscard]] Fp2 conjugate() const { return {a, -b}; }

  // (a + bu)^-1 = (a - bu) / (a^2 + b^2); inverse of zero is zero.
  [[nodiscard]] Fp2 inverse() const {
    const Fp norm = a.square() + b.square();
    const Fp ninv = norm.inverse();
    return {a * ninv, -(b * ninv)};
  }

  [[nodiscard]] Fp2 pow(const U256& e) const {
    Fp2 result = one();
    const std::size_t n = e.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      result = result.square();
      if (e.bit(i)) result = result * *this;
    }
    return result;
  }

  // Frobenius x -> x^p is conjugation in Fp2.
  [[nodiscard]] Fp2 frobenius() const { return conjugate(); }
};

// The sextic non-residue xi = 9 + u used for the Fp12 tower and the
// D-type twist E': y^2 = x^3 + 3/xi.
inline const Fp2& fp2_xi() {
  static const Fp2 xi{Fp::from_u64(9), Fp::from_u64(1)};
  return xi;
}

}  // namespace zkdet::ff
