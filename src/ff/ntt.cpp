#include "ff/ntt.hpp"

#include "check/check.hpp"
#include "check/invariants.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::ff {

void check_two_adic_root() {
  static const bool ok = [] {
    const Fr root = Fr::two_adic_root();
    Fr x = root;
    for (std::size_t i = 0; i < Fr::TWO_ADICITY - 1; ++i) x = x.square();
    // x = root^(2^27) must be -1 (primitive), and x^2 = 1.
    if (x != -Fr::one()) throw std::logic_error("Fr two-adic root not primitive");
    return true;
  }();
  (void)ok;
}

EvaluationDomain::EvaluationDomain(std::size_t size) : size_(size) {
  if (size == 0 || (size & (size - 1)) != 0) {
    throw std::invalid_argument("domain size must be a power of two");
  }
  check_two_adic_root();
  log_size_ = 0;
  while ((1ull << log_size_) < size) ++log_size_;
  if (log_size_ > Fr::TWO_ADICITY) {
    throw std::invalid_argument("domain larger than 2-adicity allows");
  }
  ZKDET_DCHECK(check::valid_ntt_domain(size),
               "domain precondition checker disagrees with constructor");
  omega_ = Fr::two_adic_root();
  for (std::size_t i = log_size_; i < Fr::TWO_ADICITY; ++i) {
    omega_ = omega_.square();
  }
  omega_inv_ = omega_.inverse();
  size_inv_ = Fr::from_u64(size_).inverse();
  powers_.resize(size_);
  powers_[0] = Fr::one();
  for (std::size_t i = 1; i < size_; ++i) powers_[i] = powers_[i - 1] * omega_;
}

namespace {

// Below this size a transform is microseconds of work; parallel dispatch
// would cost more than it saves.
constexpr std::size_t kNttParallelSize = 1ull << 12;

// One block's butterflies for the j-range [j0, j1), with w = wm^j0.
void butterflies(std::vector<Fr>& a, const Fr& wm, std::size_t start,
                 std::size_t half, std::size_t j0, std::size_t j1) {
  Fr w = j0 == 0 ? Fr::one() : wm.pow(U256{j0});
  for (std::size_t j = j0; j < j1; ++j) {
    const Fr t = w * a[start + j + half];
    const Fr u = a[start + j];
    a[start + j] = u + t;
    a[start + j + half] = u - t;
    w *= wm;
  }
}

void ntt_in_place(std::vector<Fr>& a, const Fr& root, std::size_t log_n) {
  runtime::ScopedTimer timer(runtime::counters::ntt_ns);
  const std::size_t n = a.size();
  // bit reversal permutation
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  auto& pool = runtime::ThreadPool::instance();
  const bool parallel = n >= kNttParallelSize && pool.concurrency() > 1;
  for (std::size_t s = 1; s <= log_n; ++s) {
    const std::size_t m = 1ull << s;
    const std::size_t half = m / 2;
    const std::size_t blocks = n / m;
    Fr wm = root;
    for (std::size_t k = s; k < log_n; ++k) wm = wm.square();
    if (!parallel) {
      for (std::size_t start = 0; start < n; start += m) {
        butterflies(a, wm, start, half, 0, half);
      }
    } else if (blocks >= pool.concurrency()) {
      // Early layers: many independent blocks — one chunk = some blocks.
      pool.parallel_for(blocks, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          butterflies(a, wm, b * m, half, 0, half);
        }
      });
    } else {
      // Late layers: few wide blocks — split each block's j-range; a
      // chunk's starting twiddle is recovered with one pow.
      const std::size_t piece =
          std::max<std::size_t>(1024, half / (4 * pool.concurrency()));
      const std::size_t per_block = (half + piece - 1) / piece;
      pool.parallel_for(blocks * per_block, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t t = lo; t < hi; ++t) {
                            const std::size_t b = t / per_block;
                            const std::size_t j0 = (t % per_block) * piece;
                            butterflies(a, wm, b * m, half, j0,
                                        std::min(half, j0 + piece));
                          }
                        });
    }
  }
}

// a[i] *= base^i, chunked: each chunk recovers its starting power with
// one pow, so the loop parallelizes without a sequential carry.
void scale_by_powers(std::vector<Fr>& a, const Fr& base) {
  auto& pool = runtime::ThreadPool::instance();
  if (a.size() < kNttParallelSize || pool.concurrency() <= 1) {
    Fr cur = Fr::one();
    for (auto& x : a) {
      x *= cur;
      cur *= base;
    }
    return;
  }
  pool.parallel_for(a.size(), [&](std::size_t lo, std::size_t hi) {
    Fr cur = lo == 0 ? Fr::one() : base.pow(U256{lo});
    for (std::size_t i = lo; i < hi; ++i) {
      a[i] *= cur;
      cur *= base;
    }
  });
}

}  // namespace

void EvaluationDomain::fft(std::vector<Fr>& a) const {
  ZKDET_CHECK(a.size() == size_, "fft: vector size ", a.size(),
              " does not match domain size ", size_);
  ntt_in_place(a, omega_, log_size_);
}

void EvaluationDomain::ifft(std::vector<Fr>& a) const {
  ZKDET_CHECK(a.size() == size_, "ifft: vector size ", a.size(),
              " does not match domain size ", size_);
  ntt_in_place(a, omega_inv_, log_size_);
  const Fr s = size_inv_;
  runtime::ThreadPool::instance().parallel_for(
      a.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) a[i] *= s;
      });
}

void EvaluationDomain::coset_fft(std::vector<Fr>& a, const Fr& shift) const {
  scale_by_powers(a, shift);
  fft(a);
}

void EvaluationDomain::coset_ifft(std::vector<Fr>& a, const Fr& shift) const {
  ifft(a);
  scale_by_powers(a, shift.inverse());
}

Fr EvaluationDomain::vanishing_at(const Fr& x) const {
  return x.pow(U256{size_}) - Fr::one();
}

Fr EvaluationDomain::lagrange_at(std::size_t i, const Fr& x) const {
  // L_i(x) = omega^i * (x^n - 1) / (n * (x - omega^i))
  const Fr num = powers_[i] * vanishing_at(x);
  const Fr den = Fr::from_u64(size_) * (x - powers_[i]);
  return num * den.inverse();
}

std::vector<Fr> EvaluationDomain::all_lagrange_at(const Fr& x) const {
  // Batch-invert the denominators with Montgomery's trick.
  const Fr zh = vanishing_at(x);
  std::vector<Fr> dens(size_);
  const Fr n = Fr::from_u64(size_);
  for (std::size_t i = 0; i < size_; ++i) dens[i] = n * (x - powers_[i]);
  // prefix products
  std::vector<Fr> prefix(size_ + 1);
  prefix[0] = Fr::one();
  for (std::size_t i = 0; i < size_; ++i) prefix[i + 1] = prefix[i] * dens[i];
  Fr inv_all = prefix[size_].inverse();
  std::vector<Fr> out(size_);
  for (std::size_t i = size_; i-- > 0;) {
    out[i] = powers_[i] * zh * prefix[i] * inv_all;
    inv_all *= dens[i];
  }
  return out;
}

}  // namespace zkdet::ff
