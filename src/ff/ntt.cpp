#include "ff/ntt.hpp"

#include <cassert>
#include <stdexcept>

namespace zkdet::ff {

void check_two_adic_root() {
  static const bool ok = [] {
    const Fr root = Fr::two_adic_root();
    Fr x = root;
    for (std::size_t i = 0; i < Fr::TWO_ADICITY - 1; ++i) x = x.square();
    // x = root^(2^27) must be -1 (primitive), and x^2 = 1.
    if (x != -Fr::one()) throw std::logic_error("Fr two-adic root not primitive");
    return true;
  }();
  (void)ok;
}

EvaluationDomain::EvaluationDomain(std::size_t size) : size_(size) {
  if (size == 0 || (size & (size - 1)) != 0) {
    throw std::invalid_argument("domain size must be a power of two");
  }
  check_two_adic_root();
  log_size_ = 0;
  while ((1ull << log_size_) < size) ++log_size_;
  if (log_size_ > Fr::TWO_ADICITY) {
    throw std::invalid_argument("domain larger than 2-adicity allows");
  }
  omega_ = Fr::two_adic_root();
  for (std::size_t i = log_size_; i < Fr::TWO_ADICITY; ++i) {
    omega_ = omega_.square();
  }
  omega_inv_ = omega_.inverse();
  size_inv_ = Fr::from_u64(size_).inverse();
  powers_.resize(size_);
  powers_[0] = Fr::one();
  for (std::size_t i = 1; i < size_; ++i) powers_[i] = powers_[i - 1] * omega_;
}

namespace {

void ntt_in_place(std::vector<Fr>& a, const Fr& root, std::size_t log_n) {
  const std::size_t n = a.size();
  // bit reversal permutation
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t s = 1; s <= log_n; ++s) {
    const std::size_t m = 1ull << s;
    Fr wm = root;
    for (std::size_t k = s; k < log_n; ++k) wm = wm.square();
    for (std::size_t start = 0; start < n; start += m) {
      Fr w = Fr::one();
      for (std::size_t j = 0; j < m / 2; ++j) {
        const Fr t = w * a[start + j + m / 2];
        const Fr u = a[start + j];
        a[start + j] = u + t;
        a[start + j + m / 2] = u - t;
        w *= wm;
      }
    }
  }
}

}  // namespace

void EvaluationDomain::fft(std::vector<Fr>& a) const {
  assert(a.size() == size_);
  ntt_in_place(a, omega_, log_size_);
}

void EvaluationDomain::ifft(std::vector<Fr>& a) const {
  assert(a.size() == size_);
  ntt_in_place(a, omega_inv_, log_size_);
  for (auto& x : a) x *= size_inv_;
}

void EvaluationDomain::coset_fft(std::vector<Fr>& a, const Fr& shift) const {
  Fr cur = Fr::one();
  for (auto& x : a) {
    x *= cur;
    cur *= shift;
  }
  fft(a);
}

void EvaluationDomain::coset_ifft(std::vector<Fr>& a, const Fr& shift) const {
  ifft(a);
  const Fr sinv = shift.inverse();
  Fr cur = Fr::one();
  for (auto& x : a) {
    x *= cur;
    cur *= sinv;
  }
}

Fr EvaluationDomain::vanishing_at(const Fr& x) const {
  return x.pow(U256{size_}) - Fr::one();
}

Fr EvaluationDomain::lagrange_at(std::size_t i, const Fr& x) const {
  // L_i(x) = omega^i * (x^n - 1) / (n * (x - omega^i))
  const Fr num = powers_[i] * vanishing_at(x);
  const Fr den = Fr::from_u64(size_) * (x - powers_[i]);
  return num * den.inverse();
}

std::vector<Fr> EvaluationDomain::all_lagrange_at(const Fr& x) const {
  // Batch-invert the denominators with Montgomery's trick.
  const Fr zh = vanishing_at(x);
  std::vector<Fr> dens(size_);
  const Fr n = Fr::from_u64(size_);
  for (std::size_t i = 0; i < size_; ++i) dens[i] = n * (x - powers_[i]);
  // prefix products
  std::vector<Fr> prefix(size_ + 1);
  prefix[0] = Fr::one();
  for (std::size_t i = 0; i < size_; ++i) prefix[i + 1] = prefix[i] * dens[i];
  Fr inv_all = prefix[size_].inverse();
  std::vector<Fr> out(size_);
  for (std::size_t i = size_; i-- > 0;) {
    out[i] = powers_[i] * zh * prefix[i] * inv_all;
    inv_all *= dens[i];
  }
  return out;
}

}  // namespace zkdet::ff
