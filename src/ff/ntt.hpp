// Radix-2 number-theoretic transform over the BN-254 scalar field.
//
// Fr has 2-adicity 28 (r - 1 = 2^28 * odd), so power-of-two evaluation
// domains up to 2^28 points exist. EvaluationDomain caches the root of
// unity and its inverse for one size; Plonk uses a size-n domain for
// witness polynomials and a shifted (coset) size-4n domain for quotient
// computation.
#pragma once

#include <cstddef>
#include <vector>

#include "ff/bn254.hpp"

namespace zkdet::ff {

class EvaluationDomain {
 public:
  // size must be a power of two, 1 <= size <= 2^28.
  explicit EvaluationDomain(std::size_t size);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const Fr& omega() const { return omega_; }
  [[nodiscard]] const Fr& omega_inv() const { return omega_inv_; }
  // omega^i, cached for all i in [0, size).
  [[nodiscard]] const Fr& element(std::size_t i) const { return powers_[i]; }

  // In-place coefficients -> evaluations on {omega^i}.
  void fft(std::vector<Fr>& a) const;
  // In-place evaluations -> coefficients.
  void ifft(std::vector<Fr>& a) const;
  // Evaluations on the coset {shift * omega^i}.
  void coset_fft(std::vector<Fr>& a, const Fr& shift) const;
  void coset_ifft(std::vector<Fr>& a, const Fr& shift) const;

  // Z_H(x) = x^n - 1 evaluated at an arbitrary point.
  [[nodiscard]] Fr vanishing_at(const Fr& x) const;
  // L_i(x): the i-th Lagrange basis polynomial of this domain at x
  // (x must not be in the domain; callers in Plonk guarantee this whp).
  [[nodiscard]] Fr lagrange_at(std::size_t i, const Fr& x) const;
  // Evaluations of L_0..L_{n-1} at x, computed in O(n).
  [[nodiscard]] std::vector<Fr> all_lagrange_at(const Fr& x) const;

 private:
  std::size_t size_;
  std::size_t log_size_;
  Fr omega_;
  Fr omega_inv_;
  Fr size_inv_;
  std::vector<Fr> powers_;
};

// Verifies the 2-adic root machinery once; called from tests and the
// first domain construction (cheap, idempotent).
void check_two_adic_root();

}  // namespace zkdet::ff
