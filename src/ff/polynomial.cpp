#include "ff/polynomial.hpp"

#include "check/check.hpp"

#include <algorithm>

namespace zkdet::ff {

Polynomial Polynomial::from_evaluations(std::vector<Fr> evals,
                                        const EvaluationDomain& domain) {
  ZKDET_CHECK(evals.size() == domain.size(),
              "evaluation count must match the domain size");
  domain.ifft(evals);
  Polynomial p{std::move(evals)};
  p.trim();
  return p;
}

std::size_t Polynomial::degree() const {
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    if (!coeffs_[i].is_zero()) return i;
  }
  return 0;
}

bool Polynomial::is_zero() const {
  return std::all_of(coeffs_.begin(), coeffs_.end(),
                     [](const Fr& c) { return c.is_zero(); });
}

Fr Polynomial::evaluate(const Fr& x) const {
  Fr acc = Fr::zero();
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * x + coeffs_[i];
  }
  return acc;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  std::vector<Fr> out(std::max(coeffs_.size(), o.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    Fr v = Fr::zero();
    if (i < coeffs_.size()) v += coeffs_[i];
    if (i < o.coeffs_.size()) v += o.coeffs_[i];
    out[i] = v;
  }
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  std::vector<Fr> out(std::max(coeffs_.size(), o.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    Fr v = Fr::zero();
    if (i < coeffs_.size()) v += coeffs_[i];
    if (i < o.coeffs_.size()) v -= o.coeffs_[i];
    out[i] = v;
  }
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  if (is_zero() || o.is_zero()) return zero();
  const std::size_t out_len = degree() + o.degree() + 1;
  std::size_t n = 1;
  while (n < out_len) n <<= 1;
  EvaluationDomain domain(n);
  std::vector<Fr> a(coeffs_.begin(), coeffs_.end());
  std::vector<Fr> b(o.coeffs_.begin(), o.coeffs_.end());
  a.resize(n, Fr::zero());
  b.resize(n, Fr::zero());
  domain.fft(a);
  domain.fft(b);
  for (std::size_t i = 0; i < n; ++i) a[i] *= b[i];
  domain.ifft(a);
  a.resize(out_len);
  Polynomial p{std::move(a)};
  p.trim();
  return p;
}

Polynomial Polynomial::scaled(const Fr& s) const {
  std::vector<Fr> out = coeffs_;
  for (auto& c : out) c *= s;
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::shifted(std::size_t k) const {
  std::vector<Fr> out(coeffs_.size() + k, Fr::zero());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i + k] = coeffs_[i];
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::dilated(const Fr& s) const {
  std::vector<Fr> out = coeffs_;
  Fr cur = Fr::one();
  for (auto& c : out) {
    c *= cur;
    cur *= s;
  }
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::divide_by_linear(const Fr& z) const {
  if (coeffs_.size() <= 1) return zero();
  std::vector<Fr> out(coeffs_.size() - 1);
  Fr acc = Fr::zero();
  for (std::size_t i = coeffs_.size(); i-- > 1;) {
    acc = coeffs_[i] + acc * z;
    out[i - 1] = acc;
  }
  return Polynomial{std::move(out)};
}

Polynomial Polynomial::divide_by_vanishing(std::size_t n,
                                           Polynomial* remainder) const {
  // x^n - 1 divides p iff p(omega^i) = 0 on the size-n domain. Long
  // division by x^n - 1 is a sliding add: q[i] = p[i+n] + q[i+n].
  if (coeffs_.size() <= n) {
    if (remainder != nullptr) *remainder = *this;
    return zero();
  }
  std::vector<Fr> q(coeffs_.size() - n, Fr::zero());
  for (std::size_t i = coeffs_.size() - n; i-- > 0;) {
    Fr v = coeffs_[i + n];
    if (i + n < q.size()) v += q[i + n];
    q[i] = v;
  }
  if (remainder != nullptr) {
    // p = q*(x^n - 1) + rem, so rem[i] = p[i] + q[i] for i < n.
    std::vector<Fr> rem(n, Fr::zero());
    for (std::size_t i = 0; i < n && i < coeffs_.size(); ++i) {
      rem[i] = coeffs_[i] + (i < q.size() ? q[i] : Fr::zero());
    }
    Polynomial r{std::move(rem)};
    r.trim();
    *remainder = r;
  }
  Polynomial qq{std::move(q)};
  qq.trim();
  return qq;
}

void Polynomial::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

}  // namespace zkdet::ff
