// Dense univariate polynomials over Fr in coefficient form.
#pragma once

#include <cstddef>
#include <vector>

#include "ff/ntt.hpp"

namespace zkdet::ff {

class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<Fr> coeffs) : coeffs_(std::move(coeffs)) {}

  [[nodiscard]] static Polynomial zero() { return Polynomial{}; }
  [[nodiscard]] static Polynomial constant(const Fr& c) {
    return Polynomial{std::vector<Fr>{c}};
  }
  // Interpolates evaluations on `domain` back to coefficients.
  [[nodiscard]] static Polynomial from_evaluations(std::vector<Fr> evals,
                                                   const EvaluationDomain& domain);

  [[nodiscard]] const std::vector<Fr>& coeffs() const { return coeffs_; }
  [[nodiscard]] std::vector<Fr>& coeffs() { return coeffs_; }

  // Degree of the zero polynomial is reported as 0.
  [[nodiscard]] std::size_t degree() const;
  [[nodiscard]] bool is_zero() const;

  [[nodiscard]] Fr evaluate(const Fr& x) const;

  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;  // NTT-based
  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }
  Polynomial& operator-=(const Polynomial& o) { return *this = *this - o; }

  [[nodiscard]] Polynomial scaled(const Fr& s) const;
  // Multiply by x^k.
  [[nodiscard]] Polynomial shifted(std::size_t k) const;
  // p(s * x) — used to move polynomials between cosets.
  [[nodiscard]] Polynomial dilated(const Fr& s) const;

  // Synthetic division by (x - z). Requires p(z) == 0 for exactness;
  // the remainder is discarded (KZG witness polynomials use this).
  [[nodiscard]] Polynomial divide_by_linear(const Fr& z) const;

  // Division by the vanishing polynomial x^n - 1; remainder returned via
  // out-param so callers can assert exactness.
  [[nodiscard]] Polynomial divide_by_vanishing(std::size_t n,
                                               Polynomial* remainder) const;

  void trim();  // drop high zero coefficients

 private:
  std::vector<Fr> coeffs_;
};

}  // namespace zkdet::ff
