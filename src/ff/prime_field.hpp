// Montgomery-form prime field, templated on a parameter struct.
//
// A parameter struct provides the modulus and a multiplicative generator:
//
//   struct MyParams {
//     static constexpr U256 MODULUS{...};   // odd, < 2^255
//     static constexpr std::uint64_t GENERATOR = 5;  // of the full group
//     static constexpr std::size_t TWO_ADICITY = ...; // 2-adic valuation of p-1
//   };
//
// R = 2^256 mod p, R^2 mod p and -p^-1 mod 2^64 are derived constexpr.
// Elements are kept in Montgomery form; CIOS multiplication uses
// unsigned __int128 limb products.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ff/u256.hpp"

namespace zkdet::ff {

template <typename Params>
class Fp_ {
 public:
  static constexpr U256 MOD = Params::MODULUS;
  static constexpr std::uint64_t INV = mont_inv64(Params::MODULUS.limb[0]);
  static constexpr std::size_t TWO_ADICITY = Params::TWO_ADICITY;

  constexpr Fp_() = default;

  [[nodiscard]] static Fp_ zero() { return Fp_{}; }
  [[nodiscard]] static Fp_ one() { return from_raw(r()); }

  [[nodiscard]] static Fp_ from_u64(std::uint64_t v) {
    return from_canonical(U256{v});
  }

  // Interpret v (already reduced mod p, canonical form) as a field element.
  [[nodiscard]] static Fp_ from_canonical(const U256& v) {
    Fp_ out;
    out.v_ = mont_mul(v, r2());
    return out;
  }

  [[nodiscard]] static Fp_ from_dec(std::string_view s) {
    U256 v = u256_from_dec(s);
    while (u256_geq(v, MOD)) u256_sub(v, v, MOD);
    return from_canonical(v);
  }

  // Construct from an arbitrary 256-bit value, reducing mod p.
  [[nodiscard]] static Fp_ reduce_from(const U256& v) {
    U256 x = v;
    while (u256_geq(x, MOD)) u256_sub(x, x, MOD);
    return from_canonical(x);
  }

  // The raw Montgomery representation (for serialization of constants).
  [[nodiscard]] static constexpr Fp_ from_raw(const U256& mont) {
    Fp_ out;
    out.v_ = mont;
    return out;
  }
  [[nodiscard]] const U256& raw() const { return v_; }

  [[nodiscard]] U256 to_canonical() const { return mont_mul(v_, U256{1}); }
  [[nodiscard]] std::string to_dec() const { return u256_to_dec(to_canonical()); }
  [[nodiscard]] std::string to_hex() const { return u256_to_hex(to_canonical()); }

  [[nodiscard]] bool is_zero() const { return v_.is_zero(); }
  bool operator==(const Fp_& o) const { return v_ == o.v_; }
  bool operator!=(const Fp_& o) const { return !(v_ == o.v_); }

  Fp_ operator+(const Fp_& o) const {
    Fp_ out;
    const std::uint64_t carry = u256_add(out.v_, v_, o.v_);
    if (carry != 0 || u256_geq(out.v_, MOD)) u256_sub(out.v_, out.v_, MOD);
    return out;
  }

  Fp_ operator-(const Fp_& o) const {
    Fp_ out;
    const std::uint64_t borrow = u256_sub(out.v_, v_, o.v_);
    if (borrow != 0) u256_add(out.v_, out.v_, MOD);
    return out;
  }

  Fp_ operator-() const {
    if (is_zero()) return *this;
    Fp_ out;
    u256_sub(out.v_, MOD, v_);
    return out;
  }

  Fp_ operator*(const Fp_& o) const { return from_raw(mont_mul(v_, o.v_)); }

  Fp_& operator+=(const Fp_& o) { return *this = *this + o; }
  Fp_& operator-=(const Fp_& o) { return *this = *this - o; }
  Fp_& operator*=(const Fp_& o) { return *this = *this * o; }

  [[nodiscard]] Fp_ square() const { return *this * *this; }

  [[nodiscard]] Fp_ dbl() const { return *this + *this; }

  [[nodiscard]] Fp_ pow(const U256& e) const {
    Fp_ result = one();
    const std::size_t n = e.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      result = result.square();
      if (e.bit(i)) result = result * *this;
    }
    return result;
  }

  // Multiplicative inverse via Fermat's little theorem; inverse of zero is
  // zero (callers that care must check is_zero()).
  [[nodiscard]] Fp_ inverse() const {
    U256 e;
    u256_sub(e, MOD, U256{2});
    return pow(e);
  }

  // Generator of the full multiplicative group (from Params).
  [[nodiscard]] static Fp_ generator() { return from_u64(Params::GENERATOR); }

  // Primitive 2^TWO_ADICITY-th root of unity.
  [[nodiscard]] static Fp_ two_adic_root() {
    U256 e;
    u256_sub(e, MOD, U256{1});
    for (std::size_t i = 0; i < TWO_ADICITY; ++i) {
      // e >>= 1
      for (std::size_t j = 0; j < 4; ++j) {
        e.limb[j] >>= 1;
        if (j + 1 < 4) e.limb[j] |= e.limb[j + 1] << 63;
      }
    }
    return generator().pow(e);
  }

 private:
  static constexpr U256 r() { return u256_pow2k_mod(256, Params::MODULUS); }
  static constexpr U256 r2() { return u256_pow2k_mod(512, Params::MODULUS); }

  // CIOS Montgomery multiplication: returns a*b*R^-1 mod p.
  static U256 mont_mul(const U256& a, const U256& b) {
    std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < 4; ++i) {
      // t += a[i] * b
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] + t[j] + carry;
        t[j] = static_cast<std::uint64_t>(cur);
        carry = static_cast<std::uint64_t>(cur >> 64);
      }
      {
        const unsigned __int128 cur = static_cast<unsigned __int128>(t[4]) + carry;
        t[4] = static_cast<std::uint64_t>(cur);
        t[5] = static_cast<std::uint64_t>(cur >> 64);
      }
      // m = t[0] * INV mod 2^64; t += m * p; t >>= 64
      const std::uint64_t m = t[0] * INV;
      unsigned __int128 cur =
          static_cast<unsigned __int128>(m) * MOD.limb[0] + t[0];
      carry = static_cast<std::uint64_t>(cur >> 64);
      for (std::size_t j = 1; j < 4; ++j) {
        cur = static_cast<unsigned __int128>(m) * MOD.limb[j] + t[j] + carry;
        t[j - 1] = static_cast<std::uint64_t>(cur);
        carry = static_cast<std::uint64_t>(cur >> 64);
      }
      cur = static_cast<unsigned __int128>(t[4]) + carry;
      t[3] = static_cast<std::uint64_t>(cur);
      t[4] = t[5] + static_cast<std::uint64_t>(cur >> 64);
      t[5] = 0;
    }
    U256 out{t[0], t[1], t[2], t[3]};
    if (t[4] != 0 || u256_geq(out, MOD)) u256_sub(out, out, MOD);
    return out;
  }

  U256 v_{};  // Montgomery form
};

}  // namespace zkdet::ff
