#include "ff/u256.hpp"

#include <algorithm>
#include <stdexcept>

namespace zkdet::ff {

U256 u256_from_dec(std::string_view s) {
  U256 r{};
  for (const char ch : s) {
    if (ch < '0' || ch > '9') throw std::invalid_argument("u256_from_dec: bad digit");
    // r = r * 10 + digit
    std::uint64_t carry = static_cast<std::uint64_t>(ch - '0');
    for (std::size_t i = 0; i < 4; ++i) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(r.limb[i]) * 10 + carry;
      r.limb[i] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    if (carry != 0) throw std::overflow_error("u256_from_dec: overflow");
  }
  return r;
}

std::string u256_to_hex(const U256& v) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  bool started = false;
  for (int i = 3; i >= 0; --i) {
    for (int nib = 15; nib >= 0; --nib) {
      const unsigned d =  // zkdet-lint: allow(narrowing-cast) masked to 4 bits
          static_cast<unsigned>((v.limb[static_cast<std::size_t>(i)] >> (nib * 4)) & 0xF);
      if (d != 0) started = true;
      if (started) out.push_back(digits[d]);
    }
  }
  if (out.empty()) out = "0";
  return out;
}

std::string u256_to_dec(const U256& v) {
  U256 x = v;
  std::string out;
  const auto div10 = [](U256& a) -> unsigned {
    unsigned __int128 rem = 0;
    for (int i = 3; i >= 0; --i) {
      const unsigned __int128 cur = (rem << 64) | a.limb[static_cast<std::size_t>(i)];
      a.limb[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(cur / 10);
      rem = cur % 10;
    }
    return static_cast<unsigned>(rem);  // zkdet-lint: allow(narrowing-cast) rem < 10
  };
  if (x.is_zero()) return "0";
  // zkdet-lint: allow(narrowing-cast) digit in ['0','9']
  while (!x.is_zero()) out.push_back(static_cast<char>('0' + div10(x)));
  std::reverse(out.begin(), out.end());
  return out;
}

std::array<std::uint8_t, 32> u256_to_bytes(const U256& v) {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t limb = (31 - i) / 8;
    const std::size_t byte = (31 - i) % 8;
    // zkdet-lint: allow(narrowing-cast) intentional byte extraction
    out[i] = static_cast<std::uint8_t>(v.limb[limb] >> (byte * 8));
  }
  return out;
}

U256 u256_from_bytes(const std::array<std::uint8_t, 32>& b) {
  U256 v{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t limb = (31 - i) / 8;
    const std::size_t byte = (31 - i) % 8;
    v.limb[limb] |= static_cast<std::uint64_t>(b[i]) << (byte * 8);
  }
  return v;
}

}  // namespace zkdet::ff
