// 256-bit unsigned integer with constexpr arithmetic.
//
// U256 is the plumbing under the Montgomery prime fields: a fixed-width,
// little-endian, 4x64-bit limb integer. Everything here is constexpr so
// that field parameters (R, R^2, -p^-1 mod 2^64) can be derived from the
// modulus at compile time instead of being hand-transcribed.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>

namespace zkdet::ff {

struct U256 {
  // limb[0] is the least significant 64 bits.
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t lo) : limb{lo, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  constexpr bool operator==(const U256&) const = default;

  [[nodiscard]] constexpr bool is_zero() const {
    return limb[0] == 0 && limb[1] == 0 && limb[2] == 0 && limb[3] == 0;
  }

  [[nodiscard]] constexpr bool bit(std::size_t i) const {
    return (limb[i / 64] >> (i % 64)) & 1u;
  }

  // Number of significant bits (0 for zero).
  [[nodiscard]] constexpr std::size_t bit_length() const {
    for (int i = 3; i >= 0; --i) {
      if (limb[static_cast<std::size_t>(i)] != 0) {
        std::uint64_t v = limb[static_cast<std::size_t>(i)];
        std::size_t n = 0;
        while (v != 0) {
          v >>= 1;
          ++n;
        }
        return static_cast<std::size_t>(i) * 64 + n;
      }
    }
    return 0;
  }
};

// a < b
constexpr bool u256_less(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    const auto ai = a.limb[static_cast<std::size_t>(i)];
    const auto bi = b.limb[static_cast<std::size_t>(i)];
    if (ai != bi) return ai < bi;
  }
  return false;
}

constexpr bool u256_geq(const U256& a, const U256& b) { return !u256_less(a, b); }

// out = a + b, returns carry.
constexpr std::uint64_t u256_add(U256& out, const U256& a, const U256& b) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<std::uint64_t>(s >> 64);
  }
  return carry;
}

// out = a - b, returns borrow.
constexpr std::uint64_t u256_sub(U256& out, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) -
                                b.limb[i] - borrow;
    out.limb[i] = static_cast<std::uint64_t>(d);
    borrow = static_cast<std::uint64_t>((d >> 64) != 0 ? 1 : 0);
  }
  return borrow;
}

// Full 256x256 -> 512 bit product, little-endian 8 limbs.
constexpr std::array<std::uint64_t, 8> u256_mul_wide(const U256& a,
                                                     const U256& b) {
  std::array<std::uint64_t, 8> r{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] + r[i + j] +
          carry;
      r[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r[i + 4] = carry;
  }
  return r;
}

// 2^k mod m, for odd m with bit_length(m) <= 255 (true for all our moduli).
constexpr U256 u256_pow2k_mod(std::size_t k, const U256& m) {
  U256 x{1};
  if (u256_geq(x, m)) u256_sub(x, x, m);
  for (std::size_t i = 0; i < k; ++i) {
    U256 d{};
    u256_add(d, x, x);  // x < m < 2^255, no overflow
    if (u256_geq(d, m)) u256_sub(d, d, m);
    x = d;
  }
  return x;
}

// -m^-1 mod 2^64 for odd m (Newton's iteration doubles correct bits).
constexpr std::uint64_t mont_inv64(std::uint64_t m0) {
  std::uint64_t x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - m0 * x;
  return ~x + 1;  // negate mod 2^64
}

// Parse a decimal string; input must fit in 256 bits.
U256 u256_from_dec(std::string_view s);

// Lowercase hex, no 0x prefix, most significant digit first.
std::string u256_to_hex(const U256& v);
std::string u256_to_dec(const U256& v);

// 32 big-endian bytes.
std::array<std::uint8_t, 32> u256_to_bytes(const U256& v);
U256 u256_from_bytes(const std::array<std::uint8_t, 32>& b);

}  // namespace zkdet::ff
