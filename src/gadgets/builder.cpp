#include "gadgets/builder.hpp"

#include "check/check.hpp"

namespace zkdet::gadgets {

CircuitBuilder::CircuitBuilder() { values_.push_back(Fr::zero()); }

Wire CircuitBuilder::new_wire(const Fr& value) {
  const Var v = cs_.add_variable();
  ZKDET_DCHECK(v == values_.size(), "builder/constraint-system var id skew");
  values_.push_back(value);
  return Wire{v};
}

void CircuitBuilder::raw_gate(const Fr& qm, const Fr& ql, const Fr& qr,
                              const Fr& qo, const Fr& qc, Wire a, Wire b,
                              Wire c) {
  cs_.add_gate(Gate{qm, ql, qr, qo, qc, a.var, b.var, c.var});
}

Wire CircuitBuilder::add_public_input(const Fr& value) {
  const Wire w = new_wire(value);
  cs_.set_public(w.var);
  return w;
}

Wire CircuitBuilder::add_witness(const Fr& value) { return new_wire(value); }

Wire CircuitBuilder::constant(const Fr& value) {
  if (value.is_zero()) return zero();
  const Wire w = new_wire(value);
  // w - value == 0
  raw_gate(Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), -value, w, zero(),
           zero());
  return w;
}

Wire CircuitBuilder::add(Wire a, Wire b) {
  return linear(Fr::one(), a, Fr::one(), b, Fr::zero());
}

Wire CircuitBuilder::sub(Wire a, Wire b) {
  return linear(Fr::one(), a, -Fr::one(), b, Fr::zero());
}

Wire CircuitBuilder::mul(Wire a, Wire b) {
  const Wire out = new_wire(value(a) * value(b));
  raw_gate(Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), a, b,
           out);
  return out;
}

Wire CircuitBuilder::scale(Wire a, const Fr& s) {
  return linear(s, a, Fr::zero(), zero(), Fr::zero());
}

Wire CircuitBuilder::add_constant(Wire a, const Fr& k) {
  return linear(Fr::one(), a, Fr::zero(), zero(), k);
}

Wire CircuitBuilder::linear(const Fr& ca, Wire a, const Fr& cb, Wire b,
                            const Fr& k) {
  const Wire out = new_wire(ca * value(a) + cb * value(b) + k);
  // ca*a + cb*b - out + k == 0
  raw_gate(Fr::zero(), ca, cb, -Fr::one(), k, a, b, out);
  return out;
}

Wire CircuitBuilder::mul_add(Wire a, Wire b, Wire c) {
  // The gate's qm term multiplies the a/b slots, so a*b+c needs four
  // wires and therefore two gates.
  return add(mul(a, b), c);
}

Wire CircuitBuilder::sum(std::span<const Wire> xs) {
  if (xs.empty()) return zero();
  Wire acc = xs[0];
  std::size_t i = 1;
  // fold two terms per gate: acc' = acc + x_i + x_{i+1} is not a single
  // gate (3 inputs), so chain pairwise.
  for (; i < xs.size(); ++i) acc = add(acc, xs[i]);
  return acc;
}

Wire CircuitBuilder::inner_product(std::span<const Wire> xs,
                                   std::span<const Wire> ys) {
  ZKDET_CHECK(xs.size() == ys.size(), "inner_product length mismatch");
  Wire acc = zero();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc = mul_add(xs[i], ys[i], acc);
  }
  return acc;
}

void CircuitBuilder::assert_equal(Wire a, Wire b) {
  raw_gate(Fr::zero(), Fr::one(), -Fr::one(), Fr::zero(), Fr::zero(), a, b,
           zero());
}

void CircuitBuilder::assert_zero(Wire a) {
  raw_gate(Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), a, zero(),
           zero());
}

void CircuitBuilder::assert_constant(Wire a, const Fr& k) {
  raw_gate(Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), -k, a, zero(), zero());
}

void CircuitBuilder::assert_mul(Wire a, Wire b, Wire c) {
  raw_gate(Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), a, b, c);
}

void CircuitBuilder::assert_bool(Wire a) {
  // a * a - a == 0
  raw_gate(Fr::one(), -Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), a, a,
           zero());
}

Wire CircuitBuilder::logic_and(Wire a, Wire b) { return mul(a, b); }

Wire CircuitBuilder::logic_or(Wire a, Wire b) {
  // a + b - a*b
  const Wire out = new_wire(value(a) + value(b) - value(a) * value(b));
  raw_gate(-Fr::one(), Fr::one(), Fr::one(), -Fr::one(), Fr::zero(), a, b, out);
  return out;
}

Wire CircuitBuilder::logic_xor(Wire a, Wire b) {
  // a + b - 2ab
  const Fr two = Fr::from_u64(2);
  const Wire out =
      new_wire(value(a) + value(b) - two * value(a) * value(b));
  raw_gate(-two, Fr::one(), Fr::one(), -Fr::one(), Fr::zero(), a, b, out);
  return out;
}

Wire CircuitBuilder::logic_not(Wire a) {
  return linear(-Fr::one(), a, Fr::zero(), zero(), Fr::one());
}

Wire CircuitBuilder::select(Wire cond, Wire t, Wire f) {
  // f + cond * (t - f)
  const Wire diff = sub(t, f);
  const Wire scaled = mul(cond, diff);
  return add(f, scaled);
}

Wire CircuitBuilder::is_zero(Wire a) {
  const Fr av = value(a);
  const Fr inv_hint = av.is_zero() ? Fr::zero() : av.inverse();
  const Wire inv = add_witness(inv_hint);
  const Wire out = add_witness(av.is_zero() ? Fr::one() : Fr::zero());
  // a * inv + out - 1 == 0
  raw_gate(Fr::one(), Fr::zero(), Fr::zero(), Fr::one(), -Fr::one(), a, inv,
           out);
  // a * out == 0
  raw_gate(Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero(), a, out,
           zero());
  return out;
}

std::vector<Wire> CircuitBuilder::to_bits(Wire a, std::size_t nbits) {
  ZKDET_CHECK(nbits > 0 && nbits <= 128, "to_bits width out of range");
  const ff::U256 canonical = value(a).to_canonical();
  std::vector<Wire> bits;
  bits.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    const Wire b = add_witness(canonical.bit(i) ? Fr::one() : Fr::zero());
    assert_bool(b);
    bits.push_back(b);
  }
  // The value must actually fit; a witness that doesn't satisfies nothing.
  const Wire recomposed = from_bits(bits);
  assert_equal(a, recomposed);
  return bits;
}

Wire CircuitBuilder::from_bits(std::span<const Wire> bits) {
  Wire acc = zero();
  Fr pow = Fr::one();
  for (const Wire& b : bits) {
    acc = linear(Fr::one(), acc, pow, b, Fr::zero());
    pow += pow;
  }
  return acc;
}

Wire CircuitBuilder::less_than(Wire a, Wire b, std::size_t nbits) {
  ZKDET_CHECK(nbits + 1 <= 128, "less_than width out of range");
  assert_range(a, nbits);
  assert_range(b, nbits);
  // diff = b - a + 2^nbits in (0, 2^(nbits+1)); its top bit is 1 iff
  // b >= a.
  Fr two_n = Fr::one();
  for (std::size_t i = 0; i < nbits; ++i) two_n += two_n;
  const Wire diff = linear(Fr::one(), b, -Fr::one(), a, two_n);
  const std::vector<Wire> bits = to_bits(diff, nbits + 1);
  // b >= a  <=>  top bit set; a < b  <=>  top bit set and diff != 2^nbits
  // Simpler: a < b  <=>  b >= a and a != b. Compute geq = top bit; then
  // lt = geq AND NOT(a == b).
  const Wire geq = bits[nbits];
  const Wire eq = is_equal(a, b);
  return logic_and(geq, logic_not(eq));
}

void CircuitBuilder::assert_less_than(Wire a, Wire b, std::size_t nbits) {
  const Wire lt = less_than(a, b, nbits);
  assert_constant(lt, Fr::one());
}

void CircuitBuilder::assert_leq(Wire a, Wire b, std::size_t nbits) {
  assert_range(a, nbits);
  assert_range(b, nbits);
  Fr two_n = Fr::one();
  for (std::size_t i = 0; i < nbits; ++i) two_n += two_n;
  const Wire diff = linear(Fr::one(), b, -Fr::one(), a, two_n);
  const std::vector<Wire> bits = to_bits(diff, nbits + 1);
  assert_constant(bits[nbits], Fr::one());
}

}  // namespace zkdet::gadgets
