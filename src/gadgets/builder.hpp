// Circuit builder: the front end over plonk::ConstraintSystem.
//
// Replaces the paper's Circom language. A builder simultaneously lays
// down gates and computes the witness from concrete input values, so a
// protocol builds its circuit once with real inputs to prove, and once
// with placeholder inputs to derive keys (gate structure is
// value-independent by construction — gadget code never branches on
// witness values when emitting constraints).
//
// This header is the "fundamental mathematical gadget" part of the
// paper's IV-D library: arithmetic, booleans, equality/zero tests,
// selections, bit decomposition and comparisons. Cryptographic gadgets
// (MiMC, Poseidon, Merkle) live in hash_gadgets.hpp, and the fixed-point
// numeric tower for the IV-E applications in fixed_point.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "plonk/constraint_system.hpp"

namespace zkdet::gadgets {

using ff::Fr;
using plonk::ConstraintSystem;
using plonk::Gate;
using plonk::Var;

// A handle to one circuit variable.
struct Wire {
  Var var = ConstraintSystem::kZeroVar;
};

class CircuitBuilder {
 public:
  CircuitBuilder();

  // --- inputs and constants ---
  Wire add_public_input(const Fr& value);
  Wire add_witness(const Fr& value);
  Wire constant(const Fr& value);
  Wire zero() const { return Wire{ConstraintSystem::kZeroVar}; }
  Wire one() { return constant(Fr::one()); }

  // --- arithmetic ---
  Wire add(Wire a, Wire b);
  Wire sub(Wire a, Wire b);
  Wire mul(Wire a, Wire b);
  Wire neg(Wire a) { return scale(a, -Fr::one()); }
  Wire scale(Wire a, const Fr& s);
  Wire add_constant(Wire a, const Fr& k);
  // ca*a + cb*b + k
  Wire linear(const Fr& ca, Wire a, const Fr& cb, Wire b, const Fr& k);
  // a*b + c (one gate)
  Wire mul_add(Wire a, Wire b, Wire c);
  // Sum of many terms (chained gates).
  Wire sum(std::span<const Wire> xs);
  Wire inner_product(std::span<const Wire> xs, std::span<const Wire> ys);

  // --- assertions ---
  void assert_equal(Wire a, Wire b);
  void assert_zero(Wire a);
  void assert_constant(Wire a, const Fr& k);
  void assert_mul(Wire a, Wire b, Wire c);  // a*b == c
  void assert_bool(Wire a);                 // a in {0, 1}

  // --- booleans (wires must be boolean-constrained by the caller or
  //     produced by boolean gadgets) ---
  Wire logic_and(Wire a, Wire b);
  Wire logic_or(Wire a, Wire b);
  Wire logic_xor(Wire a, Wire b);
  Wire logic_not(Wire a);

  // cond ? t : f (cond boolean)
  Wire select(Wire cond, Wire t, Wire f);

  // 1 if a == 0 else 0 (boolean output)
  Wire is_zero(Wire a);
  Wire is_equal(Wire a, Wire b) { return is_zero(sub(a, b)); }

  // --- bits and comparisons ---
  // Little-endian bit decomposition; asserts a < 2^nbits.
  std::vector<Wire> to_bits(Wire a, std::size_t nbits);
  Wire from_bits(std::span<const Wire> bits);
  void assert_range(Wire a, std::size_t nbits) { (void)to_bits(a, nbits); }
  // a < b as boolean; both operands must fit in nbits (asserted).
  Wire less_than(Wire a, Wire b, std::size_t nbits);
  void assert_less_than(Wire a, Wire b, std::size_t nbits);
  void assert_leq(Wire a, Wire b, std::size_t nbits);

  // --- access ---
  [[nodiscard]] const ConstraintSystem& cs() const { return cs_; }
  [[nodiscard]] const std::vector<Fr>& witness() const { return values_; }
  [[nodiscard]] const Fr& value(Wire w) const { return values_[w.var]; }
  [[nodiscard]] std::size_t num_gates() const { return cs_.num_rows(); }
  // Sanity: every emitted gate holds under the tracked witness.
  [[nodiscard]] bool witness_consistent() const {
    return cs_.is_satisfied(values_);
  }

 private:
  Wire new_wire(const Fr& value);
  void raw_gate(const Fr& qm, const Fr& ql, const Fr& qr, const Fr& qo,
                const Fr& qc, Wire a, Wire b, Wire c);

  ConstraintSystem cs_;
  std::vector<Fr> values_;
};

}  // namespace zkdet::gadgets
