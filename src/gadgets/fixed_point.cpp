#include "gadgets/fixed_point.hpp"

#include <cmath>

#include "check/check.hpp"

namespace zkdet::gadgets {

namespace {

using ff::U256;

// v is known to be a "small" signed integer in the field (|v| < 2^127).
// Returns its signed value as __int128.
__int128 to_signed(const Fr& v) {
  const U256 c = v.to_canonical();
  // negative iff canonical > r/2
  U256 half = Fr::MOD;
  for (std::size_t j = 0; j < 4; ++j) {
    half.limb[j] >>= 1;
    if (j + 1 < 4) half.limb[j] |= half.limb[j + 1] << 63;
  }
  if (ff::u256_less(half, c)) {
    U256 neg{};
    ff::u256_sub(neg, Fr::MOD, c);
    ZKDET_DCHECK(neg.limb[2] == 0 && neg.limb[3] == 0,
                 "fixed-point value exceeds 128 bits");
    return -static_cast<__int128>(
        (static_cast<unsigned __int128>(neg.limb[1]) << 64) | neg.limb[0]);
  }
  ZKDET_DCHECK(c.limb[2] == 0 && c.limb[3] == 0,
               "fixed-point value exceeds 128 bits");
  return static_cast<__int128>(
      (static_cast<unsigned __int128>(c.limb[1]) << 64) | c.limb[0]);
}

Fr from_signed(__int128 v) {
  const bool neg = v < 0;
  unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-v)
                              : static_cast<unsigned __int128>(v);
  const U256 u{static_cast<std::uint64_t>(mag),
               static_cast<std::uint64_t>(mag >> 64), 0, 0};
  const Fr f = Fr::from_canonical(u);
  return neg ? -f : f;
}

Fr pow2_fr(std::size_t k) {
  Fr x = Fr::one();
  for (std::size_t i = 0; i < k; ++i) x += x;
  return x;
}

}  // namespace

Fr fix_encode(double v, const FixParams& p) {
  const double scaled = v * static_cast<double>(1ull << p.frac_bits);
  return from_signed(static_cast<__int128>(std::llround(scaled)));
}

double fix_decode(const Fr& v, const FixParams& p) {
  return static_cast<double>(to_signed(v)) /
         static_cast<double>(1ull << p.frac_bits);
}

Wire FixOps::rescale(Wire v, std::size_t shift, std::size_t mag_bits) {
  ZKDET_CHECK(mag_bits + 1 < 250 && shift < 64,
              "rescale parameters out of range");
  // w = v + 2^mag_bits is nonnegative, < 2^(mag_bits+1).
  // Decompose w = q * 2^shift + rem; result = q - 2^(mag_bits - shift).
  const __int128 sv = to_signed(bld_.value(v));
  const __int128 offset = static_cast<__int128>(1) << mag_bits;
  ZKDET_CHECK(sv > -offset && sv < offset, "fixed-point magnitude overflow");
  const __int128 w = sv + offset;
  const __int128 q = w >> shift;
  const __int128 rem = w - (q << shift);

  const Wire qw = bld_.add_witness(from_signed(q));
  const Wire rw = bld_.add_witness(from_signed(rem));
  // v + 2^mag_bits - q*2^shift - rem == 0
  const Wire recomposed = bld_.linear(pow2_fr(shift), qw, Fr::one(), rw,
                                      -pow2_fr(mag_bits));
  bld_.assert_equal(v, recomposed);
  bld_.assert_range(qw, mag_bits + 1 - shift);
  bld_.assert_range(rw, shift);
  return bld_.add_constant(qw, -pow2_fr(mag_bits - shift));
}

Wire FixOps::mul(Wire a, Wire b) {
  const Wire prod = bld_.mul(a, b);
  return rescale(prod, p_.frac_bits, 2 * p_.value_bits());
}

Wire FixOps::mul_const(Wire a, double c) {
  const Wire prod = bld_.scale(a, fix_encode(c, p_));
  return rescale(prod, p_.frac_bits, 2 * p_.value_bits());
}

Wire FixOps::inner(std::span<const Wire> a, std::span<const Wire> b) {
  ZKDET_CHECK(a.size() == b.size(), "inner product length mismatch");
  Wire acc = bld_.zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = bld_.mul_add(a[i], b[i], acc);
  }
  // Accumulated scale 2^(2*frac); one rescale. Allow log2(n) extra bits.
  std::size_t extra = 0;
  while ((1ull << extra) < std::max<std::size_t>(a.size(), 1)) ++extra;
  return rescale(acc, p_.frac_bits, 2 * p_.value_bits() + extra);
}

Wire FixOps::div_nonneg(Wire a, Wire b) {
  const std::size_t vb = p_.value_bits();
  bld_.assert_range(a, vb);  // a >= 0 (and bounded)
  bld_.assert_range(b, vb);
  // b > 0: b - 1 must be in range too.
  bld_.assert_range(bld_.add_constant(b, -Fr::one()), vb);
  // q = floor(a * 2^frac / b): a*2^frac = q*b + rem, rem < b.
  const __int128 av = to_signed(bld_.value(a));
  const __int128 bv = to_signed(bld_.value(b));
  ZKDET_CHECK(av >= 0 && bv > 0, "div_nonneg: operands out of range");
  const __int128 num = av << p_.frac_bits;
  const __int128 q = num / bv;
  const __int128 rem = num % bv;
  const Wire qw = bld_.add_witness(from_signed(q));
  const Wire rw = bld_.add_witness(from_signed(rem));
  // a * 2^frac - q*b - rem == 0
  const Wire qb = bld_.mul(qw, b);
  const Wire lhs = bld_.scale(a, pow2_fr(p_.frac_bits));
  const Wire rhs = bld_.add(qb, rw);
  bld_.assert_equal(lhs, rhs);
  bld_.assert_less_than(rw, b, vb + p_.frac_bits);
  bld_.assert_range(qw, vb + p_.frac_bits);
  return qw;
}

Wire FixOps::shift_pos(Wire x) {
  return bld_.add_constant(x, pow2_fr(p_.value_bits()));
}

Wire FixOps::sign_bit(Wire a) {
  const std::size_t vb = p_.value_bits();
  const Wire w = bld_.add_constant(a, pow2_fr(vb));
  const std::vector<Wire> bits = bld_.to_bits(w, vb + 1);
  return bits[vb];
}

Wire FixOps::relu(Wire a) {
  const Wire nonneg = sign_bit(a);
  return bld_.select(nonneg, a, bld_.zero());
}

Wire FixOps::abs(Wire a) {
  const Wire nonneg = sign_bit(a);
  return bld_.select(nonneg, a, bld_.neg(a));
}

void FixOps::assert_nonneg(Wire a) { bld_.assert_range(a, p_.value_bits()); }

Wire FixOps::affine_const(std::span<const Wire> x, std::span<const double> w,
                          double bias) {
  ZKDET_CHECK(x.size() == w.size(), "affine_const length mismatch");
  // Accumulate at scale 2^(2*frac): constant coefficients are encoded at
  // scale 2^frac and multiply scale-2^frac wires; one rescale at the end.
  Wire acc = bld_.constant(fix_encode(bias, p_) * pow2_fr(p_.frac_bits));
  for (std::size_t j = 0; j < x.size(); ++j) {
    acc = bld_.linear(Fr::one(), acc, fix_encode(w[j], p_), x[j], Fr::zero());
  }
  std::size_t extra = 1;
  while ((1ull << extra) < std::max<std::size_t>(x.size() + 1, 2)) ++extra;
  return rescale(acc, p_.frac_bits, 2 * p_.value_bits() + extra);
}

Wire FixOps::piecewise_linear(Wire x, double x0, double x1,
                              std::size_t log2_segments, double (*f)(double)) {
  const std::size_t fb = p_.frac_bits;
  // The knot range in raw units must be a power of two so the segment
  // index is literally a bit-slice of (x - x0).
  const double range = x1 - x0;
  const __int128 range_raw = static_cast<__int128>(std::llround(range)) << fb;
  std::size_t range_bits = 0;
  while ((static_cast<__int128>(1) << range_bits) < range_raw) ++range_bits;
  ZKDET_CHECK((static_cast<__int128>(1) << range_bits) == range_raw,
              "x1 - x0 must be a power of two");
  ZKDET_CHECK(log2_segments <= range_bits,
              "more segments than raw range steps");
  const std::size_t step_bits = range_bits - log2_segments;
  const double step = range / static_cast<double>(1ull << log2_segments);

  // Clamp x into [x0, x1 - 1 raw unit].
  const std::size_t cmp_bits = p_.value_bits() + 2;
  const Wire lo = constant(x0);
  const Wire hi = constant(x1);
  const Wire below = bld_.less_than(shift_pos(x), shift_pos(lo), cmp_bits);
  Wire xc = bld_.select(below, lo, x);
  const Wire above =
      bld_.logic_not(bld_.less_than(shift_pos(xc), shift_pos(hi), cmp_bits));
  const Wire hi_minus = bld_.add_constant(hi, -Fr::one());
  xc = bld_.select(above, hi_minus, xc);

  // w = xc - x0 in [0, 2^range_bits); segment index = high bits, offset
  // within the segment = low bits.
  const Wire w = bld_.sub(xc, lo);
  const std::vector<Wire> bits = bld_.to_bits(w, range_bits);
  const std::span<const Wire> low(bits.data(), step_bits);
  const Wire offset = bld_.from_bits(low);

  // Indicator tree: inds[i] == 1 iff segment index == i. Bits are
  // consumed low-to-high and each round appends the bit=1 block above
  // the bit=0 block, so slot j ends up with index-bit b == (j >> b) & 1 —
  // the identity mapping onto segment numbers.
  std::vector<Wire> inds{bld_.one()};
  for (std::size_t b = 0; b < log2_segments; ++b) {
    const Wire bit = bits[step_bits + b];
    const Wire not_bit = bld_.logic_not(bit);
    std::vector<Wire> next;
    next.reserve(inds.size() * 2);
    for (const Wire ind : inds) next.push_back(bld_.mul(ind, not_bit));
    for (const Wire ind : inds) next.push_back(bld_.mul(ind, bit));
    inds = std::move(next);
  }

  // y = y_i + slope_i * offset, accumulated at scale 2^(2*frac).
  const std::size_t num_segments = 1ull << log2_segments;
  Wire acc = bld_.zero();
  for (std::size_t i = 0; i < num_segments; ++i) {
    const double knot_x = x0 + static_cast<double>(i) * step;
    const double y_i = f(knot_x);
    const double slope_i = (f(knot_x + step) - y_i) / step;
    const Wire seg =
        bld_.linear(fix_encode(slope_i, p_), offset, Fr::zero(), bld_.zero(),
                    fix_encode(y_i, p_) * pow2_fr(fb));
    acc = bld_.add(acc, bld_.mul(inds[i], seg));
  }
  return rescale(acc, fb, 2 * p_.value_bits() + 4);
}

namespace {
double sigmoid_fn(double t) { return 1.0 / (1.0 + std::exp(-t)); }
double exp_fn(double t) { return std::exp(t); }
}  // namespace

Wire FixOps::sigmoid(Wire x) {
  return piecewise_linear(x, -8.0, 8.0, /*log2_segments=*/5, &sigmoid_fn);
}

Wire FixOps::exp(Wire x) {
  return piecewise_linear(x, -12.0, 4.0, /*log2_segments=*/6, &exp_fn);
}

}  // namespace zkdet::gadgets
