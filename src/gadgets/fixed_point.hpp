// Signed fixed-point arithmetic in-circuit.
//
// The paper's IV-E applications (logistic regression, transformer
// layers) compute over reals; in the field they are represented as
// x * 2^frac_bits with |x| < 2^int_bits, negatives as field negatives.
// Multiplication/division rescale through witness quotient+remainder
// pairs whose ranges are enforced by bit decomposition — the standard
// zk fixed-point construction ("linearization" in the paper's gadget
// list). Nonlinear functions (sigmoid, exp) are clamped piecewise-linear
// approximations over constant knot tables, the in-circuit counterpart
// of the paper's "logarithmic computation" gadgets.
#pragma once

#include <utility>
#include <vector>

#include "gadgets/builder.hpp"

namespace zkdet::gadgets {

struct FixParams {
  std::size_t frac_bits = 16;
  std::size_t int_bits = 24;  // magnitude bound 2^int_bits on real values
  [[nodiscard]] std::size_t value_bits() const { return frac_bits + int_bits; }
};

// Native-side encode/decode.
Fr fix_encode(double v, const FixParams& p);
double fix_decode(const Fr& v, const FixParams& p);

class FixOps {
 public:
  FixOps(CircuitBuilder& bld, FixParams params) : bld_(bld), p_(params) {}

  [[nodiscard]] const FixParams& params() const { return p_; }
  [[nodiscard]] CircuitBuilder& builder() { return bld_; }

  Wire constant(double v) { return bld_.constant(fix_encode(v, p_)); }
  [[nodiscard]] double decode(Wire w) const {
    return fix_decode(bld_.value(w), p_);
  }

  Wire add(Wire a, Wire b) { return bld_.add(a, b); }
  Wire sub(Wire a, Wire b) { return bld_.sub(a, b); }
  Wire neg(Wire a) { return bld_.neg(a); }

  // Rescaled product (floor division by 2^frac_bits).
  Wire mul(Wire a, Wire b);
  Wire mul_const(Wire a, double c);
  Wire square(Wire a) { return mul(a, a); }

  // Fixed-point dot product with a single final rescale.
  Wire inner(std::span<const Wire> a, std::span<const Wire> b);

  // a / b for a >= 0, b > 0 (both enforced).
  Wire div_nonneg(Wire a, Wire b);

  Wire relu(Wire a);
  Wire abs(Wire a);
  // 1 if a >= 0 (boolean wire).
  Wire sign_bit(Wire a);
  void assert_nonneg(Wire a);

  // Affine map with constant coefficients: sum_j w_j x_j + bias, one
  // rescale total (the workhorse of the ML application circuits).
  Wire affine_const(std::span<const Wire> x, std::span<const double> w,
                    double bias);

  // Piecewise-linear approximation of f on [x0, x1] with 2^log2_segments
  // uniform segments, clamping outside the range. Requires
  // (x1 - x0) * 2^frac_bits and the per-segment step to be powers of two
  // so the segment index is a bit-slice of x - x0. Cost is
  // O(2^log2_segments) constant-mux gates, not O(segments) comparators.
  Wire piecewise_linear(Wire x, double x0, double x1,
                        std::size_t log2_segments, double (*f)(double));

  // sigmoid(x) = 1/(1+e^-x), PL-approximated on [-8, 8] (32 segments).
  Wire sigmoid(Wire x);
  // e^x, PL-approximated on [-12, 4] (64 segments), clamped.
  Wire exp(Wire x);

 private:
  // Divides `v` (known |value| < 2^mag_bits, scale irrelevant) by
  // 2^shift, flooring; enforced by q/r decomposition.
  Wire rescale(Wire v, std::size_t shift, std::size_t mag_bits);
  // Shifts a signed value into the nonnegative domain for comparisons.
  Wire shift_pos(Wire x);

  CircuitBuilder& bld_;
  FixParams p_;
};

}  // namespace zkdet::gadgets
