#include "gadgets/hash_gadgets.hpp"

#include "check/check.hpp"

namespace zkdet::gadgets {

namespace {

// x^7 via x2 = x^2, x4 = x2^2, x6 = x4*x2, x7 = x6*x: 4 mul gates.
Wire pow7(CircuitBuilder& bld, Wire x) {
  const Wire x2 = bld.mul(x, x);
  const Wire x4 = bld.mul(x2, x2);
  const Wire x6 = bld.mul(x4, x2);
  return bld.mul(x6, x);
}

// x^5: 3 mul gates.
Wire pow5(CircuitBuilder& bld, Wire x) {
  const Wire x2 = bld.mul(x, x);
  const Wire x4 = bld.mul(x2, x2);
  return bld.mul(x4, x);
}

}  // namespace

Wire mimc_block_gadget(CircuitBuilder& bld, Wire key, Wire msg) {
  const auto& consts = crypto::mimc_round_constants();
  Wire t = msg;
  for (std::size_t i = 0; i < crypto::kMimcRounds; ++i) {
    // base = t + key + c_i (one linear gate)
    const Wire base = bld.linear(Fr::one(), t, Fr::one(), key, consts[i]);
    t = pow7(bld, base);
  }
  return bld.add(t, key);
}

std::vector<Wire> mimc_ctr_encrypt_gadget(CircuitBuilder& bld, Wire key,
                                          Wire nonce,
                                          std::span<const Wire> plain) {
  std::vector<Wire> cipher;
  cipher.reserve(plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const Wire ctr = bld.add_constant(nonce, Fr::from_u64(i));
    const Wire pad = mimc_block_gadget(bld, key, ctr);
    cipher.push_back(bld.add(plain[i], pad));
  }
  return cipher;
}

void poseidon_permute_gadget(CircuitBuilder& bld, std::vector<Wire>& state) {
  const std::size_t t = state.size();
  const auto& params = crypto::PoseidonParams::get(t);
  const std::size_t half_f = params.rf / 2;
  const std::size_t rounds = params.rf + params.rp;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < t; ++i) {
      state[i] = bld.add_constant(state[i], params.ark[r * t + i]);
    }
    const bool full = r < half_f || r >= half_f + params.rp;
    if (full) {
      for (auto& x : state) x = pow5(bld, x);
    } else {
      state[0] = pow5(bld, state[0]);
    }
    std::vector<Wire> next(t);
    for (std::size_t i = 0; i < t; ++i) {
      Wire acc = bld.zero();
      for (std::size_t j = 0; j < t; ++j) {
        acc = bld.linear(Fr::one(), acc, params.mds[i * t + j], state[j],
                         Fr::zero());
      }
      next[i] = acc;
    }
    state = std::move(next);
  }
}

Wire poseidon_hash_gadget(CircuitBuilder& bld, std::span<const Wire> input,
                          std::uint64_t domain_tag) {
  const std::size_t t = 3;
  const std::size_t rate = t - 1;
  std::vector<Wire> state(t, bld.zero());
  const Fr cap = Fr::from_u64(domain_tag) +
                 Fr::from_u64(input.size()) * Fr::from_u64(1ull << 32);
  state[t - 1] = bld.constant(cap);
  std::size_t off = 0;
  do {
    for (std::size_t i = 0; i < rate && off < input.size(); ++i, ++off) {
      state[i] = bld.add(state[i], input[off]);
    }
    poseidon_permute_gadget(bld, state);
  } while (off < input.size());
  return state[0];
}

Wire poseidon_hash2_gadget(CircuitBuilder& bld, Wire left, Wire right) {
  const Wire in[2] = {left, right};
  return poseidon_hash_gadget(bld, in, /*domain_tag=*/2);
}

Wire poseidon_commit_gadget(CircuitBuilder& bld, std::span<const Wire> msg,
                            Wire blinder) {
  std::vector<Wire> in(msg.begin(), msg.end());
  in.push_back(blinder);
  return poseidon_hash_gadget(bld, in, /*domain_tag=*/0x434f4d);
}

Wire merkle_root_gadget(CircuitBuilder& bld, Wire leaf,
                        std::span<const Wire> siblings,
                        std::span<const Wire> directions) {
  ZKDET_CHECK(siblings.size() == directions.size(),
              "merkle gadget: siblings/directions length mismatch");
  Wire cur = leaf;
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    // direction 0: cur is the left child; 1: cur is the right child.
    const Wire left = bld.select(directions[i], siblings[i], cur);
    const Wire right = bld.select(directions[i], cur, siblings[i]);
    cur = poseidon_hash2_gadget(bld, left, right);
  }
  return cur;
}

}  // namespace zkdet::gadgets
