// Cryptographic gadgets: in-circuit MiMC, Poseidon, Merkle proofs.
//
// These mirror src/crypto byte-for-byte: for any inputs, the wire value
// computed in-circuit equals the native function's output (tested as a
// property), so commitments/ciphertexts produced off-circuit verify
// in-circuit.
#pragma once

#include "crypto/mimc.hpp"
#include "crypto/poseidon.hpp"
#include "gadgets/builder.hpp"

namespace zkdet::gadgets {

// MiMC-7 block cipher E_k(m): 91 rounds of (t + k + c_i)^7, final +k.
Wire mimc_block_gadget(CircuitBuilder& bld, Wire key, Wire msg);

// MiMC-CTR: ciphertext[i] = plain[i] + E_k(nonce + i). Returns the
// ciphertext wires. `nonce` is a circuit constant/public wire.
std::vector<Wire> mimc_ctr_encrypt_gadget(CircuitBuilder& bld, Wire key,
                                          Wire nonce,
                                          std::span<const Wire> plain);

// Poseidon permutation over t wires (t = state.size()).
void poseidon_permute_gadget(CircuitBuilder& bld, std::vector<Wire>& state);

// Sponge hash matching crypto::poseidon_hash(input, domain_tag, t=3).
Wire poseidon_hash_gadget(CircuitBuilder& bld, std::span<const Wire> input,
                          std::uint64_t domain_tag);

Wire poseidon_hash2_gadget(CircuitBuilder& bld, Wire left, Wire right);

// Commitment gadget matching crypto::PoseidonCommitment::commit_with.
Wire poseidon_commit_gadget(CircuitBuilder& bld, std::span<const Wire> msg,
                            Wire blinder);

// Merkle path verification: recomputes the root from `leaf`, sibling
// hashes and direction bits (0 = leaf on the left), and returns it.
Wire merkle_root_gadget(CircuitBuilder& bld, Wire leaf,
                        std::span<const Wire> siblings,
                        std::span<const Wire> directions);

}  // namespace zkdet::gadgets
