#include "ledger/codec.hpp"

#include "ec/curve.hpp"
#include "ff/u256.hpp"

namespace zkdet::ledger {

namespace {

void check_version(std::uint16_t v, const char* entity) {
  if (v != kCodecVersion) {
    throw CodecError(std::string(entity) + ": unknown version " +
                     std::to_string(v));
  }
}

}  // namespace

// --- Writer ---

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::str(const std::string& s) {
  if (s.size() > 0xFFFFFFFFull) throw CodecError("string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::bytes(std::span<const std::uint8_t> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::hash32(const std::array<std::uint8_t, 32>& h) {
  buf_.insert(buf_.end(), h.begin(), h.end());
}

void Writer::fr(const ff::Fr& v) {
  const auto b = ff::u256_to_bytes(v.to_canonical());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::g1(const crypto::G1& p) {
  const auto b = ec::g1_to_bytes(p);
  if (b.size() > 0xFFFFFFFFull) throw CodecError("point encoding too long");
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

// --- Reader ---

std::span<const std::uint8_t> Reader::take(std::size_t n) {
  if (n > remaining()) throw CodecError("truncated input");
  const auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::uint8_t Reader::u8() { return take(1)[0]; }

std::uint16_t Reader::u16() {
  const auto s = take(2);
  return static_cast<std::uint16_t>(s[0] | (std::uint16_t{s[1]} << 8));
}

std::uint32_t Reader::u32() {
  const auto s = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{s[static_cast<std::size_t>(i)]} << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  const auto s = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{s[static_cast<std::size_t>(i)]} << (8 * i);
  return v;
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  const auto s = take(len);
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

std::array<std::uint8_t, 32> Reader::hash32() {
  const auto s = take(32);
  std::array<std::uint8_t, 32> h{};
  std::copy(s.begin(), s.end(), h.begin());
  return h;
}

ff::Fr Reader::fr() {
  const auto v = ff::u256_from_bytes(hash32());
  // Strict canonical form: exactly one byte string per field element,
  // otherwise block hashes over re-encoded values would not be stable.
  if (ff::u256_geq(v, ff::Fr::MOD)) {
    throw CodecError("non-canonical field element");
  }
  return ff::Fr::from_canonical(v);
}

crypto::G1 Reader::g1() {
  const std::uint32_t len = u32();
  const auto s = take(len);
  const auto p = ec::g1_from_bytes(s);
  if (!p) throw CodecError("invalid curve point");
  return *p;
}

void Reader::check_count(std::uint64_t count,
                         std::size_t min_element_size) const {
  if (min_element_size == 0) min_element_size = 1;
  if (count > remaining() / min_element_size) {
    throw CodecError("sequence count exceeds input size");
  }
}

// --- Event ---

void write_event(Writer& w, const chain::Event& e) {
  w.u16(kCodecVersion);
  w.str(e.name);
  if (e.fields.size() > 0xFFFFFFFFull) throw CodecError("too many fields");
  w.u32(static_cast<std::uint32_t>(e.fields.size()));
  for (const auto& [k, v] : e.fields) {
    w.str(k);
    w.str(v);
  }
}

chain::Event read_event(Reader& r) {
  check_version(r.u16(), "event");
  chain::Event e;
  e.name = r.str();
  const std::uint32_t n = r.u32();
  r.check_count(n, 8);  // two empty strings = 8 bytes of length prefixes
  e.fields.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto k = r.str();
    auto v = r.str();
    e.fields.emplace_back(std::move(k), std::move(v));
  }
  return e;
}

// --- TxRecord ---

void write_tx_record(Writer& w, const chain::TxRecord& tx) {
  w.u16(kCodecVersion);
  w.u64(tx.block);
  w.str(tx.sender);
  w.str(tx.description);
  w.u64(tx.nonce);
  w.u64(tx.gas_used);
  w.u8(tx.success ? 1 : 0);
  if (tx.events.size() > 0xFFFFFFFFull) throw CodecError("too many events");
  w.u32(static_cast<std::uint32_t>(tx.events.size()));
  for (const auto& e : tx.events) write_event(w, e);
  w.u8(tx.has_sig ? 1 : 0);
  if (tx.has_sig) {
    w.g1(tx.sig.r);
    w.fr(tx.sig.s);
  }
}

chain::TxRecord read_tx_record(Reader& r) {
  check_version(r.u16(), "tx");
  chain::TxRecord tx;
  tx.block = r.u64();
  tx.sender = r.str();
  tx.description = r.str();
  tx.nonce = r.u64();
  tx.gas_used = r.u64();
  const std::uint8_t success = r.u8();
  if (success > 1) throw CodecError("tx: non-canonical bool");
  tx.success = success == 1;
  const std::uint32_t n = r.u32();
  r.check_count(n, 10);  // version + empty name + zero field count
  tx.events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) tx.events.push_back(read_event(r));
  const std::uint8_t has_sig = r.u8();
  if (has_sig > 1) throw CodecError("tx: non-canonical bool");
  tx.has_sig = has_sig == 1;
  if (tx.has_sig) {
    tx.sig.r = r.g1();
    tx.sig.s = r.fr();
  }
  return tx;
}

// --- Block ---

void write_block(Writer& w, const chain::Block& b) {
  w.u16(kCodecVersion);
  w.u64(b.height);
  w.u64(b.timestamp);
  w.hash32(b.prev_hash);
  w.hash32(b.hash);
  if (b.txs.size() > 0xFFFFFFFFull) throw CodecError("too many txs");
  w.u32(static_cast<std::uint32_t>(b.txs.size()));
  for (const auto& tx : b.txs) write_tx_record(w, tx);
}

chain::Block read_block(Reader& r) {
  check_version(r.u16(), "block");
  chain::Block b;
  b.height = r.u64();
  b.timestamp = r.u64();
  b.prev_hash = r.hash32();
  b.hash = r.hash32();
  const std::uint32_t n = r.u32();
  r.check_count(n, 32);  // minimal empty tx record
  b.txs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) b.txs.push_back(read_tx_record(r));
  return b;
}

// --- StateDelta ---

void write_delta(Writer& w, const chain::StateDelta& d) {
  w.u16(kCodecVersion);
  w.u32(static_cast<std::uint32_t>(d.balance_sets.size()));
  for (const auto& [addr, bal] : d.balance_sets) {
    w.str(addr);
    w.u64(bal);
  }
  w.u32(static_cast<std::uint32_t>(d.contracts_created.size()));
  for (const auto& c : d.contracts_created) {
    w.str(c.address);
    w.str(c.name);
    w.u64(c.code_size);
  }
  w.u32(static_cast<std::uint32_t>(d.slot_sets.size()));
  for (const auto& [addr, key, value] : d.slot_sets) {
    w.str(addr);
    w.str(key);
    w.fr(value);
  }
  w.u32(static_cast<std::uint32_t>(d.slot_erases.size()));
  for (const auto& [addr, key] : d.slot_erases) {
    w.str(addr);
    w.str(key);
  }
}

chain::StateDelta read_delta(Reader& r) {
  check_version(r.u16(), "delta");
  chain::StateDelta d;
  const std::uint32_t nbal = r.u32();
  r.check_count(nbal, 12);
  d.balance_sets.reserve(nbal);
  for (std::uint32_t i = 0; i < nbal; ++i) {
    auto addr = r.str();
    const std::uint64_t bal = r.u64();
    d.balance_sets.emplace_back(std::move(addr), bal);
  }
  const std::uint32_t nct = r.u32();
  r.check_count(nct, 16);
  d.contracts_created.reserve(nct);
  for (std::uint32_t i = 0; i < nct; ++i) {
    chain::StateDelta::NewContract c;
    c.address = r.str();
    c.name = r.str();
    c.code_size = r.u64();
    d.contracts_created.push_back(std::move(c));
  }
  const std::uint32_t nset = r.u32();
  r.check_count(nset, 40);
  d.slot_sets.reserve(nset);
  for (std::uint32_t i = 0; i < nset; ++i) {
    auto addr = r.str();
    auto key = r.str();
    auto value = r.fr();
    d.slot_sets.emplace_back(std::move(addr), std::move(key), value);
  }
  const std::uint32_t ner = r.u32();
  r.check_count(ner, 8);
  d.slot_erases.reserve(ner);
  for (std::uint32_t i = 0; i < ner; ++i) {
    auto addr = r.str();
    auto key = r.str();
    d.slot_erases.emplace_back(std::move(addr), std::move(key));
  }
  return d;
}

// --- whole-buffer helpers ---

namespace {

template <typename T, typename WriteFn>
std::vector<std::uint8_t> encode_one(const T& v, WriteFn fn) {
  Writer w;
  fn(w, v);
  return w.take();
}

template <typename ReadFn>
auto decode_one(std::span<const std::uint8_t> bytes, ReadFn fn) {
  Reader r(bytes);
  auto v = fn(r);
  r.expect_end();
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_event(const chain::Event& e) {
  return encode_one(e, write_event);
}
chain::Event decode_event(std::span<const std::uint8_t> bytes) {
  return decode_one(bytes, read_event);
}
std::vector<std::uint8_t> encode_tx_record(const chain::TxRecord& tx) {
  return encode_one(tx, write_tx_record);
}
chain::TxRecord decode_tx_record(std::span<const std::uint8_t> bytes) {
  return decode_one(bytes, read_tx_record);
}
std::vector<std::uint8_t> encode_block(const chain::Block& b) {
  return encode_one(b, write_block);
}
chain::Block decode_block(std::span<const std::uint8_t> bytes) {
  return decode_one(bytes, read_block);
}
std::vector<std::uint8_t> encode_delta(const chain::StateDelta& d) {
  return encode_one(d, write_delta);
}
chain::StateDelta decode_delta(std::span<const std::uint8_t> bytes) {
  return decode_one(bytes, read_delta);
}

// --- ChainSnapshot ---

std::vector<std::uint8_t> encode_snapshot(const ChainSnapshot& s) {
  Writer w;
  w.u16(kCodecVersion);
  w.u64(s.wal_seq);
  w.u32(static_cast<std::uint32_t>(s.blocks.size()));
  for (const auto& b : s.blocks) write_block(w, b);
  w.u32(static_cast<std::uint32_t>(s.balances.size()));
  for (const auto& [addr, bal] : s.balances) {
    w.str(addr);
    w.u64(bal);
  }
  w.u32(static_cast<std::uint32_t>(s.account_keys.size()));
  for (const auto& [addr, pk] : s.account_keys) {
    w.str(addr);
    w.g1(pk);
  }
  w.u32(static_cast<std::uint32_t>(s.contracts.size()));
  for (const auto& [addr, c] : s.contracts) {
    w.str(addr);
    w.str(c.name);
    w.u64(c.code_size);
    w.u32(static_cast<std::uint32_t>(c.slots.size()));
    for (const auto& [key, value] : c.slots) {
      w.str(key);
      w.fr(value);
    }
  }
  return w.take();
}

ChainSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  check_version(r.u16(), "snapshot");
  ChainSnapshot s;
  s.wal_seq = r.u64();
  const std::uint32_t nblocks = r.u32();
  r.check_count(nblocks, 86);  // empty block: hdr + two hashes + count
  s.blocks.reserve(nblocks);
  for (std::uint32_t i = 0; i < nblocks; ++i) s.blocks.push_back(read_block(r));
  const std::uint32_t nbal = r.u32();
  r.check_count(nbal, 12);
  for (std::uint32_t i = 0; i < nbal; ++i) {
    auto addr = r.str();
    const std::uint64_t bal = r.u64();
    s.balances.emplace(std::move(addr), bal);
  }
  const std::uint32_t nkeys = r.u32();
  r.check_count(nkeys, 8);
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    auto addr = r.str();
    auto pk = r.g1();
    s.account_keys.emplace(std::move(addr), pk);
  }
  const std::uint32_t nct = r.u32();
  r.check_count(nct, 20);
  for (std::uint32_t i = 0; i < nct; ++i) {
    auto addr = r.str();
    chain::RestoredContract c;
    c.name = r.str();
    c.code_size = r.u64();
    const std::uint32_t nslots = r.u32();
    r.check_count(nslots, 36);
    for (std::uint32_t j = 0; j < nslots; ++j) {
      auto key = r.str();
      auto value = r.fr();
      c.slots.emplace(std::move(key), value);
    }
    s.contracts.emplace(std::move(addr), std::move(c));
  }
  r.expect_end();
  return s;
}

}  // namespace zkdet::ledger
