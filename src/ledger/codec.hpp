// Canonical binary codec for chain entities — the byte-level contract
// between the in-memory chain and the durable ledger.
//
// Every encoder is *canonical*: one value has exactly one encoding
// (little-endian integers, u32-length-prefixed strings, 32-byte
// canonical-form field elements, std::map iteration order for state
// maps), so encode(decode(bytes)) == bytes and decode(encode(v)) == v
// hold exactly. Chain::block_hash hashes these bytes, which makes the
// encoding consensus-critical: any change requires bumping the entity's
// version header.
//
// Decoders are strict and bounds-checked: truncation, trailing garbage
// at top level, non-canonical field elements, off-curve points and
// unknown versions all throw CodecError — a WAL record either decodes
// to the exact value that was written or is rejected, never "best
// effort" parsed.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/chain.hpp"

namespace zkdet::ledger {

// Format version stamped on every top-level entity encoding. Bump when
// the byte layout changes; decoders reject versions they don't know.
// v2: TxRecord gained the per-sender nonce (between description and
// gas_used).
inline constexpr std::uint16_t kCodecVersion = 2;

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what)
      : std::runtime_error("codec: " + what) {}
};

// Append-only little-endian byte builder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // u32 byte-length prefix + raw bytes.
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> b);
  void hash32(const std::array<std::uint8_t, 32>& h);
  // 32-byte canonical (non-Montgomery) little-endian representation.
  void fr(const ff::Fr& v);
  // u32 length prefix + the curve serialization from ec/curve.hpp.
  void g1(const crypto::G1& p);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked cursor over an immutable byte span. Throws CodecError
// instead of reading past the end; never allocates more than the bytes
// that are actually present (length claims are validated against
// remaining() before any reserve).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::array<std::uint8_t, 32> hash32();
  [[nodiscard]] ff::Fr fr();
  [[nodiscard]] crypto::G1 g1();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  // Top-level decoders call this to reject trailing garbage.
  void expect_end() const {
    if (pos_ != data_.size()) throw CodecError("trailing bytes after value");
  }
  // Bounds check for count prefixes: every element of a sequence costs
  // at least `min_element_size` bytes, so a count that cannot possibly
  // fit in the remaining input is rejected before any allocation.
  void check_count(std::uint64_t count, std::size_t min_element_size) const;

 private:
  std::span<const std::uint8_t> take(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- composable entity codecs (used when entities nest) ---
void write_event(Writer& w, const chain::Event& e);
[[nodiscard]] chain::Event read_event(Reader& r);
void write_tx_record(Writer& w, const chain::TxRecord& tx);
[[nodiscard]] chain::TxRecord read_tx_record(Reader& r);
void write_block(Writer& w, const chain::Block& b);
[[nodiscard]] chain::Block read_block(Reader& r);
void write_delta(Writer& w, const chain::StateDelta& d);
[[nodiscard]] chain::StateDelta read_delta(Reader& r);

// --- whole-buffer helpers ---
[[nodiscard]] std::vector<std::uint8_t> encode_event(const chain::Event& e);
[[nodiscard]] chain::Event decode_event(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_tx_record(
    const chain::TxRecord& tx);
[[nodiscard]] chain::TxRecord decode_tx_record(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_block(const chain::Block& b);
[[nodiscard]] chain::Block decode_block(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_delta(
    const chain::StateDelta& d);
[[nodiscard]] chain::StateDelta decode_delta(
    std::span<const std::uint8_t> bytes);

// Full persisted chain image: block history, account balances and keys,
// contract KV state, plus the WAL sequence watermark (`wal_seq` = the
// last WAL record already folded into this snapshot; replay resumes at
// wal_seq + 1).
struct ChainSnapshot {
  std::vector<chain::Block> blocks;
  std::map<chain::Address, std::uint64_t> balances;
  std::map<chain::Address, crypto::G1> account_keys;
  std::map<chain::Address, chain::RestoredContract> contracts;
  std::uint64_t wal_seq = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const ChainSnapshot& s);
[[nodiscard]] ChainSnapshot decode_snapshot(
    std::span<const std::uint8_t> bytes);

}  // namespace zkdet::ledger
