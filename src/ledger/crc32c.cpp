#include "ledger/crc32c.hpp"

#include <array>

namespace zkdet::ledger {

namespace {

// Table for the reflected Castagnoli polynomial 0x82F63B78, generated
// once at static-init time (256 entries, 1 KiB).
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = t[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace zkdet::ledger
