// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum behind the
// write-ahead log's record framing (the same polynomial LevelDB/RocksDB
// and iSCSI use: better error-detection spread than CRC32/zlib for
// short records). Software slice-by-1 table implementation; the WAL's
// records are small enough that table lookup is not the bottleneck
// (encoding and fsync are).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace zkdet::ledger {

// CRC of `data` with initial value `seed` (pass a previous crc32c result
// to continue an incremental computation over split buffers).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0);

}  // namespace zkdet::ledger
