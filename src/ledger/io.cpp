#include "ledger/io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "fault/fault.hpp"
#include "fault/points.hpp"

namespace zkdet::ledger {

namespace {

std::string errno_text(int err) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): error-path only; the static
  // buffer race at worst garbles the message text, never the errno code
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

int open_retry(const char* path, int flags, mode_t mode) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

IoError::IoError(const std::string& op, const std::string& path, int err)
    : std::runtime_error("io: " + op + " " + path + ": " + errno_text(err)) {}

File File::create_truncate(const std::string& path) {
  const int fd =
      open_retry(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw IoError("create", path, errno);
  return {fd, path};
}

File File::open_append(const std::string& path) {
  const int fd =
      open_retry(path.c_str(), O_CREAT | O_APPEND | O_WRONLY, 0644);
  if (fd < 0) throw IoError("open-append", path, errno);
  return {fd, path};
}

std::optional<File> File::open_read(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw IoError("open-read", path, errno);
  }
  return File{fd, path};
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);  // zkdet-lint: allow(unchecked-io) destructor-path close
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) {
    // Close errors are unreportable from a destructor; durability never
    // depends on close() — every commit point fsyncs explicitly first.
    ::close(fd_);  // zkdet-lint: allow(unchecked-io) destructor close
  }
}

void File::write_all(std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("write", path_, errno);
    }
    if (n == 0) throw IoError("io: write " + path_ + ": wrote 0 bytes");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void File::sync() {
  // Simulated EIO from the kernel: the page cache may or may not have
  // reached the platter; after a real fsync failure the only safe move
  // is fail-stop (the caller poisons the ledger).
  if (fault::fire(fault::points::kLedgerFsync)) {
    throw IoError("io: fsync " + path_ + ": injected EIO");
  }
  int rc = -1;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw IoError("fsync", path_, errno);
}

void File::truncate(std::uint64_t size) {
  int rc = -1;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw IoError("ftruncate", path_, errno);
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) < 0) throw IoError("fstat", path_, errno);
  return static_cast<std::uint64_t>(st.st_size);
}

std::vector<std::uint8_t> File::read_all() const {
  const std::uint64_t total = size();
  std::vector<std::uint8_t> buf(total);
  std::size_t got = 0;
  while (got < total) {
    const ssize_t n = ::pread(fd_, buf.data() + got, total - got,
                              static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("read", path_, errno);
    }
    if (n == 0) break;  // concurrent truncation; return what exists
    got += static_cast<std::size_t>(n);
  }
  buf.resize(got);
  return buf;
}

void make_dirs(const std::string& path) {
  std::string partial;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    partial = next == std::string::npos ? path : path.substr(0, next);
    pos = next == std::string::npos ? path.size() + 1 : next + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) < 0 && errno != EEXIST) {
      throw IoError("mkdir", partial, errno);
    }
  }
}

bool path_exists(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) return true;
  if (errno == ENOENT) return false;
  throw IoError("stat", path, errno);
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) < 0 && errno != ENOENT) {
    throw IoError("unlink", path, errno);
  }
}

void atomic_publish(const std::string& tmp_path, const std::string& path) {
  if (::rename(tmp_path.c_str(), path.c_str()) < 0) {
    throw IoError("rename", tmp_path + " -> " + path, errno);
  }
  const std::size_t slash = path.rfind('/');
  sync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

void sync_dir(const std::string& dir) {
  const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) throw IoError("open-dir", dir, errno);
  int rc = -1;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  const int saved = errno;
  if (::close(fd) < 0 && rc == 0) {
    throw IoError("close-dir", dir, errno);
  }
  if (rc < 0) throw IoError("fsync-dir", dir, saved);
}

std::vector<std::string> list_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) throw IoError("opendir", dir, errno);
  std::vector<std::string> names;
  errno = 0;
  for (struct dirent* ent = ::readdir(d); ent != nullptr;
       ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
    errno = 0;
  }
  const int saved = errno;
  if (::closedir(d) < 0) throw IoError("closedir", dir, errno);
  if (saved != 0) throw IoError("readdir", dir, saved);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace zkdet::ledger
