// Checked POSIX file IO for the durable ledger.
//
// This is the only place in the codebase allowed to touch raw file
// descriptors / streams (enforced by scripts/lint_zkdet.py, rule
// unchecked-io): every syscall return value is checked and surfaced as
// a typed exception, and fsync goes through one wrapper so the
// ledger.fsync fail-point covers every durability barrier.
//
// Two error flavors:
//   IoError       the environment failed (ENOSPC, EIO, permission...);
//                 the ledger cannot continue and fail-stops.
//   CrashInjected a fault::fire() site simulated a process kill; tests
//                 catch this, drop the ledger object, and reopen the
//                 directory as a fresh process would.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace zkdet::ledger {

class IoError : public std::runtime_error {
 public:
  IoError(const std::string& op, const std::string& path, int err);
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by fault-injection sites in the write path to simulate the
// process dying at that instant. Deliberately NOT derived from IoError:
// production code must not "handle" a simulated kill.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(const std::string& where)
      : std::runtime_error("crash injected at " + where) {}
};

// RAII file descriptor with checked operations. Move-only.
class File {
 public:
  // O_CREAT|O_TRUNC|O_WRONLY — fresh file (snapshot temp).
  static File create_truncate(const std::string& path);
  // O_CREAT|O_APPEND|O_WRONLY — WAL segment.
  static File open_append(const std::string& path);
  // O_RDONLY; nullopt if the file does not exist.
  static std::optional<File> open_read(const std::string& path);

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  // Writes the whole span (looping over short writes) or throws.
  void write_all(std::span<const std::uint8_t> data);
  // Durability barrier; routes through the ledger.fsync fail-point.
  void sync();
  void truncate(std::uint64_t size);
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] std::vector<std::uint8_t> read_all() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

// Directory helpers (all throw IoError on failure).
void make_dirs(const std::string& path);    // mkdir -p
[[nodiscard]] bool path_exists(const std::string& path);
void remove_file(const std::string& path);  // ENOENT tolerated
// rename() + fsync of the containing directory — the commit point for
// snapshot publication.
void atomic_publish(const std::string& tmp_path, const std::string& path);
void sync_dir(const std::string& dir);
// Regular-file names in `dir` (no subdirectories), sorted.
[[nodiscard]] std::vector<std::string> list_dir(const std::string& dir);

}  // namespace zkdet::ledger
