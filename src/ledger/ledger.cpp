#include "ledger/ledger.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::ledger {

namespace {

constexpr char kSnapshotMagic[8] = {'Z', 'K', 'D', 'T', 'S', 'N', 'A', 'P'};
constexpr const char* kSnapshotName = "snapshot.bin";
constexpr const char* kSnapshotTmpName = "snapshot.tmp";

// wal-<20-digit n>.log — zero-padded so lexicographic == numeric order.
std::string segment_name(std::uint64_t n) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", n);
  return buf;
}

std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.substr(24) != ".log") {
    return std::nullopt;
  }
  std::uint64_t n = 0;
  for (std::size_t i = 4; i < 24; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

// Mutable replay image: snapshot state + WAL suffix folded in.
struct ReplayState {
  std::vector<chain::Block> blocks;
  std::map<chain::Address, std::uint64_t> balances;
  std::map<chain::Address, crypto::G1> account_keys;
  std::map<chain::Address, chain::RestoredContract> contracts;
};

void apply_delta(ReplayState& st, const chain::StateDelta& delta) {
  for (const auto& c : delta.contracts_created) {
    chain::RestoredContract rc;
    rc.name = c.name;
    rc.code_size = c.code_size;
    st.contracts.emplace(c.address, std::move(rc));
  }
  for (const auto& [addr, bal] : delta.balance_sets) {
    st.balances[addr] = bal;  // absolute values: idempotent
  }
  for (const auto& [addr, key, value] : delta.slot_sets) {
    const auto it = st.contracts.find(addr);
    if (it == st.contracts.end()) {
      throw IoError("ledger: replayed slot write for unknown contract " +
                    addr);
    }
    it->second.slots[key] = value;
  }
  for (const auto& [addr, key] : delta.slot_erases) {
    const auto it = st.contracts.find(addr);
    if (it == st.contracts.end()) {
      throw IoError("ledger: replayed slot erase for unknown contract " +
                    addr);
    }
    it->second.slots.erase(key);
  }
}

// Re-verifies the signatures of WAL-replayed transactions, batched over
// the shared thread pool. The snapshot prefix is trusted (that is what
// makes reopen O(suffix)); everything recovered from the WAL is not.
void verify_replayed_signatures(
    const std::vector<const chain::TxRecord*>& txs,
    const std::map<chain::Address, crypto::G1>& account_keys) {
  std::atomic<std::size_t> bad{txs.size()};  // first failing index
  runtime::parallel_for(txs.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const chain::TxRecord& tx = *txs[i];
      const auto key = account_keys.find(tx.sender);
      bool ok = key != account_keys.end();
      if (ok) {
        const auto msg =
            chain::Chain::tx_auth_message(tx.description, tx.nonce);
        ok = crypto::schnorr_verify(key->second, msg, tx.sig);
      }
      if (!ok) {
        std::size_t cur = bad.load();
        while (i < cur && !bad.compare_exchange_weak(cur, i)) {
        }
      }
    }
  });
  if (bad.load() != txs.size()) {
    const chain::TxRecord& tx = *txs[bad.load()];
    throw IoError("ledger: replayed tx at block " + std::to_string(tx.block) +
                  " has an invalid signature (" + tx.description + ")");
  }
}

}  // namespace

Ledger::Ledger(chain::Chain& chain, std::string dir, Options opts)
    : chain_(chain), dir_(std::move(dir)), opts_(opts) {
  if (chain_.height() != 1 || chain_.recording()) {
    throw IoError("ledger: chain must be fresh (at genesis, unobserved)");
  }
  open_and_replay();
  chain_.set_observer(this);
}

Ledger::~Ledger() { chain_.set_observer(nullptr); }

std::string Ledger::segment_path(std::uint64_t n) const {
  return dir_ + "/" + segment_name(n);
}

void Ledger::open_and_replay() {
  make_dirs(dir_);
  // A snapshot.tmp is an in-flight snapshot the previous process never
  // published; the previous snapshot + WAL remain authoritative.
  remove_file(dir_ + "/" + kSnapshotTmpName);

  // 1. Snapshot (if any).
  ChainSnapshot snap;
  if (const auto f = File::open_read(dir_ + "/" + kSnapshotName)) {
    const auto bytes = f->read_all();
    const std::span<const std::uint8_t> view(bytes);
    if (bytes.size() < sizeof(kSnapshotMagic) ||
        !std::equal(kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic),
                    bytes.begin())) {
      throw IoError("ledger: " + f->path() + " has a bad magic");
    }
    const auto rec = parse_record(view, sizeof(kSnapshotMagic));
    if (!rec || rec->next_offset != bytes.size()) {
      // snapshot.bin is published atomically, so a bad body is media
      // corruption — fail loudly rather than replay from genesis and
      // silently resurrect a pre-snapshot fork.
      throw IoError("ledger: " + f->path() + " is corrupt");
    }
    try {
      snap = decode_snapshot(rec->payload);
    } catch (const CodecError& e) {
      throw IoError("ledger: " + f->path() + ": " + e.what());
    }
    stats_.opened_from_snapshot = true;
    stats_.snapshot_blocks = snap.blocks.size();
  }

  // 2. WAL segments, in numeric order.
  std::vector<std::uint64_t> segments;
  for (const auto& name : list_dir(dir_)) {
    if (const auto n = parse_segment_name(name)) segments.push_back(*n);
  }
  // list_dir sorts names; zero-padding makes that numeric order too.

  ReplayState st;
  if (!snap.blocks.empty()) {
    st.blocks = std::move(snap.blocks);
    st.balances = std::move(snap.balances);
    st.account_keys = std::move(snap.account_keys);
    st.contracts = std::move(snap.contracts);
  } else {
    // WAL-only replay starts from the deterministic genesis block the
    // fresh chain already built.
    st.blocks.push_back(chain_.blocks().front());
  }

  seq_ = snap.wal_seq;
  std::vector<const chain::TxRecord*> to_verify;
  std::vector<std::unique_ptr<chain::Block>> replayed;  // keep ptrs stable

  for (std::size_t si = 0; si < segments.size(); ++si) {
    const bool final_segment = si + 1 == segments.size();
    const std::string path = segment_path(segments[si]);
    const auto f = File::open_read(path);
    if (!f) throw IoError("ledger: segment vanished: " + path);
    const auto bytes = f->read_all();
    const auto scan = scan_wal(bytes);
    if (scan.has_torn_tail) {
      if (!final_segment) {
        // Only the crash-interrupted tail of the *last* segment may be
        // invalid; garbage mid-history is corruption of committed data.
        throw IoError("ledger: corrupt record inside sealed segment " + path);
      }
      File tail = File::open_append(path);
      tail.truncate(scan.valid_bytes);
      tail.sync();
      stats_.torn_tail_truncated = true;
    }
    for (const auto& payload : scan.payloads) {
      Reader r{std::span<const std::uint8_t>(payload)};
      std::uint8_t type = 0;
      std::uint64_t rec_seq = 0;
      try {
        type = r.u8();
        rec_seq = r.u64();
        if (rec_seq <= snap.wal_seq) continue;  // folded into the snapshot
        if (rec_seq != seq_ + 1) {
          throw IoError("ledger: WAL sequence gap at " + path + " (have " +
                        std::to_string(seq_) + ", next record is " +
                        std::to_string(rec_seq) + ")");
        }
        if (type == kRecordBlock) {
          auto block = std::make_unique<chain::Block>(read_block(r));
          const auto delta = read_delta(r);
          r.expect_end();
          if (block->height != st.blocks.size()) {
            throw IoError("ledger: replayed block height " +
                          std::to_string(block->height) + " != expected " +
                          std::to_string(st.blocks.size()));
          }
          apply_delta(st, delta);
          st.blocks.push_back(*block);
          for (const auto& tx : block->txs) {
            if (tx.has_sig) to_verify.push_back(&tx);
          }
          replayed.push_back(std::move(block));
          ++stats_.replayed_blocks;
        } else if (type == kRecordAccount) {
          const auto addr = r.str();
          const auto pk = r.g1();
          const std::uint64_t balance = r.u64();
          r.expect_end();
          st.account_keys[addr] = pk;
          st.balances[addr] = balance;
        } else {
          throw IoError("ledger: unknown WAL record type " +
                        std::to_string(type) + " in " + path);
        }
      } catch (const CodecError& e) {
        // CRC said the bytes are exactly what was written, so a decode
        // failure means a buggy or newer writer — refuse the directory.
        throw IoError("ledger: undecodable WAL record in " + path + ": " +
                      e.what());
      }
      seq_ = rec_seq;
    }
  }

  // 3. Hand the image to the chain (skip when there is no history at
  // all — the fresh chain is already correct).
  const bool has_history = st.blocks.size() > 1 || !st.balances.empty() ||
                           !st.account_keys.empty() || !st.contracts.empty();
  if (has_history) {
    if (opts_.verify_signatures && !to_verify.empty()) {
      verify_replayed_signatures(to_verify, st.account_keys);
    }
    chain_.restore_state(std::move(st.blocks), std::move(st.balances),
                         std::move(st.account_keys), std::move(st.contracts));
    if (!chain_.validate_chain()) {
      throw IoError("ledger: replayed chain fails hash-link validation (" +
                    dir_ + ")");
    }
  }

  // 4. Open the write head on the last segment (or a fresh first one).
  segment_ = segments.empty() ? 1 : segments.back();
  const bool fresh_segment = segments.empty();
  writer_.emplace(File::open_append(segment_path(segment_)),
                  opts_.fsync_each_append);
  if (fresh_segment) sync_dir(dir_);
}

void Ledger::append_record(std::uint8_t type,
                           const std::function<void(Writer&)>& body) {
  if (poisoned_) {
    throw IoError("ledger: poisoned after earlier failure (" + dir_ + ")");
  }
  Writer w;
  w.u8(type);
  w.u64(seq_ + 1);
  body(w);
  const auto payload = w.take();
  try {
    writer_->append(payload);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  ++seq_;
  ++stats_.appended_records;
}

void Ledger::on_account_created(const chain::Address& addr,
                                const crypto::G1& pk, std::uint64_t balance) {
  const MutexLock lk(io_mu_);
  append_record(kRecordAccount, [&](Writer& w) {
    w.str(addr);
    w.g1(pk);
    w.u64(balance);
  });
}

void Ledger::on_block_sealed(const chain::Block& block,
                             const chain::StateDelta& delta) {
  const MutexLock lk(io_mu_);
  append_record(kRecordBlock, [&](Writer& w) {
    write_block(w, block);
    write_delta(w, delta);
  });
  ++blocks_since_snapshot_;
  maybe_snapshot();
}

void Ledger::sync() {
  const MutexLock lk(io_mu_);
  if (poisoned_) {
    throw IoError("ledger: poisoned after earlier failure (" + dir_ + ")");
  }
  try {
    writer_->sync();
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void Ledger::maybe_snapshot() {
  if (opts_.snapshot_interval == 0) return;
  if (blocks_since_snapshot_ < opts_.snapshot_interval) return;
  write_snapshot();
  blocks_since_snapshot_ = 0;
}

void Ledger::snapshot_now() {
  const MutexLock lk(io_mu_);
  if (poisoned_) {
    throw IoError("ledger: poisoned after earlier failure (" + dir_ + ")");
  }
  write_snapshot();
  blocks_since_snapshot_ = 0;
}

void Ledger::write_snapshot() {
  ChainSnapshot snap;
  snap.blocks = chain_.blocks();
  snap.balances = chain_.balances_map();
  snap.account_keys = chain_.account_keys();
  for (const auto& c : chain_.contracts()) {
    chain::RestoredContract rc;
    rc.name = c->name();
    rc.code_size = c->code_size();
    rc.slots = c->audit_store().peek_all();
    snap.contracts.emplace(c->address(), std::move(rc));
  }
  // Persisted contracts the application never re-adopted must survive
  // the next snapshot too.
  for (const auto& [addr, rc] : chain_.pending_adoptions()) {
    snap.contracts.emplace(addr, rc);
  }
  snap.wal_seq = seq_;

  const auto payload = encode_snapshot(snap);
  const auto frame = frame_record(payload);
  const std::string tmp = dir_ + "/" + kSnapshotTmpName;
  const std::span<const std::uint8_t> magic(
      reinterpret_cast<const std::uint8_t*>(kSnapshotMagic),
      sizeof(kSnapshotMagic));

  try {
    // Simulated kill mid-snapshot: a partial temp file is left behind;
    // reopen discards it and the previous snapshot + WAL still rebuild
    // the full state.
    if (fault::fire(fault::points::kLedgerSnapshotWrite)) {
      File partial = File::create_truncate(tmp);
      partial.write_all(magic);
      partial.write_all(std::span(frame).first(frame.size() / 2));
      throw CrashInjected(fault::points::kLedgerSnapshotWrite);
    }

    File f = File::create_truncate(tmp);
    f.write_all(magic);
    f.write_all(frame);
    f.sync();
    atomic_publish(tmp, dir_ + "/" + kSnapshotName);

    // Rotate: new records go to a fresh segment; everything before it
    // is covered by the snapshot we just published.
    const std::uint64_t next_segment = segment_ + 1;
    writer_.emplace(File::open_append(segment_path(next_segment)),
                    opts_.fsync_each_append);
    sync_dir(dir_);
    const std::uint64_t last_old = segment_;
    segment_ = next_segment;
    for (const auto& name : list_dir(dir_)) {
      if (const auto n = parse_segment_name(name); n && *n <= last_old) {
        remove_file(dir_ + "/" + name);
      }
    }
    ++stats_.snapshots_written;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

std::unique_ptr<PersistentChain> open(const std::string& dir, Options opts) {
  return std::make_unique<PersistentChain>(dir, opts);
}

}  // namespace zkdet::ledger
