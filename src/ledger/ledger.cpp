#include "ledger/ledger.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"
#include "ledger/replay.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::ledger {

namespace {

// Re-verifies the signatures of WAL-replayed transactions, batched over
// the shared thread pool. The snapshot prefix is trusted (that is what
// makes reopen O(suffix)); everything recovered from the WAL is not.
void verify_replayed_signatures(
    const std::vector<const chain::TxRecord*>& txs,
    const std::map<chain::Address, crypto::G1>& account_keys) {
  std::atomic<std::size_t> bad{txs.size()};  // first failing index
  runtime::parallel_for(txs.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const chain::TxRecord& tx = *txs[i];
      const auto key = account_keys.find(tx.sender);
      bool ok = key != account_keys.end();
      if (ok) {
        const auto msg =
            chain::Chain::tx_auth_message(tx.description, tx.nonce);
        ok = crypto::schnorr_verify(key->second, msg, tx.sig);
      }
      if (!ok) {
        std::size_t cur = bad.load();
        while (i < cur && !bad.compare_exchange_weak(cur, i)) {
        }
      }
    }
  });
  if (bad.load() != txs.size()) {
    const chain::TxRecord& tx = *txs[bad.load()];
    throw IoError("ledger: replayed tx at block " + std::to_string(tx.block) +
                  " has an invalid signature (" + tx.description + ")");
  }
}

}  // namespace

Ledger::Ledger(chain::Chain& chain, std::string dir, Options opts)
    : chain_(chain), dir_(std::move(dir)), opts_(opts) {
  if (chain_.height() != 1 || chain_.recording()) {
    throw IoError("ledger: chain must be fresh (at genesis, unobserved)");
  }
  open_and_replay();
  chain_.set_observer(this);
}

Ledger::~Ledger() { chain_.set_observer(nullptr); }

std::string Ledger::segment_path(std::uint64_t n) const {
  return dir_ + "/" + segment_name(n);
}

void Ledger::open_and_replay() {
  // Shared replay path (ledger/replay.cpp): snapshot + WAL suffix into
  // an image — the same fold a replication follower applies record by
  // record. Hash verification stays off here because validate_chain()
  // below covers the whole chain once.
  LoadedDir loaded = load_dir(dir_, /*verify_hashes=*/false);
  stats_.opened_from_snapshot = loaded.from_snapshot;
  stats_.snapshot_blocks = loaded.snapshot_blocks;
  stats_.replayed_blocks = loaded.replayed_blocks;
  stats_.torn_tail_truncated = loaded.torn_tail_truncated;
  seq_ = loaded.image.seq;
  // Everything load_dir read back is on disk; the durable watermark
  // starts at the replayed sequence.
  durable_seq_ = seq_;
  snapshot_seq_ = loaded.snapshot_wal_seq;

  ReplayImage& st = loaded.image;
  if (st.has_history()) {
    if (opts_.verify_signatures) {
      // The snapshot prefix is trusted; everything recovered from the
      // WAL (blocks [first_wal_block, end)) is not.
      std::vector<const chain::TxRecord*> to_verify;
      for (std::size_t b = loaded.first_wal_block; b < st.blocks.size();
           ++b) {
        for (const auto& tx : st.blocks[b].txs) {
          if (tx.has_sig) to_verify.push_back(&tx);
        }
      }
      if (!to_verify.empty()) {
        verify_replayed_signatures(to_verify, st.account_keys);
      }
    }
    chain_.restore_state(std::move(st.blocks), std::move(st.balances),
                         std::move(st.account_keys), std::move(st.contracts));
    if (!chain_.validate_chain()) {
      throw IoError("ledger: replayed chain fails hash-link validation (" +
                    dir_ + ")");
    }
  }

  // Open the write head on the last segment (or a fresh first one).
  segment_ = loaded.head_segment;
  writer_.emplace(File::open_append(segment_path(segment_)),
                  opts_.fsync_each_append);
  if (loaded.fresh_segment) sync_dir(dir_);
}

void Ledger::append_record(std::uint8_t type,
                           const std::function<void(Writer&)>& body) {
  if (poisoned_) {
    throw IoError("ledger: poisoned after earlier failure (" + dir_ + ")");
  }
  Writer w;
  w.u8(type);
  w.u64(seq_ + 1);
  body(w);
  const auto payload = w.take();
  try {
    writer_->append(payload);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  ++seq_;
  // append() returned, so with per-append fsync the record is durable;
  // otherwise durability waits for the next sync()/snapshot barrier.
  if (opts_.fsync_each_append) durable_seq_ = seq_;
  ++stats_.appended_records;
}

void Ledger::on_account_created(const chain::Address& addr,
                                const crypto::G1& pk, std::uint64_t balance) {
  const MutexLock lk(io_mu_);
  append_record(kRecordAccount, [&](Writer& w) {
    w.str(addr);
    w.g1(pk);
    w.u64(balance);
  });
}

void Ledger::on_block_sealed(const chain::Block& block,
                             const chain::StateDelta& delta) {
  const MutexLock lk(io_mu_);
  append_record(kRecordBlock, [&](Writer& w) {
    write_block(w, block);
    write_delta(w, delta);
  });
  ++blocks_since_snapshot_;
  maybe_snapshot();
}

void Ledger::sync() {
  const MutexLock lk(io_mu_);
  if (poisoned_) {
    throw IoError("ledger: poisoned after earlier failure (" + dir_ + ")");
  }
  try {
    writer_->sync();
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  durable_seq_ = seq_;
}

void Ledger::maybe_snapshot() {
  if (opts_.snapshot_interval == 0) return;
  if (blocks_since_snapshot_ < opts_.snapshot_interval) return;
  write_snapshot();
  blocks_since_snapshot_ = 0;
}

void Ledger::snapshot_now() {
  const MutexLock lk(io_mu_);
  if (poisoned_) {
    throw IoError("ledger: poisoned after earlier failure (" + dir_ + ")");
  }
  write_snapshot();
  blocks_since_snapshot_ = 0;
}

void Ledger::write_snapshot() {
  ChainSnapshot snap;
  snap.blocks = chain_.blocks();
  snap.balances = chain_.balances_map();
  snap.account_keys = chain_.account_keys();
  for (const auto& c : chain_.contracts()) {
    chain::RestoredContract rc;
    rc.name = c->name();
    rc.code_size = c->code_size();
    rc.slots = c->audit_store().peek_all();
    snap.contracts.emplace(c->address(), std::move(rc));
  }
  // Persisted contracts the application never re-adopted must survive
  // the next snapshot too.
  for (const auto& [addr, rc] : chain_.pending_adoptions()) {
    snap.contracts.emplace(addr, rc);
  }
  snap.wal_seq = seq_;

  const auto payload = encode_snapshot(snap);
  const auto frame = frame_record(payload);
  const std::string tmp = dir_ + "/" + kSnapshotTmpFile;
  const std::span<const std::uint8_t> magic(
      reinterpret_cast<const std::uint8_t*>(kSnapshotMagic),
      sizeof(kSnapshotMagic));

  try {
    // Simulated kill mid-snapshot: a partial temp file is left behind;
    // reopen discards it and the previous snapshot + WAL still rebuild
    // the full state.
    if (fault::fire(fault::points::kLedgerSnapshotWrite)) {
      File partial = File::create_truncate(tmp);
      partial.write_all(magic);
      partial.write_all(std::span(frame).first(frame.size() / 2));
      throw CrashInjected(fault::points::kLedgerSnapshotWrite);
    }

    File f = File::create_truncate(tmp);
    f.write_all(magic);
    f.write_all(frame);
    f.sync();
    atomic_publish(tmp, dir_ + "/" + kSnapshotFile);

    // Rotate: new records go to a fresh segment; everything before it
    // is covered by the snapshot we just published.
    const std::uint64_t next_segment = segment_ + 1;
    writer_.emplace(File::open_append(segment_path(next_segment)),
                    opts_.fsync_each_append);
    sync_dir(dir_);
    const std::uint64_t last_old = segment_;
    segment_ = next_segment;
    for (const auto& name : list_dir(dir_)) {
      if (const auto n = parse_segment_name(name); n && *n <= last_old) {
        remove_file(dir_ + "/" + name);
      }
    }
    ++stats_.snapshots_written;
    // The snapshot covers every record up to seq_ and was fsynced
    // before publication.
    durable_seq_ = seq_;
    snapshot_seq_ = seq_;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

Ledger::ReadResult Ledger::read_records_after(std::uint64_t after_seq,
                                              std::size_t max_records,
                                              ReadCursor* cursor) const {
  const MutexLock lk(io_mu_);
  ReadResult out;
  if (max_records == 0 || after_seq >= durable_seq_) return out;

  // Fast path: resume exactly where the previous read for this caller
  // stopped, if the segment still exists and the frame there carries
  // the expected sequence.
  if (cursor != nullptr && cursor->next_seq == after_seq + 1 &&
      cursor->segment != 0) {
    if (const auto f = File::open_read(segment_path(cursor->segment))) {
      const auto bytes = f->read_all();
      if (cursor->offset <= bytes.size()) {
        std::size_t offset = cursor->offset;
        std::uint64_t segment = cursor->segment;
        bool valid = true;
        std::uint64_t expect = after_seq + 1;
        std::vector<ShippedRecord> records;
        while (records.size() < max_records && expect <= durable_seq_) {
          const auto rec =
              parse_record(std::span<const std::uint8_t>(bytes), offset);
          if (!rec) break;  // end of this segment (or torn tail)
          Reader r{rec->payload};
          (void)r.u8();
          const std::uint64_t rec_seq = r.u64();
          if (rec_seq != expect) {
            valid = false;  // rotation/truncation moved the ground
            break;
          }
          records.push_back(
              {rec_seq, {rec->payload.begin(), rec->payload.end()}});
          offset = rec->next_offset;
          ++expect;
        }
        if (valid && !records.empty()) {
          // More may live in later segments; only claim the fast path
          // when it produced a full batch or reached the watermark —
          // otherwise fall through to the scan.
          if (records.size() == max_records || expect > durable_seq_) {
            cursor->segment = segment;
            cursor->offset = offset;
            cursor->next_seq = expect;
            out.records = std::move(records);
            return out;
          }
        }
      }
    }
  }

  // Slow path: scan the segments in order. Sequences increase
  // monotonically across segments, so the first frame above after_seq
  // tells us whether the WAL still covers the caller's position.
  std::vector<std::uint64_t> segments;
  for (const auto& name : list_dir(dir_)) {
    if (const auto n = parse_segment_name(name)) segments.push_back(*n);
  }
  std::uint64_t expect = after_seq + 1;
  for (const auto n : segments) {
    const auto f = File::open_read(segment_path(n));
    if (!f) continue;  // rotated away under us
    const auto bytes = f->read_all();
    std::size_t offset = 0;
    while (out.records.size() < max_records && expect <= durable_seq_) {
      const auto rec =
          parse_record(std::span<const std::uint8_t>(bytes), offset);
      if (!rec) break;
      Reader r{rec->payload};
      (void)r.u8();
      const std::uint64_t rec_seq = r.u64();
      offset = rec->next_offset;
      if (rec_seq <= after_seq) continue;
      if (rec_seq > expect) {
        // The records the caller needs were folded into a snapshot and
        // their segments deleted.
        out.gap = true;
        out.records.clear();
        return out;
      }
      out.records.push_back(
          {rec_seq, {rec->payload.begin(), rec->payload.end()}});
      if (cursor != nullptr) {
        cursor->segment = n;
        cursor->offset = offset;
        cursor->next_seq = rec_seq + 1;
      }
      ++expect;
    }
    if (out.records.size() >= max_records || expect > durable_seq_) break;
  }
  if (out.records.empty() && after_seq < durable_seq_) {
    // Nothing on disk covers (after_seq, durable]: snapshot-folded.
    out.gap = true;
  }
  return out;
}

std::optional<Ledger::SnapshotImage> Ledger::snapshot_bytes() const {
  // Lock so we never race a write_snapshot mid-rotation (the publish
  // itself is atomic, but the read pairs with watermark accounting).
  const MutexLock lk(io_mu_);
  auto bytes = read_snapshot_bytes(dir_);
  if (!bytes) return std::nullopt;
  return SnapshotImage{snapshot_seq_, std::move(*bytes)};
}

std::unique_ptr<PersistentChain> open(const std::string& dir, Options opts) {
  return std::make_unique<PersistentChain>(dir, opts);
}

}  // namespace zkdet::ledger
