// Durable ledger: journals every chain mutation to a CRC-framed WAL,
// checkpoints periodic snapshots, and reconstructs a byte-identical
// chain on reopen (snapshot load + WAL-suffix replay).
//
// Directory layout (`ZKDET_DATA_DIR` or an explicit path):
//
//   snapshot.bin        full state image + WAL sequence watermark,
//                       published atomically (tmp + fsync + rename +
//                       dir fsync); at most one, always complete
//   snapshot.tmp        in-flight snapshot; discarded on open
//   wal-<n>.log         WAL segments (zero-padded n); rotated after
//                       each snapshot, old segments deleted once the
//                       snapshot covering them is published
//
// Durability contract: Ledger::on_block_sealed runs synchronously
// inside Chain::seal_block, so by the time Chain::call returns a
// receipt the block's WAL record is written (and fsynced, unless
// Options::fsync_each_append is off). A crash at ANY instant yields,
// on reopen, a chain that passes validate_chain() and whose tip is
// either the last acked block (record durable) or the block before it
// (record torn/corrupt → tail truncated); an un-acked block may land
// either way, which is exactly a real chain client's "tx submitted but
// no receipt" window. Replay re-verifies every post-snapshot tx
// signature (batched through the runtime thread pool); snapshots are
// trusted, which is what makes reopen O(suffix) instead of O(history).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "check/mutex.hpp"
#include "ledger/wal.hpp"

namespace zkdet::ledger {

class Writer;  // codec.hpp

struct Options {
  // Snapshot after this many sealed blocks (0 = never snapshot).
  std::uint64_t snapshot_interval = 1024;
  // Re-verify tx signatures of WAL-replayed blocks on open.
  bool verify_signatures = true;
  // fsync the WAL after every record (full durability). Off = batched
  // durability for bulk loads; data loss window until next sync().
  bool fsync_each_append = true;
};

struct Stats {
  std::uint64_t appended_records = 0;   // this process, post-open
  std::uint64_t replayed_blocks = 0;    // WAL suffix applied at open
  std::uint64_t snapshot_blocks = 0;    // blocks restored from snapshot
  std::uint64_t snapshots_written = 0;  // this process
  bool torn_tail_truncated = false;     // open found and cut a torn tail
  bool opened_from_snapshot = false;
};

// Attaches durability to an existing Chain. The chain must be at
// genesis when the ledger is constructed; if `dir` holds history the
// ctor restores it (restore_state + pending contract adoptions).
// Fail-stop: after an IO failure or injected crash the ledger is
// poisoned — further mutations of the observed chain throw rather than
// silently diverging from disk.
class Ledger : public chain::ChainObserver {
 public:
  Ledger(chain::Chain& chain, std::string dir, Options opts = {});
  ~Ledger() override;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  // ChainObserver (called by Chain; not for direct use).
  void on_account_created(const chain::Address& addr, const crypto::G1& pk,
                          std::uint64_t balance) override;
  void on_block_sealed(const chain::Block& block,
                       const chain::StateDelta& delta) override;

  // Forces a snapshot + WAL rotation now (tests, bench, shutdown).
  void snapshot_now();
  // Durability barrier when fsync_each_append is off.
  void sync();

  [[nodiscard]] Stats stats() const {
    const MutexLock lk(io_mu_);
    return stats_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t wal_seq() const {
    const MutexLock lk(io_mu_);
    return seq_;
  }
  // Last WAL sequence known durable (covered by an fsync). Equal to
  // wal_seq() while fsync_each_append is on; trails it between sync()
  // barriers otherwise, and recovery/replication trust exactly this
  // mark: reopen replays to it, the shipper never ships past it, and a
  // promoted follower truncates beyond it. This accessor replaces the
  // old pattern of callers inferring durability from segment sizes.
  [[nodiscard]] std::uint64_t durable_watermark() const {
    const MutexLock lk(io_mu_);
    return durable_seq_;
  }
  [[nodiscard]] bool poisoned() const {
    const MutexLock lk(io_mu_);
    return poisoned_;
  }

  // --- replication read API (src/replication) ---

  // One durable WAL record as shipped to a follower: the raw payload
  // (u8 type + u64 seq + body) that went through the CRC framing.
  struct ShippedRecord {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
  };
  // Optional resume hint for read_records_after: remembers where the
  // previous read stopped so steady-state shipping is O(batch), not
  // O(segment). Owned by the caller (one per follower); invalidated
  // hints (rotated segment, truncation) fall back to a full scan.
  struct ReadCursor {
    std::uint64_t segment = 0;
    std::uint64_t offset = 0;
    std::uint64_t next_seq = 0;
  };
  struct ReadResult {
    std::vector<ShippedRecord> records;
    // True when records in (after_seq, first-available) were folded
    // into a snapshot and their segments deleted — the caller must
    // bootstrap from snapshot_bytes() instead of the WAL.
    bool gap = false;
  };
  // Returns durable records with seq in (after_seq, durable_watermark()],
  // at most `max_records`, in order. Reads the on-disk segments — the
  // shipping path never sees bytes that could still be lost.
  [[nodiscard]] ReadResult read_records_after(std::uint64_t after_seq,
                                              std::size_t max_records,
                                              ReadCursor* cursor) const;
  // Raw snapshot.bin bytes for follower bootstrap, labeled with the WAL
  // sequence the snapshot covers; nullopt when no snapshot has been
  // published yet.
  struct SnapshotImage {
    std::uint64_t wal_seq = 0;
    std::vector<std::uint8_t> bytes;
  };
  [[nodiscard]] std::optional<SnapshotImage> snapshot_bytes() const;

 private:
  // Construction-time only: runs before the observer is registered, so
  // no concurrent access to the IO state is possible, and it calls
  // chain_.restore_state (which takes the Chain nonce lock) — holding
  // io_mu_ (kLedger) across that would invert the declared lock order.
  void open_and_replay() ZKDET_NO_THREAD_SAFETY_ANALYSIS;
  void append_record(std::uint8_t type,
                     const std::function<void(Writer&)>& body)
      ZKDET_REQUIRES(io_mu_);
  void maybe_snapshot() ZKDET_REQUIRES(io_mu_);
  void write_snapshot() ZKDET_REQUIRES(io_mu_);
  [[nodiscard]] std::string segment_path(std::uint64_t n) const;

  chain::Chain& chain_;
  std::string dir_;
  Options opts_;
  // Serializes the WAL/snapshot IO state. Today the observer callbacks
  // arrive from the single sequencer thread; the mutex makes the
  // durability layer safe for the replication/failover work (WAL
  // shipping, follower snapshots) and slots the subsystem into the
  // lock order: it is taken below the chain locks and above the fault
  // registry (append fail-points fire under it).
  mutable Mutex io_mu_{check::LockLevel::kLedger, "ledger.io"};
  Stats stats_ ZKDET_GUARDED_BY(io_mu_);
  // Last WAL sequence written or replayed.
  std::uint64_t seq_ ZKDET_GUARDED_BY(io_mu_) = 0;
  // Last WAL sequence covered by an fsync (== seq_ when
  // fsync_each_append is on). See durable_watermark().
  std::uint64_t durable_seq_ ZKDET_GUARDED_BY(io_mu_) = 0;
  // WAL sequence covered by the published snapshot (0 = none).
  std::uint64_t snapshot_seq_ ZKDET_GUARDED_BY(io_mu_) = 0;
  // Current segment number.
  std::uint64_t segment_ ZKDET_GUARDED_BY(io_mu_) = 1;
  std::uint64_t blocks_since_snapshot_ ZKDET_GUARDED_BY(io_mu_) = 0;
  std::optional<WalWriter> writer_ ZKDET_GUARDED_BY(io_mu_);
  bool poisoned_ ZKDET_GUARDED_BY(io_mu_) = false;
};

// Chain + Ledger with correct construction/destruction order.
class PersistentChain {
 public:
  explicit PersistentChain(const std::string& dir, Options opts = {})
      : ledger_(chain_, dir, opts) {}

  [[nodiscard]] chain::Chain& chain() { return chain_; }
  [[nodiscard]] const chain::Chain& chain() const { return chain_; }
  [[nodiscard]] Ledger& ledger() { return ledger_; }

 private:
  chain::Chain chain_;
  Ledger ledger_;
};

// Opens (creating or recovering) a durable chain rooted at `dir`.
[[nodiscard]] std::unique_ptr<PersistentChain> open(const std::string& dir,
                                                    Options opts = {});

}  // namespace zkdet::ledger
