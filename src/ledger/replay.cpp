#include "ledger/replay.hpp"

#include <cinttypes>
#include <cstdio>

#include "ledger/wal.hpp"

namespace zkdet::ledger {

std::string segment_name(std::uint64_t n) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", n);
  return buf;
}

std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.substr(24) != ".log") {
    return std::nullopt;
  }
  std::uint64_t n = 0;
  for (std::size_t i = 4; i < 24; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

namespace {

void apply_delta(ReplayImage& st, const chain::StateDelta& delta,
                 const std::string& origin) {
  for (const auto& c : delta.contracts_created) {
    chain::RestoredContract rc;
    rc.name = c.name;
    rc.code_size = c.code_size;
    st.contracts.emplace(c.address, std::move(rc));
  }
  for (const auto& [addr, bal] : delta.balance_sets) {
    st.balances[addr] = bal;  // absolute values: idempotent
  }
  for (const auto& [addr, key, value] : delta.slot_sets) {
    const auto it = st.contracts.find(addr);
    if (it == st.contracts.end()) {
      throw IoError("ledger: replayed slot write for unknown contract " +
                    addr + " (" + origin + ")");
    }
    it->second.slots[key] = value;
  }
  for (const auto& [addr, key] : delta.slot_erases) {
    const auto it = st.contracts.find(addr);
    if (it == st.contracts.end()) {
      throw IoError("ledger: replayed slot erase for unknown contract " +
                    addr + " (" + origin + ")");
    }
    it->second.slots.erase(key);
  }
}

}  // namespace

ReplayImage::Applied ReplayImage::apply_record(
    std::span<const std::uint8_t> payload, const std::string& origin,
    bool verify_hashes) {
  Reader r{payload};
  try {
    const std::uint8_t type = r.u8();
    const std::uint64_t rec_seq = r.u64();
    if (rec_seq <= seq) return Applied::kSkipped;
    if (rec_seq != seq + 1) {
      throw IoError("ledger: WAL sequence gap at " + origin + " (have " +
                    std::to_string(seq) + ", next record is " +
                    std::to_string(rec_seq) + ")");
    }
    if (type == kRecordBlock) {
      chain::Block block = read_block(r);
      const auto delta = read_delta(r);
      r.expect_end();
      if (block.height != blocks.size()) {
        throw IoError("ledger: replayed block height " +
                      std::to_string(block.height) + " != expected " +
                      std::to_string(blocks.size()) + " (" + origin + ")");
      }
      if (verify_hashes) {
        // Divergence fail-stop: a block whose content does not hash to
        // its claimed hash, or whose prev-link does not extend this
        // image's tip, is a fork — refuse it loudly, never apply.
        if (chain::Chain::block_hash(block) != block.hash) {
          throw IoError("ledger: replayed block " +
                        std::to_string(block.height) +
                        " content does not match its hash (" + origin + ")");
        }
        if (!blocks.empty() && block.prev_hash != blocks.back().hash) {
          throw IoError("ledger: replayed block " +
                        std::to_string(block.height) +
                        " does not link to the current tip (" + origin + ")");
        }
      }
      apply_delta(*this, delta, origin);
      blocks.push_back(std::move(block));
      seq = rec_seq;
      return Applied::kBlock;
    }
    if (type == kRecordAccount) {
      const auto addr = r.str();
      const auto pk = r.g1();
      const std::uint64_t balance = r.u64();
      r.expect_end();
      account_keys[addr] = pk;
      balances[addr] = balance;
      seq = rec_seq;
      return Applied::kAccount;
    }
    throw IoError("ledger: unknown WAL record type " + std::to_string(type) +
                  " in " + origin);
  } catch (const CodecError& e) {
    // CRC said the bytes are exactly what was written, so a decode
    // failure means a buggy or newer writer — refuse the record.
    throw IoError("ledger: undecodable WAL record in " + origin + ": " +
                  e.what());
  }
}

LoadedDir load_dir(const std::string& dir, bool verify_hashes) {
  make_dirs(dir);
  // A snapshot.tmp is an in-flight snapshot the previous process never
  // published; the previous snapshot + WAL remain authoritative.
  remove_file(dir + "/" + kSnapshotTmpFile);

  LoadedDir out;

  // 1. Snapshot (if any).
  if (const auto f = File::open_read(dir + "/" + kSnapshotFile)) {
    const auto bytes = f->read_all();
    const std::span<const std::uint8_t> view(bytes);
    if (bytes.size() < sizeof(kSnapshotMagic) ||
        !std::equal(kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic),
                    bytes.begin())) {
      throw IoError("ledger: " + f->path() + " has a bad magic");
    }
    const auto rec = parse_record(view, sizeof(kSnapshotMagic));
    if (!rec || rec->next_offset != bytes.size()) {
      // snapshot.bin is published atomically, so a bad body is media
      // corruption — fail loudly rather than replay from genesis and
      // silently resurrect a pre-snapshot fork.
      throw IoError("ledger: " + f->path() + " is corrupt");
    }
    ChainSnapshot snap;
    try {
      snap = decode_snapshot(rec->payload);
    } catch (const CodecError& e) {
      throw IoError("ledger: " + f->path() + ": " + e.what());
    }
    out.from_snapshot = true;
    out.snapshot_blocks = snap.blocks.size();
    out.snapshot_wal_seq = snap.wal_seq;
    out.image.blocks = std::move(snap.blocks);
    out.image.balances = std::move(snap.balances);
    out.image.account_keys = std::move(snap.account_keys);
    out.image.contracts = std::move(snap.contracts);
    out.image.seq = snap.wal_seq;
  }
  if (out.image.blocks.empty()) {
    // WAL-only replay starts from the deterministic genesis block a
    // fresh chain builds.
    const chain::Chain fresh;
    out.image.blocks.push_back(fresh.blocks().front());
  }
  out.first_wal_block = out.image.blocks.size();

  // 2. WAL segments, in numeric order.
  std::vector<std::uint64_t> segments;
  for (const auto& name : list_dir(dir)) {
    if (const auto n = parse_segment_name(name)) segments.push_back(*n);
  }
  // list_dir sorts names; zero-padding makes that numeric order too.

  for (std::size_t si = 0; si < segments.size(); ++si) {
    const bool final_segment = si + 1 == segments.size();
    const std::string path = dir + "/" + segment_name(segments[si]);
    const auto f = File::open_read(path);
    if (!f) throw IoError("ledger: segment vanished: " + path);
    const auto bytes = f->read_all();
    const auto scan = scan_wal(bytes);
    if (scan.has_torn_tail) {
      if (!final_segment) {
        // Only the crash-interrupted tail of the *last* segment may be
        // invalid; garbage mid-history is corruption of committed data.
        throw IoError("ledger: corrupt record inside sealed segment " + path);
      }
      File tail = File::open_append(path);
      tail.truncate(scan.valid_bytes);
      tail.sync();
      out.torn_tail_truncated = true;
    }
    for (const auto& payload : scan.payloads) {
      if (out.image.apply_record(payload, path, verify_hashes) ==
          ReplayImage::Applied::kBlock) {
        ++out.replayed_blocks;
      }
    }
  }

  out.head_segment = segments.empty() ? 1 : segments.back();
  out.fresh_segment = segments.empty();
  return out;
}

void truncate_wal_after(const std::string& dir, std::uint64_t seq) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const auto& name : list_dir(dir)) {
    if (const auto n = parse_segment_name(name)) {
      segments.emplace_back(*n, dir + "/" + name);
    }
  }
  bool cutting = false;  // once a cut happened, later segments go whole
  for (const auto& [n, path] : segments) {
    if (cutting) {
      remove_file(path);
      continue;
    }
    const auto f = File::open_read(path);
    if (!f) throw IoError("ledger: segment vanished: " + path);
    const auto bytes = f->read_all();
    const std::span<const std::uint8_t> view(bytes);
    std::size_t offset = 0;
    std::size_t keep = 0;
    while (offset < bytes.size()) {
      const auto rec = parse_record(view, offset);
      if (!rec) break;  // torn tail: cut here too
      Reader r{rec->payload};
      (void)r.u8();
      const std::uint64_t rec_seq = r.u64();
      if (rec_seq > seq) break;
      keep = rec->next_offset;
      offset = rec->next_offset;
    }
    if (keep < bytes.size()) {
      File tail = File::open_append(path);
      tail.truncate(keep);
      tail.sync();
      cutting = true;
    }
  }
  if (cutting) sync_dir(dir);
}

std::optional<std::vector<std::uint8_t>> read_snapshot_bytes(
    const std::string& dir) {
  const auto f = File::open_read(dir + "/" + kSnapshotFile);
  if (!f) return std::nullopt;
  return f->read_all();
}

ChainSnapshot install_snapshot_bytes(const std::string& dir,
                                     std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic) ||
      !std::equal(kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic),
                  bytes.begin())) {
    throw IoError("ledger: shipped snapshot has a bad magic");
  }
  const auto rec = parse_record(bytes, sizeof(kSnapshotMagic));
  if (!rec || rec->next_offset != bytes.size()) {
    throw IoError("ledger: shipped snapshot is corrupt");
  }
  ChainSnapshot snap;
  try {
    snap = decode_snapshot(rec->payload);
  } catch (const CodecError& e) {
    throw IoError(std::string("ledger: shipped snapshot: ") + e.what());
  }
  make_dirs(dir);
  const std::string tmp = dir + "/" + kSnapshotTmpFile;
  File f = File::create_truncate(tmp);
  f.write_all(bytes);
  f.sync();
  atomic_publish(tmp, dir + "/" + kSnapshotFile);
  return snap;
}

}  // namespace zkdet::ledger
