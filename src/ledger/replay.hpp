// Shared WAL replay: the one decode-and-apply path for ledger records.
//
// Ledger::open_and_replay (primary recovery) and replication::Follower
// (streamed catch-up) fold the same record stream into the same image
// type through the same code, so a record either applies identically on
// both sides or is rejected identically — there is no second replay
// implementation to drift. A ReplayImage is exactly the state a
// Chain::restore_state call consumes: block history, balances, account
// keys and contract KV images, plus the WAL sequence watermark.
//
// Record payload layout (inside a CRC frame, see wal.hpp):
//
//   u8 type (kRecordBlock | kRecordAccount) + u64 seq + body
//
// Sequences are strictly contiguous; records at or below the image's
// watermark are skipped idempotently (snapshot-folded records on
// reopen, re-shipped frames after a lost ack in replication).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ledger/codec.hpp"

namespace zkdet::ledger {

// snapshot.bin layout: this magic, then one CRC frame whose payload is
// encode_snapshot(). Published atomically; at most one per directory.
inline constexpr char kSnapshotMagic[8] = {'Z', 'K', 'D', 'T',
                                           'S', 'N', 'A', 'P'};
inline constexpr const char* kSnapshotFile = "snapshot.bin";
inline constexpr const char* kSnapshotTmpFile = "snapshot.tmp";

// wal-<20-digit n>.log — zero-padded so lexicographic == numeric order.
[[nodiscard]] std::string segment_name(std::uint64_t n);
[[nodiscard]] std::optional<std::uint64_t> parse_segment_name(
    const std::string& name);

// Mutable replay image: snapshot state + WAL records folded in.
struct ReplayImage {
  std::vector<chain::Block> blocks;
  std::map<chain::Address, std::uint64_t> balances;
  std::map<chain::Address, crypto::G1> account_keys;
  std::map<chain::Address, chain::RestoredContract> contracts;
  // Last WAL sequence folded into this image.
  std::uint64_t seq = 0;

  enum class Applied : std::uint8_t {
    kSkipped = 0,  // seq <= watermark: already folded in (idempotent)
    kBlock = 1,
    kAccount = 2,
  };

  // Decodes and applies one record payload. Throws IoError on a
  // sequence gap, an undecodable body, an unknown type, or (with
  // `verify_hashes`) a block whose hash or prev-link does not match —
  // the follower-side divergence fail-stop. `origin` labels errors
  // (file path or transport peer). The Ledger's own replay leaves
  // verify_hashes off: validate_chain() covers the whole chain once
  // after restore, and doing it per-record would double that cost.
  Applied apply_record(std::span<const std::uint8_t> payload,
                       const std::string& origin, bool verify_hashes);

  [[nodiscard]] std::uint64_t height() const { return blocks.size(); }
  [[nodiscard]] bool has_history() const {
    return blocks.size() > 1 || !balances.empty() || !account_keys.empty() ||
           !contracts.empty();
  }
};

// Everything load_dir() learned about a ledger directory.
struct LoadedDir {
  ReplayImage image;
  bool from_snapshot = false;
  std::uint64_t snapshot_blocks = 0;
  // WAL sequence the loaded snapshot covered (0 when none existed).
  std::uint64_t snapshot_wal_seq = 0;
  std::uint64_t replayed_blocks = 0;
  // Index of the first image block that came from the WAL (everything
  // before it is snapshot-trusted; callers re-verify from here).
  std::size_t first_wal_block = 0;
  bool torn_tail_truncated = false;
  std::uint64_t head_segment = 1;  // segment to continue appending to
  bool fresh_segment = true;       // no segment file existed yet
};

// Loads `dir` (creating it if missing): discards an in-flight
// snapshot.tmp, loads snapshot.bin when present, replays the WAL
// segments in order and truncates a torn tail on the final segment.
// Genesis-only directories yield an image holding just the
// deterministic genesis block.
[[nodiscard]] LoadedDir load_dir(const std::string& dir, bool verify_hashes);

// Promotion hook: truncates the WAL in `dir` so no record with
// sequence > `seq` survives — a promoted follower cuts everything past
// its durable watermark (unacked tail) before resuming as a primary.
// Frames are cut at a frame boundary and later segments are deleted
// whole; a torn tail is dropped as a side effect.
void truncate_wal_after(const std::string& dir, std::uint64_t seq);

// Raw snapshot.bin bytes (magic + CRC frame), or nullopt when the
// directory has no published snapshot. The unit the replication
// bootstrap ships.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_snapshot_bytes(
    const std::string& dir);

// Atomically installs raw snapshot bytes (as returned by
// read_snapshot_bytes) into `dir`, validating magic + CRC first.
// Returns the decoded snapshot so the caller can rebuild its image.
ChainSnapshot install_snapshot_bytes(const std::string& dir,
                                     std::span<const std::uint8_t> bytes);

}  // namespace zkdet::ledger
