#include "ledger/wal.hpp"

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/crc32c.hpp"

namespace zkdet::ledger {

namespace {

std::uint32_t read_u32le(std::span<const std::uint8_t> b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{b[at + static_cast<std::size_t>(i)]} << (8 * i);
  }
  return v;
}

}  // namespace

std::optional<RecordView> parse_record(std::span<const std::uint8_t> buf,
                                       std::size_t offset) {
  if (offset > buf.size() || buf.size() - offset < kFrameHeaderSize) {
    return std::nullopt;
  }
  const std::uint32_t len = read_u32le(buf, offset);
  const std::uint32_t crc = read_u32le(buf, offset + 4);
  if (len > kMaxRecordPayload) return std::nullopt;
  if (buf.size() - offset - kFrameHeaderSize < len) return std::nullopt;
  const auto payload = buf.subspan(offset + kFrameHeaderSize, len);
  if (crc32c(payload) != crc) return std::nullopt;
  return RecordView{payload, offset + kFrameHeaderSize + len};
}

std::vector<std::uint8_t> frame_record(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxRecordPayload) {
    throw IoError("wal: record payload exceeds " +
                  std::to_string(kMaxRecordPayload) + " bytes");
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

ScanResult scan_wal(std::span<const std::uint8_t> buf) {
  ScanResult result;
  std::size_t offset = 0;
  while (offset < buf.size()) {
    const auto rec = parse_record(buf, offset);
    if (!rec) break;
    result.payloads.emplace_back(rec->payload.begin(), rec->payload.end());
    offset = rec->next_offset;
  }
  result.valid_bytes = offset;
  result.has_torn_tail = offset < buf.size();
  return result;
}

WalWriter::WalWriter(File file, bool fsync_each_append)
    : file_(std::move(file)), fsync_each_append_(fsync_each_append) {}

void WalWriter::append(std::span<const std::uint8_t> payload) {
  if (poisoned_) {
    throw IoError("wal: writer poisoned after earlier failure (" +
                  file_.path() + ")");
  }
  std::vector<std::uint8_t> frame = frame_record(payload);

  // Simulated kill mid-write: a prefix of the frame reaches the file
  // and the "process" dies. Recovery must treat it as a torn tail.
  if (fault::fire(fault::points::kLedgerWalAppendTorn)) {
    poisoned_ = true;
    const std::size_t half = frame.size() / 2;
    file_.write_all(std::span(frame).first(half == 0 ? frame.size() : half));
    throw CrashInjected(fault::points::kLedgerWalAppendTorn);
  }
  // Simulated media corruption: the frame lands in full but with one
  // bit flipped somewhere in the payload; the CRC catches it on reopen.
  if (fault::fire(fault::points::kLedgerWalAppendCorrupt)) {
    poisoned_ = true;
    const std::size_t victim =
        payload.empty() ? 4  // no payload bytes: corrupt the CRC field
                        : kFrameHeaderSize + (frame.size() / 3) % payload.size();
    frame[victim] ^= 0x40;
    file_.write_all(frame);
    file_.sync();
    throw CrashInjected(fault::points::kLedgerWalAppendCorrupt);
  }

  try {
    file_.write_all(frame);
    if (fsync_each_append_) file_.sync();
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void WalWriter::sync() {
  if (poisoned_) {
    throw IoError("wal: writer poisoned after earlier failure (" +
                  file_.path() + ")");
  }
  try {
    file_.sync();
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

}  // namespace zkdet::ledger
