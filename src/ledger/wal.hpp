// Append-only write-ahead log with CRC-framed records.
//
// On-disk frame, repeated back-to-back in each `wal-<seq>.log` segment:
//
//   +-------------+--------------+------------------+
//   | u32 len(LE) | u32 crc32c   | payload[len]     |
//   +-------------+--------------+------------------+
//
// The CRC covers only the payload; `len` is implicitly validated by the
// CRC check (a corrupted length either truncates the read or yields a
// payload whose CRC cannot match). Torn-tail semantics: a crash can
// leave at most one partial frame at the end of the *last* segment;
// scan_wal() finds the longest valid prefix and the opener truncates
// the rest. An invalid frame in the *middle* of a segment (or anywhere
// in a non-final segment) is media corruption, not a torn write, and is
// a hard error — silently dropping committed records would fork the
// chain.
//
// parse_record() is deliberately a pure function over a byte span (no
// file handles) so the fuzz harness can hammer it with arbitrary bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ledger/io.hpp"

namespace zkdet::ledger {

// Frame overhead: u32 length + u32 crc.
inline constexpr std::size_t kFrameHeaderSize = 8;
// Upper bound on a single record payload (1 GiB): rejects absurd length
// prefixes before any allocation. Real records are a few KiB.
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 30;

// Payload record types (first payload byte; decoded by the ledger).
inline constexpr std::uint8_t kRecordBlock = 1;    // sealed block + delta
inline constexpr std::uint8_t kRecordAccount = 2;  // account registration

struct RecordView {
  std::span<const std::uint8_t> payload;
  std::size_t next_offset = 0;  // offset of the frame after this one
};

// Parses the frame at `offset`. Returns nullopt if the bytes from
// `offset` do not contain one complete, CRC-valid frame (truncated
// header, truncated payload, oversized length claim, or CRC mismatch).
// Never reads outside `buf`, never allocates.
[[nodiscard]] std::optional<RecordView> parse_record(
    std::span<const std::uint8_t> buf, std::size_t offset);

// Complete wire frame for `payload` (header + payload).
[[nodiscard]] std::vector<std::uint8_t> frame_record(
    std::span<const std::uint8_t> payload);

struct ScanResult {
  // Payloads of all valid frames, in file order.
  std::vector<std::vector<std::uint8_t>> payloads;
  // Byte length of the valid prefix; anything beyond is a torn tail.
  std::size_t valid_bytes = 0;
  bool has_torn_tail = false;
};

// Longest valid frame prefix of a segment image.
[[nodiscard]] ScanResult scan_wal(std::span<const std::uint8_t> buf);

// Appender for one WAL segment. Fail-stop: after any append that did
// not complete cleanly (injected torn write / corruption / fsync error,
// or a real IO error) the writer is poisoned and rejects further
// appends — a process whose log tail is in an unknown state must not
// keep writing after it.
class WalWriter {
 public:
  WalWriter(File file, bool fsync_each_append);

  // Frames `payload`, appends it, optionally fsyncs. Throws
  // CrashInjected (simulated kill) or IoError.
  void append(std::span<const std::uint8_t> payload);
  // Explicit durability barrier (used when fsync_each_append is off).
  void sync();

  [[nodiscard]] bool poisoned() const { return poisoned_; }
  [[nodiscard]] const std::string& path() const { return file_.path(); }

 private:
  File file_;
  bool fsync_each_append_;
  bool poisoned_ = false;
};

}  // namespace zkdet::ledger
