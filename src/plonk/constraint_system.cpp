#include "plonk/constraint_system.hpp"

#include "check/check.hpp"

namespace zkdet::plonk {

std::size_t ConstraintSystem::domain_size() const {
  std::size_t n = 8;
  while (n < num_rows()) n <<= 1;
  return n;
}

bool ConstraintSystem::is_satisfied(const std::vector<Fr>& witness) const {
  if (witness.size() < num_vars_) return false;
  if (!witness[kZeroVar].is_zero()) return false;
  for (const Gate& g : gates_) {
    const Fr a = witness[g.a];
    const Fr b = witness[g.b];
    const Fr c = witness[g.c];
    const Fr v = g.qm * a * b + g.ql * a + g.qr * b + g.qo * c + g.qc;
    if (!v.is_zero()) return false;
  }
  return true;
}

std::vector<Fr> ConstraintSystem::extract_public_inputs(
    const std::vector<Fr>& witness) const {
  std::vector<Fr> out;
  out.reserve(public_vars_.size());
  for (const Var v : public_vars_) {
    ZKDET_DCHECK(v < witness.size(), "public var out of witness range");
    out.push_back(witness[v]);
  }
  return out;
}

}  // namespace zkdet::plonk
