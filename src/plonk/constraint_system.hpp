// Plonk constraint system: a list of gates over a shared set of wires.
//
// Each gate enforces   qM*a*b + qL*a + qR*b + qO*c + qC + PI = 0
// where a, b, c are values of the *variables* referenced by the gate's
// three slots. Copy constraints are implicit: every slot referencing the
// same variable is wired into one permutation cycle during
// preprocessing, which is exactly Plonk's sigma argument.
//
// Variable 0 is the reserved constant-zero variable; unused gate slots
// point at it. Public inputs occupy the first ell gates (qL = 1) and are
// folded into the PI polynomial, matching the paper's convention.
#pragma once

#include <cstdint>
#include <vector>

#include "ff/bn254.hpp"

namespace zkdet::plonk {

using ff::Fr;
using ff::U256;

using Var = std::uint32_t;

struct Gate {
  Fr qm{}, ql{}, qr{}, qo{}, qc{};
  Var a = 0, b = 0, c = 0;
};

class ConstraintSystem {
 public:
  ConstraintSystem() = default;

  // Allocates a fresh variable; the witness vector must supply a value
  // for every allocated variable.
  Var add_variable() { return num_vars_++; }

  static constexpr Var kZeroVar = 0;

  void add_gate(const Gate& g) { gates_.push_back(g); }

  // Declares `v` a public input. Order of calls defines the public input
  // vector layout. Must be called before preprocessing.
  void set_public(Var v) { public_vars_.push_back(v); }

  [[nodiscard]] std::size_t num_variables() const { return num_vars_; }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<Var>& public_vars() const { return public_vars_; }

  // Total rows once the ell public-input gates are prepended.
  [[nodiscard]] std::size_t num_rows() const {
    return gates_.size() + public_vars_.size();
  }

  // Smallest power-of-two domain that fits all rows (>= 8 so blinding
  // degrees stay below domain size).
  [[nodiscard]] std::size_t domain_size() const;

  // Debug aid: checks every gate and public binding under `witness`
  // (witness[i] is the value of variable i; witness[0] must be zero).
  [[nodiscard]] bool is_satisfied(const std::vector<Fr>& witness) const;

  // Extracts the public input values in declaration order.
  [[nodiscard]] std::vector<Fr> extract_public_inputs(
      const std::vector<Fr>& witness) const;

 private:
  std::uint32_t num_vars_ = 1;  // variable 0 reserved as constant zero
  std::vector<Gate> gates_;
  std::vector<Var> public_vars_;
};

}  // namespace zkdet::plonk
