#include "plonk/groth16.hpp"

#include "check/check.hpp"

#include "ec/msm.hpp"
#include "ec/pairing.hpp"
#include "ff/ntt.hpp"
#include "ff/polynomial.hpp"

namespace zkdet::plonk::groth16 {

using ff::EvaluationDomain;
using ff::U256;

namespace {

// R1CS view of a ConstraintSystem.
//
// Witness layout: index 0 is the constant one; indices 1..ell are the
// declared public inputs; the remaining circuit variables (including the
// reserved zero variable) follow as auxiliary witnesses. Each gate
//   qm*a*b + ql*a + qr*b + qo*c + qc = 0
// becomes the R1CS row (qm*a) * (b) = -(ql*a + qr*b + qo*c + qc), plus
// one extra row pinning the circuit's zero variable to 0.
struct R1cs {
  std::size_t num_vars = 0;       // R1CS variables incl. the one-constant
  std::size_t num_statement = 0;  // 1 + ell
  std::vector<std::uint32_t> map;  // circuit var -> R1CS index

  explicit R1cs(const ConstraintSystem& cs) {
    const std::size_t ell = cs.public_vars().size();
    num_statement = 1 + ell;
    map.assign(cs.num_variables(), 0);
    std::vector<bool> is_public(cs.num_variables(), false);
    std::uint32_t next = 1;
    for (const Var v : cs.public_vars()) {
      map[v] = next++;
      is_public[v] = true;
    }
    for (Var v = 0; v < cs.num_variables(); ++v) {
      if (!is_public[v]) map[v] = next++;
    }
    num_vars = next;
  }

  [[nodiscard]] std::size_t num_constraints(const ConstraintSystem& cs) const {
    return cs.gates().size() + 1;  // +1 for the zero-variable pin
  }

  // Builds the full R1CS witness from a circuit witness.
  [[nodiscard]] std::vector<Fr> full_witness(
      const ConstraintSystem& cs, const std::vector<Fr>& witness) const {
    std::vector<Fr> w(num_vars, Fr::zero());
    w[0] = Fr::one();
    for (Var v = 0; v < cs.num_variables(); ++v) w[map[v]] = witness[v];
    return w;
  }

  // Visits the nonzero (row, var-index, coeff) entries of the A, B and C
  // matrices. fn(row, r1cs_index, coeff, matrix) with matrix 0/1/2.
  template <typename Fn>
  void for_entries(const ConstraintSystem& cs, Fn&& fn) const {
    const auto& gates = cs.gates();
    for (std::size_t row = 0; row < gates.size(); ++row) {
      const Gate& g = gates[row];
      if (!g.qm.is_zero()) {
        fn(row, map[g.a], g.qm, 0);
        fn(row, map[g.b], Fr::one(), 1);
      }
      if (!g.ql.is_zero()) fn(row, map[g.a], -g.ql, 2);
      if (!g.qr.is_zero()) fn(row, map[g.b], -g.qr, 2);
      if (!g.qo.is_zero()) fn(row, map[g.c], -g.qo, 2);
      if (!g.qc.is_zero()) fn(row, 0u, -g.qc, 2);
    }
    // zero-variable pin: (w_zero) * (1) = 0
    const std::size_t zrow = gates.size();
    fn(zrow, map[ConstraintSystem::kZeroVar], Fr::one(), 0);
    fn(zrow, 0u, Fr::one(), 1);
  }
};

}  // namespace

std::optional<KeyPairResult> setup(const ConstraintSystem& cs,
                                   crypto::Drbg& rng) {
  const R1cs r1cs(cs);
  const std::size_t m = r1cs.num_constraints(cs);
  std::size_t n = 8;
  while (n < m) n <<= 1;
  const EvaluationDomain domain(n);

  // toxic waste
  const Fr alpha = rng.random_fr();
  const Fr beta = rng.random_fr();
  const Fr gamma = rng.random_fr();
  const Fr delta = rng.random_fr();
  const Fr tau = rng.random_fr();

  // Per-variable QAP evaluations at tau via Lagrange values.
  const std::vector<Fr> lag = domain.all_lagrange_at(tau);
  std::vector<Fr> at(r1cs.num_vars, Fr::zero());
  std::vector<Fr> bt(r1cs.num_vars, Fr::zero());
  std::vector<Fr> ct(r1cs.num_vars, Fr::zero());
  r1cs.for_entries(cs, [&](std::size_t row, std::uint32_t idx, const Fr& coeff,
                           int matrix) {
    const Fr v = coeff * lag[row];
    if (matrix == 0) {
      at[idx] += v;
    } else if (matrix == 1) {
      bt[idx] += v;
    } else {
      ct[idx] += v;
    }
  });

  const Fr z_tau = domain.vanishing_at(tau);
  const Fr delta_inv = delta.inverse();
  const Fr gamma_inv = gamma.inverse();

  ProvingKey pk;
  pk.num_constraints = m;
  pk.domain_size = n;
  pk.num_statement = r1cs.num_statement;
  pk.alpha_g1 = ec::g1_mul_generator(alpha);
  pk.beta_g1 = ec::g1_mul_generator(beta);
  pk.delta_g1 = ec::g1_mul_generator(delta);
  pk.beta_g2 = ec::g2_mul_generator(beta);
  pk.delta_g2 = ec::g2_mul_generator(delta);

  pk.a_query.reserve(r1cs.num_vars);
  pk.b_g1_query.reserve(r1cs.num_vars);
  pk.b_g2_query.reserve(r1cs.num_vars);
  for (std::size_t i = 0; i < r1cs.num_vars; ++i) {
    pk.a_query.push_back(ec::g1_mul_generator(at[i]));
    pk.b_g1_query.push_back(ec::g1_mul_generator(bt[i]));
    pk.b_g2_query.push_back(ec::g2_mul_generator(bt[i]));
  }

  VerifyingKey vk;
  vk.alpha_g1 = pk.alpha_g1;
  vk.beta_g2 = pk.beta_g2;
  vk.gamma_g2 = ec::g2_mul_generator(gamma);
  vk.delta_g2 = pk.delta_g2;
  vk.ic.reserve(r1cs.num_statement);
  for (std::size_t i = 0; i < r1cs.num_statement; ++i) {
    vk.ic.push_back(ec::g1_mul_generator(
        (beta * at[i] + alpha * bt[i] + ct[i]) * gamma_inv));
  }

  pk.l_query.reserve(r1cs.num_vars - r1cs.num_statement);
  for (std::size_t i = r1cs.num_statement; i < r1cs.num_vars; ++i) {
    pk.l_query.push_back(ec::g1_mul_generator(
        (beta * at[i] + alpha * bt[i] + ct[i]) * delta_inv));
  }

  pk.h_query.reserve(n - 1);
  Fr tau_pow = Fr::one();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    pk.h_query.push_back(ec::g1_mul_generator(tau_pow * z_tau * delta_inv));
    tau_pow *= tau;
  }

  pk.vk = vk;
  return KeyPairResult{std::move(pk), std::move(vk)};
}

std::optional<Proof> prove(const ProvingKey& pk, const ConstraintSystem& cs,
                           const std::vector<Fr>& witness, crypto::Drbg& rng) {
  if (!cs.is_satisfied(witness)) return std::nullopt;
  const R1cs r1cs(cs);
  ZKDET_CHECK(r1cs.num_statement == pk.num_statement,
              "proving key was built for a different statement size");
  const std::vector<Fr> w = r1cs.full_witness(cs, witness);
  const std::size_t n = pk.domain_size;
  const EvaluationDomain domain(n);

  // Row evaluations of A, B, C under the witness.
  std::vector<Fr> a_rows(n, Fr::zero());
  std::vector<Fr> b_rows(n, Fr::zero());
  std::vector<Fr> c_rows(n, Fr::zero());
  r1cs.for_entries(cs, [&](std::size_t row, std::uint32_t idx, const Fr& coeff,
                           int matrix) {
    const Fr v = coeff * w[idx];
    if (matrix == 0) {
      a_rows[row] += v;
    } else if (matrix == 1) {
      b_rows[row] += v;
    } else {
      c_rows[row] += v;
    }
  });

  // H(X) = (A(X)B(X) - C(X)) / Z(X), computed on a 2n coset.
  domain.ifft(a_rows);
  domain.ifft(b_rows);
  domain.ifft(c_rows);
  const EvaluationDomain ext(2 * n);
  const Fr shift = Fr::generator();
  a_rows.resize(2 * n, Fr::zero());
  b_rows.resize(2 * n, Fr::zero());
  c_rows.resize(2 * n, Fr::zero());
  ext.coset_fft(a_rows, shift);
  ext.coset_fft(b_rows, shift);
  ext.coset_fft(c_rows, shift);
  // Z on the coset alternates with period 2: shift^n * (w2n^n)^i - 1,
  // and w2n^n = -1.
  const Fr shift_n = shift.pow(U256{n});
  const Fr z0_inv = (shift_n - Fr::one()).inverse();
  const Fr z1_inv = (-shift_n - Fr::one()).inverse();
  std::vector<Fr> h(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    h[i] = (a_rows[i] * b_rows[i] - c_rows[i]) *
           ((i & 1) == 0 ? z0_inv : z1_inv);
  }
  ext.coset_ifft(h, shift);
  // degree of H is at most n-2
  for (std::size_t i = pk.h_query.size(); i < h.size(); ++i) {
    ZKDET_ASSERT(h[i].is_zero(), "H degree overflow");
  }
  h.resize(pk.h_query.size());

  const Fr r = rng.random_fr();
  const Fr s = rng.random_fr();

  const G1 sum_a = ec::msm(w, pk.a_query);
  const G1 sum_b_g1 = ec::msm(w, pk.b_g1_query);
  const G2 sum_b_g2 = ec::msm_g2(w, pk.b_g2_query);

  Proof proof;
  proof.a = pk.alpha_g1 + sum_a + pk.delta_g1.mul(r);
  proof.b = pk.beta_g2 + sum_b_g2 + pk.delta_g2.mul(s);
  const G1 b_g1 = pk.beta_g1 + sum_b_g1 + pk.delta_g1.mul(s);

  const std::span<const Fr> aux(w.data() + pk.num_statement,
                                w.size() - pk.num_statement);
  const G1 sum_l = ec::msm(aux, pk.l_query);
  const G1 sum_h = ec::msm(h, std::span<const G1>(pk.h_query.data(), h.size()));
  proof.c = sum_l + sum_h + proof.a.mul(s) + b_g1.mul(r) -
            pk.delta_g1.mul(r * s);
  return proof;
}

bool verify(const VerifyingKey& vk, const std::vector<Fr>& public_inputs,
            const Proof& proof) {
  if (public_inputs.size() + 1 != vk.ic.size()) return false;
  if (!proof.a.on_curve() || !proof.b.on_curve() || !proof.c.on_curve()) {
    return false;
  }
  // vk_x = IC_0 + sum_i x_i IC_i — the ell-term MSM that makes Groth16
  // verification grow with the statement (ZKDET's Fig. 7 argument).
  G1 vk_x = vk.ic[0];
  vk_x += ec::msm(public_inputs,
                  std::span<const G1>(vk.ic.data() + 1, public_inputs.size()));
  // e(A,B) = e(alpha,beta) e(vk_x,gamma) e(C,delta)
  const std::pair<ec::G1, ec::G2> pairs[4] = {
      {proof.a, proof.b},
      {-vk.alpha_g1, vk.beta_g2},
      {-vk_x, vk.gamma_g2},
      {-proof.c, vk.delta_g2},
  };
  return ec::pairing_product_is_one(pairs);
}

}  // namespace zkdet::plonk::groth16
