// Groth16 (EUROCRYPT'16) over BN-254 — the baseline proving system.
//
// The ZKCP protocol the paper compares against (its reference [10],
// Campanelli et al.) instantiates its NIZK with Groth16, whose verifier
// performs 3 pairings plus an ell-term G1 multi-scalar multiplication
// over the public inputs; ZKDET's Fig. 7 argues Plonk's O(1) verifier
// wins as statements grow. This is a complete Groth16: per-circuit
// trusted setup over the same ConstraintSystem front end (gates are
// converted to R1CS rows), QAP-based prover, 4-pairing-product verifier.
//
// Trade-offs vs Plonk illustrated here (bench_ablation_provers):
//   + smaller proofs (2 G1 + 1 G2 = 256 bytes vs 768)
//   + faster prover (3 MSMs vs ~11)
//   - per-circuit trusted setup (vs universal SRS)
//   - verification grows with the public input count
#pragma once

#include <optional>

#include "plonk/constraint_system.hpp"
#include "plonk/srs.hpp"

namespace zkdet::plonk::groth16 {

using ec::G1;
using ec::G2;
using ff::Fr;

struct Proof {
  G1 a;
  G2 b;
  G1 c;

  [[nodiscard]] static constexpr std::size_t size_bytes() {
    return 2 * 64 + 128;
  }
};

struct VerifyingKey {
  G1 alpha_g1;
  G2 beta_g2;
  G2 gamma_g2;
  G2 delta_g2;
  std::vector<G1> ic;  // [(beta A_i + alpha B_i + C_i)/gamma]_1, statement vars
};

struct ProvingKey {
  std::size_t num_constraints = 0;
  std::size_t domain_size = 0;
  std::size_t num_statement = 0;  // 1 + ell (the leading one-variable)

  G1 alpha_g1, beta_g1, delta_g1;
  G2 beta_g2, delta_g2;
  std::vector<G1> a_query;   // [A_i(tau)]_1, all variables
  std::vector<G1> b_g1_query;
  std::vector<G2> b_g2_query;
  std::vector<G1> l_query;   // [(beta A_i + alpha B_i + C_i)/delta]_1, aux vars
  std::vector<G1> h_query;   // [tau^i Z(tau)/delta]_1

  VerifyingKey vk;
};

struct KeyPairResult {
  ProvingKey pk;
  VerifyingKey vk;
};

// Per-circuit trusted setup (the limitation the paper's Plonk choice
// avoids; toxic waste is discarded on return).
std::optional<KeyPairResult> setup(const ConstraintSystem& cs,
                                   crypto::Drbg& rng);

std::optional<Proof> prove(const ProvingKey& pk, const ConstraintSystem& cs,
                           const std::vector<Fr>& witness, crypto::Drbg& rng);

// 3-pairing check (batched as one 4-way product) + ell-term MSM.
bool verify(const VerifyingKey& vk, const std::vector<Fr>& public_inputs,
            const Proof& proof);

}  // namespace zkdet::plonk::groth16
