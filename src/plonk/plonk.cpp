#include "plonk/plonk.hpp"

#include <array>
#include <functional>

#include "check/check.hpp"
#include "check/invariants.hpp"

#include "ec/pairing.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::plonk {

namespace {

constexpr std::uint64_t kK1 = 7;
constexpr std::uint64_t kK2 = 13;

// Rows of the padded circuit: ell public-input gates, then user gates,
// then all-zero padding. Returns per-row selectors and wire variables.
struct Layout {
  std::vector<Fr> qm, ql, qr, qo, qc;
  std::vector<Var> wa, wb, wc;
};

Layout build_layout(const ConstraintSystem& cs, std::size_t n) {
  Layout l;
  l.qm.assign(n, Fr::zero());
  l.ql.assign(n, Fr::zero());
  l.qr.assign(n, Fr::zero());
  l.qo.assign(n, Fr::zero());
  l.qc.assign(n, Fr::zero());
  l.wa.assign(n, ConstraintSystem::kZeroVar);
  l.wb.assign(n, ConstraintSystem::kZeroVar);
  l.wc.assign(n, ConstraintSystem::kZeroVar);
  const auto& pubs = cs.public_vars();
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    l.ql[i] = Fr::one();
    l.wa[i] = pubs[i];
  }
  const auto& gates = cs.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const std::size_t row = pubs.size() + i;
    l.qm[row] = gates[i].qm;
    l.ql[row] = gates[i].ql;
    l.qr[row] = gates[i].qr;
    l.qo[row] = gates[i].qo;
    l.qc[row] = gates[i].qc;
    l.wa[row] = gates[i].a;
    l.wb[row] = gates[i].b;
    l.wc[row] = gates[i].c;
  }
  return l;
}

// Batch inversion (Montgomery's trick); zero entries are not allowed.
std::vector<Fr> batch_inverse(const std::vector<Fr>& xs) {
  std::vector<Fr> prefix(xs.size() + 1);
  prefix[0] = Fr::one();
  for (std::size_t i = 0; i < xs.size(); ++i) prefix[i + 1] = prefix[i] * xs[i];
  Fr inv = prefix[xs.size()].inverse();
  std::vector<Fr> out(xs.size());
  for (std::size_t i = xs.size(); i-- > 0;) {
    out[i] = prefix[i] * inv;
    inv *= xs[i];
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> Proof::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(size_bytes());
  const auto put_g1 = [&out](const G1& p) {
    const auto b = ec::g1_to_bytes(p);
    out.insert(out.end(), b.begin(), b.end());
  };
  const auto put_fr = [&out](const Fr& v) {
    const auto b = ff::u256_to_bytes(v.to_canonical());
    out.insert(out.end(), b.begin(), b.end());
  };
  put_g1(cm_a);
  put_g1(cm_b);
  put_g1(cm_c);
  put_g1(cm_z);
  put_g1(cm_t_lo);
  put_g1(cm_t_mid);
  put_g1(cm_t_hi);
  put_g1(w_zeta);
  put_g1(w_zeta_omega);
  put_fr(eval_a);
  put_fr(eval_b);
  put_fr(eval_c);
  put_fr(eval_s1);
  put_fr(eval_s2);
  put_fr(eval_z_omega);
  return out;
}

std::optional<Proof> Proof::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != size_bytes()) return std::nullopt;
  Proof p;
  std::size_t off = 0;
  const auto get_g1 = [&](G1& out) {
    const auto g = ec::g1_from_bytes(bytes.subspan(off, 64));
    off += 64;
    if (!g) return false;
    out = *g;
    return true;
  };
  const auto get_fr = [&](Fr& out) {
    std::array<std::uint8_t, 32> buf{};
    std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(off),
              bytes.begin() + static_cast<std::ptrdiff_t>(off + 32),
              buf.begin());
    off += 32;
    const ff::U256 v = ff::u256_from_bytes(buf);
    if (ff::u256_geq(v, Fr::MOD)) return false;
    out = Fr::from_canonical(v);
    return true;
  };
  for (G1* g : {&p.cm_a, &p.cm_b, &p.cm_c, &p.cm_z, &p.cm_t_lo, &p.cm_t_mid,
                &p.cm_t_hi, &p.w_zeta, &p.w_zeta_omega}) {
    if (!get_g1(*g)) return std::nullopt;
  }
  for (Fr* f : {&p.eval_a, &p.eval_b, &p.eval_c, &p.eval_s1, &p.eval_s2,
                &p.eval_z_omega}) {
    if (!get_fr(*f)) return std::nullopt;
  }
  return p;
}

void VerifyingKey::bind_transcript(Transcript& t) const {
  t.absorb_u64(n);
  t.absorb_u64(ell);
  t.absorb_fr(k1);
  t.absorb_fr(k2);
  for (const G1* cm : {&cm_qm, &cm_ql, &cm_qr, &cm_qo, &cm_qc, &cm_s1, &cm_s2,
                       &cm_s3}) {
    t.absorb_g1(*cm);
  }
}

std::optional<KeyPairResult> preprocess(const ConstraintSystem& cs,
                                        const Srs& srs) {
  const std::size_t n = cs.domain_size();
  if (srs.max_degree() < n + 8) return std::nullopt;
  runtime::ScopedTimer preprocess_timer(runtime::counters::preprocess_ns);

  ProvingKey pk;
  pk.n = n;
  pk.ell = cs.public_vars().size();
  pk.k1 = Fr::from_u64(kK1);
  pk.k2 = Fr::from_u64(kK2);
  pk.domain = std::make_shared<EvaluationDomain>(n);
  pk.ext_domain = std::make_shared<EvaluationDomain>(8 * n);
  pk.coset_shift = Fr::generator();

  // Cosets {H, k1 H, k2 H} must be pairwise disjoint for the copy
  // constraint encoding to be injective.
  const U256 n_u{n};
  ZKDET_CHECK(pk.k1.pow(n_u) != Fr::one(), "k1 H intersects H");
  ZKDET_CHECK(pk.k2.pow(n_u) != Fr::one(), "k2 H intersects H");
  ZKDET_CHECK((pk.k2 * pk.k1.inverse()).pow(n_u) != Fr::one(),
              "k1 H intersects k2 H");

  const Layout layout = build_layout(cs, n);
  pk.wire_a = layout.wa;
  pk.wire_b = layout.wb;
  pk.wire_c = layout.wc;

  pk.qm = Polynomial::from_evaluations(layout.qm, *pk.domain);
  pk.ql = Polynomial::from_evaluations(layout.ql, *pk.domain);
  pk.qr = Polynomial::from_evaluations(layout.qr, *pk.domain);
  pk.qo = Polynomial::from_evaluations(layout.qo, *pk.domain);
  pk.qc = Polynomial::from_evaluations(layout.qc, *pk.domain);

  // Permutation: slot (col, row) has linear index col*n + row. Gather the
  // slots of each variable and rotate within each cycle.
  const std::size_t slots = 3 * n;
  std::vector<std::uint32_t> next(slots);
  {
    std::vector<std::vector<std::uint32_t>> by_var(cs.num_variables());
    for (std::size_t row = 0; row < n; ++row) {
      by_var[layout.wa[row]].push_back(static_cast<std::uint32_t>(row));
      by_var[layout.wb[row]].push_back(static_cast<std::uint32_t>(n + row));
      by_var[layout.wc[row]].push_back(static_cast<std::uint32_t>(2 * n + row));
    }
    for (const auto& cycle : by_var) {
      for (std::size_t j = 0; j < cycle.size(); ++j) {
        next[cycle[j]] = cycle[(j + 1) % cycle.size()];
      }
    }
  }
  // Cycle rotation must land on a genuine permutation of the 3n slots;
  // a repeated or dropped slot silently voids the copy constraints.
  ZKDET_ASSERT(check::is_permutation(std::span<const std::uint32_t>(next), slots),
               "sigma is not a permutation of the wire slots");
  const auto encode = [&](std::uint32_t slot) {
    const std::size_t col = slot / n;
    const std::size_t row = slot % n;
    const Fr& w = pk.domain->element(row);
    if (col == 0) return w;
    if (col == 1) return pk.k1 * w;
    return pk.k2 * w;
  };
  std::vector<Fr> s1e(n), s2e(n), s3e(n);
  for (std::size_t row = 0; row < n; ++row) {
    s1e[row] = encode(next[row]);
    s2e[row] = encode(next[n + row]);
    s3e[row] = encode(next[2 * n + row]);
  }
  pk.s1_evals = s1e;
  pk.s2_evals = s2e;
  pk.s3_evals = s3e;
  pk.s1 = Polynomial::from_evaluations(std::move(s1e), *pk.domain);
  pk.s2 = Polynomial::from_evaluations(std::move(s2e), *pk.domain);
  pk.s3 = Polynomial::from_evaluations(std::move(s3e), *pk.domain);

  VerifyingKey vk;
  vk.n = n;
  vk.ell = pk.ell;
  vk.k1 = pk.k1;
  vk.k2 = pk.k2;
  {
    // Eight independent SRS-sized commitments: the bulk of preprocessing.
    const Polynomial* polys[8] = {&pk.qm, &pk.ql, &pk.qr, &pk.qo,
                                  &pk.qc, &pk.s1, &pk.s2, &pk.s3};
    G1* cms[8] = {&vk.cm_qm, &vk.cm_ql, &vk.cm_qr, &vk.cm_qo,
                  &vk.cm_qc, &vk.cm_s1, &vk.cm_s2, &vk.cm_s3};
    runtime::ThreadPool::instance().parallel_for(
        8, 1, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) *cms[i] = srs.commit(*polys[i]);
        });
  }
  vk.g2_gen = srs.g2_gen;
  vk.g2_tau = srs.g2_tau;
  pk.vk = vk;

  return KeyPairResult{std::move(pk), std::move(vk)};
}

std::optional<Proof> prove(const ProvingKey& pk, const ConstraintSystem& cs,
                           const Srs& srs, const std::vector<Fr>& witness,
                           crypto::Drbg& rng) {
  if (!cs.is_satisfied(witness)) return std::nullopt;
  runtime::ScopedTimer prove_timer(runtime::counters::prove_ns);
  auto& pool = runtime::ThreadPool::instance();
  const std::size_t n = pk.n;
  const EvaluationDomain& dom = *pk.domain;
  const EvaluationDomain& ext = *pk.ext_domain;
  const Fr shift = pk.coset_shift;

  // --- wire values per row ---
  std::vector<Fr> wa(n), wb(n), wc(n);
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      wa[i] = witness[pk.wire_a[i]];
      wb[i] = witness[pk.wire_b[i]];
      wc[i] = witness[pk.wire_c[i]];
    }
  });

  // --- public input polynomial: PI(w^i) = -x_i on the first ell rows ---
  const std::vector<Fr> pub = cs.extract_public_inputs(witness);
  std::vector<Fr> pi_evals(n, Fr::zero());
  for (std::size_t i = 0; i < pub.size(); ++i) pi_evals[i] = -pub[i];
  const Polynomial pi_poly = Polynomial::from_evaluations(pi_evals, dom);

  Transcript transcript("zkdet-plonk");
  pk.vk.bind_transcript(transcript);
  for (const Fr& x : pub) transcript.absorb_fr(x);

  // --- round 1: blinded wire polynomials ---
  const auto blind2 = [&](std::vector<Fr> evals, const Fr& b1, const Fr& b2) {
    Polynomial p = Polynomial::from_evaluations(std::move(evals), dom);
    std::vector<Fr>& c = p.coeffs();
    c.resize(std::max<std::size_t>(c.size(), n + 2), Fr::zero());
    c[0] -= b2;
    c[1] -= b1;
    c[n] += b2;
    c[n + 1] += b1;
    return p;
  };
  // Blinders are drawn on the job thread before the parallel region so
  // the rng stream is independent of scheduling.
  const Fr b1 = rng.random_fr(), b2 = rng.random_fr(), b3 = rng.random_fr();
  const Fr b4 = rng.random_fr(), b5 = rng.random_fr(), b6 = rng.random_fr();
  const std::vector<Fr>* wires[3] = {&wa, &wb, &wc};
  const Fr wire_blinds[3][2] = {{b1, b2}, {b3, b4}, {b5, b6}};
  std::array<Polynomial, 3> wire_polys;
  std::array<G1, 3> wire_cms;
  pool.parallel_for(3, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      wire_polys[i] =
          blind2(*wires[i], wire_blinds[i][0], wire_blinds[i][1]);
      wire_cms[i] = srs.commit(wire_polys[i]);
    }
  });
  const Polynomial& a_poly = wire_polys[0];
  const Polynomial& b_poly = wire_polys[1];
  const Polynomial& c_poly = wire_polys[2];

  Proof proof;
  proof.cm_a = wire_cms[0];
  proof.cm_b = wire_cms[1];
  proof.cm_c = wire_cms[2];
  transcript.absorb_g1(proof.cm_a);
  transcript.absorb_g1(proof.cm_b);
  transcript.absorb_g1(proof.cm_c);

  // --- round 2: permutation grand product ---
  const Fr beta = transcript.challenge("beta");
  const Fr gamma = transcript.challenge("gamma");

  std::vector<Fr> denoms(n);
  std::vector<Fr> numers(n);
  pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Fr& w = dom.element(i);
      numers[i] = (wa[i] + beta * w + gamma) *
                  (wb[i] + beta * pk.k1 * w + gamma) *
                  (wc[i] + beta * pk.k2 * w + gamma);
      denoms[i] = (wa[i] + beta * pk.s1_evals[i] + gamma) *
                  (wb[i] + beta * pk.s2_evals[i] + gamma) *
                  (wc[i] + beta * pk.s3_evals[i] + gamma);
    }
  });
  const std::vector<Fr> dinv = batch_inverse(denoms);
  std::vector<Fr> z_evals(n);
  z_evals[0] = Fr::one();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    z_evals[i + 1] = z_evals[i] * numers[i] * dinv[i];
  }
  ZKDET_ASSERT(
      check::grand_product_closes(z_evals[n - 1] * numers[n - 1] * dinv[n - 1]),
      "permutation grand product must close");

  const Fr b7 = rng.random_fr(), b8 = rng.random_fr(), b9 = rng.random_fr();
  Polynomial z_poly = Polynomial::from_evaluations(z_evals, dom);
  {
    std::vector<Fr>& c = z_poly.coeffs();
    c.resize(std::max<std::size_t>(c.size(), n + 3), Fr::zero());
    c[0] -= b9;
    c[1] -= b8;
    c[2] -= b7;
    c[n] += b9;
    c[n + 1] += b8;
    c[n + 2] += b7;
  }
  proof.cm_z = srs.commit(z_poly);
  transcript.absorb_g1(proof.cm_z);

  // --- round 3: quotient polynomial on an 8n coset ---
  const Fr alpha = transcript.challenge("alpha");

  const auto extend = [&](const Polynomial& p) {
    std::vector<Fr> c = p.coeffs();
    c.resize(ext.size(), Fr::zero());
    ext.coset_fft(c, shift);
    return c;
  };
  // The 14 coset extensions are independent; run them as one parallel
  // region (each inner FFT further splits when workers are idle).
  const Polynomial l1_poly{std::vector<Fr>(n, Fr::from_u64(n).inverse())};
  const Polynomial* ext_srcs[14] = {
      &a_poly, &b_poly, &c_poly, &z_poly, &pk.qm, &pk.ql,  &pk.qr,
      &pk.qo,  &pk.qc,  &pk.s1,  &pk.s2,  &pk.s3, &pi_poly, &l1_poly};
  std::array<std::vector<Fr>, 14> exts;
  pool.parallel_for(14, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) exts[i] = extend(*ext_srcs[i]);
  });
  const std::vector<Fr>& a_ext = exts[0];
  const std::vector<Fr>& b_ext = exts[1];
  const std::vector<Fr>& c_ext = exts[2];
  const std::vector<Fr>& z_ext = exts[3];
  const std::vector<Fr>& qm_ext = exts[4];
  const std::vector<Fr>& ql_ext = exts[5];
  const std::vector<Fr>& qr_ext = exts[6];
  const std::vector<Fr>& qo_ext = exts[7];
  const std::vector<Fr>& qc_ext = exts[8];
  const std::vector<Fr>& s1_ext = exts[9];
  const std::vector<Fr>& s2_ext = exts[10];
  const std::vector<Fr>& s3_ext = exts[11];
  const std::vector<Fr>& pi_ext = exts[12];
  const std::vector<Fr>& l1_ext = exts[13];

  const std::size_t m = ext.size();  // 8n
  const std::size_t stride = m / n;  // z(omega X) = rotate by stride

  // Z_H(shift * w8^i) cycles with period `stride`.
  std::vector<Fr> zh_inv_cycle(stride);
  {
    const Fr shift_n = shift.pow(U256{n});
    const Fr w8n = ext.element(n);  // primitive `stride`-th root
    std::vector<Fr> vals(stride);
    Fr cur = Fr::one();
    for (std::size_t j = 0; j < stride; ++j) {
      vals[j] = shift_n * cur - Fr::one();
      cur *= w8n;
    }
    zh_inv_cycle = batch_inverse(vals);
  }

  std::vector<Fr> t_ext(m);
  const Fr alpha2 = alpha * alpha;
  {
    runtime::ScopedTimer quotient_timer(runtime::counters::quotient_ns);
    pool.parallel_for(m, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const Fr x = shift * ext.element(i);
        const Fr& av = a_ext[i];
        const Fr& bv = b_ext[i];
        const Fr& cv = c_ext[i];
        const Fr& zv = z_ext[i];
        const Fr& zwv = z_ext[(i + stride) % m];

        Fr num = qm_ext[i] * av * bv + ql_ext[i] * av + qr_ext[i] * bv +
                 qo_ext[i] * cv + qc_ext[i] + pi_ext[i];
        num += alpha *
               ((av + beta * x + gamma) * (bv + beta * pk.k1 * x + gamma) *
                    (cv + beta * pk.k2 * x + gamma) * zv -
                (av + beta * s1_ext[i] + gamma) *
                    (bv + beta * s2_ext[i] + gamma) *
                    (cv + beta * s3_ext[i] + gamma) * zwv);
        num += alpha2 * (zv - Fr::one()) * l1_ext[i];
        t_ext[i] = num * zh_inv_cycle[i % stride];
      }
    });
  }
  ext.coset_ifft(t_ext, shift);
  Polynomial t_poly{std::move(t_ext)};
  t_poly.trim();
  ZKDET_ASSERT(t_poly.degree() <= 3 * n + 5, "quotient degree overflow");

  // Split into three chunks of (at most) n coefficients, with the extra
  // cross-boundary blinders b10, b11 for hiding.
  const Fr b10 = rng.random_fr(), b11 = rng.random_fr();
  std::vector<Fr> tc = t_poly.coeffs();
  tc.resize(3 * n + 6, Fr::zero());
  std::vector<Fr> t_lo(tc.begin(), tc.begin() + static_cast<std::ptrdiff_t>(n));
  std::vector<Fr> t_mid(tc.begin() + static_cast<std::ptrdiff_t>(n),
                        tc.begin() + static_cast<std::ptrdiff_t>(2 * n));
  std::vector<Fr> t_hi(tc.begin() + static_cast<std::ptrdiff_t>(2 * n), tc.end());
  t_lo.push_back(b10);   // + b10 X^n
  t_mid[0] -= b10;
  t_mid.push_back(b11);  // + b11 X^n
  t_hi[0] -= b11;
  {
    const std::vector<Fr>* chunks[3] = {&t_lo, &t_mid, &t_hi};
    std::array<G1, 3> t_cms;
    pool.parallel_for(3, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) t_cms[i] = srs.commit(*chunks[i]);
    });
    proof.cm_t_lo = t_cms[0];
    proof.cm_t_mid = t_cms[1];
    proof.cm_t_hi = t_cms[2];
  }
  transcript.absorb_g1(proof.cm_t_lo);
  transcript.absorb_g1(proof.cm_t_mid);
  transcript.absorb_g1(proof.cm_t_hi);

  // --- round 4: evaluations at zeta ---
  const Fr zeta = transcript.challenge("zeta");
  {
    const Polynomial* eval_srcs[6] = {&a_poly, &b_poly, &c_poly,
                                      &pk.s1,  &pk.s2,  &z_poly};
    const Fr zeta_omega = zeta * dom.omega();
    const Fr points[6] = {zeta, zeta, zeta, zeta, zeta, zeta_omega};
    std::array<Fr, 6> evals_out;
    pool.parallel_for(6, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        evals_out[i] = eval_srcs[i]->evaluate(points[i]);
      }
    });
    proof.eval_a = evals_out[0];
    proof.eval_b = evals_out[1];
    proof.eval_c = evals_out[2];
    proof.eval_s1 = evals_out[3];
    proof.eval_s2 = evals_out[4];
    proof.eval_z_omega = evals_out[5];
  }
  transcript.absorb_fr(proof.eval_a);
  transcript.absorb_fr(proof.eval_b);
  transcript.absorb_fr(proof.eval_c);
  transcript.absorb_fr(proof.eval_s1);
  transcript.absorb_fr(proof.eval_s2);
  transcript.absorb_fr(proof.eval_z_omega);

  // --- round 5: linearization polynomial and opening proofs ---
  const Fr v = transcript.challenge("v");

  const Fr zeta_n = zeta.pow(U256{n});
  const Fr zh_zeta = zeta_n - Fr::one();
  const Fr l1_zeta =
      zh_zeta * (Fr::from_u64(n) * (zeta - Fr::one())).inverse();
  const Fr pi_zeta = pi_poly.evaluate(zeta);

  Polynomial r_poly = pk.qm.scaled(proof.eval_a * proof.eval_b);
  r_poly += pk.ql.scaled(proof.eval_a);
  r_poly += pk.qr.scaled(proof.eval_b);
  r_poly += pk.qo.scaled(proof.eval_c);
  r_poly += pk.qc;
  r_poly += Polynomial::constant(pi_zeta);

  const Fr id_prod = (proof.eval_a + beta * zeta + gamma) *
                     (proof.eval_b + beta * pk.k1 * zeta + gamma) *
                     (proof.eval_c + beta * pk.k2 * zeta + gamma);
  r_poly += z_poly.scaled(alpha * id_prod);

  const Fr sig_ab = (proof.eval_a + beta * proof.eval_s1 + gamma) *
                    (proof.eval_b + beta * proof.eval_s2 + gamma);
  // -(alpha * sig_ab * z_omega) * (c_bar + gamma + beta * s3(X))
  r_poly -= (pk.s3.scaled(beta) +
             Polynomial::constant(proof.eval_c + gamma))
                .scaled(alpha * sig_ab * proof.eval_z_omega);

  r_poly += z_poly.scaled(alpha2 * l1_zeta);
  r_poly -= Polynomial::constant(alpha2 * l1_zeta);

  r_poly -= (Polynomial{t_lo} + Polynomial{t_mid}.scaled(zeta_n) +
             Polynomial{t_hi}.scaled(zeta_n * zeta_n))
                .scaled(zh_zeta);

  ZKDET_ASSERT(r_poly.evaluate(zeta).is_zero(), "linearization must vanish");

  Polynomial w_zeta_num = r_poly;
  const Polynomial* opened[5] = {&a_poly, &b_poly, &c_poly, &pk.s1, &pk.s2};
  const Fr evals[5] = {proof.eval_a, proof.eval_b, proof.eval_c, proof.eval_s1,
                       proof.eval_s2};
  Fr vpow = v;
  for (int i = 0; i < 5; ++i) {
    w_zeta_num += (*opened[i] - Polynomial::constant(evals[i])).scaled(vpow);
    vpow *= v;
  }
  std::array<G1, 2> opening_cms;
  pool.parallel_for(2, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i == 0) {
        opening_cms[0] = srs.commit(w_zeta_num.divide_by_linear(zeta));
      } else {
        opening_cms[1] =
            srs.commit((z_poly - Polynomial::constant(proof.eval_z_omega))
                           .divide_by_linear(zeta * dom.omega()));
      }
    }
  });
  proof.w_zeta = opening_cms[0];
  proof.w_zeta_omega = opening_cms[1];

  return proof;
}

std::optional<PairingCheck> verify_prepare(
    const VerifyingKey& vk, const std::vector<Fr>& public_inputs,
    const Proof& proof) {
  if (public_inputs.size() != vk.ell) return std::nullopt;
  const std::size_t n = vk.n;

  // Commitments must be on the curve (cheap structural validation; G1
  // has cofactor 1, so on-curve is the full subgroup check).
  for (const G1* p : {&proof.cm_a, &proof.cm_b, &proof.cm_c, &proof.cm_z,
                      &proof.cm_t_lo, &proof.cm_t_mid, &proof.cm_t_hi,
                      &proof.w_zeta, &proof.w_zeta_omega}) {
    if (!check::in_g1(*p)) return std::nullopt;
  }
  // A verifying key with G2 elements off the twist or outside the
  // order-r subgroup cannot anchor a sound pairing check.
  if (!check::in_g2(vk.g2_gen) || !check::in_g2(vk.g2_tau)) {
    return std::nullopt;
  }

  Transcript transcript("zkdet-plonk");
  vk.bind_transcript(transcript);
  for (const Fr& x : public_inputs) transcript.absorb_fr(x);
  transcript.absorb_g1(proof.cm_a);
  transcript.absorb_g1(proof.cm_b);
  transcript.absorb_g1(proof.cm_c);
  const Fr beta = transcript.challenge("beta");
  const Fr gamma = transcript.challenge("gamma");
  transcript.absorb_g1(proof.cm_z);
  const Fr alpha = transcript.challenge("alpha");
  transcript.absorb_g1(proof.cm_t_lo);
  transcript.absorb_g1(proof.cm_t_mid);
  transcript.absorb_g1(proof.cm_t_hi);
  const Fr zeta = transcript.challenge("zeta");
  transcript.absorb_fr(proof.eval_a);
  transcript.absorb_fr(proof.eval_b);
  transcript.absorb_fr(proof.eval_c);
  transcript.absorb_fr(proof.eval_s1);
  transcript.absorb_fr(proof.eval_s2);
  transcript.absorb_fr(proof.eval_z_omega);
  const Fr v = transcript.challenge("v");
  transcript.absorb_g1(proof.w_zeta);
  transcript.absorb_g1(proof.w_zeta_omega);
  const Fr u = transcript.challenge("u");

  const Fr zeta_n = zeta.pow(U256{n});
  const Fr zh_zeta = zeta_n - Fr::one();
  if (zh_zeta.is_zero()) return std::nullopt;  // zeta in H: reject (negligible)
  const Fr l1_zeta =
      zh_zeta * (Fr::from_u64(n) * (zeta - Fr::one())).inverse();

  // PI(zeta) = sum_i -x_i * L_i(zeta) — O(ell) field work with a single
  // batched inversion.
  Fr pi_zeta = Fr::zero();
  if (!public_inputs.empty()) {
    // L_i(zeta) = w^i * Z_H(zeta) / (n (zeta - w^i))
    EvaluationDomain dom(n);
    const Fr n_inv = Fr::from_u64(n).inverse();
    std::vector<Fr> dens(public_inputs.size());
    for (std::size_t i = 0; i < public_inputs.size(); ++i) {
      dens[i] = zeta - dom.element(i);
    }
    const std::vector<Fr> inv = batch_inverse(dens);
    for (std::size_t i = 0; i < public_inputs.size(); ++i) {
      pi_zeta -= public_inputs[i] * dom.element(i) * zh_zeta * n_inv * inv[i];
    }
  }

  const Fr alpha2 = alpha * alpha;
  const Fr sig_ab = (proof.eval_a + beta * proof.eval_s1 + gamma) *
                    (proof.eval_b + beta * proof.eval_s2 + gamma);
  const Fr r0 = pi_zeta - l1_zeta * alpha2 -
                alpha * sig_ab * (proof.eval_c + gamma) * proof.eval_z_omega;

  const Fr id_prod = (proof.eval_a + beta * zeta + gamma) *
                     (proof.eval_b + beta * vk.k1 * zeta + gamma) *
                     (proof.eval_c + beta * vk.k2 * zeta + gamma);

  G1 d = vk.cm_qm.mul(proof.eval_a * proof.eval_b);
  d += vk.cm_ql.mul(proof.eval_a);
  d += vk.cm_qr.mul(proof.eval_b);
  d += vk.cm_qo.mul(proof.eval_c);
  d += vk.cm_qc;
  d += proof.cm_z.mul(alpha * id_prod + alpha2 * l1_zeta + u);
  d = d - vk.cm_s3.mul(alpha * beta * sig_ab * proof.eval_z_omega);
  d = d - (proof.cm_t_lo + proof.cm_t_mid.mul(zeta_n) +
           proof.cm_t_hi.mul(zeta_n * zeta_n))
              .mul(zh_zeta);

  G1 f = d;
  const G1* cms[5] = {&proof.cm_a, &proof.cm_b, &proof.cm_c, &vk.cm_s1,
                      &vk.cm_s2};
  const Fr evals[5] = {proof.eval_a, proof.eval_b, proof.eval_c, proof.eval_s1,
                       proof.eval_s2};
  Fr vpow = v;
  Fr e_scalar = -r0;
  for (int i = 0; i < 5; ++i) {
    f += cms[i]->mul(vpow);
    e_scalar += vpow * evals[i];
    vpow *= v;
  }
  e_scalar += u * proof.eval_z_omega;
  const G1 e = G1::generator().mul(e_scalar);

  EvaluationDomain dom(n);
  const Fr omega = dom.omega();
  PairingCheck check;
  check.lhs = proof.w_zeta + proof.w_zeta_omega.mul(u);
  check.rhs = proof.w_zeta.mul(zeta) +
              proof.w_zeta_omega.mul(u * zeta * omega) + f - e;
  return check;
}

bool verify(const VerifyingKey& vk, const std::vector<Fr>& public_inputs,
            const Proof& proof) {
  runtime::ScopedTimer verify_timer(runtime::counters::verify_ns);
  const auto check = verify_prepare(vk, public_inputs, proof);
  if (!check) return false;
  return ec::pairing_product_is_one(check->lhs, vk.g2_tau, -check->rhs,
                                    vk.g2_gen);
}

bool BatchResult::all_ok() const {
  for (const std::uint8_t v : ok) {
    if (v == 0) return false;
  }
  return true;
}

std::size_t BatchResult::invalid_count() const {
  std::size_t n = 0;
  for (const std::uint8_t v : ok) n += (v == 0) ? 1 : 0;
  return n;
}

namespace {

// One weighted fold over `idx` (indices into `entries`/`checks`), all
// sharing an SRS: accept iff the random linear combination of the
// entries' pairing checks passes one 2-pairing product. A fresh
// transcript is built per call so bisection sub-batches draw
// independent weights; every entry contributes a challenge-derived
// weight (no fixed r_0 = 1) bound to its position, statement and proof
// bytes, so a repeated entry cannot cancel against itself.
bool fold_check(std::span<const BatchEntry> entries,
                std::span<const std::optional<PairingCheck>> checks,
                std::span<const std::size_t> idx) {
  const VerifyingKey& vk0 = *entries[idx.front()].vk;
  if (idx.size() == 1) {
    // Degenerate fold: run exactly the pairing check verify() runs, so
    // a batch of one is outcome-identical to individual verification.
    const PairingCheck& c = *checks[idx.front()];
    return ec::pairing_product_is_one(c.lhs, vk0.g2_tau, -c.rhs, vk0.g2_gen);
  }
  Transcript t("zkdet-batch-verify");
  t.absorb_u64(idx.size());
  for (const std::size_t i : idx) {
    t.absorb_u64(i);
    entries[i].vk->bind_transcript(t);
    for (const Fr& x : *entries[i].public_inputs) t.absorb_fr(x);
    t.absorb_bytes(entries[i].proof->to_bytes());
  }
  G1 lhs = G1::identity();
  G1 rhs = G1::identity();
  for (const std::size_t i : idx) {
    const Fr r = t.challenge("batch-r");
    lhs += checks[i]->lhs.mul(r);
    rhs += checks[i]->rhs.mul(r);
  }
  return ec::pairing_product_is_one(lhs, vk0.g2_tau, -rhs, vk0.g2_gen);
}

}  // namespace

BatchResult batch_verify_attributed(std::span<const BatchEntry> entries) {
  BatchResult out;
  out.ok.assign(entries.size(), 0);
  if (entries.empty()) return out;

  // Per-proof scalar work is independent; prepare in parallel. A
  // structural failure (wrong public-input count, off-curve point,
  // non-subgroup G2) is attributed to its entry here instead of
  // rejecting the whole batch.
  std::vector<std::optional<PairingCheck>> checks(entries.size());
  runtime::ThreadPool::instance().parallel_for(
      entries.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          checks[i] = verify_prepare(*entries[i].vk, *entries[i].public_inputs,
                                     *entries[i].proof);
        }
      });

  // Group surviving entries by SRS in first-appearance order: the fold
  // is only sound within one (g2_gen, g2_tau) pair, but an entry under
  // a foreign SRS is its own (attributable) group, not a batch error.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!checks[i]) continue;
    const VerifyingKey& vk = *entries[i].vk;
    bool placed = false;
    for (auto& g : groups) {
      const VerifyingKey& gvk = *entries[g.front()].vk;
      if (vk.g2_gen == gvk.g2_gen && vk.g2_tau == gvk.g2_tau) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }
  out.srs_groups = groups.size();

  // Fold each group; on failure bisect to attribution. A sub-batch of
  // one that fails is the (an) offending entry; everything in a passing
  // sub-batch is accepted. Worst case (all forged) this costs 2N-1
  // pairing products — still linear, and only paid under attack.
  const std::function<void(std::span<const std::size_t>)> attribute =
      [&](std::span<const std::size_t> idx) {
        ++out.pairing_checks;
        if (fold_check(entries, checks, idx)) {
          for (const std::size_t i : idx) out.ok[i] = 1;
          return;
        }
        if (idx.size() == 1) return;  // attributed invalid (ok stays 0)
        const std::size_t mid = idx.size() / 2;
        attribute(idx.first(mid));
        attribute(idx.subspan(mid));
      };
  for (const auto& g : groups) attribute(g);

  runtime::counters::batch_fold_checks.fetch_add(out.pairing_checks,
                                                 std::memory_order_relaxed);
  runtime::counters::batch_entries_folded.fetch_add(entries.size(),
                                                    std::memory_order_relaxed);
  runtime::counters::batch_invalid_attributed.fetch_add(
      out.invalid_count(), std::memory_order_relaxed);
  return out;
}

bool batch_verify(std::span<const BatchEntry> entries) {
  return batch_verify_attributed(entries).all_ok();
}

}  // namespace zkdet::plonk
