// Plonk (GWC19, ePrint 2019/953) over BN-254 with KZG commitments.
//
// The paper's NIZK backend: universal SRS, O(n log n) prover, constant
// proof size (9 G1 + 6 Fr = 768 bytes raw) and constant-time verifier
// (2 pairings + O(1) group operations + an O(ell) field-only public
// input evaluation) — the properties Figs. 5-7 measure.
//
// preprocess() builds the proving/verifying keys for a constraint
// system; prove()/verify() implement the 5-round protocol made
// non-interactive with a SHA-256 Fiat-Shamir transcript.
#pragma once

#include <memory>
#include <optional>

#include "plonk/constraint_system.hpp"
#include "plonk/srs.hpp"
#include "plonk/transcript.hpp"
#include "ff/ntt.hpp"
#include "ff/polynomial.hpp"

namespace zkdet::plonk {

using ff::EvaluationDomain;
using ff::Polynomial;

struct Proof {
  G1 cm_a, cm_b, cm_c;          // wire commitments
  G1 cm_z;                      // permutation grand product
  G1 cm_t_lo, cm_t_mid, cm_t_hi;  // split quotient
  G1 w_zeta, w_zeta_omega;      // KZG opening proofs
  Fr eval_a, eval_b, eval_c;    // wire evaluations at zeta
  Fr eval_s1, eval_s2;          // sigma evaluations at zeta
  Fr eval_z_omega;              // z(zeta * omega)

  // Raw serialized size: 9 uncompressed G1 + 6 Fr.
  [[nodiscard]] static constexpr std::size_t size_bytes() {
    return 9 * 64 + 6 * 32;
  }
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  // Rejects wrong-length encodings, off-curve points and non-canonical
  // field elements.
  [[nodiscard]] static std::optional<Proof> from_bytes(
      std::span<const std::uint8_t> bytes);
};

struct VerifyingKey {
  std::size_t n = 0;    // domain size
  std::size_t ell = 0;  // number of public inputs
  Fr k1, k2;            // wire cosets
  G1 cm_qm, cm_ql, cm_qr, cm_qo, cm_qc;
  G1 cm_s1, cm_s2, cm_s3;
  G2 g2_gen, g2_tau;

  void bind_transcript(Transcript& t) const;
};

struct ProvingKey {
  std::size_t n = 0;
  std::size_t ell = 0;
  Fr k1, k2;
  std::shared_ptr<EvaluationDomain> domain;      // size n
  std::shared_ptr<EvaluationDomain> ext_domain;  // size 8n (quotient coset)
  Fr coset_shift;

  Polynomial qm, ql, qr, qo, qc;  // selector polynomials
  Polynomial s1, s2, s3;          // sigma polynomials
  std::vector<Fr> s1_evals, s2_evals, s3_evals;  // on the n-domain

  // Per-row variable ids for the three wire columns (padded to n rows).
  std::vector<Var> wire_a, wire_b, wire_c;

  VerifyingKey vk;
};

struct KeyPairResult {
  ProvingKey pk;
  VerifyingKey vk;
};

// Builds keys for `cs` against `srs`. Fails (nullopt) if the SRS is too
// small for the circuit's padded domain.
std::optional<KeyPairResult> preprocess(const ConstraintSystem& cs,
                                        const Srs& srs);

// Produces a proof for `witness` (witness[i] = value of variable i).
// The witness must satisfy the circuit; violations are detected and
// reported as nullopt rather than producing an invalid proof.
std::optional<Proof> prove(const ProvingKey& pk, const ConstraintSystem& cs,
                           const Srs& srs, const std::vector<Fr>& witness,
                           crypto::Drbg& rng);

// Constant-time (in circuit size) verification.
bool verify(const VerifyingKey& vk, const std::vector<Fr>& public_inputs,
            const Proof& proof);

// The deferred pairing check a proof reduces to after all transcript and
// scalar work: accept iff e(lhs, [tau]_2) * e(-rhs, [1]_2) == 1.
struct PairingCheck {
  G1 lhs, rhs;
};

// Runs every verification step except the final pairing; nullopt on any
// structural failure (wrong public input count, off-curve point, zeta in
// the domain). verify() == prepare + one pairing product.
std::optional<PairingCheck> verify_prepare(const VerifyingKey& vk,
                                           const std::vector<Fr>& public_inputs,
                                           const Proof& proof);

// One proof in a batch-verification call. Pointed-to data must outlive
// the call; verifying keys may differ per entry. Entries sharing the
// SRS (identical [1]_2 / [tau]_2) fold into one pairing product;
// entries under a foreign SRS are grouped and checked separately
// rather than poisoning the batch.
struct BatchEntry {
  const VerifyingKey* vk = nullptr;
  const std::vector<Fr>* public_inputs = nullptr;
  const Proof* proof = nullptr;
};

// Per-entry outcome of an attributed batch verification.
struct BatchResult {
  // ok[i] != 0 iff entry i verifies (same verdict plain verify() would
  // return for that entry alone).
  std::vector<std::uint8_t> ok;
  // 2-pairing products actually evaluated: one per all-valid SRS group,
  // plus the bisection probes needed to attribute failures.
  std::size_t pairing_checks = 0;
  // Distinct (g2_gen, g2_tau) groups folded.
  std::size_t srs_groups = 0;

  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] std::size_t invalid_count() const;
};

// Attributed batch verification: folds the per-proof pairing checks
// with Fiat-Shamir-derived random weights into one 2-pairing product
// per SRS group, and on fold failure bisects (fresh transcript per
// sub-batch) until every invalid entry is individually attributed —
// honest entries in a batch with a forged one still verify. Weights are
// bound to every statement AND its batch position, so duplicate entries
// draw distinct weights and cannot cancel. A batch of one skips the
// fold and runs the exact pairing check verify() runs. A forged proof
// escapes a fold only with probability ~1/r.
BatchResult batch_verify_attributed(std::span<const BatchEntry> entries);

// Accepts iff every entry verifies (batch_verify_attributed().all_ok()).
bool batch_verify(std::span<const BatchEntry> entries);

}  // namespace zkdet::plonk
