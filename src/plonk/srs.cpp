#include "plonk/srs.hpp"

#include "check/check.hpp"

namespace zkdet::plonk {

Srs Srs::setup(std::size_t max_degree, crypto::Drbg& rng) {
  Srs srs;
  const Fr tau = rng.random_fr();  // toxic waste; dropped on return
  srs.g1_powers.reserve(max_degree + 1);
  Fr cur = Fr::one();
  for (std::size_t i = 0; i <= max_degree; ++i) {
    srs.g1_powers.push_back(ec::g1_mul_generator(cur));
    cur *= tau;
  }
  srs.g2_gen = G2::generator();
  srs.g2_tau = srs.g2_gen.mul(tau);
  return srs;
}

std::span<const ec::G1Affine> Srs::g1_powers_affine() const {
  AffineCache& cache = *affine_cache_;
  if (!cache.ready.load(std::memory_order_acquire)) {
    const MutexLock lk(cache.mu);
    if (!cache.ready.load(std::memory_order_relaxed)) {
      cache.table = ec::batch_normalize(std::span<const G1>(g1_powers));
      cache.ready.store(true, std::memory_order_release);
    }
  }
  return cache.table;
}

G1 Srs::commit(const Polynomial& p) const { return commit(p.coeffs()); }

G1 Srs::commit(std::span<const Fr> coeffs) const {
  // The zero polynomial commits to the identity; returning early also
  // keeps the failure message below from formatting `0 - 1`.
  if (coeffs.empty()) return G1::identity();
  ZKDET_CHECK(coeffs.size() <= g1_powers.size(),
              "SRS too small: committing to degree ", coeffs.size() - 1,
              " with ", g1_powers.size(), " powers");
  return ec::msm(coeffs, g1_powers_affine().subspan(0, coeffs.size()));
}

}  // namespace zkdet::plonk
