// KZG structured reference string (the "universal setup").
//
// The paper uses the Perpetual Powers of Tau ceremony output; here the
// SRS is generated from local randomness and the trapdoor discarded
// (DESIGN.md substitution #3). A single SRS of size N supports every
// circuit with at most N-6 constraints — the "universal & updatable"
// property that motivates Plonk in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/rng.hpp"
#include "ec/curve.hpp"
#include "ec/msm.hpp"
#include "ff/polynomial.hpp"

namespace zkdet::plonk {

using ec::G1;
using ec::G2;
using ff::Fr;
using ff::Polynomial;

struct Srs {
  std::vector<G1> g1_powers;  // [tau^i]_1, i in [0, max_degree]
  G2 g2_gen;                  // [1]_2
  G2 g2_tau;                  // [tau]_2

  [[nodiscard]] static Srs setup(std::size_t max_degree, crypto::Drbg& rng);

  [[nodiscard]] std::size_t max_degree() const { return g1_powers.size() - 1; }

  // KZG commitment to a coefficient-form polynomial.
  [[nodiscard]] G1 commit(const Polynomial& p) const;
  [[nodiscard]] G1 commit(std::span<const Fr> coeffs) const;
};

}  // namespace zkdet::plonk
