// KZG structured reference string (the "universal setup").
//
// The paper uses the Perpetual Powers of Tau ceremony output; here the
// SRS is generated from local randomness and the trapdoor discarded
// (DESIGN.md substitution #3). A single SRS of size N supports every
// circuit with at most N-6 constraints — the "universal & updatable"
// property that motivates Plonk in the paper.
//
// commit() runs the affine-base MSM against a lazily built,
// batch-normalized mirror of g1_powers: the table is normalized once
// per SRS (one field inversion for the whole vector) and shared by
// every commitment of every proof, instead of paying a per-commit
// Jacobian-input normalization.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "check/mutex.hpp"
#include "crypto/rng.hpp"
#include "ec/curve.hpp"
#include "ec/msm.hpp"
#include "ff/polynomial.hpp"

namespace zkdet::plonk {

using ec::G1;
using ec::G2;
using ff::Fr;
using ff::Polynomial;

struct Srs {
  std::vector<G1> g1_powers;  // [tau^i]_1, i in [0, max_degree]
  G2 g2_gen;                  // [1]_2
  G2 g2_tau;                  // [tau]_2

  [[nodiscard]] static Srs setup(std::size_t max_degree, crypto::Drbg& rng);

  // Largest committable degree; 0 for an empty (default-constructed)
  // SRS — the unguarded `size() - 1` underflowed to 2^64-1 and let
  // preprocess() walk past the end of g1_powers.
  [[nodiscard]] std::size_t max_degree() const {
    return g1_powers.empty() ? 0 : g1_powers.size() - 1;
  }

  // KZG commitment to a coefficient-form polynomial; the zero
  // polynomial (empty coefficients) commits to the identity.
  [[nodiscard]] G1 commit(const Polynomial& p) const;
  [[nodiscard]] G1 commit(std::span<const Fr> coeffs) const;

  // Batch-normalized affine mirror of g1_powers, built on first use
  // (thread-safe) and shared across copies of this Srs. g1_powers must
  // not be mutated after the first call.
  [[nodiscard]] std::span<const ec::G1Affine> g1_powers_affine() const;

 private:
  // Double-checked publication (replaces std::call_once so the build
  // step participates in the annotated lock order): `table` is written
  // under `mu`, then published by the release store to `ready`; readers
  // that observe `ready` (acquire) use the table without the lock, so
  // the field itself is intentionally not ZKDET_GUARDED_BY(mu).
  struct AffineCache {
    Mutex mu{check::LockLevel::kSrsCache, "srs.affine-cache"};
    std::atomic<bool> ready{false};
    std::vector<ec::G1Affine> table;
  };
  std::shared_ptr<AffineCache> affine_cache_ = std::make_shared<AffineCache>();
};

}  // namespace zkdet::plonk
