#include "plonk/transcript.hpp"

namespace zkdet::plonk {

using crypto::Sha256;

Transcript::Transcript(std::string_view protocol_label) {
  Sha256 h;
  h.update(std::string(protocol_label));
  state_ = h.finalize();
}

void Transcript::absorb_bytes(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(state_);
  h.update(data);
  state_ = h.finalize();
}

void Transcript::absorb_u64(std::uint64_t v) {
  std::array<std::uint8_t, 8> b{};
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (i * 8));
  absorb_bytes(b);
}

void Transcript::absorb_fr(const Fr& v) {
  absorb_bytes(ff::u256_to_bytes(v.to_canonical()));
}

void Transcript::absorb_g1(const G1& p) {
  const auto bytes = ec::g1_to_bytes(p);
  absorb_bytes(bytes);
}

Fr Transcript::challenge(std::string_view label) {
  Sha256 h;
  h.update(state_);
  h.update(std::string(label));
  state_ = h.finalize();
  return Fr::reduce_from(ff::u256_from_bytes(state_));
}

}  // namespace zkdet::plonk
