// Fiat-Shamir transcript (SHA-256 chaining).
//
// Both prover and verifier drive an identical Transcript; every absorbed
// message updates the chained state, and challenges are squeezed from it
// so they bind to the whole interaction prefix.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/sha256.hpp"
#include "ec/curve.hpp"
#include "ff/bn254.hpp"

namespace zkdet::plonk {

using ec::G1;
using ff::Fr;

class Transcript {
 public:
  explicit Transcript(std::string_view protocol_label);

  void absorb_bytes(std::span<const std::uint8_t> data);
  void absorb_u64(std::uint64_t v);
  void absorb_fr(const Fr& v);
  void absorb_g1(const G1& p);

  // Deterministic challenge bound to everything absorbed so far; the
  // label also separates multiple challenges squeezed back to back.
  [[nodiscard]] Fr challenge(std::string_view label);

 private:
  std::array<std::uint8_t, 32> state_{};
};

}  // namespace zkdet::plonk
