#include "replication/follower.hpp"

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "runtime/stats.hpp"

namespace zkdet::replication {

Follower::Follower(std::string dir, Link& link, Config cfg)
    : dir_(std::move(dir)), link_(link), cfg_(cfg) {
  // verify_hashes on: a follower never trusts its own disk more than it
  // trusts the stream — a forked image must not come back from a crash.
  auto loaded = ledger::load_dir(dir_, /*verify_hashes=*/true);
  const MutexLock lk(mu_);
  image_ = std::move(loaded.image);
  durable_seq_ = image_.seq;
  segment_ = loaded.head_segment;
  // Batched durability: records are fsynced once per pump, right before
  // the ack that makes them count. Reviewed apply-path writer: every
  // append through it is followed by sync + durable_seq_ advance.
  wal_.emplace(  // zkdet-lint: allow(untracked-watermark)
      ledger::File::open_append(dir_ + "/" + ledger::segment_name(segment_)),
      /*fsync_each_append=*/false);
  if (loaded.fresh_segment) ledger::sync_dir(dir_);
  send_ack();  // announce the watermark so the shipper knows where to start
}

void Follower::pump() {
  const MutexLock lk(mu_);
  if (promoted_) {
    throw ledger::IoError("replication: pumping a promoted follower (" +
                          dir_ + ")");
  }
  std::size_t applied = 0;
  while (auto datagram = link_.recv_at_follower()) {
    if (failed_) continue;  // drain and discard; we already fail-stopped
    const auto frame = decode_frame(*datagram);
    if (!frame) continue;  // damaged in flight: treated as lost, re-shipped
    switch (frame->type) {
      case FrameType::kSnapshot:
        apply_snapshot(*frame);
        break;
      case FrameType::kRecord:
        if (apply_record_frame(*frame)) ++applied;
        break;
      case FrameType::kFailStop:
        failed_ = true;
        diagnostic_ = "primary fail-stop: " + frame->text;
        break;
      case FrameType::kAck:
        break;  // not meaningful in the ship direction
    }
  }
  if (applied > 0 && wal_.has_value()) {
    // Durability barrier: only now do the applied records count toward
    // the acked watermark.
    wal_->sync();
    durable_seq_ = image_.seq;
    runtime::counters::repl_records_applied.fetch_add(
        applied, std::memory_order_relaxed);
  }
  if (!failed_) send_ack();
}

void Follower::apply_snapshot(const Frame& frame) {
  if (frame.seq <= image_.seq) return;  // stale bootstrap: already past it
  try {
    auto snap = ledger::install_snapshot_bytes(dir_, frame.bytes);
    // The snapshot supersedes everything this follower had: drop the
    // old WAL segments and start a fresh one past the old head.
    wal_.reset();
    for (const auto& name : ledger::list_dir(dir_)) {
      if (ledger::parse_segment_name(name)) {
        ledger::remove_file(dir_ + "/" + name);
      }
    }
    image_ = ledger::ReplayImage{};
    image_.blocks = std::move(snap.blocks);
    image_.balances = std::move(snap.balances);
    image_.account_keys = std::move(snap.account_keys);
    image_.contracts = std::move(snap.contracts);
    image_.seq = snap.wal_seq;
    segment_ += 1;
    // Reviewed: fresh apply-path writer for the post-snapshot segment.
    wal_.emplace(  // zkdet-lint: allow(untracked-watermark)
        ledger::File::open_append(dir_ + "/" + ledger::segment_name(segment_)),
        /*fsync_each_append=*/false);
    ledger::sync_dir(dir_);
    durable_seq_ = image_.seq;
  } catch (const ledger::IoError& e) {
    fail_stop(std::string("shipped snapshot rejected: ") + e.what());
  }
}

bool Follower::apply_record_frame(const Frame& frame) {
  // Fail-point: the follower process dies mid-apply. Un-acked records
  // are re-shipped to the restarted incarnation and skipped
  // idempotently if they made it to disk.
  if (fault::fire(fault::points::kReplFollowerCrash)) {
    throw ledger::CrashInjected(fault::points::kReplFollowerCrash);
  }
  if (frame.seq <= image_.seq) return false;  // duplicate: idempotent skip
  if (frame.seq != image_.seq + 1) return false;  // gap: wait for re-ship
  try {
    // verify_hashes on: content hash + prev-link checked against our
    // tip. A mismatch is divergence — fail-stop, never apply.
    image_.apply_record(frame.bytes, "repl:" + dir_, /*verify_hashes=*/true);
    // The one raw WAL write in the replication subsystem: persisting a
    // record that just passed verification, on the shipping path.
    wal_->append(frame.bytes);  // zkdet-lint: allow(untracked-watermark)
  } catch (const ledger::IoError& e) {
    fail_stop(e.what());
    return false;
  }
  return true;
}

void Follower::fail_stop(const std::string& why) {
  failed_ = true;
  diagnostic_ = why;
  runtime::counters::repl_failstops.fetch_add(1, std::memory_order_relaxed);
  Frame f;
  f.type = FrameType::kFailStop;
  f.seq = durable_seq_;
  f.height = image_.height();
  if (!image_.blocks.empty()) f.tip_hash = image_.blocks.back().hash;
  f.text = why;
  link_.send_to_primary(encode_frame(f));
}

void Follower::send_ack() {
  Frame f;
  f.type = FrameType::kAck;
  f.seq = durable_seq_;
  f.height = image_.height();
  if (!image_.blocks.empty()) f.tip_hash = image_.blocks.back().hash;
  link_.send_to_primary(encode_frame(f));
}

std::string Follower::prepare_promotion() {
  const MutexLock lk(mu_);
  if (failed_) {
    // A diverged replica must never become the primary: promoting it
    // would turn a detected fork into an authoritative one.
    throw ledger::IoError("replication: refusing to promote follower (" +
                          dir_ + "): " + diagnostic_);
  }
  if (promoted_) {
    throw ledger::IoError("replication: follower already promoted (" + dir_ +
                          ")");
  }
  promoted_ = true;
  if (wal_.has_value()) {
    wal_->sync();
    durable_seq_ = image_.seq;
    wal_.reset();
  }
  // Cut anything past the durable watermark (a torn tail from a crash
  // mid-append); the new primary replays exactly the verified prefix.
  ledger::truncate_wal_after(dir_, durable_seq_);
  return dir_;
}

}  // namespace zkdet::replication
