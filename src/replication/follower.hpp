// Replication follower: applies the primary's shipped WAL stream to
// its own directory and acknowledges its durable watermark.
//
// A follower is a warm standby, not a second chain: it holds a
// ledger::ReplayImage (the same fold Ledger recovery uses) plus its own
// WAL write head, and every applied record goes through
// ReplayImage::apply_record with hash verification ON. Any record that
// does not extend the follower's tip self-consistently — wrong content
// hash, broken prev-link, undecodable body — is divergence, and the
// follower fail-stops: it marks itself failed, reports a kFailStop
// frame upstream, and refuses promotion. A diverged replica that kept
// serving would be a silent fork, the one failure mode this subsystem
// exists to rule out.
//
// Durability mirrors the primary: a record is acked only after it has
// been appended to the follower's WAL and fsynced, so an acked sequence
// survives a follower crash, and the primary may treat acked == safe.
// Gap frames (a sequence above watermark+1, e.g. after a dropped
// datagram) are silently ignored — the missing range stays un-acked and
// the shipper's retry re-delivers it; duplicates below the watermark
// are skipped idempotently.
//
// Promotion (prepare_promotion) is the failover handoff: flush, cut the
// WAL after the durable watermark (dropping any torn or unacked tail),
// and hand back the directory for a new primary Ledger to open. The
// promoted chain is then byte-identical to the dead primary's chain up
// to the follower's watermark — proven by the failover matrix test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/mutex.hpp"
#include "ledger/replay.hpp"
#include "ledger/wal.hpp"
#include "replication/transport.hpp"

namespace zkdet::replication {

class Follower {
 public:
  struct Config {
    // fsync after each pump's batch of applied records (durability of
    // the ack). Off only for bulk catch-up benchmarks.
    bool fsync_on_apply = true;
  };

  // Loads `dir` (fresh or a previous follower incarnation's state) and
  // announces its watermark so the shipper knows where to start.
  Follower(std::string dir, Link& link, Config cfg);
  Follower(std::string dir, Link& link) : Follower(std::move(dir), link, Config{}) {}

  // Drains the link: applies records/snapshots, sends one consolidated
  // ack. Throws CrashInjected when the repl.follower.crash fail-point
  // fires (the harness restarts the follower from its directory).
  void pump();

  // Failover: refuse if diverged, otherwise flush and truncate the WAL
  // after the durable watermark. Returns the directory, ready for a
  // primary Ledger to open. The follower must not be pumped again.
  [[nodiscard]] std::string prepare_promotion();

  [[nodiscard]] std::uint64_t durable_seq() const {
    const MutexLock lk(mu_);
    return durable_seq_;
  }
  [[nodiscard]] bool failed() const {
    const MutexLock lk(mu_);
    return failed_;
  }
  [[nodiscard]] std::string diagnostic() const {
    const MutexLock lk(mu_);
    return diagnostic_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  // Read view for follower-served queries (core/follower_view.hpp).
  // Callers must not outlive the follower; the reference is stable
  // across pumps. Prefix-consistency: between pumps this is exactly the
  // primary's state at some durable sequence — never a mix.
  [[nodiscard]] const ledger::ReplayImage& image() const
      ZKDET_NO_THREAD_SAFETY_ANALYSIS {
    return image_;
  }

 private:
  void fail_stop(const std::string& why) ZKDET_REQUIRES(mu_);
  void send_ack() ZKDET_REQUIRES(mu_);
  void apply_snapshot(const Frame& frame) ZKDET_REQUIRES(mu_);
  bool apply_record_frame(const Frame& frame) ZKDET_REQUIRES(mu_);

  const std::string dir_;
  Link& link_;
  const Config cfg_;
  mutable Mutex mu_{check::LockLevel::kReplFollower, "repl.follower"};
  ledger::ReplayImage image_ ZKDET_GUARDED_BY(mu_);
  // Last sequence on this follower's disk covered by an fsync; what
  // gets acked. == image_.seq except mid-pump before the sync barrier.
  std::uint64_t durable_seq_ ZKDET_GUARDED_BY(mu_) = 0;
  std::uint64_t segment_ ZKDET_GUARDED_BY(mu_) = 1;
  std::optional<ledger::WalWriter> wal_ ZKDET_GUARDED_BY(mu_);
  bool failed_ ZKDET_GUARDED_BY(mu_) = false;
  std::string diagnostic_ ZKDET_GUARDED_BY(mu_);
  bool promoted_ ZKDET_GUARDED_BY(mu_) = false;
};

}  // namespace zkdet::replication
