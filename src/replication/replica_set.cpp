#include "replication/replica_set.hpp"

#include <cstdlib>
#include <cstring>

#include "replication/socket_link.hpp"

namespace zkdet::replication {

namespace {

std::unique_ptr<Link> make_link(TransportKind kind) {
  if (kind == TransportKind::kSocket) {
    if (auto link = SocketLink::loopback()) return link;
    // socketpair refused (fd exhaustion): degrade to in-memory rather
    // than lose the replica.
  }
  return std::make_unique<InMemoryLink>();
}

}  // namespace

TransportKind resolve_transport(TransportKind kind) {
  if (kind != TransportKind::kDefault) return kind;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at construction
  const char* env = std::getenv("ZKDET_REPL_TRANSPORT");
  if (env != nullptr && std::strcmp(env, "socket") == 0) {
    return TransportKind::kSocket;
  }
  return TransportKind::kMemory;
}

ReplicaSet::ReplicaSet(ledger::Ledger& ledger, const chain::Chain& chain,
                       std::string base_dir, std::size_t replicas, Config cfg)
    : shipper_(ledger, chain, cfg.shipper), cfg_(cfg) {
  const TransportKind kind = resolve_transport(cfg.transport);
  for (std::size_t i = 0; i < replicas; ++i) {
    dirs_.push_back(base_dir + "/r" + std::to_string(i));
    links_.push_back(make_link(kind));
    followers_.push_back(
        std::make_unique<Follower>(dirs_[i], *links_[i], cfg_.follower));
    shipper_.add_follower(*links_[i]);
  }
}

void ReplicaSet::pump() {
  shipper_.pump();
  for (auto& f : followers_) f->pump();
}

bool ReplicaSet::sync(std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (shipper_.all_caught_up()) return true;
    pump();
  }
  return shipper_.all_caught_up();
}

bool ReplicaSet::final_sync(runtime::BackoffPolicy policy) {
  runtime::Backoff backoff(policy);
  auto acked_sum = [this] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < followers_.size(); ++i) {
      sum += shipper_.status(i).acked;
    }
    return sum;
  };
  std::uint64_t last = acked_sum();
  while (!shipper_.all_caught_up()) {
    // The budget only burns on fruitless rounds: progress re-arms it,
    // so a healthy-but-behind follower catches up fully while a dead
    // transport costs at most max_attempts pumps.
    if (!backoff.next_attempt()) return false;
    pump();
    const std::uint64_t now = acked_sum();
    if (now > last) {
      last = now;
      backoff.reset();
    }
  }
  return true;
}

void ReplicaSet::restart_follower(std::size_t i) {
  auto& slot = followers_.at(i);
  slot.reset();  // release the old incarnation's WAL write head first
  slot = std::make_unique<Follower>(dirs_[i], *links_[i], cfg_.follower);
}

std::string ReplicaSet::promote(std::size_t i) {
  return followers_.at(i)->prepare_promotion();
}

std::size_t parse_replica_count(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  std::size_t n = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    n = n * 10 + static_cast<std::size_t>(*p - '0');
    if (n > 1000) return 16;
  }
  return n > 16 ? 16 : n;
}

}  // namespace zkdet::replication
