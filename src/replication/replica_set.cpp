#include "replication/replica_set.hpp"

namespace zkdet::replication {

ReplicaSet::ReplicaSet(ledger::Ledger& ledger, const chain::Chain& chain,
                       std::string base_dir, std::size_t replicas, Config cfg)
    : shipper_(ledger, chain, cfg.shipper), cfg_(cfg) {
  for (std::size_t i = 0; i < replicas; ++i) {
    dirs_.push_back(base_dir + "/r" + std::to_string(i));
    links_.push_back(std::make_unique<InMemoryLink>());
    followers_.push_back(
        std::make_unique<Follower>(dirs_[i], *links_[i], cfg_.follower));
    shipper_.add_follower(*links_[i]);
  }
}

void ReplicaSet::pump() {
  shipper_.pump();
  for (auto& f : followers_) f->pump();
}

bool ReplicaSet::sync(std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (shipper_.all_caught_up()) return true;
    pump();
  }
  return shipper_.all_caught_up();
}

void ReplicaSet::restart_follower(std::size_t i) {
  auto& slot = followers_.at(i);
  slot.reset();  // release the old incarnation's WAL write head first
  slot = std::make_unique<Follower>(dirs_[i], *links_[i], cfg_.follower);
}

std::string ReplicaSet::promote(std::size_t i) {
  return followers_.at(i)->prepare_promotion();
}

std::size_t parse_replica_count(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  std::size_t n = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    n = n * 10 + static_cast<std::size_t>(*p - '0');
    if (n > 1000) return 16;
  }
  return n > 16 ? 16 : n;
}

}  // namespace zkdet::replication
