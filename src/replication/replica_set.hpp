// ReplicaSet: wires one primary Ledger to N in-process followers and
// drives the whole ensemble with manual pumps.
//
// The per-follower transport is pluggable: InMemoryLink (default) or
// SocketLink — both ends of a real AF_UNIX stream pair — selected by
// Config::transport or the ZKDET_REPL_TRANSPORT env var ("socket" /
// "memory"). The socket transport exercises the exact byte path an
// out-of-process follower would use (stream framing, partial writes,
// kernel-buffer backpressure) while staying pump-driven and
// deterministic.
//
// This is the deployment shape the tests, the failover matrix and the
// ZKDET_REPLICAS quickstart use: follower i lives in
// `<base_dir>/r<i>`, the shipper streams the primary's durable WAL to
// all of them, and sync() pumps until every live follower acked the
// primary's durable watermark. Killing the primary and promoting a
// follower is modeled as: destroy the primary objects, call
// promote(i), then open a fresh primary Ledger on the returned
// directory.
//
// Everything is pump-driven — no threads, no sleeps — so fault
// schedules replay deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "ledger/ledger.hpp"
#include "replication/follower.hpp"
#include "replication/shipper.hpp"
#include "replication/transport.hpp"

namespace zkdet::replication {

enum class TransportKind : std::uint8_t {
  kDefault = 0,  // consult ZKDET_REPL_TRANSPORT; fall back to memory
  kMemory = 1,
  kSocket = 2,
};

// Resolves kDefault against ZKDET_REPL_TRANSPORT ("socket"/"memory";
// anything else, or unset, means memory).
[[nodiscard]] TransportKind resolve_transport(TransportKind kind);

class ReplicaSet {
 public:
  struct Config {
    Shipper::Config shipper;
    Follower::Config follower;
    TransportKind transport = TransportKind::kDefault;
  };

  // Creates `replicas` followers under `<base_dir>/r<i>`. Existing
  // follower directories are reloaded (a restarted replica resumes
  // from its own durable state).
  ReplicaSet(ledger::Ledger& ledger, const chain::Chain& chain,
             std::string base_dir, std::size_t replicas, Config cfg);
  ReplicaSet(ledger::Ledger& ledger, const chain::Chain& chain,
             std::string base_dir, std::size_t replicas)
      : ReplicaSet(ledger, chain, std::move(base_dir), replicas, Config{}) {}

  // One round: shipper first, then every follower. CrashInjected from
  // a follower fail-point propagates to the caller (the chaos harness
  // restarts that follower).
  void pump();

  // Pumps until all live followers are caught up, up to `max_rounds`.
  // Returns true when caught up.
  bool sync(std::size_t max_rounds = 10'000);

  // Deadline-bounded sync for shutdown paths: pumps while progress is
  // being made (any follower's acked watermark advancing re-arms the
  // budget), but gives up after `policy.max_attempts` consecutive
  // fruitless rounds — a dead follower transport costs a bounded number
  // of pumps, never a stall. Returns true when every live follower
  // caught up within the budget.
  bool final_sync(runtime::BackoffPolicy policy = {
      .max_attempts = 64, .base_delay_us = 100, .max_delay_us = 10'000});

  // Replaces follower `i` with a fresh incarnation loaded from its
  // directory — the restart after an injected follower crash. Queued
  // in-flight datagrams survive on the link; the new incarnation skips
  // duplicates idempotently and lets retransmission fill gaps.
  void restart_follower(std::size_t i);

  // Failover: prepares follower `i` for promotion (refuses if it
  // diverged) and returns its directory for a new primary to open.
  // The caller must have destroyed (or stopped pumping) the primary.
  [[nodiscard]] std::string promote(std::size_t i);

  [[nodiscard]] std::size_t size() const { return followers_.size(); }
  [[nodiscard]] Shipper& shipper() { return shipper_; }
  [[nodiscard]] Follower& follower(std::size_t i) { return *followers_.at(i); }
  [[nodiscard]] Link& link(std::size_t i) { return *links_.at(i); }
  [[nodiscard]] const std::string& follower_dir(std::size_t i) const {
    return dirs_.at(i);
  }

 private:
  Shipper shipper_;
  Config cfg_;
  std::vector<std::string> dirs_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Follower>> followers_;
};

// Parses a replica count from an environment-style string ("3" → 3).
// Returns 0 (replication disabled) on empty/invalid/out-of-range
// input; counts above 16 are clamped to 16.
[[nodiscard]] std::size_t parse_replica_count(const char* value);

}  // namespace zkdet::replication
