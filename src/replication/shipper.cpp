#include "replication/shipper.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"
#include "runtime/stats.hpp"

namespace zkdet::replication {

Shipper::Shipper(ledger::Ledger& ledger, const chain::Chain& chain,
                 Config cfg)
    : ledger_(ledger), chain_(chain), cfg_(cfg) {}

std::size_t Shipper::add_follower(Link& link) {
  const MutexLock lk(mu_);
  Slot slot;
  slot.link = &link;
  slot.backoff = runtime::Backoff(cfg_.backoff);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void Shipper::pump() {
  const MutexLock lk(mu_);
  for (auto& slot : slots_) {
    drain_acks(slot);
    if (slot.failed || !slot.announced) continue;
    if (slot.inflight_end != 0) {
      // Waiting on an ack; the backoff window decides when to give up
      // on this transmission and re-ship.
      if (slot.wait_rounds > 0) {
        --slot.wait_rounds;
        continue;
      }
      retransmit(slot);
      continue;
    }
    ship_next(slot);
  }
}

void Shipper::drain_acks(Slot& slot) {
  while (auto datagram = slot.link->recv_at_primary()) {
    const auto frame = decode_frame(*datagram);
    if (!frame) continue;  // damaged ack: the round timeout covers it
    if (frame->type == FrameType::kFailStop) {
      slot.failed = true;
      slot.diagnostic = "follower fail-stop: " + frame->text;
      runtime::counters::repl_failstops.fetch_add(1,
                                                  std::memory_order_relaxed);
      continue;
    }
    if (frame->type != FrameType::kAck) continue;
    slot.announced = true;
    // Divergence cross-check: the follower's tip must be a block this
    // primary's chain actually has, at the height it claims.
    const auto& blocks = chain_.blocks();
    if (frame->height > blocks.size() ||
        (frame->height > 0 &&
         blocks[frame->height - 1].hash != frame->tip_hash)) {
      fail_follower(slot, "follower tip at height " +
                              std::to_string(frame->height) +
                              " does not match this chain (fork)");
      continue;
    }
    slot.acked = std::max(slot.acked, frame->seq);
    if (slot.inflight_end != 0 && slot.acked >= slot.inflight_end) {
      // Range fully acknowledged: the retry budget belongs to a single
      // transmission window, so it resets here.
      slot.inflight_end = 0;
      slot.inflight_snapshot = false;
      slot.wait_rounds = 0;
      slot.backoff.reset();
    }
  }
}

void Shipper::retransmit(Slot& slot) {
  if (!slot.backoff.next_attempt()) {
    fail_follower(slot,
                  "retry budget exhausted after " +
                      std::to_string(slot.backoff.attempts()) +
                      " attempts waiting for ack of seq " +
                      std::to_string(slot.inflight_end));
    return;
  }
  runtime::counters::repl_retransmits.fetch_add(1, std::memory_order_relaxed);
  if (slot.inflight_snapshot) {
    ship_snapshot(slot);
  } else {
    // Re-ship the un-acked remainder of the in-flight range. A fresh
    // scan (no cursor) because the range sits behind the cursor now.
    const std::uint64_t want =
        static_cast<std::uint64_t>(slot.inflight_end - slot.acked);
    ship_records(slot, slot.acked,
                 static_cast<std::size_t>(
                     std::min<std::uint64_t>(want, cfg_.batch_records)),
                 nullptr);
  }
  slot.wait_rounds = rounds_for(slot.backoff.last_delay_us());
}

void Shipper::ship_next(Slot& slot) {
  const auto result =
      ledger_.read_records_after(slot.acked, cfg_.batch_records, &slot.cursor);
  if (result.gap) {
    // The follower's position was folded into a snapshot and its
    // segments deleted: bootstrap from the snapshot image.
    if (!slot.backoff.next_attempt()) {
      fail_follower(slot, "retry budget exhausted shipping snapshot");
      return;
    }
    ship_snapshot(slot);
    slot.wait_rounds = rounds_for(slot.backoff.last_delay_us());
    return;
  }
  if (result.records.empty()) return;  // caught up
  if (!slot.backoff.next_attempt()) {
    // Unreachable with a sane config (the budget reset on the last full
    // ack), but the invariant stands: no send without a granted attempt.
    fail_follower(slot, "retry budget exhausted before first ship");
    return;
  }
  for (const auto& rec : result.records) {
    Frame f;
    f.type = FrameType::kRecord;
    f.seq = rec.seq;
    f.bytes = maybe_tamper(rec);
    slot.link->send_to_follower(encode_frame(f));
  }
  runtime::counters::repl_records_shipped.fetch_add(
      result.records.size(), std::memory_order_relaxed);
  slot.inflight_end = result.records.back().seq;
  slot.inflight_snapshot = false;
  slot.wait_rounds = rounds_for(slot.backoff.last_delay_us());
}

void Shipper::ship_records(Slot& slot, std::uint64_t after_seq,
                           std::size_t max_records,
                           ledger::Ledger::ReadCursor* cursor) {
  const auto result =
      ledger_.read_records_after(after_seq, max_records, cursor);
  if (result.gap) {
    ship_snapshot(slot);
    return;
  }
  for (const auto& rec : result.records) {
    Frame f;
    f.type = FrameType::kRecord;
    f.seq = rec.seq;
    f.bytes = maybe_tamper(rec);
    slot.link->send_to_follower(encode_frame(f));
  }
  runtime::counters::repl_records_shipped.fetch_add(
      result.records.size(), std::memory_order_relaxed);
}

void Shipper::ship_snapshot(Slot& slot) {
  const auto snap = ledger_.snapshot_bytes();
  if (!snap) {
    // A gap with no published snapshot means the WAL prefix is simply
    // gone — nothing can rebuild this follower.
    fail_follower(slot, "WAL gap with no published snapshot");
    return;
  }
  if (snap->wal_seq <= slot.acked) {
    fail_follower(slot, "WAL gap behind snapshot watermark " +
                            std::to_string(snap->wal_seq));
    return;
  }
  Frame f;
  f.type = FrameType::kSnapshot;
  f.seq = snap->wal_seq;
  f.bytes = snap->bytes;
  slot.link->send_to_follower(encode_frame(f));
  runtime::counters::repl_snapshots_shipped.fetch_add(
      1, std::memory_order_relaxed);
  slot.inflight_end = snap->wal_seq;
  slot.inflight_snapshot = true;
  // Bootstrap invalidates any record cursor the slot accumulated.
  slot.cursor = ledger::Ledger::ReadCursor{};
}

void Shipper::fail_follower(Slot& slot, const std::string& why) {
  slot.failed = true;
  slot.diagnostic = why;
  runtime::counters::repl_failstops.fetch_add(1, std::memory_order_relaxed);
  Frame f;
  f.type = FrameType::kFailStop;
  f.text = why;
  slot.link->send_to_follower(encode_frame(f));
}

std::uint64_t Shipper::rounds_for(std::uint64_t delay_us) const {
  const std::uint64_t unit = std::max<std::uint64_t>(1, cfg_.round_us);
  return (delay_us + unit - 1) / unit;
}

std::vector<std::uint8_t> Shipper::maybe_tamper(
    const ledger::Ledger::ShippedRecord& rec) {
  // Fail-point: ship a *diverged* record. Block records become a
  // self-consistent fork (bumped timestamp, recomputed content hash,
  // valid CRC) that only the semantic cross-checks — prev-link at the
  // follower, tip-hash at the next ack — can catch; account records
  // lose their last byte, modeling a CRC-valid frame with a garbage
  // body that the follower's strict decoder must reject.
  if (!fault::fire(fault::points::kReplShipDiverge)) return rec.payload;
  try {
    ledger::Reader r{std::span<const std::uint8_t>(rec.payload)};
    const std::uint8_t type = r.u8();
    const std::uint64_t seq = r.u64();
    if (type == ledger::kRecordBlock) {
      chain::Block block = ledger::read_block(r);
      const auto delta = ledger::read_delta(r);
      block.timestamp += 1;
      block.hash = chain::Chain::block_hash(block);
      ledger::Writer w;
      w.u8(type);
      w.u64(seq);
      ledger::write_block(w, block);
      ledger::write_delta(w, delta);
      return w.take();
    }
  } catch (const ledger::CodecError&) {
    // fall through to the truncation tamper
  }
  auto out = rec.payload;
  if (!out.empty()) out.pop_back();
  return out;
}

bool Shipper::all_caught_up() const {
  const MutexLock lk(mu_);
  const std::uint64_t durable = ledger_.durable_watermark();
  for (const auto& slot : slots_) {
    if (slot.failed) continue;
    if (!slot.announced || slot.inflight_end != 0 || slot.acked != durable) {
      return false;
    }
  }
  return true;
}

Shipper::FollowerStatus Shipper::status(std::size_t follower) const {
  const MutexLock lk(mu_);
  const Slot& slot = slots_.at(follower);
  return {slot.acked, slot.failed, slot.diagnostic};
}

}  // namespace zkdet::replication
