// Replication shipper: the primary-side half of WAL streaming.
//
// The shipper reads durable records out of the primary Ledger (never
// past durable_watermark(): a follower must not hold bytes the primary
// could lose) and ships them over per-follower Links in bounded
// batches. Each follower slot tracks an acknowledged watermark and at
// most one in-flight range; a range that is not fully acked within its
// round budget is retransmitted under a bounded, deterministic,
// jittered backoff (runtime/retry.hpp), and a follower that exhausts
// the retry budget is marked failed rather than retried forever.
//
// Catch-up: when a follower's watermark predates the oldest retained
// WAL segment (records folded into a snapshot, segments deleted —
// read_records_after reports `gap`), the shipper bootstraps it with the
// published snapshot image, then resumes record shipping from the
// snapshot's sequence.
//
// Divergence detection: every ack carries the follower's chain height
// and tip hash. The shipper cross-checks them against the primary's
// chain; any mismatch — a height the primary never had, or a tip hash
// differing from the primary's block at that height — is a fork, and
// the shipper fail-stops that follower (kFailStop frame + local failed
// mark) with a diagnostic. Forks are never reconciled silently.
//
// The shipper is pump-driven and single-threaded by contract: pump()
// performs one round (drain acks → retransmit or ship per follower).
// Backoff delays are virtual — converted to pump rounds, never slept —
// so every fault schedule replays deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "check/mutex.hpp"
#include "ledger/ledger.hpp"
#include "replication/transport.hpp"
#include "runtime/retry.hpp"

namespace zkdet::replication {

class Shipper {
 public:
  struct Config {
    // Records per shipped batch (bounded catch-up: a cold follower is
    // fed the history batch_records at a time, never all at once).
    std::size_t batch_records = 64;
    // Retry budget per in-flight range: the first ship consumes one
    // attempt, so max_attempts=8 allows 7 retransmits before the
    // follower is declared failed.
    runtime::BackoffPolicy backoff{
        .max_attempts = 8, .base_delay_us = 100, .max_delay_us = 10'000};
    // Virtual duration of one pump round; backoff delays are expressed
    // as ceil(delay / round_us) rounds.
    std::uint64_t round_us = 100;
  };

  Shipper(ledger::Ledger& ledger, const chain::Chain& chain, Config cfg);
  Shipper(ledger::Ledger& ledger, const chain::Chain& chain)
      : Shipper(ledger, chain, Config{}) {}

  // Registers a follower link; returns its index. The follower's
  // announce ack tells the shipper where to start.
  std::size_t add_follower(Link& link);

  // One round: per follower, drain acks (divergence cross-check), then
  // retransmit a timed-out range or ship the next batch.
  void pump();

  // Every live follower acked the primary's durable watermark and has
  // nothing in flight. Failed followers do not count.
  [[nodiscard]] bool all_caught_up() const;

  struct FollowerStatus {
    std::uint64_t acked = 0;
    bool failed = false;
    std::string diagnostic;
  };
  [[nodiscard]] FollowerStatus status(std::size_t follower) const;

 private:
  struct Slot {
    Link* link = nullptr;
    bool announced = false;  // first ack seen; shipping may start
    std::uint64_t acked = 0;
    // Last sequence of the range currently awaiting ack (0 = none).
    std::uint64_t inflight_end = 0;
    bool inflight_snapshot = false;
    std::uint64_t wait_rounds = 0;
    ledger::Ledger::ReadCursor cursor;
    runtime::Backoff backoff;
    bool failed = false;
    std::string diagnostic;
  };

  void drain_acks(Slot& slot) ZKDET_REQUIRES(mu_);
  void retransmit(Slot& slot) ZKDET_REQUIRES(mu_);
  void ship_next(Slot& slot) ZKDET_REQUIRES(mu_);
  void ship_records(Slot& slot, std::uint64_t after_seq,
                    std::size_t max_records,
                    ledger::Ledger::ReadCursor* cursor) ZKDET_REQUIRES(mu_);
  void ship_snapshot(Slot& slot) ZKDET_REQUIRES(mu_);
  void fail_follower(Slot& slot, const std::string& why) ZKDET_REQUIRES(mu_);
  [[nodiscard]] std::uint64_t rounds_for(std::uint64_t delay_us) const;
  [[nodiscard]] static std::vector<std::uint8_t> maybe_tamper(
      const ledger::Ledger::ShippedRecord& rec);

  ledger::Ledger& ledger_;
  const chain::Chain& chain_;
  const Config cfg_;
  mutable Mutex mu_{check::LockLevel::kReplShip, "repl.ship"};
  std::vector<Slot> slots_ ZKDET_GUARDED_BY(mu_);
};

}  // namespace zkdet::replication
