#include "replication/socket_link.hpp"

#include <span>
#include <utility>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/wal.hpp"

namespace zkdet::replication {

namespace sockio = rpc::sockio;

SocketLink::SocketLink(sockio::Fd primary_end, sockio::Fd follower_end) {
  const MutexLock lp(primary_.mu);
  primary_.fd = std::move(primary_end);
  const MutexLock lf(follower_.mu);
  follower_.fd = std::move(follower_end);
}

std::unique_ptr<SocketLink> SocketLink::loopback() {
  auto pair = sockio::stream_pair();
  if (!pair) return nullptr;
  return std::make_unique<SocketLink>(std::move(pair->first),
                                      std::move(pair->second));
}

void SocketLink::flush_locked(Endpoint& ep) {
  while (ep.out_off < ep.out.size()) {
    const auto r = sockio::write_some(
        ep.fd, std::span<const std::uint8_t>(ep.out).subspan(ep.out_off));
    if (r.status == sockio::IoStatus::kOk) {
      ep.out_off += r.n;
      continue;
    }
    if (r.status != sockio::IoStatus::kWouldBlock) ep.broken = true;
    break;
  }
  if (ep.out_off == ep.out.size() && !ep.out.empty()) {
    ep.out.clear();
    ep.out_off = 0;
  }
}

void SocketLink::queue_and_flush(Endpoint& ep,
                                 std::vector<std::uint8_t> datagram) {
  const MutexLock lk(ep.mu);
  if (!ep.fd.valid() || ep.broken) return;  // peer gone: datagram is lost
  ep.out.insert(ep.out.end(), datagram.begin(), datagram.end());
  flush_locked(ep);
}

std::optional<std::vector<std::uint8_t>> SocketLink::flush_and_recv(
    Endpoint& ep) {
  const MutexLock lk(ep.mu);
  if (!ep.fd.valid()) return std::nullopt;
  // Opportunistic flush: this end's queued sends (acks, or a snapshot
  // larger than the kernel buffer) drain as the peer reads.
  if (!ep.broken) flush_locked(ep);
  // Bounded by kernel buffer contents: every kOk consumes bytes, any
  // other status breaks.
  for (;;) {  // zkdet-lint: allow(unbounded-retry)
    const auto r = sockio::read_some(ep.fd, ep.in.stream());
    if (r.status == sockio::IoStatus::kOk) continue;
    if (r.status != sockio::IoStatus::kWouldBlock) ep.broken = true;
    break;
  }
  auto payload = ep.in.next_payload();
  if (ep.in.poisoned()) ep.broken = true;
  if (!payload) return std::nullopt;
  // Reconstruct the datagram: re-framing the payload is byte-identical
  // to what the sender wrote (CRC framing is deterministic).
  return ledger::frame_record(*payload);
}

void SocketLink::send_to_follower(std::vector<std::uint8_t> datagram) {
  // Same in-flight faults as InMemoryLink, so replication chaos
  // schedules replay unchanged over real sockets.
  if (fault::fire(fault::points::kReplShipDrop)) return;
  if (fault::fire(fault::points::kReplShipCorrupt) && !datagram.empty()) {
    datagram[datagram.size() / 2] ^= 0x40;
  }
  queue_and_flush(primary_, std::move(datagram));
}

std::optional<std::vector<std::uint8_t>> SocketLink::recv_at_follower() {
  return flush_and_recv(follower_);
}

void SocketLink::send_to_primary(std::vector<std::uint8_t> datagram) {
  if (fault::fire(fault::points::kReplAckLost)) return;
  queue_and_flush(follower_, std::move(datagram));
}

std::optional<std::vector<std::uint8_t>> SocketLink::recv_at_primary() {
  return flush_and_recv(primary_);
}

void SocketLink::sever() {
  {
    const MutexLock lk(primary_.mu);
    primary_.fd.reset();
    primary_.broken = true;
  }
  const MutexLock lk(follower_.mu);
  follower_.fd.reset();
  follower_.broken = true;
}

bool SocketLink::primary_broken() const {
  const MutexLock lk(primary_.mu);
  return primary_.broken;
}

bool SocketLink::follower_broken() const {
  const MutexLock lk(follower_.mu);
  return follower_.broken;
}

}  // namespace zkdet::replication
