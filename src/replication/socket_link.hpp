// SocketLink: replication::Link over a real stream socket.
//
// Each Link datagram is already one CRC frame (encode_frame wraps the
// payload in the WAL's u32 len + u32 crc32c framing), so the stream
// protocol is trivial: a datagram's bytes go onto the wire verbatim,
// and the receiver reassembles frames with sockio::FrameBuffer. A frame
// that arrives CRC-dead is skipped by its length prefix — exactly the
// lossy drop-on-corrupt contract Link promises — and recv hands back
// the reconstructed datagram (re-framed payload, byte-identical to what
// was sent) so decode_frame sees the same bytes either transport.
//
// The link owns up to two endpoints:
//   - loopback(): both ends of an AF_UNIX stream pair in one object —
//     the drop-in InMemoryLink replacement (ZKDET_REPL_TRANSPORT=socket)
//     that proves the whole replication stack runs over real sockets.
//   - SocketLink(primary_fd, follower_fd) with either Fd invalid: one
//     half of an out-of-process deployment. Calls belonging to the
//     missing end are no-ops / nullopt.
//
// Everything is non-blocking: sends queue bytes and flush what the
// kernel will take now; each recv opportunistically re-flushes its
// end's queue first, so a multi-megabyte snapshot frame drains across
// pump rounds as the peer reads (kernel-buffer backpressure, not
// deadlock). A write error, orderly EOF or poisoned stream marks that
// endpoint broken: further sends are dropped (the peer is gone — the
// shipper's retry/fail-stop machinery takes over), recvs return
// nullopt.
//
// Carries the same fail-points as InMemoryLink (repl.ship.drop /
// repl.ship.corrupt on the ship direction, repl.ack.lost on the ack
// direction), so every existing replication chaos schedule runs
// unchanged over real sockets.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "check/mutex.hpp"
#include "replication/transport.hpp"
#include "rpc/socket.hpp"

namespace zkdet::replication {

class SocketLink final : public Link {
 public:
  // One half (or, with both Fds valid, both halves) of the channel.
  SocketLink(rpc::sockio::Fd primary_end, rpc::sockio::Fd follower_end);

  // Both ends over a fresh AF_UNIX stream pair; nullptr when the kernel
  // refuses a socketpair.
  [[nodiscard]] static std::unique_ptr<SocketLink> loopback();

  void send_to_follower(std::vector<std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv_at_follower() override;
  void send_to_primary(std::vector<std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv_at_primary() override;

  // Hard-closes both ends: the dead-transport case (a follower machine
  // gone mid-shutdown). Sends become drops, recvs come up empty.
  void sever();

  [[nodiscard]] bool primary_broken() const;
  [[nodiscard]] bool follower_broken() const;

 private:
  // One socket end: its fd, the frames arriving at it, and the bytes
  // queued to leave it. The primary end is touched only by primary-side
  // calls and the follower end only by follower-side calls, so each has
  // its own mutex and the two are never held together.
  struct Endpoint {
    mutable Mutex mu{check::LockLevel::kReplLink, "repl.socket-link"};
    rpc::sockio::Fd fd ZKDET_GUARDED_BY(mu);
    rpc::sockio::FrameBuffer in ZKDET_GUARDED_BY(mu);
    std::vector<std::uint8_t> out ZKDET_GUARDED_BY(mu);
    std::size_t out_off = 0;
    bool broken ZKDET_GUARDED_BY(mu) = false;
  };

  static void queue_and_flush(Endpoint& ep,
                              std::vector<std::uint8_t> datagram);
  static std::optional<std::vector<std::uint8_t>> flush_and_recv(Endpoint& ep);
  static void flush_locked(Endpoint& ep) ZKDET_REQUIRES(ep.mu);

  Endpoint primary_;
  Endpoint follower_;
};

}  // namespace zkdet::replication
