#include "replication/transport.hpp"

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"
#include "ledger/wal.hpp"

namespace zkdet::replication {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kSnapshot: return "snapshot";
    case FrameType::kRecord: return "record";
    case FrameType::kAck: return "ack";
    case FrameType::kFailStop: return "fail-stop";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  ledger::Writer w;
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u64(frame.seq);
  w.u64(frame.height);
  w.hash32(frame.tip_hash);
  w.str(frame.text);
  // u32 length prefix + raw payload, last field (Writer::bytes is raw).
  w.u32(static_cast<std::uint32_t>(frame.bytes.size()));
  w.bytes(frame.bytes);
  return ledger::frame_record(w.take());
}

std::optional<Frame> decode_frame(const std::vector<std::uint8_t>& datagram) {
  const auto rec =
      ledger::parse_record(std::span<const std::uint8_t>(datagram), 0);
  // A datagram is exactly one frame; trailing bytes mean it was damaged
  // in a way the CRC happened to miss (or a framing bug) — drop it.
  if (!rec || rec->next_offset != datagram.size()) return std::nullopt;
  try {
    ledger::Reader r{rec->payload};
    Frame out;
    const std::uint8_t type = r.u8();
    if (type < static_cast<std::uint8_t>(FrameType::kSnapshot) ||
        type > static_cast<std::uint8_t>(FrameType::kFailStop)) {
      return std::nullopt;
    }
    out.type = static_cast<FrameType>(type);
    out.seq = r.u64();
    out.height = r.u64();
    out.tip_hash = r.hash32();
    out.text = r.str();
    const std::uint32_t len = r.u32();
    if (len != r.remaining()) return std::nullopt;
    out.bytes.assign(rec->payload.end() - r.remaining(), rec->payload.end());
    return out;
  } catch (const ledger::CodecError&) {
    return std::nullopt;
  }
}

void InMemoryLink::send_to_follower(std::vector<std::uint8_t> datagram) {
  // Fail-point: the ship-direction datagram vanishes in flight. The
  // shipper's ack timeout + bounded retry covers it.
  if (fault::fire(fault::points::kReplShipDrop)) return;
  // Fail-point: one bit flips in flight. The CRC frame makes this
  // indistinguishable from a drop at the receiver (decode → nullopt).
  if (fault::fire(fault::points::kReplShipCorrupt) && !datagram.empty()) {
    datagram[datagram.size() / 2] ^= 0x40;
  }
  const MutexLock lk(mu_);
  to_follower_.push_back(std::move(datagram));
}

std::optional<std::vector<std::uint8_t>> InMemoryLink::recv_at_follower() {
  const MutexLock lk(mu_);
  if (to_follower_.empty()) return std::nullopt;
  auto out = std::move(to_follower_.front());
  to_follower_.pop_front();
  return out;
}

void InMemoryLink::send_to_primary(std::vector<std::uint8_t> datagram) {
  // Fail-point: the follower's ack never arrives. The shipper re-ships
  // the in-flight range; the follower skips duplicates idempotently.
  if (fault::fire(fault::points::kReplAckLost)) return;
  const MutexLock lk(mu_);
  to_primary_.push_back(std::move(datagram));
}

std::optional<std::vector<std::uint8_t>> InMemoryLink::recv_at_primary() {
  const MutexLock lk(mu_);
  if (to_primary_.empty()) return std::nullopt;
  auto out = std::move(to_primary_.front());
  to_primary_.pop_front();
  return out;
}

std::size_t InMemoryLink::pending_to_follower() const {
  const MutexLock lk(mu_);
  return to_follower_.size();
}

std::size_t InMemoryLink::pending_to_primary() const {
  const MutexLock lk(mu_);
  return to_primary_.size();
}

}  // namespace zkdet::replication
