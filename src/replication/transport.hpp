// Replication transport: the datagram framing and the link seam
// between a primary's shipper and its followers.
//
// Every datagram is one CRC frame (ledger/wal.hpp framing — u32 len +
// u32 crc32c + payload) whose payload is an encoded Frame. Reusing the
// WAL's frame codec means a corrupted datagram is detected exactly the
// way a torn WAL record is: decode_frame() returns nullopt and the
// receiver drops it, relying on retransmission (records) or timeout
// (acks) — never on trusting damaged bytes.
//
// Frame types:
//
//   kSnapshot  raw snapshot.bin bytes; `seq` = WAL sequence the
//              snapshot covers. Shipped when the follower's watermark
//              fell behind the primary's oldest retained segment.
//   kRecord    one WAL record payload (u8 type + u64 seq + body);
//              `seq` duplicates the record's sequence so the shipper's
//              bookkeeping never needs to re-decode the body.
//   kAck       follower → primary: `seq` = follower durable watermark,
//              `height`/`tip_hash` = follower chain tip, for the
//              primary's divergence cross-check.
//   kFailStop  either direction: the sender detected divergence or an
//              unrecoverable fault; `text` carries the diagnostic. The
//              receiver marks the peer failed and stops shipping.
//
// The Link interface is socket-shaped on purpose: send/recv of whole
// datagrams, lossy, unordered delivery never assumed (though the
// in-memory implementation is FIFO). InMemoryLink is the in-process
// implementation and hosts the transport fail-points.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "check/mutex.hpp"

namespace zkdet::replication {

enum class FrameType : std::uint8_t {
  kSnapshot = 1,
  kRecord = 2,
  kAck = 3,
  kFailStop = 4,
};

[[nodiscard]] const char* frame_type_name(FrameType t);

struct Frame {
  FrameType type = FrameType::kRecord;
  std::uint64_t seq = 0;
  std::uint64_t height = 0;
  std::array<std::uint8_t, 32> tip_hash{};
  std::string text;                 // kFailStop diagnostic
  std::vector<std::uint8_t> bytes;  // record payload / snapshot bytes
};

// Encodes a frame into one CRC-framed datagram ready for Link::send.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

// Decodes a datagram. nullopt on CRC mismatch or an undecodable body —
// the caller treats the datagram as lost (in-transit corruption).
[[nodiscard]] std::optional<Frame> decode_frame(
    const std::vector<std::uint8_t>& datagram);

// One bidirectional primary<->follower channel. Implementations must
// be safe to call from both ends concurrently.
class Link {
 public:
  virtual ~Link() = default;
  // Primary-side send / follower-side receive (ship direction).
  virtual void send_to_follower(std::vector<std::uint8_t> datagram) = 0;
  virtual std::optional<std::vector<std::uint8_t>> recv_at_follower() = 0;
  // Follower-side send / primary-side receive (ack direction).
  virtual void send_to_primary(std::vector<std::uint8_t> datagram) = 0;
  virtual std::optional<std::vector<std::uint8_t>> recv_at_primary() = 0;
};

// In-process FIFO link with deterministic fault injection:
//
//   repl.ship.drop     datagram to the follower silently dropped
//   repl.ship.corrupt  one bit flipped in flight (CRC catches it)
//   repl.ack.lost      datagram to the primary silently dropped
//
// Divergence injection (repl.ship.diverge) lives in the Shipper, not
// here: it must tamper with record *content* self-consistently (valid
// CRC, recomputed hash) so only the semantic cross-checks can catch it.
class InMemoryLink final : public Link {
 public:
  void send_to_follower(std::vector<std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv_at_follower() override;
  void send_to_primary(std::vector<std::uint8_t> datagram) override;
  std::optional<std::vector<std::uint8_t>> recv_at_primary() override;

  [[nodiscard]] std::size_t pending_to_follower() const;
  [[nodiscard]] std::size_t pending_to_primary() const;

 private:
  mutable Mutex mu_{check::LockLevel::kReplLink, "repl.link"};
  std::deque<std::vector<std::uint8_t>> to_follower_ ZKDET_GUARDED_BY(mu_);
  std::deque<std::vector<std::uint8_t>> to_primary_ ZKDET_GUARDED_BY(mu_);
};

}  // namespace zkdet::replication
