#include "rpc/admission.hpp"

#include <algorithm>
#include <cstdlib>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "runtime/stats.hpp"

namespace zkdet::rpc {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at construction
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || n == 0) return fallback;
  return static_cast<std::size_t>(n);
}

}  // namespace

AdmissionConfig AdmissionConfig::from_env() {
  AdmissionConfig cfg;
  cfg.queue_capacity = env_size("ZKDET_RPC_QUEUE", cfg.queue_capacity);
  cfg.max_inflight = env_size("ZKDET_RPC_INFLIGHT", cfg.max_inflight);
  return cfg;
}

bool AdmissionQueue::offer(std::uint64_t session, Request req) {
  MutexLock lock(mu_);
  // The fail-point sheds an otherwise-admissible request: clients must
  // survive Overloaded at any position, not just under real pressure.
  if (q_.size() >= cfg_.queue_capacity ||
      fault::fire(fault::points::kRpcQueueFull)) {
    runtime::counters::rpc_shed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  q_.push_back(Admitted{session, std::move(req)});
  runtime::counters::rpc_admitted.fetch_add(1, std::memory_order_relaxed);
  runtime::counters::rpc_queue_depth.store(q_.size(),
                                           std::memory_order_relaxed);
  return true;
}

std::vector<Admitted> AdmissionQueue::take_round() {
  MutexLock lock(mu_);
  const std::size_t n = std::min(q_.size(), cfg_.max_inflight);
  std::vector<Admitted> round;
  round.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    round.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  runtime::counters::rpc_queue_depth.store(q_.size(),
                                           std::memory_order_relaxed);
  return round;
}

std::size_t AdmissionQueue::depth() const {
  MutexLock lock(mu_);
  return q_.size();
}

}  // namespace zkdet::rpc
