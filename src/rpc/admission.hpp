// Admission control: the bounded front-door queue of the RPC server.
//
// Load shedding is deterministic and typed: a request either enters the
// bounded queue or is answered immediately with Status::kOverloaded —
// never silently dropped, never buffered without bound. Two knobs (read
// once at construction):
//
//   ZKDET_RPC_QUEUE     admitted-but-undispatched bound  (default 1024)
//   ZKDET_RPC_INFLIGHT  max requests per dispatch round  (default 256)
//
// The queue bound caps memory AND worst-case admitted latency (a
// request waits at most queue/inflight dispatch rounds); the in-flight
// bound caps how much work one dispatch round batches into the txpool /
// prover service. bench_rpc drives 2x sustained overload against these
// bounds and enforces that queue depth stays bounded and p99 admitted
// latency stays within budget.
//
// The rpc.queue.full fail-point sheds an admissible request, so chaos
// schedules can prove clients handle Overloaded at any position.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "check/mutex.hpp"
#include "rpc/wire.hpp"

namespace zkdet::rpc {

struct AdmissionConfig {
  std::size_t queue_capacity = 1024;
  std::size_t max_inflight = 256;

  // Reads ZKDET_RPC_QUEUE / ZKDET_RPC_INFLIGHT (invalid/absent values
  // keep the defaults; both are clamped to >= 1).
  [[nodiscard]] static AdmissionConfig from_env();
};

// One admitted unit of work, tagged with the session that must receive
// the response.
struct Admitted {
  std::uint64_t session = 0;
  Request request;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig cfg) : cfg_(cfg) {}

  // Admits `req` or sheds it. True = enqueued; false = the caller owes
  // the client a typed Overloaded response. Updates the rpc_admitted /
  // rpc_shed counters and the rpc_queue_depth gauge.
  bool offer(std::uint64_t session, Request req);

  // Dequeues the next dispatch round: up to max_inflight entries, FIFO.
  [[nodiscard]] std::vector<Admitted> take_round();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const AdmissionConfig& config() const { return cfg_; }

 private:
  const AdmissionConfig cfg_;
  mutable Mutex mu_{check::LockLevel::kRpc, "rpc.admission"};
  std::deque<Admitted> q_ ZKDET_GUARDED_BY(mu_);
};

}  // namespace zkdet::rpc
