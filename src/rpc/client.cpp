#include "rpc/client.hpp"

#include <utility>

#include "ledger/wal.hpp"

namespace zkdet::rpc {

std::optional<Client> Client::connect_unix(const std::string& path) {
  auto fd = sockio::connect_unix(path);
  if (!fd) return std::nullopt;
  return Client(std::move(*fd));
}

std::optional<Client> Client::connect_tcp(std::uint16_t port) {
  auto fd = sockio::connect_tcp(port);
  if (!fd) return std::nullopt;
  return Client(std::move(*fd));
}

bool Client::send(const Request& rq) {
  if (!alive()) return false;
  const std::vector<std::uint8_t> frame =
      ledger::frame_record(encode_request(rq));
  out_.insert(out_.end(), frame.begin(), frame.end());
  return flush();
}

bool Client::flush() {
  if (!alive()) return false;
  while (out_off_ < out_.size()) {
    const auto r = sockio::write_some(
        fd_, std::span<const std::uint8_t>(out_).subspan(out_off_));
    if (r.status == sockio::IoStatus::kOk) {
      out_off_ += r.n;
      continue;
    }
    if (r.status != sockio::IoStatus::kWouldBlock) broken_ = true;
    break;
  }
  if (out_off_ == out_.size() && !out_.empty()) {
    out_.clear();
    out_off_ = 0;
  }
  return !broken_;
}

std::size_t Client::poll() {
  if (!fd_.valid()) return 0;
  // Bounded by kernel buffer contents: every kOk consumes bytes, any
  // other status breaks.
  for (;;) {  // zkdet-lint: allow(unbounded-retry)
    const auto r = sockio::read_some(fd_, in_.stream());
    if (r.status == sockio::IoStatus::kOk) continue;
    if (r.status != sockio::IoStatus::kWouldBlock) broken_ = true;
    break;
  }
  std::size_t fresh = 0;
  while (auto payload = in_.next_payload()) {
    auto rs = decode_response(*payload);
    if (!rs) {
      broken_ = true;  // CRC-valid but not a Response: protocol violation
      break;
    }
    stash_.insert_or_assign(rs->id, std::move(*rs));
    ++fresh;
  }
  if (in_.poisoned()) broken_ = true;
  return fresh;
}

std::optional<Response> Client::take(std::uint64_t id) {
  const auto it = stash_.find(id);
  if (it == stash_.end()) return std::nullopt;
  Response rs = std::move(it->second);
  stash_.erase(it);
  return rs;
}

std::optional<Response> Client::call(Server& server, const Request& rq,
                                     std::size_t max_rounds) {
  if (!send(rq)) return std::nullopt;
  for (std::size_t i = 0; i < max_rounds; ++i) {
    server.pump();
    flush();
    poll();
    if (auto rs = take(rq.id)) return rs;
    if (!alive()) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace zkdet::rpc
