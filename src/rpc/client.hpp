// Minimal framed RPC client.
//
// Non-blocking like everything else: send() frames and queues, flush()
// pushes queued bytes, poll() drains the socket and stashes decoded
// responses by request id. call() is the synchronous convenience for
// tests and benches co-located with the server — it pumps the server
// between polls, so one thread can play both ends deterministically.
//
// A response whose frame arrives torn (CRC-dead tail, short read at
// close) is simply never stashed: the client observes a missing answer
// and a dead connection, never a corrupted payload — callers re-query
// over a fresh connection (state-changing ops are visible via
// kReadExchange / kReadBalance, so re-query beats blind retry).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "rpc/server.hpp"
#include "rpc/socket.hpp"
#include "rpc/wire.hpp"

namespace zkdet::rpc {

class Client {
 public:
  explicit Client(sockio::Fd fd) : fd_(std::move(fd)) {}

  [[nodiscard]] static std::optional<Client> connect_unix(
      const std::string& path);
  [[nodiscard]] static std::optional<Client> connect_tcp(std::uint16_t port);

  // Frames and queues `rq`, then attempts a flush. False when the
  // connection is already dead.
  bool send(const Request& rq);

  // Pushes queued bytes; returns false when the connection died.
  bool flush();

  // Drains the socket, decoding complete frames into the stash.
  // Returns the number of responses newly stashed.
  std::size_t poll();

  // Removes and returns the stashed response for `id`, if present.
  [[nodiscard]] std::optional<Response> take(std::uint64_t id);

  // send + pump the (in-process) server + poll until the response for
  // rq.id arrives or the round budget runs out.
  std::optional<Response> call(Server& server, const Request& rq,
                               std::size_t max_rounds = 200);

  // Connection still usable (socket open, stream not poisoned).
  [[nodiscard]] bool alive() const { return fd_.valid() && !broken_; }

  // Hard-closes the socket mid-conversation (chaos tests: a client
  // killed after its request was admitted).
  void sever() { fd_.reset(); }

  [[nodiscard]] std::size_t stashed() const { return stash_.size(); }

 private:
  sockio::Fd fd_;
  sockio::FrameBuffer in_;
  std::vector<std::uint8_t> out_;
  std::size_t out_off_ = 0;
  bool broken_ = false;
  std::map<std::uint64_t, Response> stash_;
};

}  // namespace zkdet::rpc
