#include "rpc/dispatch.hpp"

#include <future>
#include <utility>

#include "runtime/stats.hpp"
#include "txpool/txpool.hpp"

namespace zkdet::rpc {

namespace {

Response reject(const Request& rq, std::string why) {
  Response rs;
  rs.id = rq.id;
  rs.status = Status::kRejected;
  rs.text = std::move(why);
  return rs;
}

Response ok(const Request& rq) {
  Response rs;
  rs.id = rq.id;
  rs.status = Status::kOk;
  return rs;
}

bool is_tx_op(Op op) {
  return op == Op::kTransfer || op == Op::kLock || op == Op::kSettle ||
         op == Op::kRefund;
}

}  // namespace

Dispatcher::Dispatcher(core::ZkdetSystem& sys,
                       core::TransformationProtocol& transform,
                       std::uint64_t seed)
    : sys_(sys),
      transform_(transform),
      exchange_(sys, transform),
      rng_("zkdet-rpc-dispatch", seed) {}

const Dispatcher::Principal* Dispatcher::principal(
    std::uint64_t handle) const {
  if (handle == 0 || handle > principals_.size()) return nullptr;
  return &principals_[handle - 1];
}

Response Dispatcher::handle_serial(const Request& rq) {
  switch (rq.op) {
    case Op::kPing: {
      Response rs = ok(rq);
      rs.value = rq.a;
      return rs;
    }
    case Op::kRegister: {
      Principal p{crypto::KeyPair::generate(rng_), {}};
      p.addr = sys_.chain().create_account(p.keys, rq.a);
      principals_.push_back(std::move(p));
      Response rs = ok(rq);
      rs.value = principals_.size();  // handle
      return rs;
    }
    case Op::kPublish: {
      const Principal* p = principal(rq.client);
      if (p == nullptr) return reject(rq, "unknown client handle");
      if (rq.frs.empty()) return reject(rq, "empty dataset");
      auto asset = transform_.publish(p->keys, rq.frs);
      if (!asset) return reject(rq, "publish failed");
      const std::uint64_t token_id = asset->token_id;
      assets_.emplace(token_id, std::move(*asset));
      Response rs = ok(rq);
      rs.value = token_id;
      return rs;
    }
    case Op::kOffer: {
      const Principal* p = principal(rq.client);
      if (p == nullptr) return reject(rq, "unknown client handle");
      const auto it = assets_.find(rq.a);
      if (it == assets_.end()) return reject(rq, "unknown token");
      // The hosted marketplace offers under the trivial predicate (any
      // buyer may inspect via verify_offer / sample disclosure; richer
      // phi stays a library-level feature).
      const core::Predicate phi = [](gadgets::CircuitBuilder&,
                                     std::span<const gadgets::Wire>) {};
      auto offer = exchange_.make_offer(it->second, phi, "any");
      if (!offer) return reject(rq, "offer proof failed");
      offers_.push_back(std::move(*offer));
      Response rs = ok(rq);
      rs.value = offers_.size();  // offer handle
      return rs;
    }
    case Op::kReadExchange: {
      std::optional<chain::ExchangeInfo> xinfo;
      if (reads_ != nullptr) {
        reads_->refresh();
        xinfo = reads_->exchange(rq.a);
      } else if (rq.a >= 1) {
        xinfo = sys_.arbiter_for_exchange(rq.a).exchange(rq.a);
      }
      if (!xinfo) return reject(rq, "unknown exchange");
      Response rs = ok(rq);
      rs.value = static_cast<std::uint64_t>(xinfo->state);
      rs.aux = xinfo->amount;
      rs.fr = xinfo->k_c;
      return rs;
    }
    case Op::kReadBalance: {
      const Principal* p = principal(rq.client);
      if (p == nullptr) return reject(rq, "unknown client handle");
      Response rs = ok(rq);
      if (reads_ != nullptr) {
        reads_->refresh();
        rs.value = reads_->balance(p->addr);
        rs.aux = reads_->height();
      } else {
        rs.value = sys_.chain().balance(p->addr);
        rs.aux = sys_.chain().height();
      }
      return rs;
    }
    default:
      return reject(rq, "not a serial op");
  }
}

std::vector<Response> Dispatcher::run(std::span<const Request> requests) {
  runtime::counters::rpc_inflight.store(requests.size(),
                                        std::memory_order_relaxed);
  std::vector<Response> responses(requests.size());

  struct PendingTx {
    std::size_t index = 0;
    Op op = Op::kPing;
    txpool::TicketPtr ticket;
    // kLock only: the closure writes the arbiter-assigned id here, and
    // the session secrets are recorded once the ticket succeeds.
    std::shared_ptr<std::uint64_t> lock_id;
    ff::Fr k_v;
    std::uint64_t token_id = 0;
    chain::Address sender;  // kTransfer: balance read for the response
  };
  struct PendingProve {
    std::size_t index = 0;
    std::future<std::optional<plonk::Proof>> fut;
  };
  std::vector<PendingTx> txs;
  std::vector<PendingProve> proves;
  auto& pool = sys_.pool();

  // Phase 1: arrival order. Serial ops execute, prove jobs launch onto
  // the prover service (the round's proves coalesce into one group),
  // tx ops build + submit their signed intents into the mempool.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& rq = requests[i];
    if (rq.op == Op::kProve) {
      if (rq.frs.size() != 3) {
        responses[i] = reject(rq, "prove wants {key, key_blinder, k_v}");
        continue;
      }
      gadgets::CircuitBuilder bld =
          core::build_key_circuit(rq.frs[0], rq.frs[1], rq.frs[2]);
      runtime::ProofJob job;
      job.circuit_id = "pi_k";
      job.cs = std::make_shared<const plonk::ConstraintSystem>(bld.cs());
      job.witness = bld.witness();
      // Same per-job rng derivation as ZkdetSystem::prove, so an RPC
      // prove and an in-process prove at the same stream position yield
      // byte-identical proofs.
      job.rng = crypto::Drbg("zkdet-proof-job", sys_.rng()());
      sys_.keys_for("pi_k", *job.cs);  // pin the shape before queueing
      proves.push_back(PendingProve{i, sys_.prover().submit(std::move(job))});
      continue;
    }
    if (!is_tx_op(rq.op)) {
      responses[i] = handle_serial(rq);
      continue;
    }

    const Principal* p = principal(rq.client);
    if (p == nullptr) {
      responses[i] = reject(rq, "unknown client handle");
      continue;
    }
    PendingTx pend;
    pend.index = i;
    pend.op = rq.op;
    switch (rq.op) {
      case Op::kTransfer: {
        const Principal* dest = principal(rq.a);
        if (dest == nullptr) {
          responses[i] = reject(rq, "unknown destination handle");
          continue;
        }
        txpool::AccessSet access;
        access.touch_account(p->addr).touch_account(dest->addr);
        auto intent = txpool::make_intent(
            p->keys, pool.next_nonce(p->addr), "rpc.transfer",
            [](chain::CallContext&) {}, std::move(access),
            /*value=*/rq.b, /*pay_to=*/dest->addr);
        auto res = pool.submit(std::move(intent));
        if (!res.accepted) {
          responses[i] = reject(rq, res.error);
          continue;
        }
        pend.ticket = std::move(res.ticket);
        pend.sender = p->addr;
        break;
      }
      case Op::kLock: {
        if (rq.a == 0 || rq.a > offers_.size()) {
          responses[i] = reject(rq, "unknown offer handle");
          continue;
        }
        const core::Offer& offer = offers_[rq.a - 1];
        const auto info = sys_.nft().token(offer.token_id);
        if (!info) {
          responses[i] = reject(rq, "offer token vanished");
          continue;
        }
        // Buyer k_v is drawn here — a stream-determined point — and
        // custodied until the matching settle/refund (hosted-wallet
        // analogue of BuyerSession).
        pend.k_v = rng_.random_fr();
        pend.token_id = offer.token_id;
        pend.lock_id = std::make_shared<std::uint64_t>(0);
        const ff::Fr h_v = core::hash_key(pend.k_v);
        auto& arb = sys_.arbiter_for_token(offer.token_id);
        txpool::AccessSet access;
        access.write_contract(arb.address())
            .touch_account(p->addr)
            .touch_account(arb.address());
        auto intent = txpool::make_intent(
            p->keys, pool.next_nonce(p->addr), "arbiter.lock",
            [arbp = &arb, seller = info->owner, h_v,
             c_k = info->key_commitment, timeout = rq.c,
             out = pend.lock_id](chain::CallContext& ctx) {
              *out = arbp->lock(ctx, seller, h_v, c_k, timeout);
            },
            std::move(access), /*value=*/rq.b, /*pay_to=*/arb.address());
        auto res = pool.submit(std::move(intent));
        if (!res.accepted) {
          responses[i] = reject(rq, res.error);
          continue;
        }
        pend.ticket = std::move(res.ticket);
        break;
      }
      case Op::kSettle: {
        const auto sess = sessions_.find(rq.a);
        if (sess == sessions_.end()) {
          responses[i] = reject(rq, "unknown exchange");
          continue;
        }
        const auto asset = assets_.find(sess->second.token_id);
        if (asset == assets_.end()) {
          responses[i] = reject(rq, "seller asset missing");
          continue;
        }
        auto intent = exchange_.make_settle_intent(p->keys, asset->second,
                                                   rq.a, sess->second.k_v);
        if (!intent) {
          responses[i] = reject(rq, "settle rejected by seller checks");
          continue;
        }
        auto res = pool.submit(std::move(*intent));
        if (!res.accepted) {
          responses[i] = reject(rq, res.error);
          continue;
        }
        pend.ticket = std::move(res.ticket);
        break;
      }
      case Op::kRefund: {
        if (rq.a < 1) {
          responses[i] = reject(rq, "unknown exchange");
          continue;
        }
        auto& arb = sys_.arbiter_for_exchange(rq.a);
        const auto xinfo = arb.exchange(rq.a);
        if (!xinfo) {
          responses[i] = reject(rq, "unknown exchange");
          continue;
        }
        txpool::AccessSet access;
        access.write_contract(arb.address())
            .touch_account(arb.address())
            .touch_account(xinfo->buyer);
        auto intent = txpool::make_intent(
            p->keys, pool.next_nonce(p->addr), "arbiter.refund",
            [arbp = &arb, id = rq.a](chain::CallContext& ctx) {
              arbp->refund(ctx, id);
            },
            std::move(access));
        auto res = pool.submit(std::move(intent));
        if (!res.accepted) {
          responses[i] = reject(rq, res.error);
          continue;
        }
        pend.ticket = std::move(res.ticket);
        break;
      }
      default:
        responses[i] = reject(rq, "unreachable");
        continue;
    }
    txs.push_back(std::move(pend));
  }

  // Phase 2: one drain seals the round's intents into conflict-free
  // batches — same-batch settle claims share one folded pairing check.
  if (!txs.empty()) pool.drain();

  // Phase 3: resolve tickets into responses.
  for (PendingTx& pend : txs) {
    const Request& rq = requests[pend.index];
    if (!pend.ticket->done() || !pend.ticket->receipt.success) {
      responses[pend.index] =
          reject(rq, pend.ticket->done() ? pend.ticket->receipt.error
                                         : "tx not sealed");
      continue;
    }
    Response rs = ok(rq);
    switch (pend.op) {
      case Op::kTransfer:
        rs.value = sys_.chain().balance(pend.sender);
        break;
      case Op::kLock:
        rs.value = *pend.lock_id;
        sessions_[*pend.lock_id] = Session{pend.k_v, pend.token_id};
        break;
      case Op::kSettle:
      case Op::kRefund:
        rs.value = 1;
        break;
      default:
        break;
    }
    responses[pend.index] = std::move(rs);
  }

  // Phase 4: harvest the round's coalesced prove group.
  for (PendingProve& pend : proves) {
    const Request& rq = requests[pend.index];
    auto proof = pend.fut.get();
    if (!proof) {
      responses[pend.index] = reject(rq, "prover failed");
      continue;
    }
    Response rs = ok(rq);
    rs.bytes = proof->to_bytes();
    responses[pend.index] = std::move(rs);
  }
  if (!proves.empty()) {
    runtime::counters::rpc_batched_proves.fetch_add(
        proves.size(), std::memory_order_relaxed);
  }

  runtime::counters::rpc_inflight.store(0, std::memory_order_relaxed);
  return responses;
}

}  // namespace zkdet::rpc
