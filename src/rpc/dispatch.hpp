// Request dispatcher: THE canonical execution of an RPC intent stream.
//
// run() executes one round of admitted requests against a ZkdetSystem
// in deterministic phases:
//
//   1. serial ops, arrival order: ping / register / publish / offer /
//      reads, plus building + async-submitting every prove job (all of
//      a round's proves coalesce into one ProverService group);
//      transactional ops (transfer / lock / settle / refund) build
//      their signed TxIntents in arrival order — per-sender nonces come
//      from TxPool::next_nonce as each intent is submitted, so a
//      sender's same-round requests get sequential nonces — and enter
//      the mempool.
//   2. one TxPool::drain(): the scheduler seals conflict-free batches,
//      the parallel executor runs them, same-batch settle claims fold
//      into one pairing product (PR-9 path).
//   3. ticket resolution -> responses, then prove-future harvest.
//
// Determinism contract (the byte-identity acceptance test): for a fixed
// system seed, dispatcher seed and request stream, the sealed blocks
// and WAL bytes are identical whether run() is called directly
// (in-process) or by the socket server on admitted rounds — run() is
// the only execution path, and every rng draw happens at a
// stream-determined point. Responses to reads may differ (they observe
// the serving replica's prefix); chain state may not.
//
// The dispatcher custodies principals' keys and published assets (the
// hosted-wallet model): kRegister generates a KeyPair server-side and
// returns an opaque handle. Buyer k_v secrets are drawn from the
// dispatcher's own Drbg at lock time and held per exchange, mirroring
// the off-chain "buyer sends k_v to seller" step inside the operator.
//
// Reads (kReadExchange / kReadBalance) are served from an attached
// FollowerReadView when one is set — prefix-consistent follower reads
// (core/follower_view.hpp): a committed prefix of the primary's
// history, possibly stale, never a state the primary never had. With no
// view attached they read the primary directly.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/exchange.hpp"
#include "core/follower_view.hpp"
#include "core/system.hpp"
#include "core/transformation.hpp"
#include "rpc/wire.hpp"

namespace zkdet::rpc {

class Dispatcher {
 public:
  // `seed` drives principal keygen and buyer k_v draws; equal seeds (and
  // equal request streams) give byte-identical chain effects.
  Dispatcher(core::ZkdetSystem& sys, core::TransformationProtocol& transform,
             std::uint64_t seed = 1);

  // Executes one round; returns responses index-aligned with `requests`.
  // Single-pumper, like TxPool::seal_next_batch: not safe to call
  // concurrently with itself.
  std::vector<Response> run(std::span<const Request> requests);

  // Serve reads from this follower view (nullptr = read the primary).
  // The view must outlive the dispatcher or be detached first.
  void serve_reads_from(core::FollowerReadView* view) { reads_ = view; }

  [[nodiscard]] core::ZkdetSystem& system() { return sys_; }
  [[nodiscard]] std::size_t principals() const { return principals_.size(); }

 private:
  struct Principal {
    crypto::KeyPair keys;
    chain::Address addr;
  };
  // Buyer-side session custody: what settle/refund need later.
  struct Session {
    ff::Fr k_v;
    std::uint64_t token_id = 0;
  };

  [[nodiscard]] const Principal* principal(std::uint64_t handle) const;
  Response handle_serial(const Request& rq);

  core::ZkdetSystem& sys_;
  core::TransformationProtocol& transform_;
  core::KeySecureExchange exchange_;
  crypto::Drbg rng_;
  core::FollowerReadView* reads_ = nullptr;
  std::vector<Principal> principals_;             // handle = index + 1
  std::map<std::uint64_t, core::OwnedAsset> assets_;  // token id -> asset
  std::vector<core::Offer> offers_;               // handle = index + 1
  std::map<std::uint64_t, Session> sessions_;     // exchange id -> session
};

}  // namespace zkdet::rpc
