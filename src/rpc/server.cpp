#include "rpc/server.hpp"

#include <utility>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/wal.hpp"

namespace zkdet::rpc {

Server::Server(Dispatcher& dispatcher, sockio::Fd listener,
               AdmissionConfig cfg)
    : dispatcher_(dispatcher),
      listener_(std::move(listener)),
      admission_(cfg) {}

std::size_t Server::accept_new() {
  std::size_t progress = 0;
  while (auto fd = sockio::accept_one(listener_)) {
    ++progress;
    // Fail-point: the accept path dies after the kernel handed us the
    // connection — the client sees an immediate close and reconnects.
    if (fault::fire(fault::points::kRpcAccept)) continue;  // Fd closes
    auto s = std::make_unique<Session>();
    s->id = next_session_++;
    s->fd = std::move(*fd);
    sessions_.push_back(std::move(s));
  }
  return progress;
}

std::size_t Server::read_sessions() {
  std::size_t progress = 0;
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (s.dead) continue;
    bool closed = false;
    // Bounded by kernel buffer contents: every kOk consumes bytes, any
    // other status breaks.
    for (;;) {  // zkdet-lint: allow(unbounded-retry)
      const auto r = sockio::read_some(s.fd, s.in.stream());
      if (r.status == sockio::IoStatus::kOk) continue;
      if (r.status == sockio::IoStatus::kWouldBlock) break;
      closed = true;  // kClosed / kError: drain buffered frames, then die
      break;
    }
    while (auto payload = s.in.next_payload()) {
      ++progress;
      const auto rq = decode_request(*payload);
      if (!rq) {
        // Valid CRC but not a Request: protocol violation, not line
        // noise — drop the connection rather than guess.
        s.dead = true;
        break;
      }
      if (!admission_.offer(s.id, *rq)) {
        Response shed;
        shed.id = rq->id;
        shed.status = Status::kOverloaded;
        shed.text = "admission queue full";
        queue_response(s, shed);
        continue;
      }
      // Fail-point: the client vanishes right after its request was
      // admitted. The work still executes — the chaos suite proves the
      // chain conserves funds and the exchange settles-xor-refunds —
      // but the response has nowhere to go.
      if (fault::fire(fault::points::kRpcSessionDisconnect)) {
        s.dead = true;
        break;
      }
    }
    if (s.in.poisoned() || closed) s.dead = true;
  }
  return progress;
}

std::size_t Server::dispatch_round() {
  std::vector<Admitted> round = admission_.take_round();
  if (round.empty()) return 0;
  std::vector<Request> requests;
  requests.reserve(round.size());
  for (const Admitted& a : round) requests.push_back(a.request);
  std::vector<Response> responses = dispatcher_.run(requests);
  for (std::size_t i = 0; i < round.size(); ++i) {
    Session* s = find_session(round[i].session);
    if (s == nullptr || s->dead) continue;  // orphaned response: dropped
    queue_response(*s, responses[i]);
  }
  return round.size();
}

void Server::queue_response(Session& s, const Response& rs) {
  const std::vector<std::uint8_t> frame =
      ledger::frame_record(encode_response(rs));
  // Fail-point: the response write tears mid-frame (process death with
  // bytes half-flushed). The client's FrameBuffer sees an incomplete /
  // CRC-dead tail and the connection closes — it can never decode a
  // wrong payload, only miss one.
  if (fault::fire(fault::points::kRpcWriteTorn)) {
    s.out.insert(s.out.end(), frame.begin(),
                 frame.begin() + static_cast<std::ptrdiff_t>(frame.size() / 2));
    s.dead = true;
    return;
  }
  s.out.insert(s.out.end(), frame.begin(), frame.end());
}

std::size_t Server::flush_writes() {
  std::size_t progress = 0;
  for (auto& sp : sessions_) {
    Session& s = *sp;
    // Dead sessions still flush what they already queued (a torn frame
    // must reach the wire for the client to observe the tear).
    while (s.out_off < s.out.size()) {
      const auto r = sockio::write_some(
          s.fd, std::span<const std::uint8_t>(s.out).subspan(s.out_off));
      if (r.status == sockio::IoStatus::kOk) {
        s.out_off += r.n;
        progress += r.n;
        continue;
      }
      if (r.status != sockio::IoStatus::kWouldBlock) s.dead = true;
      break;
    }
    if (s.out_off == s.out.size() && !s.out.empty()) {
      s.out.clear();
      s.out_off = 0;
    }
  }
  return progress;
}

void Server::reap() {
  std::erase_if(sessions_, [](const std::unique_ptr<Session>& s) {
    return s->dead;
  });
}

Server::Session* Server::find_session(std::uint64_t id) {
  for (auto& sp : sessions_) {
    if (sp->id == id) return sp.get();
  }
  return nullptr;
}

std::size_t Server::pump() {
  std::size_t progress = 0;
  progress += accept_new();
  progress += read_sessions();
  progress += dispatch_round();
  progress += flush_writes();
  reap();
  return progress;
}

std::size_t Server::run_until_idle(std::size_t max_rounds) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < max_rounds; ++i) {
    const std::size_t p = pump();
    if (p == 0) break;
    total += p;
  }
  return total;
}

}  // namespace zkdet::rpc
