// The RPC front end: a pump-driven, threadless socket server.
//
// One Server owns a listening socket (unix path or loopback TCP) and a
// set of client sessions. Like every other subsystem outside
// src/runtime, it has no threads of its own: pump() performs one
// bounded round of work —
//
//   accept -> read+decode+admit -> dispatch one admitted round -> flush
//
// — and the caller (a test, bench_rpc, or an embedding node loop)
// decides the cadence. All sockets are non-blocking, so a slow or dead
// client can never stall the pump; its session just stops making
// progress and is reaped when the connection drops.
//
// Back-pressure story (DESIGN.md "RPC front end & admission control"):
// decoded requests go through the bounded AdmissionQueue. A shed
// request is answered immediately with a typed Overloaded response on
// the same connection — load shedding is an answer, not a silence. An
// admitted round (at most ZKDET_RPC_INFLIGHT requests) is executed by
// the shared Dispatcher, so RPC traffic rides the txpool's parallel
// block executor and the folded settlement verification exactly like
// in-process callers.
//
// Fail-points (fault/points.hpp, rpc.*): kRpcAccept drops an accepted
// connection, kRpcSessionDisconnect kills a session right after one of
// its requests was admitted (the work still executes; the response is
// dropped — the chaos suite proves funds stay conserved), kRpcWriteTorn
// truncates a response frame mid-write before killing the session (the
// client sees a CRC-invalid torn tail, never a wrong payload).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rpc/admission.hpp"
#include "rpc/dispatch.hpp"
#include "rpc/socket.hpp"

namespace zkdet::rpc {

class Server {
 public:
  // `listener` must be a non-blocking listening socket (sockio::
  // listen_unix / listen_tcp). The dispatcher must outlive the server.
  Server(Dispatcher& dispatcher, sockio::Fd listener,
         AdmissionConfig cfg = AdmissionConfig::from_env());

  // One bounded round of service. Returns a progress count (accepted
  // connections + frames admitted/shed + requests dispatched + bytes
  // flushed); 0 means the server is idle.
  std::size_t pump();

  // Pumps until an idle round or `max_rounds`; returns total progress.
  std::size_t run_until_idle(std::size_t max_rounds = 10'000);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] AdmissionQueue& admission() { return admission_; }
  [[nodiscard]] Dispatcher& dispatcher() { return dispatcher_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    sockio::Fd fd;
    sockio::FrameBuffer in;
    std::vector<std::uint8_t> out;  // framed responses awaiting flush
    std::size_t out_off = 0;
    bool dead = false;
  };

  std::size_t accept_new();
  std::size_t read_sessions();
  std::size_t dispatch_round();
  std::size_t flush_writes();
  void reap();
  Session* find_session(std::uint64_t id);
  void queue_response(Session& s, const Response& rs);

  Dispatcher& dispatcher_;
  sockio::Fd listener_;
  AdmissionQueue admission_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;
};

}  // namespace zkdet::rpc
