#include "rpc/socket.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "ledger/wal.hpp"

namespace zkdet::rpc::sockio {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::optional<Fd> listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return std::nullopt;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  // A previous run's socket file would make bind fail with EADDRINUSE;
  // the listener owns its path, so replacing a stale file is safe.
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return std::nullopt;
  }
  if (::listen(fd.get(), backlog) != 0) return std::nullopt;
  return fd;
}

std::optional<Fd> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return std::nullopt;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  // A non-blocking AF_UNIX connect to a live listener completes
  // immediately (the kernel queues it on the backlog); EAGAIN means the
  // backlog is full, which callers treat as connection failure.
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return std::nullopt;
  }
  return fd;
}

std::optional<Fd> listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
                             int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return std::nullopt;
  }
  if (::listen(fd.get(), backlog) != 0) return std::nullopt;
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      return std::nullopt;
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

std::optional<Fd> connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Blocking connect on purpose: loopback handshakes complete in one
  // round and a connected-or-failed answer keeps callers simple. The
  // descriptor goes non-blocking before any data moves.
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return std::nullopt;
  }
  if (!set_nonblocking(fd.get())) return std::nullopt;
  return fd;
}

std::optional<std::pair<Fd, Fd>> stream_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   fds) != 0) {
    return std::nullopt;
  }
  return std::make_pair(Fd(fds[0]), Fd(fds[1]));
}

std::optional<Fd> accept_one(const Fd& listener) {
  if (!listener.valid()) return std::nullopt;
  const int fd = ::accept4(listener.get(), nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return std::nullopt;
  return Fd(fd);
}

IoResult read_some(const Fd& fd, std::vector<std::uint8_t>& out) {
  if (!fd.valid()) return {IoStatus::kError, 0};
  std::uint8_t chunk[64 * 1024];
  const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
  if (n > 0) {
    out.insert(out.end(), chunk, chunk + n);
    return {IoStatus::kOk, static_cast<std::size_t>(n)};
  }
  if (n == 0) return {IoStatus::kClosed, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kError, 0};
}

IoResult write_some(const Fd& fd, std::span<const std::uint8_t> buf) {
  if (!fd.valid()) return {IoStatus::kError, 0};
  if (buf.empty()) return {IoStatus::kOk, 0};
  const ssize_t n = ::send(fd.get(), buf.data(), buf.size(), MSG_NOSIGNAL);
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kError, 0};
}

std::optional<std::vector<std::uint8_t>> FrameBuffer::next_payload() {
  while (!poisoned_) {
    const std::size_t avail = buf_.size() - off_;
    if (avail < ledger::kFrameHeaderSize) break;
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[off_]) |
                              static_cast<std::uint32_t>(buf_[off_ + 1]) << 8 |
                              static_cast<std::uint32_t>(buf_[off_ + 2]) << 16 |
                              static_cast<std::uint32_t>(buf_[off_ + 3]) << 24;
    if (len > ledger::kMaxRecordPayload) {
      // The length prefix itself is garbage; frame boundaries are gone.
      poisoned_ = true;
      break;
    }
    const std::size_t total = ledger::kFrameHeaderSize + len;
    if (avail < total) break;  // incomplete tail; wait for more bytes
    const auto rec = ledger::parse_record(buf_, off_);
    if (rec && rec->next_offset == off_ + total) {
      std::vector<std::uint8_t> payload(rec->payload.begin(),
                                        rec->payload.end());
      off_ += total;
      compact();
      return payload;
    }
    // Complete frame, bad CRC: a datagram lost in transit. Skip it.
    off_ += total;
  }
  compact();
  return std::nullopt;
}

void FrameBuffer::compact() {
  if (off_ == 0) return;
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ >= 64 * 1024) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
}

}  // namespace zkdet::rpc::sockio
