// Minimal non-blocking socket layer (zkdet_sockio).
//
// This file and src/replication are the ONLY places in the tree allowed
// to issue raw socket syscalls (enforced by scripts/lint_zkdet.py, rule
// raw-socket-io). Everything above works in terms of RAII `Fd`s and the
// four byte-level operations below; everything here is non-blocking by
// construction, so the pump-driven subsystems (rpc::Server, the
// replication SocketLink) never stall a pump on a slow peer.
//
// Scope is deliberately local-only: AF_UNIX paths and 127.0.0.1 TCP.
// The serving layer is a front end for one operator node, not an
// internet-facing listener; binding a routable address is a deployment
// concern outside this repo.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace zkdet::rpc::sockio {

// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  // Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Outcome of one non-blocking read/write.
enum class IoStatus : std::uint8_t {
  kOk = 0,          // made progress (n bytes)
  kWouldBlock = 1,  // no progress; retry on a later pump
  kClosed = 2,      // orderly EOF (read) — peer is gone
  kError = 3,       // connection dead (ECONNRESET, EPIPE, ...)
};

struct IoResult {
  IoStatus status = IoStatus::kWouldBlock;
  std::size_t n = 0;  // bytes moved this call
};

// --- listeners / connectors (all descriptors come back non-blocking) ---

// AF_UNIX stream listener at `path`. Replaces a stale socket file.
// nullopt on failure (path too long for sun_path, bind error, ...).
[[nodiscard]] std::optional<Fd> listen_unix(const std::string& path,
                                            int backlog = 64);
[[nodiscard]] std::optional<Fd> connect_unix(const std::string& path);

// TCP listener on 127.0.0.1. `port` 0 picks an ephemeral port; the
// actual bound port is written to *bound_port when non-null.
[[nodiscard]] std::optional<Fd> listen_tcp(std::uint16_t port,
                                           std::uint16_t* bound_port = nullptr,
                                           int backlog = 64);
[[nodiscard]] std::optional<Fd> connect_tcp(std::uint16_t port);

// Connected AF_UNIX stream pair (both ends non-blocking): the loopback
// transport for in-process tests of out-of-process wiring.
[[nodiscard]] std::optional<std::pair<Fd, Fd>> stream_pair();

// Accepts one pending connection; nullopt when none is queued (or the
// listener is dead). The accepted descriptor is non-blocking.
[[nodiscard]] std::optional<Fd> accept_one(const Fd& listener);

// Appends whatever is immediately readable (bounded by one internal
// chunk per call) to `out`.
[[nodiscard]] IoResult read_some(const Fd& fd, std::vector<std::uint8_t>& out);

// Writes as much of `buf` as the kernel will take right now. SIGPIPE is
// suppressed (a dead peer reports kError instead of killing the
// process).
[[nodiscard]] IoResult write_some(const Fd& fd,
                                  std::span<const std::uint8_t> buf);

// Stream reassembly: a byte stream in, complete CRC-framed datagram
// payloads out (ledger/wal.hpp framing — u32 len + u32 crc32c +
// payload, the same frame the WAL and the replication transport use).
//
// A complete frame whose CRC fails is SKIPPED using its length prefix —
// the datagram is "lost in transit" and the stream stays aligned,
// matching replication::Link's lossy drop-on-corrupt contract. A length
// prefix beyond kMaxRecordPayload cannot be skipped safely (the prefix
// itself is untrustworthy), so it poisons the buffer: the owner must
// drop the connection.
class FrameBuffer {
 public:
  // Raw stream bytes land here (hand this to read_some).
  [[nodiscard]] std::vector<std::uint8_t>& stream() { return buf_; }

  // Payload of the next complete valid frame; nullopt when no complete
  // frame is buffered (or the buffer is poisoned).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next_payload();

  [[nodiscard]] bool poisoned() const { return poisoned_; }
  // Bytes buffered but not yet consumed (incomplete tail).
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size() - off_; }

 private:
  void compact();
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
  bool poisoned_ = false;
};

}  // namespace zkdet::rpc::sockio
