#include "rpc/wire.hpp"

#include "ledger/codec.hpp"

namespace zkdet::rpc {

namespace {

// Sanity bounds: a request is a few field elements, a response carries
// at most one proof. Anything claiming more is malformed, not big.
constexpr std::size_t kMaxRequestFrs = 4096;
constexpr std::size_t kMaxResponseBytes = 1u << 20;

bool valid_op(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(Op::kPing) &&
         raw <= static_cast<std::uint8_t>(Op::kReadBalance);
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kRegister: return "register";
    case Op::kTransfer: return "transfer";
    case Op::kProve: return "prove";
    case Op::kPublish: return "publish";
    case Op::kOffer: return "offer";
    case Op::kLock: return "lock";
    case Op::kSettle: return "settle";
    case Op::kRefund: return "refund";
    case Op::kReadExchange: return "read-exchange";
    case Op::kReadBalance: return "read-balance";
  }
  return "?";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kRejected: return "rejected";
    case Status::kError: return "error";
  }
  return "?";
}

std::vector<std::uint8_t> encode_request(const Request& rq) {
  ledger::Writer w;
  w.u8(static_cast<std::uint8_t>(rq.op));
  w.u64(rq.id);
  w.u64(rq.client);
  w.u64(rq.a);
  w.u64(rq.b);
  w.u64(rq.c);
  w.u32(static_cast<std::uint32_t>(rq.frs.size()));
  for (const auto& f : rq.frs) w.fr(f);
  return w.take();
}

std::optional<Request> decode_request(std::span<const std::uint8_t> payload) {
  try {
    ledger::Reader r(payload);
    const std::uint8_t raw_op = r.u8();
    if (!valid_op(raw_op)) return std::nullopt;
    Request rq;
    rq.op = static_cast<Op>(raw_op);
    rq.id = r.u64();
    rq.client = r.u64();
    rq.a = r.u64();
    rq.b = r.u64();
    rq.c = r.u64();
    const std::uint32_t n = r.u32();
    if (n > kMaxRequestFrs) return std::nullopt;
    r.check_count(n, 32);
    rq.frs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) rq.frs.push_back(r.fr());
    r.expect_end();
    return rq;
  } catch (const ledger::CodecError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_response(const Response& rs) {
  ledger::Writer w;
  w.u64(rs.id);
  w.u8(static_cast<std::uint8_t>(rs.status));
  w.u64(rs.value);
  w.u64(rs.aux);
  w.fr(rs.fr);
  w.u32(static_cast<std::uint32_t>(rs.bytes.size()));
  w.bytes(rs.bytes);
  w.str(rs.text);
  return w.take();
}

std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload) {
  try {
    ledger::Reader r(payload);
    Response rs;
    rs.id = r.u64();
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(Status::kError)) return std::nullopt;
    rs.status = static_cast<Status>(raw);
    rs.value = r.u64();
    rs.aux = r.u64();
    rs.fr = r.fr();
    const std::uint32_t n = r.u32();
    if (n > kMaxResponseBytes || n > r.remaining()) return std::nullopt;
    rs.bytes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) rs.bytes.push_back(r.u8());
    rs.text = r.str();
    r.expect_end();
    return rs;
  } catch (const ledger::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace zkdet::rpc
