// RPC wire protocol: typed requests/responses over CRC-framed datagrams.
//
// Transport framing reuses the WAL/replication frame (u32 len + u32
// crc32c + payload; sockio::FrameBuffer reassembles them from the byte
// stream), and the payload codec reuses the ledger's canonical Writer/
// Reader — one length-prefix/endianness/bounds-check discipline across
// the whole tree. Decoders are strict: a malformed payload decodes to
// nullopt, never to a half-trusted request.
//
// Request field usage per op ("client" is the server-assigned principal
// handle returned by kRegister; the server custodies keys and assets —
// the hosted-wallet model a serving front end implies):
//
//   kPing          (none)                        -> value echoed a
//   kRegister      a=initial deposit             -> value=client handle
//   kTransfer      client=sender, a=dest handle,
//                  b=amount                      -> value=sender balance
//   kProve         frs={key, key_blinder, k_v}   -> bytes=pi_k proof
//   kPublish       client=owner, frs=plaintext   -> value=token id
//   kOffer         client=seller, a=token id     -> value=offer handle
//   kLock          client=buyer, a=offer handle,
//                  b=amount, c=timeout blocks    -> value=exchange id
//   kSettle        client=seller, a=exchange id  -> value=1
//   kRefund        client=buyer, a=exchange id   -> value=1
//   kReadExchange  a=exchange id                 -> value=state,
//                                                   aux=amount, fr=k_c
//   kReadBalance   client                        -> value=balance,
//                                                   aux=read height
//
// A request that depends on the *effects* of an earlier transactional
// request (e.g. settle after lock) must be issued after the earlier
// one's response arrived: within one dispatch round, transaction
// intents are built in arrival order against pre-round chain state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ff/bn254.hpp"

namespace zkdet::rpc {

enum class Op : std::uint8_t {
  kPing = 1,
  kRegister = 2,
  kTransfer = 3,
  kProve = 4,
  kPublish = 5,
  kOffer = 6,
  kLock = 7,
  kSettle = 8,
  kRefund = 9,
  kReadExchange = 10,
  kReadBalance = 11,
};

[[nodiscard]] const char* op_name(Op op);

struct Request {
  Op op = Op::kPing;
  std::uint64_t id = 0;      // client correlation id, echoed verbatim
  std::uint64_t client = 0;  // principal handle (0 = none)
  std::uint64_t a = 0;       // op-specific (see table above)
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::vector<ff::Fr> frs;  // op-specific field elements
};

enum class Status : std::uint8_t {
  kOk = 0,
  // Shed by admission control BEFORE any work ran: the system is at
  // capacity and the client should back off and retry. This is the one
  // status whose request had no effect by construction.
  kOverloaded = 1,
  // Refused by validation (unknown handle, bad arity, unknown op).
  kRejected = 2,
  // Accepted but failed during execution (tx reverted, prover failed).
  kError = 3,
};

[[nodiscard]] const char* status_name(Status s);

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::uint64_t value = 0;
  std::uint64_t aux = 0;
  ff::Fr fr;
  std::vector<std::uint8_t> bytes;
  std::string text;  // diagnostic for kRejected / kError
};

// Payload codecs (the caller wraps payloads with ledger::frame_record
// for the wire; sockio::FrameBuffer hands back exactly these payloads).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& rq);
[[nodiscard]] std::optional<Request> decode_request(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& rs);
[[nodiscard]] std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload);

}  // namespace zkdet::rpc
