#include "runtime/prover_service.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace zkdet::runtime {

const char* prove_error_name(ProveError e) {
  switch (e) {
    case ProveError::kNone: return "none";
    case ProveError::kSrsTooSmall: return "srs-too-small";
    case ProveError::kUnsatisfiedWitness: return "unsatisfied-witness";
    case ProveError::kInjectedFault: return "injected-fault";
  }
  return "unknown";
}

ProverService::ProverService(const plonk::Srs& srs,
                             std::size_t key_cache_capacity)
    : srs_(srs), capacity_(std::max<std::size_t>(1, key_cache_capacity)) {
  // Warm the SRS's batch-normalized affine power table here, alongside
  // the proving/verifying-key cache: it is normalized once per SRS (one
  // field inversion for the whole vector) and then shared by every
  // commit() of every job this service runs, instead of showing up as
  // latency inside the first proof.
  srs_.g1_powers_affine();
}

std::shared_ptr<const plonk::KeyPairResult> ProverService::keys_for(
    const std::string& circuit_id, const plonk::ConstraintSystem& cs) {
  std::shared_future<KeyPtr> wait_on;
  std::promise<KeyPtr> mine;
  {
    const MutexLock lk(m_);
    const auto it = index_.find(circuit_id);
    if (it != index_.end()) {
      counters::key_cache_hits.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      return it->second->second;
    }
    const auto fl = inflight_.find(circuit_id);
    if (fl != inflight_.end()) {
      counters::key_cache_hits.fetch_add(1, std::memory_order_relaxed);
      wait_on = fl->second;
    } else {
      counters::key_cache_misses.fetch_add(1, std::memory_order_relaxed);
      inflight_.emplace(circuit_id, mine.get_future().share());
    }
  }
  if (wait_on.valid()) return wait_on.get();

  // We own the miss: preprocess outside the lock.
  KeyPtr keys;
  if (auto result = plonk::preprocess(cs, srs_)) {
    keys = std::make_shared<const plonk::KeyPairResult>(std::move(*result));
  }
  {
    const MutexLock lk(m_);
    inflight_.erase(circuit_id);
    if (keys) {
      lru_.emplace_front(circuit_id, keys);
      index_[circuit_id] = lru_.begin();
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        counters::key_cache_evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  mine.set_value(keys);
  return keys;
}

std::shared_ptr<const plonk::KeyPairResult> ProverService::find_keys(
    const std::string& circuit_id) const {
  const MutexLock lk(m_);
  const auto it = index_.find(circuit_id);
  return it == index_.end() ? nullptr : it->second->second;
}

std::future<ProveOutcome> ProverService::submit_typed(ProofJob job) {
  counters::jobs_submitted.fetch_add(1, std::memory_order_relaxed);
  auto run = [this, job = std::move(job)]() mutable -> ProveOutcome {
    ProveOutcome out;
    out.attempts = 1;
    // Fail-point: the worker executing this job dies mid-proof. The
    // job's result is a typed, retryable error — never a lost future.
    if (fault::fire(fault::points::kProverJob)) {
      out.error = ProveError::kInjectedFault;
    } else if (const auto keys = keys_for(job.circuit_id, *job.cs); !keys) {
      out.error = ProveError::kSrsTooSmall;
    } else {
      out.proof = plonk::prove(keys->pk, *job.cs, srs_, job.witness, job.rng);
      if (!out.proof) out.error = ProveError::kUnsatisfiedWitness;
    }
    counters::jobs_completed.fetch_add(1, std::memory_order_relaxed);
    if (!out.proof) {
      counters::jobs_failed.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  };
  auto task =
      std::make_shared<std::packaged_task<ProveOutcome()>>(std::move(run));
  auto fut = task->get_future();
  auto& pool = ThreadPool::instance();
  if (pool.concurrency() <= 1 || ThreadPool::on_worker_thread()) {
    (*task)();  // no workers, or we are one: run inline instead of blocking
  } else {
    pool.submit([task] { (*task)(); });
  }
  return fut;
}

std::future<std::optional<plonk::Proof>> ProverService::submit(ProofJob job) {
  // Untyped view of submit_typed for callers that only need the proof.
  auto typed = std::make_shared<std::future<ProveOutcome>>(
      submit_typed(std::move(job)));
  return std::async(std::launch::deferred, [typed] {
    return typed->get().proof;
  });
}

std::optional<plonk::Proof> ProverService::prove(ProofJob job) {
  return submit_typed(std::move(job)).get().proof;
}

ProveOutcome ProverService::prove_with_retry(const ProofJob& job,
                                             RetryPolicy policy) {
  // Bounded by construction: Backoff grants at most max_attempts and
  // records a deterministic jittered delay per retry (never slept).
  Backoff backoff(policy.backoff());
  ProveOutcome out;
  while (backoff.next_attempt()) {
    ProveOutcome step = submit_typed(job).get();  // job copied per attempt
    out.proof = std::move(step.proof);
    out.error = step.error;
    out.attempts += step.attempts;
    if (out.proof || out.error != ProveError::kInjectedFault) break;
  }
  out.backoff_us = backoff.total_delay_us();
  return out;
}

bool ProverService::batch_verify(std::span<const plonk::BatchEntry> entries) {
  return batch_verify_attributed(entries).all_ok();
}

plonk::BatchResult ProverService::batch_verify_attributed(
    std::span<const plonk::BatchEntry> entries) {
  counters::batch_verifications.fetch_add(1, std::memory_order_relaxed);
  counters::proofs_verified.fetch_add(entries.size(),
                                      std::memory_order_relaxed);
  ScopedTimer timer(counters::verify_ns);
  return plonk::batch_verify_attributed(entries);
}

std::size_t ProverService::key_cache_size() const {
  const MutexLock lk(m_);
  return lru_.size();
}

}  // namespace zkdet::runtime
