// Asynchronous proof-job service with a proving/verifying-key cache.
//
// ProverService turns plonk::prove into a queued job: submit() enqueues
// the job on the shared ThreadPool and returns a future; the expensive
// per-circuit preprocessing (SRS-sized selector/sigma commitments) is
// paid once per circuit id and cached in an LRU, so a marketplace
// serving many proofs over a few circuit shapes amortizes setup the way
// the paper's deployment compiles each Circom circuit once. The SRS's
// batch-normalized affine power table (the base vector of every
// commit() MSM) is warmed at construction, so it too is built once per
// SRS rather than once per proof.
//
// Determinism contract: a job carries its own Drbg, so the blinder
// stream consumed by a proof is a function of the job alone — the same
// (circuit, witness, rng seed) yields byte-identical proofs at any
// worker count (tests/test_runtime.cpp asserts this at 1/2/8).
//
// batch_verify() shares the pairing-side work across proofs: each proof
// reduces to one KZG pairing check e(L_i, [tau]_2) * e(-R_i, [1]_2) = 1;
// a random linear combination collapses N such checks into a single
// 2-pairing product (2 pairings total instead of 2N).
#pragma once

#include <future>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/mutex.hpp"
#include "crypto/rng.hpp"
#include "plonk/plonk.hpp"
#include "runtime/retry.hpp"

namespace zkdet::runtime {

// One unit of proving work. `cs` is shared immutably with the worker;
// `rng` seeds the proof's blinders (copied in, consumed by the job).
struct ProofJob {
  std::string circuit_id;  // key cache key; must encode all size params
  std::shared_ptr<const plonk::ConstraintSystem> cs;
  std::vector<ff::Fr> witness;
  crypto::Drbg rng{0};
};

// Why a proof job produced no proof. kInjectedFault is the only
// transient class (a simulated worker crash via the prover.job
// fail-point); the others are permanent properties of the job and are
// never retried.
enum class ProveError : std::uint8_t {
  kNone = 0,
  kSrsTooSmall = 1,        // circuit domain exceeds the service's SRS
  kUnsatisfiedWitness = 2,  // witness does not satisfy the circuit
  kInjectedFault = 3,       // worker died (fault injection); retryable
};

[[nodiscard]] const char* prove_error_name(ProveError e);

// Terminal result of a job, possibly after retries. A failed job is
// never silently lost: either `proof` is set or `error` says why not,
// and `attempts` records how much work it took.
struct ProveOutcome {
  std::optional<plonk::Proof> proof;
  ProveError error = ProveError::kNone;
  int attempts = 0;
  // Virtual backoff recorded between attempts (never slept; see
  // runtime/retry.hpp).
  std::uint64_t backoff_us = 0;
};

// Bounded retry policy for transient job failures, realized by
// runtime::Backoff: jittered exponential delays, deterministic under
// `jitter_seed`, and always virtual (recorded, not slept): the
// in-process substrate has no network to wait out, and sleeping would
// only slow tests; see DESIGN.md.
struct RetryPolicy {
  int max_attempts = 3;
  std::uint64_t base_delay_us = 100;
  std::uint64_t max_delay_us = 100'000;
  std::uint64_t jitter_seed = 0;

  [[nodiscard]] BackoffPolicy backoff() const {
    BackoffPolicy p;
    p.max_attempts = max_attempts;
    p.base_delay_us = base_delay_us;
    p.max_delay_us = max_delay_us;
    p.seed = jitter_seed;
    return p;
  }
};

class ProverService {
 public:
  // `srs` must outlive the service. `key_cache_capacity` bounds the
  // number of cached per-circuit key pairs (LRU eviction).
  explicit ProverService(const plonk::Srs& srs,
                         std::size_t key_cache_capacity = 128);

  // Returns the cached keys for `circuit_id`, preprocessing `cs` on
  // first use. Concurrent misses for the same id deduplicate: one
  // caller preprocesses, the rest wait on its result. Returns nullptr
  // when the SRS is too small for the circuit.
  std::shared_ptr<const plonk::KeyPairResult> keys_for(
      const std::string& circuit_id, const plonk::ConstraintSystem& cs);

  // Lookup-only (no preprocessing, no LRU touch); nullptr when absent.
  [[nodiscard]] std::shared_ptr<const plonk::KeyPairResult> find_keys(
      const std::string& circuit_id) const;

  // Enqueues the job on the shared ThreadPool. The future resolves to
  // nullopt when the witness does not satisfy the circuit or the SRS is
  // too small. Runs inline when the pool is single-threaded or the
  // caller is itself a pool worker (a blocking wait there would starve
  // the pool).
  std::future<std::optional<plonk::Proof>> submit(ProofJob job);

  // Typed variant: the future resolves to a ProveOutcome whose error
  // distinguishes transient (injected fault) from permanent failures.
  std::future<ProveOutcome> submit_typed(ProofJob job);

  // submit() + wait.
  std::optional<plonk::Proof> prove(ProofJob job);

  // submit_typed() + wait, retrying transient failures up to
  // policy.max_attempts total attempts. Permanent errors (bad witness,
  // SRS too small) return immediately. The returned outcome is always
  // conclusive: a proof, or a typed error after the attempt budget.
  ProveOutcome prove_with_retry(const ProofJob& job, RetryPolicy policy = {});

  // Verifies all (vk, publics, proof) triples with one shared pairing
  // product per SRS group. Empty input verifies trivially.
  static bool batch_verify(std::span<const plonk::BatchEntry> entries);

  // Attributed variant: per-entry verdicts with fold-failure bisection,
  // so one forged proof no longer rejects (or DoSes) the whole batch.
  static plonk::BatchResult batch_verify_attributed(
      std::span<const plonk::BatchEntry> entries);

  [[nodiscard]] std::size_t key_cache_size() const;
  [[nodiscard]] std::size_t key_cache_capacity() const { return capacity_; }

 private:
  using KeyPtr = std::shared_ptr<const plonk::KeyPairResult>;

  const plonk::Srs& srs_;
  const std::size_t capacity_;

  mutable Mutex m_{check::LockLevel::kProverCache, "prover.key-cache"};
  // LRU: front = most recently used.
  std::list<std::pair<std::string, KeyPtr>> lru_ ZKDET_GUARDED_BY(m_);
  std::unordered_map<std::string, std::list<std::pair<std::string, KeyPtr>>::iterator>
      index_ ZKDET_GUARDED_BY(m_);
  // De-duplicates concurrent preprocessing of the same circuit id.
  std::unordered_map<std::string, std::shared_future<KeyPtr>> inflight_
      ZKDET_GUARDED_BY(m_);
};

}  // namespace zkdet::runtime
