// Bounded, jittered, deterministic retry backoff.
//
// One Backoff instance paces one retry loop: next_attempt() grants
// attempts until the policy budget is spent, recording an exponentially
// growing, jitter-decorrelated delay before each retry. Delays are
// VIRTUAL — recorded, never slept. The in-process substrate has no
// network to wait out, and sleeping would only slow tests; callers that
// pace real work (the replication shipper) convert the recorded delay
// into pump rounds instead (see DESIGN.md "Replication & failover").
//
// Determinism: the jitter for retry k is a pure function of
// (policy.seed, k) via a splitmix64 mix — the same policy replays the
// same delay sequence on every run, which is what lets the failover
// chaos matrix reproduce a schedule from its seed alone.
//
// The canonical loop shape (bounded by construction, so the
// unbounded-retry lint never needs an annotation):
//
//   Backoff backoff(policy);
//   while (backoff.next_attempt()) {
//     if (try_once()) break;            // success
//   }                                   // false => budget exhausted
#pragma once

#include <algorithm>
#include <cstdint>

namespace zkdet::runtime {

struct BackoffPolicy {
  // Total attempts granted (first try + retries). Values < 1 behave
  // as 1: a Backoff always grants at least the initial attempt.
  int max_attempts = 3;
  // Delay before the first retry; doubles per retry up to max_delay_us.
  std::uint64_t base_delay_us = 100;
  std::uint64_t max_delay_us = 100'000;
  // Fraction of each delay that jitter may subtract, in [0, 1]. Jitter
  // only ever shortens a delay, so max_delay_us stays a hard ceiling.
  double jitter = 0.25;
  // Seed of the deterministic jitter stream.
  std::uint64_t seed = 0;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}) : policy_(policy) {}

  // Grants the next attempt, or returns false once the budget is spent.
  // The first grant carries no delay; grant k (k >= 2) records the
  // jittered exponential delay for retry k-1 in last_delay_us().
  [[nodiscard]] bool next_attempt() {
    if (attempts_ >= std::max(1, policy_.max_attempts)) return false;
    ++attempts_;
    last_delay_us_ = attempts_ == 1 ? 0 : delay_for(attempts_ - 1);
    total_delay_us_ += last_delay_us_;
    return true;
  }

  // Re-arms the full budget (e.g. the shipper after a successful ack:
  // the next stall starts a fresh escalation).
  void reset() {
    attempts_ = 0;
    last_delay_us_ = 0;
    total_delay_us_ = 0;
  }

  [[nodiscard]] int attempts() const { return attempts_; }
  [[nodiscard]] bool exhausted() const {
    return attempts_ >= std::max(1, policy_.max_attempts);
  }
  // Virtual delay recorded for the most recent grant.
  [[nodiscard]] std::uint64_t last_delay_us() const { return last_delay_us_; }
  // Sum of all recorded delays since construction/reset.
  [[nodiscard]] std::uint64_t total_delay_us() const {
    return total_delay_us_;
  }

  // Pure delay schedule: the jittered delay before retry `retry`
  // (1-based). Exposed so tests can assert determinism without driving
  // a loop.
  [[nodiscard]] std::uint64_t delay_for(int retry) const {
    if (retry < 1) return 0;
    const int shift = std::min(retry - 1, 63);
    std::uint64_t d = policy_.base_delay_us;
    // Saturating base << shift.
    if (shift > 0) {
      d = (shift >= 64 || d > (~std::uint64_t{0} >> shift)) ? ~std::uint64_t{0}
                                                            : d << shift;
    }
    d = std::min(d, policy_.max_delay_us);
    const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
    const auto span = static_cast<std::uint64_t>(
        static_cast<double>(d) * jitter);
    if (span == 0) return d;
    const std::uint64_t r =
        mix(policy_.seed ^ (0x9e3779b97f4a7c15ULL *
                            static_cast<std::uint64_t>(retry)));
    return d - r % (span + 1);
  }

 private:
  // splitmix64 finalizer: a well-mixed pure function of its input.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  BackoffPolicy policy_;
  int attempts_ = 0;
  std::uint64_t last_delay_us_ = 0;
  std::uint64_t total_delay_us_ = 0;
};

}  // namespace zkdet::runtime
