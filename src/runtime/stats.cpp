#include "runtime/stats.hpp"

namespace zkdet::runtime {

namespace counters {
std::atomic<std::uint64_t> jobs_submitted{0};
std::atomic<std::uint64_t> jobs_completed{0};
std::atomic<std::uint64_t> jobs_failed{0};
std::atomic<std::uint64_t> key_cache_hits{0};
std::atomic<std::uint64_t> key_cache_misses{0};
std::atomic<std::uint64_t> key_cache_evictions{0};
std::atomic<std::uint64_t> proofs_verified{0};
std::atomic<std::uint64_t> batch_verifications{0};
std::atomic<std::uint64_t> batch_fold_checks{0};
std::atomic<std::uint64_t> batch_entries_folded{0};
std::atomic<std::uint64_t> batch_invalid_attributed{0};
std::atomic<std::uint64_t> settle_batches{0};
std::atomic<std::uint64_t> settle_claims{0};
std::atomic<std::uint64_t> settle_max_fold{0};
std::atomic<std::uint64_t> parallel_regions{0};
std::atomic<std::uint64_t> chunks_executed{0};
std::atomic<std::uint64_t> chunks_stolen{0};
std::atomic<std::uint64_t> txpool_submitted{0};
std::atomic<std::uint64_t> txpool_rejected{0};
std::atomic<std::uint64_t> txpool_replaced{0};
std::atomic<std::uint64_t> txpool_batches_sealed{0};
std::atomic<std::uint64_t> txpool_txs_executed{0};
std::atomic<std::uint64_t> txpool_conflict_aborts{0};
std::atomic<std::uint64_t> txpool_queue_depth{0};
std::atomic<std::uint64_t> repl_records_shipped{0};
std::atomic<std::uint64_t> repl_retransmits{0};
std::atomic<std::uint64_t> repl_snapshots_shipped{0};
std::atomic<std::uint64_t> repl_records_applied{0};
std::atomic<std::uint64_t> repl_failstops{0};
std::atomic<std::uint64_t> rpc_admitted{0};
std::atomic<std::uint64_t> rpc_shed{0};
std::atomic<std::uint64_t> rpc_batched_proves{0};
std::atomic<std::uint64_t> rpc_inflight{0};
std::atomic<std::uint64_t> rpc_queue_depth{0};
std::atomic<std::uint64_t> msm_ns{0};
std::atomic<std::uint64_t> ntt_ns{0};
std::atomic<std::uint64_t> quotient_ns{0};
std::atomic<std::uint64_t> preprocess_ns{0};
std::atomic<std::uint64_t> prove_ns{0};
std::atomic<std::uint64_t> verify_ns{0};
}  // namespace counters

StatsSnapshot stats() {
  StatsSnapshot s;
  s.jobs_submitted = counters::jobs_submitted.load(std::memory_order_relaxed);
  s.jobs_completed = counters::jobs_completed.load(std::memory_order_relaxed);
  s.jobs_failed = counters::jobs_failed.load(std::memory_order_relaxed);
  s.key_cache_hits = counters::key_cache_hits.load(std::memory_order_relaxed);
  s.key_cache_misses =
      counters::key_cache_misses.load(std::memory_order_relaxed);
  s.key_cache_evictions =
      counters::key_cache_evictions.load(std::memory_order_relaxed);
  s.proofs_verified = counters::proofs_verified.load(std::memory_order_relaxed);
  s.batch_verifications =
      counters::batch_verifications.load(std::memory_order_relaxed);
  s.batch_fold_checks =
      counters::batch_fold_checks.load(std::memory_order_relaxed);
  s.batch_entries_folded =
      counters::batch_entries_folded.load(std::memory_order_relaxed);
  s.batch_invalid_attributed =
      counters::batch_invalid_attributed.load(std::memory_order_relaxed);
  s.settle_batches = counters::settle_batches.load(std::memory_order_relaxed);
  s.settle_claims = counters::settle_claims.load(std::memory_order_relaxed);
  s.settle_max_fold =
      counters::settle_max_fold.load(std::memory_order_relaxed);
  s.parallel_regions =
      counters::parallel_regions.load(std::memory_order_relaxed);
  s.chunks_executed = counters::chunks_executed.load(std::memory_order_relaxed);
  s.chunks_stolen = counters::chunks_stolen.load(std::memory_order_relaxed);
  s.txpool_submitted =
      counters::txpool_submitted.load(std::memory_order_relaxed);
  s.txpool_rejected = counters::txpool_rejected.load(std::memory_order_relaxed);
  s.txpool_replaced = counters::txpool_replaced.load(std::memory_order_relaxed);
  s.txpool_batches_sealed =
      counters::txpool_batches_sealed.load(std::memory_order_relaxed);
  s.txpool_txs_executed =
      counters::txpool_txs_executed.load(std::memory_order_relaxed);
  s.txpool_conflict_aborts =
      counters::txpool_conflict_aborts.load(std::memory_order_relaxed);
  s.txpool_queue_depth =
      counters::txpool_queue_depth.load(std::memory_order_relaxed);
  s.repl_records_shipped =
      counters::repl_records_shipped.load(std::memory_order_relaxed);
  s.repl_retransmits =
      counters::repl_retransmits.load(std::memory_order_relaxed);
  s.repl_snapshots_shipped =
      counters::repl_snapshots_shipped.load(std::memory_order_relaxed);
  s.repl_records_applied =
      counters::repl_records_applied.load(std::memory_order_relaxed);
  s.repl_failstops = counters::repl_failstops.load(std::memory_order_relaxed);
  s.rpc_admitted = counters::rpc_admitted.load(std::memory_order_relaxed);
  s.rpc_shed = counters::rpc_shed.load(std::memory_order_relaxed);
  s.rpc_batched_proves =
      counters::rpc_batched_proves.load(std::memory_order_relaxed);
  s.rpc_inflight = counters::rpc_inflight.load(std::memory_order_relaxed);
  s.rpc_queue_depth =
      counters::rpc_queue_depth.load(std::memory_order_relaxed);
  s.msm_ns = counters::msm_ns.load(std::memory_order_relaxed);
  s.ntt_ns = counters::ntt_ns.load(std::memory_order_relaxed);
  s.quotient_ns = counters::quotient_ns.load(std::memory_order_relaxed);
  s.preprocess_ns = counters::preprocess_ns.load(std::memory_order_relaxed);
  s.prove_ns = counters::prove_ns.load(std::memory_order_relaxed);
  s.verify_ns = counters::verify_ns.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() {
  counters::jobs_submitted.store(0, std::memory_order_relaxed);
  counters::jobs_completed.store(0, std::memory_order_relaxed);
  counters::jobs_failed.store(0, std::memory_order_relaxed);
  counters::key_cache_hits.store(0, std::memory_order_relaxed);
  counters::key_cache_misses.store(0, std::memory_order_relaxed);
  counters::key_cache_evictions.store(0, std::memory_order_relaxed);
  counters::proofs_verified.store(0, std::memory_order_relaxed);
  counters::batch_verifications.store(0, std::memory_order_relaxed);
  counters::batch_fold_checks.store(0, std::memory_order_relaxed);
  counters::batch_entries_folded.store(0, std::memory_order_relaxed);
  counters::batch_invalid_attributed.store(0, std::memory_order_relaxed);
  counters::settle_batches.store(0, std::memory_order_relaxed);
  counters::settle_claims.store(0, std::memory_order_relaxed);
  counters::settle_max_fold.store(0, std::memory_order_relaxed);
  counters::parallel_regions.store(0, std::memory_order_relaxed);
  counters::chunks_executed.store(0, std::memory_order_relaxed);
  counters::chunks_stolen.store(0, std::memory_order_relaxed);
  counters::txpool_submitted.store(0, std::memory_order_relaxed);
  counters::txpool_rejected.store(0, std::memory_order_relaxed);
  counters::txpool_replaced.store(0, std::memory_order_relaxed);
  counters::txpool_batches_sealed.store(0, std::memory_order_relaxed);
  counters::txpool_txs_executed.store(0, std::memory_order_relaxed);
  counters::txpool_conflict_aborts.store(0, std::memory_order_relaxed);
  counters::txpool_queue_depth.store(0, std::memory_order_relaxed);
  counters::repl_records_shipped.store(0, std::memory_order_relaxed);
  counters::repl_retransmits.store(0, std::memory_order_relaxed);
  counters::repl_snapshots_shipped.store(0, std::memory_order_relaxed);
  counters::repl_records_applied.store(0, std::memory_order_relaxed);
  counters::repl_failstops.store(0, std::memory_order_relaxed);
  counters::rpc_admitted.store(0, std::memory_order_relaxed);
  counters::rpc_shed.store(0, std::memory_order_relaxed);
  counters::rpc_batched_proves.store(0, std::memory_order_relaxed);
  counters::rpc_inflight.store(0, std::memory_order_relaxed);
  counters::rpc_queue_depth.store(0, std::memory_order_relaxed);
  counters::msm_ns.store(0, std::memory_order_relaxed);
  counters::ntt_ns.store(0, std::memory_order_relaxed);
  counters::quotient_ns.store(0, std::memory_order_relaxed);
  counters::preprocess_ns.store(0, std::memory_order_relaxed);
  counters::prove_ns.store(0, std::memory_order_relaxed);
  counters::verify_ns.store(0, std::memory_order_relaxed);
}

}  // namespace zkdet::runtime
