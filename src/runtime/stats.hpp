// Lightweight runtime metrics for the concurrent proving substrate.
//
// Everything is a process-global relaxed atomic counter: cheap enough to
// leave enabled in release builds, precise enough for the benches and
// the cache-behaviour tests. stats() takes a consistent-enough snapshot
// (each field individually atomic); reset_stats() zeroes all counters.
//
// Wall-time counters accumulate nanoseconds measured on the thread that
// performed the stage, so with W workers the per-stage sums can exceed
// elapsed real time (they are CPU-stage time, not wall time).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace zkdet::runtime {

struct StatsSnapshot {
  // ProverService job lifecycle.
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  // Proving/verifying-key LRU cache.
  std::uint64_t key_cache_hits = 0;
  std::uint64_t key_cache_misses = 0;
  std::uint64_t key_cache_evictions = 0;
  // Batch verification.
  std::uint64_t proofs_verified = 0;
  std::uint64_t batch_verifications = 0;
  // Attributed batch verification (plonk::batch_verify_attributed).
  std::uint64_t batch_fold_checks = 0;        // pairing products evaluated
  std::uint64_t batch_entries_folded = 0;     // entries processed
  std::uint64_t batch_invalid_attributed = 0; // entries attributed invalid
  // Batched settlement (Chain::execute_batch pre-execution claim stage).
  std::uint64_t settle_batches = 0;   // batches with >= 1 proof claim
  std::uint64_t settle_claims = 0;    // settle claims pre-verified
  std::uint64_t settle_max_fold = 0;  // gauge: largest claim fold so far
  // Thread pool.
  std::uint64_t parallel_regions = 0;
  std::uint64_t chunks_executed = 0;
  std::uint64_t chunks_stolen = 0;  // chunks run by a thread other than the caller
  // Transaction pool / batch executor (src/txpool).
  std::uint64_t txpool_submitted = 0;
  std::uint64_t txpool_rejected = 0;
  std::uint64_t txpool_replaced = 0;
  std::uint64_t txpool_batches_sealed = 0;
  std::uint64_t txpool_txs_executed = 0;
  std::uint64_t txpool_conflict_aborts = 0;
  std::uint64_t txpool_queue_depth = 0;  // gauge: pending txs right now
  // WAL replication (src/replication).
  std::uint64_t repl_records_shipped = 0;
  std::uint64_t repl_retransmits = 0;  // re-ships after a missing ack
  std::uint64_t repl_snapshots_shipped = 0;
  std::uint64_t repl_records_applied = 0;  // follower-side, post-fsync
  std::uint64_t repl_failstops = 0;        // divergence fail-stops raised
  // RPC front end (src/rpc).
  std::uint64_t rpc_admitted = 0;        // requests past admission control
  std::uint64_t rpc_shed = 0;            // typed Overloaded responses sent
  std::uint64_t rpc_batched_proves = 0;  // prove requests coalesced into
                                         // ProverService groups
  std::uint64_t rpc_inflight = 0;     // gauge: requests dispatching right now
  std::uint64_t rpc_queue_depth = 0;  // gauge: admitted-but-undispatched
  // Per-stage wall time (ns, summed per executing thread).
  std::uint64_t msm_ns = 0;
  std::uint64_t ntt_ns = 0;
  std::uint64_t quotient_ns = 0;
  std::uint64_t preprocess_ns = 0;
  std::uint64_t prove_ns = 0;
  std::uint64_t verify_ns = 0;
};

// Snapshot of all counters since process start / last reset.
[[nodiscard]] StatsSnapshot stats();
void reset_stats();

// Raw counters; hot paths bump these directly. Relaxed ordering is fine:
// the counters carry no synchronization duties.
namespace counters {
extern std::atomic<std::uint64_t> jobs_submitted;
extern std::atomic<std::uint64_t> jobs_completed;
extern std::atomic<std::uint64_t> jobs_failed;
extern std::atomic<std::uint64_t> key_cache_hits;
extern std::atomic<std::uint64_t> key_cache_misses;
extern std::atomic<std::uint64_t> key_cache_evictions;
extern std::atomic<std::uint64_t> proofs_verified;
extern std::atomic<std::uint64_t> batch_verifications;
extern std::atomic<std::uint64_t> batch_fold_checks;
extern std::atomic<std::uint64_t> batch_entries_folded;
extern std::atomic<std::uint64_t> batch_invalid_attributed;
extern std::atomic<std::uint64_t> settle_batches;
extern std::atomic<std::uint64_t> settle_claims;
extern std::atomic<std::uint64_t> settle_max_fold;
extern std::atomic<std::uint64_t> parallel_regions;
extern std::atomic<std::uint64_t> chunks_executed;
extern std::atomic<std::uint64_t> chunks_stolen;
extern std::atomic<std::uint64_t> txpool_submitted;
extern std::atomic<std::uint64_t> txpool_rejected;
extern std::atomic<std::uint64_t> txpool_replaced;
extern std::atomic<std::uint64_t> txpool_batches_sealed;
extern std::atomic<std::uint64_t> txpool_txs_executed;
extern std::atomic<std::uint64_t> txpool_conflict_aborts;
extern std::atomic<std::uint64_t> txpool_queue_depth;
extern std::atomic<std::uint64_t> repl_records_shipped;
extern std::atomic<std::uint64_t> repl_retransmits;
extern std::atomic<std::uint64_t> repl_snapshots_shipped;
extern std::atomic<std::uint64_t> repl_records_applied;
extern std::atomic<std::uint64_t> repl_failstops;
extern std::atomic<std::uint64_t> rpc_admitted;
extern std::atomic<std::uint64_t> rpc_shed;
extern std::atomic<std::uint64_t> rpc_batched_proves;
extern std::atomic<std::uint64_t> rpc_inflight;
extern std::atomic<std::uint64_t> rpc_queue_depth;
extern std::atomic<std::uint64_t> msm_ns;
extern std::atomic<std::uint64_t> ntt_ns;
extern std::atomic<std::uint64_t> quotient_ns;
extern std::atomic<std::uint64_t> preprocess_ns;
extern std::atomic<std::uint64_t> prove_ns;
extern std::atomic<std::uint64_t> verify_ns;
}  // namespace counters

// Adds the scope's elapsed nanoseconds to `sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::atomic<std::uint64_t>& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    sink_.fetch_add(static_cast<std::uint64_t>(ns),
                    std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace zkdet::runtime
