#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>

#include "check/mutex.hpp"
#include "runtime/stats.hpp"

namespace zkdet::runtime {

namespace {

// -1 when not a pool worker; otherwise the worker's index.
thread_local std::ptrdiff_t tl_worker_index = -1;

std::size_t default_total_threads() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at pool start-up
  if (const char* env = std::getenv("ZKDET_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

struct ThreadPool::Impl {
  struct WorkerQueue {
    Mutex m{check::LockLevel::kPoolQueue, "pool.worker-queue"};
    std::deque<std::function<void()>> tasks ZKDET_GUARDED_BY(m);
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;

  // Sleep/wake machinery: `pending` counts tasks sitting in any deque;
  // workers sleep on `cv` when it is zero. kPoolSleep sits above
  // kPoolQueue in the lock order because pop() notifies under the
  // queue lock (note_taken).
  Mutex sleep_m{check::LockLevel::kPoolSleep, "pool.sleep"};
  CondVar cv;
  std::size_t pending ZKDET_GUARDED_BY(sleep_m) = 0;
  bool stopping ZKDET_GUARDED_BY(sleep_m) = false;

  std::atomic<std::size_t> rr{0};  // round-robin cursor for submissions

  void push(std::function<void()> task) {
    const std::size_t w =
        rr.fetch_add(1, std::memory_order_relaxed) % queues.size();
    {
      const MutexLock lk(queues[w]->m);
      queues[w]->tasks.push_back(std::move(task));
    }
    {
      const MutexLock lk(sleep_m);
      ++pending;
    }
    cv.notify_one();
  }

  // Pops one task (own deque back first, then steal from siblings'
  // fronts). Returns false when every deque is empty.
  bool pop(std::size_t self, std::function<void()>& out) {
    {
      auto& q = *queues[self];
      const MutexLock lk(q.m);
      if (!q.tasks.empty()) {
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
        note_taken();
        return true;
      }
    }
    for (std::size_t d = 1; d < queues.size(); ++d) {
      auto& q = *queues[(self + d) % queues.size()];
      const MutexLock lk(q.m);
      if (!q.tasks.empty()) {
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        note_taken();
        return true;
      }
    }
    return false;
  }

  void note_taken() {
    const MutexLock lk(sleep_m);
    if (pending > 0) --pending;
  }

  void worker_loop(std::size_t idx) {
    tl_worker_index = static_cast<std::ptrdiff_t>(idx);
    // Runs until the pool shuts down, not until an attempt cap.
    for (;;) {  // zkdet-lint: allow(unbounded-retry)
      std::function<void()> task;
      if (pop(idx, task)) {
        task();
        continue;
      }
      UniqueLock lk(sleep_m);
      while (!stopping && pending == 0) cv.wait(lk);
      if (stopping) return;
    }
  }
};

ThreadPool::ThreadPool(std::size_t total_threads) {
  start(total_threads > 0 ? total_threads - 1 : 0);
}

ThreadPool::~ThreadPool() { stop(); }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_total_threads());
  return pool;
}

void ThreadPool::start(std::size_t workers) {
  workers_n_ = workers;
  if (workers == 0) return;
  impl_ = new Impl;
  impl_->queues.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->queues.push_back(std::make_unique<Impl::WorkerQueue>());
  }
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this, i] { impl_->worker_loop(i); });
  }
}

void ThreadPool::stop() {
  if (impl_ == nullptr) return;
  {
    const MutexLock lk(impl_->sleep_m);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
  impl_ = nullptr;
  workers_n_ = 0;
}

void ThreadPool::configure(std::size_t total_threads) {
  stop();
  start(total_threads > 0 ? total_threads - 1 : 0);
}

bool ThreadPool::on_worker_thread() { return tl_worker_index >= 0; }

void ThreadPool::submit(std::function<void()> task) {
  if (impl_ == nullptr) {
    task();  // single-threaded configuration: run inline
    return;
  }
  impl_->push(std::move(task));
}

namespace {

// Shared state of one parallel_for region. Chunks are claimed from
// `next`; the region is over when `done` reaches `num_chunks`. Tickets
// keep the context alive via shared_ptr, so a ticket drained after the
// caller returned only observes an exhausted cursor.
struct ForContext {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex m{check::LockLevel::kPoolRegion, "parallel_for.region"};
  CondVar cv;
  std::exception_ptr error ZKDET_GUARDED_BY(m);  // first failure

  // Claims and runs chunks until the cursor is exhausted.
  void drain(bool stolen) {
    // Bounded by the chunk cursor, not an attempt count.
    for (;;) {  // zkdet-lint: allow(unbounded-retry)
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t b = c * grain;
      const std::size_t e = std::min(n, b + grain);
      try {
        (*body)(b, e);
      } catch (...) {
        const MutexLock lk(m);
        if (!error) error = std::current_exception();
      }
      counters::chunks_executed.fetch_add(1, std::memory_order_relaxed);
      if (stolen) {
        counters::chunks_stolen.fetch_add(1, std::memory_order_relaxed);
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        const MutexLock lk(m);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (impl_ == nullptr || num_chunks == 1) {
    body(0, n);
    return;
  }
  counters::parallel_regions.fetch_add(1, std::memory_order_relaxed);

  auto ctx = std::make_shared<ForContext>();
  ctx->body = &body;
  ctx->n = n;
  ctx->grain = grain;
  ctx->num_chunks = num_chunks;

  // One ticket per worker (bounded by leftover chunks); each ticket
  // drains chunks next to the caller.
  const std::size_t tickets = std::min(workers_n_, num_chunks - 1);
  for (std::size_t t = 0; t < tickets; ++t) {
    impl_->push([ctx] { ctx->drain(/*stolen=*/true); });
  }
  ctx->drain(/*stolen=*/false);

  if (ctx->done.load(std::memory_order_acquire) != num_chunks) {
    UniqueLock lk(ctx->m);
    while (ctx->done.load(std::memory_order_acquire) != num_chunks) {
      ctx->cv.wait(lk);
    }
  }
  std::exception_ptr err;
  {
    const MutexLock lk(ctx->m);
    err = ctx->error;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t target = 4 * concurrency();
  parallel_for(n, std::max<std::size_t>(1, n / target), body);
}

}  // namespace zkdet::runtime
