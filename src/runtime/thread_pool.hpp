// Process-wide work-stealing thread pool.
//
// One pool per process (ThreadPool::instance()); every parallel stage in
// the stack — Pippenger MSM windows, NTT butterfly layers, the Plonk
// prover's independent per-wire/per-round polynomial work, and whole
// proof jobs from ProverService — shares the same fixed set of workers,
// so concurrency is bounded regardless of how deeply stages nest.
//
// Topology: N-1 worker threads plus the calling thread, for a total
// concurrency of N. N defaults to std::thread::hardware_concurrency()
// and can be overridden with the ZKDET_THREADS environment variable or
// reconfigured at runtime with configure() (tests and benches sweep it).
//
// Scheduling: each worker owns a deque; external submissions round-robin
// across deques, a worker pops from the back of its own deque and steals
// from the front of a sibling's when empty. parallel_for() decomposes an
// index range into chunks claimed from a shared atomic cursor: the
// caller participates (it is never blocked out of its own loop), idle
// workers pick up "ticket" tasks that drain chunks alongside it, and a
// ticket that arrives after the loop finished is a cheap no-op. Chunk
// bodies must not block on other pool work; under that contract nested
// parallel_for calls are deadlock-free (the innermost caller simply runs
// its own chunks when all workers are busy).
//
// Determinism: chunks write to disjoint, index-addressed outputs, so
// results are bitwise independent of the worker count or interleaving.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace zkdet::runtime {

class ThreadPool {
 public:
  // The process-wide pool. First call reads ZKDET_THREADS (total
  // concurrency, >= 1); unset or invalid falls back to
  // hardware_concurrency().
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency: worker threads + the calling thread.
  [[nodiscard]] std::size_t concurrency() const { return workers_n_ + 1; }

  // Re-create the pool with `total_threads` total concurrency (>= 1,
  // i.e. total_threads - 1 workers). Must only be called while no pool
  // work is in flight.
  void configure(std::size_t total_threads);

  // Runs body(begin, end) over a partition of [0, n) with chunks of at
  // most `grain` indices. Blocks until every index has been processed.
  // The first exception thrown by a body is rethrown on the caller.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Grain chosen automatically (~4 chunks per thread).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Fire-and-forget task (ProverService proof jobs). The task runs on
  // some worker; completion is signalled by the caller's own future.
  void submit(std::function<void()> task);

  // True when the current thread is one of the pool's workers. Used to
  // run would-be-blocking waits inline instead of deadlocking the pool.
  [[nodiscard]] static bool on_worker_thread();

  // Applies fn(i) for i in [0, items.size()) and returns the results in
  // index order (deterministic regardless of scheduling).
  template <typename T, typename F>
  std::vector<T> parallel_map(std::size_t n, F&& fn) {
    std::vector<T> out(n);
    parallel_for(n, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
    });
    return out;
  }

 private:
  explicit ThreadPool(std::size_t total_threads);

  struct Impl;
  Impl* impl_ = nullptr;  // worker state; rebuilt by configure()
  std::size_t workers_n_ = 0;

  void start(std::size_t workers);
  void stop();
};

// Free-function shorthands for the shared pool.
inline void parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::instance().parallel_for(n, body);
}
inline void parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::instance().parallel_for(n, grain, body);
}

}  // namespace zkdet::runtime
