#include "storage/storage.hpp"

#include "check/check.hpp"

namespace zkdet::storage {

std::optional<Blob> StorageNode::fetch(const Cid& cid) const {
  const auto it = blobs_.find(cid);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

bool StorageNode::corrupt(const Cid& cid) {
  const auto it = blobs_.find(cid);
  if (it == blobs_.end()) return false;
  if (it->second.empty()) {
    it->second.push_back(0xFF);
  } else {
    it->second[0] ^= 0xFF;
  }
  return true;
}

StorageNetwork::StorageNetwork(std::size_t num_nodes, std::size_t replication)
    : replication_(std::min(replication, num_nodes)) {
  ZKDET_CHECK(num_nodes > 0, "StorageNetwork needs at least one node");
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back("node-" + std::to_string(i));
  }
}

std::vector<std::size_t> StorageNetwork::placement(const Cid& cid) const {
  // Rendezvous placement: first `replication` node indices derived from
  // the CID bytes.
  std::vector<std::size_t> out;
  std::size_t seed = 0;
  for (const auto b : cid.digest) seed = seed * 131 + b;
  for (std::size_t k = 0; k < replication_; ++k) {
    out.push_back((seed + k * 0x9e3779b9ull) % nodes_.size());
  }
  return out;
}

Cid StorageNetwork::put(Blob blob) {
  const Cid cid = Cid::of(blob);
  for (const std::size_t idx : placement(cid)) {
    nodes_[idx].store(cid, blob);
  }
  return cid;
}

std::optional<Blob> StorageNetwork::get(const Cid& cid) const {
  // Try placement nodes first, then fall back to a full sweep (a node
  // may have re-pinned the blob).
  const auto try_node = [&](const StorageNode& n) -> std::optional<Blob> {
    auto blob = n.fetch(cid);
    if (!blob) return std::nullopt;
    if (Cid::of(*blob) != cid) {
      ++tampered_;  // corrupted copy: reject, keep looking
      return std::nullopt;
    }
    return blob;
  };
  for (const std::size_t idx : placement(cid)) {
    if (auto b = try_node(nodes_[idx])) return b;
  }
  for (const auto& n : nodes_) {
    if (auto b = try_node(n)) return b;
  }
  return std::nullopt;
}

void StorageNetwork::unpin(const Cid& cid) {
  for (auto& n : nodes_) n.erase(cid);
}

Blob dataset_to_blob(const std::vector<ff::Fr>& data) {
  Blob out;
  out.reserve(data.size() * 32);
  for (const auto& d : data) {
    const auto b = ff::u256_to_bytes(d.to_canonical());
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

std::optional<std::vector<ff::Fr>> blob_to_dataset(const Blob& blob) {
  if (blob.size() % 32 != 0) return std::nullopt;
  std::vector<ff::Fr> out;
  out.reserve(blob.size() / 32);
  for (std::size_t off = 0; off < blob.size(); off += 32) {
    std::array<std::uint8_t, 32> b{};
    std::copy(blob.begin() + static_cast<std::ptrdiff_t>(off),
              blob.begin() + static_cast<std::ptrdiff_t>(off + 32), b.begin());
    const ff::U256 v = ff::u256_from_bytes(b);
    if (ff::u256_geq(v, ff::Fr::MOD)) return std::nullopt;  // not canonical
    out.push_back(ff::Fr::from_canonical(v));
  }
  return out;
}

}  // namespace zkdet::storage
