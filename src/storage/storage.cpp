#include "storage/storage.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"

namespace zkdet::storage {

std::optional<Blob> StorageNode::fetch(const Cid& cid) const {
  const auto it = blobs_.find(cid);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

bool StorageNode::corrupt(const Cid& cid) {
  const auto it = blobs_.find(cid);
  if (it == blobs_.end()) return false;
  if (it->second.empty()) {
    it->second.push_back(0xFF);
  } else {
    it->second[0] ^= 0xFF;
  }
  return true;
}

StorageNetwork::StorageNetwork(std::size_t num_nodes, std::size_t replication)
    : replication_(std::min(replication, num_nodes)) {
  ZKDET_CHECK(num_nodes > 0, "StorageNetwork needs at least one node");
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back("node-" + std::to_string(i));
  }
  status_.resize(num_nodes);
}

std::vector<std::size_t> StorageNetwork::placement(const Cid& cid) const {
  // Rendezvous placement: first `replication` node indices derived from
  // the CID bytes.
  std::vector<std::size_t> out;
  std::size_t seed = 0;
  for (const auto b : cid.digest) seed = seed * 131 + b;
  for (std::size_t k = 0; k < replication_; ++k) {
    out.push_back((seed + k * 0x9e3779b9ull) % nodes_.size());
  }
  return out;
}

std::vector<std::size_t> StorageNetwork::read_order(const Cid& cid) const {
  const auto placed = placement(cid);
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  const auto push_group = [&](bool quarantined) {
    for (const std::size_t idx : placed) {
      if (status_[idx].quarantined == quarantined &&
          std::find(order.begin(), order.end(), idx) == order.end()) {
        order.push_back(idx);
      }
    }
    for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
      if (status_[idx].quarantined == quarantined &&
          std::find(order.begin(), order.end(), idx) == order.end()) {
        order.push_back(idx);
      }
    }
  };
  // Healthy nodes first; quarantined nodes remain a last resort (their
  // copies are digest-verified like any other, so reading them is safe).
  push_group(false);
  push_group(true);
  return order;
}

Cid StorageNetwork::put(Blob blob) {
  const Cid cid = Cid::of(blob);
  const MutexLock lk(m_);
  pinned_.insert(cid);
  std::size_t stored = 0;
  std::vector<bool> holds(nodes_.size(), false);
  for (const std::size_t idx : placement(cid)) {
    if (holds[idx]) continue;  // placement may repeat on tiny networks
    if (fault::fire(fault::points::kStoragePutNode)) continue;  // node down
    nodes_[idx].store(cid, blob);
    holds[idx] = true;
    ++stored;
  }
  // Fallback placement: a node that refused the write is replaced by
  // the next healthy node so the blob still reaches full replication.
  for (std::size_t idx = 0; idx < nodes_.size() && stored < replication_;
       ++idx) {
    if (holds[idx] || status_[idx].quarantined) continue;
    if (fault::fire(fault::points::kStoragePutNode)) continue;
    nodes_[idx].store(cid, blob);
    holds[idx] = true;
    ++stored;
  }
  return cid;
}

void StorageNetwork::note_corrupt_serve(std::size_t node_idx) const {
  tampered_.fetch_add(1, std::memory_order_relaxed);
  NodeStatus& st = status_[node_idx];
  ++st.corrupt_serves;
  if (st.corrupt_serves >= kQuarantineAfter) st.quarantined = true;
}

std::optional<Blob> StorageNetwork::locked_get_and_repair(
    const Cid& cid, bool fault_injectable) const {
  // Probe every node that claims the blob, in read_order: remember the
  // first verified copy and every corrupted replica seen on the way.
  std::optional<Blob> good;
  std::vector<std::size_t> corrupt_at;
  for (const std::size_t idx : read_order(cid)) {
    if (!nodes_[idx].holds(cid)) continue;
    if (fault_injectable &&
        fault::fire(fault::points::kStorageFetchNode)) {
      continue;  // node transiently unreachable; treated as a miss
    }
    auto blob = nodes_[idx].fetch(cid);
    if (!blob) continue;
    if (Cid::of(*blob) != cid) {
      note_corrupt_serve(idx);
      corrupt_at.push_back(idx);
      continue;
    }
    if (!good) good = std::move(blob);
  }
  if (!good) return std::nullopt;

  // Self-heal while we hold a verified copy: overwrite corrupted
  // replicas and re-create missing placement replicas.
  for (const std::size_t idx : corrupt_at) {
    nodes_[idx].store(cid, *good);
    repairs_.fetch_add(1, std::memory_order_relaxed);
  }
  for (const std::size_t idx : placement(cid)) {
    if (nodes_[idx].holds(cid) || status_[idx].quarantined) continue;
    nodes_[idx].store(cid, *good);
    repairs_.fetch_add(1, std::memory_order_relaxed);
  }
  // Top up to full replication on healthy fallback nodes: placement can
  // collide on small networks, and put() may have placed replicas on
  // fallback nodes whose loss the loop above would not repair.
  std::size_t holders = 0;
  for (const auto& n : nodes_) holders += n.holds(cid) ? 1 : 0;
  for (std::size_t idx = 0; idx < nodes_.size() && holders < replication_;
       ++idx) {
    if (nodes_[idx].holds(cid) || status_[idx].quarantined) continue;
    nodes_[idx].store(cid, *good);
    repairs_.fetch_add(1, std::memory_order_relaxed);
    ++holders;
  }
  return good;
}

std::optional<Blob> StorageNetwork::get(const Cid& cid) const {
  const MutexLock lk(m_);
  return locked_get_and_repair(cid, /*fault_injectable=*/true);
}

void StorageNetwork::unpin(const Cid& cid) {
  const MutexLock lk(m_);
  pinned_.erase(cid);
  for (auto& n : nodes_) n.erase(cid);
}

ScrubReport StorageNetwork::scrub() {
  const MutexLock lk(m_);
  ScrubReport report;
  for (const Cid& cid : pinned_) {
    ++report.checked;
    const std::size_t before = repairs_.load(std::memory_order_relaxed);
    // Scrub audits stored bytes directly (no reachability faults): its
    // job is to find rot, not to model the network.
    const auto blob = locked_get_and_repair(cid, /*fault_injectable=*/false);
    if (!blob) {
      ++report.unrecoverable;
      continue;
    }
    report.repaired += repairs_.load(std::memory_order_relaxed) - before;
  }
  return report;
}

bool StorageNetwork::node_quarantined(std::size_t i) const {
  const MutexLock lk(m_);
  return status_.at(i).quarantined;
}

std::size_t StorageNetwork::quarantined_count() const {
  const MutexLock lk(m_);
  std::size_t n = 0;
  for (const auto& st : status_) n += st.quarantined ? 1 : 0;
  return n;
}

void StorageNetwork::reinstate(std::size_t i) {
  const MutexLock lk(m_);
  status_.at(i) = NodeStatus{};
}

Blob dataset_to_blob(const std::vector<ff::Fr>& data) {
  Blob out;
  out.reserve(data.size() * 32);
  for (const auto& d : data) {
    const auto b = ff::u256_to_bytes(d.to_canonical());
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

std::optional<std::vector<ff::Fr>> blob_to_dataset(const Blob& blob) {
  if (blob.size() % 32 != 0) return std::nullopt;
  std::vector<ff::Fr> out;
  out.reserve(blob.size() / 32);
  for (std::size_t off = 0; off < blob.size(); off += 32) {
    std::array<std::uint8_t, 32> b{};
    std::copy(blob.begin() + static_cast<std::ptrdiff_t>(off),
              blob.begin() + static_cast<std::ptrdiff_t>(off + 32), b.begin());
    const ff::U256 v = ff::u256_from_bytes(b);
    if (ff::u256_geq(v, ff::Fr::MOD)) return std::nullopt;  // not canonical
    out.push_back(ff::Fr::from_canonical(v));
  }
  return out;
}

}  // namespace zkdet::storage
