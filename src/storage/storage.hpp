// Content-addressed distributed storage — the IPFS substitute.
//
// CIDs are SHA-256 digests of the stored blob, so (exactly as the paper
// argues in III-A) the URI recorded in an NFT doubles as a hash
// commitment to the ciphertext: any tampering with a stored dataset
// changes its address and cannot be concealed. The network is a set of
// in-process nodes with replication and DHT-style lookup; nodes can be
// dropped to exercise availability, and a malicious node that corrupts a
// blob is detected on retrieval by digest verification.
//
// Self-healing: a get() that detects a corrupted replica overwrites it
// with a verified good copy when one exists, and re-replicates onto
// placement nodes that lost their copy. Nodes that repeatedly serve
// corrupted data are quarantined (deprioritized for reads, excluded
// from new placements until reinstated). scrub() walks every pinned
// CID and restores full replication — the repair pass a real network
// runs in the background. Fail-points (src/fault) on per-node put and
// fetch simulate node outages; see DESIGN.md "Fault model & recovery".
//
// Thread safety: StorageNetwork's public put/get/unpin/scrub interface
// is safe for concurrent use (one network-wide mutex; the tamper
// counter is additionally atomic so monitoring reads never block).
// node() is a test-only hook and must not race with concurrent access.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/mutex.hpp"
#include "crypto/sha256.hpp"
#include "ff/bn254.hpp"

namespace zkdet::storage {

using Blob = std::vector<std::uint8_t>;

struct Cid {
  std::array<std::uint8_t, 32> digest{};

  auto operator<=>(const Cid&) const = default;

  [[nodiscard]] static Cid of(const Blob& blob) {
    return Cid{crypto::Sha256::digest(blob)};
  }
  [[nodiscard]] std::string to_string() const {
    return "cid:" + crypto::hex_encode(digest);
  }
  // Field-element view of the CID for use as a public input / NFT field.
  [[nodiscard]] ff::Fr as_field() const {
    return ff::Fr::reduce_from(ff::u256_from_bytes(digest));
  }
};

// One storage node; holds pinned blobs.
class StorageNode {
 public:
  explicit StorageNode(std::string id) : id_(std::move(id)) {}

  [[nodiscard]] const std::string& id() const { return id_; }
  void store(const Cid& cid, Blob blob) { blobs_[cid] = std::move(blob); }
  [[nodiscard]] std::optional<Blob> fetch(const Cid& cid) const;
  bool erase(const Cid& cid) { return blobs_.erase(cid) > 0; }
  [[nodiscard]] std::size_t blob_count() const { return blobs_.size(); }
  [[nodiscard]] bool holds(const Cid& cid) const {
    return blobs_.find(cid) != blobs_.end();
  }

  // Test hook: corrupt a stored blob in place (malicious/faulty node).
  bool corrupt(const Cid& cid);

 private:
  std::string id_;
  std::map<Cid, Blob> blobs_;
};

// Result of a scrub() repair pass over all pinned CIDs.
struct ScrubReport {
  std::size_t checked = 0;      // pinned CIDs visited
  std::size_t repaired = 0;     // replicas overwritten or re-created
  std::size_t unrecoverable = 0;  // pinned CIDs with no intact copy left
};

class StorageNetwork {
 public:
  // A node is quarantined once it served this many corrupted copies.
  static constexpr std::uint64_t kQuarantineAfter = 2;

  explicit StorageNetwork(std::size_t num_nodes = 4,
                          std::size_t replication = 2);

  // Stores the blob on `replication` nodes chosen by the CID (DHT-style
  // rendezvous placement) and returns its address. A placement node
  // that fails the write (fail-point storage.put.node) is replaced by a
  // fallback node, so the blob lands at full replication whenever
  // enough nodes accept writes; scrub() heals any remaining deficit.
  Cid put(Blob blob);

  // Looks the CID up across nodes; verifies the digest of whatever a
  // node returns, skips (and counts) corrupted copies, and — when a
  // verified good copy exists — overwrites corrupted replicas and
  // re-creates missing placement replicas before returning.
  [[nodiscard]] std::optional<Blob> get(const Cid& cid) const;

  // Owner-requested removal (paper threat model: data persists unless
  // its owner explicitly unpins it).
  void unpin(const Cid& cid);

  // Repair pass: restores every pinned CID to full replication on
  // non-quarantined nodes, overwriting corrupted copies.
  ScrubReport scrub();

  [[nodiscard]] std::size_t num_nodes() const {
    const MutexLock lk(m_);
    return nodes_.size();
  }
  // Test hook (see file comment): the container access is locked, but
  // the returned reference is unsynchronized by construction — callers
  // must not race it with concurrent network use.
  [[nodiscard]] StorageNode& node(std::size_t i) {
    const MutexLock lk(m_);
    return nodes_[i];
  }

  // Number of get()/scrub() probes that hit a corrupted copy (tamper
  // evidence). Atomic: readable while other threads access the network.
  [[nodiscard]] std::size_t tamper_detections() const {
    return tampered_.load(std::memory_order_relaxed);
  }
  // Number of replicas overwritten or re-created by get()/scrub().
  [[nodiscard]] std::size_t repairs() const {
    return repairs_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool node_quarantined(std::size_t i) const;
  [[nodiscard]] std::size_t quarantined_count() const;
  // Clears a node's quarantine flag and corruption history (operator
  // action after replacing/vetting the node).
  void reinstate(std::size_t i);

 private:
  struct NodeStatus {
    std::uint64_t corrupt_serves = 0;
    bool quarantined = false;
  };

  // All candidate node indices for a CID: placement first, then the
  // rest; within each group healthy nodes before quarantined ones.
  [[nodiscard]] std::vector<std::size_t> placement(const Cid& cid) const
      ZKDET_REQUIRES(m_);
  [[nodiscard]] std::vector<std::size_t> read_order(const Cid& cid) const
      ZKDET_REQUIRES(m_);

  // All candidate orderings read node/status state, so they require m_.
  // Core of get()/scrub(); caller holds m_. When `fault_injectable` is
  // false the probe ignores fetch fail-points (scrub audits real disk
  // state, not network reachability).
  std::optional<Blob> locked_get_and_repair(const Cid& cid,
                                            bool fault_injectable) const
      ZKDET_REQUIRES(m_);
  void note_corrupt_serve(std::size_t node_idx) const ZKDET_REQUIRES(m_);

  mutable Mutex m_{check::LockLevel::kStorage, "storage.m_"};
  mutable std::vector<StorageNode> nodes_ ZKDET_GUARDED_BY(m_);
  mutable std::vector<NodeStatus> status_ ZKDET_GUARDED_BY(m_);
  std::size_t replication_;
  std::set<Cid> pinned_ ZKDET_GUARDED_BY(m_);
  mutable std::atomic<std::size_t> tampered_{0};
  mutable std::atomic<std::size_t> repairs_{0};
};

// Dataset <-> blob serialization (32 bytes per field element, big endian).
Blob dataset_to_blob(const std::vector<ff::Fr>& data);
std::optional<std::vector<ff::Fr>> blob_to_dataset(const Blob& blob);

}  // namespace zkdet::storage
