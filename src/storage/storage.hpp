// Content-addressed distributed storage — the IPFS substitute.
//
// CIDs are SHA-256 digests of the stored blob, so (exactly as the paper
// argues in III-A) the URI recorded in an NFT doubles as a hash
// commitment to the ciphertext: any tampering with a stored dataset
// changes its address and cannot be concealed. The network is a set of
// in-process nodes with replication and DHT-style lookup; nodes can be
// dropped to exercise availability, and a malicious node that corrupts a
// blob is detected on retrieval by digest verification.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "ff/bn254.hpp"

namespace zkdet::storage {

using Blob = std::vector<std::uint8_t>;

struct Cid {
  std::array<std::uint8_t, 32> digest{};

  auto operator<=>(const Cid&) const = default;

  [[nodiscard]] static Cid of(const Blob& blob) {
    return Cid{crypto::Sha256::digest(blob)};
  }
  [[nodiscard]] std::string to_string() const {
    return "cid:" + crypto::hex_encode(digest);
  }
  // Field-element view of the CID for use as a public input / NFT field.
  [[nodiscard]] ff::Fr as_field() const {
    return ff::Fr::reduce_from(ff::u256_from_bytes(digest));
  }
};

// One storage node; holds pinned blobs.
class StorageNode {
 public:
  explicit StorageNode(std::string id) : id_(std::move(id)) {}

  [[nodiscard]] const std::string& id() const { return id_; }
  void store(const Cid& cid, Blob blob) { blobs_[cid] = std::move(blob); }
  [[nodiscard]] std::optional<Blob> fetch(const Cid& cid) const;
  bool erase(const Cid& cid) { return blobs_.erase(cid) > 0; }
  [[nodiscard]] std::size_t blob_count() const { return blobs_.size(); }

  // Test hook: corrupt a stored blob in place (malicious/faulty node).
  bool corrupt(const Cid& cid);

 private:
  std::string id_;
  std::map<Cid, Blob> blobs_;
};

class StorageNetwork {
 public:
  explicit StorageNetwork(std::size_t num_nodes = 4,
                          std::size_t replication = 2);

  // Stores the blob on `replication` nodes chosen by the CID (DHT-style
  // rendezvous placement) and returns its address.
  Cid put(Blob blob);

  // Looks the CID up across nodes; verifies the digest of whatever a
  // node returns and skips corrupted copies.
  [[nodiscard]] std::optional<Blob> get(const Cid& cid) const;

  // Owner-requested removal (paper threat model: data persists unless
  // its owner explicitly unpins it).
  void unpin(const Cid& cid);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] StorageNode& node(std::size_t i) { return nodes_[i]; }

  // Number of get() calls that hit a corrupted copy (tamper evidence).
  [[nodiscard]] std::size_t tamper_detections() const { return tampered_; }

 private:
  [[nodiscard]] std::vector<std::size_t> placement(const Cid& cid) const;

  std::vector<StorageNode> nodes_;
  std::size_t replication_;
  mutable std::size_t tampered_ = 0;
};

// Dataset <-> blob serialization (32 bytes per field element, big endian).
Blob dataset_to_blob(const std::vector<ff::Fr>& data);
std::optional<std::vector<ff::Fr>> blob_to_dataset(const Blob& blob);

}  // namespace zkdet::storage
