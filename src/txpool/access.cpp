#include "txpool/access.hpp"

namespace zkdet::txpool {

namespace {

bool prefix_overlap(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  return a.compare(0, n, b, 0, n) == 0;
}

bool covers(const Access& e, const chain::Address& contract,
            const std::string& key, bool need_write) {
  if (e.scope != Access::Scope::kContract || e.id != contract) return false;
  if (need_write && !e.write) return false;
  return key.compare(0, e.key_prefix.size(), e.key_prefix) == 0;
}

}  // namespace

AccessSet& AccessSet::read_contract(const chain::Address& addr,
                                    std::string key_prefix) {
  entries.push_back(
      {Access::Scope::kContract, false, addr, std::move(key_prefix)});
  return *this;
}

AccessSet& AccessSet::write_contract(const chain::Address& addr,
                                     std::string key_prefix) {
  entries.push_back(
      {Access::Scope::kContract, true, addr, std::move(key_prefix)});
  return *this;
}

AccessSet& AccessSet::touch_account(const chain::Address& addr) {
  entries.push_back({Access::Scope::kAccount, true, addr, {}});
  return *this;
}

bool AccessSet::conflicts_with(const AccessSet& other) const {
  // Undeclared txs serialize against everything.
  if (undeclared() || other.undeclared()) return true;
  for (const Access& a : entries) {
    for (const Access& b : other.entries) {
      if (a.scope != b.scope || a.id != b.id) continue;
      if (a.scope == Access::Scope::kAccount) return true;
      // Contract scope: read/read commutes; any write conflicts when
      // the declared key ranges can overlap.
      if ((a.write || b.write) && prefix_overlap(a.key_prefix, b.key_prefix)) {
        return true;
      }
    }
  }
  return false;
}

bool AccessPolicy::allow_slot_read(const chain::Address& contract,
                                   const std::string& key) const {
  for (const Access& e : set_->entries) {
    // A write declaration implies read permission.
    if (covers(e, contract, key, /*need_write=*/false)) return true;
  }
  return false;
}

bool AccessPolicy::allow_slot_write(const chain::Address& contract,
                                    const std::string& key) const {
  for (const Access& e : set_->entries) {
    if (covers(e, contract, key, /*need_write=*/true)) return true;
  }
  return false;
}

bool AccessPolicy::allow_balance(const chain::Address& account) const {
  for (const Access& e : set_->entries) {
    if (e.scope == Access::Scope::kAccount && e.id == account) return true;
  }
  return false;
}

}  // namespace zkdet::txpool
