// Declared read/write sets for pooled transactions.
//
// A transaction intent declares, up front, which state it may touch:
// contract storage (whole contract or a key prefix — token-id prefixes
// like "xc/5" are the coarse shard) and account balances. The scheduler
// uses the declarations to build conflict-free batches (zkay-style
// static access tracking), and the executor enforces them: an
// undeclared access reverts the tx deterministically, in serial and
// parallel execution alike, which is what keeps the two byte-identical.
//
// An EMPTY access set means "undeclared": the tx conflicts with
// everything (it is scheduled alone) and runs unrestricted — the safe
// default for callers that do not opt into batching.
#pragma once

#include <string>
#include <vector>

#include "chain/chain.hpp"

namespace zkdet::txpool {

struct Access {
  enum class Scope : std::uint8_t { kContract, kAccount };
  Scope scope = Scope::kContract;
  bool write = false;  // accounts are always write (any touch serializes)
  chain::Address id;   // contract or account address
  // Contract scope only: restrict to keys with this prefix ("" = whole
  // contract). Two writes to the same contract conflict iff one prefix
  // is a prefix of the other.
  std::string key_prefix;
};

struct AccessSet {
  std::vector<Access> entries;

  AccessSet& read_contract(const chain::Address& addr,
                           std::string key_prefix = {});
  AccessSet& write_contract(const chain::Address& addr,
                            std::string key_prefix = {});
  // Balance touch (read or move): conflicts with any other toucher.
  AccessSet& touch_account(const chain::Address& addr);

  [[nodiscard]] bool undeclared() const { return entries.empty(); }
  // True when the two sets cannot safely execute in the same batch.
  [[nodiscard]] bool conflicts_with(const AccessSet& other) const;
};

// Enforces an AccessSet during captured execution (installed per batch
// tx by TxPool). The referenced set must outlive the policy.
class AccessPolicy final : public chain::TxAccessPolicy {
 public:
  explicit AccessPolicy(const AccessSet& set) : set_(&set) {}

  [[nodiscard]] bool allow_slot_read(const chain::Address& contract,
                                     const std::string& key) const override;
  [[nodiscard]] bool allow_slot_write(const chain::Address& contract,
                                      const std::string& key) const override;
  [[nodiscard]] bool allow_balance(const chain::Address& account) const override;

 private:
  const AccessSet* set_;
};

}  // namespace zkdet::txpool
