// Signed transaction intents — what the mempool admits.
//
// An intent is a pre-signed, not-yet-executed transaction: the sender's
// signature covers (description, nonce) exactly as in Chain::call, the
// closure is the contract call to run at execution time, and the
// declared AccessSet drives conflict-free scheduling. Submission
// returns a Ticket that resolves to the receipt when the tx's batch is
// sealed (or to a failure when it is rejected or replaced).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "chain/chain.hpp"
#include "crypto/schnorr.hpp"
#include "txpool/access.hpp"

namespace zkdet::txpool {

struct TxIntent {
  chain::Address sender;
  std::string description;
  std::uint64_t nonce = 0;
  crypto::Signature sig{};
  std::function<void(chain::CallContext&)> fn;
  std::uint64_t value = 0;
  chain::Address pay_to;
  std::uint64_t gas_limit = 30'000'000;
  // Replacement policy: a resubmission of (sender, nonce) wins only
  // with strictly higher priority.
  std::uint64_t priority = 0;
  AccessSet access;
  // Optional pre-execution proof claim (chain/claim.hpp): settlement
  // intents attach the (vk, statement, proof) their closure will
  // verify, so the batch executor folds all of a batch's pairing
  // checks into one attributed product before execution.
  std::shared_ptr<const chain::ProofClaim> claim;
};

// Builds a signed intent (signature over Chain::tx_auth_message, same
// deterministic per-sender signing stream as Chain::call).
[[nodiscard]] TxIntent make_intent(
    const crypto::KeyPair& sender, std::uint64_t nonce,
    std::string description, std::function<void(chain::CallContext&)> fn,
    AccessSet access = {}, std::uint64_t value = 0, chain::Address pay_to = {},
    std::uint64_t gas_limit = 30'000'000, std::uint64_t priority = 0,
    std::shared_ptr<const chain::ProofClaim> claim = {});

// Resolves when the tx leaves the pool: sealed into a block (receipt
// from execution), rejected as stale, or replaced. `ready` is written
// with release ordering after `receipt`, so a submitter polling from
// another thread reads a complete receipt.
struct Ticket {
  std::atomic<bool> ready{false};
  chain::Receipt receipt;

  void resolve(chain::Receipt r) {
    receipt = std::move(r);
    ready.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool done() const {
    return ready.load(std::memory_order_acquire);
  }
};
using TicketPtr = std::shared_ptr<Ticket>;

struct SubmitResult {
  bool accepted = false;
  std::string error;  // set when !accepted
  TicketPtr ticket;   // set when accepted
};

}  // namespace zkdet::txpool
