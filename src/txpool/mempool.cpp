#include "txpool/mempool.hpp"

#include "chain/chain.hpp"

namespace zkdet::txpool {

Mempool::AdmitResult Mempool::admit(PendingTx tx, std::uint64_t chain_nonce) {
  AdmitResult out;
  const TxIntent& in = tx.intent;
  if (in.nonce < chain_nonce) {
    out.error = "txpool: stale nonce (replay rejected)";
    return out;
  }
  auto& q = queues_[in.sender];
  if (const auto it = q.find(in.nonce); it != q.end()) {
    if (in.priority <= it->second.intent.priority) {
      if (q.empty()) queues_.erase(in.sender);
      out.error = "txpool: replacement underpriced";
      return out;
    }
    out.replaced_ticket = std::move(it->second.ticket);
    it->second = std::move(tx);
    out.accepted = true;
    return out;
  }
  if (size_ >= capacity_) {
    if (q.empty()) queues_.erase(in.sender);
    out.error = "txpool: admission queue full";
    return out;
  }
  q.emplace(in.nonce, std::move(tx));
  ++size_;
  out.accepted = true;
  return out;
}

PendingTx Mempool::pop(const chain::Address& sender, std::uint64_t nonce) {
  const auto qit = queues_.find(sender);
  if (qit == queues_.end()) throw chain::Revert("mempool: unknown sender");
  const auto it = qit->second.find(nonce);
  if (it == qit->second.end()) throw chain::Revert("mempool: unknown nonce");
  PendingTx tx = std::move(it->second);
  qit->second.erase(it);
  if (qit->second.empty()) queues_.erase(qit);
  --size_;
  return tx;
}

std::vector<PendingTx> Mempool::drop_stale(const chain::Address& sender,
                                           std::uint64_t chain_nonce) {
  std::vector<PendingTx> dropped;
  const auto qit = queues_.find(sender);
  if (qit == queues_.end()) return dropped;
  auto& q = qit->second;
  while (!q.empty() && q.begin()->first < chain_nonce) {
    dropped.push_back(std::move(q.begin()->second));
    q.erase(q.begin());
    --size_;
  }
  if (q.empty()) queues_.erase(qit);
  return dropped;
}

std::optional<std::uint64_t> Mempool::highest_nonce(
    const chain::Address& sender) const {
  const auto qit = queues_.find(sender);
  if (qit == queues_.end() || qit->second.empty()) return std::nullopt;
  return qit->second.rbegin()->first;
}

}  // namespace zkdet::txpool
