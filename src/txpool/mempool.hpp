// Bounded mempool with per-sender nonce ordering and a priority
// replacement policy.
//
// Admission control (all under the owning TxPool's lock):
//   - capacity: a full pool rejects new txs (txpool.admit.full also
//     forces this outcome for fault-injection runs);
//   - nonces: a tx below the sender's chain nonce is a replay and is
//     rejected; gaps are queued until the missing nonce arrives;
//   - replacement: resubmitting (sender, nonce) succeeds only with
//     strictly higher priority (Ethereum's replace-by-fee, with an
//     explicit priority standing in for the fee bump) — the replaced
//     tx's ticket resolves as failed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "txpool/intent.hpp"

namespace zkdet::txpool {

struct PendingTx {
  TxIntent intent;
  TicketPtr ticket;
};

class Mempool {
 public:
  explicit Mempool(std::size_t capacity) : capacity_(capacity) {}

  struct AdmitResult {
    bool accepted = false;
    std::string error;            // set when !accepted
    TicketPtr replaced_ticket;    // evicted tx's ticket, if any
  };

  // Admission; `chain_nonce` is the sender's next expected chain nonce.
  AdmitResult admit(PendingTx tx, std::uint64_t chain_nonce);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Per-sender queues keyed by nonce; senders iterate in address order
  // (the scheduler's canonical order).
  using SenderQueue = std::map<std::uint64_t, PendingTx>;
  [[nodiscard]] const std::map<chain::Address, SenderQueue>& queues() const {
    return queues_;
  }

  // Removes and returns (sender, nonce); throws if absent.
  PendingTx pop(const chain::Address& sender, std::uint64_t nonce);

  // Removes every tx of `sender` with nonce < chain_nonce (stale:
  // already consumed on chain) and returns them for ticket rejection.
  std::vector<PendingTx> drop_stale(const chain::Address& sender,
                                    std::uint64_t chain_nonce);

  // Highest queued nonce for the sender, if any.
  [[nodiscard]] std::optional<std::uint64_t> highest_nonce(
      const chain::Address& sender) const;

 private:
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::map<chain::Address, SenderQueue> queues_;
};

}  // namespace zkdet::txpool
