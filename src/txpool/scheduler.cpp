#include "txpool/scheduler.hpp"

namespace zkdet::txpool {

BatchPlan Scheduler::plan(
    Mempool& pool,
    const std::function<std::uint64_t(const chain::Address&)>& chain_nonce) {
  BatchPlan out;
  // Two passes over immutable queue state, then removal: iterating the
  // sender map while popping from it would invalidate the iteration.
  std::vector<std::pair<chain::Address, std::uint64_t>> picked;
  std::vector<chain::Address> with_stale;
  std::vector<const AccessSet*> picked_access;
  for (const auto& [sender, q] : pool.queues()) {
    if (picked.size() >= max_batch_) break;
    const std::uint64_t expected = chain_nonce(sender);
    if (q.begin()->first < expected) {
      with_stale.push_back(sender);
      continue;  // re-considered next round, after the stale prefix drops
    }
    if (q.begin()->first > expected) continue;  // nonce gap: wait
    const PendingTx& cand = q.begin()->second;
    bool conflict = false;
    for (const AccessSet* sel : picked_access) {
      if (cand.intent.access.conflicts_with(*sel)) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;  // stays queued for a later batch
    picked.emplace_back(sender, q.begin()->first);
    picked_access.push_back(&cand.intent.access);
  }
  for (const auto& sender : with_stale) {
    auto dropped = pool.drop_stale(sender, chain_nonce(sender));
    for (auto& tx : dropped) out.stale.push_back(std::move(tx));
  }
  out.txs.reserve(picked.size());
  for (const auto& [sender, nonce] : picked) {
    out.txs.push_back(pool.pop(sender, nonce));
  }
  return out;
}

}  // namespace zkdet::txpool
