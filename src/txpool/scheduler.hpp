// Dependency-aware batch scheduler.
//
// Builds one conflict-free batch per call from the mempool: senders are
// visited in address order (the canonical in-block order), each
// contributes its lowest-nonce tx iff that nonce is the sender's next
// expected chain nonce (gapped senders wait), and a candidate joins the
// batch only when its declared AccessSet conflicts with nothing already
// selected. The plan is a pure function of mempool content + chain
// nonces — independent of submission order, wall clock and worker
// count, which is what makes parallel execution replay-deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "txpool/mempool.hpp"

namespace zkdet::txpool {

struct BatchPlan {
  std::vector<PendingTx> txs;    // canonical order
  std::vector<PendingTx> stale;  // dropped: nonce already consumed on chain
};

class Scheduler {
 public:
  explicit Scheduler(std::size_t max_batch) : max_batch_(max_batch) {}

  [[nodiscard]] std::size_t max_batch() const { return max_batch_; }

  // Selects (and removes from the mempool) the next batch.
  BatchPlan plan(
      Mempool& pool,
      const std::function<std::uint64_t(const chain::Address&)>& chain_nonce);

 private:
  std::size_t max_batch_;
};

}  // namespace zkdet::txpool
