#include "txpool/txpool.hpp"

#include <cstdlib>

#include "crypto/rng.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "runtime/stats.hpp"

namespace zkdet::txpool {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at construction
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || n == 0) return fallback;
  return static_cast<std::size_t>(n);
}

}  // namespace

Config Config::from_env() {
  Config cfg;
  cfg.capacity = env_size("ZKDET_TXPOOL_CAPACITY", cfg.capacity);
  cfg.max_batch = env_size("ZKDET_TXPOOL_BATCH", cfg.max_batch);
  return cfg;
}

TxIntent make_intent(const crypto::KeyPair& sender, std::uint64_t nonce,
                     std::string description,
                     std::function<void(chain::CallContext&)> fn,
                     AccessSet access, std::uint64_t value,
                     chain::Address pay_to, std::uint64_t gas_limit,
                     std::uint64_t priority,
                     std::shared_ptr<const chain::ProofClaim> claim) {
  TxIntent in;
  in.sender = crypto::address_of(sender.pk);
  in.nonce = nonce;
  in.fn = std::move(fn);
  in.access = std::move(access);
  in.value = value;
  in.pay_to = std::move(pay_to);
  in.gas_limit = gas_limit;
  in.priority = priority;
  in.claim = std::move(claim);
  // Same deterministic signing stream as Chain::call, so a pooled tx
  // and a direct call with identical (sender, description, nonce) yield
  // identical signatures — and identical WAL bytes.
  crypto::Drbg rng("tx-auth:" + in.sender,
                   nonce * 1000003 + description.size());
  const auto msg = chain::Chain::tx_auth_message(description, nonce);
  in.sig = crypto::schnorr_sign(sender, msg, rng);
  in.description = std::move(description);
  return in;
}

TxPool::TxPool(chain::Chain& chain, Config cfg)
    : chain_(chain),
      cfg_(cfg),
      mempool_(cfg.capacity),
      scheduler_(cfg.max_batch) {}

SubmitResult TxPool::submit(TxIntent intent) {
  SubmitResult out;
  // Same drop semantics as the direct path: the tx never reaches the
  // sequencer, the caller retries or surfaces the error.
  if (fault::fire(fault::points::kChainSubmit)) {
    runtime::counters::txpool_rejected.fetch_add(1, std::memory_order_relaxed);
    out.error = "injected: tx dropped before submission";
    return out;
  }
  TicketPtr replaced;
  {
    const MutexLock lk(mu_);
    if (fault::fire(fault::points::kTxpoolAdmitFull) ||
        mempool_.size() >= mempool_.capacity()) {
      runtime::counters::txpool_rejected.fetch_add(1,
                                                   std::memory_order_relaxed);
      out.error = "txpool: admission queue full";
      return out;
    }
    const std::uint64_t chain_nonce = chain_.account_nonce(intent.sender);
    PendingTx tx;
    tx.intent = std::move(intent);
    tx.ticket = std::make_shared<Ticket>();
    out.ticket = tx.ticket;
    auto res = mempool_.admit(std::move(tx), chain_nonce);
    if (!res.accepted) {
      runtime::counters::txpool_rejected.fetch_add(1,
                                                   std::memory_order_relaxed);
      out.ticket.reset();
      out.error = std::move(res.error);
      return out;
    }
    replaced = std::move(res.replaced_ticket);
    runtime::counters::txpool_submitted.fetch_add(1,
                                                  std::memory_order_relaxed);
    runtime::counters::txpool_queue_depth.store(mempool_.size(),
                                                std::memory_order_relaxed);
  }
  if (replaced) {
    runtime::counters::txpool_replaced.fetch_add(1, std::memory_order_relaxed);
    chain::Receipt r;
    r.error = "txpool: replaced by a higher-priority resubmission";
    replaced->resolve(std::move(r));
  }
  out.accepted = true;
  return out;
}

std::size_t TxPool::seal_next_batch() {
  BatchPlan plan;
  {
    const MutexLock lk(mu_);
    plan = scheduler_.plan(mempool_, [this](const chain::Address& a) {
      return chain_.account_nonce(a);
    });
    runtime::counters::txpool_queue_depth.store(mempool_.size(),
                                                std::memory_order_relaxed);
  }
  for (auto& tx : plan.stale) {
    chain::Receipt r;
    r.error = "txpool: stale nonce (replay rejected)";
    tx.ticket->resolve(std::move(r));
  }
  if (plan.txs.empty()) return 0;

  std::vector<AccessPolicy> policies;
  policies.reserve(plan.txs.size());
  std::vector<chain::BatchTx> batch;
  batch.reserve(plan.txs.size());
  for (const PendingTx& tx : plan.txs) {
    const TxIntent& in = tx.intent;
    chain::BatchTx b;
    b.sender = in.sender;
    b.description = in.description;
    b.nonce = in.nonce;
    b.sig = in.sig;
    b.fn = in.fn;
    b.value = in.value;
    b.pay_to = in.pay_to;
    b.gas_limit = in.gas_limit;
    b.claim = in.claim;
    policies.emplace_back(in.access);
    batch.push_back(std::move(b));
  }
  // Pointers taken after the vector stopped growing (reserve above
  // guarantees stability anyway).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!plan.txs[i].intent.access.undeclared()) {
      batch[i].policy = &policies[i];
    }
  }

  const auto receipts = chain_.execute_batch(batch, cfg_.parallel);
  runtime::counters::txpool_batches_sealed.fetch_add(
      1, std::memory_order_relaxed);
  runtime::counters::txpool_txs_executed.fetch_add(batch.size(),
                                                   std::memory_order_relaxed);
  for (std::size_t i = 0; i < plan.txs.size(); ++i) {
    plan.txs[i].ticket->resolve(receipts[i]);
  }
  return plan.txs.size();
}

std::size_t TxPool::drain() {
  std::size_t total = 0;
  // Bounded by pool contents: each round seals >= 1 tx or exits.
  for (;;) {  // zkdet-lint: allow(unbounded-retry)
    const std::size_t n = seal_next_batch();
    if (n == 0) return total;
    total += n;
  }
}

chain::Receipt TxPool::call(const crypto::KeyPair& sender,
                            const std::string& description,
                            const std::function<void(chain::CallContext&)>& fn,
                            AccessSet access, std::uint64_t value,
                            const chain::Address& pay_to,
                            std::uint64_t gas_limit,
                            std::shared_ptr<const chain::ProofClaim> claim) {
  const chain::Address from = crypto::address_of(sender.pk);
  auto res = submit(make_intent(sender, next_nonce(from), description, fn,
                                std::move(access), value, pay_to, gas_limit,
                                /*priority=*/0, std::move(claim)));
  if (!res.accepted) {
    chain::Receipt r;
    r.error = std::move(res.error);
    return r;
  }
  // Pump until our ticket resolves. Bounded: every productive pump
  // shrinks the pool, so pending() + 2 rounds suffice unless the tx is
  // permanently unschedulable (nonce gap from a lost predecessor).
  std::size_t rounds = pending() + 2;
  while (!res.ticket->done() && rounds-- > 0) {
    if (seal_next_batch() == 0 && !res.ticket->done()) break;
  }
  if (!res.ticket->done()) {
    chain::Receipt r;
    r.error = "txpool: tx not schedulable (nonce gap)";
    return r;
  }
  return res.ticket->receipt;
}

std::uint64_t TxPool::next_nonce(const chain::Address& sender) const {
  const MutexLock lk(mu_);
  if (const auto hi = mempool_.highest_nonce(sender)) return *hi + 1;
  return chain_.account_nonce(sender);
}

std::size_t TxPool::pending() const {
  const MutexLock lk(mu_);
  return mempool_.size();
}

}  // namespace zkdet::txpool
