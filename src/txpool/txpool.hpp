// Transaction pool: mempool + scheduler + parallel batch executor.
//
// The pump-driven front door of the chain pipeline. Producers submit()
// signed intents from any thread; a driver thread (the load harness, or
// the synchronous call() helper) pumps seal_next_batch(), which asks
// the scheduler for a conflict-free batch and hands it to
// Chain::execute_batch — signature checks and contract closures fan out
// over the runtime thread pool, effects commit serially in canonical
// order, and the batch seals as ONE block. The pool owns no threads
// (src/runtime holds the only thread primitives in the tree), so
// determinism and shutdown are trivial: no pump, no progress.
//
// Knobs (read once at construction via Config::from_env):
//   ZKDET_TXPOOL_CAPACITY   mempool admission bound   (default 65536)
//   ZKDET_TXPOOL_BATCH      max txs per sealed block  (default 128)
#pragma once

#include <cstdint>
#include <string>

#include "chain/chain.hpp"
#include "check/mutex.hpp"
#include "txpool/intent.hpp"
#include "txpool/mempool.hpp"
#include "txpool/scheduler.hpp"

namespace zkdet::txpool {

struct Config {
  std::size_t capacity = 65536;
  std::size_t max_batch = 128;
  // Run batch stages concurrently on the runtime pool. Off = the serial
  // baseline, byte-identical to parallel execution by construction
  // (benches and determinism tests diff the two).
  bool parallel = true;

  [[nodiscard]] static Config from_env();
};

class TxPool {
 public:
  explicit TxPool(chain::Chain& chain, Config cfg = Config::from_env());

  // Thread-safe admission. The kChainSubmit and kTxpoolAdmitFull
  // fail-points can reject here (callers observe and retry).
  SubmitResult submit(TxIntent intent);

  // Seals at most one batch; returns the number of txs included.
  // Single-pumper: not safe to call concurrently with itself.
  std::size_t seal_next_batch();
  // Pumps until the pool stops making progress; returns txs sealed.
  std::size_t drain();

  // Synchronous pool-routed analogue of Chain::call: assigns the next
  // nonce, signs, submits, and pumps until the ticket resolves.
  // `claim` attaches a pre-execution proof claim (batched settlement).
  chain::Receipt call(const crypto::KeyPair& sender,
                      const std::string& description,
                      const std::function<void(chain::CallContext&)>& fn,
                      AccessSet access = {}, std::uint64_t value = 0,
                      const chain::Address& pay_to = {},
                      std::uint64_t gas_limit = 30'000'000,
                      std::shared_ptr<const chain::ProofClaim> claim = {});

  // Next assignable nonce for `sender`: one past the highest queued
  // intent, or the chain nonce when nothing is queued.
  [[nodiscard]] std::uint64_t next_nonce(const chain::Address& sender) const;

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] chain::Chain& chain() { return chain_; }

 private:
  chain::Chain& chain_;
  Config cfg_;
  // Guards mempool_ (admission vs scheduling). Outermost level of the
  // lock order: submit() reads the chain nonce map (kChain) while
  // holding it, and admission fail-points (kFault) fire under it.
  mutable Mutex mu_{check::LockLevel::kTxPool, "txpool.mu_"};
  Mempool mempool_ ZKDET_GUARDED_BY(mu_);
  Scheduler scheduler_;
};

}  // namespace zkdet::txpool
