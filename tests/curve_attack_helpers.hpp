// Helpers for building structurally invalid curve points: off-curve
// coordinates and — the interesting case — points on the G2 twist that
// lie outside the order-r subgroup. E'(Fp2) has a ~2^254 cofactor, so a
// point derived from an arbitrary x-coordinate is (overwhelmingly) not
// in the subgroup; we solve y^2 = x^3 + b' directly with an Fp2 square
// root (p == 3 mod 4).
#pragma once

#include "check/invariants.hpp"
#include "ec/curve.hpp"
#include "ff/bn254.hpp"
#include "ff/fp2.hpp"

namespace zkdet::test {

using ec::G1;
using ec::G2;
using ff::Fp;
using ff::Fp2;
using ff::U256;

// sqrt in Fp for p == 3 mod 4: c^((p+1)/4), validated by squaring.
inline bool fp_sqrt(const Fp& c, Fp& out) {
  U256 e = Fp::MOD;
  ff::u256_add(e, e, U256{1});
  for (std::size_t j = 0; j < 4; ++j) {  // e >>= 2
    e.limb[j] >>= 2;
    if (j + 1 < 4) e.limb[j] |= e.limb[j + 1] << 62;
  }
  const Fp r = c.pow(e);
  if (r.square() != c) return false;
  out = r;
  return true;
}

// sqrt in Fp2 = Fp[u]/(u^2+1) via the norm: c = a + bu is square iff
// N(c) = a^2 + b^2 is a QR in Fp.
inline bool fp2_sqrt(const Fp2& c, Fp2& out) {
  if (c.b.is_zero()) {
    Fp r;
    if (fp_sqrt(c.a, r)) {
      out = Fp2{r, Fp::zero()};
      return true;
    }
    if (fp_sqrt(-c.a, r)) {
      out = Fp2{Fp::zero(), r};  // (ru)^2 = -r^2 = a
      return true;
    }
    return false;
  }
  Fp s;
  if (!fp_sqrt(c.a.square() + c.b.square(), s)) return false;
  const Fp half = Fp::from_u64(2).inverse();
  Fp t = (c.a + s) * half;
  Fp x;
  if (!fp_sqrt(t, x)) {
    t = (c.a - s) * half;
    if (!fp_sqrt(t, x)) return false;
  }
  const Fp y = c.b * half * x.inverse();
  out = Fp2{x, y};
  return out.square() == c;
}

// A point on the twist E'(Fp2) but outside the order-r subgroup.
inline G2 wrong_subgroup_g2() {
  for (std::uint64_t i = 1; i < 1000; ++i) {
    const Fp2 x{Fp::from_u64(i), Fp::one()};
    const Fp2 rhs = x.square() * x + ec::G2Traits::b();
    Fp2 y;
    if (!fp2_sqrt(rhs, y)) continue;
    const G2 p = G2::from_affine(x, y);
    if (p.on_curve() && !check::in_g2_subgroup(p)) return p;
  }
  // Unreachable for BN-254: about half of all x give a point, and the
  // subgroup has density 1/cofactor ~ 2^-254.
  return G2::identity();
}

// Coordinates that satisfy no curve equation.
inline G1 off_curve_g1() {
  return G1::from_affine(Fp::one(), Fp::one());  // 1 != 1 + 3
}
inline G2 off_curve_g2() { return G2::from_affine(Fp2::one(), Fp2::one()); }

}  // namespace zkdet::test
