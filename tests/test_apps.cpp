// IV-E applications: logistic regression and transformer training proofs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apps.hpp"
#include "core/transformation.hpp"

namespace zkdet::core {
namespace {

using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;
using gadgets::FixOps;
using gadgets::FixParams;
using gadgets::fix_decode;

TEST(LrDataset, SynthesizeShapes) {
  Drbg rng(1);
  const LrDataset d = LrDataset::synthesize(50, 3, rng);
  EXPECT_EQ(d.n, 50u);
  EXPECT_EQ(d.k, 3u);
  EXPECT_EQ(d.x.size(), 150u);
  EXPECT_EQ(d.y.size(), 50u);
  for (const double y : d.y) EXPECT_TRUE(y == 0.0 || y == 1.0);
  const FixParams p;
  EXPECT_EQ(d.encode(p).size(), 200u);
}

TEST(LrModel, TrainingReducesLoss) {
  Drbg rng(2);
  const LrDataset d = LrDataset::synthesize(100, 3, rng);
  const LrModel untrained{std::vector<double>(4, 0.0)};
  const LrModel trained = LrModel::train(d, 0.5, 200);
  EXPECT_LT(trained.loss(d), untrained.loss(d));
  EXPECT_GT(trained.accuracy(d), 0.7);
}

TEST(LrApp, StepGadgetMatchesNativeUpdate) {
  Drbg rng(3);
  const std::size_t n = 8, k = 2;
  const LrDataset d = LrDataset::synthesize(n, k, rng);
  const LrModel model = LrModel::train(d, 0.25, 100);
  const FixParams p;
  gadgets::CircuitBuilder bld;
  std::vector<gadgets::Wire> src;
  for (const Fr& v : d.encode(p)) src.push_back(bld.add_witness(v));
  const TransformGadget g = lr_step_gadget(n, k, 0.25, model, 1.0, p);
  const std::vector<gadgets::Wire> out = g(bld, src);
  ASSERT_EQ(out.size(), k + 1);
  EXPECT_TRUE(bld.witness_consistent());
  // The fixed-point circuit update should land near the double-precision
  // one (sigmoid is PL-approximated, so allow loose tolerance).
  for (std::size_t j = 0; j <= k; ++j) {
    const double got = fix_decode(bld.value(out[j]), p);
    EXPECT_NEAR(got, model.beta[j], 0.15) << "param " << j;
  }
}

TEST(LrApp, ConvergenceBoundEnforced) {
  Drbg rng(4);
  const std::size_t n = 8, k = 2;
  const LrDataset d = LrDataset::synthesize(n, k, rng);
  // Untrained model with a huge step: ||beta' - beta||^2 exceeds a tiny
  // epsilon, so the convergence assertion must fail.
  LrModel far{std::vector<double>(k + 1, 0.0)};
  const FixParams p;
  gadgets::CircuitBuilder bld;
  std::vector<gadgets::Wire> src;
  for (const Fr& v : d.encode(p)) src.push_back(bld.add_witness(v));
  const TransformGadget g = lr_step_gadget(n, k, 50.0, far, 1e-6, p);
  (void)g(bld, src);
  EXPECT_FALSE(bld.witness_consistent());
}

TEST(TransformerWeights, RandomShapes) {
  Drbg rng(5);
  const TransformerWeights w = TransformerWeights::random(4, 8, rng);
  EXPECT_EQ(w.wq.size(), 16u);
  EXPECT_EQ(w.w1.size(), 32u);
  EXPECT_EQ(w.parameter_count(), 3u * 16 + 32 + 8 + 32 + 4);
}

TEST(TransformerApp, GadgetMatchesNativeForward) {
  Drbg rng(6);
  const std::size_t L = 2, d = 2, h = 4;
  const TransformerWeights w = TransformerWeights::random(d, h, rng);
  std::vector<double> input;
  for (std::size_t i = 0; i < L * d; ++i) {
    input.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 1000.0);
  }
  const std::vector<double> native = transformer_forward(w, input, L);
  ASSERT_EQ(native.size(), L * d);

  const FixParams p;
  gadgets::CircuitBuilder bld;
  std::vector<gadgets::Wire> src;
  for (const double v : input) {
    src.push_back(bld.add_witness(gadgets::fix_encode(v, p)));
  }
  const TransformGadget g = transformer_gadget(L, w, p);
  const std::vector<gadgets::Wire> out = g(bld, src);
  ASSERT_EQ(out.size(), L * d);
  EXPECT_TRUE(bld.witness_consistent());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(fix_decode(bld.value(out[i]), p), native[i], 0.05)
        << "output " << i;
  }
}

TEST(TransformerApp, OutputDependsOnWeights) {
  Drbg rng(7);
  const std::size_t L = 2, d = 2, h = 2;
  const TransformerWeights w1 = TransformerWeights::random(d, h, rng);
  const TransformerWeights w2 = TransformerWeights::random(d, h, rng);
  const std::vector<double> input{0.5, -0.25, 0.75, 0.1};
  EXPECT_NE(transformer_forward(w1, input, L),
            transformer_forward(w2, input, L));
}

// End-to-end: sell a trained model as a processing-derived data asset.
TEST(AppsEndToEnd, LrTrainingAsProcessingTransform) {
  static ZkdetSystem sys(1 << 15, 21);
  TransformationProtocol tp(sys);
  Drbg rng(8);
  const KeyPair owner = KeyPair::generate(rng);
  sys.chain().create_account(owner, 10000);

  const std::size_t n = 4, k = 2;
  const LrDataset data = LrDataset::synthesize(n, k, rng);
  const LrModel model = LrModel::train(data, 0.25, 100);
  const FixParams p;

  auto src = tp.publish(owner, data.encode(p));
  ASSERT_TRUE(src);
  auto derived = tp.process(owner, *src,
                            lr_step_gadget(n, k, 0.25, model, 1.0, p),
                            "lr/4x2");
  ASSERT_TRUE(derived);
  EXPECT_EQ(derived->plain.size(), k + 1);
  EXPECT_TRUE(tp.verify_transformation(derived->token_id));
  EXPECT_TRUE(tp.verify_provenance_chain(derived->token_id));
  const auto info = sys.nft().token(derived->token_id);
  EXPECT_EQ(info->formula, chain::Formula::kProcessing);
}

}  // namespace
}  // namespace zkdet::core
