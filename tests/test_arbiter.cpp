#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "chain/arbiter.hpp"
#include "chain/claim.hpp"
#include "core/circuits.hpp"
#include "core/system.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/ledger.hpp"
#include "runtime/stats.hpp"
#include "txpool/intent.hpp"

namespace zkdet::chain {
namespace {

using core::build_key_circuit;
using core::commit_key;
using core::hash_key;
using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

// One shared system (SRS + pi_k keys + contracts) for all arbiter tests.
struct ArbiterFixture : ::testing::Test {
  static core::ZkdetSystem& sys() {
    static core::ZkdetSystem s(1 << 12, 5);
    return s;
  }

  Drbg rng{7};
  KeyPair seller_keys = KeyPair::generate(rng);
  KeyPair buyer_keys = KeyPair::generate(rng);
  Address seller = sys().chain().create_account(seller_keys, 100000);
  Address buyer = sys().chain().create_account(buyer_keys, 100000);

  // Asset-key material for a fake exchange.
  Fr k = rng.random_fr();
  Fr o = rng.random_fr();
  Fr key_cm = commit_key(k, o);

  std::uint64_t lock(std::uint64_t amount, const Fr& h_v,
                     std::uint64_t timeout = 50) {
    std::uint64_t id = 0;
    const Receipt r = sys().chain().call(
        buyer_keys, "lock",
        [&](CallContext& ctx) {
          id = sys().arbiter().lock(ctx, seller, h_v, key_cm, timeout);
        },
        amount, sys().arbiter().address());
    EXPECT_TRUE(r.success) << r.error;
    return id;
  }

  std::optional<plonk::Proof> prove_key(const Fr& k_v) {
    gadgets::CircuitBuilder bld = build_key_circuit(k, o, k_v);
    const auto& keys = sys().keys_for("pi_k", bld.cs());
    return plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  }
};

TEST_F(ArbiterFixture, HonestSettleTransfersPayment) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(700, hash_key(k_v));
  const std::uint64_t seller_before = sys().chain().balance(seller);
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  const Fr k_c = k + k_v;
  const Receipt r = sys().chain().call(
      seller_keys, "settle", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k_c, *proof);
      });
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys().chain().balance(seller), seller_before + 700);
  const auto info = sys().arbiter().exchange(id);
  EXPECT_EQ(info->state, ExchangeState::kSettled);
  EXPECT_EQ(info->k_c, k_c);  // buyer reads k_c off-chain
  // the raw key never appears in the exchange record
  EXPECT_NE(info->k_c, k);
}

TEST_F(ArbiterFixture, SettleWithWrongKcRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(500, hash_key(k_v));
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  const Receipt r = sys().chain().call(
      seller_keys, "settle-bad", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k + k_v + Fr::one(), *proof);
      });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kLocked);
}

TEST_F(ArbiterFixture, SettleWithForeignKeyRejected) {
  // A seller who does not know the committed key cannot settle: the
  // proof is generated for a different key and fails against c.
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(500, hash_key(k_v));
  const Fr wrong_k = rng.random_fr();
  gadgets::CircuitBuilder bld = build_key_circuit(wrong_k, o, k_v);
  const auto& keys = sys().keys_for("pi_k", bld.cs());
  auto proof = plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  const Receipt r = sys().chain().call(
      seller_keys, "settle-foreign", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, wrong_k + k_v, *proof);
      });
  EXPECT_FALSE(r.success);  // public input c mismatches the proof
}

TEST_F(ArbiterFixture, OnlySellerMaySettle) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(500, hash_key(k_v));
  auto proof = prove_key(k_v);
  const Receipt r = sys().chain().call(
      buyer_keys, "settle-as-buyer", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k + k_v, *proof);
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, RefundAfterDeadline) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), /*timeout=*/3);
  const std::uint64_t buyer_after_lock = sys().chain().balance(buyer);
  // too early
  Receipt r = sys().chain().call(buyer_keys, "refund-early",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().refund(ctx, id);
                                 });
  EXPECT_FALSE(r.success);
  sys().chain().advance_blocks(5);
  r = sys().chain().call(buyer_keys, "refund", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys().chain().balance(buyer), buyer_after_lock + 300);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kRefunded);
}

TEST_F(ArbiterFixture, RefundDeadlineIsStrictlyExclusive) {
  // The contract requires block_height > deadline: a refund one block
  // before and one exactly at the deadline must both fail; the first
  // block past it succeeds. Each call() seals a block, so the two
  // rejected attempts advance the chain to the boundary by themselves.
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(250, hash_key(k_v), /*timeout=*/6);
  const std::uint64_t deadline = sys().arbiter().exchange(id)->deadline;
  const std::uint64_t escrowed = sys().chain().balance(buyer);

  ASSERT_LE(sys().chain().height(), deadline - 1);
  sys().chain().advance_blocks(deadline - 1 - sys().chain().height());

  // height == deadline - 1: one block early.
  Receipt r = sys().chain().call(buyer_keys, "refund-minus-1",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().refund(ctx, id);
                                 });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "revert: deadline not reached");

  // height == deadline: exactly at the deadline, still too early.
  ASSERT_EQ(sys().chain().height(), deadline);
  r = sys().chain().call(buyer_keys, "refund-at-deadline",
                         [&](CallContext& ctx) {
                           sys().arbiter().refund(ctx, id);
                         });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "revert: deadline not reached");
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kLocked);
  EXPECT_EQ(sys().chain().balance(buyer), escrowed);

  // height == deadline + 1: first block past the deadline.
  ASSERT_EQ(sys().chain().height(), deadline + 1);
  r = sys().chain().call(buyer_keys, "refund-plus-1", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys().chain().balance(buyer), escrowed + 250);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kRefunded);
}

TEST_F(ArbiterFixture, DoubleSettleRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(600, hash_key(k_v));
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  const Fr k_c = k + k_v;
  Receipt r = sys().chain().call(seller_keys, "settle-1",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().settle(ctx, id, k_c, *proof);
                                 });
  ASSERT_TRUE(r.success) << r.error;
  const std::uint64_t seller_after = sys().chain().balance(seller);
  // Replaying the very same valid settle must not pay out again.
  r = sys().chain().call(seller_keys, "settle-2", [&](CallContext& ctx) {
    sys().arbiter().settle(ctx, id, k_c, *proof);
  });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(sys().chain().balance(seller), seller_after);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kSettled);
}

TEST_F(ArbiterFixture, DoubleRefundRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), /*timeout=*/1);
  sys().chain().advance_blocks(3);
  Receipt r = sys().chain().call(buyer_keys, "refund-1",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().refund(ctx, id);
                                 });
  ASSERT_TRUE(r.success) << r.error;
  const std::uint64_t buyer_after = sys().chain().balance(buyer);
  r = sys().chain().call(buyer_keys, "refund-2", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  EXPECT_FALSE(r.success);  // kRefunded is terminal
  EXPECT_EQ(sys().chain().balance(buyer), buyer_after);
}

TEST_F(ArbiterFixture, RefundAfterSettleRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(400, hash_key(k_v), /*timeout=*/1);
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  Receipt r = sys().chain().call(seller_keys, "settle",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().settle(ctx, id, k + k_v,
                                                          *proof);
                                 });
  ASSERT_TRUE(r.success) << r.error;
  // Even long past the deadline a settled exchange cannot be refunded.
  sys().chain().advance_blocks(5);
  const std::uint64_t buyer_after = sys().chain().balance(buyer);
  r = sys().chain().call(buyer_keys, "refund-after-settle",
                         [&](CallContext& ctx) {
                           sys().arbiter().refund(ctx, id);
                         });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(sys().chain().balance(buyer), buyer_after);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kSettled);
}

TEST_F(ArbiterFixture, RefundOnlyByBuyer) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), 1);
  sys().chain().advance_blocks(3);
  const Receipt r = sys().chain().call(
      seller_keys, "refund-as-seller",
      [&](CallContext& ctx) { sys().arbiter().refund(ctx, id); });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, SettleAfterRefundRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), 1);
  sys().chain().advance_blocks(3);
  sys().chain().call(buyer_keys, "refund", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  auto proof = prove_key(k_v);
  const Receipt r = sys().chain().call(
      seller_keys, "settle-late", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k + k_v, *proof);
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, LockRequiresPayment) {
  const Receipt r = sys().chain().call(
      buyer_keys, "lock-zero", [&](CallContext& ctx) {
        sys().arbiter().lock(ctx, seller, Fr::one(), key_cm, 10);
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, ZkcpOpenLeaksKey) {
  const Fr h = crypto::poseidon_hash({k}, core::kKeyHashTag);
  std::uint64_t id = 0;
  Receipt r = sys().chain().call(
      buyer_keys, "zkcp-lock",
      [&](CallContext& ctx) {
        id = sys().zkcp_arbiter().lock(ctx, seller, h);
      },
      400, sys().zkcp_arbiter().address());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_FALSE(sys().zkcp_arbiter().leaked_key(id).has_value());
  r = sys().chain().call(seller_keys, "zkcp-open", [&](CallContext& ctx) {
    sys().zkcp_arbiter().open(ctx, id, k);
  });
  ASSERT_TRUE(r.success) << r.error;
  // the key is now public chain state — the ZKCP flaw
  const auto leaked = sys().zkcp_arbiter().leaked_key(id);
  ASSERT_TRUE(leaked.has_value());
  EXPECT_EQ(*leaked, k);
}

TEST_F(ArbiterFixture, ZkcpOpenWithWrongKeyRejected) {
  const Fr h = crypto::poseidon_hash({k}, core::kKeyHashTag);
  std::uint64_t id = 0;
  sys().chain().call(
      buyer_keys, "zkcp-lock",
      [&](CallContext& ctx) {
        id = sys().zkcp_arbiter().lock(ctx, seller, h);
      },
      400, sys().zkcp_arbiter().address());
  const Receipt r = sys().chain().call(
      seller_keys, "zkcp-open-bad", [&](CallContext& ctx) {
        sys().zkcp_arbiter().open(ctx, id, k + Fr::one());
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, VerifierContractChargesGas) {
  const Fr k_v = rng.random_fr();
  gadgets::CircuitBuilder bld = build_key_circuit(k, o, k_v);
  const auto& keys = sys().keys_for("pi_k", bld.cs());
  auto proof = plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  std::uint64_t gas = 0;
  bool ok = false;
  sys().chain().call(seller_keys, "verify", [&](CallContext& ctx) {
    const std::uint64_t g0 = ctx.gas().used();
    ok = sys().key_verifier().verify(
        ctx, {k + k_v, commit_key(k, o), hash_key(k_v)}, *proof);
    gas = ctx.gas().used() - g0;
  });
  EXPECT_TRUE(ok);
  // EIP-1108 floor: pairing (45k + 2*34k) + 18 muls (108k)
  EXPECT_GT(gas, 200'000u);
  EXPECT_LT(gas, 400'000u);
}

// ---------------------------------------------------------------------
// Batched settlement: settle txs carrying ProofClaims seal into one
// block and share a single folded pairing check (chain stage 2.5).
// Settles conflict on their arbiter shard, so the fixture deploys four
// shards — four locks on four shards fold into one batch.
// ---------------------------------------------------------------------

// One exchange's cast: a funded seller/buyer pair plus key material.
struct Party {
  KeyPair seller_keys;
  KeyPair buyer_keys;
  Address seller;
  Address buyer;
  Fr k;
  Fr o;
  Fr key_cm;
};

Party make_party(core::ZkdetSystem& sys, Drbg& rng) {
  Party p{KeyPair::generate(rng), KeyPair::generate(rng), {}, {},
          rng.random_fr(),        rng.random_fr(),        Fr::zero()};
  p.seller = sys.chain().create_account(p.seller_keys, 100000);
  p.buyer = sys.chain().create_account(p.buyer_keys, 100000);
  p.key_cm = commit_key(p.k, p.o);
  return p;
}

// Signed settle intent carrying its ProofClaim — the same shape
// core::KeySecureExchange::make_settle_intent builds, constructed by
// hand so tests can attach deliberately invalid proofs.
txpool::TxIntent claimed_settle(core::ZkdetSystem& sys,
                                const KeyPair& seller_keys, std::uint64_t id,
                                const Fr& k_c, const plonk::Proof& proof) {
  auto& arb = sys.arbiter_for_exchange(id);
  const auto xinfo = arb.exchange(id);
  auto claim = std::make_shared<ProofClaim>();
  claim->vk = &sys.key_verifier().vk();
  claim->public_inputs = {k_c, xinfo->key_commitment, xinfo->h_v};
  claim->proof = proof;
  txpool::AccessSet access;
  access.write_contract(arb.address())
      .touch_account(arb.address())
      .touch_account(xinfo->seller);
  return txpool::make_intent(
      seller_keys,
      sys.pool().next_nonce(crypto::address_of(seller_keys.pk)),
      "arbiter.settle",
      [arbp = &arb, id, k_c, claim](CallContext& ctx) {
        arbp->settle(ctx, id, k_c, claim->proof);
      },
      std::move(access), /*value=*/0, /*pay_to=*/{},
      /*gas_limit=*/30'000'000, /*priority=*/0, claim);
}

struct BatchedArbiterFixture : ::testing::Test {
  static constexpr std::size_t kShards = 4;
  static core::ZkdetSystem& sys() {
    static core::ZkdetSystem s(1 << 12, 11, /*data_dir=*/"", {}, kShards);
    return s;
  }

  Drbg rng{17};

  // Lock `amount` on shard `shard` for party `p`; returns exchange id.
  std::uint64_t lock_on(std::size_t shard, const Party& p,
                        std::uint64_t amount, const Fr& h_v,
                        std::uint64_t timeout = 200) {
    std::uint64_t id = 0;
    auto& arb = sys().arbiter_shard(shard);
    const Receipt r = sys().chain().call(
        p.buyer_keys, "lock",
        [&](CallContext& ctx) {
          id = arb.lock(ctx, p.seller, h_v, p.key_cm, timeout);
        },
        amount, arb.address());
    EXPECT_TRUE(r.success) << r.error;
    return id;
  }

  std::optional<plonk::Proof> prove_key(const Party& p, const Fr& k_v) {
    gadgets::CircuitBuilder bld = build_key_circuit(p.k, p.o, k_v);
    const auto& keys = sys().keys_for("pi_k", bld.cs());
    return plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  }
};

TEST_F(BatchedArbiterFixture, BatchedSettleFoldsOneCheckAndAmortizesGas) {
  // Four independent exchanges, one per shard: their settles are
  // conflict-free and must seal as ONE block with ONE folded check.
  std::vector<Party> parties;
  std::vector<std::uint64_t> ids;
  std::vector<Fr> kvs;
  std::vector<plonk::Proof> proofs;
  for (std::size_t s = 0; s < kShards; ++s) {
    parties.push_back(make_party(sys(), rng));
    const Fr k_v = rng.random_fr();
    kvs.push_back(k_v);
    ids.push_back(lock_on(s, parties.back(), 500 + s, hash_key(k_v)));
    auto proof = prove_key(parties.back(), k_v);
    ASSERT_TRUE(proof);
    proofs.push_back(*proof);
  }

  // Reference point: a batch of ONE degenerates to the inline pairing
  // and pays the full verification price.
  Party solo = make_party(sys(), rng);
  const Fr solo_kv = rng.random_fr();
  const std::uint64_t solo_id = lock_on(0, solo, 700, hash_key(solo_kv));
  auto solo_proof = prove_key(solo, solo_kv);
  ASSERT_TRUE(solo_proof);
  auto solo_res = sys().pool().submit(
      claimed_settle(sys(), solo.seller_keys, solo_id, solo.k + solo_kv,
                     *solo_proof));
  ASSERT_TRUE(solo_res.accepted);
  ASSERT_GT(sys().pool().drain(), 0u);
  ASSERT_TRUE(solo_res.ticket->receipt.success)
      << solo_res.ticket->receipt.error;
  const std::uint64_t solo_gas = solo_res.ticket->receipt.gas_used;

  const auto before = runtime::stats();
  std::vector<txpool::TicketPtr> tickets;
  std::vector<std::uint64_t> sellers_before;
  for (std::size_t i = 0; i < kShards; ++i) {
    sellers_before.push_back(sys().chain().balance(parties[i].seller));
    auto res = sys().pool().submit(claimed_settle(
        sys(), parties[i].seller_keys, ids[i], parties[i].k + kvs[i],
        proofs[i]));
    ASSERT_TRUE(res.accepted) << res.error;
    tickets.push_back(res.ticket);
  }
  ASSERT_EQ(sys().pool().drain(), kShards);

  const auto after = runtime::stats();
  for (std::size_t i = 0; i < kShards; ++i) {
    ASSERT_TRUE(tickets[i]->done());
    EXPECT_TRUE(tickets[i]->receipt.success) << tickets[i]->receipt.error;
    EXPECT_EQ(sys().chain().balance(parties[i].seller),
              sellers_before[i] + 500 + i);
    EXPECT_EQ(sys().arbiter_for_exchange(ids[i]).exchange(ids[i])->state,
              ExchangeState::kSettled);
    // Gas amortization: a 4-way batch splits the shared pairing cost,
    // so each settle is visibly cheaper than the batch-of-1 settle.
    EXPECT_LT(tickets[i]->receipt.gas_used + 50'000, solo_gas);
  }
  // All four claims folded into one check in one batch.
  EXPECT_EQ(after.settle_batches, before.settle_batches + 1);
  EXPECT_EQ(after.settle_claims, before.settle_claims + kShards);
  EXPECT_EQ(after.settle_max_fold, kShards);
  EXPECT_GT(after.batch_fold_checks, before.batch_fold_checks);
}

TEST_F(BatchedArbiterFixture, BatchedSettleAttributesForgeryHonestCommit) {
  // 1 bad among N: the forged settle must revert alone while the three
  // honest ones commit from the same sealed batch.
  constexpr std::size_t kBad = 2;
  std::vector<Party> parties;
  std::vector<std::uint64_t> ids;
  std::vector<Fr> kvs;
  std::vector<txpool::TicketPtr> tickets;
  std::vector<std::uint64_t> sellers_before;
  const auto before = runtime::stats();
  for (std::size_t s = 0; s < kShards; ++s) {
    parties.push_back(make_party(sys(), rng));
    const Fr k_v = rng.random_fr();
    kvs.push_back(k_v);
    ids.push_back(lock_on(s, parties.back(), 400, hash_key(k_v)));
    // The forger proves a well-formed pi_k for the WRONG k_v: the proof
    // survives structural checks and only dies at the pairing, so only
    // fold-failure bisection can attribute it.
    const Fr proven_kv = (s == kBad) ? rng.random_fr() : k_v;
    auto proof = prove_key(parties.back(), proven_kv);
    ASSERT_TRUE(proof);
    sellers_before.push_back(sys().chain().balance(parties.back().seller));
    auto res = sys().pool().submit(claimed_settle(
        sys(), parties.back().seller_keys, ids.back(),
        parties.back().k + k_v, *proof));
    ASSERT_TRUE(res.accepted) << res.error;
    tickets.push_back(res.ticket);
  }
  ASSERT_EQ(sys().pool().drain(), kShards);

  for (std::size_t i = 0; i < kShards; ++i) {
    ASSERT_TRUE(tickets[i]->done());
    const auto& r = tickets[i]->receipt;
    const auto state =
        sys().arbiter_for_exchange(ids[i]).exchange(ids[i])->state;
    if (i == kBad) {
      EXPECT_FALSE(r.success);
      EXPECT_NE(r.error.find("invalid key proof"), std::string::npos)
          << r.error;
      EXPECT_EQ(state, ExchangeState::kLocked);
      EXPECT_EQ(sys().chain().balance(parties[i].seller), sellers_before[i]);
    } else {
      EXPECT_TRUE(r.success) << r.error;
      EXPECT_EQ(state, ExchangeState::kSettled);
      EXPECT_EQ(sys().chain().balance(parties[i].seller),
                sellers_before[i] + 400);
    }
  }
  const auto after = runtime::stats();
  EXPECT_GT(after.batch_invalid_attributed, before.batch_invalid_attributed);

  // Idempotency after failed attribution: the honest resubmission for
  // the reverted exchange is accepted EXACTLY once.
  auto good = prove_key(parties[kBad], kvs[kBad]);
  ASSERT_TRUE(good);
  auto retry = sys().pool().submit(claimed_settle(
      sys(), parties[kBad].seller_keys, ids[kBad],
      parties[kBad].k + kvs[kBad], *good));
  ASSERT_TRUE(retry.accepted);
  ASSERT_GT(sys().pool().drain(), 0u);
  EXPECT_TRUE(retry.ticket->receipt.success) << retry.ticket->receipt.error;
  EXPECT_EQ(sys().chain().balance(parties[kBad].seller),
            sellers_before[kBad] + 400);
  auto replay = sys().pool().submit(claimed_settle(
      sys(), parties[kBad].seller_keys, ids[kBad],
      parties[kBad].k + kvs[kBad], *good));
  ASSERT_TRUE(replay.accepted);
  ASSERT_GT(sys().pool().drain(), 0u);
  EXPECT_FALSE(replay.ticket->receipt.success);
  EXPECT_EQ(sys().chain().balance(parties[kBad].seller),
            sellers_before[kBad] + 400);
}

TEST_F(BatchedArbiterFixture, BatchedDoubleSettleAndRefundAfterSettleReject) {
  // The classic double-settle / refund-after-settle guarantees must
  // hold when the first settle rode the batched path.
  std::vector<Party> parties;
  std::vector<std::uint64_t> ids;
  std::vector<Fr> kvs;
  std::vector<plonk::Proof> proofs;
  for (std::size_t s = 0; s < 2; ++s) {
    parties.push_back(make_party(sys(), rng));
    const Fr k_v = rng.random_fr();
    kvs.push_back(k_v);
    ids.push_back(
        lock_on(s, parties.back(), 350, hash_key(k_v), /*timeout=*/1));
    auto proof = prove_key(parties.back(), k_v);
    ASSERT_TRUE(proof);
    proofs.push_back(*proof);
  }
  std::vector<txpool::TicketPtr> tickets;
  for (std::size_t i = 0; i < 2; ++i) {
    auto res = sys().pool().submit(claimed_settle(
        sys(), parties[i].seller_keys, ids[i], parties[i].k + kvs[i],
        proofs[i]));
    ASSERT_TRUE(res.accepted);
    tickets.push_back(res.ticket);
  }
  ASSERT_EQ(sys().pool().drain(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(tickets[i]->receipt.success) << tickets[i]->receipt.error;
  }

  // Double settle via the batched path: both replays revert.
  std::vector<std::uint64_t> sellers_after;
  for (std::size_t i = 0; i < 2; ++i) {
    sellers_after.push_back(sys().chain().balance(parties[i].seller));
  }
  std::vector<txpool::TicketPtr> replays;
  for (std::size_t i = 0; i < 2; ++i) {
    auto res = sys().pool().submit(claimed_settle(
        sys(), parties[i].seller_keys, ids[i], parties[i].k + kvs[i],
        proofs[i]));
    ASSERT_TRUE(res.accepted);
    replays.push_back(res.ticket);
  }
  ASSERT_EQ(sys().pool().drain(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(replays[i]->receipt.success);
    EXPECT_EQ(sys().chain().balance(parties[i].seller), sellers_after[i]);
    EXPECT_EQ(sys().arbiter_for_exchange(ids[i]).exchange(ids[i])->state,
              ExchangeState::kSettled);
  }

  // Refund after a batched settle: rejected long past the deadline.
  sys().chain().advance_blocks(5);
  for (std::size_t i = 0; i < 2; ++i) {
    const std::uint64_t buyer_before = sys().chain().balance(parties[i].buyer);
    const Receipt r = sys().chain().call(
        parties[i].buyer_keys, "refund-after-batched-settle",
        [&, i](CallContext& ctx) {
          sys().arbiter_for_exchange(ids[i]).refund(ctx, ids[i]);
        });
    EXPECT_FALSE(r.success);
    EXPECT_EQ(sys().chain().balance(parties[i].buyer), buyer_before);
  }
}

struct ArbiterTempDir {
  std::filesystem::path path;
  ArbiterTempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("zkdet-arbiter-batch-" + std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path);
  }
  ~ArbiterTempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

TEST(BatchedArbiterCrash, SealCrashMidBatchRecoversAndSettlesOnce) {
  // Crash-at-seal in the middle of a batched settle: the whole batch
  // dies pre-commit, a reboot restores the pre-batch tip, and the
  // resubmitted settles land exactly once.
  ArbiterTempDir dir;
  constexpr std::size_t kShards = 2;
  Drbg rng{23};
  KeyPair seller_keys[kShards] = {KeyPair::generate(rng),
                                  KeyPair::generate(rng)};
  KeyPair buyer_keys[kShards] = {KeyPair::generate(rng),
                                 KeyPair::generate(rng)};
  Fr k[kShards];
  Fr o[kShards];
  Fr kv[kShards];
  std::uint64_t ids[kShards];
  plonk::Proof proofs[kShards];
  Address sellers[kShards];
  std::uint64_t sellers_before[kShards];
  {
    core::ZkdetSystem sys(1 << 12, 29, dir.str(), {}, kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
      sellers[s] = sys.chain().create_account(seller_keys[s], 100000);
      const Address buyer = sys.chain().create_account(buyer_keys[s], 100000);
      (void)buyer;
      k[s] = rng.random_fr();
      o[s] = rng.random_fr();
      kv[s] = rng.random_fr();
      auto& arb = sys.arbiter_shard(s);
      const Receipt r = sys.chain().call(
          buyer_keys[s], "lock",
          [&](CallContext& ctx) {
            ids[s] = arb.lock(ctx, sellers[s], hash_key(kv[s]),
                              commit_key(k[s], o[s]), 200);
          },
          450, arb.address());
      ASSERT_TRUE(r.success) << r.error;
      gadgets::CircuitBuilder bld = build_key_circuit(k[s], o[s], kv[s]);
      const auto& keys = sys.keys_for("pi_k", bld.cs());
      auto proof =
          plonk::prove(keys.pk, bld.cs(), sys.srs(), bld.witness(), rng);
      ASSERT_TRUE(proof);
      proofs[s] = *proof;
      sellers_before[s] = sys.chain().balance(sellers[s]);
      ASSERT_TRUE(sys.pool()
                      .submit(claimed_settle(sys, seller_keys[s], ids[s],
                                             k[s] + kv[s], proofs[s]))
                      .accepted);
    }
    const fault::ScopedFaults guard;
    fault::inject(fault::points::kTxpoolSealCrash, fault::Schedule::once());
    EXPECT_THROW(sys.pool().seal_next_batch(), ledger::CrashInjected);
    // Nothing reached chain state or the WAL: the escrows are intact.
    // (The arbiter's in-memory exchange mirror is NOT authoritative
    // here — it is rebuilt from chain state on reopen below.)
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(sys.chain().balance(sellers[s]), sellers_before[s]);
    }
  }
  // "Reboot": reopen the ledger; the locks survived, the dead batch
  // did not. Resubmit both settles — each must land exactly once.
  {
    core::ZkdetSystem sys(1 << 12, 29, dir.str(), {}, kShards);
    ASSERT_TRUE(sys.chain().validate_chain());
    std::vector<txpool::TicketPtr> tickets;
    for (std::size_t s = 0; s < kShards; ++s) {
      ASSERT_EQ(sys.arbiter_for_exchange(ids[s]).exchange(ids[s])->state,
                ExchangeState::kLocked);
      auto res = sys.pool().submit(claimed_settle(
          sys, seller_keys[s], ids[s], k[s] + kv[s], proofs[s]));
      ASSERT_TRUE(res.accepted) << res.error;
      tickets.push_back(res.ticket);
    }
    ASSERT_EQ(sys.pool().drain(), kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
      ASSERT_TRUE(tickets[s]->receipt.success) << tickets[s]->receipt.error;
      EXPECT_EQ(sys.chain().balance(sellers[s]), sellers_before[s] + 450);
      EXPECT_EQ(sys.arbiter_for_exchange(ids[s]).exchange(ids[s])->state,
                ExchangeState::kSettled);
      // Exactly once: the replay reverts and moves no money.
      auto replay = sys.pool().submit(claimed_settle(
          sys, seller_keys[s], ids[s], k[s] + kv[s], proofs[s]));
      ASSERT_TRUE(replay.accepted);
      ASSERT_GT(sys.pool().drain(), 0u);
      EXPECT_FALSE(replay.ticket->receipt.success);
      EXPECT_EQ(sys.chain().balance(sellers[s]), sellers_before[s] + 450);
    }
  }
}

}  // namespace
}  // namespace zkdet::chain
